package smart_test

import (
	"testing"

	"smart"
)

// TestFacadeRunsPaperConfigs exercises the public API end to end: every
// paper configuration assembles and runs through the facade at a small
// scale.
func TestFacadeRunsPaperConfigs(t *testing.T) {
	for _, cfg := range smart.PaperConfigs() {
		cfg.K, cfg.N = 4, 2 // shrink both families to 16 nodes
		cfg.Load = 0.2
		cfg.Warmup, cfg.Horizon = 300, 1500
		res, err := smart.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Label(), err)
		}
		if res.Sample.PacketsDelivered == 0 {
			t.Fatalf("%s delivered nothing", cfg.Label())
		}
	}
}

func TestFacadeSweepAndSeries(t *testing.T) {
	cfg := smart.Config{
		Network: smart.NetworkCube, Algorithm: smart.AlgDeterministic, VCs: 4,
		K: 4, N: 2, Pattern: smart.PatternUniform,
		Warmup: 300, Horizon: 1500, Seed: 5,
	}
	results, err := smart.Sweep(cfg, []float64{0.1, 0.3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	series := smart.SeriesOf(results)
	if len(series) != 2 || series[0].Offered != 0.1 {
		t.Fatalf("series %+v", series)
	}
}

func TestFacadeSimulationControl(t *testing.T) {
	cfg := smart.Config{
		Network: smart.NetworkTree, Algorithm: smart.AlgAdaptive, VCs: 2,
		K: 4, N: 2, Load: 0.3, Warmup: 200, Horizon: 1000,
	}
	s, err := smart.NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !s.Drain(100000) {
		t.Fatal("drain failed through the facade")
	}
}

func TestDefaultLoadsGrid(t *testing.T) {
	loads := smart.DefaultLoads()
	if len(loads) != 20 {
		t.Fatalf("%d loads", len(loads))
	}
}
