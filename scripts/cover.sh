#!/bin/sh
# cover.sh: per-package statement coverage with enforced floors.
#
# Runs `go test -cover` over the library packages, prints the five worst
# packages, and fails if any package named in FLOOR_PKGS is below the
# floor (first argument, default 85%). The floor guards the verification
# pyramid's foundations: the fabric, the routing algorithms and the
# differential oracle must stay almost fully exercised by their own
# package tests.
set -eu

FLOOR=${1:-85}
FLOOR_PKGS="smart/internal/wormhole smart/internal/routing smart/internal/oracle"

out=$(go test -count=1 -cover ./internal/...) || { echo "$out"; exit 1; }
echo "$out"
echo

echo "worst five packages by statement coverage:"
echo "$out" | awk '
  /coverage:/ {
    for (i = 1; i <= NF; i++) if ($i == "coverage:") { pct = $(i+1); sub("%", "", pct); print pct, $2 }
  }' | sort -n | head -5 | awk '{ printf "  %6.1f%%  %s\n", $1, $2 }'
echo

fail=0
for pkg in $FLOOR_PKGS; do
  pct=$(echo "$out" | awk -v p="$pkg" '
    $2 == p { for (i = 1; i <= NF; i++) if ($i == "coverage:") { v = $(i+1); sub("%", "", v); print v } }')
  if [ -z "$pct" ]; then
    echo "cover: no coverage reported for $pkg" >&2
    fail=1
    continue
  fi
  if awk -v v="$pct" -v f="$FLOOR" 'BEGIN { exit !(v < f) }'; then
    echo "cover: $pkg at $pct% is below the $FLOOR% floor" >&2
    fail=1
  else
    echo "cover: $pkg at $pct% meets the $FLOOR% floor"
  fi
done
exit $fail
