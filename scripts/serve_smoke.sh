#!/usr/bin/env bash
# Sweep-service smoke test: the serving acceptance path.
#
# 1. Starts cmd/serve over an empty store: a POSTed config is a cold
#    miss that executes, and the same POST again is a warm hit whose
#    body is byte-identical; If-None-Match with the returned ETag gets
#    304 Not Modified.
# 2. POSTs a sweep grid and requires the response digest to equal the
#    manifest digest of a direct cmd/sweep over the same grid — the
#    served cache and the command line are the same experiment.
# 3. Restarts the server on the same store: the cache must survive the
#    process, answering with the same ETag without re-running.
#
# Usage: scripts/serve_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
mkdir -p "$work" bin

go build -o bin/serve ./cmd/serve
go build -o bin/sweep ./cmd/sweep
go build -o bin/manifest ./cmd/manifest

# 0.25 accumulates exactly in binary floating point, so cmd/sweep's
# step grid and the JSON loads below parse to bit-identical float64s
# (and therefore identical fingerprints).
config='{"Network":"tree","VCs":2,"K":4,"N":2,"Seed":1,"Warmup":200,"Horizon":1000,"Load":0.5}'
sweep_spec='{"config":{"Network":"tree","VCs":2,"K":4,"N":2,"Seed":1,"Warmup":200,"Horizon":1000},"loads":[0.25,0.5,0.75,1.0]}'

start_serve() {
    bin/serve -store "$work/store" -addr 127.0.0.1:0 2>"$1" &
    pid=$!
    addr=""
    for _ in $(seq 1 50); do
        addr=$(sed -n 's#.*serving on http://\(.*\)#\1#p' "$1" | head -1)
        [ -n "$addr" ] && break
        sleep 0.2
    done
    [ -n "$addr" ] || { echo "serve never came up"; cat "$1"; kill "$pid" 2>/dev/null; exit 1; }
}

echo "== cold miss, warm hit, byte-identical bodies =="
start_serve "$work/serve1.err"
curl -fsS -D "$work/h1" -o "$work/b1" -d "$config" "http://$addr/v1/run"
grep -qi '^x-smart-cache: miss' "$work/h1" || { echo "first request was not a miss"; cat "$work/h1"; exit 1; }
curl -fsS -D "$work/h2" -o "$work/b2" -d "$config" "http://$addr/v1/run"
grep -qi '^x-smart-cache: hit' "$work/h2" || { echo "second request was not a hit"; cat "$work/h2"; exit 1; }
cmp "$work/b1" "$work/b2" || { echo "hit body differs from miss body"; exit 1; }
etag=$(sed -n 's/^[Ee][Tt]ag: \(.*\)/\1/p' "$work/h1" | tr -d '\r' | head -1)
[ -n "$etag" ] || { echo "no ETag on the run response"; cat "$work/h1"; exit 1; }
echo "cache hit is byte-identical (etag $etag)"

echo "== ETag revalidation returns 304 =="
code=$(curl -s -o /dev/null -w '%{http_code}' -H "If-None-Match: $etag" -d "$config" "http://$addr/v1/run")
[ "$code" = "304" ] || { echo "If-None-Match returned $code, want 304"; exit 1; }
echo "revalidation 304 ok"

echo "== served sweep digest equals a direct cmd/sweep manifest digest =="
curl -fsS -d "$sweep_spec" "http://$addr/v1/sweep" >"$work/sweep_resp.json"
served_digest=$(grep -o '"digest":"[0-9a-f]*"' "$work/sweep_resp.json" | head -1 | cut -d'"' -f4)
[ -n "$served_digest" ] || { echo "no digest in sweep response"; exit 1; }
bin/sweep -net tree -vcs 2 -k 4 -n 2 -seed 1 -warmup 200 -horizon 1000 -step 0.25 \
    -manifest "$work/direct.jsonl" >/dev/null 2>&1
direct_digest=$(bin/manifest -digest "$work/direct.jsonl" | awk '{print $1}')
if [ "$served_digest" != "$direct_digest" ]; then
    echo "served sweep digest $served_digest != direct cmd/sweep digest $direct_digest"
    exit 1
fi
echo "digests agree: $served_digest"

echo "== metrics endpoint reports the cache =="
curl -fsS "http://$addr/metrics" | grep -q '^smart_serve_cache_hits_total' || { echo "no serve counters in /metrics"; exit 1; }
curl -fsS "http://$addr/metrics" | grep -q '^smart_store_records' || { echo "no store stats in /metrics"; exit 1; }

echo "== the cache survives a restart =="
kill -INT "$pid"
wait "$pid" || { echo "serve exited nonzero on SIGINT"; exit 1; }
start_serve "$work/serve2.err"
curl -fsS -D "$work/h3" -o "$work/b3" -d "$config" "http://$addr/v1/run"
grep -qi '^x-smart-cache: hit' "$work/h3" || { echo "restarted server missed a stored config"; cat "$work/h3"; exit 1; }
cmp "$work/b1" "$work/b3" || { echo "restarted body differs"; exit 1; }
kill -INT "$pid"
wait "$pid" || true

echo "serve smoke ok"
