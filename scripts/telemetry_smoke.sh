#!/usr/bin/env bash
# Telemetry smoke test: the live-observability acceptance path.
#
# 1. Runs a sweep with -metrics-addr and scrapes /metrics and
#    /telemetry.json mid-run: the endpoint must serve live gauges while
#    simulations are in flight.
# 2. Runs a reference sweep with a -timeseries sidecar and validates it
#    with `telemetry -check`.
# 3. Interrupts a checkpointed sweep mid-grid, resumes it, and requires
#    the resumed sidecar to digest identically to the uninterrupted
#    reference — the sidecar half of the kill-and-resume contract.
#
# Usage: scripts/telemetry_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
mkdir -p "$work" bin

go build -o bin/sweep ./cmd/sweep
go build -o bin/telemetry ./cmd/telemetry

net=(-net tree -vcs 2 -k 4 -n 3)

echo "== live endpoint serves mid-run =="
bin/sweep "${net[@]}" -metrics-addr 127.0.0.1:0 -timeseries "$work/live.jsonl" \
    >"$work/sweep.out" 2>"$work/sweep.err" &
pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's#.*serving telemetry on http://\([^/]*\)/metrics.*#\1#p' "$work/sweep.err" | head -1)
    [ -n "$addr" ] && break
    sleep 0.2
done
[ -n "$addr" ] || { echo "telemetry endpoint never came up"; kill "$pid"; exit 1; }

metrics=""
for _ in $(seq 1 50); do
    metrics=$(curl -fsS "http://$addr/metrics" || true)
    if echo "$metrics" | grep -q '^smart_run_flits_injected_total'; then
        break
    fi
    sleep 0.2
done
echo "$metrics" | grep -q '^smart_runs_active' || { echo "no smart_runs_active in /metrics"; kill "$pid"; exit 1; }
echo "$metrics" | grep -q '^smart_run_flits_injected_total' || { echo "no live run counters in /metrics"; kill "$pid"; exit 1; }
echo "$metrics" | grep -q '^smart_grid_total' || { echo "no grid progress in /metrics"; kill "$pid"; exit 1; }
snapshot=$(curl -fsS "http://$addr/telemetry.json")
echo "$snapshot" | grep -q '"runs_active"' || { echo "/telemetry.json malformed"; kill "$pid"; exit 1; }
echo "scraped live metrics from $addr mid-run"
wait "$pid"
bin/telemetry -check "$work/live.jsonl"

echo "== reference sidecar =="
bin/sweep "${net[@]}" -timeseries "$work/ref.jsonl" > /dev/null
bin/telemetry -check "$work/ref.jsonl"

echo "== kill-and-resume sidecar =="
bin/sweep "${net[@]}" -checkpoint "$work/sweep.ckpt" -timeseries "$work/resumed.jsonl" > /dev/null &
pid=$!
sleep 2
kill -INT "$pid"
wait "$pid" || true
echo "journal holds $(wc -l < "$work/sweep.ckpt") completed runs, sidecar $(wc -l < "$work/resumed.jsonl") series"
bin/sweep "${net[@]}" -checkpoint "$work/sweep.ckpt" -resume -timeseries "$work/resumed.jsonl" > /dev/null
bin/telemetry -check "$work/resumed.jsonl"
bin/telemetry -digest "$work/ref.jsonl" "$work/resumed.jsonl"
ref=$(bin/telemetry -digest "$work/ref.jsonl" | cut -d' ' -f1)
res=$(bin/telemetry -digest "$work/resumed.jsonl" | cut -d' ' -f1)
test "$ref" = "$res" || { echo "resumed sidecar digest differs from reference"; exit 1; }

echo "telemetry smoke: OK"
