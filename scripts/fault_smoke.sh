#!/usr/bin/env bash
# Fault-injection smoke test: the degraded-mode acceptance path.
#
# 1. Runs a faulted, bursty netsim at 1 and 4 fabric shards: the full
#    report — counters, fault summary, reroute totals — must be
#    byte-identical. Fault masks are serial-stage state; the shard count
#    must never show through.
# 2. Repeats the sharded run: the report must also be byte-identical
#    across invocations (whole-pipeline determinism).
# 3. Round-trips a fault schedule through its JSONL form: a schedule
#    file drives netsim to the same report as the inline spec, and
#    `manifest -digest` gives it a stable content address.
#
# Usage: scripts/fault_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
mkdir -p "$work" bin

go build -o bin/netsim ./cmd/netsim
go build -o bin/manifest ./cmd/manifest

args=(-net cube -k 4 -n 2 -alg duato -vcs 4 -pattern uniform -load 0.4
    -seed 9 -warmup 300 -horizon 2500
    -faults rand-links:3@400-1800,router:5@600-1400 -burst mmpp:100:300:2.0)

echo "== faulted run is shard-count invariant =="
bin/netsim "${args[@]}" -shards 1 >"$work/shards1.out"
bin/netsim "${args[@]}" -shards 4 >"$work/shards4.out"
diff -u "$work/shards1.out" "$work/shards4.out" || {
    echo "faulted report diverged between 1 and 4 shards"; exit 1; }
grep -q 'fault stalls' "$work/shards1.out" || {
    echo "report carries no fault summary — the schedule never engaged"; exit 1; }
grep -q 'rerouted around fault masks' "$work/shards1.out" || {
    echo "duato reported no reroute counter"; exit 1; }

echo "== faulted run is reproducible across invocations =="
bin/netsim "${args[@]}" -shards 4 >"$work/shards4.again"
cmp "$work/shards4.out" "$work/shards4.again" || {
    echo "identical faulted invocations diverged"; exit 1; }

echo "== schedule file round-trips through smart/faults/v1 =="
cat >"$work/sched.jsonl" <<'EOF'
{"schema":"smart/faults/v1"}
{"cycle":400,"kind":"link-down","router":2,"port":1}
{"cycle":600,"kind":"router-down","router":5,"port":0}
{"cycle":1400,"kind":"router-up","router":5,"port":0}
{"cycle":1800,"kind":"link-up","router":2,"port":1}
EOF
spec='link:2:1@400-1800,router:5@600-1400'
fileargs=(-net cube -k 4 -n 2 -alg duato -vcs 4 -pattern uniform -load 0.4
    -seed 9 -warmup 300 -horizon 2500 -burst mmpp:100:300:2.0 -shards 4)
bin/netsim "${fileargs[@]}" -faults "$work/sched.jsonl" >"$work/fromfile.out"
bin/netsim "${fileargs[@]}" -faults "$spec" >"$work/fromspec.out"
cmp "$work/fromfile.out" "$work/fromspec.out" || {
    echo "JSONL schedule and inline spec produced different reports"; exit 1; }
d1=$(bin/manifest -digest "$work/sched.jsonl" | awk '{print $1}')
d2=$(bin/manifest -digest "$work/sched.jsonl" | awk '{print $1}')
[ -n "$d1" ] && [ "$d1" = "$d2" ] || {
    echo "manifest digest of the schedule is unstable: $d1 vs $d2"; exit 1; }
bin/manifest "$work/sched.jsonl" | grep -q "canonical: $spec" || {
    echo "manifest did not recover the canonical spec"; exit 1; }

echo "fault smoke passed (workdir $work)"
