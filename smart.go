// Package smart is a from-scratch reproduction of the simulation study in
// Fabrizio Petrini and Marco Vanneschi, "Network Performance under
// Physical Constraints", ICPP 1997 — a flit-level wormhole model (SMART:
// Simulator of Massive ARchitectures and Topologies) comparing k-ary
// n-trees (fat-trees) and k-ary n-cubes under physical normalization: pin
// count, peak bandwidth, bisection width, wire delay and router
// complexity (Chien's cost model).
//
// This package is the public facade: describe an experiment with a
// Config, call Run (or Sweep for a load sweep), and read the Result in
// both normalized cycle-domain units (the paper's Figures 5 and 6) and
// absolute units filtered through the router cost model (Figure 7).
//
//	res, err := smart.Run(smart.Config{
//	    Network:   smart.NetworkCube,
//	    Algorithm: smart.AlgDuato,
//	    VCs:       4,
//	    Pattern:   smart.PatternUniform,
//	    Load:      0.6,
//	})
//
// The building blocks live in the internal packages: internal/topology
// (the two network families), internal/wormhole (the router
// microarchitecture of the paper's §4), internal/routing (the three
// routing disciplines), internal/traffic (the synthetic benchmarks),
// internal/cost (Tables 1-2), internal/phys (the §5 normalization), and
// internal/metrics (accepted bandwidth, latency, saturation). The
// examples/ directory shows both the facade and the lower layers in use.
package smart

import (
	"smart/internal/core"
	"smart/internal/metrics"
)

// Config declares one simulation; see core.Config for field semantics.
// The zero value plus a Load describes the paper's default 4-ary 4-tree
// experiment.
type Config = core.Config

// Result is a measured simulation outcome.
type Result = core.Result

// Sample is the cycle-domain measurement of one run.
type Sample = metrics.Sample

// Series is an offered-load sweep of samples.
type Series = metrics.Series

// Simulation exposes the assembled experiment for callers that need
// stepping control or fabric access.
type Simulation = core.Simulation

// NetworkKind selects the topology family.
type NetworkKind = core.NetworkKind

// Network families: the paper's two plus the wrap-free mesh used by the
// ablation harness.
const (
	NetworkTree = core.NetworkTree
	NetworkCube = core.NetworkCube
	NetworkMesh = core.NetworkMesh
)

// Routing algorithms.
const (
	AlgAdaptive      = core.AlgAdaptive
	AlgDeterministic = core.AlgDeterministic
	AlgDuato         = core.AlgDuato
)

// Traffic patterns.
const (
	PatternUniform    = core.PatternUniform
	PatternComplement = core.PatternComplement
	PatternBitRev     = core.PatternBitRev
	PatternTranspose  = core.PatternTranspose
	PatternTornado    = core.PatternTornado
	PatternShuffle    = core.PatternShuffle
	PatternNeighbor   = core.PatternNeighbor
	PatternHotspot    = core.PatternHotspot
)

// Run executes one simulation with the paper's methodology.
func Run(cfg Config) (Result, error) { return core.Run(cfg) }

// NewSimulation assembles an experiment without running it.
func NewSimulation(cfg Config) (*Simulation, error) { return core.NewSimulation(cfg) }

// NewSimulationShards assembles an experiment on the sharded parallel
// engine. Results are bit-identical for every shard count; 0 picks an
// automatic count from the network size and GOMAXPROCS.
func NewSimulationShards(cfg Config, shards int) (*Simulation, error) {
	return core.NewSimulationShards(cfg, shards)
}

// Sweep runs the configuration across offered loads, in parallel across
// workers goroutines, returning results in load order.
func Sweep(base Config, loads []float64, workers int) ([]Result, error) {
	return core.Sweep(base, loads, workers)
}

// SeriesOf extracts the metrics series from sweep results.
func SeriesOf(results []Result) Series { return core.SeriesOf(results) }

// PaperConfigs returns the five network/algorithm configurations of the
// paper's comparison.
func PaperConfigs() []Config { return core.PaperConfigs() }

// DefaultLoads is the paper's offered-load grid (5% steps to 100%).
func DefaultLoads() []float64 { return core.DefaultLoads() }
