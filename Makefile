# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race bench experiments quick clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ .

# One benchmark per table, figure and ablation of the paper.
bench:
	$(GO) test -bench=. -benchmem ./...

# The complete evaluation at the paper's methodology (tens of minutes);
# results land in experiments_full.txt and results/.
experiments:
	mkdir -p results
	$(GO) run ./cmd/experiments -ablations -csvdir results | tee experiments_full.txt

# A coarse preview of the same (~5 minutes).
quick:
	$(GO) run ./cmd/experiments -quick

clean:
	rm -rf results experiments_full.txt test_output.txt bench_output.txt
