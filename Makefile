# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet lint lint-shardsafe test race cover fuzz bench bench-fabric bench-serve shard-smoke telemetry-smoke fault-smoke serve-smoke profile experiments quick clean

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static checks: vet, formatting, and the determinism contract
# (smartlint; see DESIGN.md §8 and cmd/smartlint).
lint: vet
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) run ./cmd/smartlint ./internal/... ./cmd/...

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on -count=1 ./internal/... ./cmd/... .

# Per-package statement coverage with enforced floors on the fabric, the
# routing algorithms and the differential oracle (85% by default); prints
# the five worst packages. See DESIGN.md §10.
cover:
	sh scripts/cover.sh

# Short local fuzz pass over the fuzz targets (30s each); CI runs the
# same budget on every push. Longer soaks: raise FUZZTIME.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/oracle -run '^$$' -fuzz FuzzFabricVsOracle -fuzztime $(FUZZTIME)
	$(GO) test ./internal/oracle -run '^$$' -fuzz FuzzFaultSchedule -fuzztime $(FUZZTIME)
	$(GO) test ./internal/routing -run '^$$' -fuzz FuzzRouteCube -fuzztime $(FUZZTIME)
	$(GO) test ./internal/routing -run '^$$' -fuzz FuzzRouteTree -fuzztime $(FUZZTIME)
	$(GO) test ./internal/faults -run '^$$' -fuzz FuzzFaultSpec -fuzztime $(FUZZTIME)

# One benchmark per table, figure and ablation of the paper.
bench:
	$(GO) test -bench=. -benchmem ./...

# Fabric hot-path benchmark grid ({tree,cube} x nodes x shards x load);
# appends a record to the committed perf trajectory and diffs fabric
# Counters across the shard counts before timing. Set LABEL to name the
# revision being measured; override NODES/SHARDS/LOADS for other cells.
LABEL ?= local
NODES ?= 256
SHARDS ?= 1,4
LOADS ?= 0.2,0.6,0.9
bench-fabric:
	$(GO) run ./cmd/benchfabric -label $(LABEL) -nodes $(NODES) -shards $(SHARDS) -loads $(LOADS) -o BENCH_fabric.json -append

# Sharded-engine determinism gates: the sharded-vs-sequential
# differential under the race detector, plus the benchfabric
# cross-shard Counters diff (no file written). SMOKE_PROCS pins
# GOMAXPROCS — CI runs both 1 (serialized scheduling) and 4 (true
# multi-core interleavings); results must be bit-identical.
SMOKE_PROCS ?= 4
shard-smoke:
	GOMAXPROCS=$(SMOKE_PROCS) $(GO) test -race -run Shard ./internal/...
	GOMAXPROCS=$(SMOKE_PROCS) $(GO) run ./cmd/benchfabric -nodes 256 -shards 1,4 -loads 0.6 -o ''

# The shardsafe leg of the CI lint matrix: the analyzer's own fixture
# and seeded-violation tests plus the shard engine they protect, under
# the race detector.
lint-shardsafe:
	$(GO) test -race -run 'ShardSafe|ShardViolation' ./internal/lint/
	$(GO) test -race -run 'TestShard' ./internal/sim/ ./internal/wormhole/

# End-to-end telemetry check: live /metrics scrape mid-sweep, sidecar
# validation, and the kill-and-resume digest contract. See DESIGN.md §11.
telemetry-smoke:
	sh scripts/telemetry_smoke.sh

# End-to-end fault-injection check: a faulted bursty run diffed across
# shard counts and invocations, plus the smart/faults/v1 schedule-file
# round trip. See DESIGN.md §14.
fault-smoke:
	bash scripts/fault_smoke.sh

# End-to-end sweep-service check: cold miss -> warm hit byte-identity,
# ETag 304 revalidation, served-sweep vs cmd/sweep digest parity, and
# cache persistence across a restart. See DESIGN.md §15.
serve-smoke:
	bash scripts/serve_smoke.sh

# Closed-loop HTTP load test against an in-process sweep service;
# rewrites the committed benchmark record. The warm (all-hits) phase
# must sustain >= 1000 req/s with verified byte-identical responses.
bench-serve:
	$(GO) run ./cmd/loadtest -requests 5000 -clients 8 -json BENCH_serve.json

# A short instrumented sweep: CPU profile in cpu.prof plus the live
# progress line and per-stage engine timing report on stderr.
profile:
	$(GO) run ./cmd/sweep -quick -v -net tree -vcs 2 -pattern uniform -cpuprofile cpu.prof
	@echo "wrote cpu.prof; inspect with: $(GO) tool pprof cpu.prof"

# The complete evaluation at the paper's methodology (tens of minutes);
# results land in experiments_full.txt and results/.
experiments:
	mkdir -p results
	$(GO) run ./cmd/experiments -ablations -csvdir results | tee experiments_full.txt

# A coarse preview of the same (~5 minutes).
quick:
	$(GO) run ./cmd/experiments -quick

clean:
	rm -rf results experiments_full.txt test_output.txt bench_output.txt
