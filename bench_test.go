// Benchmarks regenerating every table and figure of the paper, one bench
// target per experiment. Each figure benchmark runs the full 256-node
// simulation at a representative offered load with a shortened horizon
// (the publication-grade grids live in cmd/experiments) and reports the
// measured accepted bandwidth and latency as custom metrics, so `go test
// -bench` both exercises and summarizes the reproduction:
//
//	go test -bench=Table               # Tables 1 and 2
//	go test -bench=Fig5                # fat-tree CNF curves
//	go test -bench=Fig6                # cube CNF curves
//	go test -bench=Fig7                # normalized absolute comparison
//	go test -bench=Ablation            # design-choice sensitivities
package smart_test

import (
	"fmt"
	"testing"

	"smart"
	"smart/internal/core"
	"smart/internal/cost"
	"smart/internal/telemetry"
)

// benchRun executes one full-size simulation and reports its headline
// measurements as benchmark metrics.
func benchRun(b *testing.B, cfg smart.Config) {
	b.Helper()
	cfg.Warmup, cfg.Horizon = 500, 3000
	cfg.Seed = 1
	var last smart.Result
	for i := 0; i < b.N; i++ {
		res, err := smart.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Sample.Accepted, "accepted/cap")
	b.ReportMetric(last.Sample.AvgLatency, "latency-cycles")
	b.ReportMetric(last.AcceptedBitsNS, "bits/ns")
}

var paperPatterns = []string{
	smart.PatternUniform, smart.PatternComplement,
	smart.PatternTranspose, smart.PatternBitRev,
}

// BenchmarkUniform is the observability-overhead guard: one uniform-
// traffic tree run through the plain Run path, which must stay on the
// uninstrumented fast path (no profiler, reporter or logger attached),
// so internal/obs may cost nothing here.
func BenchmarkUniform(b *testing.B) {
	benchRun(b, smart.Config{
		Network:   smart.NetworkTree,
		Algorithm: smart.AlgAdaptive,
		VCs:       2,
		Pattern:   smart.PatternUniform,
		Load:      0.5,
	})
}

// BenchmarkUniformTelemetry is the enabled-path twin of
// BenchmarkUniform: the same run with the flight-recorder sampler
// attached at its default cadence (every 100 cycles, no HTTP server, no
// sidecar I/O). Compare ns/op against BenchmarkUniform for the
// telemetry overhead; the disabled path is guarded structurally by
// TestTelemetryDisabledAddsNoStage in internal/core.
func BenchmarkUniformTelemetry(b *testing.B) {
	cfg := core.Config{
		Network:   core.NetworkTree,
		Algorithm: core.AlgAdaptive,
		VCs:       2,
		Pattern:   core.PatternUniform,
		Load:      0.5,
	}
	cfg.Warmup, cfg.Horizon = 500, 3000
	cfg.Seed = 1
	var last core.Result
	for i := 0; i < b.N; i++ {
		res, err := core.RunWith(cfg, core.Options{Telemetry: &telemetry.Options{}})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Sample.Accepted, "accepted/cap")
	b.ReportMetric(last.Sample.AvgLatency, "latency-cycles")
}

// BenchmarkTable1 regenerates the cube router delays of Table 1.
func BenchmarkTable1(b *testing.B) {
	var rows []cost.Timing
	for i := 0; i < b.N; i++ {
		rows = cost.Table1()
	}
	b.ReportMetric(rows[0].Clock, "det-clock-ns")
	b.ReportMetric(rows[1].Clock, "duato-clock-ns")
}

// BenchmarkTable2 regenerates the fat-tree router delays of Table 2.
func BenchmarkTable2(b *testing.B) {
	var rows []cost.Timing
	for i := 0; i < b.N; i++ {
		rows = cost.Table2()
	}
	b.ReportMetric(rows[0].Clock, "1vc-clock-ns")
	b.ReportMetric(rows[2].Clock, "4vc-clock-ns")
}

// BenchmarkFig5 reproduces one representative point of each Figure 5
// curve: the 4-ary 4-tree with 1, 2 and 4 virtual channels under each
// traffic pattern, at 50% offered load.
func BenchmarkFig5(b *testing.B) {
	for _, pattern := range paperPatterns {
		for _, vcs := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/%dvc", pattern, vcs), func(b *testing.B) {
				benchRun(b, smart.Config{
					Network: smart.NetworkTree, Algorithm: smart.AlgAdaptive,
					VCs: vcs, Pattern: pattern, Load: 0.5,
				})
			})
		}
	}
}

// BenchmarkFig6 reproduces one representative point of each Figure 6
// curve: the 16-ary 2-cube with deterministic and Duato routing.
func BenchmarkFig6(b *testing.B) {
	for _, pattern := range paperPatterns {
		for _, alg := range []string{smart.AlgDeterministic, smart.AlgDuato} {
			b.Run(fmt.Sprintf("%s/%s", pattern, alg), func(b *testing.B) {
				benchRun(b, smart.Config{
					Network: smart.NetworkCube, Algorithm: alg,
					VCs: 4, Pattern: pattern, Load: 0.5,
				})
			})
		}
	}
}

// BenchmarkFig7 reproduces the absolute comparison of Figure 7: all five
// configurations under each pattern at 50% offered load; the bits/ns
// metric is the figure's y axis.
func BenchmarkFig7(b *testing.B) {
	for _, pattern := range paperPatterns {
		for _, cfg := range smart.PaperConfigs() {
			cfg.Pattern = pattern
			cfg.Load = 0.5
			b.Run(fmt.Sprintf("%s/%s", pattern, cfg.WithDefaults().Label()), func(b *testing.B) {
				benchRun(b, cfg)
			})
		}
	}
}

// BenchmarkAblationBufDepth sweeps the lane depth design choice.
func BenchmarkAblationBufDepth(b *testing.B) {
	for _, depth := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("%dflit", depth), func(b *testing.B) {
			benchRun(b, smart.Config{
				Network: smart.NetworkTree, Algorithm: smart.AlgAdaptive,
				VCs: 2, BufDepth: depth, Pattern: smart.PatternUniform, Load: 0.5,
			})
		})
	}
}

// BenchmarkAblationPacketSize sweeps the worm length.
func BenchmarkAblationPacketSize(b *testing.B) {
	for _, bytes := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("%dB", bytes), func(b *testing.B) {
			benchRun(b, smart.Config{
				Network: smart.NetworkCube, Algorithm: smart.AlgDuato,
				VCs: 4, PacketBytes: bytes, Pattern: smart.PatternUniform, Load: 0.5,
			})
		})
	}
}

// BenchmarkAblationSourceThrottling lifts the single-injection-channel
// restriction of §3.
func BenchmarkAblationSourceThrottling(b *testing.B) {
	for _, lanes := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("%dinj", lanes), func(b *testing.B) {
			benchRun(b, smart.Config{
				Network: smart.NetworkCube, Algorithm: smart.AlgDuato,
				VCs: 4, InjLanes: lanes, Pattern: smart.PatternUniform, Load: 0.9,
			})
		})
	}
}

// BenchmarkAblationSwitchingMode contrasts wormhole, virtual cut-through
// and store-and-forward switching on the cube.
func BenchmarkAblationSwitchingMode(b *testing.B) {
	modes := []struct {
		name string
		cfg  smart.Config
	}{
		{"wormhole", smart.Config{Network: smart.NetworkCube, Algorithm: smart.AlgDuato, VCs: 4}},
		{"cut-through", smart.Config{Network: smart.NetworkCube, Algorithm: smart.AlgDuato, VCs: 4, BufDepth: 16}},
		{"store-and-forward", smart.Config{Network: smart.NetworkCube, Algorithm: smart.AlgDuato, VCs: 4, BufDepth: 16, StoreAndForward: true}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			m.cfg.Pattern = smart.PatternUniform
			m.cfg.Load = 0.4
			benchRun(b, m.cfg)
		})
	}
}

// BenchmarkAblationAscentPolicy contrasts the fat-tree ascent policies.
func BenchmarkAblationAscentPolicy(b *testing.B) {
	for _, ascent := range []string{"least-loaded", "round-robin", "digit-aligned"} {
		b.Run(ascent, func(b *testing.B) {
			benchRun(b, smart.Config{
				Network: smart.NetworkTree, Algorithm: smart.AlgAdaptive, VCs: 2,
				TreeAscent: ascent, Pattern: smart.PatternUniform, Load: 0.5,
			})
		})
	}
}

// BenchmarkAblationMesh contrasts the torus with the wrap-free mesh.
func BenchmarkAblationMesh(b *testing.B) {
	for _, network := range []smart.NetworkKind{smart.NetworkCube, smart.NetworkMesh} {
		b.Run(string(network), func(b *testing.B) {
			benchRun(b, smart.Config{
				Network: network, Algorithm: smart.AlgDuato, VCs: 4,
				Pattern: smart.PatternUniform, Load: 0.5,
			})
		})
	}
}

// BenchmarkAblationRouteEvery stretches the routing stage.
func BenchmarkAblationRouteEvery(b *testing.B) {
	for _, every := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("every%d", every), func(b *testing.B) {
			benchRun(b, smart.Config{
				Network: smart.NetworkCube, Algorithm: smart.AlgDuato, VCs: 4,
				RouteEvery: every, Pattern: smart.PatternUniform, Load: 0.5,
			})
		})
	}
}

// BenchmarkExtensionHypercube runs the binary 8-cube (the "hypercubes
// again?" study) at a representative load.
func BenchmarkExtensionHypercube(b *testing.B) {
	for _, alg := range []string{smart.AlgDeterministic, smart.AlgDuato} {
		b.Run(alg, func(b *testing.B) {
			benchRun(b, smart.Config{
				Network: smart.NetworkCube, K: 2, N: 8, Algorithm: alg, VCs: 4,
				Pattern: smart.PatternUniform, Load: 0.5,
			})
		})
	}
}

// BenchmarkExtensionPipelinedWires contrasts the paper's treatment of the
// fat-tree's medium wires (fold the delay into a stretched clock,
// LinkCycles=1) with wire pipelining (faster clock, LinkCycles=2): the
// pipelined design trades per-hop latency for a shorter cycle.
func BenchmarkExtensionPipelinedWires(b *testing.B) {
	for _, links := range []int{1, 2} {
		b.Run(fmt.Sprintf("linkcycles%d", links), func(b *testing.B) {
			benchRun(b, smart.Config{
				Network: smart.NetworkTree, Algorithm: smart.AlgAdaptive, VCs: 4,
				LinkCycles: links, BufDepth: 8,
				Pattern: smart.PatternUniform, Load: 0.5,
			})
		})
	}
}

// BenchmarkFabric is the tracked hot-path suite: the raw per-cycle cost
// of the two 256-node fabrics at low, medium and saturation offered
// loads. ns/op is ns/cycle; the cycles/sec metric is its reciprocal.
// cmd/benchfabric runs the same grid programmatically and records the
// results in BENCH_fabric.json, the perf trajectory future PRs defend.
func BenchmarkFabric(b *testing.B) {
	for _, network := range []smart.NetworkKind{smart.NetworkTree, smart.NetworkCube} {
		for _, load := range []float64{0.2, 0.6, 0.9} {
			b.Run(fmt.Sprintf("%s/load=%.1f", network, load), func(b *testing.B) {
				cfg := smart.Config{Network: network, Load: load, Seed: 1}
				s, err := smart.NewSimulation(cfg)
				if err != nil {
					b.Fatal(err)
				}
				s.Engine.Run(500) // settle into steady state at this load
				b.ReportAllocs()
				b.ResetTimer()
				start := s.Engine.Cycle()
				s.Engine.Run(start + int64(b.N))
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
			})
		}
	}
}

// BenchmarkSimulatorSpeed measures the raw simulation rate of the two
// 256-node fabrics in cycles per second (the engineering metric of the
// simulator itself, not a paper figure).
func BenchmarkSimulatorSpeed(b *testing.B) {
	for _, cfg := range []smart.Config{
		{Network: smart.NetworkCube, Algorithm: smart.AlgDuato, VCs: 4, Load: 0.5},
		{Network: smart.NetworkTree, Algorithm: smart.AlgAdaptive, VCs: 4, Load: 0.5},
	} {
		b.Run(string(cfg.Network), func(b *testing.B) {
			s, err := smart.NewSimulation(cfg)
			if err != nil {
				b.Fatal(err)
			}
			s.Engine.Run(500) // warm the fabric into steady state
			b.ResetTimer()
			start := s.Engine.Cycle()
			s.Engine.Run(start + int64(b.N))
			b.ReportMetric(1, "cycles/op")
		})
	}
}
