package wormhole

// Router is the view of switch state a routing algorithm consults when
// binding a header: the packet table and the occupancy/credit state of
// the candidate output lanes. Both the optimized Fabric and the naive
// reference simulator in internal/oracle implement it, so one routing
// implementation drives both sides of the differential harness.
type Router interface {
	// Packet returns the record of packet id; algorithms may mutate its
	// RouteBits scratch state.
	Packet(id PacketID) *PacketInfo
	// Dest returns the destination node of packet id.
	Dest(id PacketID) int
	// OutLaneFree reports whether output lane (port, lane) of router r
	// can accept a new packet: neither full nor bound to another input
	// lane (§4).
	OutLaneFree(r, port, lane int) bool
	// OutLaneCredits returns the credit count of output lane (port, lane)
	// of router r — the known free space in the downstream input lane.
	OutLaneCredits(r, port, lane int) int
	// FreeLanes counts the free output lanes of (r, port) within lane
	// index range [lo, hi): the "number of free virtual channels" the
	// fat-tree algorithm uses to pick the least-loaded link (§2).
	FreeLanes(r, port, lo, hi int) int
	// LinkUp reports whether routing out of router r's given port is
	// currently permitted: false for fault-masked links, ports of (or
	// into) dead routers, and unused ports. Fault-aware disciplines
	// consult it to steer around failures; without injected faults it
	// is constantly true for every port an algorithm would pick.
	LinkUp(r, port int) bool
}

// RoutingAlgorithm decides, for a header flit that has reached the front
// of an input lane, which output lane of the switch it should be bound to.
// Implementations live in internal/routing: the fat-tree minimal adaptive
// algorithm with one, two or four virtual channels (§2), dimension-order
// deterministic routing with two virtual networks (§3, Dally-Seitz), and
// the minimal adaptive algorithm with escape channels (§3, Duato).
type RoutingAlgorithm interface {
	// Name identifies the algorithm in results ("deterministic", "duato",
	// "adaptive-2vc", ...).
	Name() string
	// Route selects an output (port, lane) at router r for packet pkt,
	// whose header sits at the front of input lane (inPort, inLane). The
	// selected output lane must be free in the sense of the paper: not
	// bound to another input lane and not full. Returning ok == false
	// stalls the header; the switch will retry on a later cycle (with
	// Duato's discipline this is exactly the "adaptive choice limited by
	// network contention" case when even the escape lane is busy).
	//
	// Route may record per-packet state in the packet's RouteBits (e.g.
	// wrap-around crossings) — the caller guarantees Route is called for
	// each switch traversal exactly once with ok == true.
	Route(rt Router, r, inPort, inLane int, pkt PacketID) (port, lane int, ok bool)
	// VCs returns the number of virtual channels per physical link the
	// algorithm requires.
	VCs() int
}

// Tracer observes fabric events; tests use it to verify path properties
// (minimality, dimension order, ascend-then-descend phases). A nil Tracer
// disables tracing.
type Tracer interface {
	// HeaderRouted fires when a header is successfully bound at router r
	// to output (port, lane).
	HeaderRouted(cycle int64, pkt PacketID, r, inPort, inLane, outPort, outLane int)
	// PacketDelivered fires when a tail flit reaches the destination NIC.
	PacketDelivered(cycle int64, pkt PacketID)
}
