package wormhole

import (
	"testing"
	"testing/quick"
)

func TestFlitKindBits(t *testing.T) {
	if FlitBody.IsHead() || FlitBody.IsTail() {
		t.Fatal("body flit claims head or tail")
	}
	if !FlitHead.IsHead() || FlitHead.IsTail() {
		t.Fatal("head flit bits wrong")
	}
	if FlitTail.IsHead() || !FlitTail.IsTail() {
		t.Fatal("tail flit bits wrong")
	}
	both := FlitHead | FlitTail
	if !both.IsHead() || !both.IsTail() {
		t.Fatal("single-flit packet bits wrong")
	}
}

func TestLaneRefRoundTrip(t *testing.T) {
	check := func(p, l uint8) bool {
		port, lane := int(p)%16, int(l)%(packRadix-1)
		gp, gl := packRef(port, lane).unpack()
		return gp == port && gl == lane
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketInfoAccessors(t *testing.T) {
	p := PacketInfo{InjectedAt: 10, TailAt: -1}
	if p.Delivered() {
		t.Fatal("undelivered packet claims delivery")
	}
	p.TailAt = 55
	if !p.Delivered() {
		t.Fatal("delivered packet not recognized")
	}
	if p.NetworkLatency() != 45 {
		t.Fatalf("latency %d, want 45", p.NetworkLatency())
	}
}

func TestFifoPushPop(t *testing.T) {
	f := newFifo(3)
	if f.cap() != 3 || f.len() != 0 || f.full() {
		t.Fatal("fresh fifo state wrong")
	}
	for i := int32(0); i < 3; i++ {
		f.push(Flit{Seq: i})
	}
	if !f.full() {
		t.Fatal("fifo not full after cap pushes")
	}
	for i := int32(0); i < 3; i++ {
		if f.front().Seq != i {
			t.Fatalf("front seq %d, want %d", f.front().Seq, i)
		}
		if got := f.pop(); got.Seq != i {
			t.Fatalf("pop seq %d, want %d", got.Seq, i)
		}
	}
	if f.len() != 0 {
		t.Fatal("fifo not empty after draining")
	}
}

func TestFifoWrapsAround(t *testing.T) {
	f := newFifo(2)
	for round := int32(0); round < 10; round++ {
		f.push(Flit{Seq: round})
		if got := f.pop(); got.Seq != round {
			t.Fatalf("round %d: popped %d", round, got.Seq)
		}
	}
}

func TestFifoPushFullPanics(t *testing.T) {
	f := newFifo(1)
	f.push(Flit{})
	defer func() {
		if recover() == nil {
			t.Fatal("push into full fifo did not panic")
		}
	}()
	f.push(Flit{})
}

func TestFifoPopEmptyPanics(t *testing.T) {
	f := newFifo(1)
	defer func() {
		if recover() == nil {
			t.Fatal("pop from empty fifo did not panic")
		}
	}()
	f.pop()
}

func TestOutLaneFree(t *testing.T) {
	o := outLane{fifo: newFifo(2), credits: 2, boundIn: noRef}
	if !o.free() {
		t.Fatal("fresh lane not free")
	}
	o.boundIn = packRef(1, 0)
	if o.free() {
		t.Fatal("bound lane reported free")
	}
	o.boundIn = noRef
	o.push(Flit{})
	o.push(Flit{})
	if o.free() {
		t.Fatal("full lane reported free")
	}
}
