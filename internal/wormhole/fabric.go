package wormhole

import (
	"fmt"

	"smart/internal/sim"
	"smart/internal/topology"
)

// Config sets the microarchitectural parameters of the fabric.
type Config struct {
	// VCs is the number of virtual channels multiplexed on each physical
	// link (1, 2 or 4 in the paper).
	VCs int
	// BufDepth is the capacity, in flits, of each input and output lane
	// (4 in the paper).
	BufDepth int
	// PacketFlits is the packet length in flits: the paper's 64-byte
	// packets are 32 flits on the tree (2-byte flits) and 16 on the cube
	// (4-byte flits).
	PacketFlits int
	// InjLanes is the number of lanes on the injection channel. The paper
	// uses a single injection channel between processor and router
	// (source throttling, §3); the ablation harness can raise it.
	InjLanes int
	// WatchdogCycles, when positive, arms the engine's no-progress
	// watchdog at Register time: if no flit advances for that many
	// consecutive cycles while flits are in flight, the run stops with
	// a sim.StallError carrying a fabric snapshot. Zero disables it.
	WatchdogCycles int64
	// StoreAndForward, when true, gates routing on the whole packet
	// being buffered in the input lane — the pre-wormhole switching
	// discipline whose distance-times-length latency wormhole routing
	// was invented to avoid. It requires BufDepth >= PacketFlits. (The
	// middle ground, virtual cut-through, is wormhole with BufDepth >=
	// PacketFlits and no gate.)
	StoreAndForward bool
	// RouteEvery stretches the routing stage: a switch routes at most
	// one header every RouteEvery cycles (default 1). The ablation
	// harness uses it to de-equalize the pipeline and emulate a slower
	// routing decision (a larger T_routing in cost-model terms).
	RouteEvery int
	// LinkCycles is the flit flight time across a physical link in
	// cycles (default 1). Values above one model pipelined long wires:
	// a link still accepts one flit per cycle (wire pipelining keeps the
	// throughput) but each flit arrives LinkCycles later — the
	// alternative to the paper's treatment of the fat-tree's medium
	// wires, which folds the whole wire delay into a slower clock.
	LinkCycles int
}

func (c Config) validate() error {
	if c.VCs < 1 || c.VCs >= packRadix {
		return fmt.Errorf("wormhole: VCs must be in [1,%d), got %d", packRadix, c.VCs)
	}
	if c.BufDepth < 1 {
		return fmt.Errorf("wormhole: BufDepth must be positive, got %d", c.BufDepth)
	}
	if c.PacketFlits < 1 {
		return fmt.Errorf("wormhole: PacketFlits must be positive, got %d", c.PacketFlits)
	}
	if c.InjLanes < 1 || c.InjLanes >= packRadix {
		return fmt.Errorf("wormhole: InjLanes must be in [1,%d), got %d", packRadix, c.InjLanes)
	}
	if c.StoreAndForward && c.BufDepth < c.PacketFlits {
		return fmt.Errorf("wormhole: store-and-forward needs BufDepth >= PacketFlits (%d < %d)", c.BufDepth, c.PacketFlits)
	}
	if c.RouteEvery < 0 {
		return fmt.Errorf("wormhole: RouteEvery must be non-negative, got %d", c.RouteEvery)
	}
	if c.LinkCycles < 0 {
		return fmt.Errorf("wormhole: LinkCycles must be non-negative, got %d", c.LinkCycles)
	}
	return nil
}

// nicLane is one injection stream of a NIC. With source throttling
// (InjLanes == 1) a node has a single stream, so at most one packet is
// entering the network at any time.
//
//smartlint:shardowned
type nicLane struct {
	cur     PacketID
	nextSeq int32
	credit  int16
}

// nic is a processing node's network interface: an unbounded source queue
// of generated packets and the injection stream(s) feeding the router's
// injection lane(s). The queue is consumed through a head index so a pop
// costs O(1) regardless of backlog. base is the flat index of the first
// input lane of the router port this NIC injects into. Ejection needs no
// state: the node consumes flits at link rate.
//
//smartlint:shardowned
type nic struct {
	queue []PacketID
	head  int
	lanes []nicLane
	base  int32
}

// qlen returns the number of packets waiting in the source queue.
func (nc *nic) qlen() int { return len(nc.queue) - nc.head }

// qpop removes and returns the oldest queued packet. The consumed prefix
// is reclaimed when the queue empties, and compacted once it dominates
// the backing array, so a long-lived saturated queue does not retain
// unbounded dead storage.
func (nc *nic) qpop() PacketID {
	id := nc.queue[nc.head]
	nc.head++
	if nc.head == len(nc.queue) {
		nc.queue = nc.queue[:0]
		nc.head = 0
	} else if nc.head >= 256 && nc.head*2 >= len(nc.queue) {
		n := copy(nc.queue, nc.queue[nc.head:])
		nc.queue = nc.queue[:n]
		nc.head = 0
	}
	return id
}

// Counters aggregates the fabric's running totals; metrics snapshot them
// at the warm-up boundary and at the horizon. Each shard increments its
// own instance — reads sum across shards.
//
//smartlint:shardowned
type Counters struct {
	PacketsCreated   int64
	PacketsInjected  int64
	PacketsDelivered int64
	FlitsInjected    int64
	FlitsDelivered   int64
}

// add accumulates other into c.
func (c *Counters) add(other Counters) {
	c.PacketsCreated += other.PacketsCreated
	c.PacketsInjected += other.PacketsInjected
	c.PacketsDelivered += other.PacketsDelivered
	c.FlitsInjected += other.FlitsInjected
	c.FlitsDelivered += other.FlitsDelivered
}

// Fabric is a complete simulated network: topology, routers, NICs and the
// packet table, advanced one cycle at a time by the stages it registers on
// a sim.Engine.
//
// Router state is flattened for locality: all input and output lanes live
// in two contiguous per-fabric arrays indexed by precomputed (router,
// port) offsets, and the topology's port tables are cached in a flat
// array, so the per-cycle stages never chase jagged slices or call back
// through the Topology interface. On top of that layout the fabric keeps
// incremental active-set work lists — which output ports hold flits,
// which input lanes are bound to an output, which routers present an
// unrouted header, which NICs have pending traffic — maintained at the
// points where occupancy, binding and queue state change, so each stage's
// cost scales with the traffic actually moving rather than with the
// network size. See DESIGN.md ("Hot path") for the membership invariants.
//
// The fabric is always partitioned into one or more shards — contiguous
// router ranges, each with its own work lists, deferred-credit lists and
// counters (shard.go). The default single shard covers everything and
// runs the classic sequential stages; SetShards(s > 1) arms the two-phase
// parallel driver, which is bit-identical to the sequential schedule
// (DESIGN.md §12).
type Fabric struct {
	Top topology.Topology
	Cfg Config
	Alg RoutingAlgorithm
	// Packets is the packet table; PacketID indexes it. Routing
	// algorithms may mutate RouteBits; everything else is owned by the
	// fabric. During a cycle a packet's record is only touched by the
	// shard its flits currently occupy.
	//
	//smartlint:shardindexed
	Packets []PacketInfo
	// Tracer, when non-nil, observes routing and delivery events. A
	// sharded fabric with a Tracer runs its phases on the serial
	// schedule so callbacks never fire concurrently.
	Tracer Tracer

	// Flattened router state. Ports are addressed by pid = r*deg + p;
	// the input lanes of a port are in[inOff[pid]:inOff[pid+1]] and its
	// output lanes out[outOff[pid]:outOff[pid+1]]. Because ports are
	// laid out router-major, a router's input lanes form the contiguous
	// range in[inOff[r*deg]:inOff[(r+1)*deg]] — the routing stage's scan
	// list, in the same (port, lane) order the jagged layout used.
	deg   int
	ports []topology.Port
	//smartlint:shardindexed
	in []inLane
	//smartlint:shardindexed
	out    []outLane
	inOff  []int32
	outOff []int32

	// Round-robin arbitration pointers: routeRR indexes a router's
	// input-lane scan range, linkRR a port's output lanes. Global arrays
	// indexed by router/port, so each entry has exactly one owning
	// shard.
	//
	//smartlint:shardindexed
	routeRR []int32
	//smartlint:shardindexed
	linkRR []int32

	// Per-entry occupancy behind the shards' work lists: portOcc[pid]
	// counts occupied output lanes, unrouted[r] input lanes presenting
	// an unrouted header. Each entry is owned by the shard owning its
	// router.
	//
	//smartlint:shardindexed
	portOcc []int32
	//smartlint:shardindexed
	unrouted []int32

	//smartlint:shardindexed
	nics []nic

	// Sharding (shard.go): shards[i] owns routers
	// [shards[i].rLo, shards[i].rHi); routerShard and nodeShard map an
	// index to its owning shard. Always at least one shard.
	shards      []shardState
	routerShard []int32
	nodeShard   []int32
	pool        *sim.Pool

	cycle int64

	// linkFlits[pid] counts flits transmitted out of port pid (including
	// ejection ports); internal/chanstats aggregates it into per-level
	// and per-dimension channel utilization.
	//
	//smartlint:shardindexed
	linkFlits []int64

	// wires[pid] holds the flits in flight on the (pipelined) wire
	// leaving port pid; allocated only when LinkCycles > 1. Constant
	// flight time means arrival order equals send order, so a FIFO
	// suffices, and the credit consumed at send time guarantees the
	// remote buffer slot on arrival.
	//
	//smartlint:shardindexed
	wires []wireFIFO

	// flt holds the fault masks (faults.go); nil until the first fault
	// is injected, so unfaulted runs pay one nil check per gate.
	// Written only by the serial faults stage, read by all shards.
	flt *faultState
}

// flight is one flit in transit on a pipelined wire.
type flight struct {
	fl   Flit
	lane int16
	at   int64 // arrival cycle
}

// wireFIFO is an amortized O(1) queue of flights. A wire belongs to the
// shard owning its sending port.
//
//smartlint:shardowned
type wireFIFO struct {
	q    []flight
	head int
}

func (w *wireFIFO) push(f flight) { w.q = append(w.q, f) }

func (w *wireFIFO) empty() bool { return w.head >= len(w.q) }

func (w *wireFIFO) front() *flight { return &w.q[w.head] }

// pop removes and returns the front flight. The consumed prefix is
// reclaimed when the queue empties, and compacted once it dominates the
// backing array, so a wire that never quite drains under sustained load
// does not retain unbounded dead storage.
func (w *wireFIFO) pop() flight {
	f := w.q[w.head]
	w.head++
	if w.head == len(w.q) {
		w.q = w.q[:0]
		w.head = 0
	} else if w.head >= 256 && w.head*2 >= len(w.q) {
		n := copy(w.q, w.q[w.head:])
		w.q = w.q[:n]
		w.head = 0
	}
	return f
}

// laneRefAt addresses an output lane anywhere in the fabric.
type laneRefAt struct {
	router int32
	ref    laneRef
}

// laneCounts returns the input/output lane complement of a port kind.
// The node port's input side is the injection channel; its output side
// is the ejection channel with the full complement of virtual channels
// ("the processing nodes have a compatible interface with the same
// number of virtual channels", §4).
func laneCounts(kind topology.PortKind, cfg Config) (inN, outN int) {
	switch kind {
	case topology.PortRouter:
		return cfg.VCs, cfg.VCs
	case topology.PortNode:
		return cfg.InjLanes, cfg.VCs
	}
	return 0, 0
}

// NewFabric assembles a fabric over the given topology. The routing
// algorithm's virtual-channel requirement must match cfg.VCs. The fabric
// starts with a single shard — the sequential path; SetShards enables
// parallel execution.
func NewFabric(top topology.Topology, cfg Config, alg RoutingAlgorithm) (*Fabric, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if alg.VCs() != cfg.VCs {
		return nil, fmt.Errorf("wormhole: algorithm %s needs %d VCs but config has %d", alg.Name(), alg.VCs(), cfg.VCs)
	}
	f := &Fabric{Top: top, Cfg: cfg, Alg: alg}
	routers, deg := top.Routers(), top.Degree()
	f.deg = deg
	f.ports = topology.FlattenPorts(top)
	nPorts := routers * deg

	// First pass: lane offsets per port.
	f.inOff = make([]int32, nPorts+1)
	f.outOff = make([]int32, nPorts+1)
	var inTotal, outTotal int32
	for pid := 0; pid < nPorts; pid++ {
		f.inOff[pid] = inTotal
		f.outOff[pid] = outTotal
		inN, outN := laneCounts(f.ports[pid].Kind, cfg)
		inTotal += int32(inN)
		outTotal += int32(outN)
	}
	f.inOff[nPorts] = inTotal
	f.outOff[nPorts] = outTotal

	// Second pass: the lanes themselves, their buffers carved out of one
	// contiguous flit arena.
	arena := make([]Flit, (int(inTotal)+int(outTotal))*cfg.BufDepth)
	next := 0
	takeBuf := func() []Flit {
		b := arena[next : next+cfg.BufDepth : next+cfg.BufDepth]
		next += cfg.BufDepth
		return b
	}
	f.in = make([]inLane, inTotal)
	f.out = make([]outLane, outTotal)
	for r := 0; r < routers; r++ {
		for p := 0; p < deg; p++ {
			pid := r*deg + p
			for l := f.inOff[pid]; l < f.inOff[pid+1]; l++ {
				f.in[l] = inLane{
					fifo: fifo{buf: takeBuf()}, bound: noRef,
					router: int32(r), port: int16(p), lane: int16(l - f.inOff[pid]),
				}
			}
			for l := f.outOff[pid]; l < f.outOff[pid+1]; l++ {
				f.out[l] = outLane{fifo: fifo{buf: takeBuf()}, credits: int16(cfg.BufDepth), boundIn: noRef}
			}
		}
	}

	f.routeRR = make([]int32, routers)
	f.linkRR = make([]int32, nPorts)
	f.linkFlits = make([]int64, nPorts)
	f.portOcc = make([]int32, nPorts)
	f.unrouted = make([]int32, routers)

	if cfg.LinkCycles > 1 {
		f.wires = make([]wireFIFO, nPorts)
	}

	f.nics = make([]nic, top.Nodes())
	for n := range f.nics {
		lanes := make([]nicLane, cfg.InjLanes)
		for l := range lanes {
			lanes[l] = nicLane{cur: NoPacket, credit: int16(cfg.BufDepth)}
		}
		at := top.NodeAttach(n)
		f.nics[n] = nic{lanes: lanes, base: f.inOff[at.Router*deg+at.Port]}
	}
	if err := f.initShards([]int{0, routers}); err != nil {
		return nil, err
	}
	return f, nil
}

// inLaneAt returns input lane (port, lane) of router r.
func (f *Fabric) inLaneAt(r, p, l int) *inLane { return &f.in[int(f.inOff[r*f.deg+p])+l] }

// outLaneAt returns output lane (port, lane) of router r.
func (f *Fabric) outLaneAt(r, p, l int) *outLane { return &f.out[int(f.outOff[r*f.deg+p])+l] }

// inLanesOf returns the input lanes of port pid.
func (f *Fabric) inLanesOf(pid int) []inLane { return f.in[f.inOff[pid]:f.inOff[pid+1]] }

// outLanesOf returns the output lanes of port pid.
func (f *Fabric) outLanesOf(pid int) []outLane { return f.out[f.outOff[pid]:f.outOff[pid+1]] }

// Register installs the fabric's pipeline on the engine. With a single
// shard that is the canonical stage sequence — link transfer, crossbar
// transfer, routing, injection, credit commit; with more it is the fused
// two-phase parallel driver, which advances the same stages per shard
// and lands cross-shard traffic after a barrier (bit-identical either
// way). A traffic generator should be registered before the fabric so
// packets created in a cycle can start injecting the same cycle. When
// Cfg.WatchdogCycles is positive the fabric is also installed as the
// engine's no-progress watchdog target.
func (f *Fabric) Register(e *sim.Engine) {
	if len(f.shards) > 1 {
		e.RegisterFunc("fabric", f.parallelCycle)
	} else {
		e.RegisterFunc("link", f.linkStage)
		e.RegisterFunc("crossbar", f.crossbarStage)
		e.RegisterFunc("routing", f.routingStage)
		e.RegisterFunc("injection", f.injectionStage)
		e.RegisterFunc("credits", f.creditStage)
	}
	if f.Cfg.WatchdogCycles > 0 {
		e.Watch(f.Cfg.WatchdogCycles, f)
	}
}

// The fabric is the routing algorithms' canonical state view.
var _ Router = (*Fabric)(nil)

// Counters returns a snapshot of the running totals, summed over shards.
func (f *Fabric) Counters() Counters {
	var c Counters
	for i := range f.shards {
		c.add(f.shards[i].counters)
	}
	return c
}

// Nodes returns the number of processing nodes attached to the fabric.
func (f *Fabric) Nodes() int { return f.Top.Nodes() }

// PacketFlits returns the configured packet length in flits.
func (f *Fabric) PacketFlits() int { return f.Cfg.PacketFlits }

// PacketRecords returns the full packet table; measurement layers walk it
// for per-packet latency. The returned slice is the fabric's own.
func (f *Fabric) PacketRecords() []PacketInfo { return f.Packets }

// InFlight returns the number of flits currently inside the network
// (injected but not delivered).
func (f *Fabric) InFlight() int64 {
	var n int64
	for i := range f.shards {
		n += f.shards[i].inFlight
	}
	return n
}

// QueuedPackets returns the total number of packets waiting in source
// queues or part-way through injection. The count is kept current at
// enqueue and at tail injection, so reading it is O(shards).
func (f *Fabric) QueuedPackets() int64 {
	var n int64
	for i := range f.shards {
		n += f.shards[i].queued
	}
	return n
}

// Drained reports whether no traffic remains anywhere: source queues,
// injection streams and the network itself are all empty. It is
// O(shards), so per-cycle drain stop conditions cost nothing. The
// per-shard terms must be summed before testing: injection counts a
// flit on its source's shard and delivery subtracts it on its
// destination's, so individual shard deltas are signed.
func (f *Fabric) Drained() bool {
	return f.InFlight() == 0 && f.QueuedPackets() == 0
}

// EnqueuePacket creates a packet from src to dst at the given cycle and
// places it on the source's queue. It returns the new packet's id. Packets
// with src == dst never enter the network (the paper's palindrome nodes
// under bit-reversal inject nothing); callers should not enqueue them.
func (f *Fabric) EnqueuePacket(src, dst int, cycle int64) PacketID {
	if src == dst {
		panic("wormhole: EnqueuePacket with src == dst")
	}
	id := PacketID(len(f.Packets))
	f.Packets = append(f.Packets, PacketInfo{
		Src: int32(src), Dst: int32(dst), Flits: int32(f.Cfg.PacketFlits),
		CreatedAt: cycle, InjectedAt: -1, HeadAt: -1, TailAt: -1,
	})
	sh := &f.shards[f.nodeShard[src]]
	f.nics[src].queue = append(f.nics[src].queue, id)
	sh.queued++
	sh.nicActive.add(int32(src))
	sh.counters.PacketsCreated++
	return id
}

// Packet returns the record of packet id.
func (f *Fabric) Packet(id PacketID) *PacketInfo { return &f.Packets[id] }

// Dest returns the destination node of packet id.
func (f *Fabric) Dest(id PacketID) int { return int(f.Packets[id].Dst) }

// OutLaneFree reports whether output lane (port, lane) of router r can
// accept a new packet: neither full nor bound to another input lane (§4).
func (f *Fabric) OutLaneFree(r, port, lane int) bool {
	return f.outLaneAt(r, port, lane).free()
}

// OutLaneCredits returns the credit count of output lane (port, lane) of
// router r — the known free space in the downstream input lane.
func (f *Fabric) OutLaneCredits(r, port, lane int) int {
	return int(f.outLaneAt(r, port, lane).credits)
}

// FreeLanes counts the free output lanes of (r, port) within lane index
// range [lo, hi): the "number of free virtual channels" the fat-tree
// algorithm uses to pick the least-loaded link (§2).
func (f *Fabric) FreeLanes(r, port, lo, hi int) int {
	lanes := f.outLanesOf(r*f.deg + port)
	free := 0
	for l := lo; l < hi && l < len(lanes); l++ {
		if lanes[l].free() {
			free++
		}
	}
	return free
}

// pushIn places a flit into input lane id, which must belong to sh. A
// lane transitioning from empty enters the crossbar work list (if it is
// bound to an output) or becomes a routing candidate (if not).
//
//smartlint:hotpath
func (f *Fabric) pushIn(sh *shardState, id int32, fl Flit) {
	il := &f.in[id]
	wasEmpty := il.n == 0
	il.push(fl)
	if !wasEmpty {
		return
	}
	if il.bound != noRef {
		sh.xbarActive.add(id)
	} else {
		f.addUnrouted(sh, int(il.router))
	}
}

// sendIn lands a flit in input lane id of router peer: directly when the
// router belongs to sh, through the destination shard's mailbox
// otherwise (committed after the phase barrier, in ascending
// source-shard order). Either way the flit is invisible to this cycle's
// crossbar and routing stages — its MovedAt stamp equals the current
// cycle — so deferral does not change the simulation. This is the sole
// sanctioned cross-shard channel of the compute phase — the shardsafe
// rule trusts it as a sink and audits everything else.
//
//smartlint:shardsink
//smartlint:hotpath
func (f *Fabric) sendIn(sh *shardState, peer int, id int32, fl Flit) {
	if d := f.routerShard[peer]; int(d) != sh.id {
		sh.mailFlits[d] = append(sh.mailFlits[d], arrival{lane: id, fl: fl})
		return
	}
	f.pushIn(sh, id, fl)
}

// addUnrouted records that one more input lane of router r presents an
// unrouted header.
//
//smartlint:hotpath
func (f *Fabric) addUnrouted(sh *shardState, r int) {
	f.unrouted[r]++
	if f.unrouted[r] == 1 {
		sh.routeActive.add(int32(r))
	}
}

// dropUnrouted records that an input lane of router r stopped presenting
// an unrouted header (it was bound, or drained).
//
//smartlint:hotpath
func (f *Fabric) dropUnrouted(sh *shardState, r int) {
	f.unrouted[r]--
	if f.unrouted[r] == 0 {
		sh.routeActive.remove(int32(r))
	}
}

// pushOut places a flit into output lane ol of port pid, activating the
// port's link arbitration when the lane transitions from empty.
//
//smartlint:hotpath
func (f *Fabric) pushOut(sh *shardState, pid int32, ol *outLane, fl Flit) {
	if ol.n == 0 {
		f.portOcc[pid]++
		if f.portOcc[pid] == 1 {
			sh.linkActive.add(pid)
		}
	}
	ol.push(fl)
}

// popOut removes the front flit of output lane ol of port pid,
// deactivating the port when its last occupied lane drains.
//
//smartlint:hotpath
func (f *Fabric) popOut(sh *shardState, pid int32, ol *outLane) Flit {
	fl := ol.pop()
	if ol.n == 0 {
		f.portOcc[pid]--
		if f.portOcc[pid] == 0 {
			sh.linkActive.remove(pid)
		}
	}
	return fl
}

// pushWire enqueues a flight on port pid's pipelined wire.
//
//smartlint:hotpath
func (f *Fabric) pushWire(sh *shardState, pid int32, fl flight) {
	w := &f.wires[pid]
	if w.empty() {
		sh.wireActive.add(pid)
	}
	w.push(fl)
}

// linkStage is the sequential driver for the link stage; linkShard has
// the semantics.
func (f *Fabric) linkStage(cycle int64) {
	f.cycle = cycle
	for i := range f.shards {
		f.linkShard(&f.shards[i], cycle)
	}
}

// linkShard moves at most one flit per physical channel direction: for
// every output port holding buffered flits it fair-arbitrates among the
// lanes holding a flit that has a credit, and transfers the winner to the
// same-numbered input lane of the neighbouring switch (or delivers it,
// for ejection channels). Ports with no buffered flits are never
// visited: at light load the stage walks the active work list; once the
// list covers half the shard's ports a sequential index-order sweep is
// cheaper (better locality), and because per-port decisions are mutually
// independent the two orders produce identical results.
//
//smartlint:hotpath
func (f *Fabric) linkShard(sh *shardState, cycle int64) {
	if f.wires != nil {
		f.commitWireArrivals(sh, cycle)
	}
	if 2*sh.linkActive.len() >= sh.pHi-sh.pLo {
		for pid := sh.pLo; pid < sh.pHi; pid++ {
			if f.portOcc[pid] > 0 {
				f.linkPort(sh, int32(pid), cycle)
			}
		}
		return
	}
	sh.scratch = append(sh.scratch[:0], sh.linkActive.items...)
	for _, pid := range sh.scratch {
		f.linkPort(sh, pid, cycle)
	}
}

// linkPort arbitrates and advances one output port for the cycle.
//
//smartlint:hotpath
func (f *Fabric) linkPort(sh *shardState, pid int32, cycle int64) {
	if f.flt != nil && f.flt.blocked(pid, f.deg) {
		// A masked port holds its buffered flits in place; the port is
		// only visited when occupied, so each skip is one suppressed
		// transfer opportunity.
		sh.faultStalls++
		return
	}
	port := &f.ports[pid]
	lanes := f.outLanesOf(int(pid))
	n := len(lanes)
	start := int(f.linkRR[pid])
	switch port.Kind {
	case topology.PortRouter:
		peerBase := f.inOff[port.Peer*f.deg+port.PeerPort]
		for i := 0; i < n; i++ {
			l := (start + i) % n
			ol := &lanes[l]
			if ol.n == 0 {
				continue
			}
			if ol.credits == 0 {
				sh.creditStalls++
				continue
			}
			fl := ol.front()
			if fl.MovedAt >= cycle {
				continue
			}
			moved := f.popOut(sh, pid, ol)
			moved.MovedAt = cycle
			ol.credits--
			if f.wires != nil {
				f.pushWire(sh, pid, flight{fl: moved, lane: int16(l), at: cycle + int64(f.Cfg.LinkCycles) - 1})
			} else {
				f.sendIn(sh, port.Peer, peerBase+int32(l), moved)
			}
			f.linkRR[pid] = int32((l + 1) % n)
			f.linkFlits[pid]++
			sh.progress++
			break
		}
	case topology.PortNode:
		// Ejection channel: the node consumes one flit per cycle;
		// its buffers never back-pressure the router.
		for i := 0; i < n; i++ {
			l := (start + i) % n
			ol := &lanes[l]
			if ol.n == 0 {
				continue
			}
			fl := ol.front()
			if fl.MovedAt >= cycle {
				continue
			}
			moved := f.popOut(sh, pid, ol)
			if f.wires != nil {
				moved.MovedAt = cycle
				f.pushWire(sh, pid, flight{fl: moved, lane: int16(l), at: cycle + int64(f.Cfg.LinkCycles) - 1})
			} else {
				f.deliver(sh, moved, cycle)
			}
			f.linkRR[pid] = int32((l + 1) % n)
			f.linkFlits[pid]++
			sh.progress++
			break
		}
	}
}

// commitWireArrivals lands every in-flight flit whose flight time has
// elapsed: into the neighbour's input lane (the credit consumed at send
// time reserved the slot; cross-shard lanes go through the mailbox) or,
// on ejection wires, into the destination NIC, which always shares the
// sending router's shard. Only wires with flits in flight are visited.
//
//smartlint:hotpath
func (f *Fabric) commitWireArrivals(sh *shardState, cycle int64) {
	sh.scratch = append(sh.scratch[:0], sh.wireActive.items...)
	for _, pid := range sh.scratch {
		w := &f.wires[pid]
		port := &f.ports[pid]
		for !w.empty() && w.front().at <= cycle {
			fl := w.pop()
			switch port.Kind {
			case topology.PortRouter:
				arrived := fl.fl
				arrived.MovedAt = fl.at
				f.sendIn(sh, port.Peer, f.inOff[port.Peer*f.deg+port.PeerPort]+int32(fl.lane), arrived)
			case topology.PortNode:
				f.deliver(sh, fl.fl, fl.at)
			}
			sh.progress++
		}
		if w.empty() {
			sh.wireActive.remove(pid)
		}
	}
}

// deliver records the arrival of a flit at its destination NIC. Wormhole
// switching must deliver each packet's flits exactly once and in order;
// the fabric asserts it on every flit. The ejection port and its NIC
// belong to sh, and a packet is only ever in flight toward one
// destination, so its record is written by exactly one shard.
//
//smartlint:hotpath
func (f *Fabric) deliver(sh *shardState, fl Flit, cycle int64) {
	pk := &f.Packets[fl.Packet]
	if fl.Seq != pk.deliverNext {
		panic(fmt.Sprintf("wormhole: packet %d delivered flit %d out of order (expected %d)", fl.Packet, fl.Seq, pk.deliverNext))
	}
	pk.deliverNext++
	if fl.Kind.IsTail() && fl.Seq != pk.Flits-1 {
		panic(fmt.Sprintf("wormhole: packet %d tail at sequence %d, want %d", fl.Packet, fl.Seq, pk.Flits-1))
	}
	if fl.Kind.IsHead() {
		pk.HeadAt = cycle
	}
	if fl.Kind.IsTail() {
		pk.TailAt = cycle
		sh.counters.PacketsDelivered++
		if f.Tracer != nil {
			//smartlint:allow shardsafe — a Tracer forces the serial schedule (parallelCycle uses RunSerial), so callbacks never run concurrently
			f.Tracer.PacketDelivered(cycle, fl.Packet)
		}
	}
	sh.counters.FlitsDelivered++
	sh.inFlight--
}

// crossbarStage is the sequential driver for the crossbar stage;
// xbarShard has the semantics.
func (f *Fabric) crossbarStage(cycle int64) {
	for i := range f.shards {
		f.xbarShard(&f.shards[i], cycle)
	}
}

// xbarShard moves flits from bound input lanes into their allocated
// output lanes — one flit per lane per cycle, any number of lanes in
// parallel ("multiple virtual channels can be active at the input and
// output ports of the crossbar", §4) — and sends the credit back to the
// upstream switch. The tail flit's passage releases both bindings. Only
// lanes on the bound-and-occupied work list are visited — by index-order
// sweep once the list covers half the shard's lanes (better locality);
// per-lane moves are independent because every output lane has exactly
// one bound input, so iteration order cannot change the outcome.
//
//smartlint:hotpath
func (f *Fabric) xbarShard(sh *shardState, cycle int64) {
	if 2*sh.xbarActive.len() >= int(sh.inHi-sh.inLo) {
		for id := sh.inLo; id < sh.inHi; id++ {
			if il := &f.in[id]; il.n > 0 && il.bound != noRef {
				f.xbarLane(sh, id, cycle)
			}
		}
		return
	}
	sh.scratch = append(sh.scratch[:0], sh.xbarActive.items...)
	for _, id := range sh.scratch {
		f.xbarLane(sh, id, cycle)
	}
}

// xbarLane advances one bound input lane through the crossbar.
//
//smartlint:hotpath
func (f *Fabric) xbarLane(sh *shardState, id int32, cycle int64) {
	il := &f.in[id]
	if il.n == 0 || il.bound == noRef {
		return
	}
	fl := il.front()
	if fl.MovedAt >= cycle {
		return
	}
	r := int(il.router)
	if f.flt != nil && f.flt.routerDown[r] > 0 {
		return // dead router: crossbar frozen, bindings held
	}
	op, olIdx := il.bound.unpack()
	opid := int32(r*f.deg + op)
	ol := &f.out[f.outOff[opid]+int32(olIdx)]
	if ol.full() {
		return
	}
	moved := il.pop()
	moved.MovedAt = cycle
	f.pushOut(sh, opid, ol, moved)
	sh.progress++
	if moved.Kind.IsTail() {
		il.bound = noRef
		ol.boundIn = noRef
		sh.xbarActive.remove(id)
		if il.n > 0 {
			// The next packet's header is already buffered behind
			// the departed tail: the lane presents it for routing.
			f.addUnrouted(sh, r)
		}
	} else if il.n == 0 {
		sh.xbarActive.remove(id)
	}
	// Ack to the upstream side: a buffer slot was released in
	// this input lane. A router peer may live in another shard, so the
	// ack goes to that shard's mailbox; a NIC peer is attached to this
	// router and is always shard-local.
	port := &f.ports[r*f.deg+int(il.port)]
	switch port.Kind {
	case topology.PortRouter:
		cr := laneRefAt{router: int32(port.Peer), ref: packRef(port.PeerPort, int(il.lane))}
		if d := f.routerShard[port.Peer]; int(d) != sh.id {
			sh.mailCredits[d] = append(sh.mailCredits[d], cr)
		} else {
			sh.pendingCredits = append(sh.pendingCredits, cr)
		}
	case topology.PortNode:
		sh.pendingNIC = append(sh.pendingNIC, int32(port.Peer)*packRadix+int32(il.lane))
	}
}

// routeRouter gives router r its one routing decision for the cycle: a
// round-robin scan over the router's contiguous input-lane range, in the
// same (port, lane) order a dense per-port scan would use.
//
//smartlint:hotpath
func (f *Fabric) routeRouter(sh *shardState, r int, cycle int64) {
	if f.flt != nil && f.flt.routerDown[r] > 0 {
		return // dead router: headers stay presented until revival
	}
	base := f.inOff[r*f.deg]
	n := int(f.inOff[(r+1)*f.deg] - base)
	for i := 0; i < n; i++ {
		idx := (int(f.routeRR[r]) + i) % n
		id := base + int32(idx)
		il := &f.in[id]
		if il.n == 0 || il.bound != noRef {
			continue
		}
		fl := il.front()
		if fl.MovedAt >= cycle {
			continue
		}
		p, l := int(il.port), int(il.lane)
		if !fl.Kind.IsHead() {
			panic(fmt.Sprintf("wormhole: unbound non-header flit at router %d port %d lane %d", r, p, l))
		}
		if f.Cfg.StoreAndForward && !il.holdsWholePacket(&f.Packets[fl.Packet]) {
			continue
		}
		f.routeRR[r] = int32((idx + 1) % n)
		op, ol, ok := f.Alg.Route(f, r, p, l, fl.Packet)
		if ok {
			out := f.outLaneAt(r, op, ol)
			if !out.free() {
				panic(fmt.Sprintf("wormhole: algorithm %s allocated non-free lane (%d,%d) at router %d", f.Alg.Name(), op, ol, r))
			}
			il.bound = packRef(op, ol)
			out.boundIn = packRef(p, l)
			fl.MovedAt = cycle // routing itself takes T_routing = 1 cycle
			f.Packets[fl.Packet].Hops++
			sh.headersRouted++
			sh.progress++
			f.dropUnrouted(sh, r)
			sh.xbarActive.add(id)
			if f.Tracer != nil {
				//smartlint:allow shardsafe — a Tracer forces the serial schedule (parallelCycle uses RunSerial), so callbacks never run concurrently
				f.Tracer.HeaderRouted(cycle, fl.Packet, r, p, l, op, ol)
			}
		}
		break // one routing decision per switch per cycle
	}
}

// routingStage is the sequential driver for the routing stage;
// routeShard has the semantics.
func (f *Fabric) routingStage(cycle int64) {
	for i := range f.shards {
		f.routeShard(&f.shards[i], cycle)
	}
}

// routeShard routes at most one header per switch per cycle (§4): a
// round-robin arbiter picks the next input lane presenting an unrouted
// header and asks the routing algorithm for an output lane. On success
// the lanes are bound; on failure the cycle is spent and the arbiter
// moves on, so a blocked header cannot starve the others. Only routers
// with at least one presented header are visited (index-order sweep once
// half the shard's routers qualify); routing decisions are per-router
// local, so the visiting order is immaterial.
//
//smartlint:hotpath
func (f *Fabric) routeShard(sh *shardState, cycle int64) {
	if f.Cfg.RouteEvery > 1 && cycle%int64(f.Cfg.RouteEvery) != 0 {
		return
	}
	if 2*sh.routeActive.len() >= sh.rHi-sh.rLo {
		for r := sh.rLo; r < sh.rHi; r++ {
			if f.unrouted[r] > 0 {
				f.routeRouter(sh, r, cycle)
			}
		}
		return
	}
	sh.scratch = append(sh.scratch[:0], sh.routeActive.items...)
	for _, r32 := range sh.scratch {
		f.routeRouter(sh, int(r32), cycle)
	}
}

// injectionStage is the sequential driver for the injection stage;
// injectShard has the semantics.
func (f *Fabric) injectionStage(cycle int64) {
	for i := range f.shards {
		f.injectShard(&f.shards[i], cycle)
	}
}

// injectShard advances the NIC injection streams: each stream pushes
// the next flit of its current packet into the router's injection lane
// when a credit is available, and picks up the next queued packet after
// the tail leaves. Network latency is measured from the cycle the header
// enters the injection lane. Only NICs with pending traffic are visited
// (index-order sweep once half the shard's NICs qualify; NICs are
// mutually independent, so order is immaterial); a NIC leaves the active
// list when its queue and streams empty.
//
//smartlint:hotpath
func (f *Fabric) injectShard(sh *shardState, cycle int64) {
	if 2*sh.nicActive.len() >= sh.nHi-sh.nLo {
		for n := sh.nLo; n < sh.nHi; n++ {
			if sh.nicActive.contains(int32(n)) {
				f.injectNIC(sh, int32(n), cycle)
			}
		}
		return
	}
	sh.scratch = append(sh.scratch[:0], sh.nicActive.items...)
	for _, n32 := range sh.scratch {
		f.injectNIC(sh, n32, cycle)
	}
}

// injectNIC advances every injection stream of one NIC for the cycle.
//
//smartlint:hotpath
func (f *Fabric) injectNIC(sh *shardState, n32 int32, cycle int64) {
	nc := &f.nics[n32]
	if f.flt != nil && f.flt.routerDown[f.in[nc.base].router] > 0 {
		return // attach router dead: the NIC freezes with it
	}
	for l := range nc.lanes {
		st := &nc.lanes[l]
		if st.cur == NoPacket {
			if nc.qlen() == 0 {
				continue
			}
			st.cur = nc.qpop()
			st.nextSeq = 0
		}
		if st.credit == 0 {
			continue
		}
		pk := &f.Packets[st.cur]
		var kind FlitKind
		if st.nextSeq == 0 {
			kind |= FlitHead
		}
		if st.nextSeq == pk.Flits-1 {
			kind |= FlitTail
		}
		f.pushIn(sh, nc.base+int32(l), Flit{
			Packet: st.cur, Seq: st.nextSeq, MovedAt: cycle, Kind: kind,
		})
		st.credit--
		sh.counters.FlitsInjected++
		sh.inFlight++
		sh.progress++
		if st.nextSeq == 0 {
			pk.InjectedAt = cycle
			sh.counters.PacketsInjected++
		}
		st.nextSeq++
		if kind.IsTail() {
			st.cur = NoPacket
			sh.queued--
		}
	}
	if nc.qlen() == 0 {
		idle := true
		for l := range nc.lanes {
			if nc.lanes[l].cur != NoPacket {
				idle = false
				break
			}
		}
		if idle {
			sh.nicActive.remove(n32)
		}
	}
}

// creditStage is the sequential driver for the credit commit; creditShard
// has the semantics.
func (f *Fabric) creditStage(cycle int64) {
	for i := range f.shards {
		f.creditShard(&f.shards[i])
	}
}

// creditShard commits the cycle's deferred credit returns for one shard
// (the ack lines take one cycle).
//
//smartlint:hotpath
func (f *Fabric) creditShard(sh *shardState) {
	for _, c := range sh.pendingCredits {
		f.applyCredit(c)
	}
	sh.pendingCredits = sh.pendingCredits[:0]
	for _, c := range sh.pendingNIC {
		node, lane := int(c)/packRadix, int(c)%packRadix
		st := &f.nics[node].lanes[lane]
		st.credit++
		if int(st.credit) > f.Cfg.BufDepth {
			panic("wormhole: NIC credit overflow")
		}
	}
	sh.pendingNIC = sh.pendingNIC[:0]
}

// applyCredit returns one buffer slot to the addressed output lane.
//
//smartlint:hotpath
func (f *Fabric) applyCredit(c laneRefAt) {
	p, l := c.ref.unpack()
	ol := f.outLaneAt(int(c.router), p, l)
	ol.credits++
	if int(ol.credits) > f.Cfg.BufDepth {
		panic("wormhole: credit overflow")
	}
}

// LinkFlits returns the number of flits transmitted out of router r's
// port p since construction (or the last ResetLinkStats).
func (f *Fabric) LinkFlits(r, p int) int64 { return f.linkFlits[r*f.deg+p] }

// ResetLinkStats zeroes the per-link flit counters, typically at the end
// of the warm-up period.
func (f *Fabric) ResetLinkStats() {
	for i := range f.linkFlits {
		f.linkFlits[i] = 0
	}
}

// CheckInvariants verifies the fabric's structural invariants; tests call
// it between cycles. It checks credit conservation (credits plus remote
// lane occupancy plus in-transit acks equal the buffer depth for every
// router-to-router lane), binding reciprocity, and that every active-set
// work list agrees with a dense recomputation of its membership
// predicate.
func (f *Fabric) CheckInvariants() error {
	// Count pending acks per (router, out lane), including acks still in
	// cross-shard mailboxes (empty between cycles, but CheckInvariants
	// should not depend on that).
	pending := map[laneRefAt]int{}
	for si := range f.shards {
		sh := &f.shards[si]
		for _, c := range sh.pendingCredits {
			pending[c]++
		}
		for _, box := range sh.mailCredits {
			for _, c := range box {
				pending[c]++
			}
		}
	}
	for r := 0; r < f.Top.Routers(); r++ {
		for p := 0; p < f.deg; p++ {
			pid := r*f.deg + p
			port := f.ports[pid]
			if port.Kind != topology.PortRouter {
				continue
			}
			outLanes := f.outLanesOf(pid)
			for l := range outLanes {
				ol := &outLanes[l]
				remote := f.inLaneAt(port.Peer, port.PeerPort, l)
				onWire := 0
				if f.wires != nil {
					w := &f.wires[pid]
					for i := w.head; i < len(w.q); i++ {
						if int(w.q[i].lane) == l {
							onWire++
						}
					}
				}
				got := int(ol.credits) + remote.n + onWire + pending[laneRefAt{router: int32(r), ref: packRef(p, l)}]
				if got != f.Cfg.BufDepth {
					return fmt.Errorf("wormhole: credit conservation violated at router %d port %d lane %d: credits %d + remote %d + wire %d + pending = %d, want %d",
						r, p, l, ol.credits, remote.n, onWire, got, f.Cfg.BufDepth)
				}
				if ol.boundIn != noRef {
					ip, il := ol.boundIn.unpack()
					if f.inLaneAt(r, ip, il).bound != packRef(p, l) {
						return fmt.Errorf("wormhole: asymmetric binding at router %d: out (%d,%d) claims in (%d,%d)", r, p, l, ip, il)
					}
				}
			}
			inLanes := f.inLanesOf(pid)
			for l := range inLanes {
				il := &inLanes[l]
				if il.bound != noRef {
					op, olIdx := il.bound.unpack()
					if f.outLaneAt(r, op, olIdx).boundIn != packRef(p, l) {
						return fmt.Errorf("wormhole: asymmetric binding at router %d: in (%d,%d) claims out (%d,%d)", r, p, l, op, olIdx)
					}
				}
			}
		}
	}
	return f.checkWorkLists()
}

// checkWorkLists verifies that every shard's incremental work lists match
// a dense recomputation of their membership predicates over the shard's
// ranges. The work lists are pure acceleration state: any disagreement
// means a stage would skip (or double-visit) live traffic.
func (f *Fabric) checkWorkLists() error {
	var queued int64
	for si := range f.shards {
		sh := &f.shards[si]
		for pid := sh.pLo; pid < sh.pHi; pid++ {
			var occ int32
			for _, ol := range f.outLanesOf(pid) {
				if ol.n > 0 {
					occ++
				}
			}
			if occ != f.portOcc[pid] {
				return fmt.Errorf("wormhole: port %d occupancy count %d, want %d", pid, f.portOcc[pid], occ)
			}
			if (occ > 0) != sh.linkActive.contains(int32(pid)) {
				return fmt.Errorf("wormhole: port %d link work-list membership %v disagrees with occupancy %d", pid, sh.linkActive.contains(int32(pid)), occ)
			}
		}
		for id := sh.inLo; id < sh.inHi; id++ {
			il := &f.in[id]
			want := il.bound != noRef && il.n > 0
			if want != sh.xbarActive.contains(id) {
				return fmt.Errorf("wormhole: input lane %d (router %d port %d lane %d) crossbar work-list membership %v, want %v",
					id, il.router, il.port, il.lane, !want, want)
			}
		}
		for r := sh.rLo; r < sh.rHi; r++ {
			var cand int32
			base := f.inOff[r*f.deg]
			for id := base; id < f.inOff[(r+1)*f.deg]; id++ {
				if f.in[id].n > 0 && f.in[id].bound == noRef {
					cand++
				}
			}
			if cand != f.unrouted[r] {
				return fmt.Errorf("wormhole: router %d unrouted count %d, want %d", r, f.unrouted[r], cand)
			}
			if (cand > 0) != sh.routeActive.contains(int32(r)) {
				return fmt.Errorf("wormhole: router %d routing work-list membership %v disagrees with %d candidates", r, sh.routeActive.contains(int32(r)), cand)
			}
		}
		for n := sh.nLo; n < sh.nHi; n++ {
			nc := &f.nics[n]
			work := nc.qlen() > 0
			queued += int64(nc.qlen())
			for l := range nc.lanes {
				if nc.lanes[l].cur != NoPacket {
					work = true
					queued++
				}
			}
			if work && !sh.nicActive.contains(int32(n)) {
				return fmt.Errorf("wormhole: NIC %d has pending traffic but is not on the injection work list", n)
			}
		}
		if f.wires != nil {
			for pid := sh.pLo; pid < sh.pHi; pid++ {
				if (!f.wires[pid].empty()) != sh.wireActive.contains(int32(pid)) {
					return fmt.Errorf("wormhole: wire %d work-list membership %v disagrees with occupancy", pid, sh.wireActive.contains(int32(pid)))
				}
			}
		}
	}
	if got := f.QueuedPackets(); queued != got {
		return fmt.Errorf("wormhole: queued-packet counter %d, want %d", got, queued)
	}
	return nil
}
