package wormhole

import (
	"fmt"

	"smart/internal/sim"
	"smart/internal/topology"
)

// Config sets the microarchitectural parameters of the fabric.
type Config struct {
	// VCs is the number of virtual channels multiplexed on each physical
	// link (1, 2 or 4 in the paper).
	VCs int
	// BufDepth is the capacity, in flits, of each input and output lane
	// (4 in the paper).
	BufDepth int
	// PacketFlits is the packet length in flits: the paper's 64-byte
	// packets are 32 flits on the tree (2-byte flits) and 16 on the cube
	// (4-byte flits).
	PacketFlits int
	// InjLanes is the number of lanes on the injection channel. The paper
	// uses a single injection channel between processor and router
	// (source throttling, §3); the ablation harness can raise it.
	InjLanes int
	// WatchdogCycles, when positive, makes the fabric panic if no flit
	// advances for that many consecutive cycles while flits are in
	// flight — a deadlock detector for tests. Zero disables it.
	WatchdogCycles int64
	// StoreAndForward, when true, gates routing on the whole packet
	// being buffered in the input lane — the pre-wormhole switching
	// discipline whose distance-times-length latency wormhole routing
	// was invented to avoid. It requires BufDepth >= PacketFlits. (The
	// middle ground, virtual cut-through, is wormhole with BufDepth >=
	// PacketFlits and no gate.)
	StoreAndForward bool
	// RouteEvery stretches the routing stage: a switch routes at most
	// one header every RouteEvery cycles (default 1). The ablation
	// harness uses it to de-equalize the pipeline and emulate a slower
	// routing decision (a larger T_routing in cost-model terms).
	RouteEvery int
	// LinkCycles is the flit flight time across a physical link in
	// cycles (default 1). Values above one model pipelined long wires:
	// a link still accepts one flit per cycle (wire pipelining keeps the
	// throughput) but each flit arrives LinkCycles later — the
	// alternative to the paper's treatment of the fat-tree's medium
	// wires, which folds the whole wire delay into a slower clock.
	LinkCycles int
}

func (c Config) validate() error {
	if c.VCs < 1 || c.VCs >= packRadix {
		return fmt.Errorf("wormhole: VCs must be in [1,%d), got %d", packRadix, c.VCs)
	}
	if c.BufDepth < 1 {
		return fmt.Errorf("wormhole: BufDepth must be positive, got %d", c.BufDepth)
	}
	if c.PacketFlits < 1 {
		return fmt.Errorf("wormhole: PacketFlits must be positive, got %d", c.PacketFlits)
	}
	if c.InjLanes < 1 || c.InjLanes >= packRadix {
		return fmt.Errorf("wormhole: InjLanes must be in [1,%d), got %d", packRadix, c.InjLanes)
	}
	if c.StoreAndForward && c.BufDepth < c.PacketFlits {
		return fmt.Errorf("wormhole: store-and-forward needs BufDepth >= PacketFlits (%d < %d)", c.BufDepth, c.PacketFlits)
	}
	if c.RouteEvery < 0 {
		return fmt.Errorf("wormhole: RouteEvery must be non-negative, got %d", c.RouteEvery)
	}
	if c.LinkCycles < 0 {
		return fmt.Errorf("wormhole: LinkCycles must be non-negative, got %d", c.LinkCycles)
	}
	return nil
}

// router is the per-switch state: input and output lanes per port, plus
// the fair-arbitration pointers.
type router struct {
	in  [][]inLane  // [port][lane]
	out [][]outLane // [port][lane]
	// routeScan flattens the input (port, lane) pairs the routing stage
	// scans; routeRR is the round-robin pointer into it.
	routeScan []laneRef
	routeRR   int
	// linkRR is the per-output-port round-robin pointer over lanes.
	linkRR []int
}

// nicLane is one injection stream of a NIC. With source throttling
// (InjLanes == 1) a node has a single stream, so at most one packet is
// entering the network at any time.
type nicLane struct {
	cur     PacketID
	nextSeq int32
	credit  int16
}

// nic is a processing node's network interface: an unbounded source queue
// of generated packets and the injection stream(s) feeding the router's
// injection lane(s). Ejection needs no state: the node consumes flits at
// link rate.
type nic struct {
	queue []PacketID
	lanes []nicLane
}

// Counters aggregates the fabric's running totals; metrics snapshot them
// at the warm-up boundary and at the horizon.
type Counters struct {
	PacketsCreated   int64
	PacketsInjected  int64
	PacketsDelivered int64
	FlitsInjected    int64
	FlitsDelivered   int64
}

// Fabric is a complete simulated network: topology, routers, NICs and the
// packet table, advanced one cycle at a time by the stages it registers on
// a sim.Engine.
type Fabric struct {
	Top topology.Topology
	Cfg Config
	Alg RoutingAlgorithm
	// Packets is the packet table; PacketID indexes it. Routing
	// algorithms may mutate RouteBits; everything else is owned by the
	// fabric.
	Packets []PacketInfo
	// Tracer, when non-nil, observes routing and delivery events.
	Tracer Tracer

	routers []router
	nics    []nic

	// Deferred credit returns, applied at the end of the cycle to model
	// the one-cycle ack lines.
	pendingCredits []laneRefAt
	pendingNIC     []int32

	counters     Counters
	inFlight     int64 // flits injected but not yet delivered
	lastProgress int64
	cycle        int64

	// linkFlits[r][p] counts flits transmitted out of router r's port p
	// (including ejection ports); internal/chanstats aggregates it into
	// per-level and per-dimension channel utilization.
	linkFlits [][]int64

	// wires[r][p] holds the flits in flight on the (pipelined) wire
	// leaving router r's port p; allocated only when LinkCycles > 1.
	// Constant flight time means arrival order equals send order, so a
	// FIFO suffices, and the credit consumed at send time guarantees the
	// remote buffer slot on arrival.
	wires [][]wireFIFO
}

// flight is one flit in transit on a pipelined wire.
type flight struct {
	fl   Flit
	lane int16
	at   int64 // arrival cycle
}

// wireFIFO is an amortized O(1) queue of flights.
type wireFIFO struct {
	q    []flight
	head int
}

func (w *wireFIFO) push(f flight) { w.q = append(w.q, f) }

func (w *wireFIFO) empty() bool { return w.head >= len(w.q) }

func (w *wireFIFO) front() *flight { return &w.q[w.head] }

func (w *wireFIFO) pop() flight {
	f := w.q[w.head]
	w.head++
	if w.head == len(w.q) {
		w.q = w.q[:0]
		w.head = 0
	}
	return f
}

// laneRefAt addresses an output lane anywhere in the fabric.
type laneRefAt struct {
	router int32
	ref    laneRef
}

// NewFabric assembles a fabric over the given topology. The routing
// algorithm's virtual-channel requirement must match cfg.VCs.
func NewFabric(top topology.Topology, cfg Config, alg RoutingAlgorithm) (*Fabric, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if alg.VCs() != cfg.VCs {
		return nil, fmt.Errorf("wormhole: algorithm %s needs %d VCs but config has %d", alg.Name(), alg.VCs(), cfg.VCs)
	}
	f := &Fabric{Top: top, Cfg: cfg, Alg: alg}
	f.routers = make([]router, top.Routers())
	for r := range f.routers {
		ports := top.RouterPorts(r)
		rt := &f.routers[r]
		rt.in = make([][]inLane, len(ports))
		rt.out = make([][]outLane, len(ports))
		rt.linkRR = make([]int, len(ports))
		for p, port := range ports {
			var inN, outN int
			switch port.Kind {
			case topology.PortRouter:
				inN, outN = cfg.VCs, cfg.VCs
			case topology.PortNode:
				// The node port's input side is the injection channel;
				// its output side is the ejection channel with the full
				// complement of virtual channels ("the processing nodes
				// have a compatible interface with the same number of
				// virtual channels", §4).
				inN, outN = cfg.InjLanes, cfg.VCs
			case topology.PortUnused:
				inN, outN = 0, 0
			}
			rt.in[p] = make([]inLane, inN)
			rt.out[p] = make([]outLane, outN)
			for l := range rt.in[p] {
				rt.in[p][l] = inLane{fifo: newFifo(cfg.BufDepth), bound: noRef}
				rt.routeScan = append(rt.routeScan, packRef(p, l))
			}
			for l := range rt.out[p] {
				rt.out[p][l] = outLane{fifo: newFifo(cfg.BufDepth), credits: int16(cfg.BufDepth), boundIn: noRef}
			}
		}
	}
	f.linkFlits = make([][]int64, top.Routers())
	for r := range f.linkFlits {
		f.linkFlits[r] = make([]int64, top.Degree())
	}
	if cfg.LinkCycles > 1 {
		f.wires = make([][]wireFIFO, top.Routers())
		for r := range f.wires {
			f.wires[r] = make([]wireFIFO, top.Degree())
		}
	}
	f.nics = make([]nic, top.Nodes())
	for n := range f.nics {
		lanes := make([]nicLane, cfg.InjLanes)
		for l := range lanes {
			lanes[l] = nicLane{cur: NoPacket, credit: int16(cfg.BufDepth)}
		}
		f.nics[n] = nic{lanes: lanes}
	}
	return f, nil
}

// Register installs the fabric's pipeline stages on the engine in the
// canonical order: link transfer, crossbar transfer, routing, injection,
// credit commit. A traffic generator should be registered between routing
// and injection (or anywhere before injection) so packets created in a
// cycle can start injecting the same cycle.
func (f *Fabric) Register(e *sim.Engine) {
	e.RegisterFunc("link", f.linkStage)
	e.RegisterFunc("crossbar", f.crossbarStage)
	e.RegisterFunc("routing", f.routingStage)
	e.RegisterFunc("injection", f.injectionStage)
	e.RegisterFunc("credits", f.creditStage)
}

// Counters returns a snapshot of the running totals.
func (f *Fabric) Counters() Counters { return f.counters }

// InFlight returns the number of flits currently inside the network
// (injected but not delivered).
func (f *Fabric) InFlight() int64 { return f.inFlight }

// QueuedPackets returns the total number of packets waiting in source
// queues or part-way through injection.
func (f *Fabric) QueuedPackets() int64 {
	var total int64
	for n := range f.nics {
		total += int64(len(f.nics[n].queue))
		for _, ln := range f.nics[n].lanes {
			if ln.cur != NoPacket {
				total++
			}
		}
	}
	return total
}

// Drained reports whether no traffic remains anywhere: source queues,
// injection streams and the network itself are all empty.
func (f *Fabric) Drained() bool {
	return f.inFlight == 0 && f.QueuedPackets() == 0
}

// EnqueuePacket creates a packet from src to dst at the given cycle and
// places it on the source's queue. It returns the new packet's id. Packets
// with src == dst never enter the network (the paper's palindrome nodes
// under bit-reversal inject nothing); callers should not enqueue them.
func (f *Fabric) EnqueuePacket(src, dst int, cycle int64) PacketID {
	if src == dst {
		panic("wormhole: EnqueuePacket with src == dst")
	}
	id := PacketID(len(f.Packets))
	f.Packets = append(f.Packets, PacketInfo{
		Src: int32(src), Dst: int32(dst), Flits: int32(f.Cfg.PacketFlits),
		CreatedAt: cycle, InjectedAt: -1, HeadAt: -1, TailAt: -1,
	})
	f.nics[src].queue = append(f.nics[src].queue, id)
	f.counters.PacketsCreated++
	return id
}

// Packet returns the record of packet id.
func (f *Fabric) Packet(id PacketID) *PacketInfo { return &f.Packets[id] }

// Dest returns the destination node of packet id.
func (f *Fabric) Dest(id PacketID) int { return int(f.Packets[id].Dst) }

// OutLaneFree reports whether output lane (port, lane) of router r can
// accept a new packet: neither full nor bound to another input lane (§4).
func (f *Fabric) OutLaneFree(r, port, lane int) bool {
	return f.routers[r].out[port][lane].free()
}

// OutLaneCredits returns the credit count of output lane (port, lane) of
// router r — the known free space in the downstream input lane.
func (f *Fabric) OutLaneCredits(r, port, lane int) int {
	return int(f.routers[r].out[port][lane].credits)
}

// FreeLanes counts the free output lanes of (r, port) within lane index
// range [lo, hi): the "number of free virtual channels" the fat-tree
// algorithm uses to pick the least-loaded link (§2).
func (f *Fabric) FreeLanes(r, port, lo, hi int) int {
	lanes := f.routers[r].out[port]
	free := 0
	for l := lo; l < hi && l < len(lanes); l++ {
		if lanes[l].free() {
			free++
		}
	}
	return free
}

// linkStage moves at most one flit per physical channel direction: for
// every output port it fair-arbitrates among the lanes holding a flit that
// has a credit, and transfers the winner to the same-numbered input lane
// of the neighbouring switch (or delivers it, for ejection channels). It
// also advances the NIC injection streams, which are links in the same
// sense.
func (f *Fabric) linkStage(cycle int64) {
	f.cycle = cycle
	if f.wires != nil {
		f.commitWireArrivals(cycle)
	}
	for r := range f.routers {
		rt := &f.routers[r]
		ports := f.Top.RouterPorts(r)
		for p := range ports {
			lanes := rt.out[p]
			if len(lanes) == 0 {
				continue
			}
			switch ports[p].Kind {
			case topology.PortRouter:
				peer := &f.routers[ports[p].Peer]
				peerIn := peer.in[ports[p].PeerPort]
				n := len(lanes)
				start := rt.linkRR[p]
				for i := 0; i < n; i++ {
					l := (start + i) % n
					ol := &lanes[l]
					if ol.n == 0 || ol.credits == 0 {
						continue
					}
					fl := ol.front()
					if fl.MovedAt >= cycle {
						continue
					}
					moved := ol.pop()
					moved.MovedAt = cycle
					ol.credits--
					if f.wires != nil {
						f.wires[r][p].push(flight{fl: moved, lane: int16(l), at: cycle + int64(f.Cfg.LinkCycles) - 1})
					} else {
						peerIn[l].push(moved)
					}
					rt.linkRR[p] = (l + 1) % n
					f.linkFlits[r][p]++
					f.lastProgress = cycle
					break
				}
			case topology.PortNode:
				// Ejection channel: the node consumes one flit per cycle;
				// its buffers never back-pressure the router.
				n := len(lanes)
				start := rt.linkRR[p]
				for i := 0; i < n; i++ {
					l := (start + i) % n
					ol := &lanes[l]
					if ol.n == 0 {
						continue
					}
					fl := ol.front()
					if fl.MovedAt >= cycle {
						continue
					}
					moved := ol.pop()
					if f.wires != nil {
						moved.MovedAt = cycle
						f.wires[r][p].push(flight{fl: moved, lane: int16(l), at: cycle + int64(f.Cfg.LinkCycles) - 1})
					} else {
						f.deliver(moved, cycle)
					}
					rt.linkRR[p] = (l + 1) % n
					f.linkFlits[r][p]++
					f.lastProgress = cycle
					break
				}
			}
		}
	}
}

// commitWireArrivals lands every in-flight flit whose flight time has
// elapsed: into the neighbour's input lane (the credit consumed at send
// time reserved the slot) or, on ejection wires, into the destination
// NIC.
func (f *Fabric) commitWireArrivals(cycle int64) {
	for r := range f.wires {
		ports := f.Top.RouterPorts(r)
		for p := range f.wires[r] {
			w := &f.wires[r][p]
			for !w.empty() && w.front().at <= cycle {
				fl := w.pop()
				switch ports[p].Kind {
				case topology.PortRouter:
					arrived := fl.fl
					arrived.MovedAt = fl.at
					f.routers[ports[p].Peer].in[ports[p].PeerPort][fl.lane].push(arrived)
				case topology.PortNode:
					f.deliver(fl.fl, fl.at)
				}
				f.lastProgress = cycle
			}
		}
	}
}

// deliver records the arrival of a flit at its destination NIC. Wormhole
// switching must deliver each packet's flits exactly once and in order;
// the fabric asserts it on every flit.
func (f *Fabric) deliver(fl Flit, cycle int64) {
	pk := &f.Packets[fl.Packet]
	if fl.Seq != pk.deliverNext {
		panic(fmt.Sprintf("wormhole: packet %d delivered flit %d out of order (expected %d)", fl.Packet, fl.Seq, pk.deliverNext))
	}
	pk.deliverNext++
	if fl.Kind.IsTail() && fl.Seq != pk.Flits-1 {
		panic(fmt.Sprintf("wormhole: packet %d tail at sequence %d, want %d", fl.Packet, fl.Seq, pk.Flits-1))
	}
	if fl.Kind.IsHead() {
		pk.HeadAt = cycle
	}
	if fl.Kind.IsTail() {
		pk.TailAt = cycle
		f.counters.PacketsDelivered++
		if f.Tracer != nil {
			f.Tracer.PacketDelivered(cycle, fl.Packet)
		}
	}
	f.counters.FlitsDelivered++
	f.inFlight--
}

// crossbarStage moves flits from bound input lanes into their allocated
// output lanes — one flit per lane per cycle, any number of lanes in
// parallel ("multiple virtual channels can be active at the input and
// output ports of the crossbar", §4) — and sends the credit back to the
// upstream switch. The tail flit's passage releases both bindings.
func (f *Fabric) crossbarStage(cycle int64) {
	for r := range f.routers {
		rt := &f.routers[r]
		ports := f.Top.RouterPorts(r)
		for p := range rt.in {
			inLanes := rt.in[p]
			for l := range inLanes {
				il := &inLanes[l]
				if il.n == 0 || il.bound == noRef {
					continue
				}
				fl := il.front()
				if fl.MovedAt >= cycle {
					continue
				}
				op, olIdx := il.bound.unpack()
				ol := &rt.out[op][olIdx]
				if ol.full() {
					continue
				}
				moved := il.pop()
				moved.MovedAt = cycle
				ol.push(moved)
				f.lastProgress = cycle
				if moved.Kind.IsTail() {
					il.bound = noRef
					ol.boundIn = noRef
				}
				// Ack to the upstream side: a buffer slot was released in
				// this input lane.
				switch ports[p].Kind {
				case topology.PortRouter:
					f.pendingCredits = append(f.pendingCredits, laneRefAt{
						router: int32(ports[p].Peer),
						ref:    packRef(ports[p].PeerPort, l),
					})
				case topology.PortNode:
					f.pendingNIC = append(f.pendingNIC, int32(ports[p].Peer)*packRadix+int32(l))
				}
			}
		}
	}
}

// routingStage routes at most one header per switch per cycle (§4): a
// round-robin arbiter picks the next input lane presenting an unrouted
// header and asks the routing algorithm for an output lane. On success
// the lanes are bound; on failure the cycle is spent and the arbiter
// moves on, so a blocked header cannot starve the others.
func (f *Fabric) routingStage(cycle int64) {
	if f.Cfg.RouteEvery > 1 && cycle%int64(f.Cfg.RouteEvery) != 0 {
		return
	}
	for r := range f.routers {
		rt := &f.routers[r]
		n := len(rt.routeScan)
		for i := 0; i < n; i++ {
			idx := (rt.routeRR + i) % n
			p, l := rt.routeScan[idx].unpack()
			il := &rt.in[p][l]
			if il.n == 0 || il.bound != noRef {
				continue
			}
			fl := il.front()
			if fl.MovedAt >= cycle {
				continue
			}
			if !fl.Kind.IsHead() {
				panic(fmt.Sprintf("wormhole: unbound non-header flit at router %d port %d lane %d", r, p, l))
			}
			if f.Cfg.StoreAndForward && !il.holdsWholePacket(&f.Packets[fl.Packet]) {
				continue
			}
			rt.routeRR = (idx + 1) % n
			op, ol, ok := f.Alg.Route(f, r, p, l, fl.Packet)
			if ok {
				out := &rt.out[op][ol]
				if !out.free() {
					panic(fmt.Sprintf("wormhole: algorithm %s allocated non-free lane (%d,%d) at router %d", f.Alg.Name(), op, ol, r))
				}
				il.bound = packRef(op, ol)
				out.boundIn = packRef(p, l)
				fl.MovedAt = cycle // routing itself takes T_routing = 1 cycle
				f.Packets[fl.Packet].Hops++
				f.lastProgress = cycle
				if f.Tracer != nil {
					f.Tracer.HeaderRouted(cycle, fl.Packet, r, p, l, op, ol)
				}
			}
			break // one routing decision per switch per cycle
		}
	}
}

// injectionStage advances the NIC injection streams: each stream pushes
// the next flit of its current packet into the router's injection lane
// when a credit is available, and picks up the next queued packet after
// the tail leaves. Network latency is measured from the cycle the header
// enters the injection lane.
func (f *Fabric) injectionStage(cycle int64) {
	for n := range f.nics {
		nc := &f.nics[n]
		at := f.Top.NodeAttach(n)
		for l := range nc.lanes {
			st := &nc.lanes[l]
			if st.cur == NoPacket {
				if len(nc.queue) == 0 {
					continue
				}
				st.cur = nc.queue[0]
				copy(nc.queue, nc.queue[1:])
				nc.queue = nc.queue[:len(nc.queue)-1]
				st.nextSeq = 0
			}
			if st.credit == 0 {
				continue
			}
			pk := &f.Packets[st.cur]
			var kind FlitKind
			if st.nextSeq == 0 {
				kind |= FlitHead
			}
			if st.nextSeq == pk.Flits-1 {
				kind |= FlitTail
			}
			f.routers[at.Router].in[at.Port][l].push(Flit{
				Packet: st.cur, Seq: st.nextSeq, MovedAt: cycle, Kind: kind,
			})
			st.credit--
			f.counters.FlitsInjected++
			f.inFlight++
			f.lastProgress = cycle
			if st.nextSeq == 0 {
				pk.InjectedAt = cycle
				f.counters.PacketsInjected++
			}
			st.nextSeq++
			if kind.IsTail() {
				st.cur = NoPacket
			}
		}
	}
}

// creditStage commits the cycle's deferred credit returns (the ack lines
// take one cycle) and runs the deadlock watchdog.
func (f *Fabric) creditStage(cycle int64) {
	for _, c := range f.pendingCredits {
		p, l := c.ref.unpack()
		ol := &f.routers[c.router].out[p][l]
		ol.credits++
		if int(ol.credits) > f.Cfg.BufDepth {
			panic("wormhole: credit overflow")
		}
	}
	f.pendingCredits = f.pendingCredits[:0]
	for _, c := range f.pendingNIC {
		node, lane := int(c)/packRadix, int(c)%packRadix
		st := &f.nics[node].lanes[lane]
		st.credit++
		if int(st.credit) > f.Cfg.BufDepth {
			panic("wormhole: NIC credit overflow")
		}
	}
	f.pendingNIC = f.pendingNIC[:0]

	if f.Cfg.WatchdogCycles > 0 && f.inFlight > 0 && cycle-f.lastProgress > f.Cfg.WatchdogCycles {
		panic(fmt.Sprintf("wormhole: no progress for %d cycles with %d flits in flight (algorithm %s) — possible deadlock",
			cycle-f.lastProgress, f.inFlight, f.Alg.Name()))
	}
}

// LinkFlits returns the number of flits transmitted out of router r's
// port p since construction (or the last ResetLinkStats).
func (f *Fabric) LinkFlits(r, p int) int64 { return f.linkFlits[r][p] }

// ResetLinkStats zeroes the per-link flit counters, typically at the end
// of the warm-up period.
func (f *Fabric) ResetLinkStats() {
	for r := range f.linkFlits {
		for p := range f.linkFlits[r] {
			f.linkFlits[r][p] = 0
		}
	}
}

// CheckInvariants verifies the fabric's structural invariants; tests call
// it between cycles. It checks credit conservation (credits plus remote
// lane occupancy plus in-transit acks equal the buffer depth for every
// router-to-router lane) and binding reciprocity.
func (f *Fabric) CheckInvariants() error {
	// Count pending acks per (router, out lane).
	pending := map[laneRefAt]int{}
	for _, c := range f.pendingCredits {
		pending[c]++
	}
	for r := range f.routers {
		rt := &f.routers[r]
		ports := f.Top.RouterPorts(r)
		for p, port := range ports {
			if port.Kind != topology.PortRouter {
				continue
			}
			peer := &f.routers[port.Peer]
			for l := range rt.out[p] {
				ol := &rt.out[p][l]
				remote := &peer.in[port.PeerPort][l]
				onWire := 0
				if f.wires != nil {
					w := &f.wires[r][p]
					for i := w.head; i < len(w.q); i++ {
						if int(w.q[i].lane) == l {
							onWire++
						}
					}
				}
				got := int(ol.credits) + remote.n + onWire + pending[laneRefAt{router: int32(r), ref: packRef(p, l)}]
				if got != f.Cfg.BufDepth {
					return fmt.Errorf("wormhole: credit conservation violated at router %d port %d lane %d: credits %d + remote %d + wire %d + pending = %d, want %d",
						r, p, l, ol.credits, remote.n, onWire, got, f.Cfg.BufDepth)
				}
				if ol.boundIn != noRef {
					ip, il := ol.boundIn.unpack()
					if rt.in[ip][il].bound != packRef(p, l) {
						return fmt.Errorf("wormhole: asymmetric binding at router %d: out (%d,%d) claims in (%d,%d)", r, p, l, ip, il)
					}
				}
			}
			for l := range rt.in[p] {
				il := &rt.in[p][l]
				if il.bound != noRef {
					op, olIdx := il.bound.unpack()
					if rt.out[op][olIdx].boundIn != packRef(p, l) {
						return fmt.Errorf("wormhole: asymmetric binding at router %d: in (%d,%d) claims out (%d,%d)", r, p, l, op, olIdx)
					}
				}
			}
		}
	}
	return nil
}
