package wormhole

import (
	"strings"
	"testing"

	"smart/internal/sim"
	"smart/internal/topology"
)

// Failure-injection tests: deliberately corrupt fabric state and verify
// the invariant machinery detects each class of fault. A simulator whose
// checks cannot fail proves nothing when they pass.

// loadedFabric returns a fabric mid-flight with traffic in the buffers.
func loadedFabric(t *testing.T) (*Fabric, *sim.Engine) {
	t.Helper()
	f, cube := ringFabric(t, 8, Config{VCs: 2, BufDepth: 4, PacketFlits: 8, InjLanes: 1})
	f.Alg.(*greedyRing).vcs = 2
	for n := 0; n < cube.Nodes()-1; n++ {
		f.EnqueuePacket(n, n+1, 0)
	}
	e := sim.NewEngine()
	f.Register(e)
	e.Run(10) // enough to put flits into lanes
	if f.InFlight() == 0 {
		t.Fatal("fixture carries no traffic")
	}
	return f, e
}

func TestInjectedCreditLossDetected(t *testing.T) {
	f, _ := loadedFabric(t)
	// Steal a credit from a lane that currently has some.
	for pid := range f.ports {
		if f.ports[pid].Kind != topology.PortRouter {
			continue
		}
		lanes := f.outLanesOf(pid)
		for l := range lanes {
			if lanes[l].credits > 0 {
				lanes[l].credits--
				if err := f.CheckInvariants(); err == nil {
					t.Fatal("credit loss not detected")
				} else if !strings.Contains(err.Error(), "credit conservation") {
					t.Fatalf("wrong diagnosis: %v", err)
				}
				return
			}
		}
	}
	t.Fatal("no lane with credits found")
}

func TestInjectedCreditDuplicationDetected(t *testing.T) {
	f, _ := loadedFabric(t)
	for pid := range f.ports {
		if f.ports[pid].Kind != topology.PortRouter {
			continue
		}
		lanes := f.outLanesOf(pid)
		for l := range lanes {
			if int(lanes[l].credits) < f.Cfg.BufDepth {
				lanes[l].credits++
				if err := f.CheckInvariants(); err == nil {
					t.Fatal("credit duplication not detected")
				}
				return
			}
		}
	}
	t.Fatal("no partially drained lane found")
}

func TestInjectedBindingCorruptionDetected(t *testing.T) {
	f, _ := loadedFabric(t)
	// Find a bound input lane and corrupt its partner reference.
	for id := range f.in {
		il := &f.in[id]
		if il.bound == noRef {
			continue
		}
		op, ol := il.bound.unpack()
		f.outLaneAt(int(il.router), op, ol).boundIn = noRef // sever one side
		if err := f.CheckInvariants(); err == nil {
			t.Fatal("binding corruption not detected")
		} else if !strings.Contains(err.Error(), "binding") {
			t.Fatalf("wrong diagnosis: %v", err)
		}
		return
	}
	t.Skip("no bound lane at this point; fixture timing changed")
}

func TestOutOfOrderDeliveryPanics(t *testing.T) {
	f, _ := ringFabric(t, 4, Config{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 1})
	f.EnqueuePacket(0, 1, 0)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("out-of-order delivery not detected")
		} else if !strings.Contains(r.(string), "out of order") {
			t.Fatalf("wrong panic: %v", r)
		}
	}()
	// Deliver flit 2 before flits 0 and 1.
	f.deliver(&f.shards[0], Flit{Packet: 0, Seq: 2}, 10)
}

func TestShortPacketTailPanics(t *testing.T) {
	f, _ := ringFabric(t, 4, Config{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 1})
	f.EnqueuePacket(0, 1, 0)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("truncated packet not detected")
		} else if !strings.Contains(r.(string), "tail at sequence") {
			t.Fatalf("wrong panic: %v", r)
		}
	}()
	// A tail arriving at sequence 0 of a 4-flit packet means flits were
	// lost.
	f.deliver(&f.shards[0], Flit{Packet: 0, Seq: 0, Kind: FlitHead | FlitTail}, 10)
}

func TestCreditOverflowPanics(t *testing.T) {
	f, _ := loadedFabric(t)
	// Queue a bogus ack for a lane that is already at full credit.
	for pid := range f.ports {
		if f.ports[pid].Kind != topology.PortRouter {
			continue
		}
		lanes := f.outLanesOf(pid)
		for l := range lanes {
			if int(lanes[l].credits) == f.Cfg.BufDepth {
				f.shards[0].pendingCredits = append(f.shards[0].pendingCredits, laneRefAt{router: int32(pid / f.deg), ref: packRef(pid%f.deg, l)})
				defer func() {
					if recover() == nil {
						t.Fatal("credit overflow not detected")
					}
				}()
				f.creditStage(100)
				return
			}
		}
	}
	t.Skip("no full-credit lane at this point")
}
