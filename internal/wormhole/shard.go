package wormhole

// Sharded execution (DESIGN.md §12): the fabric is partitioned into
// contiguous router ranges, each owning its routers' ports, lanes,
// wires and attached NICs, plus private work lists, deferred-credit
// lists and counters. A cycle runs in two phases on a sim.Pool:
//
//	compute — every shard runs its link, crossbar, routing and
//	  injection stages over its own slices. Effects that would land in
//	  another shard (a flit crossing a boundary link, a credit ack to
//	  an upstream router across the cut) are staged in per-(src, dst)
//	  mailboxes instead of applied.
//	commit — after a barrier, every shard drains the mailboxes
//	  addressed to it in ascending source-shard order and applies its
//	  deferred credits.
//
// The result is bit-identical to the single-shard schedule: a flit
// arriving over a link is stamped MovedAt == cycle, so the same-cycle
// crossbar and routing stages skip it whether it is physically present
// (local push) or still in a mailbox (deferred push) — the one
// observable skew, the store-and-forward whole-packet gate, forces a
// single shard. Credits are commutative integer increments applied at
// end of cycle in both schedules. Counters are per-shard and summed on
// read, which is exact for integers. See the determinism argument in
// DESIGN.md §12.

import (
	"fmt"

	"smart/internal/sim"
	"smart/internal/topology"
)

// shardState is one shard's private slice of the fabric: the index
// ranges it owns, the work lists and deferred lists scoped to them, its
// counter deltas, and the outgoing mailboxes. A single-shard fabric has
// exactly one, covering everything — the sequential path.
//
//smartlint:shardowned
type shardState struct {
	id int

	// Owned contiguous ranges: routers [rLo, rHi), ports [pLo, pHi),
	// input lanes [inLo, inHi), NICs/nodes [nLo, nHi). Output lanes and
	// wires follow the port range.
	rLo, rHi   int
	pLo, pHi   int
	inLo, inHi int32
	nLo, nHi   int

	// Active-set work lists over the shard's own ranges; membership
	// invariants as documented on Fabric.
	linkActive  denseSet
	xbarActive  denseSet
	routeActive denseSet
	nicActive   denseSet
	wireActive  denseSet
	// scratch snapshots one work list at a stage's entry so membership
	// updates during the stage cannot disturb the iteration.
	scratch []int32

	// Deferred credit returns to lanes this shard owns, applied at the
	// end of the cycle to model the one-cycle ack lines.
	pendingCredits []laneRefAt
	pendingNIC     []int32

	// Counter deltas; fabric getters sum them across shards. inFlight
	// is a signed delta — injection adds at the source's shard,
	// delivery subtracts at the destination's — so only the sum is
	// meaningful.
	counters      Counters
	inFlight      int64
	queued        int64
	progress      int64
	headersRouted int64
	creditStalls  int64
	faultStalls   int64

	// Outgoing mailboxes, indexed by destination shard: boundary flits
	// to push into a neighbour shard's input lanes, and credit acks to
	// an upstream router across the cut. Drained at commit in ascending
	// source order, so the destination's work-list history stays
	// deterministic.
	mailFlits   [][]arrival
	mailCredits [][]laneRefAt
}

// arrival is one boundary flit addressed to input lane `lane`.
type arrival struct {
	lane int32
	fl   Flit
}

// SetShards repartitions the fabric into s contiguous router shards and
// arms the two-phase parallel cycle driver (Register installs it when
// more than one shard exists). It must be called on a pristine fabric —
// before the first cycle, the first packet and Register.
//
// s is clamped to [1, Routers()], and a structural partitioner may
// clamp further when the topology's grain admits fewer shards; Shards()
// reports the effective count. Store-and-forward switching forces a
// single shard: its whole-packet routing gate inspects same-cycle
// arrivals, which the deferred cross-shard commit hides. The shard
// count is an execution detail — results are bit-identical for every
// value — so it is deliberately absent from config fingerprints.
func (f *Fabric) SetShards(s int) error {
	if f.cycle != 0 || len(f.Packets) != 0 {
		return fmt.Errorf("wormhole: SetShards on a running fabric (cycle %d, %d packets)", f.cycle, len(f.Packets))
	}
	routers := f.Top.Routers()
	if s < 1 {
		s = 1
	}
	if s > routers {
		s = routers
	}
	if f.Cfg.StoreAndForward {
		s = 1
	}
	var cuts []int
	if p, ok := f.Top.(topology.Partitioner); ok && s > 1 {
		cuts = p.PartitionRouters(s)
	} else {
		cuts = topology.EvenCuts(routers, s)
	}
	// Partitioners clamp unreachable shard counts (more shards than a
	// structural grain admits) instead of padding the plan with empty
	// shards, so the effective count is the plan's, not the request's.
	s = len(cuts) - 1
	if err := topology.ValidateCuts(cuts, routers, s); err != nil {
		return err
	}
	if err := f.initShards(cuts); err != nil {
		return err
	}
	if s > 1 && (f.pool == nil || f.pool.Workers() != s) {
		if f.pool != nil {
			f.pool.Close()
		}
		f.pool = sim.NewPool(s)
	}
	return nil
}

// Shards returns the effective shard count. The value is an execution
// detail of this process (derived from requested parallelism and
// GOMAXPROCS upstream), so anything computed from it is barred from
// content digests by the digestpure rule.
//
//smartlint:taint
func (f *Fabric) Shards() int { return len(f.shards) }

// initShards builds the per-shard state for the given cut plan
// (cuts[i] to cuts[i+1] is shard i's router range). NIC ownership
// follows the attach router; node indices must map to shards in
// non-decreasing order so each shard owns a contiguous node range,
// which holds for the tree (nodes attach to level-0 switches in index
// order) and the grids (node n attaches to router n).
func (f *Fabric) initShards(cuts []int) error {
	routers, nodes := f.Top.Routers(), f.Top.Nodes()
	S := len(cuts) - 1
	f.shards = make([]shardState, S)
	if f.routerShard == nil {
		f.routerShard = make([]int32, routers)
	}
	if f.nodeShard == nil {
		f.nodeShard = make([]int32, nodes)
	}
	for s := 0; s < S; s++ {
		sh := &f.shards[s]
		sh.id = s
		sh.rLo, sh.rHi = cuts[s], cuts[s+1]
		sh.pLo, sh.pHi = sh.rLo*f.deg, sh.rHi*f.deg
		sh.inLo, sh.inHi = f.inOff[sh.pLo], f.inOff[sh.pHi]
		sh.linkActive = newDenseSet(sh.pLo, sh.pHi-sh.pLo)
		sh.xbarActive = newDenseSet(int(sh.inLo), int(sh.inHi-sh.inLo))
		sh.routeActive = newDenseSet(sh.rLo, sh.rHi-sh.rLo)
		if f.wires != nil {
			sh.wireActive = newDenseSet(sh.pLo, sh.pHi-sh.pLo)
		}
		for r := sh.rLo; r < sh.rHi; r++ {
			f.routerShard[r] = int32(s)
		}
		sh.mailFlits = make([][]arrival, S)
		sh.mailCredits = make([][]laneRefAt, S)
	}
	cur := 0
	for n := 0; n < nodes; n++ {
		s := int(f.routerShard[f.Top.NodeAttach(n).Router])
		if s < cur {
			return fmt.Errorf("wormhole: topology %s attaches node %d out of shard order (shard %d after %d): sharding needs contiguous node ranges", f.Top.Name(), n, s, cur)
		}
		for cur < s {
			f.shards[cur].nHi = n
			cur++
			f.shards[cur].nLo = n
		}
		f.nodeShard[n] = int32(s)
	}
	for {
		f.shards[cur].nHi = nodes
		cur++
		if cur == S {
			break
		}
		f.shards[cur].nLo = nodes
	}
	for s := 0; s < S; s++ {
		sh := &f.shards[s]
		sh.nicActive = newDenseSet(sh.nLo, sh.nHi-sh.nLo)
	}
	return nil
}

// parallelCycle advances one sharded cycle: the compute phase runs
// every shard's link/crossbar/routing/injection stages concurrently
// with cross-shard effects staged in mailboxes, then, after the pool
// barrier, the commit phase lands boundary flits and applies credits.
// With a Tracer attached the same two phases run on the serial
// schedule, so callback order stays deterministic (grouped by shard,
// unlike the single-shard within-cycle order; state evolution is
// identical either way).
func (f *Fabric) parallelCycle(cycle int64) {
	f.cycle = cycle
	run := f.pool.Run
	if f.Tracer != nil {
		run = f.pool.RunSerial
	}
	run(func(w int) { f.computeShard(&f.shards[w], cycle) })
	run(func(w int) { f.commitShard(&f.shards[w], cycle) })
}

// computeShard is one shard's compute phase: the canonical stage order
// over the shard's own slices. Writes stay inside the shard except for
// mailbox appends, which only the owning worker touches. It is a
// shardsafe root: everything reachable from here runs concurrently
// across shards with no locks, so every write it can reach must be
// shard-owned (the lint rule walks the call graph from this point).
//
//smartlint:shardentry
//smartlint:hotpath
func (f *Fabric) computeShard(sh *shardState, cycle int64) {
	f.linkShard(sh, cycle)
	f.xbarShard(sh, cycle)
	f.routeShard(sh, cycle)
	f.injectShard(sh, cycle)
}

// commitShard is one shard's commit phase: drain every source shard's
// mailboxes addressed here — flit arrivals first, in ascending source
// order, so the work-list add history is deterministic — then apply
// the shard's own deferred credits. Arrivals touch input-lane state,
// credits touch output-lane and NIC credit counts; the two are
// disjoint, and credit increments commute, so phase-internal order
// beyond the arrival order is immaterial.
//
//smartlint:shardentry
//smartlint:hotpath
func (f *Fabric) commitShard(sh *shardState, cycle int64) {
	for i := range f.shards {
		src := &f.shards[i]
		for _, a := range src.mailFlits[sh.id] {
			f.pushIn(sh, a.lane, a.fl)
		}
		src.mailFlits[sh.id] = src.mailFlits[sh.id][:0]
		for _, c := range src.mailCredits[sh.id] {
			f.applyCredit(c)
		}
		src.mailCredits[sh.id] = src.mailCredits[sh.id][:0]
	}
	f.creditShard(sh)
}
