package wormhole

import (
	"testing"

	"smart/internal/topology"
)

// TestSingleFlitPackets runs the degenerate packet size: one flit is
// simultaneously head and tail, so injection, routing, switching and
// delivery all collapse onto a single flit's lifecycle. Head and tail
// delivery must coincide and every packet must still be accounted for.
func TestSingleFlitPackets(t *testing.T) {
	f, _ := ringFabric(t, 4, Config{VCs: 2, BufDepth: 2, PacketFlits: 1, InjLanes: 1})
	for src := 0; src < 4; src++ {
		f.EnqueuePacket(src, (src+1)%4, 0)
		f.EnqueuePacket(src, (src+2)%4, 0)
	}
	runFabric(f, 200)
	if !f.Drained() {
		t.Fatal("single-flit traffic did not drain")
	}
	c := f.Counters()
	if c.PacketsDelivered != 8 || c.FlitsDelivered != 8 {
		t.Fatalf("delivered %d packets / %d flits, want 8 / 8", c.PacketsDelivered, c.FlitsDelivered)
	}
	for id, pk := range f.PacketRecords() {
		if pk.TailAt != pk.HeadAt {
			t.Errorf("packet %d: single-flit tail at %d differs from head at %d", id, pk.TailAt, pk.HeadAt)
		}
		if pk.TailAt < 0 {
			t.Errorf("packet %d never delivered", id)
		}
	}
}

// TestObserveLockstepAndDivergence drives two identically configured and
// identically fed fabrics cycle by cycle: their canonical observations
// must agree bit for bit at every cycle. A third fabric fed one extra
// packet must diverge in the same cycle the state first differs. The
// configuration stretches the wires so the observation also walks flits
// in flight.
func TestObserveLockstepAndDivergence(t *testing.T) {
	cfg := Config{VCs: 2, BufDepth: 2, PacketFlits: 3, InjLanes: 1, LinkCycles: 2}
	fa, _ := ringFabric(t, 4, cfg)
	fb, _ := ringFabric(t, 4, cfg)
	fc, _ := ringFabric(t, 4, cfg)
	for src := 0; src < 4; src++ {
		fa.EnqueuePacket(src, (src+1)%4, 0)
		fb.EnqueuePacket(src, (src+1)%4, 0)
		fc.EnqueuePacket(src, (src+1)%4, 0)
	}
	fc.EnqueuePacket(0, 2, 0) // the divergent extra packet

	ea, eb, ec := runFabric(fa, 0), runFabric(fb, 0), runFabric(fc, 0)
	sawBuffered, sawDiverged := false, false
	for cycle := 0; cycle < 60; cycle++ {
		ea.Step()
		eb.Step()
		ec.Step()
		oa, ob, oc := fa.Observe(), fb.Observe(), fc.Observe()
		if oa != ob {
			t.Fatalf("cycle %d: identical runs diverged:\n  a: %+v\n  b: %+v", cycle, oa, ob)
		}
		if oa.BufferedFlits > 0 {
			sawBuffered = true
		}
		if oa != oc {
			sawDiverged = true
		}
	}
	if !sawBuffered {
		t.Fatal("observation never saw a buffered flit; the digest walk is vacuous")
	}
	if !sawDiverged {
		t.Fatal("extra packet never showed up in the observation")
	}
	if !fa.Drained() || fa.Observe() != fb.Observe() {
		t.Fatal("drained fabrics must observe equal")
	}
}

// TestObserveDigestOrderSensitivity checks the digest is not a bag hash:
// folding the same flits in a different order must change the sum, or
// reordered buffers would compare equal.
func TestObserveDigestOrderSensitivity(t *testing.T) {
	fl1 := Flit{Packet: 1, Seq: 0, Kind: FlitHead}
	fl2 := Flit{Packet: 2, Seq: 1, Kind: FlitBody}
	a, b := NewDigest(), NewDigest()
	a.Flit(fl1)
	a.Flit(fl2)
	b.Flit(fl2)
	b.Flit(fl1)
	if a.Sum() == b.Sum() {
		t.Fatal("digest is order-insensitive")
	}
	if NewDigest().Sum() != NewDigest().Sum() {
		t.Fatal("empty digests differ")
	}
}

// TestFabricAccessors pins the read-only surface the measurement and
// oracle layers depend on: node counts, packet geometry, per-link flit
// statistics and the router's credit view.
func TestFabricAccessors(t *testing.T) {
	f, _ := ringFabric(t, 4, Config{VCs: 2, BufDepth: 3, PacketFlits: 2, InjLanes: 1})
	if f.Nodes() != 4 {
		t.Fatalf("Nodes() = %d, want 4", f.Nodes())
	}
	if f.PacketFlits() != 2 {
		t.Fatalf("PacketFlits() = %d, want 2", f.PacketFlits())
	}
	port := topology.PortOf(0, topology.Plus)
	for l := 0; l < 2; l++ {
		if got := f.OutLaneCredits(0, port, l); got != 3 {
			t.Fatalf("idle lane %d credits = %d, want the full depth 3", l, got)
		}
	}
	if got := f.FreeLanes(0, port, 0, 2); got != 2 {
		t.Fatalf("FreeLanes on an idle link = %d, want 2", got)
	}

	f.EnqueuePacket(0, 2, 0)
	runFabric(f, 100)
	if !f.Drained() {
		t.Fatal("packet did not drain")
	}
	recs := f.PacketRecords()
	if len(recs) != 1 || recs[0].Src != 0 || recs[0].Dst != 2 {
		t.Fatalf("PacketRecords() = %+v, want one 0->2 record", recs)
	}
	// 0 -> 2 crosses two Plus links; each carried the whole packet.
	if got := f.LinkFlits(0, port); got != 2 {
		t.Fatalf("LinkFlits(0, plus) = %d, want 2", got)
	}
	if got := f.LinkFlits(1, port); got != 2 {
		t.Fatalf("LinkFlits(1, plus) = %d, want 2", got)
	}
	f.ResetLinkStats()
	if got := f.LinkFlits(0, port); got != 0 {
		t.Fatalf("LinkFlits after reset = %d, want 0", got)
	}
}
