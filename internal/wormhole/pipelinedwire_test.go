package wormhole

import (
	"testing"

	"smart/internal/sim"
)

// TestPipelinedWireExactTiming: with LinkCycles = L, each hop's link
// stage takes L cycles instead of 1, but the wire still accepts one flit
// per cycle, so the header pays (2+L) cycles per switch and the tail
// still trails by the worm length.
func TestPipelinedWireExactTiming(t *testing.T) {
	const flits = 6
	for _, L := range []int{1, 2, 3} {
		f, _ := ringFabric(t, 8, Config{VCs: 1, BufDepth: 4, PacketFlits: flits, InjLanes: 1, LinkCycles: L})
		f.EnqueuePacket(0, 3, 0)
		runFabric(f, 400)
		pk := f.Packet(0)
		if !pk.Delivered() {
			t.Fatalf("L=%d: packet not delivered", L)
		}
		// 4 switches; per switch: routing (1) + crossbar (1) + wire (L).
		wantHead := int64(4 * (2 + L))
		if pk.HeadAt != wantHead {
			t.Fatalf("L=%d: head at %d, want %d", L, pk.HeadAt, wantHead)
		}
		if pk.TailAt != wantHead+flits-1 {
			t.Fatalf("L=%d: tail at %d, want %d (pipelined wire keeps 1 flit/cycle)", L, pk.TailAt, wantHead+flits-1)
		}
	}
}

// TestPipelinedWireBandwidthDelayProduct: long wires preserve throughput
// only when the lane buffers cover the credit round trip (the classic
// bandwidth-delay-product rule). With deep enough buffers an L=3 wire
// finishes a stream only a constant pipeline-fill later than L=1; with
// shallow buffers the credit loop starves the link and the stream slows
// down per packet.
func TestPipelinedWireBandwidthDelayProduct(t *testing.T) {
	const flits, packets = 4, 10
	tailOf := func(L, depth int) int64 {
		f, _ := ringFabric(t, 8, Config{VCs: 1, BufDepth: depth, PacketFlits: flits, InjLanes: 1, LinkCycles: L})
		for i := 0; i < packets; i++ {
			f.EnqueuePacket(0, 2, 0)
		}
		runFabric(f, 2000)
		last := f.Packet(PacketID(packets - 1))
		if !last.Delivered() {
			t.Fatalf("L=%d depth=%d: stream not delivered", L, depth)
		}
		return last.TailAt
	}
	deepBase, deepLong := tailOf(1, 8), tailOf(3, 8)
	if deepLong-deepBase > 3*4 {
		t.Fatalf("deep buffers: L=3 stream finished %d cycles after L=1, want only the constant pipeline fill", deepLong-deepBase)
	}
	shallowLong := tailOf(3, 2)
	if shallowLong <= deepLong {
		t.Fatalf("shallow buffers (%d) not slower than deep (%d) over a long wire: bandwidth-delay product unmodelled", shallowLong, deepLong)
	}
}

// TestPipelinedWireInvariants runs traffic with L = 3 while checking the
// credit-conservation invariant, which must account for flits in flight
// on the wires.
func TestPipelinedWireInvariants(t *testing.T) {
	f, cube := ringFabric(t, 8, Config{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 1, LinkCycles: 3})
	e := sim.NewEngine()
	f.Register(e)
	rng := sim.NewRNG(5)
	for cycle := int64(0); cycle < 600; cycle++ {
		if cycle < 400 && rng.Bernoulli(0.2) {
			src := rng.Intn(cube.Nodes() - 1)
			dst := src + 1 + rng.Intn(cube.Nodes()-1-src)
			f.EnqueuePacket(src, dst, cycle)
		}
		e.Step()
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	for !f.Drained() && e.Cycle() < 100000 {
		e.Step()
	}
	if !f.Drained() {
		t.Fatal("pipelined-wire network did not drain")
	}
}

func TestLinkCyclesValidation(t *testing.T) {
	cfg := Config{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 1, LinkCycles: -1}
	if err := cfg.validate(); err == nil {
		t.Fatal("negative LinkCycles accepted")
	}
}

func TestWireFIFO(t *testing.T) {
	var w wireFIFO
	if !w.empty() {
		t.Fatal("fresh wire not empty")
	}
	w.push(flight{at: 1})
	w.push(flight{at: 2})
	if w.empty() || w.front().at != 1 {
		t.Fatal("front wrong")
	}
	if w.pop().at != 1 || w.pop().at != 2 {
		t.Fatal("pop order wrong")
	}
	if !w.empty() {
		t.Fatal("not empty after draining")
	}
	// Draining resets the backing slice for reuse.
	w.push(flight{at: 3})
	if w.front().at != 3 {
		t.Fatal("reuse after reset failed")
	}
}
