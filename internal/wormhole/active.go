package wormhole

// denseSet is an unordered set over a fixed integer universe
// [base, base+n) with O(1) add, remove and membership, backed by a
// swap-remove slice plus a position index. The fabric's per-cycle work
// lists (active output ports, bound input lanes, routers presenting
// unrouted headers, busy NICs, occupied wires) are denseSets: stages
// iterate items instead of scanning the whole network, and the mutation
// points of the underlying state keep membership current. Each shard
// owns one set per work list whose universe is the shard's contiguous
// index range, so the sets partition the fabric with no per-shard
// memory overhead. Iteration order is arbitrary but deterministic (it
// depends only on the add/remove history, never on map or pointer
// order), which keeps simulations reproducible; the fabric's stages are
// written so their outcome is independent of that order.
//
//smartlint:shardowned
type denseSet struct {
	items []int32
	pos   []int32 // pos[v-base] is the index of v in items, -1 when absent
	base  int32
}

// newDenseSet returns an empty set over [base, base+n).
func newDenseSet(base, n int) denseSet {
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	return denseSet{pos: pos, base: int32(base)}
}

// contains reports membership of v.
//
//smartlint:hotpath
func (s *denseSet) contains(v int32) bool { return s.pos[v-s.base] >= 0 }

// add inserts v; inserting a member is a no-op. The append is amortized
// against the set's bounded universe: items never outgrows the range it
// was sized for at construction, so a warmed-up set stops allocating.
//
//smartlint:hotpath
func (s *denseSet) add(v int32) {
	if s.pos[v-s.base] >= 0 {
		return
	}
	s.pos[v-s.base] = int32(len(s.items))
	s.items = append(s.items, v)
}

// remove deletes v by swapping the last item into its slot; removing a
// non-member is a no-op.
//
//smartlint:hotpath
func (s *denseSet) remove(v int32) {
	p := s.pos[v-s.base]
	if p < 0 {
		return
	}
	last := s.items[len(s.items)-1]
	s.items[p] = last
	s.pos[last-s.base] = p
	s.items = s.items[:len(s.items)-1]
	s.pos[v-s.base] = -1
}

// len returns the number of members.
func (s *denseSet) len() int { return len(s.items) }
