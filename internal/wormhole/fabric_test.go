package wormhole

import (
	"strings"
	"testing"

	"smart/internal/sim"
	"smart/internal/topology"
)

// greedyRing is a minimal test algorithm on a k-ary 1-cube: always move in
// the Plus direction until the destination router, then eject. With a
// single virtual channel it is deliberately deadlock-prone on rings, which
// the watchdog tests exploit.
type greedyRing struct {
	cube *topology.Cube
	vcs  int
	// noEject, when set, never routes to the node port — packets orbit
	// forever (livelock, not deadlock: flits keep moving).
	noEject bool
}

func (g *greedyRing) Name() string { return "greedy-ring" }
func (g *greedyRing) VCs() int     { return g.vcs }

func (g *greedyRing) Route(f Router, r, inPort, inLane int, pkt PacketID) (int, int, bool) {
	if !g.noEject && r == f.Dest(pkt) {
		for l := 0; l < g.vcs; l++ {
			if f.OutLaneFree(r, g.cube.NodePort(), l) {
				return g.cube.NodePort(), l, true
			}
		}
		return 0, 0, false
	}
	port := topology.PortOf(0, topology.Plus)
	for l := 0; l < g.vcs; l++ {
		if f.OutLaneFree(r, port, l) {
			return port, l, true
		}
	}
	return 0, 0, false
}

func ringFabric(t *testing.T, k int, cfg Config) (*Fabric, *topology.Cube) {
	t.Helper()
	cube, err := topology.NewCube(k, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFabric(cube, cfg, &greedyRing{cube: cube, vcs: cfg.VCs})
	if err != nil {
		t.Fatal(err)
	}
	return f, cube
}

func runFabric(f *Fabric, cycles int64) *sim.Engine {
	e := sim.NewEngine()
	f.Register(e)
	e.Run(cycles)
	return e
}

func TestConfigValidation(t *testing.T) {
	cube, _ := topology.NewCube(4, 1)
	good := Config{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 1}
	bad := []Config{
		{VCs: 0, BufDepth: 4, PacketFlits: 4, InjLanes: 1},
		{VCs: packRadix, BufDepth: 4, PacketFlits: 4, InjLanes: 1},
		{VCs: 1, BufDepth: 0, PacketFlits: 4, InjLanes: 1},
		{VCs: 1, BufDepth: 4, PacketFlits: 0, InjLanes: 1},
		{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 0},
	}
	if _, err := NewFabric(cube, good, &greedyRing{cube: cube, vcs: 1}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for i, cfg := range bad {
		if _, err := NewFabric(cube, cfg, &greedyRing{cube: cube, vcs: cfg.VCs}); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewFabricVCMismatch(t *testing.T) {
	cube, _ := topology.NewCube(4, 1)
	_, err := NewFabric(cube, Config{VCs: 2, BufDepth: 4, PacketFlits: 4, InjLanes: 1}, &greedyRing{cube: cube, vcs: 1})
	if err == nil || !strings.Contains(err.Error(), "needs 1 VCs") {
		t.Fatalf("VC mismatch not reported: %v", err)
	}
}

func TestFabricLaneLayout(t *testing.T) {
	tree, err := topology.NewTree(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFabric(tree, Config{VCs: 2, BufDepth: 4, PacketFlits: 4, InjLanes: 1}, &greedyRing{vcs: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Level-0 switch: 4 node down ports (1 injection in-lane, 2 ejection
	// out-lanes each) + 4 router up ports (2 lanes each side).
	for p := 0; p < 4; p++ {
		if len(f.inLanesOf(p)) != 1 || len(f.outLanesOf(p)) != 2 {
			t.Fatalf("node port %d lanes in=%d out=%d, want 1/2", p, len(f.inLanesOf(p)), len(f.outLanesOf(p)))
		}
	}
	for p := 4; p < 8; p++ {
		if len(f.inLanesOf(p)) != 2 || len(f.outLanesOf(p)) != 2 {
			t.Fatalf("up port %d lanes in=%d out=%d, want 2/2", p, len(f.inLanesOf(p)), len(f.outLanesOf(p)))
		}
	}
	// Top-level switch: unused up ports get no lanes.
	topBase := tree.SwitchIndex(1, 0) * f.deg
	for p := 4; p < 8; p++ {
		if len(f.inLanesOf(topBase+p)) != 0 || len(f.outLanesOf(topBase+p)) != 0 {
			t.Fatalf("unused port %d has lanes", p)
		}
	}
	// Every lane must know its own coordinates (the work lists rely on it).
	for r := 0; r < tree.Routers(); r++ {
		for p := 0; p < f.deg; p++ {
			lanes := f.inLanesOf(r*f.deg + p)
			for l := range lanes {
				il := &lanes[l]
				if int(il.router) != r || int(il.port) != p || int(il.lane) != l {
					t.Fatalf("lane at (%d,%d,%d) carries coordinates (%d,%d,%d)", r, p, l, il.router, il.port, il.lane)
				}
			}
		}
	}
}

// TestSinglePacketExactTiming pins down the pipeline model: with the three
// stage delays equalized to one cycle, the header takes 3 cycles per
// switch (routing, crossbar, link) and the tail trails by packet length
// minus one once the pipeline is full.
func TestSinglePacketExactTiming(t *testing.T) {
	const flits = 6
	f, _ := ringFabric(t, 8, Config{VCs: 1, BufDepth: 4, PacketFlits: flits, InjLanes: 1})
	f.EnqueuePacket(0, 3, 0)
	runFabric(f, 200)
	pk := f.Packet(0)
	if pk.InjectedAt != 0 {
		t.Fatalf("InjectedAt = %d, want 0", pk.InjectedAt)
	}
	// Switches traversed: routers 0,1,2,3 -> 4 routing decisions.
	if pk.Hops != 4 {
		t.Fatalf("Hops = %d, want 4", pk.Hops)
	}
	if pk.HeadAt != 12 {
		t.Fatalf("HeadAt = %d, want 3 cycles/switch * 4 switches = 12", pk.HeadAt)
	}
	if pk.TailAt != 12+flits-1 {
		t.Fatalf("TailAt = %d, want %d", pk.TailAt, 12+flits-1)
	}
	if !pk.Delivered() || f.InFlight() != 0 {
		t.Fatal("packet not fully delivered")
	}
}

func TestSingleFlitPacket(t *testing.T) {
	f, _ := ringFabric(t, 4, Config{VCs: 1, BufDepth: 2, PacketFlits: 1, InjLanes: 1})
	f.EnqueuePacket(0, 1, 0)
	runFabric(f, 100)
	pk := f.Packet(0)
	if !pk.Delivered() {
		t.Fatal("single-flit packet not delivered")
	}
	if pk.HeadAt != pk.TailAt {
		t.Fatalf("head %d != tail %d for single-flit packet", pk.HeadAt, pk.TailAt)
	}
	if pk.Hops != 2 {
		t.Fatalf("Hops = %d, want 2", pk.Hops)
	}
}

func TestSourceThrottlingSerializesInjection(t *testing.T) {
	const flits = 8
	f, _ := ringFabric(t, 8, Config{VCs: 1, BufDepth: 4, PacketFlits: flits, InjLanes: 1})
	f.EnqueuePacket(0, 2, 0)
	f.EnqueuePacket(0, 3, 0)
	runFabric(f, 300)
	p0, p1 := f.Packet(0), f.Packet(1)
	if !p0.Delivered() || !p1.Delivered() {
		t.Fatal("packets not delivered")
	}
	// With a single injection channel the second header cannot enter
	// before the first tail has been injected (flits-1 cycles after the
	// first header at best).
	if p1.InjectedAt < p0.InjectedAt+flits {
		t.Fatalf("second packet injected at %d, first at %d: source throttling violated", p1.InjectedAt, p0.InjectedAt)
	}
}

func TestMultipleInjectionLanesOverlap(t *testing.T) {
	const flits = 8
	f, _ := ringFabric(t, 8, Config{VCs: 2, BufDepth: 4, PacketFlits: flits, InjLanes: 2})
	f.Alg.(*greedyRing).vcs = 2
	f.EnqueuePacket(0, 2, 0)
	f.EnqueuePacket(0, 3, 0)
	runFabric(f, 300)
	p0, p1 := f.Packet(0), f.Packet(1)
	if !p0.Delivered() || !p1.Delivered() {
		t.Fatal("packets not delivered")
	}
	if p1.InjectedAt > p0.InjectedAt+1 {
		t.Fatalf("with two injection lanes the packets should inject concurrently (got %d and %d)", p0.InjectedAt, p1.InjectedAt)
	}
}

func TestNICQueueIsFIFO(t *testing.T) {
	f, _ := ringFabric(t, 8, Config{VCs: 1, BufDepth: 4, PacketFlits: 2, InjLanes: 1})
	for i := 0; i < 5; i++ {
		f.EnqueuePacket(0, 1+i%6, 0)
	}
	runFabric(f, 500)
	var prev int64 = -1
	for i := 0; i < 5; i++ {
		pk := f.Packet(PacketID(i))
		if !pk.Delivered() {
			t.Fatalf("packet %d undelivered", i)
		}
		if pk.InjectedAt <= prev {
			t.Fatalf("packet %d injected at %d, not after predecessor at %d", i, pk.InjectedAt, prev)
		}
		prev = pk.InjectedAt
	}
}

func TestEnqueueSelfPanics(t *testing.T) {
	f, _ := ringFabric(t, 4, Config{VCs: 1, BufDepth: 2, PacketFlits: 2, InjLanes: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("EnqueuePacket(src == dst) did not panic")
		}
	}()
	f.EnqueuePacket(2, 2, 0)
}

func TestCountersAndConservation(t *testing.T) {
	const flits = 4
	f, cube := ringFabric(t, 8, Config{VCs: 1, BufDepth: 4, PacketFlits: flits, InjLanes: 1})
	rng := sim.NewRNG(1)
	var want int64
	// Greedy Plus-only routing deadlocks when worms cross the wrap-around
	// link cyclically, so keep every path inside the 0..7 ascent: the
	// channel dependency graph is then acyclic and all packets complete.
	for n := 0; n < cube.Nodes()-1; n++ {
		for i := 0; i < 3; i++ {
			dst := n + 1 + rng.Intn(cube.Nodes()-1-n)
			f.EnqueuePacket(n, dst, 0)
			want++
		}
	}
	runFabric(f, 2000)
	c := f.Counters()
	if c.PacketsCreated != want || c.PacketsInjected != want || c.PacketsDelivered != want {
		t.Fatalf("packet counters %+v, want all %d", c, want)
	}
	if c.FlitsInjected != want*flits || c.FlitsDelivered != want*flits {
		t.Fatalf("flit counters %+v, want %d", c, want*flits)
	}
	if !f.Drained() || f.InFlight() != 0 || f.QueuedPackets() != 0 {
		t.Fatal("fabric not drained")
	}
	for i := range f.Packets {
		pk := &f.Packets[i]
		if pk.InjectedAt < pk.CreatedAt || pk.HeadAt < pk.InjectedAt || pk.TailAt < pk.HeadAt+int64(flits)-1 {
			t.Fatalf("packet %d has inconsistent timeline %+v", i, *pk)
		}
	}
}

func TestInvariantsUnderTraffic(t *testing.T) {
	f, cube := ringFabric(t, 8, Config{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 1})
	e := sim.NewEngine()
	f.Register(e)
	rng := sim.NewRNG(99)
	for cycle := int64(0); cycle < 600; cycle++ {
		if cycle < 400 && rng.Bernoulli(0.3) {
			src := rng.Intn(cube.Nodes())
			dst := (src + 1 + rng.Intn(cube.Nodes()-1)) % cube.Nodes()
			f.EnqueuePacket(src, dst, cycle)
		}
		e.Step()
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
}

func TestWatchdogFiresOnRingDeadlock(t *testing.T) {
	// Classic wormhole deadlock: every node on a 4-ring sends a long worm
	// two hops forward with a single virtual channel and no wrap-around
	// escape. The cyclic channel dependency stops all movement and the
	// engine watchdog must stop the run with a stall diagnosis.
	f, cube := ringFabric(t, 4, Config{VCs: 1, BufDepth: 2, PacketFlits: 64, InjLanes: 1, WatchdogCycles: 200})
	for n := 0; n < cube.Nodes(); n++ {
		f.EnqueuePacket(n, (n+2)%4, 0)
	}
	e := runFabric(f, 5000)
	stall := e.Stall()
	if stall == nil {
		t.Fatal("deadlocked ring did not trip the watchdog")
	}
	if e.Cycle() >= 5000 {
		t.Fatalf("watchdog fired only at the horizon (cycle %d)", e.Cycle())
	}
	if !strings.Contains(stall.Error(), "possible deadlock") {
		t.Fatalf("unexpected diagnosis: %v", stall)
	}
	snap, ok := stall.Report.(*StallSnapshot)
	if !ok {
		t.Fatalf("stall report is %T, want *StallSnapshot", stall.Report)
	}
	if snap.InFlight == 0 || len(snap.Lanes) == 0 {
		t.Fatalf("snapshot missing fabric state: %+v", snap)
	}
	// A watched engine stays stopped: another Run must return
	// immediately with the same diagnosis.
	if got := e.Run(10000); got != e.Cycle() || e.Stall() != stall {
		t.Fatalf("stalled engine resumed (cycle %d, stall %v)", got, e.Stall())
	}
}

func TestWatchdogQuietOnLivePacketFlow(t *testing.T) {
	f, cube := ringFabric(t, 8, Config{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 1, WatchdogCycles: 100})
	for n := 0; n < cube.Nodes(); n++ {
		f.EnqueuePacket(n, (n+1)%8, 0)
	}
	e := runFabric(f, 3000)
	if st := e.Stall(); st != nil {
		t.Fatalf("live traffic tripped the watchdog: %v", st)
	}
	if !f.Drained() {
		t.Fatal("traffic did not drain")
	}
}

func TestHeaderPipelinesThroughNetwork(t *testing.T) {
	// Two packets from different sources to different destinations must
	// progress concurrently (the fabric is not globally serialized).
	f, _ := ringFabric(t, 8, Config{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 1})
	f.EnqueuePacket(0, 2, 0)
	f.EnqueuePacket(4, 6, 0)
	runFabric(f, 100)
	p0, p1 := f.Packet(0), f.Packet(1)
	if p0.TailAt != p1.TailAt {
		t.Fatalf("disjoint equal-length paths delivered at %d and %d, want simultaneous", p0.TailAt, p1.TailAt)
	}
}

func TestLinkTransfersOneFlitPerCycle(t *testing.T) {
	// Two packets contending for the same physical link: total delivery
	// time must reflect the 1 flit/cycle link bound (the second worm
	// waits for the first to release the lane).
	const flits = 8
	cfg := Config{VCs: 1, BufDepth: 4, PacketFlits: flits, InjLanes: 1}
	// Baselines: each worm alone on an idle network.
	baseline := func(src, dst int) int64 {
		alone, _ := ringFabric(t, 8, cfg)
		alone.EnqueuePacket(src, dst, 0)
		runFabric(alone, 500)
		return alone.Packet(0).TailAt
	}
	base0, base1 := baseline(0, 4), baseline(1, 5)

	f, _ := ringFabric(t, 8, cfg)
	f.EnqueuePacket(0, 4, 0) // passes through routers 1,2,3
	f.EnqueuePacket(1, 5, 0) // overlaps on links 1->2, 2->3, 3->4
	runFabric(f, 500)
	p0, p1 := f.Packet(0), f.Packet(1)
	if !p0.Delivered() || !p1.Delivered() {
		t.Fatal("packets not delivered")
	}
	// With a single lane per link, whichever worm loses the allocation
	// race must queue behind the winner on the shared segment; neither
	// may beat its unobstructed time.
	d0, d1 := p0.TailAt-base0, p1.TailAt-base1
	if d0 < 0 || d1 < 0 {
		t.Fatalf("a worm beat its unobstructed baseline (deltas %d, %d)", d0, d1)
	}
	if d0+d1 < flits/2 {
		t.Fatalf("no serialization on the shared lane (deltas %d, %d)", d0, d1)
	}
}

func TestTracerSeesAllEvents(t *testing.T) {
	f, _ := ringFabric(t, 8, Config{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 1})
	tr := &recordingTracer{}
	f.Tracer = tr
	f.EnqueuePacket(0, 3, 0)
	runFabric(f, 100)
	if tr.delivered != 1 {
		t.Fatalf("tracer saw %d deliveries, want 1", tr.delivered)
	}
	if len(tr.routes) != 4 {
		t.Fatalf("tracer saw %d routing events, want 4", len(tr.routes))
	}
	for i, r := range tr.routes {
		if r != i { // routers 0,1,2,3 in order
			t.Fatalf("routing event %d at router %d", i, r)
		}
	}
}

type recordingTracer struct {
	routes    []int
	delivered int
}

func (t *recordingTracer) HeaderRouted(cycle int64, pkt PacketID, r, ip, il, op, ol int) {
	t.routes = append(t.routes, r)
}

func (t *recordingTracer) PacketDelivered(cycle int64, pkt PacketID) { t.delivered++ }

func TestBufDepthLimitsInFlightFlits(t *testing.T) {
	// Freeze the network after partial delivery by using a no-eject
	// algorithm on a small ring: flits fill the lane buffers and stop;
	// in-flight flit count must never exceed the aggregate buffer space.
	cube, _ := topology.NewCube(4, 1)
	cfg := Config{VCs: 1, BufDepth: 2, PacketFlits: 64, InjLanes: 1}
	f, err := NewFabric(cube, cfg, &greedyRing{cube: cube, vcs: 1, noEject: true})
	if err != nil {
		t.Fatal(err)
	}
	f.EnqueuePacket(0, 2, 0)
	runFabric(f, 1000)
	// The orbiting worm can occupy, per router, the Plus in-lane and
	// out-lane, plus router 0's injection in-lane.
	max := int64(4*cfg.BufDepth*2 + cfg.BufDepth)
	if f.InFlight() > max {
		t.Fatalf("in-flight flits %d exceed aggregate buffer bound %d", f.InFlight(), max)
	}
	if f.InFlight() == 0 {
		t.Fatal("expected stalled flits in flight")
	}
}
