package wormhole

import (
	"testing"

	"smart/internal/topology"
)

// twoLaneRing is a 2-VC greedy ring algorithm that assigns each packet a
// fixed lane (by packet id parity), forcing two worms to share a physical
// link on different virtual channels.
type twoLaneRing struct {
	cube *topology.Cube
}

func (g *twoLaneRing) Name() string { return "two-lane-ring" }
func (g *twoLaneRing) VCs() int     { return 2 }

func (g *twoLaneRing) Route(f Router, r, inPort, inLane int, pkt PacketID) (int, int, bool) {
	lane := int(pkt) % 2
	if r == f.Dest(pkt) {
		if f.OutLaneFree(r, g.cube.NodePort(), lane) {
			return g.cube.NodePort(), lane, true
		}
		return 0, 0, false
	}
	port := topology.PortOf(0, topology.Plus)
	if f.OutLaneFree(r, port, lane) {
		return port, lane, true
	}
	return 0, 0, false
}

// TestLinkArbitrationIsFair: two equal worms multiplexed on one physical
// link via different virtual channels must finish close together — the
// round-robin link arbiter interleaves their flits ("a fair policy", §4)
// instead of draining one worm first.
func TestLinkArbitrationIsFair(t *testing.T) {
	cube, err := topology.NewCube(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	const flits = 16
	f, err := NewFabric(cube, Config{VCs: 2, BufDepth: 4, PacketFlits: flits, InjLanes: 2}, &twoLaneRing{cube: cube})
	if err != nil {
		t.Fatal(err)
	}
	// Same source, same destination, different lanes: the full path is
	// shared.
	f.EnqueuePacket(0, 5, 0)
	f.EnqueuePacket(0, 5, 0)
	runFabric(f, 2000)
	p0, p1 := f.Packet(0), f.Packet(1)
	if !p0.Delivered() || !p1.Delivered() {
		t.Fatal("worms not delivered")
	}
	gap := p0.TailAt - p1.TailAt
	if gap < 0 {
		gap = -gap
	}
	// Fair interleaving at half rate each: tails land within a few
	// cycles of each other. A drain-one-first arbiter would separate
	// them by a full worm length.
	if gap >= flits {
		t.Fatalf("tails %d cycles apart: link arbitration is not interleaving fairly", gap)
	}
	// And each worm took roughly twice its solo time, confirming the
	// link was genuinely shared.
	solo, _ := ringFabric(t, 8, Config{VCs: 1, BufDepth: 4, PacketFlits: flits, InjLanes: 1})
	solo.EnqueuePacket(0, 5, 0)
	runFabric(solo, 2000)
	soloTail := solo.Packet(0).TailAt
	if p0.TailAt < soloTail+flits/2 {
		t.Fatalf("shared worm finished at %d, solo at %d: no multiplexing cost visible", p0.TailAt, soloTail)
	}
}

// TestEjectionArbitrationServesAllLanes: two worms to the same node on
// different lanes must both make ejection progress (round-robin over the
// ejection port's lanes).
func TestEjectionArbitrationServesAllLanes(t *testing.T) {
	cube, err := topology.NewCube(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	const flits = 12
	f, err := NewFabric(cube, Config{VCs: 2, BufDepth: 4, PacketFlits: flits, InjLanes: 1}, &twoLaneRing{cube: cube})
	if err != nil {
		t.Fatal(err)
	}
	f.EnqueuePacket(0, 2, 0)
	f.EnqueuePacket(1, 2, 0)
	runFabric(f, 2000)
	p0, p1 := f.Packet(0), f.Packet(1)
	if !p0.Delivered() || !p1.Delivered() {
		t.Fatal("worms not delivered")
	}
	// The ejection link serves one flit per cycle across both lanes; the
	// later tail cannot lag the earlier by much more than a worm.
	gap := p0.TailAt - p1.TailAt
	if gap < 0 {
		gap = -gap
	}
	if gap > 2*flits {
		t.Fatalf("ejection starved one lane: tails %d cycles apart", gap)
	}
}

func TestQueuedPacketsAccounting(t *testing.T) {
	f, _ := ringFabric(t, 8, Config{VCs: 1, BufDepth: 4, PacketFlits: 8, InjLanes: 1})
	for i := 0; i < 5; i++ {
		f.EnqueuePacket(0, 3, 0)
	}
	if got := f.QueuedPackets(); got != 5 {
		t.Fatalf("QueuedPackets = %d before any cycle, want 5", got)
	}
	e := runFabric(f, 3)
	// One packet has moved to the injection stream; it still counts as
	// queued until its tail leaves the NIC.
	if got := f.QueuedPackets(); got != 5 {
		t.Fatalf("QueuedPackets = %d mid-injection, want 5", got)
	}
	e.Run(2000)
	if got := f.QueuedPackets(); got != 0 {
		t.Fatalf("QueuedPackets = %d after drain, want 0", got)
	}
	if !f.Drained() {
		t.Fatal("fabric not drained")
	}
}
