// Package wormhole implements the paper's router model (§4, Figure 4): a
// flit-level wormhole-switched fabric with virtual-channel lanes,
// credit-based flow control over the ack lines, an internal crossbar with
// lane binding, fair link arbitration, a one-header-per-cycle routing
// discipline, and injection/ejection interfaces with source throttling.
//
// Timing follows the paper's equalized model: the routing delay, the
// crossbar delay and the link delay each take one clock cycle, so a header
// flit spends three cycles per hop and body flits two, while every stage
// sustains one flit per cycle in steady state. Absolute time is recovered
// per configuration from the Chien cost model in internal/cost.
package wormhole

// PacketID indexes the fabric's packet table.
type PacketID int32

// NoPacket marks the absence of a packet.
const NoPacket PacketID = -1

// FlitKind is a bit set describing a flit's role within its packet.
type FlitKind uint8

const (
	// FlitBody is a payload flit (no bits set).
	FlitBody FlitKind = 0
	// FlitHead marks the header flit, the only one routing examines.
	FlitHead FlitKind = 1 << iota
	// FlitTail marks the tail flit, whose passage releases lane bindings.
	// A single-flit packet carries both bits.
	FlitTail
)

// IsHead reports whether the flit opens a packet.
func (k FlitKind) IsHead() bool { return k&FlitHead != 0 }

// IsTail reports whether the flit closes a packet.
func (k FlitKind) IsTail() bool { return k&FlitTail != 0 }

// Flit is the unit of flow control. MovedAt stamps the cycle of the flit's
// last pipeline advance; a stage only moves flits stamped before the
// current cycle, which enforces the one-stage-per-cycle discipline
// independently of stage execution order. A flit is held by exactly one
// lane, wire or mailbox at a time, so the shard holding it owns it.
//
//smartlint:shardowned
type Flit struct {
	Packet  PacketID
	Seq     int32
	MovedAt int64
	Kind    FlitKind
}

// PacketInfo is the per-packet record kept for routing state and
// measurement. Times are cycle indices; -1 means "not yet". During a
// cycle a packet's flits occupy lanes of a single router's neighborhood,
// so exactly one shard writes the record.
//
//smartlint:shardowned
type PacketInfo struct {
	Src, Dst int32
	// Flits is the packet length; the paper's packets are 64 bytes, i.e.
	// 32 two-byte flits on the tree and 16 four-byte flits on the cube.
	Flits int32
	// RouteBits is scratch state owned by the routing algorithm. The cube
	// disciplines use bit d to record that the packet crossed the
	// wrap-around connection of dimension d, which moves it to the second
	// virtual network (Dally-Seitz) or the second escape class (Duato).
	RouteBits uint32
	// Hops counts routing decisions (switch traversals).
	Hops int32
	// CreatedAt is when the traffic generator produced the packet;
	// InjectedAt when the header flit entered the injection lane (network
	// latency is measured from here, excluding source queueing, §6);
	// HeadAt/TailAt when the header/tail flit reached the destination NIC.
	CreatedAt, InjectedAt, HeadAt, TailAt int64
	// deliverNext is the sequence number the destination expects next;
	// the fabric asserts in-order, loss-free, duplicate-free delivery on
	// every flit.
	deliverNext int32
}

// Delivered reports whether the packet's tail has reached its destination.
func (p *PacketInfo) Delivered() bool { return p.TailAt >= 0 }

// NetworkLatency returns the packet's network latency in cycles: header
// insertion into the injection lane to tail reception at the destination
// (§6). It must only be called on delivered packets.
func (p *PacketInfo) NetworkLatency() int64 { return p.TailAt - p.InjectedAt }

// laneRef packs a (port, lane) pair into an int16 for the binding fields;
// port and lane both fit comfortably in the packing radix.
type laneRef int16

const noRef laneRef = -1

// packRadix bounds the number of lanes per port representable in a
// laneRef.
const packRadix = 32

func packRef(port, lane int) laneRef { return laneRef(port*packRadix + lane) }

func (r laneRef) unpack() (port, lane int) { return int(r) / packRadix, int(r) % packRadix }
