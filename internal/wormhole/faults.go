package wormhole

import (
	"fmt"

	"smart/internal/topology"
)

// Fault masking (DESIGN.md §14): a downed link stops transferring flits
// and is refused by fault-aware routing algorithms; a downed router
// additionally freezes its crossbar, routing logic and attached NIC.
// Masks are pure gates — no buffered state is destroyed, so credit
// conservation and in-order delivery hold across any fault schedule,
// and a revived element resumes exactly where it froze. Flits already
// in flight on a pipelined wire land normally (they left before the
// cut); a worm holding lanes across a link when it fails simply stalls
// until the link returns, or trips the watchdog if it never does.
//
// All mask state is written only by the faults engine stage, which runs
// serially before the traffic and fabric stages; the sharded compute
// phase only reads it, so masks need no per-shard ownership and are
// identical for every shard count. Masks are deliberately absent from
// Observe digests: they are input-derived (the schedule is in the
// config fingerprint), so digesting them would add no discrimination.
type faultState struct {
	// linkDown is a per-direction (flat port id) mask refcount. The two
	// directions of a physical link always move together, and a downed
	// router contributes one count to every incident direction, so a
	// link between a dead router and an explicitly downed link carries
	// count 2 and survives either single repair.
	linkDown []int16
	// routerDown is the per-router mask refcount.
	routerDown []int16
	// downLinks counts physical links currently masked (canonical
	// direction transitions); downRouters counts masked routers.
	downLinks   int
	downRouters int
}

// ensureFaults lazily allocates the mask arrays; until the first
// SetLinkDown/SetRouterDown call the fabric carries no fault state and
// every hot-path gate is a single nil check.
func (f *Fabric) ensureFaults() {
	if f.flt != nil {
		return
	}
	f.flt = &faultState{
		linkDown:   make([]int16, len(f.ports)),
		routerDown: make([]int16, f.Top.Routers()),
	}
}

// HasFaults reports whether any fault has ever been injected (telemetry
// uses it to gate fault reporting so unfaulted output stays
// byte-identical).
func (f *Fabric) HasFaults() bool { return f.flt != nil }

// blocked reports whether port pid may transfer this cycle. linkDown
// covers router-router directions (including those masked because an
// endpoint router is down); the routerDown term covers the ejection and
// injection sides of a dead router's node port.
func (flt *faultState) blocked(pid int32, deg int) bool {
	return flt.linkDown[pid] > 0 || flt.routerDown[int(pid)/deg] > 0
}

// setLinkMask adjusts both directions of one physical link and the
// down-link gauge (counted on the canonical, lower-numbered direction).
func (f *Fabric) setLinkMask(pid, rev int, down bool) {
	flt := f.flt
	var d int16 = 1
	if !down {
		d = -1
	}
	canon := pid
	if rev < canon {
		canon = rev
	}
	was := flt.linkDown[canon] > 0
	flt.linkDown[pid] += d
	if rev != pid {
		flt.linkDown[rev] += d
	}
	if flt.linkDown[canon] < 0 {
		panic(fmt.Sprintf("wormhole: unbalanced link-up for port %d", pid))
	}
	now := flt.linkDown[canon] > 0
	if now && !was {
		flt.downLinks++
	}
	if was && !now {
		flt.downLinks--
	}
}

// SetLinkDown masks (or unmasks) the bidirectional link at router r's
// port p. Panics on a port that is not a router-router link — schedules
// are validated against the topology before they reach the fabric.
func (f *Fabric) SetLinkDown(r, p int, down bool) {
	f.ensureFaults()
	pid := r*f.deg + p
	port := f.ports[pid]
	if port.Kind != topology.PortRouter {
		panic(fmt.Sprintf("wormhole: SetLinkDown(%d, %d) is not a router-router link", r, p))
	}
	f.setLinkMask(pid, port.Peer*f.deg+port.PeerPort, down)
}

// SetRouterDown masks (or unmasks) router r: on the 0↔1 transition all
// incident router-router links are masked alongside, so neighbours stop
// sending into the dead router and its buffered flits freeze in place.
func (f *Fabric) SetRouterDown(r int, down bool) {
	f.ensureFaults()
	flt := f.flt
	if r < 0 || r >= len(flt.routerDown) {
		panic(fmt.Sprintf("wormhole: SetRouterDown(%d) out of range", r))
	}
	var d int16 = 1
	if !down {
		d = -1
	}
	was := flt.routerDown[r] > 0
	flt.routerDown[r] += d
	if flt.routerDown[r] < 0 {
		panic(fmt.Sprintf("wormhole: unbalanced router-up for router %d", r))
	}
	now := flt.routerDown[r] > 0
	if was == now {
		return
	}
	if now {
		flt.downRouters++
	} else {
		flt.downRouters--
	}
	base := r * f.deg
	for p := 0; p < f.deg; p++ {
		port := f.ports[base+p]
		if port.Kind != topology.PortRouter {
			continue
		}
		f.setLinkMask(base+p, port.Peer*f.deg+port.PeerPort, now)
	}
}

// LinkUp implements Router: it reports whether routing out of router
// r's port is currently permitted. Ejection ports are up whenever the
// router is; unused ports (mesh borders, tree top-level up ports) are
// never up. Without fault state every port the algorithms would pick is
// up by construction.
func (f *Fabric) LinkUp(r, port int) bool {
	flt := f.flt
	if flt == nil {
		return true
	}
	if flt.routerDown[r] > 0 {
		return false
	}
	pid := r*f.deg + port
	switch f.ports[pid].Kind {
	case topology.PortRouter:
		return flt.linkDown[pid] == 0
	case topology.PortNode:
		return true
	}
	return false
}

// NodeUp reports whether node n's attach router is alive; the traffic
// injector drops packets sourced at or destined to dead nodes.
func (f *Fabric) NodeUp(n int) bool {
	if f.flt == nil {
		return true
	}
	return f.flt.routerDown[f.Top.NodeAttach(n).Router] == 0
}

// DownLinks returns the number of physical links currently masked
// (including links masked because an endpoint router is down).
func (f *Fabric) DownLinks() int {
	if f.flt == nil {
		return 0
	}
	return f.flt.downLinks
}

// DownRouters returns the number of routers currently masked.
func (f *Fabric) DownRouters() int {
	if f.flt == nil {
		return 0
	}
	return f.flt.downRouters
}

// FaultStalls returns how many port-cycles of transfer were suppressed
// by fault masks, summed over shards. Like CreditStalls it sits outside
// the oracle-compared Counters.
func (f *Fabric) FaultStalls() int64 {
	var n int64
	for i := range f.shards {
		n += f.shards[i].faultStalls
	}
	return n
}
