package wormhole

// fifo is a fixed-capacity ring buffer of flits — the buffer space of one
// virtual-channel lane (4 flits in the paper's experiments). Buffers are
// carved from the fabric's flit arena at construction; the per-cycle
// operations below never allocate.
//
//smartlint:shardowned
type fifo struct {
	buf  []Flit
	head int
	n    int
}

func newFifo(depth int) fifo { return fifo{buf: make([]Flit, depth)} }

func (f *fifo) cap() int   { return len(f.buf) }
func (f *fifo) len() int   { return f.n }
func (f *fifo) full() bool { return f.n == len(f.buf) }

// front returns a pointer to the oldest flit; it must not be called on an
// empty fifo.
//
//smartlint:hotpath
func (f *fifo) front() *Flit { return &f.buf[f.head] }

//smartlint:hotpath
func (f *fifo) push(fl Flit) {
	if f.full() {
		panic("wormhole: push into full lane buffer")
	}
	f.buf[(f.head+f.n)%len(f.buf)] = fl
	f.n++
}

//smartlint:hotpath
func (f *fifo) pop() Flit {
	if f.n == 0 {
		panic("wormhole: pop from empty lane buffer")
	}
	fl := f.buf[f.head]
	f.head = (f.head + 1) % len(f.buf)
	f.n--
	return fl
}

// inLane is the input buffer of one virtual channel: flits arriving from
// the upstream link wait here for the crossbar. bound identifies the
// output lane the current packet was allocated (noRef while the header is
// still unrouted or the lane is empty). The router/port/lane coordinates
// are fixed at construction so the crossbar and routing stages, which
// reach lanes through flat-index work lists, can recover them without a
// reverse lookup.
//
//smartlint:shardowned
type inLane struct {
	fifo
	bound  laneRef
	router int32
	port   int16
	lane   int16
}

// at returns the i-th buffered flit counted from the front.
func (f *fifo) at(i int) *Flit {
	if i < 0 || i >= f.n {
		panic("wormhole: fifo index out of range")
	}
	return &f.buf[(f.head+i)%len(f.buf)]
}

// holdsWholePacket reports whether the lane buffers every flit of the
// packet whose header sits at the front — the store-and-forward gate.
func (l *inLane) holdsWholePacket(pk *PacketInfo) bool {
	if l.n < int(pk.Flits) {
		return false
	}
	tail := l.at(int(pk.Flits) - 1)
	return tail.Kind.IsTail() && tail.Packet == l.front().Packet
}

// outLane is the output buffer of one virtual channel. credits counts the
// free positions in the matching input lane across the link, initialized
// to the buffer depth, decremented when the link transmits a flit and
// incremented when the ack line reports the remote lane forwarded one.
// boundIn identifies the input lane currently switched onto this lane
// through the crossbar.
//
//smartlint:shardowned
type outLane struct {
	fifo
	credits int16
	boundIn laneRef
}

// free reports whether a header may be allocated to this output lane: the
// paper requires a lane that is "neither full nor bound to another input
// lane".
func (o *outLane) free() bool { return o.boundIn == noRef && !o.full() }
