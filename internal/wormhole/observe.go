package wormhole

// This file is the fabric's half of the differential-oracle contract
// (internal/oracle): a canonical per-cycle observation that two
// independent implementations of the paper's cycle semantics can compute
// and compare bit for bit. The observation deliberately digests *all*
// mutable simulator state — lane buffers with per-flit stamps, credit
// counters, crossbar bindings, arbitration pointers, NIC streams and
// wire pipelines — so the first divergent cycle is caught at the cycle
// it happens, not cycles later when it surfaces in a counter.

// CycleObs is a snapshot of a simulator's externally meaningful state at
// the end of a cycle. Two implementations agree on a cycle exactly when
// their CycleObs values compare equal.
type CycleObs struct {
	// Cycle is the index of the last executed link stage.
	Cycle int64
	// Counters are the running injection/delivery totals.
	Counters Counters
	// InFlight is the number of flits inside the network; Queued the
	// number of packets waiting at sources or part-way through injection.
	InFlight, Queued int64
	// OccupiedLanes counts input and output lanes holding at least one
	// flit; BufferedFlits totals the flits they hold.
	OccupiedLanes, BufferedFlits int
	// StateHash digests every mutable piece of simulator state in a
	// canonical order (see Digest); equal hashes mean equal state.
	StateHash uint64
}

// Observable is the observation interface shared by the optimized fabric
// and the reference oracle: everything the differential harness compares,
// and everything the measurement layer needs.
type Observable interface {
	Observe() CycleObs
	Counters() Counters
	PacketRecords() []PacketInfo
	Drained() bool
}

// Digest accumulates an FNV-1a hash over a canonical encoding of
// simulator state. Both the fabric and the oracle build their StateHash
// through the same lane/NIC/wire encoders below, so the two hashes are
// comparable by construction: any encoding change applies to both sides.
type Digest struct {
	h uint64
}

// NewDigest returns an empty state digest.
func NewDigest() *Digest {
	return &Digest{h: 14695981039346656037} // FNV-1a 64 offset basis
}

// Int folds one integer into the digest.
func (d *Digest) Int(v int64) {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		d.h ^= u & 0xff
		d.h *= 1099511628211 // FNV-1a 64 prime
		u >>= 8
	}
}

// Sum returns the digest value.
func (d *Digest) Sum() uint64 { return d.h }

// Flit folds one buffered flit into the digest.
func (d *Digest) Flit(fl Flit) {
	d.Int(int64(fl.Packet))
	d.Int(int64(fl.Seq))
	d.Int(fl.MovedAt)
	d.Int(int64(fl.Kind))
}

// InLane folds one input lane: occupancy, the bound output (port, lane)
// or (-1, -1), and the buffered flits front to back.
func (d *Digest) InLane(n, boundPort, boundLane int, flit func(i int) Flit) {
	d.Int(int64(n))
	d.Int(int64(boundPort))
	d.Int(int64(boundLane))
	for i := 0; i < n; i++ {
		d.Flit(flit(i))
	}
}

// OutLane folds one output lane: occupancy, credits, the bound input
// (port, lane) or (-1, -1), and the buffered flits front to back.
func (d *Digest) OutLane(n, credits, boundPort, boundLane int, flit func(i int) Flit) {
	d.Int(int64(n))
	d.Int(int64(credits))
	d.Int(int64(boundPort))
	d.Int(int64(boundLane))
	for i := 0; i < n; i++ {
		d.Flit(flit(i))
	}
}

// NICLane folds one injection stream: the packet being streamed (or
// NoPacket), the next sequence number, and the stream's credit count.
func (d *Digest) NICLane(cur PacketID, nextSeq int32, credit int) {
	d.Int(int64(cur))
	d.Int(int64(nextSeq))
	d.Int(int64(credit))
}

// Flight folds one flit in transit on a pipelined wire.
func (d *Digest) Flight(fl Flit, lane int, at int64) {
	d.Flit(fl)
	d.Int(int64(lane))
	d.Int(at)
}

// The fabric implements the oracle-comparison interface.
var _ Observable = (*Fabric)(nil)

// HeadersRouted returns the cumulative count of routing decisions won
// since construction — the routing stage's useful-work counter.
func (f *Fabric) HeadersRouted() int64 {
	var n int64
	for i := range f.shards {
		n += f.shards[i].headersRouted
	}
	return n
}

// CreditStalls returns the cumulative count of send attempts an output
// lane lost to an exhausted credit count: a buffered flit wanted the
// link but the downstream lane advertised no space. Growth here is the
// back-pressure signature of congestion spreading upstream.
func (f *Fabric) CreditStalls() int64 {
	var n int64
	for i := range f.shards {
		n += f.shards[i].creditStalls
	}
	return n
}

// Gauges is a point-in-time occupancy view of the fabric — the cheap
// subset of Observe used by the live telemetry sampler: no state digest,
// no per-flit work, just buffer occupancy and queue depth.
type Gauges struct {
	// OccupiedLanes counts input and output lanes holding at least one
	// flit; BufferedFlits totals the flits they hold.
	OccupiedLanes, BufferedFlits int
	// MaxNICQueue is the deepest source queue (packets waiting at one
	// node); NICQueued totals packets across all source queues, part-way
	// injected packets excluded.
	MaxNICQueue, NICQueued int64
}

// ReadGauges walks the lane and NIC arrays densely and returns the
// occupancy gauges. It allocates nothing; at the telemetry layer's
// default cadence (every 100 cycles) the walk is far off the hot path.
func (f *Fabric) ReadGauges() Gauges {
	var g Gauges
	for i := range f.in {
		if n := f.in[i].n; n > 0 {
			g.OccupiedLanes++
			g.BufferedFlits += n
		}
	}
	for i := range f.out {
		if n := f.out[i].n; n > 0 {
			g.OccupiedLanes++
			g.BufferedFlits += n
		}
	}
	for n := range f.nics {
		q := int64(f.nics[n].qlen())
		g.NICQueued += q
		if q > g.MaxNICQueue {
			g.MaxNICQueue = q
		}
	}
	return g
}

// Observe computes the fabric's canonical end-of-cycle observation. It
// walks every lane densely — this is verification instrumentation, not a
// hot path — in (router, port, lane) order, then the arbitration
// pointers, NIC streams and wire pipelines.
func (f *Fabric) Observe() CycleObs {
	obs := CycleObs{
		Cycle:    f.cycle,
		Counters: f.Counters(),
		InFlight: f.InFlight(),
		Queued:   f.QueuedPackets(),
	}
	d := NewDigest()
	nPorts := len(f.ports)
	for pid := 0; pid < nPorts; pid++ {
		inLanes := f.inLanesOf(pid)
		for l := range inLanes {
			il := &inLanes[l]
			bp, bl := -1, -1
			if il.bound != noRef {
				bp, bl = il.bound.unpack()
			}
			d.InLane(il.n, bp, bl, func(i int) Flit { return *il.at(i) })
			if il.n > 0 {
				obs.OccupiedLanes++
				obs.BufferedFlits += il.n
			}
		}
		outLanes := f.outLanesOf(pid)
		for l := range outLanes {
			ol := &outLanes[l]
			bp, bl := -1, -1
			if ol.boundIn != noRef {
				bp, bl = ol.boundIn.unpack()
			}
			d.OutLane(ol.n, int(ol.credits), bp, bl, func(i int) Flit { return *ol.at(i) })
			if ol.n > 0 {
				obs.OccupiedLanes++
				obs.BufferedFlits += ol.n
			}
		}
	}
	for _, rr := range f.routeRR {
		d.Int(int64(rr))
	}
	for _, rr := range f.linkRR {
		d.Int(int64(rr))
	}
	for n := range f.nics {
		nc := &f.nics[n]
		d.Int(int64(nc.qlen()))
		for i := nc.head; i < len(nc.queue); i++ {
			d.Int(int64(nc.queue[i]))
		}
		for l := range nc.lanes {
			st := &nc.lanes[l]
			d.NICLane(st.cur, st.nextSeq, int(st.credit))
		}
	}
	if f.wires != nil {
		for pid := range f.wires {
			w := &f.wires[pid]
			d.Int(int64(len(w.q) - w.head))
			for i := w.head; i < len(w.q); i++ {
				d.Flight(w.q[i].fl, int(w.q[i].lane), w.q[i].at)
			}
		}
	}
	obs.StateHash = d.Sum()
	return obs
}
