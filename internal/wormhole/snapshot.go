package wormhole

import (
	"fmt"
	"strings"

	"smart/internal/sim"
)

// The fabric is the engine watchdog's canonical target: flit movements
// and deliveries drive the progress counter, and a stall produces a
// StallSnapshot post-mortem.
var _ sim.Watchable = (*Fabric)(nil)

// Progress returns the monotonic work counter the watchdog samples: it
// advances whenever a flit moves a pipeline stage or is delivered.
func (f *Fabric) Progress() int64 {
	var n int64
	for i := range f.shards {
		n += f.shards[i].progress
	}
	return n
}

// Pending reports whether flits are inside the network. Source-queued
// packets are excluded deliberately: a throttled source waiting on an
// empty network is idle, not deadlocked.
func (f *Fabric) Pending() bool { return f.InFlight() > 0 }

// StallReport captures the fabric's state for a stall post-mortem.
func (f *Fabric) StallReport() any { return f.snapshot() }

// Snapshot caps keep the post-mortem readable on large fabrics; totals
// record how much was elided.
const (
	snapshotMaxHeaders = 16
	snapshotMaxLanes   = 32
)

// BlockedHeader names one packet header buffered in a lane of a
// stalled fabric — the wait-for graph's nodes, and the first thing to
// look at in a deadlock post-mortem.
type BlockedHeader struct {
	// Router, Port, Lane locate the lane holding the header.
	Router, Port, Lane int
	// Out reports the header is parked in an output lane: it already
	// crossed the crossbar and is waiting on the wire itself.
	Out      bool
	Packet   PacketID
	Src, Dst int
	// Hops is how many routing decisions the packet had won before the
	// stall.
	Hops int
	// Routed reports whether the header's lane is bound to an output
	// (stuck on credits or a full buffer) rather than still waiting for
	// a routing decision.
	Routed bool
	// AtFault reports that the header is blocked by an injected fault:
	// its router is down, or its bound output port is a masked link. The
	// seeded-fault regression keys on it — a fault-oblivious algorithm
	// wedges a worm against the cut and the post-mortem must say so.
	AtFault bool
	// FrontAge is the number of cycles since the lane's front flit last
	// advanced a pipeline stage.
	FrontAge int64
}

// DownLink names one masked physical link by its canonical (lower
// (router, port)) direction.
type DownLink struct {
	Router, Port int
}

// LaneState records one lane's occupancy and credit state. Only lanes
// that deviate from the idle state (buffered flits, missing credits, or
// a live binding) are captured.
type LaneState struct {
	// Router, Port, Lane locate the lane; Dir is "in" or "out".
	Router, Port, Lane int
	Dir                string
	// Flits of Depth buffer slots are occupied. Credits is the output
	// lane's remaining credit count, or -1 for input lanes (credit state
	// lives on the sending side).
	Flits, Depth, Credits int
	// Bound reports a live crossbar binding (in: allocated an output
	// lane; out: claimed by an input lane).
	Bound bool
}

// StallSnapshot is the fabric post-mortem attached to a sim.StallError:
// every blocked header plus the occupancy and credit state of every
// non-idle lane, capped for readability (the totals count what was
// elided).
type StallSnapshot struct {
	Cycle     int64
	Algorithm string
	InFlight  int64 // flits inside the network
	Queued    int64 // packets still at sources

	Blocked      []BlockedHeader
	BlockedTotal int
	Lanes        []LaneState
	LanesTotal   int

	// DownLinks and DownRouters list the fault masks active at the stall
	// (uncapped: schedules are small by construction). A dead router's
	// incident links appear in DownLinks too.
	DownLinks   []DownLink
	DownRouters []int
}

func (s *StallSnapshot) recordHeader(h BlockedHeader) {
	s.BlockedTotal++
	if len(s.Blocked) < snapshotMaxHeaders {
		s.Blocked = append(s.Blocked, h)
	}
}

func (s *StallSnapshot) recordLane(l LaneState) {
	s.LanesTotal++
	if len(s.Lanes) < snapshotMaxLanes {
		s.Lanes = append(s.Lanes, l)
	}
}

// snapshot walks every port's lanes — the same coverage as
// CheckInvariants — and records the non-idle ones.
func (f *Fabric) snapshot() *StallSnapshot {
	s := &StallSnapshot{
		Cycle:     f.cycle,
		Algorithm: f.Alg.Name(),
		InFlight:  f.InFlight(),
		Queued:    f.QueuedPackets(),
	}
	if f.flt != nil {
		for r, c := range f.flt.routerDown {
			if c > 0 {
				s.DownRouters = append(s.DownRouters, r)
			}
		}
		for pid, c := range f.flt.linkDown {
			if c == 0 {
				continue
			}
			port := f.ports[pid]
			if rev := port.Peer*f.deg + port.PeerPort; rev < pid {
				continue // report the canonical direction only
			}
			s.DownLinks = append(s.DownLinks, DownLink{Router: pid / f.deg, Port: pid % f.deg})
		}
	}
	for pid := range f.ports {
		r, p := pid/f.deg, pid%f.deg
		inLanes := f.inLanesOf(pid)
		for l := range inLanes {
			il := &inLanes[l]
			if il.n == 0 {
				continue
			}
			s.recordLane(LaneState{
				Router: r, Port: p, Lane: l, Dir: "in",
				Flits: il.n, Depth: il.cap(), Credits: -1, Bound: il.bound != noRef,
			})
			for i := 0; i < il.n; i++ {
				fl := il.at(i)
				if !fl.Kind.IsHead() {
					continue
				}
				pk := &f.Packets[fl.Packet]
				atFault := false
				if f.flt != nil {
					if f.flt.routerDown[r] > 0 {
						atFault = true
					} else if il.bound != noRef {
						op, _ := il.bound.unpack()
						atFault = f.flt.blocked(int32(r*f.deg+op), f.deg)
					}
				}
				s.recordHeader(BlockedHeader{
					Router: r, Port: p, Lane: l,
					Packet: fl.Packet, Src: int(pk.Src), Dst: int(pk.Dst), Hops: int(pk.Hops),
					Routed:   i == 0 && il.bound != noRef,
					AtFault:  atFault,
					FrontAge: f.cycle - il.front().MovedAt,
				})
				break // one header per lane is enough to seed the diagnosis
			}
		}
		outLanes := f.outLanesOf(pid)
		for l := range outLanes {
			ol := &outLanes[l]
			if ol.n == 0 && int(ol.credits) == f.Cfg.BufDepth && ol.boundIn == noRef {
				continue
			}
			s.recordLane(LaneState{
				Router: r, Port: p, Lane: l, Dir: "out",
				Flits: ol.n, Depth: ol.cap(), Credits: int(ol.credits), Bound: ol.boundIn != noRef,
			})
			for i := 0; i < ol.n; i++ {
				fl := ol.at(i)
				if !fl.Kind.IsHead() {
					continue
				}
				pk := &f.Packets[fl.Packet]
				atFault := false
				if f.flt != nil {
					atFault = f.flt.routerDown[r] > 0 || f.flt.blocked(int32(pid), f.deg)
				}
				s.recordHeader(BlockedHeader{
					Router: r, Port: p, Lane: l, Out: true,
					Packet: fl.Packet, Src: int(pk.Src), Dst: int(pk.Dst), Hops: int(pk.Hops),
					Routed:   true,
					AtFault:  atFault,
					FrontAge: f.cycle - ol.front().MovedAt,
				})
				break
			}
		}
	}
	return s
}

// String renders the snapshot for the StallError message: a summary
// line, the blocked headers, then the non-idle lanes.
func (s *StallSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fabric at cycle %d: algorithm %s, %d flits in flight, %d packets queued, %d blocked headers, %d non-idle lanes",
		s.Cycle, s.Algorithm, s.InFlight, s.Queued, s.BlockedTotal, s.LanesTotal)
	if len(s.DownLinks) > 0 || len(s.DownRouters) > 0 {
		fmt.Fprintf(&b, "\n  active faults: %d links down", len(s.DownLinks))
		for _, dl := range s.DownLinks {
			fmt.Fprintf(&b, " (router %d port %d)", dl.Router, dl.Port)
		}
		fmt.Fprintf(&b, ", %d routers down", len(s.DownRouters))
		for _, dr := range s.DownRouters {
			fmt.Fprintf(&b, " (router %d)", dr)
		}
	}
	for _, h := range s.Blocked {
		state := "unrouted"
		if h.Routed {
			state = "routed"
		}
		fault := ""
		if h.AtFault {
			fault = ", at failed link"
		}
		where := "at"
		if h.Out {
			where = "at out lane"
		}
		fmt.Fprintf(&b, "\n  header of packet %d (%d->%d, %d hops, %s%s) blocked %s router %d port %d lane %d for %d cycles",
			h.Packet, h.Src, h.Dst, h.Hops, state, fault, where, h.Router, h.Port, h.Lane, h.FrontAge)
	}
	if n := s.BlockedTotal - len(s.Blocked); n > 0 {
		fmt.Fprintf(&b, "\n  ... and %d more blocked headers", n)
	}
	for _, l := range s.Lanes {
		bound := ""
		if l.Bound {
			bound = ", bound"
		}
		if l.Dir == "out" {
			fmt.Fprintf(&b, "\n  out lane router %d port %d lane %d: %d/%d flits, %d credits%s",
				l.Router, l.Port, l.Lane, l.Flits, l.Depth, l.Credits, bound)
		} else {
			fmt.Fprintf(&b, "\n  in lane router %d port %d lane %d: %d/%d flits%s",
				l.Router, l.Port, l.Lane, l.Flits, l.Depth, bound)
		}
	}
	if n := s.LanesTotal - len(s.Lanes); n > 0 {
		fmt.Fprintf(&b, "\n  ... and %d more non-idle lanes", n)
	}
	return b.String()
}
