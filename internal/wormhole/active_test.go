package wormhole

import "testing"

func TestDenseSetBasics(t *testing.T) {
	s := newDenseSet(0, 8)
	if s.len() != 0 {
		t.Fatalf("new set has %d members", s.len())
	}
	s.add(3)
	s.add(5)
	s.add(3) // duplicate add is a no-op
	if s.len() != 2 || !s.contains(3) || !s.contains(5) || s.contains(4) {
		t.Fatalf("after adds: len=%d members=%v", s.len(), s.items)
	}
	s.remove(4) // removing a non-member is a no-op
	if s.len() != 2 {
		t.Fatalf("no-op remove changed len to %d", s.len())
	}
	s.remove(3)
	if s.len() != 1 || s.contains(3) || !s.contains(5) {
		t.Fatalf("after remove: len=%d members=%v", s.len(), s.items)
	}
	s.remove(5)
	if s.len() != 0 {
		t.Fatalf("set not empty after removing all: %v", s.items)
	}
	// Re-adding after removal must work (positions reset).
	s.add(5)
	if !s.contains(5) || s.len() != 1 {
		t.Fatal("re-add after remove failed")
	}
}

func TestDenseSetSwapRemoveConsistency(t *testing.T) {
	s := newDenseSet(0, 64)
	for v := int32(0); v < 64; v += 2 {
		s.add(v)
	}
	// Remove from the middle repeatedly; the position index must stay
	// consistent with the items slice throughout.
	for v := int32(0); v < 64; v += 4 {
		s.remove(v)
	}
	for i, v := range s.items {
		if s.pos[v] != int32(i) {
			t.Fatalf("pos[%d]=%d but items[%d]=%d", v, s.pos[v], i, v)
		}
	}
	for v := int32(0); v < 64; v++ {
		want := v%2 == 0 && v%4 != 0
		if s.contains(v) != want {
			t.Fatalf("contains(%d)=%v, want %v", v, s.contains(v), want)
		}
	}
}

// TestInjectedWorkListCorruptionDetected verifies that CheckInvariants
// catches a work list disagreeing with the underlying lane state — the
// fault mode a bug in the incremental maintenance would produce.
func TestInjectedWorkListCorruptionDetected(t *testing.T) {
	f, _ := loadedFabric(t)
	// Drop an active port from the link work list.
	if f.shards[0].linkActive.len() == 0 {
		t.Fatal("fixture has no active ports")
	}
	pid := f.shards[0].linkActive.items[0]
	f.shards[0].linkActive.remove(pid)
	err := f.CheckInvariants()
	if err == nil {
		t.Fatal("link work-list corruption not detected")
	}
	f.shards[0].linkActive.add(pid)
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("fixture unhealthy after restore: %v", err)
	}

	// Corrupt the queued-packet counter.
	f.shards[0].queued++
	if err := f.CheckInvariants(); err == nil {
		t.Fatal("queued-counter corruption not detected")
	}
	f.shards[0].queued--

	// Drop a router from the routing work list, if any are pending.
	if f.shards[0].routeActive.len() > 0 {
		r := f.shards[0].routeActive.items[0]
		f.shards[0].routeActive.remove(r)
		if err := f.CheckInvariants(); err == nil {
			t.Fatal("routing work-list corruption not detected")
		}
		f.shards[0].routeActive.add(r)
	}
}
