package wormhole

import (
	"strings"
	"testing"
)

// TestStoreAndForwardLatencyProduct pins the defining behaviour of the
// three switching modes on an idle path: wormhole latency is additive in
// distance and length, store-and-forward is multiplicative, and virtual
// cut-through (deep buffers, no gate) matches wormhole when nothing
// blocks.
func TestStoreAndForwardLatencyProduct(t *testing.T) {
	const flits = 8
	run := func(cfg Config) int64 {
		f, _ := ringFabric(t, 8, cfg)
		f.EnqueuePacket(0, 4, 0) // 5 switches
		runFabric(f, 2000)
		pk := f.Packet(0)
		if !pk.Delivered() {
			t.Fatal("packet not delivered")
		}
		return pk.NetworkLatency()
	}
	wormholeLat := run(Config{VCs: 1, BufDepth: 4, PacketFlits: flits, InjLanes: 1})
	vctLat := run(Config{VCs: 1, BufDepth: flits, PacketFlits: flits, InjLanes: 1})
	safLat := run(Config{VCs: 1, BufDepth: flits, PacketFlits: flits, InjLanes: 1, StoreAndForward: true})

	if vctLat != wormholeLat {
		t.Fatalf("virtual cut-through latency %d differs from wormhole %d on an idle path", vctLat, wormholeLat)
	}
	// Wormhole: 3 cycles per switch for the head plus the worm length.
	if wormholeLat != 3*5+flits-1 {
		t.Fatalf("wormhole latency %d, want %d", wormholeLat, 3*5+flits-1)
	}
	// Store-and-forward pays the worm length at every switch: the
	// distance-times-length product.
	if safLat < int64(5*flits) {
		t.Fatalf("store-and-forward latency %d lacks the distance x length product (>= %d)", safLat, 5*flits)
	}
	if safLat <= wormholeLat {
		t.Fatalf("store-and-forward (%d) not slower than wormhole (%d)", safLat, wormholeLat)
	}
}

func TestStoreAndForwardRequiresDeepBuffers(t *testing.T) {
	cfg := Config{VCs: 1, BufDepth: 4, PacketFlits: 8, InjLanes: 1, StoreAndForward: true}
	if err := cfg.validate(); err == nil || !strings.Contains(err.Error(), "BufDepth") {
		t.Fatalf("shallow-buffer store-and-forward accepted: %v", err)
	}
}

func TestStoreAndForwardDeliversEverything(t *testing.T) {
	const flits = 4
	f, cube := ringFabric(t, 8, Config{VCs: 1, BufDepth: flits, PacketFlits: flits, InjLanes: 1, StoreAndForward: true})
	for n := 0; n < cube.Nodes()-1; n++ {
		f.EnqueuePacket(n, n+1, 0)
	}
	runFabric(f, 3000)
	if !f.Drained() {
		t.Fatal("store-and-forward traffic did not drain")
	}
	if got := f.Counters().PacketsDelivered; got != 7 {
		t.Fatalf("delivered %d packets, want 7", got)
	}
}

func TestRouteEveryStretchesHeaderLatency(t *testing.T) {
	const flits = 4
	base := Config{VCs: 1, BufDepth: 4, PacketFlits: flits, InjLanes: 1}
	run := func(every int) int64 {
		cfg := base
		cfg.RouteEvery = every
		f, _ := ringFabric(t, 8, cfg)
		f.EnqueuePacket(0, 4, 0)
		runFabric(f, 2000)
		return f.Packet(0).HeadAt
	}
	fast, slow := run(1), run(3)
	if slow <= fast {
		t.Fatalf("RouteEvery=3 head latency %d not above baseline %d", slow, fast)
	}
	if run(0) != fast {
		t.Fatal("RouteEvery=0 should behave like the default")
	}
}

func TestRouteEveryValidation(t *testing.T) {
	cfg := Config{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 1, RouteEvery: -1}
	if err := cfg.validate(); err == nil {
		t.Fatal("negative RouteEvery accepted")
	}
}

func TestFifoAt(t *testing.T) {
	f := newFifo(3)
	f.push(Flit{Seq: 0})
	f.push(Flit{Seq: 1})
	f.pop()
	f.push(Flit{Seq: 2}) // wraps the ring
	if f.at(0).Seq != 1 || f.at(1).Seq != 2 {
		t.Fatalf("at() wrong across wrap: %d %d", f.at(0).Seq, f.at(1).Seq)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range at() did not panic")
		}
	}()
	f.at(2)
}

func TestHoldsWholePacket(t *testing.T) {
	l := inLane{fifo: newFifo(4), bound: noRef}
	pk := PacketInfo{Flits: 3}
	l.push(Flit{Packet: 1, Seq: 0, Kind: FlitHead})
	if l.holdsWholePacket(&pk) {
		t.Fatal("partial packet reported whole")
	}
	l.push(Flit{Packet: 1, Seq: 1})
	l.push(Flit{Packet: 1, Seq: 2, Kind: FlitTail})
	if !l.holdsWholePacket(&pk) {
		t.Fatal("complete packet not recognized")
	}
}
