package wormhole

import (
	"testing"

	"smart/internal/sim"
)

// hotLoadedFabric returns a warmed-up 16-ring with a deep source backlog:
// every node holds many queued packets, so each measured cycle below
// does real link, crossbar, routing and injection work.
func hotLoadedFabric(t *testing.T, shards int) (*Fabric, *sim.Engine) {
	t.Helper()
	f := shardTestFabric(t, Config{VCs: 1, BufDepth: 4, PacketFlits: 8, InjLanes: 2})
	if err := f.SetShards(shards); err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	f.Register(e)
	for round := 0; round < 20; round++ {
		for n := 0; n < 16; n++ {
			f.EnqueuePacket(n, (n+5)%16, 0)
		}
	}
	// Warm up: work lists, wire queues and mailboxes reach their
	// steady-state capacity; the amortized denseSet appends against the
	// bounded lane/router universe complete here.
	e.Run(100)
	return f, e
}

// TestCycleAllocFreeSequential is the dynamic guard behind the
// //smartlint:hotpath annotations: after warm-up, a sequential fabric
// cycle under load performs zero heap allocations. The static hotalloc
// rule catches escapes the compiler can prove; this catches the
// amortization assumptions it cannot.
func TestCycleAllocFreeSequential(t *testing.T) {
	f, e := hotLoadedFabric(t, 1)
	allocs := testing.AllocsPerRun(200, func() { e.Step() })
	if allocs != 0 {
		t.Fatalf("sequential cycle allocates %.1f objects per step, want 0", allocs)
	}
	if f.Drained() {
		t.Fatal("fabric drained during measurement; the cycles were idle")
	}
}

// TestCycleAllocBoundedSharded bounds the parallel path: the two-phase
// driver pays a small fixed closure cost per pool.Run, but the per-shard
// compute and commit bodies themselves must stay allocation-free, so
// the per-cycle total is a small constant independent of load.
func TestCycleAllocBoundedSharded(t *testing.T) {
	f, e := hotLoadedFabric(t, 4)
	if f.Shards() != 4 {
		t.Fatalf("fabric has %d shards, want 4", f.Shards())
	}
	allocs := testing.AllocsPerRun(200, func() { e.Step() })
	if allocs > 8 {
		t.Fatalf("sharded cycle allocates %.1f objects per step, want <= 8 (two pool closures plus slack)", allocs)
	}
	if f.Drained() {
		t.Fatal("fabric drained during measurement; the cycles were idle")
	}
}
