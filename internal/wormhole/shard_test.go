package wormhole

import (
	"strings"
	"testing"

	"smart/internal/sim"
	"smart/internal/topology"
)

func shardTestFabric(t *testing.T, cfg Config) *Fabric {
	t.Helper()
	top, err := topology.NewCube(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFabric(top, cfg, &greedyRing{cube: top, vcs: cfg.VCs})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestShardSetShardsPartitions(t *testing.T) {
	f := shardTestFabric(t, Config{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 1})
	if f.Shards() != 1 {
		t.Fatalf("fresh fabric has %d shards, want 1", f.Shards())
	}
	if err := f.SetShards(4); err != nil {
		t.Fatal(err)
	}
	if f.Shards() != 4 {
		t.Fatalf("SetShards(4) left %d shards", f.Shards())
	}
	// Every router, port, lane and node must be owned by exactly one
	// shard, in ascending contiguous ranges.
	routers := f.Top.Routers()
	seenR := 0
	for i := range f.shards {
		sh := &f.shards[i]
		if sh.rLo != seenR {
			t.Fatalf("shard %d starts at router %d, want %d", i, sh.rLo, seenR)
		}
		seenR = sh.rHi
		for r := sh.rLo; r < sh.rHi; r++ {
			if int(f.routerShard[r]) != i {
				t.Fatalf("router %d mapped to shard %d, owned by %d", r, f.routerShard[r], i)
			}
		}
		for n := sh.nLo; n < sh.nHi; n++ {
			if int(f.nodeShard[n]) != i {
				t.Fatalf("node %d mapped to shard %d, owned by %d", n, f.nodeShard[n], i)
			}
		}
	}
	if seenR != routers {
		t.Fatalf("shards cover %d routers, want %d", seenR, routers)
	}
	// Clamping: more shards than routers.
	f2 := shardTestFabric(t, Config{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 1})
	if err := f2.SetShards(1000); err != nil {
		t.Fatal(err)
	}
	if f2.Shards() != f2.Top.Routers() {
		t.Fatalf("SetShards(1000) on %d routers gave %d shards", f2.Top.Routers(), f2.Shards())
	}
}

func TestShardSetShardsRejectsRunningFabric(t *testing.T) {
	f := shardTestFabric(t, Config{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 1})
	f.EnqueuePacket(0, 1, 0)
	err := f.SetShards(2)
	if err == nil || !strings.Contains(err.Error(), "running fabric") {
		t.Fatalf("SetShards on a fabric with packets: err = %v", err)
	}
}

// TestShardStoreAndForwardForcesSequential pins the documented
// restriction: the whole-packet routing gate inspects same-cycle
// arrivals, which the deferred cross-shard commit hides, so SAF runs
// single-shard.
func TestShardStoreAndForwardForcesSequential(t *testing.T) {
	f := shardTestFabric(t, Config{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 1, StoreAndForward: true})
	if err := f.SetShards(4); err != nil {
		t.Fatal(err)
	}
	if f.Shards() != 1 {
		t.Fatalf("store-and-forward fabric got %d shards, want 1", f.Shards())
	}
}

// TestShardMailboxDrainAscendingSourceOrder pins the commit-phase
// contract the determinism argument rests on: arrivals staged by several
// source shards for one destination lane land in ascending source-shard
// order, per-source FIFO order preserved, and the drained mailboxes are
// reset to empty (capacity retained for the next cycle).
func TestShardMailboxDrainAscendingSourceOrder(t *testing.T) {
	f := shardTestFabric(t, Config{VCs: 1, BufDepth: 8, PacketFlits: 4, InjLanes: 1})
	if err := f.SetShards(4); err != nil {
		t.Fatal(err)
	}
	dst := &f.shards[1]
	lane := dst.inLo
	stage := func(src int, seq int32) {
		sh := &f.shards[src]
		sh.mailFlits[dst.id] = append(sh.mailFlits[dst.id], arrival{lane: lane, fl: Flit{Seq: seq, MovedAt: 7}})
	}
	// Staged out of source order; source 0 stages two flits so the
	// per-source FIFO property is observable too.
	stage(3, 30)
	stage(0, 1)
	stage(0, 2)
	stage(2, 20)
	f.commitShard(dst, 7)
	il := &f.in[lane]
	want := []int32{1, 2, 20, 30}
	if il.len() != len(want) {
		t.Fatalf("destination lane holds %d flits after commit, want %d", il.len(), len(want))
	}
	for i, seq := range want {
		if got := il.at(i).Seq; got != seq {
			t.Fatalf("lane position %d holds seq %d, want %d: drain is not ascending by source shard", i, got, seq)
		}
	}
	for i := range f.shards {
		if n := len(f.shards[i].mailFlits[dst.id]); n != 0 {
			t.Fatalf("source shard %d mailbox kept %d arrivals after drain", i, n)
		}
	}
}

// TestShardMailboxCreditDrain checks the other mailbox lane: a credit
// staged across the cut is applied to the addressed output lane at the
// destination's commit, and the mailbox is reset.
func TestShardMailboxCreditDrain(t *testing.T) {
	f := shardTestFabric(t, Config{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 1})
	if err := f.SetShards(2); err != nil {
		t.Fatal(err)
	}
	dst := &f.shards[0]
	ol := f.outLaneAt(dst.rLo, 0, 0)
	ol.credits-- // as if the link had consumed a buffer slot
	src := &f.shards[1]
	src.mailCredits[dst.id] = append(src.mailCredits[dst.id], laneRefAt{router: int32(dst.rLo), ref: packRef(0, 0)})
	f.commitShard(dst, 1)
	if int(ol.credits) != f.Cfg.BufDepth {
		t.Fatalf("output lane has %d credits after commit, want %d", ol.credits, f.Cfg.BufDepth)
	}
	if len(src.mailCredits[dst.id]) != 0 {
		t.Fatal("credit mailbox not drained")
	}
}

// TestShardOneVsManyDelivery is the in-package smoke for the drain
// order end to end: identical cross-boundary traffic at shards=1 and
// shards=N must produce identical packet timelines and counters. (The
// oracle package carries the exhaustive cycle-by-cycle differential;
// this catches drain-order regressions without leaving the package.)
func TestShardOneVsManyDelivery(t *testing.T) {
	run := func(shards int) *Fabric {
		f := shardTestFabric(t, Config{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 1})
		if err := f.SetShards(shards); err != nil {
			t.Fatal(err)
		}
		e := sim.NewEngine()
		f.Register(e)
		rng := sim.NewRNG(7)
		for cycle := int64(0); cycle < 500; cycle++ {
			if cycle < 300 && rng.Bernoulli(0.25) {
				src := rng.Intn(16)
				dst := (src + 1 + rng.Intn(15)) % 16
				f.EnqueuePacket(src, dst, cycle)
			}
			e.Step()
		}
		return f
	}
	seq := run(1)
	if seq.Counters().PacketsDelivered == 0 {
		t.Fatal("sequential run delivered nothing; the comparison is vacuous")
	}
	for _, shards := range []int{2, 4, 16} {
		shd := run(shards)
		if shd.Shards() != shards {
			t.Fatalf("SetShards(%d) left %d shards", shards, shd.Shards())
		}
		if len(shd.Packets) != len(seq.Packets) {
			t.Fatalf("shards=%d produced %d packets, sequential %d", shards, len(shd.Packets), len(seq.Packets))
		}
		for i := range seq.Packets {
			if seq.Packets[i] != shd.Packets[i] {
				t.Fatalf("shards=%d: packet %d diverged:\nseq %+v\nshd %+v", shards, i, seq.Packets[i], shd.Packets[i])
			}
		}
		if seq.Counters() != shd.Counters() {
			t.Fatalf("shards=%d: counters diverged:\nseq %+v\nshd %+v", shards, seq.Counters(), shd.Counters())
		}
	}
}

// TestShardWireFIFOCompaction pins the unbounded-growth fix: a wire
// queue that is pushed and popped in sustained alternation must reclaim
// its consumed prefix instead of appending forever.
func TestShardWireFIFOCompaction(t *testing.T) {
	var w wireFIFO
	for i := 0; i < 100000; i++ {
		w.push(flight{at: int64(i)})
		w.push(flight{at: int64(i)})
		if got := w.pop(); got.at != int64(i) && got.at != int64(i)-0 {
			_ = got
		}
		w.pop()
		w.push(flight{at: int64(i)})
		// Leave one flight resident so the queue never fully empties and
		// the empty-reset path cannot mask missing compaction.
		w.pop()
	}
	if len(w.q) > 4096 {
		t.Fatalf("wireFIFO retained %d slots for a bounded backlog", len(w.q))
	}
}

// TestShardWireFIFOOrder checks FIFO order is preserved across the
// compaction boundary.
func TestShardWireFIFOOrder(t *testing.T) {
	var w wireFIFO
	next := int64(0) // next value to pop
	pushed := int64(0)
	for i := 0; i < 5000; i++ {
		w.push(flight{at: pushed})
		pushed++
		w.push(flight{at: pushed})
		pushed++
		if got := w.pop(); got.at != next {
			t.Fatalf("pop %d, want %d", got.at, next)
		}
		next++
	}
	for !w.empty() {
		if got := w.pop(); got.at != next {
			t.Fatalf("drain pop %d, want %d", got.at, next)
		}
		next++
	}
	if next != pushed {
		t.Fatalf("drained %d flights, pushed %d", next, pushed)
	}
}
