package wormhole

import (
	"strings"
	"testing"

	"smart/internal/topology"
)

func shardTestFabric(t *testing.T, cfg Config) *Fabric {
	t.Helper()
	top, err := topology.NewCube(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFabric(top, cfg, &greedyRing{cube: top, vcs: cfg.VCs})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestShardSetShardsPartitions(t *testing.T) {
	f := shardTestFabric(t, Config{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 1})
	if f.Shards() != 1 {
		t.Fatalf("fresh fabric has %d shards, want 1", f.Shards())
	}
	if err := f.SetShards(4); err != nil {
		t.Fatal(err)
	}
	if f.Shards() != 4 {
		t.Fatalf("SetShards(4) left %d shards", f.Shards())
	}
	// Every router, port, lane and node must be owned by exactly one
	// shard, in ascending contiguous ranges.
	routers := f.Top.Routers()
	seenR := 0
	for i := range f.shards {
		sh := &f.shards[i]
		if sh.rLo != seenR {
			t.Fatalf("shard %d starts at router %d, want %d", i, sh.rLo, seenR)
		}
		seenR = sh.rHi
		for r := sh.rLo; r < sh.rHi; r++ {
			if int(f.routerShard[r]) != i {
				t.Fatalf("router %d mapped to shard %d, owned by %d", r, f.routerShard[r], i)
			}
		}
		for n := sh.nLo; n < sh.nHi; n++ {
			if int(f.nodeShard[n]) != i {
				t.Fatalf("node %d mapped to shard %d, owned by %d", n, f.nodeShard[n], i)
			}
		}
	}
	if seenR != routers {
		t.Fatalf("shards cover %d routers, want %d", seenR, routers)
	}
	// Clamping: more shards than routers.
	f2 := shardTestFabric(t, Config{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 1})
	if err := f2.SetShards(1000); err != nil {
		t.Fatal(err)
	}
	if f2.Shards() != f2.Top.Routers() {
		t.Fatalf("SetShards(1000) on %d routers gave %d shards", f2.Top.Routers(), f2.Shards())
	}
}

func TestShardSetShardsRejectsRunningFabric(t *testing.T) {
	f := shardTestFabric(t, Config{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 1})
	f.EnqueuePacket(0, 1, 0)
	err := f.SetShards(2)
	if err == nil || !strings.Contains(err.Error(), "running fabric") {
		t.Fatalf("SetShards on a fabric with packets: err = %v", err)
	}
}

// TestShardStoreAndForwardForcesSequential pins the documented
// restriction: the whole-packet routing gate inspects same-cycle
// arrivals, which the deferred cross-shard commit hides, so SAF runs
// single-shard.
func TestShardStoreAndForwardForcesSequential(t *testing.T) {
	f := shardTestFabric(t, Config{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 1, StoreAndForward: true})
	if err := f.SetShards(4); err != nil {
		t.Fatal(err)
	}
	if f.Shards() != 1 {
		t.Fatalf("store-and-forward fabric got %d shards, want 1", f.Shards())
	}
}

// TestShardWireFIFOCompaction pins the unbounded-growth fix: a wire
// queue that is pushed and popped in sustained alternation must reclaim
// its consumed prefix instead of appending forever.
func TestShardWireFIFOCompaction(t *testing.T) {
	var w wireFIFO
	for i := 0; i < 100000; i++ {
		w.push(flight{at: int64(i)})
		w.push(flight{at: int64(i)})
		if got := w.pop(); got.at != int64(i) && got.at != int64(i)-0 {
			_ = got
		}
		w.pop()
		w.push(flight{at: int64(i)})
		// Leave one flight resident so the queue never fully empties and
		// the empty-reset path cannot mask missing compaction.
		w.pop()
	}
	if len(w.q) > 4096 {
		t.Fatalf("wireFIFO retained %d slots for a bounded backlog", len(w.q))
	}
}

// TestShardWireFIFOOrder checks FIFO order is preserved across the
// compaction boundary.
func TestShardWireFIFOOrder(t *testing.T) {
	var w wireFIFO
	next := int64(0) // next value to pop
	pushed := int64(0)
	for i := 0; i < 5000; i++ {
		w.push(flight{at: pushed})
		pushed++
		w.push(flight{at: pushed})
		pushed++
		if got := w.pop(); got.at != next {
			t.Fatalf("pop %d, want %d", got.at, next)
		}
		next++
	}
	for !w.empty() {
		if got := w.pop(); got.at != next {
			t.Fatalf("drain pop %d, want %d", got.at, next)
		}
		next++
	}
	if next != pushed {
		t.Fatalf("drained %d flights, pushed %d", next, pushed)
	}
}
