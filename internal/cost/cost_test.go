package cost

import (
	"math"
	"testing"
)

// TestTable1MatchesPaper regenerates Table 1 of the paper exactly: the
// delays of the two cube routing algorithms in nanoseconds, truncated to
// two decimals as published.
func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	want := []struct {
		label                             string
		tRouting, tCrossbar, tLink, clock float64
	}{
		{"deterministic", 5.9, 5.85, 6.34, 6.34},
		{"duato", 7.8, 5.85, 6.34, 7.8},
	}
	if len(rows) != len(want) {
		t.Fatalf("Table 1 has %d rows, want %d", len(rows), len(want))
	}
	for i, w := range want {
		r := rows[i]
		if r.Label != w.label {
			t.Errorf("row %d label %q, want %q", i, r.Label, w.label)
		}
		if got := Trunc2(r.TRouting); got != w.tRouting {
			t.Errorf("%s T_routing = %v, want %v", w.label, got, w.tRouting)
		}
		if got := Trunc2(r.TCrossbar); got != w.tCrossbar {
			t.Errorf("%s T_crossbar = %v, want %v", w.label, got, w.tCrossbar)
		}
		if got := Trunc2(r.TLink); got != w.tLink {
			t.Errorf("%s T_link = %v, want %v", w.label, got, w.tLink)
		}
		if got := Trunc2(r.Clock); got != w.clock {
			t.Errorf("%s T_clock = %v, want %v", w.label, got, w.clock)
		}
	}
}

// TestTable2MatchesPaper regenerates Table 2: the three fat-tree flow
// control variants.
func TestTable2MatchesPaper(t *testing.T) {
	rows := Table2()
	want := []struct {
		label                             string
		tRouting, tCrossbar, tLink, clock float64
	}{
		{"adaptive-1vc", 8.06, 5.2, 9.64, 9.64},
		{"adaptive-2vc", 9.26, 5.8, 10.24, 10.24},
		{"adaptive-4vc", 10.46, 6.4, 10.84, 10.84},
	}
	if len(rows) != len(want) {
		t.Fatalf("Table 2 has %d rows, want %d", len(rows), len(want))
	}
	for i, w := range want {
		r := rows[i]
		if r.Label != w.label {
			t.Errorf("row %d label %q, want %q", i, r.Label, w.label)
		}
		if got := Trunc2(r.TRouting); got != w.tRouting {
			t.Errorf("%s T_routing = %v, want %v", w.label, got, w.tRouting)
		}
		if got := Trunc2(r.TCrossbar); got != w.tCrossbar {
			t.Errorf("%s T_crossbar = %v, want %v", w.label, got, w.tCrossbar)
		}
		if got := Trunc2(r.TLink); got != w.tLink {
			t.Errorf("%s T_link = %v, want %v", w.label, got, w.tLink)
		}
		if got := Trunc2(r.Clock); got != w.clock {
			t.Errorf("%s T_clock = %v, want %v", w.label, got, w.clock)
		}
	}
}

func TestParametersMatchPaper(t *testing.T) {
	det, duato := CubeDeterministic(), CubeDuato()
	if det.F != 2 || det.P != 17 || det.V != 4 {
		t.Errorf("deterministic parameters (F=%d P=%d V=%d), want (2,17,4)", det.F, det.P, det.V)
	}
	if duato.F != 6 || duato.P != 17 || duato.V != 4 {
		t.Errorf("duato parameters (F=%d P=%d V=%d), want (6,17,4)", duato.F, duato.P, duato.V)
	}
	for _, v := range []int{1, 2, 4} {
		tree := TreeAdaptive(4, v)
		if tree.F != 7*v || tree.P != 8*v || tree.V != v {
			t.Errorf("tree %dvc parameters (F=%d P=%d), want ((2k-1)V=%d, 2kV=%d)", v, tree.F, tree.P, 7*v, 8*v)
		}
	}
}

func TestGeneralizedCubeTimingsMatchPaperInstance(t *testing.T) {
	if CubeDeterministicN(2) != CubeDeterministic() {
		t.Error("CubeDeterministicN(2) differs from the Table 1 row")
	}
	if CubeDuatoN(2) != CubeDuato() {
		t.Error("CubeDuatoN(2) differs from the Table 1 row")
	}
	// Higher dimensionality costs more routing freedom and ports.
	d3 := CubeDuatoN(3)
	if d3.F != 8 || d3.P != 25 {
		t.Errorf("3-cube duato (F=%d P=%d), want (8,25)", d3.F, d3.P)
	}
}

func TestDelayEquationsExactForm(t *testing.T) {
	// Spot-check the closed forms at powers of two where log2 is exact.
	if got := TRouting(2); math.Abs(got-5.9) > 1e-12 {
		t.Errorf("TRouting(2) = %v", got)
	}
	if got := TRouting(8); math.Abs(got-(4.7+3.6)) > 1e-12 {
		t.Errorf("TRouting(8) = %v", got)
	}
	if got := TCrossbar(8); math.Abs(got-5.2) > 1e-12 {
		t.Errorf("TCrossbar(8) = %v", got)
	}
	if got := TLinkShort(1); math.Abs(got-5.14) > 1e-12 {
		t.Errorf("TLinkShort(1) = %v", got)
	}
	if got := TLinkMedium(4); math.Abs(got-10.84) > 1e-12 {
		t.Errorf("TLinkMedium(4) = %v", got)
	}
}

func TestDelaysMonotonic(t *testing.T) {
	for f := 1; f < 64; f++ {
		if TRouting(f+1) <= TRouting(f) {
			t.Fatalf("TRouting not increasing at F=%d", f)
		}
	}
	for p := 1; p < 64; p++ {
		if TCrossbar(p+1) <= TCrossbar(p) {
			t.Fatalf("TCrossbar not increasing at P=%d", p)
		}
	}
	for v := 1; v < 32; v++ {
		if TLinkShort(v+1) <= TLinkShort(v) || TLinkMedium(v+1) <= TLinkMedium(v) {
			t.Fatalf("link delays not increasing at V=%d", v)
		}
	}
}

func TestMediumWiresAlwaysSlower(t *testing.T) {
	for v := 1; v <= 16; v++ {
		if TLinkMedium(v) <= TLinkShort(v) {
			t.Fatalf("medium wires not slower at V=%d", v)
		}
	}
}

func TestClockIsMaxOfDelays(t *testing.T) {
	for _, timing := range append(Table1(), Table2()...) {
		max := math.Max(timing.TRouting, math.Max(timing.TCrossbar, timing.TLink))
		if timing.Clock != max {
			t.Errorf("%s clock %v != max delay %v", timing.Label, timing.Clock, max)
		}
	}
}

// TestTreeWireLimitedUntil4VC captures the paper's observation: with one
// and two virtual channels the fat-tree router is wire-limited (the link
// delay dominates); at four the routing delay nearly catches up, and
// beyond four the routing logic becomes the bottleneck.
func TestTreeWireLimitedUntil4VC(t *testing.T) {
	for _, v := range []int{1, 2, 4} {
		tm := TreeAdaptive(4, v)
		if tm.Clock != tm.TLink {
			t.Errorf("%dvc: clock %v not set by the wire delay %v", v, tm.Clock, tm.TLink)
		}
	}
	if tm := TreeAdaptive(4, 8); tm.Clock != tm.TRouting {
		t.Errorf("8vc: expected routing-limited clock, got %v (routing %v)", tm.Clock, tm.TRouting)
	}
}

func TestDelayPanicsOnBadInput(t *testing.T) {
	for _, fn := range []func(){
		func() { TRouting(0) },
		func() { TCrossbar(0) },
		func() { TLinkShort(0) },
		func() { TLinkMedium(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("non-positive parameter did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestTrunc2(t *testing.T) {
	cases := map[float64]float64{8.0689: 8.06, 7.8019: 7.8, 6.34: 6.34, 10.4688: 10.46}
	for in, want := range cases {
		if got := Trunc2(in); got != want {
			t.Errorf("Trunc2(%v) = %v, want %v", in, got, want)
		}
	}
}
