// Package cost implements Chien's router cost and speed model as the
// paper applies it (§5): closed-form delay estimates, in nanoseconds and
// for a 0.8 micron CMOS gate-array technology, of the routing decision,
// the crossbar traversal and the link transmission, as functions of the
// routing freedom F, the crossbar port count P and the virtual-channel
// multiplexing degree V. The clock cycle of a router implementation is
// the maximum of its three delays; the simulator equalizes all three
// stages to one cycle and converts back to absolute time with these
// figures, which regenerate the paper's Tables 1 and 2.
package cost

import (
	"fmt"
	"math"
)

// TRouting is Equation 1: the delay of address decoding, routing decision
// and header selection, growing logarithmically in the degree of freedom
// F offered by the routing algorithm.
func TRouting(f int) float64 {
	if f < 1 {
		panic(fmt.Sprintf("cost: TRouting with non-positive freedom %d", f))
	}
	return 4.7 + 1.2*math.Log2(float64(f))
}

// TCrossbar is Equation 2: internal flow-control unit, crossbar and
// output latch set-up, growing logarithmically in the number of crossbar
// ports P.
func TCrossbar(p int) float64 {
	if p < 1 {
		panic(fmt.Sprintf("cost: TCrossbar with non-positive port count %d", p))
	}
	return 3.4 + 0.6*math.Log2(float64(p))
}

// TLinkShort is Equation 3: transmission across a physical link with
// short, constant-length wires — achievable for low-dimensional cubes
// embedded in three-dimensional space — plus the virtual-channel
// controller's logarithmic cost in V.
func TLinkShort(v int) float64 {
	if v < 1 {
		panic(fmt.Sprintf("cost: TLinkShort with non-positive VC count %d", v))
	}
	return 5.14 + 0.6*math.Log2(float64(v))
}

// TLinkMedium is Equation 4: the same delay for medium-length wires,
// which a 256-node quaternary fat-tree cannot avoid when embedded in
// three-dimensional space.
func TLinkMedium(v int) float64 {
	if v < 1 {
		panic(fmt.Sprintf("cost: TLinkMedium with non-positive VC count %d", v))
	}
	return 9.64 + 0.6*math.Log2(float64(v))
}

// Timing aggregates the three stage delays of a router implementation and
// the resulting clock cycle (their maximum), all in nanoseconds.
type Timing struct {
	Label                      string
	F, P, V                    int
	TRouting, TCrossbar, TLink float64
	Clock                      float64
}

func newTiming(label string, f, p, v int, tlink float64) Timing {
	t := Timing{
		Label: label, F: f, P: p, V: v,
		TRouting:  TRouting(f),
		TCrossbar: TCrossbar(p),
		TLink:     tlink,
	}
	t.Clock = math.Max(t.TRouting, math.Max(t.TCrossbar, t.TLink))
	return t
}

// CubeDeterministic returns the Table 1 timing of the deterministic cube
// algorithm: V = 4 virtual channels, P = 17 crossbar ports (four links of
// four lanes plus the injection channel), F = 2 (the two lanes of the
// current virtual network in the single dimension-order direction), and
// short wires.
func CubeDeterministic() Timing {
	return newTiming("deterministic", 2, 17, 4, TLinkShort(4))
}

// CubeDuato returns the Table 1 timing of the minimal adaptive cube
// algorithm: same V and P as the deterministic one, but F = 6 (four
// adaptive channels across the two minimal directions plus the two
// deterministic channels).
func CubeDuato() Timing {
	return newTiming("duato", 6, 17, 4, TLinkShort(4))
}

// TreeAdaptive returns the Table 2 timing of the fat-tree adaptive
// algorithm for a k-ary tree with v virtual channels: in the ascending
// phase a packet may take any of the 2k-1 other links, each with v lanes,
// so F = (2k-1)*v; the crossbar has P = 2k*v ports; and the wires are of
// medium length.
func TreeAdaptive(k, v int) Timing {
	return newTiming(fmt.Sprintf("adaptive-%dvc", v), (2*k-1)*v, 2*k*v, v, TLinkMedium(v))
}

// CubeDeterministicN generalizes the Table 1 deterministic row to an
// n-dimensional cube: the crossbar has 2n links of four lanes plus the
// injection channel, and the routing freedom stays at the two lanes of
// the current virtual network.
func CubeDeterministicN(n int) Timing {
	return newTiming("deterministic", 2, 8*n+1, 4, TLinkShort(4))
}

// CubeDuatoN generalizes the Table 1 adaptive row: two adaptive lanes on
// each of up to n minimal directions plus the two deterministic escape
// channels, F = 2n + 2.
func CubeDuatoN(n int) Timing {
	return newTiming("duato", 2*n+2, 8*n+1, 4, TLinkShort(4))
}

// Table1 returns the two rows of the paper's Table 1.
func Table1() []Timing {
	return []Timing{CubeDeterministic(), CubeDuato()}
}

// Table2 returns the three rows of the paper's Table 2 (a quaternary
// tree with one, two and four virtual channels).
func Table2() []Timing {
	return []Timing{TreeAdaptive(4, 1), TreeAdaptive(4, 2), TreeAdaptive(4, 4)}
}

// Trunc2 truncates x to two decimals, the rounding the paper's tables
// use; tests compare against the published figures through it. A small
// epsilon absorbs binary floating-point artifacts (0.6*log2(8) is
// 1.7999... in binary, but the paper's arithmetic is decimal).
func Trunc2(x float64) float64 { return math.Trunc(x*100+1e-9) / 100 }
