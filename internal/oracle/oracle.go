// Package oracle is the reference wormhole simulator: a deliberately
// naive, allocation-happy reimplementation of the cycle semantics in
// DESIGN.md §4, kept independent of internal/wormhole's optimized data
// layout so the two can be compared flit for flit. Where the fabric runs
// flattened lane arrays, incremental work lists and dense-sweep
// fallbacks, the oracle keeps jagged per-router/per-port structures,
// walks every router, port and lane every cycle, reallocates buffers on
// every pop, and calls back through the Topology interface instead of
// caching port tables. Nothing here is meant to be fast; everything here
// is meant to be obviously a transcription of the design document.
//
// The oracle shares only the leaf packages the design shares too: the
// topology graph view, the routing algorithms (through wormhole.Router),
// the traffic process (through traffic.Network) and the flit/packet
// vocabulary types. The simulator core — stages, arbitration, flow
// control, delivery — is written from the prose, not from fabric.go.
package oracle

import (
	"fmt"

	"smart/internal/sim"
	"smart/internal/topology"
	"smart/internal/wormhole"
)

// inLane is the input buffer of one virtual channel. The slice holds the
// buffered flits front first; boundPort/boundLane name the output lane
// the current packet was allocated, -1 while unbound.
type inLane struct {
	buf       []wormhole.Flit
	boundPort int
	boundLane int
}

// outLane is the output buffer of one virtual channel. credits counts
// the known free space in the matching input lane across the link;
// boundPort/boundLane name the input lane switched onto this lane.
type outLane struct {
	buf       []wormhole.Flit
	credits   int
	boundPort int
	boundLane int
}

// port is one bidirectional router port: its input and output lanes.
type port struct {
	in  []inLane
	out []outLane
}

// nicLane is one injection stream of a node's network interface.
type nicLane struct {
	cur     wormhole.PacketID
	nextSeq int32
	credit  int
}

// nic is a node's network interface: the unbounded source queue and the
// injection streams.
type nic struct {
	queue []wormhole.PacketID
	lanes []nicLane
}

// flight is one flit in transit on a pipelined wire.
type flight struct {
	fl   wormhole.Flit
	lane int
	at   int64
}

// Sim is the reference simulator. It implements wormhole.Router (so the
// real routing algorithms drive it), traffic.Network (so the real
// injection process feeds it), metrics.Source (so the real measurement
// window reads it) and wormhole.Observable (so the differential harness
// compares it against the fabric).
type Sim struct {
	Top topology.Topology
	Cfg wormhole.Config
	Alg wormhole.RoutingAlgorithm

	packets []wormhole.PacketInfo
	// deliverNext mirrors the per-packet in-order delivery assertion the
	// fabric keeps unexported; indexed by PacketID.
	deliverNext []int32

	// routers[r][p] is port p of router r; jagged on purpose.
	routers [][]port
	// routeRR[r] is router r's routing round-robin pointer over its input
	// lanes in (port, lane) order; linkRR[r][p] the link arbitration
	// pointer of port (r, p) over its output lanes.
	routeRR []int
	linkRR  [][]int
	nics    []nic
	// wires[r][p] holds the flits in flight on the wire leaving port
	// (r, p); allocated only when LinkCycles > 1.
	wires [][][]flight

	// Deferred credit returns, applied at the end of the cycle to model
	// the one-cycle ack lines.
	pendingCredits []laneAddr
	pendingNIC     []nicAddr

	counters wormhole.Counters
	inFlight int64
	queued   int64
	cycle    int64

	// flt holds the fault masks (faults.go); nil until the first fault
	// is injected.
	flt         *faultState
	faultStalls int64
}

// laneAddr addresses an output lane anywhere in the network.
type laneAddr struct {
	router, port, lane int
}

// nicAddr addresses one injection stream.
type nicAddr struct {
	node, lane int
}

// laneCounts returns the input/output lane complement of a port kind:
// routers exchange the full virtual-channel complement, a node port's
// input side is the injection channel and its output side the ejection
// channel with all virtual channels (§4).
func laneCounts(kind topology.PortKind, cfg wormhole.Config) (inN, outN int) {
	switch kind {
	case topology.PortRouter:
		return cfg.VCs, cfg.VCs
	case topology.PortNode:
		return cfg.InjLanes, cfg.VCs
	}
	return 0, 0
}

// New assembles a reference simulator over the topology. The parameter
// checks mirror wormhole.NewFabric so a config either builds both
// simulators or neither.
func New(top topology.Topology, cfg wormhole.Config, alg wormhole.RoutingAlgorithm) (*Sim, error) {
	if cfg.VCs < 1 || cfg.BufDepth < 1 || cfg.PacketFlits < 1 || cfg.InjLanes < 1 {
		return nil, fmt.Errorf("oracle: invalid config %+v", cfg)
	}
	if cfg.StoreAndForward && cfg.BufDepth < cfg.PacketFlits {
		return nil, fmt.Errorf("oracle: store-and-forward needs BufDepth >= PacketFlits (%d < %d)", cfg.BufDepth, cfg.PacketFlits)
	}
	if cfg.RouteEvery < 0 || cfg.LinkCycles < 0 {
		return nil, fmt.Errorf("oracle: negative pipeline parameter in %+v", cfg)
	}
	if alg.VCs() != cfg.VCs {
		return nil, fmt.Errorf("oracle: algorithm %s needs %d VCs but config has %d", alg.Name(), alg.VCs(), cfg.VCs)
	}
	s := &Sim{Top: top, Cfg: cfg, Alg: alg}
	s.routers = make([][]port, top.Routers())
	s.routeRR = make([]int, top.Routers())
	s.linkRR = make([][]int, top.Routers())
	for r := range s.routers {
		ports := top.RouterPorts(r)
		s.routers[r] = make([]port, len(ports))
		s.linkRR[r] = make([]int, len(ports))
		for p, tp := range ports {
			inN, outN := laneCounts(tp.Kind, cfg)
			pt := &s.routers[r][p]
			pt.in = make([]inLane, inN)
			for l := range pt.in {
				pt.in[l] = inLane{boundPort: -1, boundLane: -1}
			}
			pt.out = make([]outLane, outN)
			for l := range pt.out {
				pt.out[l] = outLane{credits: cfg.BufDepth, boundPort: -1, boundLane: -1}
			}
		}
	}
	if cfg.LinkCycles > 1 {
		s.wires = make([][][]flight, top.Routers())
		for r := range s.wires {
			s.wires[r] = make([][]flight, top.Degree())
		}
	}
	s.nics = make([]nic, top.Nodes())
	for n := range s.nics {
		lanes := make([]nicLane, cfg.InjLanes)
		for l := range lanes {
			lanes[l] = nicLane{cur: wormhole.NoPacket, credit: cfg.BufDepth}
		}
		s.nics[n] = nic{lanes: lanes}
	}
	return s, nil
}

// Register installs the oracle's pipeline stages on the engine in the
// same canonical order as the fabric: link transfer, crossbar transfer,
// routing, injection, credit commit.
func (s *Sim) Register(e *sim.Engine) {
	e.RegisterFunc("link", s.linkStage)
	e.RegisterFunc("crossbar", s.crossbarStage)
	e.RegisterFunc("routing", s.routingStage)
	e.RegisterFunc("injection", s.injectionStage)
	e.RegisterFunc("credits", s.creditStage)
}

// The oracle presents the same state views as the fabric.
var (
	_ wormhole.Router     = (*Sim)(nil)
	_ wormhole.Observable = (*Sim)(nil)
)

// Counters returns a snapshot of the running totals.
func (s *Sim) Counters() wormhole.Counters { return s.counters }

// Nodes returns the number of processing nodes.
func (s *Sim) Nodes() int { return s.Top.Nodes() }

// PacketFlits returns the configured packet length in flits.
func (s *Sim) PacketFlits() int { return s.Cfg.PacketFlits }

// PacketRecords returns the oracle's packet table.
func (s *Sim) PacketRecords() []wormhole.PacketInfo { return s.packets }

// InFlight returns the number of flits inside the network.
func (s *Sim) InFlight() int64 { return s.inFlight }

// QueuedPackets returns the packets waiting at sources or part-way
// through injection.
func (s *Sim) QueuedPackets() int64 { return s.queued }

// Drained reports whether no traffic remains anywhere.
func (s *Sim) Drained() bool { return s.inFlight == 0 && s.queued == 0 }

// EnqueuePacket creates a packet from src to dst at the given cycle and
// places it on the source's queue, mirroring the fabric's packet-table
// discipline so both sides allocate identical PacketIDs.
func (s *Sim) EnqueuePacket(src, dst int, cycle int64) wormhole.PacketID {
	if src == dst {
		panic("oracle: EnqueuePacket with src == dst")
	}
	id := wormhole.PacketID(len(s.packets))
	s.packets = append(s.packets, wormhole.PacketInfo{
		Src: int32(src), Dst: int32(dst), Flits: int32(s.Cfg.PacketFlits),
		CreatedAt: cycle, InjectedAt: -1, HeadAt: -1, TailAt: -1,
	})
	s.deliverNext = append(s.deliverNext, 0)
	s.nics[src].queue = append(s.nics[src].queue, id)
	s.queued++
	s.counters.PacketsCreated++
	return id
}

// Packet implements wormhole.Router.
func (s *Sim) Packet(id wormhole.PacketID) *wormhole.PacketInfo { return &s.packets[id] }

// Dest implements wormhole.Router.
func (s *Sim) Dest(id wormhole.PacketID) int { return int(s.packets[id].Dst) }

// free reports whether a header may be allocated to the output lane:
// neither full nor bound to another input lane (§4).
func (o *outLane) free(bufDepth int) bool {
	return o.boundPort < 0 && len(o.buf) < bufDepth
}

// OutLaneFree implements wormhole.Router.
func (s *Sim) OutLaneFree(r, p, lane int) bool {
	return s.routers[r][p].out[lane].free(s.Cfg.BufDepth)
}

// OutLaneCredits implements wormhole.Router.
func (s *Sim) OutLaneCredits(r, p, lane int) int {
	return s.routers[r][p].out[lane].credits
}

// FreeLanes implements wormhole.Router.
func (s *Sim) FreeLanes(r, p, lo, hi int) int {
	lanes := s.routers[r][p].out
	free := 0
	for l := lo; l < hi && l < len(lanes); l++ {
		if lanes[l].free(s.Cfg.BufDepth) {
			free++
		}
	}
	return free
}

// popFront removes and returns the first flit, reallocating the buffer —
// the deliberate opposite of the fabric's ring buffers.
func popFront(buf []wormhole.Flit) (wormhole.Flit, []wormhole.Flit) {
	fl := buf[0]
	rest := make([]wormhole.Flit, len(buf)-1)
	copy(rest, buf[1:])
	return fl, rest
}

// linkStage moves at most one flit per physical channel direction: every
// output port fair-arbitrates among its lanes holding a sendable flit
// and transfers the winner to the same-numbered input lane of the
// neighbouring switch, or delivers it on ejection channels. The oracle
// visits every port of every router in index order; port decisions are
// mutually independent, so this matches the fabric's work-list order.
func (s *Sim) linkStage(cycle int64) {
	s.cycle = cycle
	if s.wires != nil {
		s.commitWireArrivals(cycle)
	}
	for r := range s.routers {
		for p := range s.routers[r] {
			s.linkPort(r, p, cycle)
		}
	}
}

// linkPort arbitrates and advances one output port for the cycle.
func (s *Sim) linkPort(r, p int, cycle int64) {
	tp := s.Top.RouterPorts(r)[p]
	lanes := s.routers[r][p].out
	n := len(lanes)
	if n == 0 {
		return
	}
	if s.flt != nil && s.flt.blocked(r, p) {
		// A masked port holds its buffered flits in place; count one
		// suppressed transfer opportunity when there was anything to
		// send, matching the fabric (which only visits occupied ports).
		for l := 0; l < n; l++ {
			if len(lanes[l].buf) > 0 {
				s.faultStalls++
				break
			}
		}
		return
	}
	start := s.linkRR[r][p]
	switch tp.Kind {
	case topology.PortRouter:
		for i := 0; i < n; i++ {
			l := (start + i) % n
			ol := &lanes[l]
			if len(ol.buf) == 0 || ol.credits == 0 {
				continue
			}
			if ol.buf[0].MovedAt >= cycle {
				continue
			}
			var moved wormhole.Flit
			moved, ol.buf = popFront(ol.buf)
			moved.MovedAt = cycle
			ol.credits--
			if s.wires != nil {
				s.wires[r][p] = append(s.wires[r][p], flight{fl: moved, lane: l, at: cycle + int64(s.Cfg.LinkCycles) - 1})
			} else {
				s.pushIn(tp.Peer, tp.PeerPort, l, moved)
			}
			s.linkRR[r][p] = (l + 1) % n
			break
		}
	case topology.PortNode:
		// Ejection channel: the node consumes one flit per cycle; its
		// buffers never back-pressure the router.
		for i := 0; i < n; i++ {
			l := (start + i) % n
			ol := &lanes[l]
			if len(ol.buf) == 0 {
				continue
			}
			if ol.buf[0].MovedAt >= cycle {
				continue
			}
			var moved wormhole.Flit
			moved, ol.buf = popFront(ol.buf)
			if s.wires != nil {
				moved.MovedAt = cycle
				s.wires[r][p] = append(s.wires[r][p], flight{fl: moved, lane: l, at: cycle + int64(s.Cfg.LinkCycles) - 1})
			} else {
				s.deliver(moved, cycle)
			}
			s.linkRR[r][p] = (l + 1) % n
			break
		}
	}
}

// commitWireArrivals lands every in-flight flit whose flight time has
// elapsed: into the neighbour's input lane (the credit consumed at send
// time reserved the slot) or, on ejection wires, into the destination
// NIC.
func (s *Sim) commitWireArrivals(cycle int64) {
	for r := range s.wires {
		for p := range s.wires[r] {
			w := s.wires[r][p]
			if len(w) == 0 {
				continue
			}
			tp := s.Top.RouterPorts(r)[p]
			for len(w) > 0 && w[0].at <= cycle {
				var fl flight
				fl, w = w[0], append([]flight(nil), w[1:]...)
				switch tp.Kind {
				case topology.PortRouter:
					arrived := fl.fl
					arrived.MovedAt = fl.at
					s.pushIn(tp.Peer, tp.PeerPort, fl.lane, arrived)
				case topology.PortNode:
					s.deliver(fl.fl, fl.at)
				}
			}
			s.wires[r][p] = w
		}
	}
}

// pushIn places a flit into input lane (r, p, l), enforcing the buffer
// capacity the credit discipline guarantees.
func (s *Sim) pushIn(r, p, l int, fl wormhole.Flit) {
	il := &s.routers[r][p].in[l]
	if len(il.buf) >= s.Cfg.BufDepth {
		panic("oracle: push into full input lane")
	}
	il.buf = append(il.buf, fl)
}

// deliver records the arrival of a flit at its destination NIC,
// asserting exactly-once in-order delivery.
func (s *Sim) deliver(fl wormhole.Flit, cycle int64) {
	pk := &s.packets[fl.Packet]
	if fl.Seq != s.deliverNext[fl.Packet] {
		panic(fmt.Sprintf("oracle: packet %d delivered flit %d out of order (expected %d)", fl.Packet, fl.Seq, s.deliverNext[fl.Packet]))
	}
	s.deliverNext[fl.Packet]++
	if fl.Kind.IsTail() && fl.Seq != pk.Flits-1 {
		panic(fmt.Sprintf("oracle: packet %d tail at sequence %d, want %d", fl.Packet, fl.Seq, pk.Flits-1))
	}
	if fl.Kind.IsHead() {
		pk.HeadAt = cycle
	}
	if fl.Kind.IsTail() {
		pk.TailAt = cycle
		s.counters.PacketsDelivered++
	}
	s.counters.FlitsDelivered++
	s.inFlight--
}

// crossbarStage moves flits from bound input lanes into their allocated
// output lanes — one flit per lane per cycle, any number of lanes in
// parallel — and defers the credit return to the upstream side. The tail
// flit's passage releases both bindings. Every lane of every port is
// visited in index order; each output lane has exactly one bound input,
// so the order cannot change the outcome.
func (s *Sim) crossbarStage(cycle int64) {
	for r := range s.routers {
		for p := range s.routers[r] {
			for l := range s.routers[r][p].in {
				s.xbarLane(r, p, l, cycle)
			}
		}
	}
}

// xbarLane advances one input lane through the crossbar.
func (s *Sim) xbarLane(r, p, l int, cycle int64) {
	if s.flt != nil && s.flt.routerDown[r] > 0 {
		return // dead router: crossbar frozen, bindings held
	}
	il := &s.routers[r][p].in[l]
	if len(il.buf) == 0 || il.boundPort < 0 {
		return
	}
	if il.buf[0].MovedAt >= cycle {
		return
	}
	ol := &s.routers[r][il.boundPort].out[il.boundLane]
	if len(ol.buf) >= s.Cfg.BufDepth {
		return
	}
	var moved wormhole.Flit
	moved, il.buf = popFront(il.buf)
	moved.MovedAt = cycle
	ol.buf = append(ol.buf, moved)
	if moved.Kind.IsTail() {
		il.boundPort, il.boundLane = -1, -1
		ol.boundPort, ol.boundLane = -1, -1
	}
	// Ack to the upstream side: a buffer slot was released in this input
	// lane.
	tp := s.Top.RouterPorts(r)[p]
	switch tp.Kind {
	case topology.PortRouter:
		s.pendingCredits = append(s.pendingCredits, laneAddr{router: tp.Peer, port: tp.PeerPort, lane: l})
	case topology.PortNode:
		s.pendingNIC = append(s.pendingNIC, nicAddr{node: tp.Peer, lane: l})
	}
}

// routingStage routes at most one header per switch per cycle: a
// round-robin arbiter picks the next input lane presenting an unrouted
// header and asks the routing algorithm for an output lane. On success
// the lanes are bound; on failure the cycle is spent and the arbiter
// moves on. Every router is visited in index order each cycle.
func (s *Sim) routingStage(cycle int64) {
	if s.Cfg.RouteEvery > 1 && cycle%int64(s.Cfg.RouteEvery) != 0 {
		return
	}
	for r := range s.routers {
		s.routeRouter(r, cycle)
	}
}

// routeRouter gives router r its one routing decision for the cycle,
// scanning the router's input lanes in (port, lane) order from the
// round-robin pointer.
func (s *Sim) routeRouter(r int, cycle int64) {
	if s.flt != nil && s.flt.routerDown[r] > 0 {
		return // dead router: headers stay presented until revival
	}
	// The scan order is rebuilt from scratch every call; the fabric's
	// contiguous input-lane range enumerates the same (port, lane) pairs.
	var order [][2]int
	for p := range s.routers[r] {
		for l := range s.routers[r][p].in {
			order = append(order, [2]int{p, l})
		}
	}
	n := len(order)
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		idx := (s.routeRR[r] + i) % n
		p, l := order[idx][0], order[idx][1]
		il := &s.routers[r][p].in[l]
		if len(il.buf) == 0 || il.boundPort >= 0 {
			continue
		}
		fl := &il.buf[0]
		if fl.MovedAt >= cycle {
			continue
		}
		if !fl.Kind.IsHead() {
			panic(fmt.Sprintf("oracle: unbound non-header flit at router %d port %d lane %d", r, p, l))
		}
		if s.Cfg.StoreAndForward && !il.holdsWholePacket(&s.packets[fl.Packet]) {
			continue
		}
		s.routeRR[r] = (idx + 1) % n
		op, olIdx, ok := s.Alg.Route(s, r, p, l, fl.Packet)
		if ok {
			out := &s.routers[r][op].out[olIdx]
			if !out.free(s.Cfg.BufDepth) {
				panic(fmt.Sprintf("oracle: algorithm %s allocated non-free lane (%d,%d) at router %d", s.Alg.Name(), op, olIdx, r))
			}
			il.boundPort, il.boundLane = op, olIdx
			out.boundPort, out.boundLane = p, l
			fl.MovedAt = cycle // routing itself takes T_routing = 1 cycle
			s.packets[fl.Packet].Hops++
		}
		break // one routing decision per switch per cycle
	}
}

// holdsWholePacket reports whether the lane buffers every flit of the
// packet whose header sits at the front — the store-and-forward gate.
func (il *inLane) holdsWholePacket(pk *wormhole.PacketInfo) bool {
	if len(il.buf) < int(pk.Flits) {
		return false
	}
	tail := il.buf[pk.Flits-1]
	return tail.Kind.IsTail() && tail.Packet == il.buf[0].Packet
}

// injectionStage advances the NIC injection streams: each stream pushes
// the next flit of its current packet into the router's injection lane
// when a credit is available, and picks up the next queued packet after
// the tail leaves. Every NIC is visited in index order each cycle.
func (s *Sim) injectionStage(cycle int64) {
	for n := range s.nics {
		s.injectNIC(n, cycle)
	}
}

// injectNIC advances every injection stream of one NIC for the cycle.
func (s *Sim) injectNIC(n int, cycle int64) {
	nc := &s.nics[n]
	at := s.Top.NodeAttach(n)
	if s.flt != nil && s.flt.routerDown[at.Router] > 0 {
		return // attach router dead: the NIC freezes with it
	}
	for l := range nc.lanes {
		st := &nc.lanes[l]
		if st.cur == wormhole.NoPacket {
			if len(nc.queue) == 0 {
				continue
			}
			var id wormhole.PacketID
			id, nc.queue = nc.queue[0], append([]wormhole.PacketID(nil), nc.queue[1:]...)
			st.cur = id
			st.nextSeq = 0
		}
		if st.credit == 0 {
			continue
		}
		pk := &s.packets[st.cur]
		var kind wormhole.FlitKind
		if st.nextSeq == 0 {
			kind |= wormhole.FlitHead
		}
		if st.nextSeq == pk.Flits-1 {
			kind |= wormhole.FlitTail
		}
		s.pushIn(at.Router, at.Port, l, wormhole.Flit{
			Packet: st.cur, Seq: st.nextSeq, MovedAt: cycle, Kind: kind,
		})
		st.credit--
		s.counters.FlitsInjected++
		s.inFlight++
		if st.nextSeq == 0 {
			pk.InjectedAt = cycle
			s.counters.PacketsInjected++
		}
		st.nextSeq++
		if kind.IsTail() {
			st.cur = wormhole.NoPacket
			s.queued--
		}
	}
}

// creditStage commits the cycle's deferred credit returns (the ack lines
// take one cycle).
func (s *Sim) creditStage(cycle int64) {
	for _, c := range s.pendingCredits {
		ol := &s.routers[c.router][c.port].out[c.lane]
		ol.credits++
		if ol.credits > s.Cfg.BufDepth {
			panic("oracle: credit overflow")
		}
	}
	s.pendingCredits = s.pendingCredits[:0]
	for _, c := range s.pendingNIC {
		st := &s.nics[c.node].lanes[c.lane]
		st.credit++
		if st.credit > s.Cfg.BufDepth {
			panic("oracle: NIC credit overflow")
		}
	}
	s.pendingNIC = s.pendingNIC[:0]
}

// Observe computes the oracle's canonical end-of-cycle observation using
// the shared Digest encoders, in the same (router, port, lane) order as
// the fabric's Observe.
func (s *Sim) Observe() wormhole.CycleObs {
	obs := wormhole.CycleObs{
		Cycle:    s.cycle,
		Counters: s.counters,
		InFlight: s.inFlight,
		Queued:   s.queued,
	}
	d := wormhole.NewDigest()
	for r := range s.routers {
		for p := range s.routers[r] {
			pt := &s.routers[r][p]
			for l := range pt.in {
				il := &pt.in[l]
				bp, bl := il.boundPort, il.boundLane
				buf := il.buf
				d.InLane(len(buf), bp, bl, func(i int) wormhole.Flit { return buf[i] })
				if len(buf) > 0 {
					obs.OccupiedLanes++
					obs.BufferedFlits += len(buf)
				}
			}
			for l := range pt.out {
				ol := &pt.out[l]
				bp, bl := ol.boundPort, ol.boundLane
				buf := ol.buf
				d.OutLane(len(buf), ol.credits, bp, bl, func(i int) wormhole.Flit { return buf[i] })
				if len(buf) > 0 {
					obs.OccupiedLanes++
					obs.BufferedFlits += len(buf)
				}
			}
		}
	}
	for _, rr := range s.routeRR {
		d.Int(int64(rr))
	}
	for r := range s.linkRR {
		for _, rr := range s.linkRR[r] {
			d.Int(int64(rr))
		}
	}
	for n := range s.nics {
		nc := &s.nics[n]
		d.Int(int64(len(nc.queue)))
		for _, id := range nc.queue {
			d.Int(int64(id))
		}
		for l := range nc.lanes {
			st := &nc.lanes[l]
			d.NICLane(st.cur, st.nextSeq, st.credit)
		}
	}
	if s.wires != nil {
		for r := range s.wires {
			for p := range s.wires[r] {
				w := s.wires[r][p]
				d.Int(int64(len(w)))
				for _, fl := range w {
					d.Flight(fl.fl, fl.lane, fl.at)
				}
			}
		}
	}
	obs.StateHash = d.Sum()
	return obs
}
