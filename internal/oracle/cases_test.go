package oracle

import (
	"testing"

	"smart/internal/routing"
	"smart/internal/traffic"
	"smart/internal/wormhole"
)

// TestDifferentialOverSharedCases runs the differential harness over the
// routing package's canonical topology x algorithm table: the same cases
// the stress and mesh suites iterate. A routing discipline added to
// routing.Cases is thereby automatically checked against the reference
// simulator, cycle for cycle, without touching this package.
func TestDifferentialOverSharedCases(t *testing.T) {
	for _, tc := range routing.Cases() {
		t.Run(tc.Name, func(t *testing.T) {
			// Each side builds its own algorithm instance: the disciplines
			// carry per-fabric arbitration state.
			topA, algA, err := tc.Build()
			if err != nil {
				t.Fatal(err)
			}
			topB, algB, err := tc.Build()
			if err != nil {
				t.Fatal(err)
			}
			cfg := wormhole.Config{VCs: algA.VCs(), BufDepth: 4, PacketFlits: 4, InjLanes: 1}
			fab, err := wormhole.NewFabric(topA, cfg, algA)
			if err != nil {
				t.Fatal(err)
			}
			ora, err := New(topB, cfg, algB)
			if err != nil {
				t.Fatal(err)
			}
			pattern, err := traffic.NewUniform(topA.Nodes())
			if err != nil {
				t.Fatal(err)
			}
			pair, err := NewPair(fab, ora, pattern, 0.08, 404)
			if err != nil {
				t.Fatal(err)
			}
			if err := pair.Step(400); err != nil {
				t.Fatal(err)
			}
			if err := pair.Drain(20000); err != nil {
				t.Fatal(err)
			}
			if err := pair.ComparePackets(); err != nil {
				t.Fatal(err)
			}
			if fab.Counters().PacketsDelivered == 0 {
				t.Fatal("differential run delivered nothing; the comparison is vacuous")
			}
		})
	}
}
