package oracle

import (
	"errors"
	"testing"

	"smart/internal/routing"
	"smart/internal/sim"
	"smart/internal/topology"
	"smart/internal/traffic"
	"smart/internal/wormhole"
)

// newEngineFor assembles an engine with the canonical stage order:
// traffic first, then the network's pipeline.
func newEngineFor(inj *traffic.Injector, net Network) *sim.Engine {
	e := sim.NewEngine()
	inj.Register(e)
	net.Register(e)
	return e
}

// diffSpec is one differential configuration: a topology, an algorithm,
// a fabric config, a workload and a cycle budget.
type diffSpec struct {
	name    string
	family  string // "tree" or "cube"
	k, n    int
	alg     string // "adaptive" (trees), "dor" or "duato" (cubes)
	vcs     int    // tree adaptive only
	buf     int
	flits   int
	inj     int
	saf     bool
	every   int
	wire    int
	pattern string
	rate    float64
	seed    uint64
	cycles  int64
}

// buildTopAlg constructs the topology and one fresh algorithm instance.
// Each side of a pair needs its own instance: the adaptive algorithms
// carry mutable tie-break state that must evolve independently.
func (sp diffSpec) buildTopAlg(t *testing.T) (topology.Topology, wormhole.RoutingAlgorithm) {
	t.Helper()
	switch sp.family {
	case "tree":
		tr, err := topology.NewTree(sp.k, sp.n)
		if err != nil {
			t.Fatalf("NewTree(%d, %d): %v", sp.k, sp.n, err)
		}
		alg, err := routing.NewTreeAdaptive(tr, sp.vcs)
		if err != nil {
			t.Fatalf("NewTreeAdaptive: %v", err)
		}
		return tr, alg
	case "cube":
		cu, err := topology.NewCube(sp.k, sp.n)
		if err != nil {
			t.Fatalf("NewCube(%d, %d): %v", sp.k, sp.n, err)
		}
		switch sp.alg {
		case "dor":
			return cu, routing.NewDOR(cu)
		case "duato":
			return cu, routing.NewDuato(cu)
		}
		t.Fatalf("unknown cube algorithm %q", sp.alg)
	}
	t.Fatalf("unknown family %q", sp.family)
	return nil, nil
}

func (sp diffSpec) config(vcs int) wormhole.Config {
	return wormhole.Config{
		VCs:             vcs,
		BufDepth:        sp.buf,
		PacketFlits:     sp.flits,
		InjLanes:        sp.inj,
		StoreAndForward: sp.saf,
		RouteEvery:      sp.every,
		LinkCycles:      sp.wire,
	}
}

func buildTestPattern(t *testing.T, name string, nodes int) traffic.Pattern {
	t.Helper()
	var (
		pat traffic.Pattern
		err error
	)
	switch name {
	case "uniform":
		pat, err = traffic.NewUniform(nodes)
	case "complement":
		pat, err = traffic.NewComplement(nodes)
	case "transpose":
		pat, err = traffic.NewTranspose(nodes)
	case "bitrev":
		pat, err = traffic.NewBitReversal(nodes)
	default:
		t.Fatalf("unknown pattern %q", name)
	}
	if err != nil {
		t.Fatalf("pattern %s over %d nodes: %v", name, nodes, err)
	}
	return pat
}

// buildPair assembles fabric-vs-oracle over one spec.
func buildPair(t *testing.T, sp diffSpec) *Pair {
	t.Helper()
	top, algF := sp.buildTopAlg(t)
	_, algO := sp.buildTopAlg(t)
	cfg := sp.config(algF.VCs())
	fab, err := wormhole.NewFabric(top, cfg, algF)
	if err != nil {
		t.Fatalf("NewFabric: %v", err)
	}
	ora, err := New(top, cfg, algO)
	if err != nil {
		t.Fatalf("oracle.New: %v", err)
	}
	pat := buildTestPattern(t, sp.pattern, top.Nodes())
	pair, err := NewPair(fab, ora, pat, sp.rate, sp.seed)
	if err != nil {
		t.Fatalf("NewPair: %v", err)
	}
	return pair
}

// diffSpecs is the small-topology differential matrix: both families,
// all three algorithms, the k=2 edge cases, and every fabric pipeline
// variant (store-and-forward, stretched routing, pipelined wires,
// multiple injection lanes, single-flit packets).
var diffSpecs = []diffSpec{
	{name: "tree-4ary2-1vc-uniform", family: "tree", k: 4, n: 2, alg: "adaptive", vcs: 1,
		buf: 4, flits: 4, inj: 1, pattern: "uniform", rate: 0.05, seed: 1, cycles: 400},
	{name: "tree-4ary2-2vc-uniform", family: "tree", k: 4, n: 2, alg: "adaptive", vcs: 2,
		buf: 4, flits: 4, inj: 1, pattern: "uniform", rate: 0.15, seed: 2, cycles: 400},
	{name: "tree-4ary2-4vc-complement", family: "tree", k: 4, n: 2, alg: "adaptive", vcs: 4,
		buf: 4, flits: 8, inj: 1, pattern: "complement", rate: 0.10, seed: 3, cycles: 400},
	{name: "tree-2ary2-2vc-uniform", family: "tree", k: 2, n: 2, alg: "adaptive", vcs: 2,
		buf: 2, flits: 4, inj: 1, pattern: "uniform", rate: 0.20, seed: 4, cycles: 400},
	{name: "tree-2ary3-4vc-bitrev", family: "tree", k: 2, n: 3, alg: "adaptive", vcs: 4,
		buf: 4, flits: 4, inj: 1, pattern: "bitrev", rate: 0.25, seed: 5, cycles: 400},
	{name: "tree-4ary2-2vc-saf", family: "tree", k: 4, n: 2, alg: "adaptive", vcs: 2,
		buf: 4, flits: 4, inj: 1, saf: true, pattern: "uniform", rate: 0.10, seed: 6, cycles: 400},
	{name: "tree-4ary2-2vc-routeevery2", family: "tree", k: 4, n: 2, alg: "adaptive", vcs: 2,
		buf: 4, flits: 4, inj: 1, every: 2, pattern: "uniform", rate: 0.08, seed: 7, cycles: 400},
	{name: "tree-4ary2-2vc-injlanes2", family: "tree", k: 4, n: 2, alg: "adaptive", vcs: 2,
		buf: 4, flits: 4, inj: 2, pattern: "uniform", rate: 0.15, seed: 8, cycles: 400},
	{name: "cube-4ary2-dor-uniform", family: "cube", k: 4, n: 2, alg: "dor",
		buf: 4, flits: 4, inj: 1, pattern: "uniform", rate: 0.08, seed: 9, cycles: 400},
	{name: "cube-4ary2-duato-uniform", family: "cube", k: 4, n: 2, alg: "duato",
		buf: 4, flits: 4, inj: 1, pattern: "uniform", rate: 0.20, seed: 10, cycles: 400},
	{name: "cube-4ary2-dor-transpose", family: "cube", k: 4, n: 2, alg: "dor",
		buf: 4, flits: 4, inj: 1, pattern: "transpose", rate: 0.12, seed: 11, cycles: 400},
	{name: "cube-2ary3-duato-complement", family: "cube", k: 2, n: 3, alg: "duato",
		buf: 2, flits: 4, inj: 1, pattern: "complement", rate: 0.15, seed: 12, cycles: 400},
	{name: "cube-2ary2-dor-uniform", family: "cube", k: 2, n: 2, alg: "dor",
		buf: 4, flits: 2, inj: 1, pattern: "uniform", rate: 0.30, seed: 13, cycles: 400},
	{name: "cube-3ary2-duato-singleflit", family: "cube", k: 3, n: 2, alg: "duato",
		buf: 4, flits: 1, inj: 1, pattern: "uniform", rate: 0.25, seed: 14, cycles: 400},
	{name: "cube-4ary2-dor-wires3", family: "cube", k: 4, n: 2, alg: "dor",
		buf: 4, flits: 4, inj: 1, wire: 3, pattern: "uniform", rate: 0.08, seed: 15, cycles: 400},
}

// TestFabricMatchesOracle runs the full differential matrix: both sides
// step in lockstep with the observation compared every cycle, then drain
// and compare per-packet timing.
func TestFabricMatchesOracle(t *testing.T) {
	for _, sp := range diffSpecs {
		t.Run(sp.name, func(t *testing.T) {
			pair := buildPair(t, sp)
			if err := pair.Step(sp.cycles); err != nil {
				t.Fatal(err)
			}
			if err := pair.Drain(20000); err != nil {
				t.Fatal(err)
			}
			if err := pair.ComparePackets(); err != nil {
				t.Fatal(err)
			}
			obs := pair.B.Observe()
			if obs.OccupiedLanes != 0 || obs.BufferedFlits != 0 {
				t.Fatalf("drained oracle still holds %d flits in %d lanes", obs.BufferedFlits, obs.OccupiedLanes)
			}
			if obs.Counters.PacketsCreated == 0 {
				t.Fatal("run generated no traffic; the comparison is vacuous")
			}
		})
	}
}

// TestFabricInvariantsDuringDiff interleaves the fabric's structural
// invariant checker with the lockstep comparison, so a divergence can be
// cross-examined against credit conservation and work-list consistency.
func TestFabricInvariantsDuringDiff(t *testing.T) {
	sp := diffSpecs[1]
	pair := buildPair(t, sp)
	fab := pair.A.(*wormhole.Fabric)
	for c := int64(0); c < sp.cycles; c += 25 {
		if err := pair.Step(25); err != nil {
			t.Fatal(err)
		}
		if err := fab.CheckInvariants(); err != nil {
			t.Fatalf("after %d cycles: %v", c+25, err)
		}
	}
}

// TestDivergenceDetected proves the harness is sensitive: two fabrics
// configured with different ascent policies must diverge, and the error
// must localize the first divergent cycle.
func TestDivergenceDetected(t *testing.T) {
	tr, err := topology.NewTree(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	algA, err := routing.NewTreeAdaptivePolicy(tr, 2, routing.LeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	algB, err := routing.NewTreeAdaptivePolicy(tr, 2, routing.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	cfg := wormhole.Config{VCs: 2, BufDepth: 4, PacketFlits: 4, InjLanes: 1}
	fabA, err := wormhole.NewFabric(tr, cfg, algA)
	if err != nil {
		t.Fatal(err)
	}
	fabB, err := wormhole.NewFabric(tr, cfg, algB)
	if err != nil {
		t.Fatal(err)
	}
	pat := buildTestPattern(t, "uniform", tr.Nodes())
	pair, err := NewPair(fabA, fabB, pat, 0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	stepErr := pair.Step(2000)
	if stepErr == nil {
		t.Fatal("two different routing policies never diverged; the harness is blind")
	}
	var div *DivergenceError
	if !errors.As(stepErr, &div) {
		t.Fatalf("expected a DivergenceError, got %T: %v", stepErr, stepErr)
	}
	if div.A.StateHash == div.B.StateHash {
		t.Fatalf("divergence reported but state hashes agree: %v", div)
	}
}

// TestOracleStandalone exercises the oracle on its own: conservation of
// flits across a full inject-and-drain run and per-packet timing sanity.
func TestOracleStandalone(t *testing.T) {
	sp := diffSpec{family: "cube", k: 4, n: 2, alg: "duato",
		buf: 4, flits: 4, inj: 1, pattern: "uniform", rate: 0.2, seed: 99, cycles: 300}
	top, alg := sp.buildTopAlg(t)
	ora, err := New(top, sp.config(alg.VCs()), alg)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := traffic.NewInjector(ora, buildTestPattern(t, sp.pattern, top.Nodes()), sp.rate, sp.seed)
	if err != nil {
		t.Fatal(err)
	}
	eng := newEngineFor(inj, ora)
	eng.Run(sp.cycles)
	inj.Stop()
	for i := 0; i < 20000 && !ora.Drained(); i++ {
		eng.Step()
	}
	if !ora.Drained() {
		t.Fatal("oracle did not drain")
	}
	c := ora.Counters()
	if c.PacketsCreated == 0 {
		t.Fatal("no packets generated")
	}
	if c.PacketsCreated != c.PacketsDelivered {
		t.Fatalf("created %d packets but delivered %d", c.PacketsCreated, c.PacketsDelivered)
	}
	if c.FlitsInjected != c.FlitsDelivered {
		t.Fatalf("injected %d flits but delivered %d", c.FlitsInjected, c.FlitsDelivered)
	}
	if ora.InFlight() != 0 || ora.QueuedPackets() != 0 {
		t.Fatalf("drained oracle reports %d in flight, %d queued", ora.InFlight(), ora.QueuedPackets())
	}
	for id, pk := range ora.PacketRecords() {
		if !pk.Delivered() {
			t.Fatalf("packet %d not delivered after drain: %+v", id, pk)
		}
		if pk.InjectedAt < pk.CreatedAt || pk.HeadAt < pk.InjectedAt || pk.TailAt < pk.HeadAt {
			t.Fatalf("packet %d has non-monotonic timeline: %+v", id, pk)
		}
		if pk.Hops < int32(top.Distance(int(pk.Src), int(pk.Dst)))-1 {
			t.Fatalf("packet %d took %d hops, below the %d-link minimal path", id, pk.Hops, top.Distance(int(pk.Src), int(pk.Dst)))
		}
	}
}
