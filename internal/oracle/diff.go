package oracle

import (
	"fmt"

	"smart/internal/sim"
	"smart/internal/traffic"
	"smart/internal/wormhole"
)

// Network is one side of a differential run: the surface shared by the
// optimized *wormhole.Fabric and the reference *Sim — observation for the
// comparison, packet intake for the traffic process, and stage
// registration for the engine.
type Network interface {
	wormhole.Observable
	Nodes() int
	EnqueuePacket(src, dst int, cycle int64) wormhole.PacketID
	Register(e *sim.Engine)
}

// Pair drives two implementations of the same configuration in lockstep.
// Both sides get their own engine and their own traffic process seeded
// identically, so every Bernoulli draw, destination draw and packet id
// matches; any state difference is then a semantic divergence, caught at
// the first cycle it appears.
type Pair struct {
	A, B Network
	// EngA and EngB are the two engines; exposed so harnesses can attach
	// stops or step the sides manually between comparisons.
	EngA, EngB *sim.Engine
	// InjA and InjB are the two traffic processes.
	InjA, InjB *traffic.Injector
}

// NewPair assembles a differential run over two already-built networks.
// The pattern must be stateless across Dest calls (every pattern in
// internal/traffic is); each side draws from its own identically-seeded
// RNG streams, so the generated workloads are identical.
func NewPair(a, b Network, pattern traffic.Pattern, packetRate float64, seed uint64) (*Pair, error) {
	p := &Pair{A: a, B: b}
	var err error
	if p.InjA, err = traffic.NewInjector(a, pattern, packetRate, seed); err != nil {
		return nil, err
	}
	if p.InjB, err = traffic.NewInjector(b, pattern, packetRate, seed); err != nil {
		return nil, err
	}
	p.EngA = sim.NewEngine()
	p.InjA.Register(p.EngA)
	a.Register(p.EngA)
	p.EngB = sim.NewEngine()
	p.InjB.Register(p.EngB)
	b.Register(p.EngB)
	return p, nil
}

// Step advances both sides n cycles in lockstep, comparing the canonical
// observation after every cycle. It returns a DivergenceError describing
// the first cycle at which the two disagree.
func (p *Pair) Step(n int64) error {
	for i := int64(0); i < n; i++ {
		cycle := p.EngA.Cycle()
		p.EngA.Step()
		p.EngB.Step()
		oa, ob := p.A.Observe(), p.B.Observe()
		if oa != ob {
			return &DivergenceError{Cycle: cycle, A: oa, B: ob}
		}
	}
	return nil
}

// StopTraffic shuts off both traffic processes; subsequent Steps drain.
func (p *Pair) StopTraffic() {
	p.InjA.Stop()
	p.InjB.Stop()
}

// Drain stops traffic and steps both sides until side A reports drained
// or maxExtra cycles elapse, comparing every cycle. A non-nil error is
// either a divergence or a failure to drain.
func (p *Pair) Drain(maxExtra int64) error {
	p.StopTraffic()
	for i := int64(0); i < maxExtra; i++ {
		if p.A.Drained() && p.B.Drained() {
			return nil
		}
		if err := p.Step(1); err != nil {
			return err
		}
	}
	if !p.A.Drained() || !p.B.Drained() {
		return fmt.Errorf("oracle: networks did not drain within %d extra cycles (A drained %v, B drained %v)",
			maxExtra, p.A.Drained(), p.B.Drained())
	}
	return nil
}

// ComparePackets checks the two packet tables field by field: creation,
// injection and delivery timestamps, hop counts and routing state must
// match per packet id. (The tables cannot be compared with == because the
// fabric's records carry private delivery-assertion state.)
func (p *Pair) ComparePackets() error {
	pa, pb := p.A.PacketRecords(), p.B.PacketRecords()
	if len(pa) != len(pb) {
		return fmt.Errorf("oracle: packet table lengths differ: %d vs %d", len(pa), len(pb))
	}
	for id := range pa {
		a, b := &pa[id], &pb[id]
		if a.Src != b.Src || a.Dst != b.Dst || a.Flits != b.Flits ||
			a.RouteBits != b.RouteBits || a.Hops != b.Hops ||
			a.CreatedAt != b.CreatedAt || a.InjectedAt != b.InjectedAt ||
			a.HeadAt != b.HeadAt || a.TailAt != b.TailAt {
			return fmt.Errorf("oracle: packet %d diverged: A %+v vs B %+v", id, *a, *b)
		}
	}
	return nil
}

// DivergenceError reports the first cycle at which the two sides of a
// differential run disagreed, with both observations.
type DivergenceError struct {
	Cycle int64
	A, B  wormhole.CycleObs
}

// Error summarizes the divergence, naming the fields that differ.
func (e *DivergenceError) Error() string {
	msg := fmt.Sprintf("oracle: divergence at cycle %d:", e.Cycle)
	if e.A.Counters != e.B.Counters {
		msg += fmt.Sprintf(" counters A %+v B %+v;", e.A.Counters, e.B.Counters)
	}
	if e.A.InFlight != e.B.InFlight || e.A.Queued != e.B.Queued {
		msg += fmt.Sprintf(" in-flight A %d/%d B %d/%d;", e.A.InFlight, e.A.Queued, e.B.InFlight, e.B.Queued)
	}
	if e.A.OccupiedLanes != e.B.OccupiedLanes || e.A.BufferedFlits != e.B.BufferedFlits {
		msg += fmt.Sprintf(" occupancy A %d lanes/%d flits B %d lanes/%d flits;",
			e.A.OccupiedLanes, e.A.BufferedFlits, e.B.OccupiedLanes, e.B.BufferedFlits)
	}
	if e.A.StateHash != e.B.StateHash {
		msg += fmt.Sprintf(" state hash A %#x B %#x;", e.A.StateHash, e.B.StateHash)
	}
	return msg
}
