package oracle

import (
	"testing"

	"smart/internal/traffic"
	"smart/internal/wormhole"
)

// fuzzByte reads byte i of the packed configuration, defaulting to zero
// past the end so short inputs decode to the smallest configuration.
func fuzzByte(data []byte, i int) int {
	if i < len(data) {
		return int(data[i])
	}
	return 0
}

// decodeFuzzSpec maps arbitrary bytes onto a valid small differential
// configuration. Every field is clamped into the supported range rather
// than rejected, so nearly every input exercises a full run and the
// fuzzer spends its budget on semantics, not on validation errors. The
// topologies stay at or below 16 nodes and a few hundred cycles to keep
// single executions cheap.
func decodeFuzzSpec(data []byte) (sp diffSpec, pattern string, rate float64, seed uint64) {
	if fuzzByte(data, 0)&1 == 0 {
		sp.family = "tree"
		sp.alg = "adaptive"
		sp.vcs = 1 + fuzzByte(data, 3)%4
	} else {
		sp.family = "cube"
		if fuzzByte(data, 4)&1 == 0 {
			sp.alg = "dor"
		} else {
			sp.alg = "duato"
		}
	}
	sp.k = 2 + fuzzByte(data, 1)%3
	sp.n = 1 + fuzzByte(data, 2)%2
	sp.buf = 1 + fuzzByte(data, 5)%4
	sp.flits = 1 + fuzzByte(data, 6)%6
	sp.inj = 1 + fuzzByte(data, 7)%2
	sp.saf = fuzzByte(data, 8)&3 == 3
	if sp.saf && sp.buf < sp.flits {
		// Store-and-forward needs whole-packet buffers.
		sp.buf = sp.flits
	}
	sp.every = 1 + fuzzByte(data, 9)%3
	sp.wire = 1 + fuzzByte(data, 10)%3
	pattern = []string{"uniform", "complement", "transpose", "bitrev"}[fuzzByte(data, 11)%4]
	rate = 0.02 + 0.32*float64(fuzzByte(data, 12))/255
	seed = uint64(fuzzByte(data, 13)) + 1
	sp.cycles = int64(48 + fuzzByte(data, 14))
	return sp, pattern, rate, seed
}

// fuzzPattern builds the named pattern, falling back to uniform where the
// node count does not admit it (bit patterns need powers of two, the
// transpose an even bit count).
func fuzzPattern(name string, nodes int) traffic.Pattern {
	var (
		pat traffic.Pattern
		err error
	)
	switch name {
	case "complement":
		pat, err = traffic.NewComplement(nodes)
	case "transpose":
		pat, err = traffic.NewTranspose(nodes)
	case "bitrev":
		pat, err = traffic.NewBitReversal(nodes)
	default:
		pat, err = traffic.NewUniform(nodes)
	}
	if err != nil {
		pat, err = traffic.NewUniform(nodes)
	}
	if err != nil {
		panic(err)
	}
	return pat
}

// FuzzFabricVsOracle decodes packed configuration bytes into a small
// seeded run and drives the optimized fabric against the reference
// simulator in lockstep: any per-cycle state divergence, per-packet
// timing difference or failure to drain fails the input. This is the
// differential harness under fuzzed configuration coverage — every
// pipeline variant (store-and-forward, stretched routing, pipelined
// wires, injection lanes, packet sizes) in combination.
func FuzzFabricVsOracle(f *testing.F) {
	f.Add([]byte{0, 2, 1, 1, 0, 3, 3, 0, 0, 0, 0, 0, 80, 7, 100})  // 4-ary 2-tree, 2 VCs, uniform
	f.Add([]byte{1, 2, 1, 0, 0, 3, 3, 0, 0, 0, 0, 0, 60, 9, 100})  // 4-ary 2-cube, dor, uniform
	f.Add([]byte{1, 2, 1, 0, 1, 3, 3, 0, 0, 0, 0, 1, 90, 10, 120}) // 4-ary 2-cube, duato, complement
	f.Add([]byte{0, 0, 1, 3, 0, 3, 3, 1, 3, 0, 0, 3, 70, 5, 90})   // 2-ary 2-tree, 4 VCs, SAF, bitrev
	f.Add([]byte{0, 2, 1, 1, 0, 3, 3, 0, 0, 1, 2, 0, 50, 7, 80})   // tree with stretched routing + wires
	f.Add([]byte{1, 1, 1, 0, 1, 0, 0, 0, 0, 0, 0, 2, 120, 3, 64})  // 3-ary 2-cube, duato, single-flit
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, pattern, rate, seed := decodeFuzzSpec(data)
		top, algF := sp.buildTopAlg(t)
		_, algO := sp.buildTopAlg(t)
		cfg := sp.config(algF.VCs())
		fab, err := wormhole.NewFabric(top, cfg, algF)
		if err != nil {
			t.Skip()
		}
		ora, err := New(top, cfg, algO)
		if err != nil {
			t.Fatalf("fabric accepted the config but the oracle rejected it: %v", err)
		}
		pair, err := NewPair(fab, ora, fuzzPattern(pattern, top.Nodes()), rate, seed)
		if err != nil {
			t.Skip()
		}
		if err := pair.Step(sp.cycles); err != nil {
			t.Fatal(err)
		}
		if err := pair.Drain(20000); err != nil {
			t.Fatal(err)
		}
		if err := pair.ComparePackets(); err != nil {
			t.Fatal(err)
		}
	})
}
