package oracle

import (
	"fmt"

	"smart/internal/topology"
)

// Fault masking, transcribed from the same prose as the fabric's
// (DESIGN.md §14): a downed link transfers nothing, a downed router
// additionally freezes its crossbar, routing decision and attached NIC.
// Masks gate the stages and destroy no buffered state. The oracle keeps
// the masks jagged per router, like everything else here.
type faultState struct {
	// linkDown[r][p] is the mask refcount of the direction leaving
	// router r's port p; both directions of a link move together, and a
	// dead router adds one count to every incident direction.
	linkDown [][]int16
	// routerDown[r] is the per-router mask refcount.
	routerDown  []int16
	downLinks   int
	downRouters int
}

// ensureFaults lazily allocates the mask arrays.
func (s *Sim) ensureFaults() {
	if s.flt != nil {
		return
	}
	flt := &faultState{
		linkDown:   make([][]int16, s.Top.Routers()),
		routerDown: make([]int16, s.Top.Routers()),
	}
	for r := range flt.linkDown {
		flt.linkDown[r] = make([]int16, s.Top.Degree())
	}
	s.flt = flt
}

// HasFaults reports whether any fault has ever been injected.
func (s *Sim) HasFaults() bool { return s.flt != nil }

// blocked reports whether the direction leaving (r, p) may transfer.
func (flt *faultState) blocked(r, p int) bool {
	return flt.linkDown[r][p] > 0 || flt.routerDown[r] > 0
}

// setLinkMask adjusts both directions of the link at (r, p) and the
// down-link gauge, counted on the canonical (smaller (router, port))
// direction.
func (s *Sim) setLinkMask(r, p int, down bool) {
	flt := s.flt
	tp := s.Top.RouterPorts(r)[p]
	cr, cp := r, p
	if tp.Peer < cr || (tp.Peer == cr && tp.PeerPort < cp) {
		cr, cp = tp.Peer, tp.PeerPort
	}
	var d int16 = 1
	if !down {
		d = -1
	}
	was := flt.linkDown[cr][cp] > 0
	flt.linkDown[r][p] += d
	if tp.Peer != r || tp.PeerPort != p {
		flt.linkDown[tp.Peer][tp.PeerPort] += d
	}
	if flt.linkDown[cr][cp] < 0 {
		panic(fmt.Sprintf("oracle: unbalanced link-up at router %d port %d", r, p))
	}
	now := flt.linkDown[cr][cp] > 0
	if now && !was {
		flt.downLinks++
	}
	if was && !now {
		flt.downLinks--
	}
}

// SetLinkDown masks (or unmasks) the bidirectional link at router r's
// port p.
func (s *Sim) SetLinkDown(r, p int, down bool) {
	s.ensureFaults()
	if s.Top.RouterPorts(r)[p].Kind != topology.PortRouter {
		panic(fmt.Sprintf("oracle: SetLinkDown(%d, %d) is not a router-router link", r, p))
	}
	s.setLinkMask(r, p, down)
}

// SetRouterDown masks (or unmasks) router r, masking all incident
// router-router links alongside on the 0↔1 transition.
func (s *Sim) SetRouterDown(r int, down bool) {
	s.ensureFaults()
	flt := s.flt
	var d int16 = 1
	if !down {
		d = -1
	}
	was := flt.routerDown[r] > 0
	flt.routerDown[r] += d
	if flt.routerDown[r] < 0 {
		panic(fmt.Sprintf("oracle: unbalanced router-up for router %d", r))
	}
	now := flt.routerDown[r] > 0
	if was == now {
		return
	}
	if now {
		flt.downRouters++
	} else {
		flt.downRouters--
	}
	for p, tp := range s.Top.RouterPorts(r) {
		if tp.Kind != topology.PortRouter {
			continue
		}
		s.setLinkMask(r, p, now)
	}
}

// LinkUp implements wormhole.Router.
func (s *Sim) LinkUp(r, port int) bool {
	flt := s.flt
	if flt == nil {
		return true
	}
	if flt.routerDown[r] > 0 {
		return false
	}
	switch s.Top.RouterPorts(r)[port].Kind {
	case topology.PortRouter:
		return flt.linkDown[r][port] == 0
	case topology.PortNode:
		return true
	}
	return false
}

// NodeUp reports whether node n's attach router is alive.
func (s *Sim) NodeUp(n int) bool {
	if s.flt == nil {
		return true
	}
	return s.flt.routerDown[s.Top.NodeAttach(n).Router] == 0
}

// DownLinks returns the number of physical links currently masked.
func (s *Sim) DownLinks() int {
	if s.flt == nil {
		return 0
	}
	return s.flt.downLinks
}

// DownRouters returns the number of routers currently masked.
func (s *Sim) DownRouters() int {
	if s.flt == nil {
		return 0
	}
	return s.flt.downRouters
}

// FaultStalls returns the suppressed transfer opportunities, counted
// identically to the fabric: one per occupied masked port per cycle.
func (s *Sim) FaultStalls() int64 { return s.faultStalls }
