package oracle

// Metamorphic tests: instead of comparing one implementation against
// another (the differential tier), these check relations that must hold
// between *runs* of the same implementation under a transformed input —
// node-relabeling equivariance, load monotonicity, the physical zero-load
// latency bound, and the paper's routing-dominance results. Each relation
// is exercised on the optimized fabric and, where the run is scripted, on
// the reference oracle as well, so a semantics bug has to fool two
// implementations and a symmetry argument at once to slip through.

import (
	"fmt"
	"testing"

	"smart/internal/cost"
	"smart/internal/metrics"
	"smart/internal/phys"
	"smart/internal/sim"
	"smart/internal/topology"
	"smart/internal/traffic"
	"smart/internal/wormhole"
)

// scriptEvent is one scripted packet creation: EnqueuePacket(src, dst) in
// cycle at. Scripted workloads replace the Bernoulli injector where a
// metamorphic transformation must be applied to the workload itself.
type scriptEvent struct {
	at       int64
	src, dst int
}

// runScript drives a network with a scripted workload (events sorted by
// cycle), then steps until it drains and returns the packet table.
func runScript(t *testing.T, net Network, events []scriptEvent, drainBudget int64) []wormhole.PacketInfo {
	t.Helper()
	eng := sim.NewEngine()
	net.Register(eng)
	next := 0
	for next < len(events) {
		for next < len(events) && events[next].at == eng.Cycle() {
			net.EnqueuePacket(events[next].src, events[next].dst, eng.Cycle())
			next++
		}
		eng.Step()
	}
	deadline := eng.Cycle() + drainBudget
	for !net.Drained() && eng.Cycle() < deadline {
		eng.Step()
	}
	if !net.Drained() {
		t.Fatalf("network failed to drain within %d extra cycles", drainBudget)
	}
	return net.PacketRecords()
}

// newFabricFor builds a fabric (with a fresh algorithm instance) for a
// differential spec.
func newFabricFor(t *testing.T, sp diffSpec) (*wormhole.Fabric, topology.Topology) {
	t.Helper()
	top, alg := sp.buildTopAlg(t)
	fab, err := wormhole.NewFabric(top, sp.config(alg.VCs()), alg)
	if err != nil {
		t.Fatalf("NewFabric: %v", err)
	}
	return fab, top
}

// newOracleFor builds a reference simulator for a differential spec.
func newOracleFor(t *testing.T, sp diffSpec) (*Sim, topology.Topology) {
	t.Helper()
	top, alg := sp.buildTopAlg(t)
	ora, err := New(top, sp.config(alg.VCs()), alg)
	if err != nil {
		t.Fatalf("oracle.New: %v", err)
	}
	return ora, top
}

// TestMetamorphicCubeTranslation checks torus-translation equivariance:
// adding a constant vector to every node's coordinates is an automorphism
// of the k-ary n-cube that maps router r's port p to router σ(r)'s port p
// — it preserves every index order the fabric arbitrates by (port scan
// order, lane order, round-robin pointers), so a workload and its
// translated image must produce bit-identical per-packet schedules.
//
// The one piece of state that is NOT translation-symmetric is the
// Dally-Seitz wrap-class bit (crossing a wrap-around link depends on
// absolute coordinates), so the scripted workload is confined to a
// coordinate box smaller than half the ring: every minimal path stays in
// the box, no packet crosses a wrap in either run, and the symmetry is
// exact even under heavy contention. The test asserts RouteBits == 0
// throughout to prove the premise held.
func TestMetamorphicCubeTranslation(t *testing.T) {
	const k, n, box, shift = 5, 2, 3, 2
	cube, err := topology.NewCube(k, n)
	if err != nil {
		t.Fatal(err)
	}
	translate := func(x int) int {
		for d := 0; d < n; d++ {
			x = cube.WithDigit(x, d, (cube.Digit(x, d)+shift)%k)
		}
		return x
	}
	// A bursty, hotspot-biased workload over the 3x3 box at the origin:
	// enough concurrent packets that lanes fill, adaptive choices engage
	// and arbitration actually breaks ties.
	rng := sim.NewRNG(2026)
	var events []scriptEvent
	boxNodes := make([]int, 0, box*box)
	for a := 0; a < box; a++ {
		for b := 0; b < box; b++ {
			boxNodes = append(boxNodes, a+b*k)
		}
	}
	hot := 1 + 1*k // box center (1,1)
	for cycle := int64(0); cycle < 160; cycle++ {
		for _, src := range boxNodes {
			if !rng.Bernoulli(0.12) {
				continue
			}
			dst := hot
			if rng.Bernoulli(0.5) {
				dst = boxNodes[rng.Intn(len(boxNodes))]
			}
			if dst == src {
				continue
			}
			events = append(events, scriptEvent{at: cycle, src: src, dst: dst})
		}
	}
	translated := make([]scriptEvent, len(events))
	for i, ev := range events {
		translated[i] = scriptEvent{at: ev.at, src: translate(ev.src), dst: translate(ev.dst)}
	}

	for _, alg := range []string{"dor", "duato"} {
		t.Run(alg, func(t *testing.T) {
			sp := diffSpec{family: "cube", k: k, n: n, alg: alg, buf: 4, flits: 4, inj: 1}
			for _, side := range []struct {
				name  string
				build func() Network
			}{
				{"fabric", func() Network { f, _ := newFabricFor(t, sp); return f }},
				{"oracle", func() Network { o, _ := newOracleFor(t, sp); return o }},
			} {
				base := runScript(t, side.build(), events, 20000)
				moved := runScript(t, side.build(), translated, 20000)
				if len(base) != len(moved) {
					t.Fatalf("%s: packet table lengths differ: %d vs %d", side.name, len(base), len(moved))
				}
				contended := false
				for id := range base {
					a, b := &base[id], &moved[id]
					if int(b.Src) != translate(int(a.Src)) || int(b.Dst) != translate(int(a.Dst)) {
						t.Fatalf("%s: packet %d endpoints not the translated image: base %d->%d, moved %d->%d",
							side.name, id, a.Src, a.Dst, b.Src, b.Dst)
					}
					if a.RouteBits != 0 || b.RouteBits != 0 {
						t.Fatalf("%s: packet %d crossed a wrap-around link (RouteBits %#x/%#x); the box workload must stay wrap-free",
							side.name, id, a.RouteBits, b.RouteBits)
					}
					if a.CreatedAt != b.CreatedAt || a.InjectedAt != b.InjectedAt ||
						a.HeadAt != b.HeadAt || a.TailAt != b.TailAt || a.Hops != b.Hops {
						t.Fatalf("%s: packet %d schedule not translation-invariant:\nbase  %+v\nmoved %+v",
							side.name, id, *a, *b)
					}
					dist := cube.Distance(int(a.Src), int(a.Dst))
					if a.NetworkLatency() > zeroLoadCycles(dist, sp.flits, 1) {
						contended = true
					}
				}
				if !contended {
					t.Fatalf("%s: every packet ran at zero-load latency; the workload exercised no contention", side.name)
				}
			}
		})
	}
}

// zeroLoadCycles is the exact latency of an isolated packet: the header
// pays one link, one crossbar and one routing cycle per switch traversal
// (link cycles stretch the link leg), and the body streams behind it at
// one flit per cycle.
func zeroLoadCycles(dist, flits, linkCycles int) int64 {
	if linkCycles < 1 {
		linkCycles = 1
	}
	return int64((2+linkCycles)*(dist-1) + flits - 1)
}

// TestMetamorphicZeroLoadLatency injects isolated packets between sampled
// node pairs and checks the zero-load latency on both implementations: it
// must equal the pipeline formula exactly in cycles, and — converted to
// nanoseconds with the configuration's Chien-model clock — it must
// dominate the physical lower bound of internal/cost, in which every
// switch traversal pays at least the routing, crossbar and link stage
// delays and the body pays the link serialization.
func TestMetamorphicZeroLoadLatency(t *testing.T) {
	cases := []struct {
		sp     diffSpec
		timing cost.Timing
	}{
		{diffSpec{family: "tree", k: 4, n: 2, alg: "adaptive", vcs: 2, buf: 4, flits: 4, inj: 1}, cost.TreeAdaptive(4, 2)},
		{diffSpec{family: "tree", k: 2, n: 3, alg: "adaptive", vcs: 1, buf: 4, flits: 4, inj: 1}, cost.TreeAdaptive(2, 1)},
		{diffSpec{family: "cube", k: 4, n: 2, alg: "dor", buf: 4, flits: 4, inj: 1}, cost.CubeDeterministicN(2)},
		{diffSpec{family: "cube", k: 3, n: 2, alg: "duato", buf: 4, flits: 1, inj: 1}, cost.CubeDuatoN(2)},
		{diffSpec{family: "cube", k: 4, n: 2, alg: "dor", buf: 4, flits: 4, inj: 1, wire: 3}, cost.CubeDeterministicN(2)},
	}
	for _, tc := range cases {
		sp := tc.sp
		name := fmt.Sprintf("%s%dary%d-%s", sp.family, sp.k, sp.n, sp.alg)
		if sp.wire > 1 {
			name += "-wires"
		}
		t.Run(name, func(t *testing.T) {
			fab, topF := newFabricFor(t, sp)
			ora, topO := newOracleFor(t, sp)
			for _, side := range []struct {
				name string
				net  Network
				top  topology.Topology
			}{
				{"fabric", fab, topF},
				{"oracle", ora, topO},
			} {
				eng := sim.NewEngine()
				side.net.Register(eng)
				nodes := side.top.Nodes()
				for src := 0; src < nodes; src++ {
					for _, off := range []int{1, 3, nodes / 2, nodes - 1} {
						dst := (src + off) % nodes
						if dst == src {
							continue
						}
						id := side.net.EnqueuePacket(src, dst, eng.Cycle())
						for i := 0; i < 1000 && !side.net.Drained(); i++ {
							eng.Step()
						}
						if !side.net.Drained() {
							t.Fatalf("%s: packet %d->%d never drained", side.name, src, dst)
						}
						pk := side.net.PacketRecords()[id]
						dist := side.top.Distance(src, dst)
						want := zeroLoadCycles(dist, sp.flits, sp.wire)
						if got := pk.NetworkLatency(); got != want {
							t.Fatalf("%s: isolated packet %d->%d (distance %d): latency %d cycles, want exactly %d",
								side.name, src, dst, dist, got, want)
						}
						latNS := float64(pk.NetworkLatency()) * tc.timing.Clock
						boundNS := float64(dist-1)*(tc.timing.TRouting+tc.timing.TCrossbar+tc.timing.TLink) +
							float64(sp.flits-1)*tc.timing.TLink
						if latNS < boundNS-1e-9 {
							t.Fatalf("%s: packet %d->%d: %.2fns beats the physical lower bound %.2fns",
								side.name, src, dst, latNS, boundNS)
						}
					}
				}
			}
		})
	}
}

// TestMetamorphicLoadMonotonicity checks that raising the offered load
// only adds packets: the injector draws exactly one Bernoulli variate per
// node per cycle, and a permutation pattern consumes no further
// randomness, so the set of (source, creation-cycle) events at a lower
// rate must be a strict subset of the set at any higher rate under the
// same seed.
func TestMetamorphicLoadMonotonicity(t *testing.T) {
	cases := []struct {
		name    string
		sp      diffSpec
		pattern string
	}{
		{"tree-complement", diffSpec{family: "tree", k: 2, n: 3, alg: "adaptive", vcs: 2, buf: 4, flits: 4, inj: 1}, "complement"},
		{"cube-transpose", diffSpec{family: "cube", k: 4, n: 2, alg: "dor", buf: 4, flits: 4, inj: 1}, "transpose"},
	}
	rates := []float64{0.02, 0.06, 0.15, 0.30}
	const cycles, seed = 600, 77
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			type creation struct {
				src int32
				at  int64
			}
			var prev map[creation]bool
			for _, rate := range rates {
				fab, top := newFabricFor(t, tc.sp)
				inj, err := traffic.NewInjector(fab, buildTestPattern(t, tc.pattern, top.Nodes()), rate, seed)
				if err != nil {
					t.Fatal(err)
				}
				eng := newEngineFor(inj, fab)
				eng.Run(cycles)
				created := map[creation]bool{}
				for _, pk := range fab.PacketRecords() {
					created[creation{pk.Src, pk.CreatedAt}] = true
				}
				if prev != nil {
					if len(created) <= len(prev) {
						t.Fatalf("rate %g created %d packets, not more than the %d at the lower rate", rate, len(created), len(prev))
					}
					for ev := range prev {
						if !created[ev] {
							t.Fatalf("rate %g lost creation %+v that the lower rate produced: the Bernoulli draws are not nested", rate, ev)
						}
					}
				}
				prev = created
			}
		})
	}
}

// TestMetamorphicRoutingDominance checks the paper's two ordering results
// at a fixed seed and identical open-loop workloads: more virtual
// channels never hurt the fat-tree (Figure 5: the 4-VC tree saturates at
// twice the 1-VC load), and Duato's adaptive algorithm dominates
// dimension-order routing on the cube under uniform traffic (Figure 6).
// The injection process is open-loop, so both runs of a pair see exactly
// the same created packets and the comparison isolates the routing
// discipline.
func TestMetamorphicRoutingDominance(t *testing.T) {
	measure := func(sp diffSpec, loadFrac float64, warmup, horizon int64) metrics.Sample {
		t.Helper()
		fab, top := newFabricFor(t, sp)
		capFlits, err := phys.CapacityFlits(top)
		if err != nil {
			t.Fatal(err)
		}
		rate := loadFrac * capFlits / float64(sp.flits)
		inj, err := traffic.NewInjector(fab, buildTestPattern(t, "uniform", top.Nodes()), rate, 5)
		if err != nil {
			t.Fatal(err)
		}
		eng := newEngineFor(inj, fab)
		win, err := metrics.NewWindow(fab, capFlits)
		if err != nil {
			t.Fatal(err)
		}
		eng.Run(warmup)
		win.Start(warmup)
		fab.ResetLinkStats()
		eng.Run(horizon)
		sample, err := win.Measure(horizon, loadFrac)
		if err != nil {
			t.Fatal(err)
		}
		if sample.PacketsDelivered == 0 {
			t.Fatalf("%s delivered nothing in the window; the comparison is vacuous", sp.family)
		}
		return sample
	}

	t.Run("tree-more-vcs-dominate", func(t *testing.T) {
		base := diffSpec{family: "tree", k: 4, n: 2, alg: "adaptive", buf: 4, flits: 4, inj: 1}
		one, four := base, base
		one.vcs, four.vcs = 1, 4
		s1 := measure(one, 0.70, 300, 1800)
		s4 := measure(four, 0.70, 300, 1800)
		t.Logf("accepted at 0.70 offered: 1 VC %.4f, 4 VC %.4f", s1.Accepted, s4.Accepted)
		if s4.Accepted < s1.Accepted {
			t.Fatalf("4-VC tree accepted %.4f, below the 1-VC tree's %.4f at the same offered load", s4.Accepted, s1.Accepted)
		}
	})
	t.Run("cube-duato-dominates-dor", func(t *testing.T) {
		base := diffSpec{family: "cube", k: 4, n: 2, buf: 4, flits: 4, inj: 1}
		dor, duato := base, base
		dor.alg, duato.alg = "dor", "duato"
		sd := measure(dor, 0.80, 300, 1800)
		sa := measure(duato, 0.80, 300, 1800)
		t.Logf("accepted at 0.80 offered: dor %.4f, duato %.4f", sd.Accepted, sa.Accepted)
		if sa.Accepted < sd.Accepted {
			t.Fatalf("duato accepted %.4f, below dimension-order's %.4f at the same offered load", sa.Accepted, sd.Accepted)
		}
	})
}
