package oracle

// Fault differential and metamorphic tests: the optimized fabric and
// the reference oracle must agree cycle-for-cycle on the surviving
// subgraph while a fault schedule replays, and adding faults must never
// help — delivered throughput can only fall and mean latency can only
// rise at a fixed offered load (DESIGN.md §14).

import (
	"testing"

	"smart/internal/faults"
	"smart/internal/sim"
	"smart/internal/traffic"
	"smart/internal/wormhole"
)

// faulted wraps a network with the counters the fault tests assert on;
// both the fabric and the oracle implement it.
type faulted interface {
	Network
	faults.Target
	FaultStalls() int64
}

// buildFaultedPair assembles fabric-vs-oracle with the identical fault
// schedule replayed onto each side by its own controller, registered —
// like core.NewSimulationShards does — ahead of traffic and the
// network, so an event at cycle C is in force for all of cycle C.
func buildFaultedPair(t *testing.T, sp diffSpec, spec string, seed uint64) *Pair {
	t.Helper()
	top, algF := sp.buildTopAlg(t)
	_, algO := sp.buildTopAlg(t)
	cfg := sp.config(algF.VCs())
	fab, err := wormhole.NewFabric(top, cfg, algF)
	if err != nil {
		t.Fatalf("NewFabric: %v", err)
	}
	ora, err := New(top, cfg, algO)
	if err != nil {
		t.Fatalf("oracle.New: %v", err)
	}
	sched, err := faults.Parse(spec, top, seed)
	if err != nil {
		t.Fatalf("faults.Parse(%q): %v", spec, err)
	}
	pat := buildTestPattern(t, sp.pattern, top.Nodes())
	p := &Pair{A: fab, B: ora}
	if p.InjA, err = traffic.NewInjector(fab, pat, sp.rate, sp.seed); err != nil {
		t.Fatal(err)
	}
	if p.InjB, err = traffic.NewInjector(ora, pat, sp.rate, sp.seed); err != nil {
		t.Fatal(err)
	}
	p.InjA.SetAvailability(fab.NodeUp)
	p.InjB.SetAvailability(ora.NodeUp)
	p.EngA = sim.NewEngine()
	faults.NewController(sched, fab).Register(p.EngA)
	p.InjA.Register(p.EngA)
	fab.Register(p.EngA)
	p.EngB = sim.NewEngine()
	faults.NewController(sched, ora).Register(p.EngB)
	p.InjB.Register(p.EngB)
	ora.Register(p.EngB)
	return p
}

// faultDiffSpecs exercises every degraded-routing discipline: Duato
// escape-lane rerouting, the tree's alternate-parent ascent, a frozen
// router (injector availability masks both endpoints identically), and
// fault-oblivious DOR across a lift-and-revive interval — the worm
// parks at the masked link and resumes when it lifts.
var faultDiffSpecs = []struct {
	name  string
	sp    diffSpec
	spec  string
	drain int64
}{
	{"cube-duato-linkcut", diffSpec{family: "cube", k: 4, n: 2, alg: "duato",
		buf: 4, flits: 4, inj: 1, pattern: "uniform", rate: 0.15, seed: 21, cycles: 600}, "link:0:0@100-520,link:5:2@150-560", 20000},
	{"cube-duato-randlinks", diffSpec{family: "cube", k: 4, n: 2, alg: "duato",
		buf: 4, flits: 4, inj: 1, pattern: "transpose", rate: 0.12, seed: 22, cycles: 600}, "rand-links:3@120-400", 20000},
	{"cube-dor-interval", diffSpec{family: "cube", k: 4, n: 2, alg: "dor",
		buf: 4, flits: 4, inj: 1, pattern: "uniform", rate: 0.08, seed: 23, cycles: 600}, "link:1:0@100-300", 20000},
	{"cube-duato-routerdown", diffSpec{family: "cube", k: 4, n: 2, alg: "duato",
		buf: 4, flits: 4, inj: 1, pattern: "uniform", rate: 0.10, seed: 24, cycles: 600}, "router:6@150-450", 20000},
	{"tree-adaptive-linkcut", diffSpec{family: "tree", k: 4, n: 2, alg: "adaptive", vcs: 2,
		buf: 4, flits: 4, inj: 1, pattern: "uniform", rate: 0.10, seed: 25, cycles: 600}, "rand-links:1@100-400", 20000},
	{"tree-adaptive-randlinks", diffSpec{family: "tree", k: 2, n: 3, alg: "adaptive", vcs: 4,
		buf: 4, flits: 4, inj: 1, pattern: "bitrev", rate: 0.15, seed: 26, cycles: 600}, "rand-links:2@100-350", 20000},
}

// TestFaultedFabricMatchesOracle is the fault half of the differential
// tier: identical schedules on both sides must keep the per-cycle
// observations and the final packet tables bit-identical, and the
// schedule must actually have engaged (fault stalls on both sides).
func TestFaultedFabricMatchesOracle(t *testing.T) {
	for _, tc := range faultDiffSpecs {
		t.Run(tc.name, func(t *testing.T) {
			seed := faults.SeedFrom(tc.name)
			pair := buildFaultedPair(t, tc.sp, tc.spec, seed)
			if err := pair.Step(tc.sp.cycles); err != nil {
				t.Fatal(err)
			}
			if err := pair.Drain(tc.drain); err != nil {
				t.Fatal(err)
			}
			if err := pair.ComparePackets(); err != nil {
				t.Fatal(err)
			}
			fab := pair.A.(faulted)
			ora := pair.B.(faulted)
			if fab.FaultStalls() != ora.FaultStalls() {
				t.Fatalf("fault-stall counters diverged: fabric %d, oracle %d", fab.FaultStalls(), ora.FaultStalls())
			}
			if fab.FaultStalls() == 0 {
				t.Fatal("schedule never stalled a flit; the differential exercised nothing")
			}
			if pair.A.Observe().Counters.PacketsCreated == 0 {
				t.Fatal("run generated no traffic; the comparison is vacuous")
			}
		})
	}
}

// TestMetamorphicFaultMonotonicity is the degraded-mode metamorphic
// relation: at a fixed offered load and seed, a link-fault schedule can
// only remove delivery opportunities. Delivered packets at the horizon
// must not increase, and the mean latency of the packets that do
// deliver must not decrease. Link faults (not router faults) keep the
// created-packet set bit-identical between the runs, so the comparison
// isolates the network's response. Checked on the fabric and on the
// oracle independently.
func TestMetamorphicFaultMonotonicity(t *testing.T) {
	cases := []struct {
		name string
		sp   diffSpec
		spec string
	}{
		{"cube-duato", diffSpec{family: "cube", k: 4, n: 2, alg: "duato",
			buf: 4, flits: 4, inj: 1, pattern: "uniform", rate: 0.20, seed: 31, cycles: 1200}, "rand-links:4@200-900"},
		{"tree-adaptive", diffSpec{family: "tree", k: 4, n: 2, alg: "adaptive", vcs: 2,
			buf: 4, flits: 4, inj: 1, pattern: "uniform", rate: 0.15, seed: 32, cycles: 1200}, "rand-links:2@200-900"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seed := faults.SeedFrom(tc.name)
			for _, side := range []struct {
				name  string
				build func() (Network, faults.Target)
			}{
				{"fabric", func() (Network, faults.Target) { f, _ := newFabricFor(t, tc.sp); return f, f }},
				{"oracle", func() (Network, faults.Target) { o, _ := newOracleFor(t, tc.sp); return o, o }},
			} {
				run := func(spec string) (delivered int64, meanLat float64) {
					net, tgt := side.build()
					eng := sim.NewEngine()
					if spec != "" {
						top, _ := tc.sp.buildTopAlg(t)
						sched, err := faults.Parse(spec, top, seed)
						if err != nil {
							t.Fatal(err)
						}
						faults.NewController(sched, tgt).Register(eng)
					}
					inj, err := traffic.NewInjector(net, buildTestPattern(t, tc.sp.pattern, topNodes(t, tc.sp)), tc.sp.rate, tc.sp.seed)
					if err != nil {
						t.Fatal(err)
					}
					inj.Register(eng)
					net.Register(eng)
					eng.Run(tc.sp.cycles)
					delivered = net.Observe().Counters.PacketsDelivered
					inj.Stop()
					for i := 0; i < 30000 && !net.Drained(); i++ {
						eng.Step()
					}
					if !net.Drained() {
						t.Fatalf("%s: faulted=%v run failed to drain after the schedule lifted", side.name, spec != "")
					}
					var sum, n int64
					for _, pk := range net.PacketRecords() {
						sum += pk.NetworkLatency()
						n++
					}
					if n == 0 {
						t.Fatalf("%s: no packets delivered; the relation is vacuous", side.name)
					}
					return delivered, float64(sum) / float64(n)
				}
				cleanDelivered, cleanLat := run("")
				faultDelivered, faultLat := run(tc.spec)
				t.Logf("%s: delivered clean %d faulted %d; mean latency clean %.2f faulted %.2f",
					side.name, cleanDelivered, faultDelivered, cleanLat, faultLat)
				if faultDelivered > cleanDelivered {
					t.Errorf("%s: faults increased delivered packets at the horizon: %d > %d",
						side.name, faultDelivered, cleanDelivered)
				}
				if faultLat < cleanLat {
					t.Errorf("%s: faults decreased mean latency: %.3f < %.3f", side.name, faultLat, cleanLat)
				}
			}
		})
	}
}

func topNodes(t *testing.T, sp diffSpec) int {
	t.Helper()
	top, _ := sp.buildTopAlg(t)
	return top.Nodes()
}

// FuzzFaultSchedule fuzzes the fault axis of the differential harness:
// any schedule the parser accepts on the 4-ary 2-cube must keep the
// Duato fabric and the oracle in lockstep, cycle for cycle, while it
// replays. Traffic keeps flowing the whole time (router faults mask
// injection at dead endpoints identically on both sides via NodeUp).
func FuzzFaultSchedule(f *testing.F) {
	f.Add("link:0:0@50", uint64(1))
	f.Add("link:0:0@50-200,router:5@80-250", uint64(2))
	f.Add("rand-links:4@60-300", uint64(3))
	f.Add("rand-routers:2@40-90,rand-links:2@100", uint64(4))
	f.Add("router:0@0", uint64(5))
	f.Fuzz(func(t *testing.T, spec string, seed uint64) {
		if faults.CheckSpec(spec) != nil || spec == "" {
			t.Skip()
		}
		sp := diffSpec{family: "cube", k: 4, n: 2, alg: "duato",
			buf: 4, flits: 4, inj: 1, pattern: "uniform", rate: 0.12, seed: 17, cycles: 400}
		// Re-parse against the topology; specs that reference links or
		// routers the cube lacks are legal syntax but not runnable.
		top, _ := sp.buildTopAlg(t)
		if _, err := faults.Parse(spec, top, seed); err != nil {
			t.Skip()
		}
		pair := buildFaultedPair(t, sp, spec, seed)
		if err := pair.Step(sp.cycles); err != nil {
			t.Fatal(err)
		}
		// No drain: open-ended schedules (a permanently dead router)
		// legitimately strand in-flight flits. Lockstep agreement over
		// the horizon is the contract.
	})
}
