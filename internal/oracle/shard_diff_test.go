package oracle

import (
	"fmt"
	"testing"

	"smart/internal/routing"
	"smart/internal/traffic"
	"smart/internal/wormhole"
)

// shardCounts are the partition sizes the parallel engine is checked at:
// an even split, an uneven one, and one at (or beyond) router
// granularity on the test-sized topologies.
var shardCounts = []int{1, 2, 3, 8}

// buildFabric assembles one side of a shard differential: a fresh
// topology and algorithm instance (the disciplines carry per-fabric
// arbitration state) partitioned into the given shard count.
func buildFabric(t *testing.T, tc routing.Case, cfg wormhole.Config, shards int) *wormhole.Fabric {
	t.Helper()
	top, alg, err := tc.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg.VCs = alg.VCs()
	fab, err := wormhole.NewFabric(top, cfg, alg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.SetShards(shards); err != nil {
		t.Fatal(err)
	}
	if shards > 1 && fab.Shards() < 2 {
		t.Fatalf("SetShards(%d) left %d shards; the parallel path is not exercised", shards, fab.Shards())
	}
	return fab
}

// runShardPair drives a sequential fabric and a sharded fabric of the
// same configuration in lockstep, comparing the canonical observation
// (counters, queue state and the full state digest) after every cycle,
// checking structural invariants periodically, and finally draining and
// comparing the packet tables.
func runShardPair(t *testing.T, tc routing.Case, cfg wormhole.Config, shards int) {
	t.Helper()
	seq := buildFabric(t, tc, cfg, 1)
	shd := buildFabric(t, tc, cfg, shards)
	pattern, err := traffic.NewUniform(seq.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	pair, err := NewPair(seq, shd, pattern, 0.08, 404)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 20; step++ {
		if err := pair.Step(20); err != nil {
			t.Fatal(err)
		}
		if err := seq.CheckInvariants(); err != nil {
			t.Fatalf("sequential side: %v", err)
		}
		if err := shd.CheckInvariants(); err != nil {
			t.Fatalf("sharded side (%d shards): %v", shards, err)
		}
	}
	if err := pair.Drain(20000); err != nil {
		t.Fatal(err)
	}
	if err := pair.ComparePackets(); err != nil {
		t.Fatal(err)
	}
	if seq.Counters().PacketsDelivered == 0 {
		t.Fatal("differential run delivered nothing; the comparison is vacuous")
	}
}

// TestShardedVsSequentialOverSharedCases checks the tentpole determinism
// contract: for every routing discipline in the canonical case table and
// every shard count, the parallel two-phase engine produces bit-identical
// per-cycle state (same Counters, same StateHash) to the sequential
// engine — not just the same aggregates at the end.
func TestShardedVsSequentialOverSharedCases(t *testing.T) {
	cfg := wormhole.Config{BufDepth: 4, PacketFlits: 4, InjLanes: 1}
	for _, tc := range routing.Cases() {
		for _, shards := range shardCounts {
			t.Run(fmt.Sprintf("%s/shards=%d", tc.Name, shards), func(t *testing.T) {
				runShardPair(t, tc, cfg, shards)
			})
		}
	}
}

// TestShardedVsSequentialPipelinedWires repeats the shard differential
// with multi-cycle links, so boundary flits travel through the wire
// pipelines and the cross-shard mailbox drains wire arrivals as well as
// direct link transfers.
func TestShardedVsSequentialPipelinedWires(t *testing.T) {
	cfg := wormhole.Config{BufDepth: 4, PacketFlits: 4, InjLanes: 1, LinkCycles: 3}
	for _, tc := range routing.Cases() {
		t.Run(tc.Name, func(t *testing.T) {
			runShardPair(t, tc, cfg, 3)
		})
	}
}

// TestShardedVsOracle closes the triangle: the sharded fabric is also
// compared against the independent reference simulator, so agreement
// with the sequential fabric cannot hide a shared regression.
func TestShardedVsOracle(t *testing.T) {
	for _, tc := range routing.Cases() {
		t.Run(tc.Name, func(t *testing.T) {
			cfg := wormhole.Config{BufDepth: 4, PacketFlits: 4, InjLanes: 1}
			fab := buildFabric(t, tc, cfg, 4)
			topB, algB, err := tc.Build()
			if err != nil {
				t.Fatal(err)
			}
			cfg.VCs = algB.VCs()
			ora, err := New(topB, cfg, algB)
			if err != nil {
				t.Fatal(err)
			}
			pattern, err := traffic.NewUniform(fab.Nodes())
			if err != nil {
				t.Fatal(err)
			}
			pair, err := NewPair(fab, ora, pattern, 0.08, 404)
			if err != nil {
				t.Fatal(err)
			}
			if err := pair.Step(400); err != nil {
				t.Fatal(err)
			}
			if err := pair.Drain(20000); err != nil {
				t.Fatal(err)
			}
			if err := pair.ComparePackets(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
