package topology

import "fmt"

// Cube is a k-ary n-cube: k^n processing nodes arranged in an
// n-dimensional grid with k nodes per dimension and wrap-around
// connections (paper §3). Every node has its own router; a router has 2n
// neighbour ports (one per direction per dimension) plus one node port
// carrying the injection and ejection channels, so the crossbar of the
// 16-ary 2-cube has the P = 17 ports the paper's cost model uses (4 links
// x 4 virtual channels + 1 injection channel).
// A Cube with Wrap == false is a k-ary n-mesh: the same grid without the
// wrap-around connections (border ports unused). The mesh is not part of
// the paper's evaluation but serves the ablation harness as the classic
// torus-versus-mesh comparison; both routing disciplines work unchanged
// (the wrap-class machinery simply never engages).
type Cube struct {
	K, N int
	// Wrap is true for the torus (k-ary n-cube) and false for the mesh.
	Wrap  bool
	nodes int
	// strides[d] = K^d, so that digit d of node id x is (x / strides[d]) % K.
	strides []int
	ports   [][]Port
}

// Direction of travel along a dimension's ring.
const (
	// Plus moves toward increasing coordinate (with wrap k-1 -> 0).
	Plus = 0
	// Minus moves toward decreasing coordinate (with wrap 0 -> k-1).
	Minus = 1
)

// NewCube builds a k-ary n-cube. k must be at least 2 (a ring needs two
// nodes; k == 2 degenerates to the binary hypercube as the paper notes)
// and n at least 1.
func NewCube(k, n int) (*Cube, error) { return newGrid(k, n, true) }

// NewMesh builds a k-ary n-mesh: the cube without its wrap-around
// connections.
func NewMesh(k, n int) (*Cube, error) { return newGrid(k, n, false) }

func newGrid(k, n int, wrap bool) (*Cube, error) {
	family := "cube"
	if !wrap {
		family = "mesh"
	}
	if k < 2 {
		return nil, fmt.Errorf("topology: k-ary n-%s needs k >= 2, got k=%d", family, k)
	}
	if n < 1 {
		return nil, fmt.Errorf("topology: k-ary n-%s needs n >= 1, got n=%d", family, n)
	}
	nodes, err := Pow(k, n)
	if err != nil {
		return nil, err
	}
	c := &Cube{K: k, N: n, Wrap: wrap, nodes: nodes}
	c.strides = make([]int, n)
	s := 1
	for d := 0; d < n; d++ {
		c.strides[d] = s
		s *= k
	}
	degree := 2*n + 1
	c.ports = make([][]Port, nodes)
	flat := make([]Port, nodes*degree)
	for r := 0; r < nodes; r++ {
		c.ports[r] = flat[r*degree : (r+1)*degree : (r+1)*degree]
		for d := 0; d < n; d++ {
			// On the mesh, the border ports that would carry the wrap
			// link stay unused.
			if wrap || c.Digit(r, d) != k-1 {
				up := c.neighbor(r, d, Plus)
				c.ports[r][PortOf(d, Plus)] = Port{Kind: PortRouter, Peer: up, PeerPort: PortOf(d, Minus)}
			}
			if wrap || c.Digit(r, d) != 0 {
				down := c.neighbor(r, d, Minus)
				c.ports[r][PortOf(d, Minus)] = Port{Kind: PortRouter, Peer: down, PeerPort: PortOf(d, Plus)}
			}
		}
		c.ports[r][2*n] = Port{Kind: PortNode, Peer: r}
	}
	return c, nil
}

// PortOf maps a (dimension, direction) pair to the router port index used
// by NewCube's wiring: ports 2d and 2d+1 are the Plus and Minus directions
// of dimension d, and port 2n is the node port.
func PortOf(dim, dir int) int { return 2*dim + dir }

// DimDirOf is the inverse of PortOf. It must not be called with the node
// port.
func (c *Cube) DimDirOf(port int) (dim, dir int) {
	if port >= 2*c.N {
		panic("topology: DimDirOf called with the node port")
	}
	return port / 2, port % 2
}

// NodePort returns the index of the port carrying the injection and
// ejection channels.
func (c *Cube) NodePort() int { return 2 * c.N }

// Name implements Topology.
func (c *Cube) Name() string {
	if !c.Wrap {
		return fmt.Sprintf("%d-ary %d-mesh", c.K, c.N)
	}
	return fmt.Sprintf("%d-ary %d-cube", c.K, c.N)
}

// Routers implements Topology; the cube is a direct network with one
// router per node.
func (c *Cube) Routers() int { return c.nodes }

// Nodes implements Topology.
func (c *Cube) Nodes() int { return c.nodes }

// Degree implements Topology.
func (c *Cube) Degree() int { return 2*c.N + 1 }

// RouterPorts implements Topology.
func (c *Cube) RouterPorts(r int) []Port { return c.ports[r] }

// NodeAttach implements Topology.
func (c *Cube) NodeAttach(node int) Attach { return Attach{Router: node, Port: 2 * c.N} }

// Digit returns coordinate d of node id x.
func (c *Cube) Digit(x, d int) int { return (x / c.strides[d]) % c.K }

// WithDigit returns x with coordinate d replaced by v.
func (c *Cube) WithDigit(x, d, v int) int {
	return x + (v-c.Digit(x, d))*c.strides[d]
}

// neighbor returns the node one hop from x along dimension d in the given
// direction, with wrap-around on the torus. It must not be called across
// a mesh border.
func (c *Cube) neighbor(x, d, dir int) int {
	coord := c.Digit(x, d)
	if dir == Plus {
		coord++
		if coord == c.K {
			if !c.Wrap {
				panic(fmt.Sprintf("topology: neighbor across the mesh border at node %d dim %d", x, d))
			}
			coord = 0
		}
	} else {
		coord--
		if coord < 0 {
			if !c.Wrap {
				panic(fmt.Sprintf("topology: neighbor across the mesh border at node %d dim %d", x, d))
			}
			coord = c.K - 1
		}
	}
	return c.WithDigit(x, d, coord)
}

// Neighbor is the exported form of neighbor, used by tests and examples.
func (c *Cube) Neighbor(x, d, dir int) int { return c.neighbor(x, d, dir) }

// CrossesWrap reports whether the link leaving router r along dimension d
// in direction dir is a wrap-around connection. The deterministic and
// escape-channel disciplines switch virtual network when a packet crosses
// such a link (Dally-Seitz, paper §3). A mesh has no wrap-around links.
func (c *Cube) CrossesWrap(r, d, dir int) bool {
	if !c.Wrap {
		return false
	}
	coord := c.Digit(r, d)
	if dir == Plus {
		return coord == c.K-1
	}
	return coord == 0
}

// RingDistance returns the minimal number of hops between coordinates a
// and b along one dimension: around the ring on the torus, along the line
// on the mesh.
func (c *Cube) RingDistance(a, b int) int {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if !c.Wrap {
		return diff
	}
	if other := c.K - diff; other < diff {
		return other
	}
	return diff
}

// MinimalDirs reports which directions along dimension d lie on a minimal
// path from cur to dst: (plus, minus). On the torus both are true when
// the offset is exactly k/2 on an even ring, where the two ways around
// are equally short; on the mesh the minimal direction is always unique.
// Both are false when the coordinates agree.
func (c *Cube) MinimalDirs(cur, dst, d int) (plus, minus bool) {
	a, b := c.Digit(cur, d), c.Digit(dst, d)
	if a == b {
		return false, false
	}
	if !c.Wrap {
		return b > a, b < a
	}
	forward := b - a
	if forward < 0 {
		forward += c.K
	}
	backward := c.K - forward
	return forward <= backward, backward <= forward
}

// DeterministicDir returns the unique direction dimension-order routing
// uses along dimension d, resolving the k/2 tie toward Plus.
func (c *Cube) DeterministicDir(cur, dst, d int) int {
	plus, _ := c.MinimalDirs(cur, dst, d)
	if plus {
		return Plus
	}
	return Minus
}

// Distance implements Topology: minimal link traversals NIC-to-NIC, i.e.
// the torus distance plus the injection and ejection links, and 0 for
// src == dst.
func (c *Cube) Distance(src, dst int) int {
	if src == dst {
		return 0
	}
	hops := 0
	for d := 0; d < c.N; d++ {
		hops += c.RingDistance(c.Digit(src, d), c.Digit(dst, d))
	}
	return hops + 2
}

// BisectionLinks returns the number of bidirectional channels crossing
// the network bisection: 2*k^(n-1) for the even-k torus (each of the
// k^(n-1) rows of the cut dimension contributes a direct and a
// wrap-around link), half that for the mesh. The paper's capacity bound
// (footnote 1 of §5) builds on this.
func (c *Cube) BisectionLinks() int {
	rows := c.nodes / c.K
	if !c.Wrap {
		return rows
	}
	return 2 * rows
}

var _ Topology = (*Cube)(nil)
