package topology

import "testing"

func mustMesh(t *testing.T, k, n int) *Cube {
	t.Helper()
	m, err := NewMesh(k, n)
	if err != nil {
		t.Fatalf("NewMesh(%d,%d): %v", k, n, err)
	}
	return m
}

func TestMeshValidateAndName(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{2, 2}, {4, 2}, {3, 3}, {16, 2}} {
		m := mustMesh(t, tc.k, tc.n)
		if err := Validate(m); err != nil {
			t.Errorf("mesh(%d,%d): %v", tc.k, tc.n, err)
		}
	}
	if got := mustMesh(t, 16, 2).Name(); got != "16-ary 2-mesh" {
		t.Fatalf("Name() = %q", got)
	}
}

func TestMeshBorderPortsUnused(t *testing.T) {
	m := mustMesh(t, 4, 2)
	unused := 0
	for r := 0; r < m.Routers(); r++ {
		for d := 0; d < m.N; d++ {
			plusPort := m.RouterPorts(r)[PortOf(d, Plus)]
			minusPort := m.RouterPorts(r)[PortOf(d, Minus)]
			if (m.Digit(r, d) == m.K-1) != (plusPort.Kind == PortUnused) {
				t.Fatalf("node %d dim %d plus port kind %v", r, d, plusPort.Kind)
			}
			if (m.Digit(r, d) == 0) != (minusPort.Kind == PortUnused) {
				t.Fatalf("node %d dim %d minus port kind %v", r, d, minusPort.Kind)
			}
			if plusPort.Kind == PortUnused {
				unused++
			}
			if minusPort.Kind == PortUnused {
				unused++
			}
		}
	}
	// 2 borders per dimension x k^(n-1) rows.
	if want := 2 * m.N * m.Nodes() / m.K; unused != want {
		t.Fatalf("%d unused border ports, want %d", unused, want)
	}
}

func TestMeshNoWrapCrossings(t *testing.T) {
	m := mustMesh(t, 4, 2)
	for r := 0; r < m.Routers(); r++ {
		for d := 0; d < m.N; d++ {
			if m.CrossesWrap(r, d, Plus) || m.CrossesWrap(r, d, Minus) {
				t.Fatalf("mesh reports a wrap crossing at node %d dim %d", r, d)
			}
		}
	}
}

func TestMeshDistanceIsManhattan(t *testing.T) {
	m := mustMesh(t, 8, 2)
	c := mustCube(t, 8, 2)
	if got := m.Distance(0, 7); got != 7+2 {
		t.Fatalf("mesh corner distance %d, want 9 (no wrap shortcut)", got)
	}
	if got := c.Distance(0, 7); got != 1+2 {
		t.Fatalf("torus corner distance %d, want 3", got)
	}
	for src := 0; src < m.Nodes(); src += 5 {
		for dst := 0; dst < m.Nodes(); dst += 7 {
			if m.Distance(src, dst) < c.Distance(src, dst) {
				t.Fatalf("mesh shorter than torus at (%d,%d)", src, dst)
			}
		}
	}
}

func TestMeshMinimalDirUnique(t *testing.T) {
	m := mustMesh(t, 8, 2)
	for cur := 0; cur < m.Nodes(); cur += 3 {
		for dst := 0; dst < m.Nodes(); dst += 5 {
			for d := 0; d < m.N; d++ {
				plus, minus := m.MinimalDirs(cur, dst, d)
				if plus && minus {
					t.Fatalf("mesh offered two minimal directions at (%d,%d,dim %d)", cur, dst, d)
				}
				if a, b := m.Digit(cur, d), m.Digit(dst, d); (a != b) != (plus || minus) {
					t.Fatalf("minimal direction presence wrong at (%d,%d,dim %d)", cur, dst, d)
				}
			}
		}
	}
}

func TestMeshBisectionHalvesTorus(t *testing.T) {
	m, c := mustMesh(t, 16, 2), mustCube(t, 16, 2)
	if m.BisectionLinks()*2 != c.BisectionLinks() {
		t.Fatalf("mesh bisection %d, torus %d: want half", m.BisectionLinks(), c.BisectionLinks())
	}
}

func TestMeshNeighborAcrossBorderPanics(t *testing.T) {
	m := mustMesh(t, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("border crossing did not panic")
		}
	}()
	m.Neighbor(3, 0, Plus)
}

func TestMeshRingDistanceNoWrap(t *testing.T) {
	m := mustMesh(t, 8, 1)
	if m.RingDistance(0, 7) != 7 {
		t.Fatalf("mesh line distance %d, want 7", m.RingDistance(0, 7))
	}
	if m.RingDistance(7, 0) != 7 {
		t.Fatal("mesh line distance asymmetric")
	}
}
