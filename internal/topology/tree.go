package topology

import "fmt"

// Tree is a k-ary n-tree (paper §2), the fixed-arity fat-tree subclass the
// paper's experiments use: k^n processing nodes at the leaves and n levels
// of k^(n-1) switches, each switch with 2k links (k down toward the
// leaves, k up toward the roots). Following the construction of Petrini
// and Vanneschi (IPPS'97), a switch is identified by a pair (w, l) where
// l in {0..n-1} is the level (0 nearest the processors) and
// w = w_0 w_1 ... w_(n-2) is an (n-1)-digit radix-k label; switches
// (w, l) and (w', l+1) are connected exactly when w and w' agree on every
// digit except possibly digit l. Processor p_0 p_1 ... p_(n-1) attaches to
// the level-0 switch whose label digits are w_i = p_(i+1), through down
// port p_0. The up ports of the level n-1 switches are the external
// connections of Figure 1 and stay unused here.
type Tree struct {
	K, N int
	// nodes = K^N, spl (switches per level) = K^(N-1).
	nodes, spl int
	// strides[i] = K^i for digit extraction from node ids and labels.
	strides []int
	ports   [][]Port
	attach  []Attach
}

// NewTree builds a k-ary n-tree. k must be at least 2 and n at least 1.
func NewTree(k, n int) (*Tree, error) {
	if k < 2 {
		return nil, fmt.Errorf("topology: k-ary n-tree needs k >= 2, got k=%d", k)
	}
	if n < 1 {
		return nil, fmt.Errorf("topology: k-ary n-tree needs n >= 1, got n=%d", n)
	}
	nodes, err := Pow(k, n)
	if err != nil {
		return nil, err
	}
	t := &Tree{K: k, N: n, nodes: nodes, spl: nodes / k}
	t.strides = make([]int, n)
	s := 1
	for i := 0; i < n; i++ {
		t.strides[i] = s
		s *= k
	}
	degree := 2 * k
	numSwitches := n * t.spl
	t.ports = make([][]Port, numSwitches)
	flat := make([]Port, numSwitches*degree)
	for sw := 0; sw < numSwitches; sw++ {
		t.ports[sw] = flat[sw*degree : (sw+1)*degree : (sw+1)*degree]
	}
	t.attach = make([]Attach, nodes)

	// Processor attachments: node nd = (label * k) + downPort at level 0.
	for nd := 0; nd < nodes; nd++ {
		sw := t.SwitchIndex(0, nd/k)
		port := nd % k
		t.ports[sw][port] = Port{Kind: PortNode, Peer: nd}
		t.attach[nd] = Attach{Router: sw, Port: port}
	}

	// Inter-level wiring: switch (w, l) up port j connects to parent
	// (w with digit l set to j, l+1); the parent reciprocates on down
	// port w_l (the child's own digit l).
	for l := 0; l < n-1; l++ {
		for label := 0; label < t.spl; label++ {
			child := t.SwitchIndex(l, label)
			childDigit := t.labelDigit(label, l)
			for j := 0; j < k; j++ {
				parentLabel := label + (j-childDigit)*t.strides[l]
				parent := t.SwitchIndex(l+1, parentLabel)
				t.ports[child][t.UpPort(j)] = Port{Kind: PortRouter, Peer: parent, PeerPort: childDigit}
				t.ports[parent][childDigit] = Port{Kind: PortRouter, Peer: child, PeerPort: t.UpPort(j)}
			}
		}
	}
	// Top-level up ports stay PortUnused (the zero value).
	return t, nil
}

// Name implements Topology.
func (t *Tree) Name() string { return fmt.Sprintf("%d-ary %d-tree", t.K, t.N) }

// Routers implements Topology: n * k^(n-1) switches.
func (t *Tree) Routers() int { return t.N * t.spl }

// Nodes implements Topology: k^n leaves.
func (t *Tree) Nodes() int { return t.nodes }

// Degree implements Topology: 2k ports per switch.
func (t *Tree) Degree() int { return 2 * t.K }

// RouterPorts implements Topology.
func (t *Tree) RouterPorts(r int) []Port { return t.ports[r] }

// NodeAttach implements Topology.
func (t *Tree) NodeAttach(node int) Attach { return t.attach[node] }

// SwitchIndex maps a (level, label) pair to the router index.
func (t *Tree) SwitchIndex(level, label int) int { return level*t.spl + label }

// SwitchLevel returns the level of switch s, with 0 adjacent to the
// processing nodes and N-1 at the root.
func (t *Tree) SwitchLevel(s int) int { return s / t.spl }

// SwitchLabel returns the (n-1)-digit radix-k label of switch s as an
// integer.
func (t *Tree) SwitchLabel(s int) int { return s % t.spl }

// UpPort returns the port index of up link j (toward the parent whose
// freed digit takes value j); down links occupy ports 0..k-1 directly.
func (t *Tree) UpPort(j int) int { return t.K + j }

// IsUpPort reports whether port p points toward the roots.
func (t *Tree) IsUpPort(p int) bool { return p >= t.K }

// Digit returns radix-k digit i of node id x (digit 0 least significant,
// matching the p_0 of the construction).
func (t *Tree) Digit(x, i int) int { return (x / t.strides[i]) % t.K }

func (t *Tree) labelDigit(label, i int) int { return (label / t.strides[i]) % t.K }

// NCALevel returns the level of the nearest common ancestors of src and
// dst: the index of the most significant digit where the two node ids
// differ. It returns -1 when src == dst; such packets never enter the
// network. There are k^m nearest common ancestors at level m, and the
// minimal path length is 2*(m+1) links.
func (t *Tree) NCALevel(src, dst int) int {
	if src == dst {
		return -1
	}
	for i := t.N - 1; i >= 0; i-- {
		if t.Digit(src, i) != t.Digit(dst, i) {
			return i
		}
	}
	return -1
}

// IsAncestor reports whether switch sw is an ancestor of node dst: its
// label digits at positions >= its level match the corresponding digits
// of dst (label digit i corresponds to node digit i+1). A packet descends
// exactly when its current switch is an ancestor of the destination and
// ascends otherwise.
func (t *Tree) IsAncestor(sw, dst int) bool {
	level := t.SwitchLevel(sw)
	label := t.SwitchLabel(sw)
	for i := level; i < t.N-1; i++ {
		if t.labelDigit(label, i) != t.Digit(dst, i+1) {
			return false
		}
	}
	return true
}

// DownPortTo returns the down port a switch at the given level uses on the
// unique descending path toward node dst: digit `level` of dst. At level 0
// this is the destination's node port.
func (t *Tree) DownPortTo(level, dst int) int { return t.Digit(dst, level) }

// Distance implements Topology: 2*(m+1) link traversals where m is the
// nearest-common-ancestor level, and 0 for src == dst. This matches the
// distance accounting of the paper's §8.1 (k^(n/2) node pairs at distance
// 0, (k-1)*k^(n/2+i-1) at distance n+2i under transpose and bit-reversal).
func (t *Tree) Distance(src, dst int) int {
	m := t.NCALevel(src, dst)
	if m < 0 {
		return 0
	}
	return 2 * (m + 1)
}

// MeanPermutationDistance evaluates Equation 5 of the paper analytically:
// the mean distance d_m of the transpose and bit-reversal permutations,
// d_m = (k-1)/k^(n/2+1) * sum_{i=1..n/2} (n+2i) k^i, defined for even n.
func (t *Tree) MeanPermutationDistance() float64 {
	if t.N%2 != 0 {
		panic("topology: MeanPermutationDistance requires even n")
	}
	half := t.N / 2
	sum := 0.0
	ki := 1.0
	for i := 1; i <= half; i++ {
		ki *= float64(t.K)
		sum += float64(t.N+2*i) * ki
	}
	den := 1.0
	for i := 0; i < half+1; i++ {
		den *= float64(t.K)
	}
	return float64(t.K-1) / den * sum
}

var _ Topology = (*Tree)(nil)
