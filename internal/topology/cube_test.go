package topology

import (
	"testing"
	"testing/quick"
)

func mustCube(t *testing.T, k, n int) *Cube {
	t.Helper()
	c, err := NewCube(k, n)
	if err != nil {
		t.Fatalf("NewCube(%d,%d): %v", k, n, err)
	}
	return c
}

func TestNewCubeRejectsBadParams(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{1, 2}, {0, 2}, {-3, 2}, {4, 0}, {4, -1}} {
		if _, err := NewCube(tc.k, tc.n); err == nil {
			t.Errorf("NewCube(%d,%d) accepted invalid parameters", tc.k, tc.n)
		}
	}
}

func TestCubeSizes(t *testing.T) {
	for _, tc := range []struct{ k, n, nodes int }{
		{2, 1, 2}, {2, 3, 8}, {4, 2, 16}, {5, 2, 25}, {16, 2, 256}, {8, 3, 512},
	} {
		c := mustCube(t, tc.k, tc.n)
		if c.Nodes() != tc.nodes || c.Routers() != tc.nodes {
			t.Errorf("%s: nodes=%d routers=%d, want %d", c.Name(), c.Nodes(), c.Routers(), tc.nodes)
		}
		if c.Degree() != 2*tc.n+1 {
			t.Errorf("%s: degree %d, want %d", c.Name(), c.Degree(), 2*tc.n+1)
		}
	}
}

func TestCubeValidate(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{2, 2}, {3, 2}, {4, 2}, {2, 4}, {16, 2}, {4, 3}} {
		if err := Validate(mustCube(t, tc.k, tc.n)); err != nil {
			t.Errorf("cube(%d,%d): %v", tc.k, tc.n, err)
		}
	}
}

func TestCubeName(t *testing.T) {
	if got := mustCube(t, 16, 2).Name(); got != "16-ary 2-cube" {
		t.Fatalf("Name() = %q", got)
	}
}

func TestCubeDigitRoundTrip(t *testing.T) {
	c := mustCube(t, 5, 3)
	check := func(x uint16, d uint8, v uint8) bool {
		node := int(x) % c.Nodes()
		dim := int(d) % c.N
		val := int(v) % c.K
		y := c.WithDigit(node, dim, val)
		if c.Digit(y, dim) != val {
			return false
		}
		// Other digits unchanged.
		for dd := 0; dd < c.N; dd++ {
			if dd != dim && c.Digit(y, dd) != c.Digit(node, dd) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestCubeNodeReconstructsFromDigits(t *testing.T) {
	c := mustCube(t, 4, 3)
	for x := 0; x < c.Nodes(); x++ {
		got := 0
		for d := c.N - 1; d >= 0; d-- {
			got = got*c.K + c.Digit(x, d)
		}
		if got != x {
			t.Fatalf("digits of %d recompose to %d", x, got)
		}
	}
}

func TestCubeNeighborInverse(t *testing.T) {
	c := mustCube(t, 6, 2)
	for x := 0; x < c.Nodes(); x++ {
		for d := 0; d < c.N; d++ {
			if c.Neighbor(c.Neighbor(x, d, Plus), d, Minus) != x {
				t.Fatalf("plus then minus not identity at node %d dim %d", x, d)
			}
			if c.Neighbor(c.Neighbor(x, d, Minus), d, Plus) != x {
				t.Fatalf("minus then plus not identity at node %d dim %d", x, d)
			}
		}
	}
}

func TestCubeNeighborChangesOnlyOneDigit(t *testing.T) {
	c := mustCube(t, 5, 3)
	for x := 0; x < c.Nodes(); x += 7 {
		for d := 0; d < c.N; d++ {
			y := c.Neighbor(x, d, Plus)
			for dd := 0; dd < c.N; dd++ {
				if dd == d {
					want := (c.Digit(x, dd) + 1) % c.K
					if c.Digit(y, dd) != want {
						t.Fatalf("node %d dim %d: digit %d -> %d, want %d", x, d, c.Digit(x, dd), c.Digit(y, dd), want)
					}
				} else if c.Digit(y, dd) != c.Digit(x, dd) {
					t.Fatalf("node %d dim %d: unrelated digit %d changed", x, d, dd)
				}
			}
		}
	}
}

func TestCubeWiringMatchesNeighbor(t *testing.T) {
	c := mustCube(t, 4, 2)
	for r := 0; r < c.Routers(); r++ {
		for d := 0; d < c.N; d++ {
			for _, dir := range []int{Plus, Minus} {
				p := c.RouterPorts(r)[PortOf(d, dir)]
				if p.Kind != PortRouter || p.Peer != c.Neighbor(r, d, dir) {
					t.Fatalf("router %d port (%d,%d) wired to %d, want %d", r, d, dir, p.Peer, c.Neighbor(r, d, dir))
				}
			}
		}
		if p := c.RouterPorts(r)[c.NodePort()]; p.Kind != PortNode || p.Peer != r {
			t.Fatalf("router %d node port wired to %v", r, p)
		}
	}
}

func TestCubeCrossesWrap(t *testing.T) {
	c := mustCube(t, 4, 2)
	for r := 0; r < c.Routers(); r++ {
		for d := 0; d < c.N; d++ {
			wantPlus := c.Digit(r, d) == 3
			wantMinus := c.Digit(r, d) == 0
			if c.CrossesWrap(r, d, Plus) != wantPlus || c.CrossesWrap(r, d, Minus) != wantMinus {
				t.Fatalf("node %d dim %d wrap flags wrong", r, d)
			}
		}
	}
}

func TestCubeExactlyOneWrapPerRingDirection(t *testing.T) {
	c := mustCube(t, 8, 2)
	// Walk each ring in the Plus direction: exactly one link crosses the
	// wrap.
	for row := 0; row < c.K; row++ {
		start := c.WithDigit(c.WithDigit(0, 1, row), 0, 0)
		wraps := 0
		x := start
		for i := 0; i < c.K; i++ {
			if c.CrossesWrap(x, 0, Plus) {
				wraps++
			}
			x = c.Neighbor(x, 0, Plus)
		}
		if x != start || wraps != 1 {
			t.Fatalf("ring %d: returned to %d (start %d) with %d wraps", row, x, start, wraps)
		}
	}
}

func TestCubeRingDistance(t *testing.T) {
	c := mustCube(t, 8, 1)
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			d := c.RingDistance(a, b)
			if d != c.RingDistance(b, a) {
				t.Fatalf("ring distance asymmetric at (%d,%d)", a, b)
			}
			if d > 4 {
				t.Fatalf("ring distance %d exceeds k/2", d)
			}
			if (d == 0) != (a == b) {
				t.Fatalf("ring distance zero iff equal violated at (%d,%d)", a, b)
			}
		}
	}
	if c.RingDistance(0, 4) != 4 || c.RingDistance(1, 7) != 2 || c.RingDistance(6, 1) != 3 {
		t.Fatal("ring distance spot checks failed")
	}
}

func TestCubeMinimalDirs(t *testing.T) {
	c := mustCube(t, 8, 2)
	cases := []struct {
		cur, dst, dim       int
		wantPlus, wantMinus bool
	}{
		{0, 3, 0, true, false},        // forward 3 < backward 5
		{0, 5, 0, false, true},        // forward 5 > backward 3
		{0, 4, 0, true, true},         // exact half-way: both minimal
		{0, 0, 0, false, false},       // aligned
		{8 * 2, 8 * 6, 1, true, true}, // dim 1, offset 4 of 8
	}
	for _, tc := range cases {
		plus, minus := c.MinimalDirs(tc.cur, tc.dst, tc.dim)
		if plus != tc.wantPlus || minus != tc.wantMinus {
			t.Errorf("MinimalDirs(%d,%d,dim %d) = (%v,%v), want (%v,%v)",
				tc.cur, tc.dst, tc.dim, plus, minus, tc.wantPlus, tc.wantMinus)
		}
	}
}

func TestCubeMinimalDirsConsistentWithDistance(t *testing.T) {
	// Moving in a minimal direction must reduce the ring distance.
	c := mustCube(t, 7, 2)
	for cur := 0; cur < c.Nodes(); cur += 3 {
		for dst := 0; dst < c.Nodes(); dst += 5 {
			for d := 0; d < c.N; d++ {
				plus, minus := c.MinimalDirs(cur, dst, d)
				base := c.RingDistance(c.Digit(cur, d), c.Digit(dst, d))
				if plus {
					next := c.Neighbor(cur, d, Plus)
					if c.RingDistance(c.Digit(next, d), c.Digit(dst, d)) != base-1 {
						t.Fatalf("plus not minimal at cur=%d dst=%d dim=%d", cur, dst, d)
					}
				}
				if minus {
					next := c.Neighbor(cur, d, Minus)
					if c.RingDistance(c.Digit(next, d), c.Digit(dst, d)) != base-1 {
						t.Fatalf("minus not minimal at cur=%d dst=%d dim=%d", cur, dst, d)
					}
				}
				if !plus && !minus && base != 0 {
					t.Fatalf("no minimal direction despite offset at cur=%d dst=%d dim=%d", cur, dst, d)
				}
			}
		}
	}
}

func TestCubeDeterministicDirTieIsPlus(t *testing.T) {
	c := mustCube(t, 8, 1)
	if c.DeterministicDir(0, 4, 0) != Plus {
		t.Fatal("half-way tie not resolved toward Plus")
	}
	if c.DeterministicDir(0, 5, 0) != Minus {
		t.Fatal("backward-shorter case not Minus")
	}
	if c.DeterministicDir(0, 3, 0) != Plus {
		t.Fatal("forward-shorter case not Plus")
	}
}

func TestCubeDistance(t *testing.T) {
	c := mustCube(t, 16, 2)
	if c.Distance(5, 5) != 0 {
		t.Fatal("self distance not 0")
	}
	// Neighbours: 1 torus hop + injection + ejection.
	if got := c.Distance(0, 1); got != 3 {
		t.Fatalf("neighbour distance %d, want 3", got)
	}
	// Opposite corner: 8+8 torus hops + 2.
	opposite := c.WithDigit(c.WithDigit(0, 0, 8), 1, 8)
	if got := c.Distance(0, opposite); got != 18 {
		t.Fatalf("antipode distance %d, want 18", got)
	}
	for src := 0; src < c.Nodes(); src += 17 {
		for dst := 0; dst < c.Nodes(); dst += 13 {
			if c.Distance(src, dst) != c.Distance(dst, src) {
				t.Fatalf("distance asymmetric at (%d,%d)", src, dst)
			}
		}
	}
}

func TestCubeBisectionLinks(t *testing.T) {
	if got := mustCube(t, 16, 2).BisectionLinks(); got != 32 {
		t.Fatalf("16-ary 2-cube bisection = %d bidirectional links, want 32", got)
	}
	if got := mustCube(t, 8, 3).BisectionLinks(); got != 128 {
		t.Fatalf("8-ary 3-cube bisection = %d, want 128", got)
	}
}

func TestCubeDimDirOf(t *testing.T) {
	c := mustCube(t, 4, 3)
	for d := 0; d < c.N; d++ {
		for _, dir := range []int{Plus, Minus} {
			gd, gdir := c.DimDirOf(PortOf(d, dir))
			if gd != d || gdir != dir {
				t.Fatalf("DimDirOf(PortOf(%d,%d)) = (%d,%d)", d, dir, gd, gdir)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("DimDirOf(node port) did not panic")
		}
	}()
	c.DimDirOf(c.NodePort())
}

func TestPow(t *testing.T) {
	cases := []struct{ b, e, want int }{{2, 0, 1}, {2, 10, 1024}, {4, 4, 256}, {16, 2, 256}, {10, 0, 1}, {0, 3, 0}, {1, 100, 1}}
	for _, tc := range cases {
		got, err := Pow(tc.b, tc.e)
		if err != nil || got != tc.want {
			t.Errorf("Pow(%d,%d) = %d, %v; want %d", tc.b, tc.e, got, err, tc.want)
		}
	}
	if _, err := Pow(2, 80); err == nil {
		t.Error("Pow(2,80) did not report overflow")
	}
	if _, err := Pow(-2, 3); err == nil {
		t.Error("Pow(-2,3) accepted negative base")
	}
	if _, err := Pow(2, -3); err == nil {
		t.Error("Pow(2,-3) accepted negative exponent")
	}
}
