// Package topology builds the two interconnection network families the
// paper compares: k-ary n-cubes (direct networks, §3) and k-ary n-trees
// (indirect fat-trees, §2). Both are exposed through a neutral graph view
// — routers with numbered bidirectional ports, processing nodes attached
// to specific ports — that the wormhole fabric consumes, plus the
// family-specific coordinate and label arithmetic the routing algorithms
// need (ring offsets and wrap-around detection for the cube; levels,
// label digits and nearest-common-ancestor computation for the tree).
package topology

import "fmt"

// PortKind tells what sits on the far side of a router port.
type PortKind uint8

const (
	// PortUnused marks a port with no connection (the up ports of the
	// top-level switches of a k-ary n-tree, which the paper reserves for
	// external connections and leaves idle in the 256-node experiments).
	PortUnused PortKind = iota
	// PortRouter marks a port wired to another router.
	PortRouter
	// PortNode marks a port wired to a processing node (its NIC). The
	// node-to-router direction is the injection channel; router-to-node
	// is the ejection channel.
	PortNode
)

// Port describes one bidirectional connection endpoint of a router.
type Port struct {
	Kind PortKind
	// Peer is the router index (PortRouter) or node index (PortNode).
	Peer int
	// PeerPort is the port index on the peer router; meaningful only for
	// PortRouter.
	PeerPort int
}

// Attach locates a processing node on the fabric: the router and port its
// NIC is wired to.
type Attach struct {
	Router, Port int
}

// Topology is the neutral graph view shared by both network families.
type Topology interface {
	// Name returns a short identifier such as "16-ary 2-cube".
	Name() string
	// Routers returns the number of routing switches.
	Routers() int
	// Nodes returns the number of processing nodes.
	Nodes() int
	// Degree returns the number of ports per router (uniform within a
	// family: 2n+1 for the cube including the node port, 2k for the tree).
	Degree() int
	// RouterPorts returns the port table of router r. The returned slice
	// must not be modified.
	RouterPorts(r int) []Port
	// NodeAttach returns where node i plugs into the fabric.
	NodeAttach(node int) Attach
	// Distance returns the number of physical link traversals on a
	// minimal path from the source NIC to the destination NIC, including
	// the injection and ejection links, and 0 when src == dst (such
	// packets never enter the network, matching the paper's treatment of
	// palindrome nodes under bit-reversal traffic).
	Distance(src, dst int) int
}

// Pow returns base**exp for small non-negative integers, guarding against
// overflow; topology sizes are products of small parameters and must stay
// well inside the int range.
func Pow(base, exp int) (int, error) {
	if base < 0 || exp < 0 {
		return 0, fmt.Errorf("topology: Pow(%d, %d) with negative argument", base, exp)
	}
	result := 1
	for i := 0; i < exp; i++ {
		if base != 0 && result > (1<<40)/base {
			return 0, fmt.Errorf("topology: Pow(%d, %d) overflows the supported size range", base, exp)
		}
		result *= base
	}
	return result, nil
}

// FlattenPorts copies every router's port table into one contiguous
// slice of length Routers()*Degree(), indexed by r*Degree()+p. The
// wormhole fabric caches it at construction so its per-cycle inner loops
// index a flat array instead of calling back through the Topology
// interface.
func FlattenPorts(t Topology) []Port {
	deg := t.Degree()
	flat := make([]Port, t.Routers()*deg)
	for r := 0; r < t.Routers(); r++ {
		copy(flat[r*deg:(r+1)*deg], t.RouterPorts(r))
	}
	return flat
}

// Validate checks that a topology's port tables are mutually consistent:
// every router-to-router port is matched by a reciprocal port on the peer,
// and every node attachment points at a PortNode port that names the node
// back. Tests use it as a structural invariant on every constructed size.
func Validate(t Topology) error {
	for r := 0; r < t.Routers(); r++ {
		ports := t.RouterPorts(r)
		if len(ports) != t.Degree() {
			return fmt.Errorf("topology %s: router %d has %d ports, want degree %d", t.Name(), r, len(ports), t.Degree())
		}
		for p, port := range ports {
			switch port.Kind {
			case PortUnused:
			case PortRouter:
				if port.Peer < 0 || port.Peer >= t.Routers() {
					return fmt.Errorf("topology %s: router %d port %d names invalid peer %d", t.Name(), r, p, port.Peer)
				}
				back := t.RouterPorts(port.Peer)[port.PeerPort]
				if back.Kind != PortRouter || back.Peer != r || back.PeerPort != p {
					return fmt.Errorf("topology %s: router %d port %d is not reciprocated by router %d port %d", t.Name(), r, p, port.Peer, port.PeerPort)
				}
			case PortNode:
				if port.Peer < 0 || port.Peer >= t.Nodes() {
					return fmt.Errorf("topology %s: router %d port %d names invalid node %d", t.Name(), r, p, port.Peer)
				}
				at := t.NodeAttach(port.Peer)
				if at.Router != r || at.Port != p {
					return fmt.Errorf("topology %s: node %d attach (%d,%d) disagrees with router %d port %d", t.Name(), port.Peer, at.Router, at.Port, r, p)
				}
			default:
				return fmt.Errorf("topology %s: router %d port %d has unknown kind %d", t.Name(), r, p, port.Kind)
			}
		}
	}
	for nd := 0; nd < t.Nodes(); nd++ {
		at := t.NodeAttach(nd)
		if at.Router < 0 || at.Router >= t.Routers() {
			return fmt.Errorf("topology %s: node %d attaches to invalid router %d", t.Name(), nd, at.Router)
		}
		port := t.RouterPorts(at.Router)[at.Port]
		if port.Kind != PortNode || port.Peer != nd {
			return fmt.Errorf("topology %s: node %d attach not reciprocated at router %d port %d", t.Name(), nd, at.Router, at.Port)
		}
	}
	return nil
}
