package topology

import "fmt"

// Partitioner is implemented by topologies that can cut their router
// index range into contiguous shards along structural boundaries, so a
// sharded fabric engine crosses shards on as few links as possible.
// PartitionRouters returns cuts+1 ascending points over [0, Routers()]:
// shard i owns routers [cuts[i], cuts[i+1]). Implementations clamp the
// requested count to [1, Routers()] rather than emit empty shards —
// callers derive the effective count from len(cuts)-1 and check the
// plan with ValidateCuts, which rejects empty shards outright.
type Partitioner interface {
	PartitionRouters(shards int) []int
}

// clampShards bounds a requested shard count to what the router range
// can populate: at least one shard, at most one router per shard. A
// single-router (or degenerate zero-router) topology always collapses
// to one shard.
func clampShards(routers, shards int) int {
	if shards < 1 || routers < 1 {
		return 1
	}
	if shards > routers {
		return routers
	}
	return shards
}

// EvenCuts is the structure-blind fallback partition: contiguous router
// ranges of near-equal size. The shard count is clamped to
// [1, routers], so no shard is ever empty.
func EvenCuts(routers, shards int) []int {
	shards = clampShards(routers, shards)
	cuts := make([]int, shards+1)
	for i := 0; i <= shards; i++ {
		cuts[i] = i * routers / shards
	}
	return cuts
}

// alignedCuts spreads routers over shards with every cut snapped to a
// multiple of grain, keeping cuts ascending and covering [0, routers].
// grain must divide routers.
func alignedCuts(routers, shards, grain int) []int {
	blocks := routers / grain
	cuts := make([]int, shards+1)
	for i := 0; i <= shards; i++ {
		cuts[i] = (i * blocks / shards) * grain
	}
	cuts[shards] = routers
	return cuts
}

// partitionGrain picks the largest structural block size (a power of k
// dividing blockMax) that still allows about one block per shard, so
// cuts land on structural boundaries whenever the shard count permits.
func partitionGrain(routers, shards, blockMax, k int) int {
	grain := blockMax
	for grain > 1 && routers/grain < shards {
		grain /= k
	}
	return grain
}

// PartitionRouters implements Partitioner for the cube: shards are
// slabs of whole (n-1)-dimensional planes along the highest dimension
// (the router layout is digit-major, so a plane is a contiguous index
// range and only the two slab faces carry cross-shard links). When
// there are more shards than planes the slabs subdivide along the next
// dimension down.
func (c *Cube) PartitionRouters(shards int) []int {
	shards = clampShards(c.nodes, shards)
	grain := partitionGrain(c.nodes, shards, c.nodes/c.K, c.K)
	return alignedCuts(c.nodes, shards, grain)
}

// PartitionRouters implements Partitioner for the tree. Switch indices
// are level-major (level l occupies [l*spl, (l+1)*spl)), so contiguous
// shards cannot hold whole subtrees; instead the cuts snap to label
// blocks of size k^floor(log_k(spl/shards)) within each level — sibling
// groups that share parents — which keeps most up/down links inside a
// shard when the shard count is small relative to the arity.
func (t *Tree) PartitionRouters(shards int) []int {
	shards = clampShards(t.Routers(), shards)
	grain := partitionGrain(t.Routers(), shards, t.spl, t.K)
	return alignedCuts(t.Routers(), shards, grain)
}

// ValidateCuts checks that cuts is a well-formed shard plan over
// [0, routers]: shards+1 strictly ascending values from 0 to routers.
// An empty shard (two equal cut points) is rejected — a partitioner
// that cannot divide further must clamp its shard count, not pad the
// plan, because an empty shard owns no work lists yet still costs a
// pool worker and a mailbox row.
func ValidateCuts(cuts []int, routers, shards int) error {
	if len(cuts) != shards+1 {
		return fmt.Errorf("topology: partition has %d cut points, want %d", len(cuts), shards+1)
	}
	if cuts[0] != 0 || cuts[shards] != routers {
		return fmt.Errorf("topology: partition spans [%d, %d], want [0, %d]", cuts[0], cuts[shards], routers)
	}
	for i := 0; i < shards; i++ {
		if cuts[i] > cuts[i+1] {
			return fmt.Errorf("topology: partition cuts %d and %d out of order (%d > %d)", i, i+1, cuts[i], cuts[i+1])
		}
		if cuts[i] == cuts[i+1] {
			return fmt.Errorf("topology: partition shard %d is empty (cut %d repeated): clamp the shard count instead", i, cuts[i])
		}
	}
	return nil
}
