package topology

import "fmt"

// Partitioner is implemented by topologies that can cut their router
// index range into contiguous shards along structural boundaries, so a
// sharded fabric engine crosses shards on as few links as possible.
// PartitionRouters returns shards+1 ascending cut points over
// [0, Routers()]: shard i owns routers [cuts[i], cuts[i+1]). Cuts may
// produce empty shards when the structure cannot be divided further.
type Partitioner interface {
	PartitionRouters(shards int) []int
}

// EvenCuts is the structure-blind fallback partition: shards contiguous
// router ranges of near-equal size.
func EvenCuts(routers, shards int) []int {
	if shards < 1 {
		shards = 1
	}
	cuts := make([]int, shards+1)
	for i := 0; i <= shards; i++ {
		cuts[i] = i * routers / shards
	}
	return cuts
}

// alignedCuts spreads routers over shards with every cut snapped to a
// multiple of grain, keeping cuts ascending and covering [0, routers].
// grain must divide routers.
func alignedCuts(routers, shards, grain int) []int {
	blocks := routers / grain
	cuts := make([]int, shards+1)
	for i := 0; i <= shards; i++ {
		cuts[i] = (i * blocks / shards) * grain
	}
	cuts[shards] = routers
	return cuts
}

// partitionGrain picks the largest structural block size (a power of k
// dividing blockMax) that still allows about one block per shard, so
// cuts land on structural boundaries whenever the shard count permits.
func partitionGrain(routers, shards, blockMax, k int) int {
	grain := blockMax
	for grain > 1 && routers/grain < shards {
		grain /= k
	}
	return grain
}

// PartitionRouters implements Partitioner for the cube: shards are
// slabs of whole (n-1)-dimensional planes along the highest dimension
// (the router layout is digit-major, so a plane is a contiguous index
// range and only the two slab faces carry cross-shard links). When
// there are more shards than planes the slabs subdivide along the next
// dimension down.
func (c *Cube) PartitionRouters(shards int) []int {
	grain := partitionGrain(c.nodes, shards, c.nodes/c.K, c.K)
	return alignedCuts(c.nodes, shards, grain)
}

// PartitionRouters implements Partitioner for the tree. Switch indices
// are level-major (level l occupies [l*spl, (l+1)*spl)), so contiguous
// shards cannot hold whole subtrees; instead the cuts snap to label
// blocks of size k^floor(log_k(spl/shards)) within each level — sibling
// groups that share parents — which keeps most up/down links inside a
// shard when the shard count is small relative to the arity.
func (t *Tree) PartitionRouters(shards int) []int {
	grain := partitionGrain(t.Routers(), shards, t.spl, t.K)
	return alignedCuts(t.Routers(), shards, grain)
}

// ValidateCuts checks that cuts is a well-formed shard plan over
// [0, routers]: shards+1 ascending values from 0 to routers.
func ValidateCuts(cuts []int, routers, shards int) error {
	if len(cuts) != shards+1 {
		return fmt.Errorf("topology: partition has %d cut points, want %d", len(cuts), shards+1)
	}
	if cuts[0] != 0 || cuts[shards] != routers {
		return fmt.Errorf("topology: partition spans [%d, %d], want [0, %d]", cuts[0], cuts[shards], routers)
	}
	for i := 0; i < shards; i++ {
		if cuts[i] > cuts[i+1] {
			return fmt.Errorf("topology: partition cuts %d and %d out of order (%d > %d)", i, i+1, cuts[i], cuts[i+1])
		}
	}
	return nil
}
