package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func mustTree(t *testing.T, k, n int) *Tree {
	t.Helper()
	tr, err := NewTree(k, n)
	if err != nil {
		t.Fatalf("NewTree(%d,%d): %v", k, n, err)
	}
	return tr
}

func TestNewTreeRejectsBadParams(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{1, 2}, {0, 2}, {-2, 2}, {4, 0}, {4, -1}} {
		if _, err := NewTree(tc.k, tc.n); err == nil {
			t.Errorf("NewTree(%d,%d) accepted invalid parameters", tc.k, tc.n)
		}
	}
}

func TestTreeSizes(t *testing.T) {
	for _, tc := range []struct{ k, n, nodes, switches int }{
		{2, 1, 2, 1}, {2, 2, 4, 4}, {2, 3, 8, 12}, {4, 2, 16, 8}, {4, 4, 256, 256}, {3, 3, 27, 27},
	} {
		tr := mustTree(t, tc.k, tc.n)
		if tr.Nodes() != tc.nodes {
			t.Errorf("%s: %d nodes, want %d", tr.Name(), tr.Nodes(), tc.nodes)
		}
		if tr.Routers() != tc.switches {
			t.Errorf("%s: %d switches, want %d (n*k^(n-1))", tr.Name(), tr.Routers(), tc.switches)
		}
		if tr.Degree() != 2*tc.k {
			t.Errorf("%s: degree %d, want %d", tr.Name(), tr.Degree(), 2*tc.k)
		}
	}
}

func TestTreeValidate(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{2, 2}, {2, 4}, {3, 2}, {4, 2}, {4, 3}, {4, 4}} {
		if err := Validate(mustTree(t, tc.k, tc.n)); err != nil {
			t.Errorf("tree(%d,%d): %v", tc.k, tc.n, err)
		}
	}
}

func TestTreeName(t *testing.T) {
	if got := mustTree(t, 4, 4).Name(); got != "4-ary 4-tree" {
		t.Fatalf("Name() = %q", got)
	}
}

func TestTreeLinkInventory(t *testing.T) {
	// The paper counts n*k^n links: k^n node links plus (n-1)*k^n
	// inter-switch links; the top-level external connections are unused.
	tr := mustTree(t, 4, 4)
	var nodeLinks, switchLinks, unused int
	for r := 0; r < tr.Routers(); r++ {
		for _, p := range tr.RouterPorts(r) {
			switch p.Kind {
			case PortNode:
				nodeLinks++
			case PortRouter:
				switchLinks++
			case PortUnused:
				unused++
			}
		}
	}
	switchLinks /= 2 // each inter-switch link seen from both ends
	if nodeLinks != 256 {
		t.Errorf("node links = %d, want 256", nodeLinks)
	}
	if switchLinks != 3*256 {
		t.Errorf("inter-switch links = %d, want 768", switchLinks)
	}
	if total := nodeLinks + switchLinks; total != tr.N*tr.Nodes() {
		t.Errorf("total links = %d, want n*k^n = %d", total, tr.N*tr.Nodes())
	}
	if unused != 256 {
		t.Errorf("unused (external) ports = %d, want k^n = 256", unused)
	}
}

func TestTreeTopLevelUpPortsUnused(t *testing.T) {
	tr := mustTree(t, 4, 3)
	for label := 0; label < tr.Nodes()/tr.K; label++ {
		sw := tr.SwitchIndex(tr.N-1, label)
		for j := 0; j < tr.K; j++ {
			if p := tr.RouterPorts(sw)[tr.UpPort(j)]; p.Kind != PortUnused {
				t.Fatalf("top switch %d up port %d is %v, want unused", sw, j, p)
			}
		}
	}
}

func TestTreeLevelLabelRoundTrip(t *testing.T) {
	tr := mustTree(t, 4, 4)
	for level := 0; level < tr.N; level++ {
		for label := 0; label < tr.Nodes()/tr.K; label++ {
			sw := tr.SwitchIndex(level, label)
			if tr.SwitchLevel(sw) != level || tr.SwitchLabel(sw) != label {
				t.Fatalf("switch (%d,%d) round-trips to (%d,%d)", level, label, tr.SwitchLevel(sw), tr.SwitchLabel(sw))
			}
		}
	}
}

func TestTreeAttachment(t *testing.T) {
	tr := mustTree(t, 4, 2)
	for nd := 0; nd < tr.Nodes(); nd++ {
		at := tr.NodeAttach(nd)
		if tr.SwitchLevel(at.Router) != 0 {
			t.Fatalf("node %d attaches at level %d", nd, tr.SwitchLevel(at.Router))
		}
		if tr.SwitchLabel(at.Router) != nd/tr.K || at.Port != nd%tr.K {
			t.Fatalf("node %d attaches at (label %d, port %d)", nd, tr.SwitchLabel(at.Router), at.Port)
		}
	}
}

func TestTreeParentChildDifferOnlyInFreedDigit(t *testing.T) {
	tr := mustTree(t, 4, 4)
	for sw := 0; sw < tr.Routers(); sw++ {
		level := tr.SwitchLevel(sw)
		if level == tr.N-1 {
			continue
		}
		for j := 0; j < tr.K; j++ {
			p := tr.RouterPorts(sw)[tr.UpPort(j)]
			if p.Kind != PortRouter {
				t.Fatalf("switch %d up port %d not wired", sw, j)
			}
			if tr.SwitchLevel(p.Peer) != level+1 {
				t.Fatalf("switch %d (level %d) parent at level %d", sw, level, tr.SwitchLevel(p.Peer))
			}
			a, b := tr.SwitchLabel(sw), tr.SwitchLabel(p.Peer)
			for i := 0; i < tr.N-1; i++ {
				da, db := tr.labelDigit(a, i), tr.labelDigit(b, i)
				if i == level {
					if db != j {
						t.Fatalf("parent digit %d = %d, want up port %d", i, db, j)
					}
				} else if da != db {
					t.Fatalf("switch %d parent differs at digit %d != level %d", sw, i, level)
				}
			}
		}
	}
}

func TestTreeNCALevel(t *testing.T) {
	tr := mustTree(t, 4, 4)
	if tr.NCALevel(5, 5) != -1 {
		t.Fatal("NCA of a node with itself should be -1")
	}
	// Differ only in digit 0 -> NCA at level 0.
	if got := tr.NCALevel(0, 3); got != 0 {
		t.Fatalf("NCALevel(0,3) = %d, want 0", got)
	}
	// Differ in the top digit -> NCA at the root level.
	if got := tr.NCALevel(0, 192); got != 3 {
		t.Fatalf("NCALevel(0,192) = %d, want 3", got)
	}
	check := func(a, b uint16) bool {
		src, dst := int(a)%256, int(b)%256
		got := tr.NCALevel(src, dst)
		if got != tr.NCALevel(dst, src) {
			return false
		}
		want := -1
		for i := 0; i < 4; i++ {
			if tr.Digit(src, i) != tr.Digit(dst, i) {
				want = i
			}
		}
		return got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeIsAncestor(t *testing.T) {
	tr := mustTree(t, 4, 3)
	for nd := 0; nd < tr.Nodes(); nd += 5 {
		// The attached level-0 switch is an ancestor; so is the chain of
		// switches reached by following the destination's down ports
		// upward.
		at := tr.NodeAttach(nd)
		if !tr.IsAncestor(at.Router, nd) {
			t.Fatalf("attach switch of %d not its ancestor", nd)
		}
		// All top-level switches are ancestors of every node.
		for label := 0; label < tr.Nodes()/tr.K; label++ {
			root := tr.SwitchIndex(tr.N-1, label)
			if !tr.IsAncestor(root, nd) {
				t.Fatalf("root %d not ancestor of %d", label, nd)
			}
		}
	}
	// A level-0 switch is an ancestor only of its own k leaves.
	count := 0
	sw := tr.SwitchIndex(0, 7)
	for nd := 0; nd < tr.Nodes(); nd++ {
		if tr.IsAncestor(sw, nd) {
			count++
			if nd/tr.K != 7 {
				t.Fatalf("level-0 switch 7 claims ancestry of node %d", nd)
			}
		}
	}
	if count != tr.K {
		t.Fatalf("level-0 switch is ancestor of %d nodes, want %d", count, tr.K)
	}
}

func TestTreeAncestorCountsByLevel(t *testing.T) {
	// A switch at level l is the ancestor of exactly k^(l+1) leaves (the
	// dual of the paper's k^m nearest common ancestors at level m).
	tr := mustTree(t, 4, 3)
	for level := 0; level < tr.N; level++ {
		sw := tr.SwitchIndex(level, 0)
		count := 0
		for nd := 0; nd < tr.Nodes(); nd++ {
			if tr.IsAncestor(sw, nd) {
				count++
			}
		}
		want := 1
		for i := 0; i <= level; i++ {
			want *= tr.K
		}
		if count != want {
			t.Fatalf("level-%d switch is ancestor of %d leaves, want %d", level, count, want)
		}
	}
}

func TestTreeDownPortDescendsTowardDestination(t *testing.T) {
	tr := mustTree(t, 4, 3)
	// From any root, following DownPortTo must reach the destination.
	for dst := 0; dst < tr.Nodes(); dst += 3 {
		sw := tr.SwitchIndex(tr.N-1, 0)
		// Move to a root that is an ancestor (all roots are).
		for level := tr.N - 1; level > 0; level-- {
			port := tr.DownPortTo(level, dst)
			p := tr.RouterPorts(sw)[port]
			if p.Kind != PortRouter {
				t.Fatalf("descent from level %d hit non-router port", level)
			}
			sw = p.Peer
			if !tr.IsAncestor(sw, dst) {
				t.Fatalf("descent lost ancestry of %d at level %d", dst, tr.SwitchLevel(sw))
			}
		}
		port := tr.DownPortTo(0, dst)
		p := tr.RouterPorts(sw)[port]
		if p.Kind != PortNode || p.Peer != dst {
			t.Fatalf("final descent for %d reached %v", dst, p)
		}
	}
}

func TestTreeDistance(t *testing.T) {
	tr := mustTree(t, 4, 4)
	if tr.Distance(9, 9) != 0 {
		t.Fatal("self distance not 0")
	}
	// Same level-0 switch: 2 links.
	if got := tr.Distance(0, 1); got != 2 {
		t.Fatalf("sibling distance %d, want 2", got)
	}
	// Top-digit difference: 2*(3+1) = 8 links.
	if got := tr.Distance(0, 192); got != 8 {
		t.Fatalf("cross-root distance %d, want 8", got)
	}
	for src := 0; src < 256; src += 11 {
		for dst := 0; dst < 256; dst += 7 {
			if tr.Distance(src, dst) != tr.Distance(dst, src) {
				t.Fatalf("asymmetric at (%d,%d)", src, dst)
			}
			if d := tr.Distance(src, dst); d != 0 && d != 2*(tr.NCALevel(src, dst)+1) {
				t.Fatalf("distance %d inconsistent with NCA at (%d,%d)", d, src, dst)
			}
		}
	}
}

// TestMeanDistanceEq5 verifies Equation 5 of the paper: the analytic mean
// distance of the transpose and bit-reversal permutations on a 4-ary
// 4-tree is 7.125, "very close to the network diameter", and the formula
// agrees with the empirical mean over all sources.
func TestMeanDistanceEq5(t *testing.T) {
	tr := mustTree(t, 4, 4)
	if got := tr.MeanPermutationDistance(); math.Abs(got-7.125) > 1e-12 {
		t.Fatalf("Eq 5 mean distance = %v, want 7.125", got)
	}
	// Empirical check against the actual transpose permutation (swap the
	// two halves of the 8-bit address).
	sum := 0.0
	for src := 0; src < 256; src++ {
		dst := (src >> 4) | (src&0xf)<<4
		sum += float64(tr.Distance(src, dst))
	}
	if got := sum / 256; math.Abs(got-7.125) > 1e-12 {
		t.Fatalf("empirical transpose mean distance = %v, want 7.125", got)
	}
	// And bit reversal has the same distance distribution (§8.1).
	sum = 0
	for src := 0; src < 256; src++ {
		dst := 0
		for b := 0; b < 8; b++ {
			dst |= (src >> b & 1) << (7 - b)
		}
		sum += float64(tr.Distance(src, dst))
	}
	if got := sum / 256; math.Abs(got-7.125) > 1e-12 {
		t.Fatalf("empirical bit-reversal mean distance = %v, want 7.125", got)
	}
}

// TestTreeTransposeDistanceDistribution checks the paper's §8.1 counts:
// k^(n/2) nodes at distance 0 and (k-1)*k^(n/2+i-1) at distance n+2i.
func TestTreeTransposeDistanceDistribution(t *testing.T) {
	tr := mustTree(t, 4, 4)
	counts := map[int]int{}
	for src := 0; src < 256; src++ {
		dst := (src >> 4) | (src&0xf)<<4
		counts[tr.Distance(src, dst)]++
	}
	want := map[int]int{0: 16, 6: 48, 8: 192}
	for d, c := range want {
		if counts[d] != c {
			t.Errorf("distance %d: %d nodes, want %d", d, counts[d], c)
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 256 || len(counts) != len(want) {
		t.Errorf("distance histogram %v, want %v", counts, want)
	}
}

func TestTreeMeanPermutationDistanceOddPanics(t *testing.T) {
	tr := mustTree(t, 4, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("MeanPermutationDistance with odd n did not panic")
		}
	}()
	tr.MeanPermutationDistance()
}

func TestTreeIsUpPort(t *testing.T) {
	tr := mustTree(t, 4, 2)
	for p := 0; p < tr.K; p++ {
		if tr.IsUpPort(p) {
			t.Fatalf("down port %d classified as up", p)
		}
	}
	for j := 0; j < tr.K; j++ {
		if !tr.IsUpPort(tr.UpPort(j)) {
			t.Fatalf("up port %d classified as down", tr.UpPort(j))
		}
	}
}
