package topology

import "testing"

// Radix 2 is the smallest legal radix and a structural corner: on a
// 2-ary ring every node's Plus and Minus neighbor are the same node (two
// parallel links to the same peer, one of which is the wrap), minimal
// direction choices are never unique-by-shorter-side, and the 2-ary tree
// collapses each switch level to a single bit. These tests pin that the
// constructors, wiring and metrics all survive the corner.

func TestRadixTwoCube(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		c, err := NewCube(2, n)
		if err != nil {
			t.Fatalf("NewCube(2,%d): %v", n, err)
		}
		if err := Validate(c); err != nil {
			t.Fatalf("cube(2,%d) wiring: %v", n, err)
		}
		want, err := Pow(2, n)
		if err != nil {
			t.Fatal(err)
		}
		if c.Nodes() != want {
			t.Fatalf("cube(2,%d) has %d nodes, want %d", n, c.Nodes(), want)
		}
		for x := 0; x < c.Nodes(); x++ {
			for d := 0; d < n; d++ {
				plus, minus := c.Neighbor(x, d, Plus), c.Neighbor(x, d, Minus)
				if plus != minus {
					t.Fatalf("cube(2,%d): node %d dim %d has distinct plus/minus neighbors %d, %d", n, x, d, plus, minus)
				}
				if c.RingDistance(c.Digit(x, d), c.Digit(plus, d)) != 1 {
					t.Fatalf("cube(2,%d): neighbor not at ring distance 1", n)
				}
			}
		}
		// The antipode differs in every digit: n ring hops, plus the
		// injection and ejection links of the NIC-to-NIC convention.
		if got := c.Distance(0, c.Nodes()-1); got != n+2 {
			t.Fatalf("cube(2,%d) antipodal distance %d, want %d", n, got, n+2)
		}
	}
}

func TestRadixTwoMesh(t *testing.T) {
	m, err := NewMesh(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(m); err != nil {
		t.Fatal(err)
	}
	// Without wrap links the 2-ary ring is a single edge; distances are
	// Manhattan on the unit square plus the two NIC links.
	if got := m.Distance(0, 3); got != 4 {
		t.Fatalf("mesh(2,2) corner distance %d, want 4", got)
	}
	for x := 0; x < m.Nodes(); x++ {
		for d := 0; d < 2; d++ {
			for dir := 0; dir < 2; dir++ {
				if m.CrossesWrap(x, d, dir) {
					t.Fatalf("mesh reports a wrap crossing at node %d", x)
				}
			}
		}
	}
}

func TestRadixTwoTree(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		tr, err := NewTree(2, n)
		if err != nil {
			t.Fatalf("NewTree(2,%d): %v", n, err)
		}
		if err := Validate(tr); err != nil {
			t.Fatalf("tree(2,%d) wiring: %v", n, err)
		}
		want, err := Pow(2, n)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Nodes() != want {
			t.Fatalf("tree(2,%d) has %d nodes, want %d", n, tr.Nodes(), want)
		}
		// Complementary leaves meet at the top level (NCA level n-1):
		// distance 2n. Siblings meet at level 0: distance 2. For n=1 the
		// two coincide — the whole tree is one switch.
		if far := tr.Distance(0, tr.Nodes()-1); far != 2*n {
			t.Fatalf("tree(2,%d): antipodal distance %d, want %d", n, far, 2*n)
		}
		if near := tr.Distance(0, 1); near != 2 {
			t.Fatalf("tree(2,%d): sibling distance %d, want 2", n, near)
		}
		for x := 1; x < tr.Nodes(); x++ {
			if d := tr.Distance(0, x); d < 2 || d > 2*n {
				t.Fatalf("tree(2,%d): distance to %d is %d, outside [2, %d]", n, x, d, 2*n)
			}
		}
	}
}
