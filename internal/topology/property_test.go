package topology

import (
	"testing"
	"testing/quick"
)

// TestRandomSizesValidate builds random small instances of every family
// and runs the structural validator — reciprocal wiring, consistent
// attachments — over each.
func TestRandomSizesValidate(t *testing.T) {
	check := func(kRaw, nRaw uint8) bool {
		k := int(kRaw)%4 + 2 // 2..5
		n := int(nRaw)%3 + 1 // 1..3
		cube, err := NewCube(k, n)
		if err != nil || Validate(cube) != nil {
			return false
		}
		mesh, err := NewMesh(k, n)
		if err != nil || Validate(mesh) != nil {
			return false
		}
		tree, err := NewTree(k, n)
		if err != nil || Validate(tree) != nil {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDistanceMetricProperties: for every family, Distance is symmetric,
// zero exactly on the diagonal, and satisfies the triangle inequality
// (all three are genuine metric axioms for minimal-path distances).
func TestDistanceMetricProperties(t *testing.T) {
	tops := []Topology{}
	if c, err := NewCube(4, 2); err == nil {
		tops = append(tops, c)
	}
	if m, err := NewMesh(4, 2); err == nil {
		tops = append(tops, m)
	}
	if tr, err := NewTree(4, 2); err == nil {
		tops = append(tops, tr)
	}
	for _, top := range tops {
		n := top.Nodes()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				dab := top.Distance(a, b)
				if dab != top.Distance(b, a) {
					t.Fatalf("%s: asymmetric at (%d,%d)", top.Name(), a, b)
				}
				if (dab == 0) != (a == b) {
					t.Fatalf("%s: identity axiom broken at (%d,%d)", top.Name(), a, b)
				}
			}
		}
		// Triangle inequality on a sample (cubic scan is too slow).
		for a := 0; a < n; a += 3 {
			for b := 0; b < n; b += 5 {
				for c := 0; c < n; c += 7 {
					// NIC-to-NIC distances include injection/ejection at
					// both ends, so relaying through c adds up to 2
					// extra link traversals.
					if top.Distance(a, b) > top.Distance(a, c)+top.Distance(c, b) {
						t.Fatalf("%s: triangle inequality broken at (%d,%d,%d)", top.Name(), a, b, c)
					}
				}
			}
		}
	}
}

// TestTreeSwitchCountFormula: n * k^(n-1) switches for random sizes.
func TestTreeSwitchCountFormula(t *testing.T) {
	check := func(kRaw, nRaw uint8) bool {
		k := int(kRaw)%4 + 2
		n := int(nRaw)%4 + 1
		tree, err := NewTree(k, n)
		if err != nil {
			return false
		}
		want, err := Pow(k, n-1)
		if err != nil {
			return false
		}
		return tree.Routers() == n*want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCubeDistanceUpperBound: the torus diameter is n*floor(k/2) hops; no
// NIC-to-NIC distance exceeds it plus the two node links.
func TestCubeDistanceUpperBound(t *testing.T) {
	cube := mustCube(t, 5, 2)
	diameter := 2*2 + 2
	for a := 0; a < cube.Nodes(); a++ {
		for b := 0; b < cube.Nodes(); b++ {
			if cube.Distance(a, b) > diameter {
				t.Fatalf("distance(%d,%d) = %d exceeds diameter bound %d", a, b, cube.Distance(a, b), diameter)
			}
		}
	}
}
