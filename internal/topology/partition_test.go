package topology

import "testing"

func TestShardEvenCuts(t *testing.T) {
	for _, tc := range []struct{ routers, shards, want int }{
		{16, 1, 1}, {16, 4, 4}, {17, 4, 4}, {100, 7, 7},
		// Requests the range cannot populate clamp instead of padding
		// the plan with empty shards.
		{3, 8, 3}, {1, 4, 1}, {1, 1, 1}, {5, 0, 1}, {5, -2, 1},
	} {
		cuts := EvenCuts(tc.routers, tc.shards)
		if got := len(cuts) - 1; got != tc.want {
			t.Fatalf("EvenCuts(%d, %d) = %v: effective shards %d, want %d", tc.routers, tc.shards, cuts, got, tc.want)
		}
		if err := ValidateCuts(cuts, tc.routers, tc.want); err != nil {
			t.Fatalf("EvenCuts(%d, %d) = %v: %v", tc.routers, tc.shards, cuts, err)
		}
		// Near-equal: no shard more than one router larger than another.
		lo, hi := tc.routers, 0
		for i := 0; i < tc.want; i++ {
			n := cuts[i+1] - cuts[i]
			if n < lo {
				lo = n
			}
			if n > hi {
				hi = n
			}
		}
		if hi-lo > 1 {
			t.Fatalf("EvenCuts(%d, %d) = %v: shard sizes range [%d, %d]", tc.routers, tc.shards, cuts, lo, hi)
		}
	}
}

// TestShardCubePartitionPlanes checks the torus plan: with shards
// dividing K, every cut lands on a whole (n-1)-dimensional plane of the
// digit-major layout.
func TestShardCubePartitionPlanes(t *testing.T) {
	c, err := NewCube(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	plane := c.Routers() / c.K // 64 routers per top-dimension plane
	for _, shards := range []int{2, 4, 8} {
		cuts := c.PartitionRouters(shards)
		if err := ValidateCuts(cuts, c.Routers(), shards); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for i := 1; i < shards; i++ {
			if cuts[i]%plane != 0 {
				t.Fatalf("shards=%d: cut %d at %d is not plane-aligned (plane %d)", shards, i, cuts[i], plane)
			}
		}
	}
	// More shards than planes: cuts must still be valid, now subdividing
	// planes.
	cuts := c.PartitionRouters(16)
	if err := ValidateCuts(cuts, c.Routers(), 16); err != nil {
		t.Fatal(err)
	}
}

// TestShardTreePartitionLabelBlocks checks the tree plan: cuts snap to
// sibling-group label blocks within each level.
func TestShardTreePartitionLabelBlocks(t *testing.T) {
	tr, err := NewTree(4, 3) // 64 nodes, spl=16, 48 switches
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 4, 6} {
		cuts := tr.PartitionRouters(shards)
		if err := ValidateCuts(cuts, tr.Routers(), shards); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		// With at most spl/k shards, the grain is at least one sibling
		// group (k switches), so every cut is a multiple of k.
		if shards <= 4 {
			for i := 1; i < shards; i++ {
				if cuts[i]%tr.K != 0 {
					t.Fatalf("shards=%d: cut %d at %d not aligned to sibling groups of %d", shards, i, cuts[i], tr.K)
				}
			}
		}
	}
}

func TestShardValidateCutsRejectsMalformed(t *testing.T) {
	if err := ValidateCuts([]int{0, 4, 8}, 8, 3); err == nil {
		t.Fatal("wrong cut count accepted")
	}
	if err := ValidateCuts([]int{1, 4, 8}, 8, 2); err == nil {
		t.Fatal("plan not starting at 0 accepted")
	}
	if err := ValidateCuts([]int{0, 4, 7}, 8, 2); err == nil {
		t.Fatal("plan not covering all routers accepted")
	}
	if err := ValidateCuts([]int{0, 5, 4, 8}, 8, 3); err == nil {
		t.Fatal("descending cuts accepted")
	}
	if err := ValidateCuts([]int{0, 4, 4, 8}, 8, 3); err == nil {
		t.Fatal("empty shard accepted")
	}
	if err := ValidateCuts([]int{0, 1, 2, 3}, 3, 3); err != nil {
		t.Fatalf("one-router shards rejected: %v", err)
	}
}

// TestShardPartitionClamps proves both structural partitioners clamp
// oversubscribed requests to plans ValidateCuts accepts, down to the
// single-router degenerate case.
func TestShardPartitionClamps(t *testing.T) {
	c, err := NewCube(2, 2) // 4 routers
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTree(2, 2) // 4 nodes, 4 switches
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []struct {
		name    string
		routers int
		part    Partitioner
	}{
		{"cube", c.Routers(), c}, {"tree", tr.Routers(), tr},
	} {
		for _, shards := range []int{1, 2, p.routers, p.routers + 1, 10 * p.routers} {
			cuts := p.part.PartitionRouters(shards)
			eff := len(cuts) - 1
			if eff > p.routers || eff > shards && shards >= 1 {
				t.Fatalf("%s: PartitionRouters(%d) = %v: effective %d exceeds bounds", p.name, shards, cuts, eff)
			}
			if err := ValidateCuts(cuts, p.routers, eff); err != nil {
				t.Fatalf("%s: PartitionRouters(%d) = %v: %v", p.name, shards, cuts, err)
			}
		}
	}
}
