package resilience

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smart/internal/obs"
)

func TestRunPassesThroughResults(t *testing.T) {
	if err := Run(func() error { return nil }); err != nil {
		t.Fatalf("Run(nil-returning fn) = %v", err)
	}
	sentinel := errors.New("boom")
	if err := Run(func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("Run did not pass the error through: %v", err)
	}
}

func TestRunCapturesPanicValueAndStack(t *testing.T) {
	err := Run(func() error { panic("lane table overflow") })
	if err == nil {
		t.Fatal("panic escaped Run as a nil error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run returned %T, want *PanicError", err)
	}
	if pe.Value != "lane table overflow" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "TestRunCapturesPanicValueAndStack") {
		t.Fatalf("stack does not reach the panic site:\n%s", pe.Stack)
	}
	if msg := pe.Error(); !strings.Contains(msg, "panic: lane table overflow") {
		t.Fatalf("unexpected rendering: %s", msg)
	}
}

func testRecord(fp string, index int) obs.RunRecord {
	return obs.RunRecord{
		Schema:      obs.RunSchema,
		Batch:       "checkpoint-test",
		Index:       index,
		Label:       "cube duato",
		Pattern:     "uniform",
		Seed:        1,
		Load:        0.5,
		Fingerprint: fp,
		Config:      json.RawMessage(`{"network":"cube"}`),
		Cycles:      20000,
		WallMS:      12.5,
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	c, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Record(testRecord(fmt.Sprintf("fp-%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	// Failure records must not be journaled: resume re-runs them.
	fail := testRecord("fp-bad", 9)
	fail.Failure = "panic: boom"
	if err := c.Record(fail); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d after 3 successes and 1 failure, want 3", c.Len())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close = %v, want idempotent nil", err)
	}
	if err := c.Record(testRecord("fp-late", 4)); err == nil {
		t.Fatal("Record after Close succeeded")
	}

	r, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 3 {
		t.Fatalf("resumed Len = %d, want 3", r.Len())
	}
	rec, ok := r.Done("fp-1")
	if !ok || rec.Index != 1 || rec.WallMS != 12.5 {
		t.Fatalf("Done(fp-1) = %+v, %v", rec, ok)
	}
	if _, ok := r.Done("fp-bad"); ok {
		t.Fatal("failure record was journaled")
	}
}

func TestCheckpointOpenTruncatesWithoutResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	c, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Record(testRecord("fp-0", 0)); err != nil {
		t.Fatal(err)
	}
	c.Close()

	c, err = Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Len() != 0 {
		t.Fatalf("fresh open kept %d records, want a truncated journal", c.Len())
	}
}

func TestCheckpointResumeDropsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	c, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Record(testRecord("fp-0", 0)); err != nil {
		t.Fatal(err)
	}
	if err := c.Record(testRecord("fp-1", 1)); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Simulate a kill mid-write: append half a record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":"smart/run/v2","fing`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := Open(path, true)
	if err != nil {
		t.Fatalf("resume over a torn tail failed: %v", err)
	}
	if r.Len() != 2 {
		t.Fatalf("resumed Len = %d, want the 2 complete records", r.Len())
	}
	// The torn bytes must be gone so the next append starts clean.
	if err := r.Record(testRecord("fp-2", 2)); err != nil {
		t.Fatal(err)
	}
	r.Close()
	f2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := obs.DecodeManifest(f2)
	f2.Close()
	if err != nil {
		t.Fatalf("journal unreadable after torn-tail resume: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("journal holds %d records, want 3", len(recs))
	}
}

func TestCheckpointResumeRejectsCorruptLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	if err := os.WriteFile(path, []byte("this is not a checkpoint\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, true); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("resume over garbage = %v, want a corrupt-line error", err)
	}

	// Unknown schema on a complete line is likewise a hard error.
	if err := os.WriteFile(path, []byte(`{"schema":"smart/run/v99","index":0,"label":"","pattern":"","seed":0,"load":0,"fingerprint":"x","config":null,"sample":{},"cycles":0,"wall_ms":0}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, true); err == nil || !strings.Contains(err.Error(), "unknown schema") {
		t.Fatalf("resume over unknown schema = %v, want a schema error", err)
	}
}

func TestFlagsOpenValidation(t *testing.T) {
	f := &Flags{Resume: true}
	if _, err := f.Open(); err == nil || !strings.Contains(err.Error(), "-resume requires -checkpoint") {
		t.Fatalf("Open with -resume and no -checkpoint = %v", err)
	}
	f = &Flags{}
	if c, err := f.Open(); c != nil || err != nil {
		t.Fatalf("Open with checkpointing off = %v, %v, want nil, nil", c, err)
	}
}

func TestAddFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Watchdog != DefaultWatchdogCycles || f.CheckpointPath != "" || f.Resume {
		t.Fatalf("defaults = %+v", f)
	}
	if err := fs.Parse([]string{"-checkpoint", "c.jsonl", "-resume", "-watchdog", "500"}); err != nil {
		t.Fatal(err)
	}
	if f.CheckpointPath != "c.jsonl" || !f.Resume || f.Watchdog != 500 {
		t.Fatalf("parsed = %+v", f)
	}
}
