package resilience

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// DedupJournal is the one fingerprint-dedup implementation shared by
// the checkpoint journal, the telemetry sidecar and the result store
// index; this is its contract test.
func TestDedupJournalLastWriteWins(t *testing.T) {
	lines := []string{
		`{"fp":"a","v":1}`,
		`{"fp":"b","v":2}`,
		`{"fp":"a","v":3}`, // supersedes the first a
	}
	data := []byte(strings.Join(lines, "\n") + "\n")
	decode := func(n int, line []byte) (string, int, error) {
		var rec struct {
			FP string `json:"fp"`
			V  int    `json:"v"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			return "", 0, fmt.Errorf("line %d: %w", n, err)
		}
		return rec.FP, rec.V, nil
	}
	got, valid, err := DedupJournal(data, decode)
	if err != nil {
		t.Fatalf("DedupJournal: %v", err)
	}
	if valid != int64(len(data)) {
		t.Errorf("valid offset = %d, want %d", valid, len(data))
	}
	if len(got) != 2 || got["a"] != 3 || got["b"] != 2 {
		t.Errorf("dedup map = %v, want a=3 (last write wins), b=2", got)
	}

	// A torn tail is not visited: the partial repetition of b must not
	// clobber its complete value, and the offset must exclude it.
	torn := append(append([]byte{}, data...), []byte(`{"fp":"b","v":9`)...)
	got, valid, err = DedupJournal(torn, decode)
	if err != nil {
		t.Fatalf("DedupJournal with torn tail: %v", err)
	}
	if valid != int64(len(data)) {
		t.Errorf("torn-tail valid offset = %d, want %d", valid, len(data))
	}
	if got["b"] != 2 {
		t.Errorf("torn tail visited: b = %d, want 2", got["b"])
	}
}

func TestDedupJournalDecodeErrorAborts(t *testing.T) {
	data := []byte("{\"fp\":\"a\"}\nnot json\n{\"fp\":\"c\"}\n")
	calls := 0
	_, valid, err := DedupJournal(data, func(n int, line []byte) (string, struct{}, error) {
		calls++
		var rec struct {
			FP string `json:"fp"`
		}
		if jerr := json.Unmarshal(line, &rec); jerr != nil {
			return "", struct{}{}, fmt.Errorf("line %d corrupt: %w", n, jerr)
		}
		return rec.FP, struct{}{}, nil
	})
	if err == nil {
		t.Fatal("mid-file corruption must abort the scan")
	}
	if calls != 2 {
		t.Errorf("decode called %d times, want 2 (abort at the corrupt line)", calls)
	}
	if want := int64(len("{\"fp\":\"a\"}\n")); valid != want {
		t.Errorf("valid offset = %d, want %d (end of the last good line)", valid, want)
	}
}

func TestTruncateTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	whole := "{\"a\":1}\n{\"b\":2}\n"
	if err := os.WriteFile(path, []byte(whole+`{"torn`), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := TruncateTail(f, int64(len(whole))); err != nil {
		t.Fatalf("TruncateTail: %v", err)
	}
	// The next append must start on a line boundary.
	if _, err := f.WriteString("{\"c\":3}\n"); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := whole + "{\"c\":3}\n"; string(got) != want {
		t.Errorf("after TruncateTail+append:\n%q\nwant:\n%q", got, want)
	}
}
