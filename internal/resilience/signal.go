package resilience

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context cancelled on the first SIGINT or
// SIGTERM, so commands can flush checkpoints and partial manifests
// before exiting. After the first signal the default disposition is
// restored: a second signal kills the process immediately, keeping an
// impatient Ctrl-C Ctrl-C working. The returned stop function releases
// the signal registration; call it when the run completes normally.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	//smartlint:allow concurrency — releases the signal registration as soon as the context ends
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx, stop
}
