package resilience

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"smart/internal/obs"
)

// Checkpoint journals completed runs to a JSONL file, one manifest
// record per line keyed by the config fingerprint, flushed as each run
// finishes. Opened with resume, it loads the completed set so a
// restarted grid skips finished work and replays the journaled records
// into its manifest verbatim — which is what makes a resumed manifest
// digest-identical to an uninterrupted one.
//
// Only successful runs are journaled: failures are cheap to re-attempt
// and may have been fixed between invocations, so resume re-runs them.
//
// The file format tolerates exactly the corruption an interrupted
// process produces: a torn final line (no trailing newline) is dropped
// and overwritten on the next append. Any other malformed content is an
// error — a mid-file parse failure means the file is not a checkpoint.
type Checkpoint struct {
	//smartlint:allow concurrency — checkpoint appends from parallel runners must serialize; resume sorts by run key
	mu     sync.Mutex
	f      *os.File
	enc    *json.Encoder
	path   string
	done   map[string]obs.RunRecord
	closed bool
}

// Open creates (or, with resume, reopens and loads) the checkpoint at
// path. Without resume an existing file is truncated: a fresh run
// starts a fresh journal.
func Open(path string, resume bool) (*Checkpoint, error) {
	flags := os.O_RDWR | os.O_CREATE
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resilience: opening checkpoint: %w", err)
	}
	c := &Checkpoint{f: f, path: path, done: map[string]obs.RunRecord{}}
	if resume {
		valid, err := c.load()
		if err != nil {
			f.Close()
			return nil, err
		}
		// Drop the torn tail, if any, so appends start on a line boundary.
		if err := TruncateTail(f, valid); err != nil {
			f.Close()
			return nil, err
		}
	}
	c.enc = json.NewEncoder(f)
	return c, nil
}

// load parses the journal into the fingerprint-dedup map and returns
// the byte offset of the end of the last valid line.
func (c *Checkpoint) load() (int64, error) {
	data, err := io.ReadAll(c.f)
	if err != nil {
		return 0, fmt.Errorf("resilience: reading checkpoint %s: %w", c.path, err)
	}
	done, valid, err := DedupJournal(data, func(line int, raw []byte) (string, obs.RunRecord, error) {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var rec obs.RunRecord
		if err := dec.Decode(&rec); err != nil {
			return "", rec, fmt.Errorf("resilience: checkpoint %s line %d is corrupt: %w", c.path, line, err)
		}
		if rec.Schema != obs.RunSchema && rec.Schema != obs.RunSchemaV1 {
			return "", rec, fmt.Errorf("resilience: checkpoint %s line %d has unknown schema %q", c.path, line, rec.Schema)
		}
		return rec.Fingerprint, rec, nil
	})
	if err != nil {
		return 0, err
	}
	c.done = done
	return valid, nil
}

// Path returns the journal's file path.
func (c *Checkpoint) Path() string { return c.path }

// Len returns the number of completed fingerprints on record.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Done reports whether the config with the given fingerprint already
// completed, returning its journaled record.
func (c *Checkpoint) Done(fingerprint string) (obs.RunRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.done[fingerprint]
	return rec, ok
}

// Record journals one completed run, flushing it to the file before
// returning so a kill right after cannot lose it. Failure records are
// ignored: resume re-runs failed configs. Safe for concurrent use by
// parallel runners.
func (c *Checkpoint) Record(rec obs.RunRecord) error {
	if rec.Failure != "" {
		return nil
	}
	if rec.Schema == "" {
		rec.Schema = obs.RunSchema
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("resilience: checkpoint %s is closed", c.path)
	}
	if err := c.enc.Encode(rec); err != nil {
		return fmt.Errorf("resilience: journaling run %s: %w", rec.Fingerprint, err)
	}
	c.done[rec.Fingerprint] = rec
	return nil
}

// Close syncs and closes the journal. Idempotent.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	syncErr := c.f.Sync()
	if err := c.f.Close(); err != nil {
		return fmt.Errorf("resilience: closing checkpoint: %w", err)
	}
	if syncErr != nil {
		return fmt.Errorf("resilience: syncing checkpoint: %w", syncErr)
	}
	return nil
}
