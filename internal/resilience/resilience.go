// Package resilience keeps long experiment campaigns alive through
// pathological configurations: it isolates panics at run boundaries,
// journals completed runs to a checkpoint so an interrupted grid can
// resume without recomputing, and converts termination signals into
// context cancellation so interruption flushes state instead of
// dropping it.
//
// This package is the only place in the tree allowed to call recover
// (enforced by the smartlint nakedrecover rule): panic isolation is a
// deliberate, narrow policy, not a pattern to spread.
package resilience

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a panic recovered at a run boundary, carrying the
// panic value and the goroutine stack at the point of the panic.
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the panic value and the captured stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// Run invokes fn and converts a panic into a *PanicError, so one
// pathological configuration surfaces as a per-run error instead of
// taking down the whole grid.
func Run(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}
