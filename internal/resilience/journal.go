package resilience

import (
	"bytes"
	"fmt"
	"io"
	"os"
)

// ScanJournal walks the bytes of an append-only JSONL journal, calling
// fn once per complete line (1-based line number, newline excluded), and
// returns the byte offset just past the last complete line. A torn final
// line — no trailing newline, the signature of a killed process — is not
// visited: the writer truncates to the returned offset and re-appends,
// which is the crash-tolerance contract both the checkpoint journal and
// the telemetry time-series sidecar rely on. An error from fn aborts the
// scan: mid-file corruption means the file is not the journal it claims
// to be.
func ScanJournal(data []byte, fn func(n int, line []byte) error) (int64, error) {
	var off int64
	n := 0
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break
		}
		n++
		if err := fn(n, data[:nl]); err != nil {
			return off, err
		}
		off += int64(nl) + 1
		data = data[nl+1:]
	}
	return off, nil
}

// DedupJournal scans a JSONL journal with ScanJournal, decoding each
// complete line into a (key, value) pair and keeping the last value per
// key. This is the fingerprint-dedup discipline every journal consumer
// shares — the checkpoint's completed-run set, the telemetry sidecar's
// recorded-run set, and the result store's fingerprint index: a journal
// may legitimately carry several lines for one key (a resumed append, a
// superseding store write) and the latest one wins. It returns the
// dedup map alongside ScanJournal's end-of-last-complete-line offset; a
// decode error aborts the scan with the map built so far discarded.
func DedupJournal[V any](data []byte, decode func(n int, line []byte) (string, V, error)) (map[string]V, int64, error) {
	out := map[string]V{}
	valid, err := ScanJournal(data, func(n int, line []byte) error {
		key, val, err := decode(n, line)
		if err != nil {
			return err
		}
		out[key] = val
		return nil
	})
	if err != nil {
		return nil, valid, err
	}
	return out, valid, nil
}

// TruncateTail drops a torn trailing line from an append-only journal
// file: it truncates f at valid (the offset ScanJournal returned) and
// seeks there, so the next append starts on a line boundary. Shared by
// every journal writer that reopens a file a killed process may have
// left mid-line.
func TruncateTail(f *os.File, valid int64) error {
	if err := f.Truncate(valid); err != nil {
		return fmt.Errorf("resilience: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		return fmt.Errorf("resilience: seeking journal: %w", err)
	}
	return nil
}
