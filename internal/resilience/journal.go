package resilience

import "bytes"

// ScanJournal walks the bytes of an append-only JSONL journal, calling
// fn once per complete line (1-based line number, newline excluded), and
// returns the byte offset just past the last complete line. A torn final
// line — no trailing newline, the signature of a killed process — is not
// visited: the writer truncates to the returned offset and re-appends,
// which is the crash-tolerance contract both the checkpoint journal and
// the telemetry time-series sidecar rely on. An error from fn aborts the
// scan: mid-file corruption means the file is not the journal it claims
// to be.
func ScanJournal(data []byte, fn func(n int, line []byte) error) (int64, error) {
	var off int64
	n := 0
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break
		}
		n++
		if err := fn(n, data[:nl]); err != nil {
			return off, err
		}
		off += int64(nl) + 1
		data = data[nl+1:]
	}
	return off, nil
}
