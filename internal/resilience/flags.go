package resilience

import (
	"errors"
	"flag"
)

// DefaultWatchdogCycles is the commands' default no-progress budget: far
// above any transient congestion stall at the loads the harness sweeps,
// far below losing hours to a hung grid.
const DefaultWatchdogCycles = 20000

// Flags carries the resilience command-line options shared by the
// long-running commands.
type Flags struct {
	// CheckpointPath is the completed-run journal ("" disables
	// checkpointing); Resume loads it and skips finished configs.
	CheckpointPath string
	Resume         bool
	// Watchdog is the no-progress cycle budget applied to configs that
	// do not set their own; 0 disables the watchdog.
	Watchdog int64
}

// AddFlags registers -checkpoint, -resume and -watchdog on fs.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CheckpointPath, "checkpoint", "", "journal completed runs to this JSONL `file` as they finish")
	fs.BoolVar(&f.Resume, "resume", false, "skip configs already completed in the -checkpoint journal")
	fs.Int64Var(&f.Watchdog, "watchdog", DefaultWatchdogCycles, "abort a run after this many `cycles` without progress (0 disables)")
	return f
}

// Open materializes the checkpoint the flags describe, or nil when
// checkpointing is off. -resume without -checkpoint is an error: there
// is nothing to resume from.
func (f *Flags) Open() (*Checkpoint, error) {
	if f.CheckpointPath == "" {
		if f.Resume {
			return nil, errors.New("resilience: -resume requires -checkpoint")
		}
		return nil, nil
	}
	return Open(f.CheckpointPath, f.Resume)
}
