// Package faults injects deterministic link and router failures into a
// running fabric. A fault schedule is a cycle-keyed list of down/up
// events — written explicitly, expanded from a seeded random clause, or
// decoded from a JSONL file (schema smart/faults/v1) — validated against
// the topology and applied by a Controller registered as the first
// engine stage of a cycle, before traffic generation and the fabric
// stages, so every shard sees the same masks for the whole cycle.
//
// Determinism contract: random clauses (rand-links, rand-routers) are
// expanded with an RNG seeded from the config fingerprint (SeedFrom), so
// the concrete failure set is a pure function of the run's content
// address; a resumed or re-sharded run replays the identical schedule.
package faults

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"smart/internal/sim"
	"smart/internal/topology"
)

// Schema identifies the JSONL fault-schedule format: one header line
// {"schema":"smart/faults/v1"} followed by one Event object per line.
const Schema = "smart/faults/v1"

// Kind is the fault event type.
type Kind uint8

const (
	// LinkDown masks one bidirectional router-router link.
	LinkDown Kind = iota
	// LinkUp unmasks a previously downed link.
	LinkUp
	// RouterDown freezes a router: all incident links, its crossbar and
	// routing logic, and the attached node's NIC.
	RouterDown
	// RouterUp revives a previously downed router.
	RouterUp
)

var kindNames = [...]string{"link-down", "link-up", "router-down", "router-up"}

// String returns the JSON wire name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its wire name.
func (k Kind) MarshalJSON() ([]byte, error) {
	if int(k) >= len(kindNames) {
		return nil, fmt.Errorf("faults: unknown kind %d", uint8(k))
	}
	return json.Marshal(kindNames[k])
}

// UnmarshalJSON decodes a wire name back into a kind.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range kindNames {
		if name == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("faults: unknown kind %q", s)
}

// isLink reports whether the kind targets a link (vs a router).
func (k Kind) isLink() bool { return k == LinkDown || k == LinkUp }

// isDown reports whether the kind is the failing half of its pair.
func (k Kind) isDown() bool { return k == LinkDown || k == RouterDown }

// Event is one scheduled fault transition. Link events identify the
// link by its canonical endpoint (the lexicographically smaller
// (router, port) of the two directions). Router events leave Port 0.
type Event struct {
	Cycle  int64 `json:"cycle"`
	Kind   Kind  `json:"kind"`
	Router int   `json:"router"`
	Port   int   `json:"port"`
}

// Schedule is a validated, deterministically ordered fault event list:
// ascending cycle, links before routers at equal cycles, then router and
// port index. Per target, events alternate down/up starting with down at
// strictly increasing cycles.
type Schedule []Event

// target is the map key grouping events that act on the same element.
type target struct {
	link         bool
	router, port int
}

func (e Event) target() target {
	t := target{link: e.Kind.isLink(), router: e.Router}
	if t.link {
		t.port = e.Port
	}
	return t
}

// sortEvents orders events canonically: cycle, link-before-router,
// router, port, down-before-up (the last is unreachable for valid
// schedules, which never put two events for one target on one cycle).
func sortEvents(ev []Event) {
	sort.Slice(ev, func(i, j int) bool {
		a, b := ev[i], ev[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Kind.isLink() != b.Kind.isLink() {
			return a.Kind.isLink()
		}
		if a.Router != b.Router {
			return a.Router < b.Router
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		return a.Kind < b.Kind
	})
}

// canonicalLink rewrites a link event to name the link by its smaller
// (router, port) endpoint, so the two directions of one physical link
// share a target key.
func canonicalLink(top topology.Topology, r, p int) (int, int, error) {
	if r < 0 || r >= top.Routers() {
		return 0, 0, fmt.Errorf("faults: router %d out of range [0,%d)", r, top.Routers())
	}
	ports := top.RouterPorts(r)
	if p < 0 || p >= len(ports) {
		return 0, 0, fmt.Errorf("faults: router %d port %d out of range [0,%d)", r, p, len(ports))
	}
	port := ports[p]
	if port.Kind != topology.PortRouter {
		return 0, 0, fmt.Errorf("faults: router %d port %d is not a router-router link", r, p)
	}
	if port.Peer < r || (port.Peer == r && port.PeerPort < p) {
		return port.Peer, port.PeerPort, nil
	}
	return r, p, nil
}

// Validate checks the schedule against a topology: every link event
// names a real router-router link, every router event a real router,
// cycles are non-negative, and per target the events alternate
// down → up → down at strictly increasing cycles. The schedule must
// already be in canonical order (Parse and Decode guarantee it).
func (s Schedule) Validate(top topology.Topology) error {
	last := make(map[target]Event)
	for i, ev := range s {
		if ev.Cycle < 0 {
			return fmt.Errorf("faults: event %d has negative cycle %d", i, ev.Cycle)
		}
		if ev.Kind.isLink() {
			cr, cp, err := canonicalLink(top, ev.Router, ev.Port)
			if err != nil {
				return err
			}
			if cr != ev.Router || cp != ev.Port {
				return fmt.Errorf("faults: event %d names link %d:%d by its non-canonical end (want %d:%d)", i, ev.Router, ev.Port, cr, cp)
			}
		} else {
			if ev.Router < 0 || ev.Router >= top.Routers() {
				return fmt.Errorf("faults: event %d router %d out of range [0,%d)", i, ev.Router, top.Routers())
			}
		}
		t := ev.target()
		prev, seen := last[t]
		if !seen && !ev.Kind.isDown() {
			return fmt.Errorf("faults: event %d (%s %d:%d@%d) raises a target that is not down", i, ev.Kind, ev.Router, ev.Port, ev.Cycle)
		}
		if seen {
			if prev.Kind.isDown() == ev.Kind.isDown() {
				return fmt.Errorf("faults: event %d repeats %s for router %d port %d", i, ev.Kind, ev.Router, ev.Port)
			}
			if ev.Cycle <= prev.Cycle {
				return fmt.Errorf("faults: event %d for router %d port %d does not advance past cycle %d", i, ev.Router, ev.Port, prev.Cycle)
			}
		}
		last[t] = ev
	}
	return nil
}

// interval is one down(-up) pair for Canonical rendering.
type interval struct {
	t        target
	from, to int64 // to < 0 means never restored
}

// Canonical renders the schedule as an explicit spec string —
// comma-separated link:R:P@C[-C2] and router:R@C[-C2] clauses in
// schedule order — suitable for embedding in a config (and hence its
// fingerprint). Parse(s.Canonical(), top, seed) reproduces s exactly.
func (s Schedule) Canonical() string {
	open := make(map[target]int)
	var ivs []interval
	for _, ev := range s {
		t := ev.target()
		if ev.Kind.isDown() {
			open[t] = len(ivs)
			ivs = append(ivs, interval{t: t, from: ev.Cycle, to: -1})
		} else if i, ok := open[t]; ok {
			ivs[i].to = ev.Cycle
			delete(open, t)
		}
	}
	var b strings.Builder
	for i, iv := range ivs {
		if i > 0 {
			b.WriteByte(',')
		}
		if iv.t.link {
			fmt.Fprintf(&b, "link:%d:%d@%d", iv.t.router, iv.t.port, iv.from)
		} else {
			fmt.Fprintf(&b, "router:%d@%d", iv.t.router, iv.from)
		}
		if iv.to >= 0 {
			fmt.Fprintf(&b, "-%d", iv.to)
		}
	}
	return b.String()
}

// SeedFrom derives the schedule-expansion seed from a config
// fingerprint, so random clauses are a deterministic function of the
// run's content address.
func SeedFrom(fingerprint string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, fingerprint)
	return h.Sum64()
}

// clause is one parsed spec clause before expansion.
type clause struct {
	kind       string // "link", "router", "rand-links", "rand-routers"
	a, b       int    // link: router, port; router: router; rand-*: count
	from, to   int64  // to < 0 when open-ended
	hasRestore bool
}

// parseInterval parses C or C-C2.
func parseInterval(s string) (int64, int64, bool, error) {
	from, rest, dash := strings.Cut(s, "-")
	f, err := strconv.ParseInt(from, 10, 64)
	if err != nil || f < 0 {
		return 0, 0, false, fmt.Errorf("faults: bad cycle %q", from)
	}
	if !dash {
		return f, -1, false, nil
	}
	t, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || t <= f {
		return 0, 0, false, fmt.Errorf("faults: bad interval end %q (must be a cycle after %d)", rest, f)
	}
	return f, t, true, nil
}

// parseSpec splits and syntax-checks a spec string without a topology.
func parseSpec(spec string) ([]clause, error) {
	var out []clause
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			return nil, fmt.Errorf("faults: empty clause in spec %q", spec)
		}
		head, at, ok := strings.Cut(raw, "@")
		if !ok {
			return nil, fmt.Errorf("faults: clause %q lacks @cycle", raw)
		}
		var c clause
		var err error
		c.from, c.to, c.hasRestore, err = parseInterval(at)
		if err != nil {
			return nil, err
		}
		parts := strings.Split(head, ":")
		c.kind = parts[0]
		argc := map[string]int{"link": 2, "router": 1, "rand-links": 1, "rand-routers": 1}[c.kind]
		if argc == 0 {
			return nil, fmt.Errorf("faults: unknown clause kind %q in %q", c.kind, raw)
		}
		if len(parts)-1 != argc {
			return nil, fmt.Errorf("faults: clause %q wants %d argument(s)", raw, argc)
		}
		if c.a, err = strconv.Atoi(parts[1]); err != nil || c.a < 0 {
			return nil, fmt.Errorf("faults: bad index %q in clause %q", parts[1], raw)
		}
		if argc == 2 {
			if c.b, err = strconv.Atoi(parts[2]); err != nil || c.b < 0 {
				return nil, fmt.Errorf("faults: bad index %q in clause %q", parts[2], raw)
			}
		}
		if strings.HasPrefix(c.kind, "rand-") && c.a == 0 {
			return nil, fmt.Errorf("faults: clause %q selects zero targets", raw)
		}
		out = append(out, c)
	}
	return out, nil
}

// CheckSpec syntax-checks a spec string without a topology (used by
// flag parsing before the config is fully resolved).
func CheckSpec(spec string) error {
	if spec == "" {
		return nil
	}
	_, err := parseSpec(spec)
	return err
}

// links enumerates the canonical (router, port) end of every
// router-router link in index order.
func links(top topology.Topology) [][2]int {
	var out [][2]int
	for r := 0; r < top.Routers(); r++ {
		for p, port := range top.RouterPorts(r) {
			if port.Kind != topology.PortRouter {
				continue
			}
			if r < port.Peer || (r == port.Peer && p < port.PeerPort) {
				out = append(out, [2]int{r, p})
			}
		}
	}
	return out
}

// pick selects n distinct elements from m candidates via a partial
// Fisher-Yates shuffle and returns their indices sorted ascending.
func pick(rng *sim.RNG, m, n int) []int {
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < n; i++ {
		j := i + rng.Intn(m-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := idx[:n]
	sort.Ints(out)
	return out
}

// Parse expands a spec string into a validated Schedule for the given
// topology. Random clauses draw from an RNG seeded with seed (use
// SeedFrom(cfg.Fingerprint()) so expansion is content-addressed); the
// RNG is consumed in clause order, so identical (spec, topology, seed)
// always yield the identical schedule.
func Parse(spec string, top topology.Topology, seed uint64) (Schedule, error) {
	if spec == "" {
		return nil, nil
	}
	clauses, err := parseSpec(spec)
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(seed)
	var ev []Event
	add := func(link bool, r, p int, from, to int64) {
		down, up := RouterDown, RouterUp
		if link {
			down, up = LinkDown, LinkUp
		}
		ev = append(ev, Event{Cycle: from, Kind: down, Router: r, Port: p})
		if to >= 0 {
			ev = append(ev, Event{Cycle: to, Kind: up, Router: r, Port: p})
		}
	}
	for _, c := range clauses {
		switch c.kind {
		case "link":
			cr, cp, err := canonicalLink(top, c.a, c.b)
			if err != nil {
				return nil, err
			}
			add(true, cr, cp, c.from, c.to)
		case "router":
			if c.a >= top.Routers() {
				return nil, fmt.Errorf("faults: router %d out of range [0,%d)", c.a, top.Routers())
			}
			add(false, c.a, 0, c.from, c.to)
		case "rand-links":
			all := links(top)
			if c.a > len(all) {
				return nil, fmt.Errorf("faults: rand-links:%d exceeds the %d links of %s", c.a, len(all), top.Name())
			}
			for _, i := range pick(rng, len(all), c.a) {
				add(true, all[i][0], all[i][1], c.from, c.to)
			}
		case "rand-routers":
			if c.a > top.Routers() {
				return nil, fmt.Errorf("faults: rand-routers:%d exceeds the %d routers of %s", c.a, top.Routers(), top.Name())
			}
			for _, i := range pick(rng, top.Routers(), c.a) {
				add(false, i, 0, c.from, c.to)
			}
		}
	}
	sortEvents(ev)
	s := Schedule(ev)
	if err := s.Validate(top); err != nil {
		return nil, err
	}
	return s, nil
}

// schemaLine is the JSONL header record.
type schemaLine struct {
	Schema string `json:"schema"`
}

// Encode writes the schedule in the smart/faults/v1 JSONL format.
func Encode(w io.Writer, s Schedule) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(schemaLine{Schema: Schema}); err != nil {
		return err
	}
	for _, ev := range s {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a smart/faults/v1 JSONL stream into a canonically
// ordered schedule. Unknown fields are rejected; validation against a
// topology is the caller's (Parse path's) job.
func Decode(r io.Reader) (Schedule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("faults: empty schedule file")
	}
	var hdr schemaLine
	hd := json.NewDecoder(strings.NewReader(sc.Text()))
	hd.DisallowUnknownFields()
	if err := hd.Decode(&hdr); err != nil || hdr.Schema != Schema {
		return nil, fmt.Errorf("faults: missing or unsupported schema header (want %q)", Schema)
	}
	var out Schedule
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev Event
		dec := json.NewDecoder(strings.NewReader(text))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("faults: line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sortEvents(out)
	return out, nil
}

// ReadFile decodes a schedule file.
func ReadFile(path string) (Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// ResolveFlag turns a -faults argument into a spec string for the
// config: a path to an existing file is decoded (smart/faults/v1) and
// canonicalized, anything else is syntax-checked as a spec and passed
// through. The returned string is what lands in Config.Faults — and
// therefore in the fingerprint — so file-based schedules stay
// content-addressed by their contents, not their path.
func ResolveFlag(arg string) (string, error) {
	if arg == "" {
		return "", nil
	}
	if _, err := os.Stat(arg); err == nil {
		s, err := ReadFile(arg)
		if err != nil {
			return "", err
		}
		if len(s) == 0 {
			return "", fmt.Errorf("faults: %s holds no events", arg)
		}
		return s.Canonical(), nil
	}
	if err := CheckSpec(arg); err != nil {
		return "", err
	}
	return arg, nil
}

// Target is the fault-mask surface of a fabric (the wormhole fabric and
// the oracle both implement it).
type Target interface {
	SetLinkDown(r, p int, down bool)
	SetRouterDown(r int, down bool)
}

// Controller replays a schedule onto a target as an engine stage. It
// must register before the traffic and fabric stages so an event at
// cycle C is in force for all of cycle C; the stage runs serially, so
// mask writes never race the sharded compute phase.
type Controller struct {
	sched Schedule
	tgt   Target
	next  int
}

// NewController builds a controller; the schedule must be validated.
func NewController(s Schedule, tgt Target) *Controller {
	return &Controller{sched: s, tgt: tgt}
}

// Register installs the controller as the "faults" engine stage.
func (c *Controller) Register(e *sim.Engine) {
	e.RegisterFunc("faults", c.tick)
}

// Applied returns how many events have fired so far.
func (c *Controller) Applied() int { return c.next }

// tick applies every event due at or before this cycle.
func (c *Controller) tick(cycle int64) {
	for c.next < len(c.sched) && c.sched[c.next].Cycle <= cycle {
		ev := c.sched[c.next]
		c.next++
		switch ev.Kind {
		case LinkDown:
			c.tgt.SetLinkDown(ev.Router, ev.Port, true)
		case LinkUp:
			c.tgt.SetLinkDown(ev.Router, ev.Port, false)
		case RouterDown:
			c.tgt.SetRouterDown(ev.Router, true)
		case RouterUp:
			c.tgt.SetRouterDown(ev.Router, false)
		}
	}
}
