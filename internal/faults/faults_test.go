package faults

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"smart/internal/topology"
)

func testCube(t testing.TB) topology.Topology {
	t.Helper()
	cube, err := topology.NewCube(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return cube
}

func TestParseExplicitSpec(t *testing.T) {
	top := testCube(t)
	s, err := Parse("link:0:0@100-200,router:3@50", top, 1)
	if err != nil {
		t.Fatal(err)
	}
	// router:3@50 is open-ended (never revives), so three events total.
	if len(s) != 3 {
		t.Fatalf("got %d events, want 3: %v", len(s), s)
	}
	// Canonical order: ascending cycle, so router down at 50 leads.
	if s[0].Kind != RouterDown || s[0].Cycle != 50 || s[0].Router != 3 {
		t.Errorf("first event = %+v, want router-down 3@50", s[0])
	}
	if s[1].Kind != LinkDown || s[1].Cycle != 100 {
		t.Errorf("second event = %+v, want link-down @100", s[1])
	}
	if s[2].Kind != LinkUp || s[2].Cycle != 200 {
		t.Errorf("last event = %+v, want link-up @200", s[2])
	}
}

func TestParseCanonicalizesLinkEnd(t *testing.T) {
	top := testCube(t)
	// Name the same physical link from both ends; the schedules must be
	// identical because link events are rewritten to the canonical
	// (smaller) endpoint.
	ports := top.RouterPorts(0)
	var peer, peerPort int
	for p, port := range ports {
		if port.Kind == topology.PortRouter {
			peer, peerPort = port.Peer, port.PeerPort
			if peer > 0 {
				a, err := Parse(fmt.Sprintf("link:0:%d@10", p), top, 1)
				if err != nil {
					t.Fatal(err)
				}
				b, err := Parse(fmt.Sprintf("link:%d:%d@10", peer, peerPort), top, 1)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("both ends of one link parse differently:\n%v\n%v", a, b)
				}
				return
			}
		}
	}
	t.Fatal("router 0 has no router-router link to a larger peer")
}

func TestCanonicalRoundTrip(t *testing.T) {
	top := testCube(t)
	for _, spec := range []string{
		"link:0:0@5",
		"link:0:0@5-9,router:2@100-200",
		"rand-links:4@1000-2000",
		"rand-routers:3@10,rand-links:2@20-30",
	} {
		s, err := Parse(spec, top, 42)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		// Canonical is fully explicit, so it round-trips under any seed.
		again, err := Parse(s.Canonical(), top, 7)
		if err != nil {
			t.Fatalf("Parse(Canonical(%q)) = %q: %v", spec, s.Canonical(), err)
		}
		if !reflect.DeepEqual(s, again) {
			t.Errorf("spec %q: canonical %q does not reproduce the schedule\n%v\n%v",
				spec, s.Canonical(), s, again)
		}
	}
}

func TestRandExpansionIsSeedDeterministic(t *testing.T) {
	top := testCube(t)
	a, err := Parse("rand-links:5@100", top, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("rand-links:5@100", top, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("identical (spec, topology, seed) expanded differently")
	}
	c, err := Parse("rand-links:5@100", top, 100)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds picked the identical link set (possible but wildly unlikely for 5 of 32)")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	top := testCube(t)
	s, err := Parse("rand-links:3@10-20,router:1@5", top, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), `{"schema":"smart/faults/v1"}`) {
		t.Errorf("encoded stream lacks the schema header: %q", buf.String()[:40])
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Errorf("decode(encode(s)) != s\n%v\n%v", s, got)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for name, text := range map[string]string{
		"empty":         "",
		"no header":     `{"cycle":1,"kind":"link-down","router":0,"port":0}`,
		"wrong schema":  `{"schema":"smart/run/v3"}`,
		"unknown field": "{\"schema\":\"smart/faults/v1\"}\n{\"cycle\":1,\"kind\":\"link-down\",\"router\":0,\"port\":0,\"flux\":9}",
		"unknown kind":  "{\"schema\":\"smart/faults/v1\"}\n{\"cycle\":1,\"kind\":\"link-sideways\",\"router\":0,\"port\":0}",
	} {
		if _, err := Decode(strings.NewReader(text)); err == nil {
			t.Errorf("%s: Decode accepted %q", name, text)
		}
	}
}

func TestParseErrors(t *testing.T) {
	top := testCube(t)
	for _, spec := range []string{
		"link:0:0",              // no @cycle
		"link:0@5",              // wrong arity
		"router:0:0@5",          // wrong arity
		"warp:0@5",              // unknown kind
		"link:0:0@x",            // bad cycle
		"link:0:0@20-10",        // interval runs backwards
		"link:0:0@20-20",        // empty interval
		"link:0:0@5,",           // trailing empty clause
		"rand-links:0@5",        // zero targets
		"link:0:-1@5",           // negative index
		"router:999@5",          // router out of range
		"link:0:99@5",           // port out of range
		"rand-links:9999@5",     // more links than the topology has
		"rand-routers:9999@5",   // more routers than the topology has
		"link:0:0@5,link:0:0@5", // same target twice without an up between
	} {
		if _, err := Parse(spec, top, 1); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
	// CheckSpec is the topology-free prefix of the same validation.
	if err := CheckSpec("warp:0@5"); err == nil {
		t.Error("CheckSpec accepted an unknown clause kind")
	}
	if err := CheckSpec(""); err != nil {
		t.Errorf("CheckSpec(\"\") = %v, want nil", err)
	}
}

func TestValidateAlternation(t *testing.T) {
	top := testCube(t)
	cr, cp, err := canonicalLink(top, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]Schedule{
		"up without down":   {{Cycle: 5, Kind: LinkUp, Router: cr, Port: cp}},
		"down twice":        {{Cycle: 5, Kind: LinkDown, Router: cr, Port: cp}, {Cycle: 9, Kind: LinkDown, Router: cr, Port: cp}},
		"up at same cycle":  {{Cycle: 5, Kind: RouterDown, Router: 1}, {Cycle: 5, Kind: RouterUp, Router: 1}},
		"negative cycle":    {{Cycle: -1, Kind: RouterDown, Router: 1}},
		"non-canonical end": {{Cycle: 5, Kind: LinkDown, Router: top.Routers() - 1, Port: lastRouterPort(top)}},
	} {
		if err := s.Validate(top); err == nil {
			t.Errorf("%s: Validate accepted %v", name, s)
		}
	}
}

// lastRouterPort returns a port of the last router whose canonical end
// is elsewhere (any router-router port of the highest-index router).
func lastRouterPort(top topology.Topology) int {
	r := top.Routers() - 1
	for p, port := range top.RouterPorts(r) {
		if port.Kind == topology.PortRouter && (port.Peer < r || (port.Peer == r && port.PeerPort < p)) {
			return p
		}
	}
	return 0
}

func TestSeedFrom(t *testing.T) {
	if SeedFrom("a") == SeedFrom("b") {
		t.Error("distinct fingerprints hashed to the same seed")
	}
	if SeedFrom("x") != SeedFrom("x") {
		t.Error("SeedFrom is not deterministic")
	}
}

func TestResolveFlag(t *testing.T) {
	top := testCube(t)
	// A non-file argument is syntax-checked and passed through verbatim.
	spec, err := ResolveFlag("rand-links:2@50")
	if err != nil || spec != "rand-links:2@50" {
		t.Fatalf("ResolveFlag(spec) = %q, %v", spec, err)
	}
	if _, err := ResolveFlag("warp:0@5"); err == nil {
		t.Error("ResolveFlag accepted a bad spec")
	}
	if spec, err := ResolveFlag(""); err != nil || spec != "" {
		t.Errorf("ResolveFlag(\"\") = %q, %v", spec, err)
	}

	// A file argument decodes and canonicalizes, so the config carries
	// the contents, not the path.
	s, err := Parse("link:0:0@10-20,router:2@5", top, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/sched.jsonl"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ResolveFlag(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != s.Canonical() {
		t.Errorf("ResolveFlag(file) = %q, want canonical %q", got, s.Canonical())
	}

	// A header-only file holds no events and is rejected loudly rather
	// than silently running fault-free.
	empty := t.TempDir() + "/empty.jsonl"
	if err := os.WriteFile(empty, []byte(`{"schema":"smart/faults/v1"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ResolveFlag(empty); err == nil {
		t.Error("ResolveFlag accepted an event-free schedule file")
	}
}

// fakeTarget records controller mask writes in call order.
type fakeTarget struct {
	calls []string
}

func (f *fakeTarget) SetLinkDown(r, p int, down bool) {
	f.calls = append(f.calls, fmtCall("link", r, p, down))
}

func (f *fakeTarget) SetRouterDown(r int, down bool) {
	f.calls = append(f.calls, fmtCall("router", r, -1, down))
}

func fmtCall(kind string, r, p int, down bool) string {
	s := kind + ":" + strconv.Itoa(r)
	if p >= 0 {
		s += ":" + strconv.Itoa(p)
	}
	if down {
		return s + ":down"
	}
	return s + ":up"
}

func TestControllerReplay(t *testing.T) {
	top := testCube(t)
	s, err := Parse("link:0:0@10-20,router:2@15", top, 1)
	if err != nil {
		t.Fatal(err)
	}
	cr, cp, _ := canonicalLink(top, 0, 0)
	tgt := &fakeTarget{}
	c := NewController(s, tgt)
	c.tick(9)
	if len(tgt.calls) != 0 || c.Applied() != 0 {
		t.Fatalf("events fired before their cycle: %v", tgt.calls)
	}
	c.tick(10)
	if want := []string{fmtCall("link", cr, cp, true)}; !reflect.DeepEqual(tgt.calls, want) {
		t.Fatalf("cycle 10: calls = %v, want %v", tgt.calls, want)
	}
	c.tick(10) // re-ticking the same cycle must not replay
	if len(tgt.calls) != 1 {
		t.Fatalf("event replayed on repeated tick: %v", tgt.calls)
	}
	c.tick(25) // a coarse jump applies every due event, in order
	want := []string{
		fmtCall("link", cr, cp, true),
		fmtCall("router", 2, -1, true),
		fmtCall("link", cr, cp, false),
	}
	if !reflect.DeepEqual(tgt.calls, want) {
		t.Fatalf("cycle 25: calls = %v, want %v", tgt.calls, want)
	}
	if c.Applied() != 3 {
		t.Errorf("Applied() = %d, want 3", c.Applied())
	}
}
