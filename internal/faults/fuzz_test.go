package faults

import (
	"bytes"
	"reflect"
	"testing"

	"smart/internal/topology"
)

// FuzzFaultSpec throws arbitrary spec strings and seeds at the
// parser and asserts the package's determinism contract on everything
// that parses: the schedule validates, expansion is a pure function of
// (spec, topology, seed), Canonical() re-parses to the identical
// schedule under any seed, and the JSONL encoding round-trips.
func FuzzFaultSpec(f *testing.F) {
	f.Add("link:0:0@5", uint64(1))
	f.Add("link:0:0@5-9,router:2@100-200", uint64(42))
	f.Add("rand-links:4@1000-2000", uint64(7))
	f.Add("rand-routers:3@10,rand-links:2@20-30", uint64(99))
	f.Add("router:15@0-1", uint64(3))
	f.Add("link:0:0@5,link:0:0@9", uint64(0)) // invalid: down twice
	f.Add("warp:0@5", uint64(0))              // invalid: unknown kind
	f.Add("", uint64(0))
	cube, err := topology.NewCube(4, 2)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, spec string, seed uint64) {
		s, err := Parse(spec, cube, seed)
		if err != nil {
			// CheckSpec must never pass a spec whose failure Parse
			// attributes to syntax rather than the topology; syntax
			// errors surface identically in both.
			return
		}
		if spec == "" {
			if s != nil {
				t.Fatalf("empty spec produced %v", s)
			}
			return
		}
		if err := CheckSpec(spec); err != nil {
			t.Fatalf("Parse accepted %q but CheckSpec rejects it: %v", spec, err)
		}
		if err := s.Validate(cube); err != nil {
			t.Fatalf("Parse(%q) returned an invalid schedule: %v", spec, err)
		}
		again, err := Parse(spec, cube, seed)
		if err != nil || !reflect.DeepEqual(s, again) {
			t.Fatalf("Parse(%q, seed %d) is not deterministic: %v vs %v (%v)", spec, seed, s, again, err)
		}
		// Canonical is fully explicit: it must re-parse identically
		// under a different seed.
		canon, err := Parse(s.Canonical(), cube, seed+1)
		if err != nil {
			t.Fatalf("Canonical() of %q = %q does not parse: %v", spec, s.Canonical(), err)
		}
		if !reflect.DeepEqual(s, canon) {
			t.Fatalf("canonical round-trip of %q diverged:\n%v\n%v", spec, s, canon)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, s); err != nil {
			t.Fatal(err)
		}
		decoded, err := Decode(&buf)
		if err != nil {
			t.Fatalf("encoded schedule of %q does not decode: %v", spec, err)
		}
		if !reflect.DeepEqual(s, decoded) {
			t.Fatalf("JSONL round-trip of %q diverged:\n%v\n%v", spec, s, decoded)
		}
	})
}
