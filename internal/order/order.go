// Package order provides deterministic iteration over the one Go data
// structure that refuses to iterate reproducibly: the map. The
// determinism contract (see DESIGN.md §8 and cmd/smartlint) bans
// ranging over maps in simulation and reporting code; code that needs
// a map's contents walks order.Keys instead, so every table, CSV and
// trace the system emits is byte-stable across runs.
package order

import (
	"cmp"
	"slices"
)

// Keys returns m's keys in ascending order. It is the sanctioned way
// to iterate a map under the determinism contract: the unordered walk
// is confined to this helper and its order never escapes, because the
// keys are sorted before they are returned.
func Keys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	//smartlint:allow maprange — the unordered walk is sealed here: keys are sorted before return
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
