package order

import (
	"testing"
)

func TestKeysSorted(t *testing.T) {
	m := map[int]string{5: "e", 1: "a", 3: "c", 2: "b", 4: "d"}
	got := Keys(m)
	want := []int{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("Keys returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys returned %v, want %v", got, want)
		}
	}
}

func TestKeysEmpty(t *testing.T) {
	if got := Keys(map[string]int{}); len(got) != 0 {
		t.Fatalf("Keys of empty map = %v, want empty", got)
	}
}

// packetID mirrors the defined integer key types the simulator uses
// (e.g. wormhole.PacketID): the ~-constraint must accept them.
type packetID int64

func TestKeysDefinedType(t *testing.T) {
	m := map[packetID]int{9: 0, 2: 0, 7: 0}
	got := Keys(m)
	want := []packetID{2, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys returned %v, want %v", got, want)
		}
	}
}

// TestKeysStable runs Keys repeatedly over the same map: the returned
// order must be identical every time — the whole point of the helper.
func TestKeysStable(t *testing.T) {
	m := map[string]int{}
	for _, k := range []string{"tree", "cube", "uniform", "transpose", "bitrev", "complement"} {
		m[k] = len(k)
	}
	first := Keys(m)
	for i := 0; i < 100; i++ {
		again := Keys(m)
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("iteration %d: order changed: %v vs %v", i, again, first)
			}
		}
	}
}
