package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smart/internal/core"
	"smart/internal/metrics"
	"smart/internal/obs"
	"smart/internal/store"
)

var update = flag.Bool("update", false, "rewrite the golden HTTP fixtures")

// fakeRun is a deterministic stand-in for core.RunWith: it fabricates a
// record as a pure function of the config (fixed WallMS, so response
// bodies are byte-stable across test runs) and honors the write-back
// contract by putting it through the store.
func fakeRun(execs *atomic.Int64) func(core.Config, core.Options) (core.Result, error) {
	return func(cfg core.Config, o core.Options) (core.Result, error) {
		if execs != nil {
			execs.Add(1)
		}
		raw, err := json.Marshal(cfg)
		if err != nil {
			return core.Result{}, err
		}
		rec := obs.RunRecord{
			Schema:      obs.RunSchema,
			Label:       cfg.Label(),
			Pattern:     cfg.Pattern,
			Seed:        cfg.Seed,
			Load:        cfg.Load,
			Fingerprint: cfg.Fingerprint(),
			Config:      raw,
			Sample: metrics.Sample{
				Offered:          cfg.Load,
				CreatedLoad:      cfg.Load,
				Accepted:         cfg.Load * 0.9,
				AvgLatency:       20,
				PacketsDelivered: 1000,
			},
			Cycles: cfg.Horizon,
			WallMS: 1.25,
		}
		if o.Store != nil {
			if _, err := o.Store.Put(rec); err != nil {
				return core.Result{}, err
			}
		}
		return core.Result{Config: cfg, Sample: rec.Sample}, nil
	}
}

// newTestService wires a Service over a fresh store behind an
// httptest server. A nil run keeps the real grid.
func newTestService(t *testing.T, run func(core.Config, core.Options) (core.Result, error)) (*Service, string) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	svc := New(st, Options{Workers: 4, Queue: 8})
	if run != nil {
		svc.run = run
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts.URL
}

// testConfigJSON is the canonical request body of the conformance
// suite; it must stay stable or every golden fixture shifts.
const testConfigJSON = `{"Network":"tree","Algorithm":"adaptive","VCs":2,"K":4,"N":2,"Pattern":"uniform","Load":0.3,"Seed":3,"Warmup":300,"Horizon":1500}`

func post(t *testing.T, url, body string, header http.Header) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, url string, header http.Header) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// golden compares got with the named fixture, rewriting it under
// -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: body diverges from golden:\n got: %s\nwant: %s", name, got, want)
	}
}

func TestRunConformance(t *testing.T) {
	_, url := newTestService(t, fakeRun(nil))

	// Cold miss executes and answers with the record.
	miss, missBody := post(t, url+"/v1/run", testConfigJSON, nil)
	if miss.StatusCode != http.StatusOK {
		t.Fatalf("miss status %d: %s", miss.StatusCode, missBody)
	}
	if c := miss.Header.Get("X-Smart-Cache"); c != CacheMiss {
		t.Errorf("cold X-Smart-Cache = %q, want %q", c, CacheMiss)
	}
	etag := miss.Header.Get("ETag")
	if !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) || len(etag) < 10 {
		t.Errorf("ETag %q is not a strong quoted digest", etag)
	}
	golden(t, "run_body.json", missBody)

	// Warm hit: same body, byte for byte, only the header differs.
	hit, hitBody := post(t, url+"/v1/run", testConfigJSON, nil)
	if hit.StatusCode != http.StatusOK {
		t.Fatalf("hit status %d", hit.StatusCode)
	}
	if c := hit.Header.Get("X-Smart-Cache"); c != CacheHit {
		t.Errorf("warm X-Smart-Cache = %q, want %q", c, CacheHit)
	}
	if !bytes.Equal(missBody, hitBody) {
		t.Errorf("hit body diverges from miss body:\n miss: %s\n  hit: %s", missBody, hitBody)
	}
	if hit.Header.Get("ETag") != etag {
		t.Errorf("hit ETag %q != miss ETag %q", hit.Header.Get("ETag"), etag)
	}

	// Revalidation with the current digest is 304 with no body.
	notMod, nmBody := post(t, url+"/v1/run", testConfigJSON, http.Header{"If-None-Match": {etag}})
	if notMod.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match status %d, want 304", notMod.StatusCode)
	}
	if len(nmBody) != 0 {
		t.Errorf("304 carried a body: %q", nmBody)
	}

	// The digest in the body is the record's content digest, and the
	// ETag is exactly that digest quoted.
	var rr RunResponse
	if err := json.Unmarshal(missBody, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Schema != Schema {
		t.Errorf("response schema %q, want %q", rr.Schema, Schema)
	}
	if want := obs.Digest([]obs.RunRecord{rr.Record}); rr.Digest != want {
		t.Errorf("body digest %s does not recompute from the record (%s)", rr.Digest, want)
	}
	if etag != `"`+rr.Digest+`"` {
		t.Errorf("ETag %q != quoted digest %q", etag, rr.Digest)
	}

	// The stored result is addressable by fingerprint, byte-identically.
	res, resBody := get(t, url+"/v1/result/"+rr.Fingerprint, nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", res.StatusCode)
	}
	if !bytes.Equal(resBody, missBody) {
		t.Errorf("/v1/result body diverges from /v1/run body")
	}

	// Unknown fingerprints are 404 with a deterministic body.
	missing, missingBody := get(t, url+"/v1/result/deadbeefdeadbeef", nil)
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("missing-result status %d, want 404", missing.StatusCode)
	}
	golden(t, "result_missing.json", missingBody)

	// A typoed field must not fingerprint as a different experiment.
	invalid, invalidBody := post(t, url+"/v1/run", `{"Nettwork":"tree"}`, nil)
	if invalid.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid-config status %d, want 400", invalid.StatusCode)
	}
	golden(t, "run_invalid.json", invalidBody)
}

// TestRunRejectedConfig exercises the real grid's config validation
// through the service: a semantically impossible config is refused
// with 422 and the grid's own error text, and nothing is stored.
func TestRunRejectedConfig(t *testing.T) {
	svc, url := newTestService(t, nil)
	resp, body := post(t, url+"/v1/run", `{"Network":"tree","Algorithm":"duato"}`, nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("rejected-config status %d, want 422: %s", resp.StatusCode, body)
	}
	golden(t, "run_rejected.json", body)
	if svc.store.Len() != 0 {
		t.Errorf("rejected config left %d store records", svc.store.Len())
	}
}

func TestSweepConformance(t *testing.T) {
	execs := &atomic.Int64{}
	_, url := newTestService(t, fakeRun(execs))
	spec := fmt.Sprintf(`{"config":%s,"loads":[0.1,0.2,0.3]}`, testConfigJSON)

	cold, coldBody := post(t, url+"/v1/sweep", spec, nil)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold sweep status %d: %s", cold.StatusCode, coldBody)
	}
	if c := cold.Header.Get("X-Smart-Cache"); c != CacheMiss {
		t.Errorf("cold sweep X-Smart-Cache = %q, want %q", c, CacheMiss)
	}
	golden(t, "sweep_body.json", coldBody)

	warm, warmBody := post(t, url+"/v1/sweep", spec, nil)
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm sweep status %d", warm.StatusCode)
	}
	if c := warm.Header.Get("X-Smart-Cache"); c != CacheHit {
		t.Errorf("warm sweep X-Smart-Cache = %q, want %q", c, CacheHit)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Errorf("warm sweep body diverges from cold body")
	}
	if got := execs.Load(); got != 3 {
		t.Errorf("%d executions across cold+warm sweep, want 3 (one per load)", got)
	}

	var sr SweepResponse
	if err := json.Unmarshal(coldBody, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Records) != 3 {
		t.Fatalf("%d records, want 3", len(sr.Records))
	}
	for i, rec := range sr.Records {
		if rec.Index != i {
			t.Errorf("record %d stamped index %d", i, rec.Index)
		}
	}
	if want := obs.Digest(sr.Records); sr.Digest != want {
		t.Errorf("sweep digest %s does not recompute from the records (%s)", sr.Digest, want)
	}
	if cold.Header.Get("ETag") != `"`+sr.Digest+`"` {
		t.Errorf("sweep ETag %q != quoted digest %q", cold.Header.Get("ETag"), sr.Digest)
	}

	notMod, _ := post(t, url+"/v1/sweep", spec, http.Header{"If-None-Match": {cold.Header.Get("ETag")}})
	if notMod.StatusCode != http.StatusNotModified {
		t.Fatalf("sweep If-None-Match status %d, want 304", notMod.StatusCode)
	}

	empty, _ := post(t, url+"/v1/sweep", fmt.Sprintf(`{"config":%s,"loads":[]}`, testConfigJSON), nil)
	if empty.StatusCode != http.StatusBadRequest {
		t.Errorf("empty-loads status %d, want 400", empty.StatusCode)
	}
}

// TestConcurrentIdenticalRequestsExecuteOnce is the coalescing
// contract under the race detector: N identical requests in flight at
// once produce exactly one execution, and every response carries the
// identical body and digest.
func TestConcurrentIdenticalRequestsExecuteOnce(t *testing.T) {
	execs := &atomic.Int64{}
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	gated := func(cfg core.Config, o core.Options) (core.Result, error) {
		once.Do(func() { close(entered) })
		<-release
		return fakeRun(execs)(cfg, o)
	}
	_, url := newTestService(t, gated)

	const n = 8
	type reply struct {
		status int
		cache  string
		etag   string
		body   []byte
	}
	replies := make(chan reply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := post(t, url+"/v1/run", testConfigJSON, nil)
			replies <- reply{resp.StatusCode, resp.Header.Get("X-Smart-Cache"), resp.Header.Get("ETag"), body}
		}()
	}
	<-entered
	// Give the other requests a moment to join the flight; stragglers
	// that arrive after the release become store hits, which is equally
	// execute-once.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	close(replies)

	var first reply
	counts := map[string]int{}
	for r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("status %d: %s", r.status, r.body)
		}
		counts[r.cache]++
		if first.body == nil {
			first = r
			continue
		}
		if !bytes.Equal(r.body, first.body) {
			t.Errorf("response bodies diverge:\n%s\n%s", r.body, first.body)
		}
		if r.etag != first.etag {
			t.Errorf("ETags diverge: %q vs %q", r.etag, first.etag)
		}
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("%d executions for %d concurrent identical requests, want exactly 1", got, n)
	}
	if counts[CacheMiss] != 1 {
		t.Errorf("cache statuses %v: want exactly one %q", counts, CacheMiss)
	}
	if counts[CacheCoalesced]+counts[CacheHit] != n-1 {
		t.Errorf("cache statuses %v: want %d coalesced-or-hit", counts, n-1)
	}
}

func TestMetricsAndHealth(t *testing.T) {
	_, url := newTestService(t, fakeRun(nil))
	post(t, url+"/v1/run", testConfigJSON, nil)    // miss
	post(t, url+"/v1/run", testConfigJSON, nil)    // hit
	get(t, url+"/v1/result/0000000000000000", nil) // 404 -> errors_total

	health, healthBody := get(t, url+"/healthz", nil)
	if health.StatusCode != http.StatusOK || string(healthBody) != "ok\n" {
		t.Fatalf("healthz: %d %q", health.StatusCode, healthBody)
	}

	resp, body := get(t, url+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"smart_serve_requests_total 4", // run miss + run hit + 404 result + healthz
		"smart_serve_cache_hits_total 1",
		"smart_serve_cache_misses_total 1",
		"smart_serve_cache_coalesced_total 0",
		"smart_serve_errors_total 1",
		"smart_serve_inflight 0",
		"smart_store_records 1",
		"smart_store_segments 1",
	} {
		if !strings.Contains(string(body), want+"\n") {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestBusyRefusal pins the admission contract: when Workers executions
// are running and Queue more are waiting, a fresh miss is refused with
// 503 rather than queued without bound.
func TestBusyRefusal(t *testing.T) {
	release := make(chan struct{})
	var entered sync.WaitGroup
	entered.Add(1)
	var once sync.Once
	gated := func(cfg core.Config, o core.Options) (core.Result, error) {
		once.Do(entered.Done)
		<-release
		return fakeRun(nil)(cfg, o)
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	svc := New(st, Options{Workers: 1, Queue: 0})
	svc.run = gated
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		post(t, ts.URL+"/v1/run", testConfigJSON, nil)
	}()
	entered.Wait()

	// A different config (different fingerprint, so no coalescing) must
	// be refused while the only worker slot is held.
	other := strings.Replace(testConfigJSON, `"Load":0.3`, `"Load":0.4`, 1)
	resp, body := post(t, ts.URL+"/v1/run", other, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("busy status %d, want 503: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Schema != Schema {
		t.Fatalf("busy body %q: %v", body, err)
	}
	close(release)
	wg.Wait()
}
