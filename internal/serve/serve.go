// Package serve turns the experiment grid into a service: an HTTP API
// in front of the content-addressed result store (internal/store).
//
// A POSTed config is fingerprinted exactly like the command-line tools
// fingerprint theirs, so the service, cmd/sweep and cmd/batch all
// address the same cache. A config the store holds is answered
// immediately from disk; a miss is executed on a bounded worker pool
// and written back through the store, so the next request — or the
// next process — is a hit. Identical configs requested concurrently
// coalesce into one execution: the first request runs, the rest wait
// on its flight and share the record.
//
// Responses carry a strong ETag derived from the record's content
// digest (obs.Digest of the canonical, position-free record), so
// revalidation is exact: If-None-Match with the current digest gets
// 304 Not Modified. Whether a response was served from cache is
// reported only in the X-Smart-Cache header (hit, miss or coalesced) —
// never in the body — so hit and miss bodies for the same config are
// byte-identical.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"

	"smart/internal/core"
	"smart/internal/obs"
	"smart/internal/resilience"
	"smart/internal/sim"
	"smart/internal/store"
)

// Schema versions the service's response bodies.
const Schema = "smart/serve/v1"

// Cache statuses reported in the X-Smart-Cache header.
const (
	CacheHit       = "hit"
	CacheMiss      = "miss"
	CacheCoalesced = "coalesced"
)

// Options configures a Service. The zero value is usable: GOMAXPROCS
// workers, no extra queue, automatic shard count, the commands' default
// watchdog.
type Options struct {
	// Workers bounds concurrent executions (default GOMAXPROCS).
	Workers int
	// Queue is how many misses beyond Workers may wait for a slot
	// before new misses are refused with 503 (default 0).
	Queue int
	// Shards is the per-run fabric shard count (0 = auto, 1 =
	// sequential); results are bit-identical for every value.
	Shards int
	// Watchdog is the no-progress cycle budget stamped onto configs
	// that do not set their own, mirroring the command-line default so
	// served fingerprints match cmd/sweep's. 0 means the default;
	// negative disables stamping.
	Watchdog int64
	// Logger receives structured request and run events.
	Logger *slog.Logger
}

// Service is the HTTP front end over one result store.
type Service struct {
	store *store.Store
	opts  Options
	// run executes one config; tests inject a deterministic stand-in.
	run func(core.Config, core.Options) (core.Result, error)

	//smartlint:allow concurrency — the service serializes HTTP handler state off the simulation cycle path; runs execute through core, which owns engine concurrency
	mu      sync.Mutex
	flights map[string]*flight
	pending int
	sem     chan struct{}

	// Counters (under mu). Requests counts every handled request;
	// hits/misses/coalesced classify run and sweep cache outcomes;
	// busy counts 503 refusals; failures counts error responses.
	requests, hits, misses, coalesced, busy, failures int64
}

// flight is one in-progress execution that concurrent requests for the
// same fingerprint share.
type flight struct {
	done   chan struct{}
	rec    obs.RunRecord
	digest string
	err    error
}

// New returns a Service over st.
func New(st *store.Store, opts Options) *Service {
	if opts.Workers < 1 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Queue < 0 {
		opts.Queue = 0
	}
	if opts.Watchdog == 0 {
		opts.Watchdog = resilience.DefaultWatchdogCycles
	}
	return &Service{
		store:   st,
		opts:    opts,
		run:     core.RunWith,
		flights: map[string]*flight{},
		sem:     make(chan struct{}, opts.Workers),
	}
}

// RunResponse is the body of /v1/run and /v1/result answers.
type RunResponse struct {
	Schema      string        `json:"schema"`
	Fingerprint string        `json:"fingerprint"`
	Digest      string        `json:"digest"`
	Record      obs.RunRecord `json:"record"`
}

// SweepSpec is the body of a /v1/sweep request: one base config run at
// each load, exactly like cmd/sweep's grid.
type SweepSpec struct {
	Config core.Config `json:"config"`
	Loads  []float64   `json:"loads"`
}

// SweepResponse is the body of a /v1/sweep answer. Records are stamped
// with their grid index, so Digest — the manifest digest of the records
// — equals the digest of a direct cmd/sweep manifest over the same
// grid.
type SweepResponse struct {
	Schema  string          `json:"schema"`
	Digest  string          `json:"digest"`
	Records []obs.RunRecord `json:"records"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Schema string `json:"schema"`
	Error  string `json:"error"`
}

// errBusy refuses a miss when Workers executions are running and Queue
// more are already waiting.
var errBusy = errors.New("serve: all workers busy and the queue is full; retry later")

// internalError marks failures that are the server's fault (store I/O,
// a run that completed without a record) as distinct from configs the
// grid rejects.
type internalError struct{ err error }

func (e internalError) Error() string { return e.err.Error() }
func (e internalError) Unwrap() error { return e.err }

// statusOf maps an execution error to its HTTP status: pool saturation
// is 503, stalls/panics/store failures are the server's fault (500),
// and everything else is a config the grid rejected (422).
func statusOf(err error) int {
	if errors.Is(err, errBusy) {
		return http.StatusServiceUnavailable
	}
	var ie internalError
	var st *sim.StallError
	var pe *resilience.PanicError
	if errors.As(err, &ie) || errors.As(err, &st) || errors.As(err, &pe) {
		return http.StatusInternalServerError
	}
	return http.StatusUnprocessableEntity
}

// prepare normalizes a posted config the way the commands normalize
// theirs: defaults filled, the service watchdog stamped onto configs
// that do not carry their own.
func (s *Service) prepare(cfg core.Config) core.Config {
	if cfg.WatchdogCycles == 0 && s.opts.Watchdog > 0 {
		cfg.WatchdogCycles = s.opts.Watchdog
	}
	return cfg.WithDefaults()
}

// result returns the canonical (position-free) record for cfg, served
// from the store when possible and otherwise executed at most once per
// fingerprint across concurrent requests. The returned status is the
// X-Smart-Cache classification.
func (s *Service) result(cfg core.Config) (obs.RunRecord, string, string, error) {
	full := s.prepare(cfg)
	fp := full.Fingerprint()
	rec, digest, ok, err := s.store.Get(fp)
	if err != nil {
		return obs.RunRecord{}, "", "", internalError{fmt.Errorf("store read: %w", err)}
	}
	if ok {
		s.bump(&s.hits)
		return rec, digest, CacheHit, nil
	}

	s.mu.Lock()
	if f, ok := s.flights[fp]; ok {
		s.mu.Unlock()
		<-f.done
		if f.err != nil {
			return obs.RunRecord{}, "", "", f.err
		}
		s.bump(&s.coalesced)
		return f.rec, f.digest, CacheCoalesced, nil
	}
	// No flight — but the record may have landed between the unlocked
	// store check above and here. Re-check under the lock, which
	// serializes with flight teardown (the winner deletes its flight
	// only after the write-back), so a fingerprint executes exactly
	// once no matter how requests interleave.
	rec, digest, ok, err = s.store.Get(fp)
	if err != nil {
		s.mu.Unlock()
		return obs.RunRecord{}, "", "", internalError{fmt.Errorf("store read: %w", err)}
	}
	if ok {
		s.hits++
		s.mu.Unlock()
		return rec, digest, CacheHit, nil
	}
	if s.pending >= cap(s.sem)+s.opts.Queue {
		s.busy++
		s.mu.Unlock()
		return obs.RunRecord{}, "", "", errBusy
	}
	s.pending++
	f := &flight{done: make(chan struct{})}
	s.flights[fp] = f
	s.mu.Unlock()

	f.rec, f.digest, f.err = s.execute(full, fp)
	s.mu.Lock()
	delete(s.flights, fp)
	s.pending--
	s.mu.Unlock()
	close(f.done)
	if f.err != nil {
		return obs.RunRecord{}, "", "", f.err
	}
	s.bump(&s.misses)
	return f.rec, f.digest, CacheMiss, nil
}

// execute runs one prepared config on the worker pool, isolating
// panics, and reads the written-back record out of the store.
func (s *Service) execute(full core.Config, fp string) (obs.RunRecord, string, error) {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	err := resilience.Run(func() error {
		_, rerr := s.run(full, core.Options{
			Store:  s.store,
			Shards: s.opts.Shards,
			Logger: s.opts.Logger,
		})
		return rerr
	})
	if err != nil {
		return obs.RunRecord{}, "", err
	}
	rec, digest, ok, gerr := s.store.Get(fp)
	if gerr != nil {
		return obs.RunRecord{}, "", internalError{fmt.Errorf("store read after run: %w", gerr)}
	}
	if !ok {
		return obs.RunRecord{}, "", internalError{fmt.Errorf("run %s completed without a store record", fp)}
	}
	return rec, digest, nil
}

// Handler returns the service mux:
//
//	POST /v1/run         config JSON -> RunResponse
//	POST /v1/sweep       SweepSpec JSON -> SweepResponse
//	GET  /v1/result/{fp} stored record by fingerprint (no execution)
//	GET  /metrics        Prometheus text exposition
//	GET  /healthz        liveness
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/result/{fp}", s.handleResult)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// Serve listens on addr and serves the Handler until the listener is
// closed, returning the bound listener so callers can report the
// ephemeral port of ":0" and close on shutdown.
func (s *Service) Serve(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	//smartlint:allow concurrency — the HTTP loop must accept while request handlers execute runs
	go srv.Serve(ln)
	return ln, nil
}

func (s *Service) bump(c *int64) {
	s.mu.Lock()
	*c++
	s.mu.Unlock()
}

// decodeConfig strictly decodes one config object: unknown fields and
// trailing data are errors, so a typoed field name cannot silently
// fingerprint as a different experiment.
func decodeConfig(r io.Reader) (core.Config, error) {
	var cfg core.Config
	if err := decodeStrict(r, &cfg); err != nil {
		return core.Config{}, fmt.Errorf("decoding config: %w", err)
	}
	return cfg, nil
}

func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after the JSON body")
	}
	return nil
}

func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	s.bump(&s.requests)
	cfg, err := decodeConfig(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	rec, digest, status, err := s.result(cfg)
	if err != nil {
		s.writeError(w, statusOf(err), err)
		return
	}
	w.Header().Set("X-Smart-Cache", status)
	s.writeJSON(w, r, digest, RunResponse{
		Schema:      Schema,
		Fingerprint: rec.Fingerprint,
		Digest:      digest,
		Record:      rec,
	})
}

func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.bump(&s.requests)
	var spec SweepSpec
	if err := decodeStrict(r.Body, &spec); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding sweep spec: %w", err))
		return
	}
	if len(spec.Loads) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("sweep spec has no loads"))
		return
	}
	// Loads run sequentially through the same per-fingerprint flights
	// as /v1/run, so concurrent sweeps over overlapping grids still
	// execute each point once. Records are stamped with their grid
	// index, making the response digest equal a cmd/sweep manifest's.
	status := CacheHit
	records := make([]obs.RunRecord, len(spec.Loads))
	for i, load := range spec.Loads {
		cfg := spec.Config
		cfg.Load = load
		rec, _, st, err := s.result(cfg)
		if err != nil {
			s.writeError(w, statusOf(err), fmt.Errorf("sweep point %d (load %g): %w", i, load, err))
			return
		}
		status = worseCache(status, st)
		rec.Index = i
		records[i] = rec
	}
	w.Header().Set("X-Smart-Cache", status)
	s.writeJSON(w, r, obs.Digest(records), SweepResponse{
		Schema:  Schema,
		Digest:  obs.Digest(records),
		Records: records,
	})
}

// worseCache orders cache statuses hit < coalesced < miss and returns
// the worse of the two: a sweep is only a "hit" if every point was.
func worseCache(a, b string) string {
	rank := func(s string) int {
		switch s {
		case CacheMiss:
			return 2
		case CacheCoalesced:
			return 1
		default:
			return 0
		}
	}
	if rank(b) > rank(a) {
		return b
	}
	return a
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	s.bump(&s.requests)
	fp := r.PathValue("fp")
	rec, digest, ok, err := s.store.Get(fp)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, fmt.Errorf("store read: %w", err))
		return
	}
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no result for fingerprint %q", fp))
		return
	}
	s.bump(&s.hits)
	w.Header().Set("X-Smart-Cache", CacheHit)
	s.writeJSON(w, r, digest, RunResponse{
		Schema:      Schema,
		Fingerprint: rec.Fingerprint,
		Digest:      digest,
		Record:      rec,
	})
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.bump(&s.requests)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	requests, hits, misses := s.requests, s.hits, s.misses
	coalesced, busy, failures := s.coalesced, s.busy, s.failures
	pending := s.pending
	s.mu.Unlock()
	stats := s.store.Stats()

	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("smart_serve_requests_total", "HTTP requests handled.", requests)
	counter("smart_serve_cache_hits_total", "Requests answered from the store.", hits)
	counter("smart_serve_cache_misses_total", "Requests that executed a run.", misses)
	counter("smart_serve_cache_coalesced_total", "Requests that joined another request's execution.", coalesced)
	counter("smart_serve_busy_total", "Requests refused because the worker pool was saturated.", busy)
	counter("smart_serve_errors_total", "Requests that ended in an error response.", failures)
	gauge("smart_serve_inflight", "Executions running or queued right now.", int64(pending))
	gauge("smart_store_records", "Distinct fingerprints in the store.", int64(stats.Records))
	gauge("smart_store_segments", "Store segment files.", int64(stats.Segments))
	gauge("smart_store_bytes", "Bytes across store segments.", stats.Bytes)
	gauge("smart_store_superseded_records", "On-disk entries shadowed by a later write (reclaimable by compaction).", stats.Superseded)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, b.String())
}

// writeJSON answers with body and a strong ETag over digest, honoring
// If-None-Match revalidation with 304.
func (s *Service) writeJSON(w http.ResponseWriter, r *http.Request, digest string, body any) {
	etag := `"` + digest + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "application/json")
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	data, err := json.Marshal(body)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, fmt.Errorf("encoding response: %w", err))
		return
	}
	w.Write(append(data, '\n'))
}

// etagMatch implements strong If-None-Match comparison: an exact match
// in the comma-separated candidate list, or "*".
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, candidate := range strings.Split(header, ",") {
		candidate = strings.TrimSpace(candidate)
		if candidate == "*" || candidate == etag {
			return true
		}
	}
	return false
}

func (s *Service) writeError(w http.ResponseWriter, status int, err error) {
	s.bump(&s.failures)
	if s.opts.Logger != nil {
		s.opts.Logger.Error("request failed", "status", status, "err", err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, merr := json.Marshal(ErrorResponse{Schema: Schema, Error: err.Error()})
	if merr != nil {
		return
	}
	w.Write(append(data, '\n'))
}
