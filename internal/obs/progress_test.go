package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestProgressCountsAreMonotone(t *testing.T) {
	p := NewProgress(nil, 5, time.Hour)
	prev := p.Snapshot()
	if prev.Completed != 0 || prev.Total != 5 {
		t.Fatalf("fresh snapshot %+v", prev)
	}
	for i := 0; i < 5; i++ {
		p.RunDone(0.1*float64(i+1), 1000)
		s := p.Snapshot()
		if s.Completed != prev.Completed+1 {
			t.Fatalf("completed went %d -> %d", prev.Completed, s.Completed)
		}
		if s.Cycles < prev.Cycles {
			t.Fatalf("cycles went %d -> %d", prev.Cycles, s.Cycles)
		}
		prev = s
	}
	if prev.Completed != 5 || prev.Cycles != 5000 {
		t.Fatalf("final snapshot %+v", prev)
	}
	if prev.ETA != 0 {
		t.Fatalf("completed workload still has ETA %v", prev.ETA)
	}
}

func TestProgressEmitLines(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, 3, time.Hour)
	for i := 0; i < 3; i++ {
		p.RunDone(0.5, 2000)
		p.Emit()
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		want := fmt.Sprintf("%d/3 runs", i+1)
		if !strings.Contains(line, want) {
			t.Fatalf("line %d missing %q: %s", i, want, line)
		}
		if !strings.Contains(line, "load 0.50") {
			t.Fatalf("line %d missing load: %s", i, line)
		}
	}
	if !strings.Contains(lines[2], "done") {
		t.Fatalf("final line not terminal: %s", lines[2])
	}
}

// lockedBuffer makes bytes.Buffer safe for the ticker goroutine.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestProgressStartStop(t *testing.T) {
	var buf lockedBuffer
	p := NewProgress(&buf, 2, time.Millisecond)
	p.Start()
	p.Start() // idempotent
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.RunDone(0.3, 500)
		}()
	}
	wg.Wait()
	time.Sleep(5 * time.Millisecond)
	p.Stop()
	out := buf.String()
	if !strings.Contains(out, "2/2 runs") {
		t.Fatalf("final progress line missing:\n%s", out)
	}
	// Stop emitted a line and halted the ticker; a second Stop is safe.
	p.Stop()
}

func TestProgressNilReceiver(t *testing.T) {
	var p *Progress
	p.Start()
	p.RunDone(0.5, 100)
	p.Emit()
	p.Stop()
	if s := p.Snapshot(); s.Completed != 0 {
		t.Fatalf("nil progress snapshot %+v", s)
	}
}
