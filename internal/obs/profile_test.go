package obs

import (
	"strings"
	"testing"
	"time"

	"smart/internal/sim"
)

// spin busy-waits for roughly d so stage cost dominates timer overhead.
func spin(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

func TestStageProfilerTotalsSumToEngineWallTime(t *testing.T) {
	e := sim.NewEngine()
	e.RegisterFunc("heavy", func(int64) { spin(400 * time.Microsecond) })
	e.RegisterFunc("light", func(int64) { spin(100 * time.Microsecond) })
	p := NewStageProfiler()
	p.Attach(e)

	start := time.Now()
	e.Run(40)
	wall := time.Since(start)

	total := p.Total()
	if total > wall {
		t.Fatalf("stage total %v exceeds engine wall time %v", total, wall)
	}
	// The stages busy-wait for nearly the whole run; the profiler must
	// attribute the bulk of the wall time to them.
	if total < wall/2 {
		t.Fatalf("stage total %v is under half the engine wall time %v", total, wall)
	}
}

func TestStageProfilerReportSortedAndCounted(t *testing.T) {
	e := sim.NewEngine()
	e.RegisterFunc("light", func(int64) { spin(50 * time.Microsecond) })
	e.RegisterFunc("heavy", func(int64) { spin(300 * time.Microsecond) })
	p := NewStageProfiler()
	p.Attach(e)
	const cycles = 30
	e.Run(cycles)

	report := p.Report()
	if len(report) != 2 {
		t.Fatalf("want 2 stages, got %d", len(report))
	}
	if report[0].Name != "heavy" {
		t.Fatalf("hottest stage is %q, want heavy", report[0].Name)
	}
	for _, st := range report {
		if st.Ticks != cycles {
			t.Fatalf("stage %q ticked %d times, want %d", st.Name, st.Ticks, cycles)
		}
		if st.PerTick() <= 0 || st.TicksPerSec() <= 0 {
			t.Fatalf("stage %q has empty derived stats: %+v", st.Name, st)
		}
	}
}

func TestStageProfilerMergesAcrossEngines(t *testing.T) {
	p := NewStageProfiler()
	for range [3]int{} {
		e := sim.NewEngine()
		e.RegisterFunc("shared", func(int64) {})
		p.Attach(e)
		e.Run(10)
	}
	report := p.Report()
	if len(report) != 1 {
		t.Fatalf("want one merged stage, got %d", len(report))
	}
	if report[0].Ticks != 30 {
		t.Fatalf("merged ticks %d, want 30", report[0].Ticks)
	}
}

func TestStageProfilerPreservesStageBehaviour(t *testing.T) {
	e := sim.NewEngine()
	var cycles []int64
	e.RegisterFunc("rec", func(c int64) { cycles = append(cycles, c) })
	NewStageProfiler().Attach(e)
	e.Run(3)
	if len(cycles) != 3 || cycles[0] != 0 || cycles[2] != 2 {
		t.Fatalf("wrapped stage saw cycles %v", cycles)
	}
}

func TestFormatStageReport(t *testing.T) {
	e := sim.NewEngine()
	e.RegisterFunc("routing", func(int64) { spin(20 * time.Microsecond) })
	p := NewStageProfiler()
	p.Attach(e)
	e.Run(5)
	out := FormatStageReport(p.Report())
	for _, want := range []string{"stage", "routing", "share", "cycles/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
