package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smart/internal/sim"
)

// StageProfiler times every engine stage it is attached to, answering
// the question the cost model can only ask: which hardware structure —
// link transfer, crossbar, routing, injection, credits — dominates the
// simulator's wall time. One profiler may be attached to many engines
// (e.g. every simulation of a parallel sweep); counters are merged by
// stage name in the report. All methods are safe for concurrent use.
type StageProfiler struct {
	//smartlint:allow concurrency — profiler registration may race with sampler reads; timings are wall-time instrumentation
	mu     sync.Mutex
	stages []*timedStage
}

// timedStage wraps a stage with atomic tick/time accumulators so the
// per-cycle hot path never takes a lock.
type timedStage struct {
	inner sim.Stage
	ticks atomic.Int64
	ns    atomic.Int64
}

func (t *timedStage) Name() string { return t.inner.Name() }

func (t *timedStage) Tick(cycle int64) {
	start := time.Now()
	t.inner.Tick(cycle)
	t.ns.Add(int64(time.Since(start)))
	t.ticks.Add(1)
}

// NewStageProfiler returns an empty profiler.
func NewStageProfiler() *StageProfiler {
	return &StageProfiler{}
}

// Attach wraps every stage currently registered on the engine with a
// timer. Attach once per engine, after all stages are registered (a
// second Attach would time the timers).
func (p *StageProfiler) Attach(e *sim.Engine) {
	e.Instrument(func(s sim.Stage) sim.Stage {
		ts := &timedStage{inner: s}
		p.mu.Lock()
		p.stages = append(p.stages, ts)
		p.mu.Unlock()
		return ts
	})
}

// StageTiming is the aggregate cost of one named stage across every
// engine the profiler is attached to.
type StageTiming struct {
	Name  string
	Ticks int64
	Total time.Duration
}

// PerTick returns the mean cost of one invocation.
func (t StageTiming) PerTick() time.Duration {
	if t.Ticks == 0 {
		return 0
	}
	return t.Total / time.Duration(t.Ticks)
}

// TicksPerSec returns the stage's throughput in cycles per second of
// its own execution time.
func (t StageTiming) TicksPerSec() float64 {
	if t.Total <= 0 {
		return 0
	}
	return float64(t.Ticks) / t.Total.Seconds()
}

// Report merges the counters by stage name and returns them sorted by
// total time, hottest first (ties broken by name for determinism). It
// may be called while engines are still running; each counter is read
// atomically, so the report is a consistent-enough snapshot for live
// progress displays.
func (p *StageProfiler) Report() []StageTiming {
	p.mu.Lock()
	defer p.mu.Unlock()
	byName := make(map[string]*StageTiming)
	order := make([]string, 0, len(p.stages))
	for _, ts := range p.stages {
		name := ts.Name()
		agg, ok := byName[name]
		if !ok {
			agg = &StageTiming{Name: name}
			byName[name] = agg
			order = append(order, name)
		}
		agg.Ticks += ts.ticks.Load()
		agg.Total += time.Duration(ts.ns.Load())
	}
	report := make([]StageTiming, 0, len(order))
	for _, name := range order {
		report = append(report, *byName[name])
	}
	sort.Slice(report, func(i, j int) bool {
		if report[i].Total != report[j].Total {
			return report[i].Total > report[j].Total
		}
		return report[i].Name < report[j].Name
	})
	return report
}

// Total returns the summed time of all stages — the engine wall time
// attributable to stage work.
func (p *StageProfiler) Total() time.Duration {
	var total time.Duration
	for _, t := range p.Report() {
		total += t.Total
	}
	return total
}

// FormatStageReport renders a report as an aligned text table with each
// stage's share of the total, e.g.
//
//	stage      ticks     total      per-tick   cycles/s     share
//	link       80000     1.92s      24.0µs     41.6k        48.1%
func FormatStageReport(report []StageTiming) string {
	var grand time.Duration
	for _, t := range report {
		grand += t.Total
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %12s %12s %12s %8s\n",
		"stage", "ticks", "total", "per-tick", "cycles/s", "share")
	for _, t := range report {
		share := 0.0
		if grand > 0 {
			share = 100 * float64(t.Total) / float64(grand)
		}
		fmt.Fprintf(&b, "%-12s %10d %12s %12s %12s %7.1f%%\n",
			t.Name, t.Ticks,
			t.Total.Round(time.Microsecond),
			t.PerTick().Round(time.Nanosecond),
			formatRate(t.TicksPerSec()), share)
	}
	return b.String()
}

// formatRate renders a cycles-per-second figure compactly (1.2M, 431k).
func formatRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.1fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	default:
		return fmt.Sprintf("%.0f", r)
	}
}
