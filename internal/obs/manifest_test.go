package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"smart/internal/metrics"
)

func sampleRecord(index int) RunRecord {
	return RunRecord{
		Schema:      RunSchema,
		Batch:       "study",
		Index:       index,
		Label:       "tree adaptive-2vc",
		Pattern:     "uniform",
		Seed:        7,
		Load:        0.35,
		Fingerprint: "deadbeefdeadbeef",
		Config:      json.RawMessage(`{"Network":"tree","VCs":2}`),
		Sample: metrics.Sample{
			Offered: 0.35, Accepted: 0.34, AvgLatency: 41.5,
			PacketsDelivered: 1200, PacketsCreated: 1210,
		},
		Cycles: 20000,
		WallMS: 12.75,
	}
}

func TestManifestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewManifestWriter(&buf)
	want := []RunRecord{sampleRecord(0), sampleRecord(1)}
	for _, rec := range want {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Fatalf("want 2 JSONL lines, got %d:\n%s", lines, buf.String())
	}
	got, err := DecodeManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed records:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestManifestWriteStampsSchema(t *testing.T) {
	var buf bytes.Buffer
	rec := sampleRecord(0)
	rec.Schema = ""
	if err := NewManifestWriter(&buf).Write(rec); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Schema != RunSchema {
		t.Fatalf("schema not stamped: %+v", got)
	}
}

func TestDecodeManifestRejectsUnknownFields(t *testing.T) {
	var buf bytes.Buffer
	if err := NewManifestWriter(&buf).Write(sampleRecord(0)); err != nil {
		t.Fatal(err)
	}
	line := strings.Replace(buf.String(), `"wall_ms"`, `"wall_msx"`, 1)
	if _, err := DecodeManifest(strings.NewReader(line)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestDecodeManifestRejectsUnknownSchema(t *testing.T) {
	var buf bytes.Buffer
	rec := sampleRecord(0)
	rec.Schema = "smart/run/v999"
	if err := NewManifestWriter(&buf).Write(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeManifest(&buf); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

func TestDecodeManifestEmpty(t *testing.T) {
	recs, err := DecodeManifest(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("empty manifest decoded to %d records", len(recs))
	}
}
