package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"smart/internal/metrics"
)

// RunSchema versions the manifest record layout. Decoders reject
// records whose schema they do not understand. v2 added the Failure
// field: a grid no longer aborts on the first bad config, so failed
// runs appear in the manifest alongside completed ones. v3 added the
// Faults field carrying the run's canonical fault schedule.
const RunSchema = "smart/run/v3"

// RunSchemaV2 and RunSchemaV1 are previous layouts, still accepted on
// decode: a v2 record is a v3 record with no faults, a v1 record
// additionally has no failure.
const (
	RunSchemaV2 = "smart/run/v2"
	RunSchemaV1 = "smart/run/v1"
)

// RunRecord is one line of a JSONL run manifest: everything needed to
// identify, reproduce and score a single simulation — the declarative
// config and its fingerprint, the seed, the measured sample, and the
// wall-time cost. Manifests are append-only machine-readable
// trajectories of an experiment campaign, suitable for BENCH_*.json
// style tooling.
//
// The type is digested: its fields feed Digest, so the digestpure rule
// bars writes of run-dependent values (wall clock, shard count,
// GOMAXPROCS derivatives) to any field not marked undigested.
//
//smartlint:digested
type RunRecord struct {
	// Schema is stamped per write and zeroed by Digest.
	//
	//smartlint:undigested
	Schema string `json:"schema"`
	// Batch names the enclosing batch or study ("" for ad-hoc runs);
	// Index is the run's position within it (config index of a batch,
	// load index of a sweep).
	Batch string `json:"batch,omitempty"`
	Index int    `json:"index"`
	// Label, Pattern, Seed and Load identify the experiment point;
	// Fingerprint hashes the fully-defaulted config; Config is its
	// complete JSON encoding.
	Label       string          `json:"label"`
	Pattern     string          `json:"pattern"`
	Seed        uint64          `json:"seed"`
	Load        float64         `json:"load"`
	Fingerprint string          `json:"fingerprint"`
	Config      json.RawMessage `json:"config"`
	// Sample is the windowed measurement; Cycles the simulated cycle
	// count; WallMS the run's wall time in milliseconds (zeroed by
	// Digest — the one sanctioned wall-clock field).
	Sample metrics.Sample `json:"sample"`
	Cycles int64          `json:"cycles"`
	//smartlint:undigested
	WallMS float64 `json:"wall_ms"`
	// Shards is the effective fabric shard count when the run executed
	// on the parallel engine (omitted for sequential runs). Execution
	// detail only: results are bit-identical across shard counts, so
	// Digest zeroes it and checkpoints replay regardless of it.
	//
	//smartlint:undigested
	Shards int `json:"shards,omitempty"`
	// Failure, when non-empty, records why the run produced no sample
	// (a stall diagnosis, a recovered panic); Sample and Cycles are then
	// zero. Introduced with smart/run/v2.
	Failure string `json:"failure,omitempty"`
	// Faults is the run's fault schedule spec (Config.Faults verbatim;
	// empty for unfaulted runs). An outcome field — a faulted run is a
	// different experiment — so the digest keeps it. Introduced with
	// smart/run/v3.
	Faults string `json:"faults,omitempty"`
}

// ManifestWriter appends RunRecords to a stream as JSONL, one record
// per line. Safe for concurrent use by parallel runners.
type ManifestWriter struct {
	//smartlint:allow concurrency — manifest appends from parallel runners must serialize; record order is sorted downstream
	mu  sync.Mutex
	enc *json.Encoder
}

// NewManifestWriter wraps w; the caller keeps ownership of w and closes
// it after the last Write.
func NewManifestWriter(w io.Writer) *ManifestWriter {
	return &ManifestWriter{enc: json.NewEncoder(w)}
}

// Write appends one record, stamping the schema if unset.
func (m *ManifestWriter) Write(rec RunRecord) error {
	if rec.Schema == "" {
		rec.Schema = RunSchema
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.enc.Encode(rec); err != nil {
		return fmt.Errorf("obs: writing manifest record: %w", err)
	}
	return nil
}

// DecodeManifest reads every record of a JSONL manifest, rejecting
// unknown fields (mirroring core.DecodeBatch, so schema drift fails
// loudly) and unknown schema versions.
func DecodeManifest(r io.Reader) ([]RunRecord, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var recs []RunRecord
	for {
		var rec RunRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return recs, nil
			}
			return nil, fmt.Errorf("obs: decoding manifest record %d: %w", len(recs), err)
		}
		if rec.Schema != RunSchema && rec.Schema != RunSchemaV2 && rec.Schema != RunSchemaV1 {
			return nil, fmt.Errorf("obs: manifest record %d has unknown schema %q (want %q)", len(recs), rec.Schema, RunSchema)
		}
		recs = append(recs, rec)
	}
}
