package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// Digest returns a canonical content hash of a set of manifest records.
// Two manifests describing the same experiment outcome digest equal even
// when they differ in the two run-dependent ways a resumed or parallel
// run legitimately introduces: record order (parallel runners finish in
// wall-clock order) and wall time. Records are sorted by (batch, index,
// fingerprint, failure), the schema, WallMS and Shards fields are zeroed
// (shard count is an execution detail, not an outcome), and
// the normalized JSON lines are hashed.
//
// This is the equality the checkpoint/resume contract promises: an
// interrupted sweep resumed with -resume digests identically to an
// uninterrupted one. It is a digestpure sink: smartlint rejects any
// argument derived from wall clock, shard count or GOMAXPROCS.
//
//smartlint:digestsink
func Digest(recs []RunRecord) string {
	canon := make([]RunRecord, len(recs))
	copy(canon, recs)
	for i := range canon {
		canon[i].Schema = ""
		canon[i].WallMS = 0
		canon[i].Shards = 0
	}
	sort.Slice(canon, func(i, j int) bool {
		a, b := &canon[i], &canon[j]
		if a.Batch != b.Batch {
			return a.Batch < b.Batch
		}
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		if a.Fingerprint != b.Fingerprint {
			return a.Fingerprint < b.Fingerprint
		}
		return a.Failure < b.Failure
	})
	h := sha256.New()
	for _, rec := range canon {
		line, err := json.Marshal(rec)
		if err != nil {
			// RunRecord marshals from plain value fields; failure here
			// means the type itself regressed.
			panic(fmt.Sprintf("obs: marshaling canonical record: %v", err))
		}
		h.Write(line)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}
