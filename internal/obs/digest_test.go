package obs

import (
	"bytes"
	"testing"
)

func TestDigestIgnoresOrderAndWallTime(t *testing.T) {
	a := []RunRecord{sampleRecord(0), sampleRecord(1), sampleRecord(2)}
	b := []RunRecord{sampleRecord(2), sampleRecord(0), sampleRecord(1)}
	for i := range b {
		b[i].WallMS = a[0].WallMS * 100
		b[i].Schema = RunSchemaV1
	}
	if Digest(a) != Digest(b) {
		t.Fatal("digest depends on order, wall time or schema stamp")
	}
	// Digest must not mutate its argument.
	if a[0].Index != 0 || a[0].WallMS == 0 {
		t.Fatalf("Digest mutated the input: %+v", a[0])
	}
}

func TestDigestSeesContentChanges(t *testing.T) {
	base := []RunRecord{sampleRecord(0)}
	for name, mutate := range map[string]func(*RunRecord){
		"sample":      func(r *RunRecord) { r.Sample.Accepted += 0.001 },
		"failure":     func(r *RunRecord) { r.Failure = "panic: boom" },
		"fingerprint": func(r *RunRecord) { r.Fingerprint = "feedfacefeedface" },
		"load":        func(r *RunRecord) { r.Load += 0.01 },
	} {
		changed := []RunRecord{sampleRecord(0)}
		mutate(&changed[0])
		if Digest(base) == Digest(changed) {
			t.Fatalf("digest blind to a %s change", name)
		}
	}
	if Digest(nil) == Digest(base) {
		t.Fatal("empty and non-empty manifests digest equal")
	}
}

func TestManifestFailureRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := sampleRecord(0)
	rec.Sample = RunRecord{}.Sample
	rec.Cycles = 0
	rec.Failure = "sim: no progress for 501 cycles with work pending — possible deadlock"
	if err := NewManifestWriter(&buf).Write(rec); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Failure != rec.Failure {
		t.Fatalf("failure field lost in round trip: %+v", got)
	}
}

func TestDecodeManifestAcceptsV1(t *testing.T) {
	var buf bytes.Buffer
	rec := sampleRecord(0)
	rec.Schema = RunSchemaV1
	if err := NewManifestWriter(&buf).Write(rec); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(&buf)
	if err != nil {
		t.Fatalf("v1 record rejected: %v", err)
	}
	if len(got) != 1 || got[0].Schema != RunSchemaV1 || got[0].Failure != "" {
		t.Fatalf("v1 record decoded as %+v", got)
	}
}
