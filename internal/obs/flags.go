package obs

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags is the shared observability flag set of the commands:
// -cpuprofile, -memprofile, -trace for the standard Go profilers, and
// -v/-log-format for structured run logging. Register with AddFlags
// before flag.Parse, then bracket main's work with Start and its
// returned stop function.
type Flags struct {
	CPUProfile string
	MemProfile string
	Trace      string
	Verbose    bool
	LogFormat  string
}

// AddFlags registers the observability flags on fs (flag.CommandLine in
// the commands) and returns the struct they populate.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&f.Trace, "trace", "", "write a runtime execution trace to this file (go tool trace)")
	fs.BoolVar(&f.Verbose, "v", false, "structured run logging and live progress on stderr")
	fs.StringVar(&f.LogFormat, "log-format", FormatText, "log format: text or json")
	return f
}

// Logger builds the logger the flags describe, or nil when -v is off —
// the library layers treat a nil logger as "no logging" and skip all
// formatting work.
func (f *Flags) Logger() *slog.Logger {
	if !f.Verbose {
		return nil
	}
	return NewLogger(os.Stderr, f.LogFormat)
}

// Start begins CPU profiling and execution tracing as requested. The
// returned stop function ends them and, if -memprofile was given,
// writes the heap profile; call it exactly once on the normal exit
// path (profiles are simply truncated if the process aborts first).
func (f *Flags) Start() (stop func() error, err error) {
	var cpu, tr *os.File
	if f.CPUProfile != "" {
		cpu, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("obs: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("obs: -cpuprofile: %w", err)
		}
	}
	if f.Trace != "" {
		tr, err = os.Create(f.Trace)
		if err == nil {
			err = trace.Start(tr)
		}
		if err != nil {
			if cpu != nil {
				pprof.StopCPUProfile()
				cpu.Close()
			}
			if tr != nil {
				tr.Close()
			}
			return nil, fmt.Errorf("obs: -trace: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpu != nil {
			pprof.StopCPUProfile()
			firstErr = cpu.Close()
		}
		if tr != nil {
			trace.Stop()
			if err := tr.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err == nil {
				runtime.GC() // materialize the retained heap before the snapshot
				err = pprof.WriteHeapProfile(mf)
				if cerr := mf.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("obs: -memprofile: %w", err)
			}
		}
		return firstErr
	}, nil
}
