// Package obs is the observability spine of the reproduction: structured
// run logging on log/slog, a per-stage engine profiler, a live progress
// reporter for sweeps and batches, JSONL run manifests, and the shared
// -cpuprofile/-memprofile/-trace flag wiring of the commands.
//
// It complements the two existing views of a simulation — the microscope
// of internal/trace (per-packet timelines) and the macroscope of
// internal/metrics and internal/chanstats (windowed aggregates) — with
// the harness view: what is the experiment runner doing right now, how
// fast is each engine stage, and where did the wall time go. Everything
// here is opt-in and nil-safe; a simulation with no observer attached
// runs the bare, uninstrumented hot path.
package obs

import (
	"io"
	"log/slog"
	"time"
)

// Stopwatch starts measuring wall time and returns a function that
// reports the elapsed duration. It exists so that code outside this
// package never reads the wall clock directly: the determinism
// contract (cmd/smartlint's wallclock rule) confines time.Now and
// time.Since to internal/obs, and wall-time instrumentation — run
// timing, progress ETAs, harness reporting — flows through here.
func Stopwatch() func() time.Duration {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

// Log formats accepted by NewLogger and the -log-format flag.
const (
	FormatText = "text"
	FormatJSON = "json"
)

// NewLogger builds a structured logger writing to w in the given format
// (FormatText or FormatJSON; anything else falls back to text). Commands
// construct one from their -v/-log-format flags; libraries receive it
// through core.Options and treat nil as "no logging".
func NewLogger(w io.Writer, format string) *slog.Logger {
	opts := &slog.HandlerOptions{Level: slog.LevelDebug}
	var h slog.Handler
	if format == FormatJSON {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// RunLogger scopes base to one simulation run, attaching the identifying
// attributes once so every subsequent record carries them. A nil base
// stays nil, preserving the no-logging fast path.
func RunLogger(base *slog.Logger, fingerprint, label, pattern string, seed uint64, load float64) *slog.Logger {
	if base == nil {
		return nil
	}
	return base.With(
		"cfg", fingerprint,
		"label", label,
		"pattern", pattern,
		"seed", seed,
		"load", load,
	)
}
