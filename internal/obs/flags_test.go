package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestAddFlagsRegistersAndDefaults(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse([]string{"-v", "-log-format", "json", "-cpuprofile", "x.prof"}); err != nil {
		t.Fatal(err)
	}
	if !f.Verbose || f.LogFormat != FormatJSON || f.CPUProfile != "x.prof" {
		t.Fatalf("flags not bound: %+v", f)
	}
	quiet := AddFlags(flag.NewFlagSet("quiet", flag.ContinueOnError))
	if quiet.Logger() != nil {
		t.Fatal("logger without -v should be nil (the no-op fast path)")
	}
	if f.Logger() == nil {
		t.Fatal("logger with -v is nil")
	}
}

func TestFlagsStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	f := &Flags{
		CPUProfile: filepath.Join(dir, "cpu.prof"),
		MemProfile: filepath.Join(dir, "mem.prof"),
		Trace:      filepath.Join(dir, "trace.out"),
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i * i
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{f.CPUProfile, f.MemProfile, f.Trace} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	NewLogger(&buf, FormatJSON).Info("hello", "k", 1)
	if !bytes.Contains(buf.Bytes(), []byte(`"msg":"hello"`)) {
		t.Fatalf("json log malformed: %s", buf.String())
	}
	buf.Reset()
	NewLogger(&buf, FormatText).Info("hello", "k", 1)
	if !bytes.Contains(buf.Bytes(), []byte("msg=hello")) {
		t.Fatalf("text log malformed: %s", buf.String())
	}
}

func TestRunLoggerNilBase(t *testing.T) {
	if RunLogger(nil, "f", "l", "p", 1, 0.5) != nil {
		t.Fatal("RunLogger(nil, ...) must stay nil")
	}
	var buf bytes.Buffer
	lg := RunLogger(NewLogger(&buf, FormatText), "f", "tree", "uniform", 1, 0.5)
	lg.Info("run complete")
	for _, want := range []string{"cfg=f", "label=tree", "pattern=uniform", "seed=1", "load=0.5"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("scoped attr %q missing: %s", want, buf.String())
		}
	}
}
