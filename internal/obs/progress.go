package obs

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is a live reporter for multi-run workloads (load sweeps,
// batches, the full experiment grid). Worker goroutines record each
// completed run with RunDone; a background ticker started with Start
// emits one status line per interval — runs completed/total, the most
// recent load point, aggregate simulated cycles per second, elapsed time
// and ETA. All methods are safe for concurrent use, and a nil *Progress
// is a valid no-op receiver so callers can thread an optional reporter
// without nil checks at every site.
type Progress struct {
	total    int64
	interval time.Duration
	start    time.Time

	completed atomic.Int64
	cycles    atomic.Int64
	lastLoad  atomic.Uint64 // Float64bits of the most recently completed load

	//smartlint:allow concurrency — progress reporting is wall-time instrumentation, outside the deterministic core
	mu   sync.Mutex // guards w and stop lifecycle
	w    io.Writer
	stop chan struct{}
	//smartlint:allow concurrency — joins the ticker goroutine on Stop
	wg sync.WaitGroup
}

// NewProgress prepares a reporter over total expected runs, writing
// status lines to w every interval (a non-positive interval defaults to
// two seconds). The clock starts immediately.
func NewProgress(w io.Writer, total int, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	return &Progress{w: w, total: int64(total), interval: interval, start: time.Now()}
}

// RunDone records one completed run: the offered load it measured and
// the number of cycles its engine simulated.
func (p *Progress) RunDone(load float64, cycles int64) {
	if p == nil {
		return
	}
	p.lastLoad.Store(math.Float64bits(load))
	p.cycles.Add(cycles)
	p.completed.Add(1)
}

// Snapshot is a point-in-time view of the workload.
type Snapshot struct {
	Completed, Total int64
	// Cycles is the aggregate simulated cycle count across completed
	// runs; CyclesPerSec divides it by the elapsed wall time.
	Cycles       int64
	CyclesPerSec float64
	// LastLoad is the offered load of the most recently completed run.
	LastLoad float64
	Elapsed  time.Duration
	// ETA estimates the remaining wall time from the mean run cost so
	// far; zero until the first run completes and once all are done.
	ETA time.Duration
}

// Snapshot returns the current state. Counts are monotone across calls.
func (p *Progress) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	done := p.completed.Load()
	s := Snapshot{
		Completed: done,
		Total:     p.total,
		Cycles:    p.cycles.Load(),
		LastLoad:  math.Float64frombits(p.lastLoad.Load()),
		Elapsed:   time.Since(p.start),
	}
	if sec := s.Elapsed.Seconds(); sec > 0 {
		s.CyclesPerSec = float64(s.Cycles) / sec
	}
	if done > 0 && done < p.total {
		s.ETA = time.Duration(float64(s.Elapsed) / float64(done) * float64(p.total-done))
	}
	return s
}

// Emit writes one status line.
func (p *Progress) Emit() {
	if p == nil {
		return
	}
	s := p.Snapshot()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.w == nil {
		return
	}
	eta := "done"
	if s.Completed < s.Total {
		eta = "eta " + s.ETA.Round(time.Second).String()
		if s.Completed == 0 {
			eta = "eta ?"
		}
	}
	fmt.Fprintf(p.w, "progress: %d/%d runs, load %.2f, %s cycles/s, elapsed %s, %s\n",
		s.Completed, s.Total, s.LastLoad, formatRate(s.CyclesPerSec),
		s.Elapsed.Round(time.Second), eta)
}

// Start launches the background ticker. It is idempotent; pair with
// Stop.
func (p *Progress) Start() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.stop != nil {
		p.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	p.stop = stop
	p.wg.Add(1)
	p.mu.Unlock()
	//smartlint:allow concurrency — periodic progress printer; reads only atomics, never simulation state
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p.Emit()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the ticker (if running) and emits a final line.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	p.mu.Lock()
	stop := p.stop
	p.stop = nil
	p.mu.Unlock()
	if stop != nil {
		close(stop)
		p.wg.Wait()
	}
	p.Emit()
}
