package telemetry_test

import (
	"os"
	"path/filepath"
	"testing"

	"smart/internal/chanstats"
	"smart/internal/core"
	"smart/internal/telemetry"
)

// newSim assembles a small fixed-seed tree simulation whose engine has
// the injector and fabric registered but has not run yet.
func newSim(t *testing.T, load float64) *core.Simulation {
	t.Helper()
	s, err := core.NewSimulation(core.Config{
		Network: core.NetworkTree, Algorithm: core.AlgAdaptive, VCs: 2,
		K: 4, N: 2, Pattern: core.PatternUniform, Load: load, Seed: 7,
		Warmup: 300, Horizon: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestIntervalDeltasMatchDense drives a simulation with a sampler
// attached and checks that summing the recorded per-class interval
// deltas reproduces a dense end-of-run recomputation from the fabric's
// cumulative per-link counters — the incremental path and the one-shot
// path must agree exactly.
func TestIntervalDeltasMatchDense(t *testing.T) {
	s := newSim(t, 0.4)
	sp := telemetry.NewSampler(s.Fabric, s.Engine, telemetry.RunInfo{}, telemetry.Config{Every: 50})
	sp.Register(s.Engine)
	// Drive the engine directly: no warmup boundary, so the link
	// counters are never reset and the deltas must telescope to the
	// cumulative totals.
	s.Engine.Run(1000)

	classes, err := chanstats.ClassesFor(s.Top)
	if err != nil {
		t.Fatal(err)
	}
	dense := make([]int64, classes.Len())
	classes.Accumulate(s.Fabric.LinkFlits, dense)

	points, _ := sp.Snapshot()
	if len(points) != 20 {
		t.Fatalf("recorded %d points, want 20 (cadence 50 over 1000 cycles)", len(points))
	}
	summed := make([]int64, classes.Len())
	for _, p := range points {
		for c, d := range p.ClassFlits {
			if d < 0 {
				t.Fatalf("cycle %d class %d: negative interval delta %d", p.Cycle, c, d)
			}
			summed[c] += d
		}
	}
	for c := range dense {
		if summed[c] != dense[c] {
			t.Fatalf("class %s: summed deltas %d != dense recomputation %d",
				classes.Names[c], summed[c], dense[c])
		}
	}
}

// TestIntervalDeltasSurviveCounterReset checks the warmup-boundary
// contract: Simulation.Run resets the per-link counters between warmup
// and the measurement window, and the sampler must detect the reset
// instead of producing negative deltas.
func TestIntervalDeltasSurviveCounterReset(t *testing.T) {
	s := newSim(t, 0.4)
	// Cadence deliberately misaligned with the 300-cycle warmup so the
	// reset lands mid-interval.
	sp := telemetry.NewSampler(s.Fabric, s.Engine, telemetry.RunInfo{}, telemetry.Config{Every: 70})
	sp.Register(s.Engine)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	points, _ := sp.Snapshot()
	if len(points) == 0 {
		t.Fatal("no points recorded")
	}
	for _, p := range points {
		for c, d := range p.ClassFlits {
			if d < 0 {
				t.Fatalf("cycle %d class %d: negative delta %d across the warmup reset", p.Cycle, c, d)
			}
		}
	}
	// After the reset, the telescoped deltas must again match a dense
	// recomputation of the post-warmup totals.
	classes, err := chanstats.ClassesFor(s.Top)
	if err != nil {
		t.Fatal(err)
	}
	dense := make([]int64, classes.Len())
	classes.Accumulate(s.Fabric.LinkFlits, dense)
	// Sum deltas from the first sample at or after the reset boundary.
	// The reset happens at cycle 300; the first post-reset sample is the
	// first one whose interval start is >= 300... the sample covering
	// the reset mixes pre- and post-reset traffic, so start after it.
	summed := make([]int64, classes.Len())
	var coveredFrom int64
	for _, p := range points {
		if p.Cycle-70 >= 300 || p.Cycle == points[len(points)-1].Cycle {
			if coveredFrom == 0 {
				coveredFrom = p.Cycle - 70
			}
			for c, d := range p.ClassFlits {
				summed[c] += d
			}
		}
	}
	// The post-reset dense totals cover [300, horizon]; the summed
	// window starts at the first full post-reset interval, so summed
	// must be <= dense per class, and the total gap bounded by what one
	// partial interval can carry. The exact-equality check lives in
	// TestIntervalDeltasMatchDense; here the reset must only never
	// corrupt the stream (negative or wildly excessive deltas).
	for c := range dense {
		if summed[c] > dense[c] {
			t.Fatalf("class %s: post-reset deltas sum to %d > dense %d — reset double-counted",
				classes.Names[c], summed[c], dense[c])
		}
	}
}

// TestFinishForcesTerminalSample checks that a run whose horizon is not
// a cadence multiple still records its final state.
func TestFinishForcesTerminalSample(t *testing.T) {
	s := newSim(t, 0.3)
	sp := telemetry.NewSampler(s.Fabric, s.Engine, telemetry.RunInfo{}, telemetry.Config{Every: 400})
	sp.Register(s.Engine)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	sp.Finish("")
	points, _ := sp.Snapshot()
	if len(points) == 0 {
		t.Fatal("no points recorded")
	}
	last := points[len(points)-1]
	if last.Cycle != s.Engine.Cycle() {
		t.Fatalf("terminal sample at cycle %d, want engine cycle %d", last.Cycle, s.Engine.Cycle())
	}
	// Finish is idempotent: a second call must not duplicate the sample.
	sp.Finish("")
	again, _ := sp.Snapshot()
	if len(again) != len(points) {
		t.Fatalf("second Finish added samples: %d -> %d", len(points), len(again))
	}
}

// TestSamplerRecordRoundTrips checks RecordOf against the sidecar
// decode path.
func TestSamplerRecordRoundTrips(t *testing.T) {
	s := newSim(t, 0.3)
	run := telemetry.RunInfo{Batch: "unit", Index: 3, Label: "tree adaptive-2vc",
		Pattern: "uniform", Seed: 7, Load: 0.3, Fingerprint: s.Config.Fingerprint()}
	sp := telemetry.NewSampler(s.Fabric, s.Engine, run, telemetry.Config{Every: 100})
	sp.Register(s.Engine)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	sp.Finish("")

	path := filepath.Join(t.TempDir(), "series.jsonl")
	sc, err := telemetry.OpenSidecar(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Write(telemetry.RecordOf(sp)); err != nil {
		t.Fatal(err)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.DecodeSidecar(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("decoded %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.RunInfo != run {
		t.Fatalf("run info round-trip: got %+v, want %+v", rec.RunInfo, run)
	}
	if rec.Schema != telemetry.Schema || rec.Every != 100 {
		t.Fatalf("schema/cadence: %q/%d", rec.Schema, rec.Every)
	}
	if len(rec.ClassNames) == 0 || len(rec.ClassNames) != len(rec.ClassLinks) {
		t.Fatalf("class metadata: names %v links %v", rec.ClassNames, rec.ClassLinks)
	}
	pts, evs := sp.Snapshot()
	if len(rec.Points) != len(pts) || len(rec.Events) != len(evs) {
		t.Fatalf("record has %d/%d points/events, sampler %d/%d",
			len(rec.Points), len(rec.Events), len(pts), len(evs))
	}
}

// TestSamplerStepAllocFree is the dynamic guard behind the sampler's
// //smartlint:hotpath annotations: once the ring, scratch slices and
// the bound emit closure exist, an on-cadence engine step with the
// sampler attached performs zero heap allocations. A regression here
// usually means something on the sample path started materializing a
// closure or slice per call.
func TestSamplerStepAllocFree(t *testing.T) {
	s := newSim(t, 0.4)
	sp := telemetry.NewSampler(s.Fabric, s.Engine, telemetry.RunInfo{}, telemetry.Config{Every: 1})
	sp.Register(s.Engine)
	s.Engine.Run(200) // warm up: traffic in flight, detector state settled
	allocs := testing.AllocsPerRun(200, func() { s.Engine.Step() })
	if allocs != 0 {
		t.Fatalf("engine step with cadence-1 sampler allocates %.1f objects, want 0", allocs)
	}
}
