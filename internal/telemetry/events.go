package telemetry

import (
	"fmt"

	"smart/internal/wormhole"
)

// Event kinds emitted by the congestion detector.
const (
	// EventCongestionOnset fires when a channel class sustains
	// utilization at or above the onset threshold for Sustain
	// consecutive samples; EventCongestionClear when a hot class falls
	// back to or below the clear threshold. The gap between the two
	// thresholds is the hysteresis band that keeps a class hovering at
	// the boundary from spamming the log.
	EventCongestionOnset = "congestion-onset"
	EventCongestionClear = "congestion-clear"
	// EventQueueGrowth fires when the total source-queue backlog grows
	// strictly for QueueGrowth consecutive samples — the paper's
	// saturation signature: offered traffic outrunning acceptance.
	EventQueueGrowth = "queue-growth"
	// EventNearStall fires when flits are in flight but the fabric's
	// progress counter has been flat for a large fraction of the
	// watchdog's no-progress budget — the last observable state before
	// the watchdog kills the run.
	EventNearStall = "near-stall"
	// EventStall is terminal: the watchdog fired and the run died with a
	// sim.StallError; the event summarizes its StallSnapshot.
	EventStall = "stall"
	// EventFaultOnset fires when the fabric's fault-mask gauges grow
	// between samples (an injected link or router failure took effect);
	// EventFaultClear when every mask has been lifted again. Fault events
	// are sampled state, so an outage shorter than the cadence between
	// two samples is invisible here (the schedule itself is exact).
	EventFaultOnset = "fault-onset"
	EventFaultClear = "fault-clear"
)

// Event is one structured congestion event. Every field is a
// deterministic function of simulation state, so event streams are
// digest-stable across identical runs.
type Event struct {
	Cycle int64  `json:"cycle"`
	Kind  string `json:"kind"`
	// Class names the channel class for congestion events ("" for
	// fabric-wide events).
	Class string `json:"class,omitempty"`
	// Value is the measurement that triggered the event (utilization,
	// queue depth, stalled cycles); Threshold the boundary it crossed.
	Value     float64 `json:"value,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	// Detail is a human-readable elaboration.
	Detail string `json:"detail,omitempty"`
}

// Thresholds tunes the congestion-event detector. The zero value takes
// the defaults via withDefaults.
type Thresholds struct {
	// Onset and Clear bound the per-class utilization hysteresis band:
	// a class becomes hot after Sustain consecutive samples at >= Onset
	// and cools at <= Clear. Defaults 0.90 / 0.75.
	Onset, Clear float64
	// Sustain is the consecutive-sample requirement for onset (default
	// 3: one interval above threshold is a burst, three are congestion).
	Sustain int
	// QueueGrowth is the consecutive strictly-growing backlog samples
	// before a queue-growth event (default 5).
	QueueGrowth int
	// NearStallFraction is the fraction of the watchdog budget the
	// progress counter may stay flat before a near-stall event (default
	// 0.5). Without a watchdog, near-stall falls back to
	// NearStallSamples flat samples with traffic in flight.
	NearStallFraction float64
	// NearStallSamples is the watchdog-less fallback (default 10).
	NearStallSamples int
}

func (t Thresholds) withDefaults() Thresholds {
	if t.Onset <= 0 {
		t.Onset = 0.90
	}
	if t.Clear <= 0 {
		t.Clear = 0.75
	}
	if t.Sustain <= 0 {
		t.Sustain = 3
	}
	if t.QueueGrowth <= 0 {
		t.QueueGrowth = 5
	}
	if t.NearStallFraction <= 0 {
		t.NearStallFraction = 0.5
	}
	if t.NearStallSamples <= 0 {
		t.NearStallSamples = 10
	}
	return t
}

// detector turns a stream of per-sample observations into events. It is
// purely sequential state — no wall clock, no randomness — so identical
// runs produce identical event streams.
type detector struct {
	thr Thresholds
	// per-class hysteresis state
	hotStreak []int  // consecutive samples at >= Onset
	hot       []bool // class is in the congested state
	// queue-growth state
	prevQueued  int64
	growStreak  int
	growArmed   bool
	firstSample bool
	// near-stall state
	flatSamples int
	nearFired   bool
	// fault state: down elements (links + routers) at the previous sample
	prevDown int
}

func newDetector(classes int, thr Thresholds) *detector {
	return &detector{
		thr:         thr.withDefaults(),
		hotStreak:   make([]int, classes),
		hot:         make([]bool, classes),
		growArmed:   true,
		firstSample: true,
	}
}

// observation is one sample's view as the detector consumes it.
type observation struct {
	cycle     int64
	classUtil []float64 // per-class utilization over the last interval
	queued    int64     // packets waiting at sources or part-injected
	inFlight  int64
	// progressed reports whether the fabric's progress counter moved
	// since the previous sample.
	progressed bool
	// downLinks and downRouters are the fault-mask gauges at the sample.
	downLinks, downRouters int
	// watch carries the engine watchdog's live state when armed.
	watchSince, watchBudget int64
	watched                 bool
}

// observe consumes one sample and appends any events to the emit sink.
func (d *detector) observe(o observation, classNames []string, emit func(Event)) {
	for c, util := range o.classUtil {
		if util >= d.thr.Onset {
			d.hotStreak[c]++
			if !d.hot[c] && d.hotStreak[c] >= d.thr.Sustain {
				d.hot[c] = true
				emit(Event{
					Cycle: o.cycle, Kind: EventCongestionOnset, Class: classNames[c],
					Value: util, Threshold: d.thr.Onset,
					Detail: fmt.Sprintf("utilization >= %.2f for %d consecutive samples", d.thr.Onset, d.hotStreak[c]),
				})
			}
		} else {
			d.hotStreak[c] = 0
			if d.hot[c] && util <= d.thr.Clear {
				d.hot[c] = false
				emit(Event{
					Cycle: o.cycle, Kind: EventCongestionClear, Class: classNames[c],
					Value: util, Threshold: d.thr.Clear,
				})
			}
		}
	}

	if !d.firstSample {
		if o.queued > d.prevQueued {
			d.growStreak++
			if d.growArmed && d.growStreak >= d.thr.QueueGrowth {
				d.growArmed = false
				emit(Event{
					Cycle: o.cycle, Kind: EventQueueGrowth,
					Value: float64(o.queued), Threshold: float64(d.thr.QueueGrowth),
					Detail: fmt.Sprintf("source backlog grew for %d consecutive samples", d.growStreak),
				})
			}
		} else {
			d.growStreak = 0
			d.growArmed = true
		}
	}
	d.prevQueued = o.queued
	d.firstSample = false

	if down := o.downLinks + o.downRouters; down != d.prevDown {
		if down > d.prevDown {
			emit(Event{
				Cycle: o.cycle, Kind: EventFaultOnset,
				Value: float64(down), Threshold: float64(d.prevDown),
				Detail: fmt.Sprintf("%d links and %d routers down", o.downLinks, o.downRouters),
			})
		} else if down == 0 {
			emit(Event{
				Cycle: o.cycle, Kind: EventFaultClear,
				Value: 0, Threshold: float64(d.prevDown),
				Detail: "all fault masks lifted",
			})
		}
		d.prevDown = down
	}

	if o.progressed || o.inFlight == 0 {
		d.flatSamples = 0
		d.nearFired = false
	} else {
		d.flatSamples++
		if !d.nearFired && d.nearStalled(o) {
			d.nearFired = true
			ev := Event{
				Cycle: o.cycle, Kind: EventNearStall,
				Value:  float64(o.cycle - o.watchSince),
				Detail: fmt.Sprintf("%d flits in flight with no progress", o.inFlight),
			}
			if o.watched {
				ev.Threshold = d.thr.NearStallFraction * float64(o.watchBudget)
			}
			emit(ev)
		}
	}
}

// nearStalled decides whether the flat-progress streak qualifies as a
// near-stall: against the live watchdog budget when one is armed,
// against the sample-count fallback otherwise.
func (d *detector) nearStalled(o observation) bool {
	if o.watched {
		return float64(o.cycle-o.watchSince) >= d.thr.NearStallFraction*float64(o.watchBudget)
	}
	return d.flatSamples >= d.thr.NearStallSamples
}

// stallEvent renders a terminal watchdog stall as an event, summarizing
// the wormhole post-mortem when the report carries one.
func stallEvent(cycle, stalledSince, budget int64, report any) Event {
	ev := Event{
		Cycle: cycle, Kind: EventStall,
		Value:     float64(cycle - stalledSince),
		Threshold: float64(budget),
		Detail:    fmt.Sprintf("watchdog fired: no progress since cycle %d", stalledSince),
	}
	if snap, ok := report.(*wormhole.StallSnapshot); ok && snap != nil {
		ev.Detail = fmt.Sprintf("watchdog fired: %d blocked headers, %d non-idle lanes, %d flits in flight, no progress since cycle %d",
			snap.BlockedTotal, snap.LanesTotal, snap.InFlight, stalledSince)
	}
	return ev
}
