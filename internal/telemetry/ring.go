package telemetry

import "fmt"

// Ring is a fixed-capacity time-series buffer of sample Points. All
// storage — the slots and the per-class flit slices inside them — is
// allocated once at construction, so pushing a sample in the middle of a
// run costs two copies and no garbage. When the ring is full the oldest
// point is overwritten and the drop counter advances: a flight recorder
// keeps the most recent window, and the sidecar record reports how much
// history scrolled off.
type Ring struct {
	slots   []Point
	backing []int64 // class-flit storage, classes slots per ring slot
	classes int
	total   int // points ever pushed
}

// NewRing returns a ring of the given capacity whose points carry
// classes per-class flit deltas (0 for classless topologies).
func NewRing(capacity, classes int) (*Ring, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("telemetry: ring capacity %d must be positive", capacity)
	}
	if classes < 0 {
		return nil, fmt.Errorf("telemetry: negative class count %d", classes)
	}
	r := &Ring{
		slots:   make([]Point, capacity),
		backing: make([]int64, capacity*classes),
		classes: classes,
	}
	for i := range r.slots {
		if classes > 0 {
			r.slots[i].ClassFlits = r.backing[i*classes : (i+1)*classes : (i+1)*classes]
		}
	}
	return r, nil
}

// Push records one point. p.ClassFlits is copied into the slot's own
// storage; the caller keeps ownership of the argument.
func (r *Ring) Push(p Point) {
	slot := &r.slots[r.total%len(r.slots)]
	saved := slot.ClassFlits
	copy(saved, p.ClassFlits)
	*slot = p
	slot.ClassFlits = saved
	r.total++
}

// Len returns the number of points currently held (at most the
// capacity).
func (r *Ring) Len() int {
	if r.total < len(r.slots) {
		return r.total
	}
	return len(r.slots)
}

// Total returns the number of points ever pushed.
func (r *Ring) Total() int { return r.total }

// Dropped returns how many points were overwritten by wraparound.
func (r *Ring) Dropped() int { return r.total - r.Len() }

// At returns the i-th oldest retained point (0 is the oldest). The
// returned Point aliases ring storage; callers that outlive the next
// Push must copy it.
func (r *Ring) At(i int) Point {
	n := r.Len()
	if i < 0 || i >= n {
		panic(fmt.Sprintf("telemetry: ring index %d out of range %d", i, n))
	}
	if r.total <= len(r.slots) {
		return r.slots[i]
	}
	return r.slots[(r.total+i)%len(r.slots)]
}

// Snapshot appends deep copies of the retained points, oldest first, to
// dst and returns it.
func (r *Ring) Snapshot(dst []Point) []Point {
	n := r.Len()
	for i := 0; i < n; i++ {
		p := r.At(i)
		if r.classes > 0 {
			p.ClassFlits = append([]int64(nil), p.ClassFlits...)
		}
		dst = append(dst, p)
	}
	return dst
}
