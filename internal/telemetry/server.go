package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"

	"smart/internal/obs"
)

// Server exposes live telemetry over HTTP: /metrics serves the
// Prometheus text exposition format, /telemetry.json the same state as
// JSON. Samplers attach as runs start; the server renders whatever is
// attached at request time, so a scrape mid-sweep sees the in-flight
// runs' live gauges plus grid-level progress. Rendering order follows
// attach order (never map iteration), so two scrapes of the same state
// produce identical bodies.
type Server struct {
	//smartlint:allow concurrency — HTTP handlers run on net/http goroutines; the mutex guards sampler registration
	mu       sync.Mutex
	samplers []*Sampler
	progress *obs.Progress
	// runsDone/runsFailed are cumulative across the process, advancing
	// as samplers finish.
	runsDone, runsFailed int64
}

// NewServer returns an empty telemetry server.
func NewServer() *Server { return &Server{} }

// Attach registers a run's sampler for serving. Finished samplers stay
// attached (bounded by the grid size) so late scrapes can still read
// terminal state; RunDone moves their counts into the cumulative
// totals.
func (s *Server) Attach(sp *Sampler) {
	if s == nil || sp == nil {
		return
	}
	s.mu.Lock()
	s.samplers = append(s.samplers, sp)
	s.mu.Unlock()
}

// Detach removes a finished run's sampler and folds it into the
// cumulative run counters.
func (s *Server) Detach(sp *Sampler, failed bool) {
	if s == nil || sp == nil {
		return
	}
	s.mu.Lock()
	for i, have := range s.samplers {
		if have == sp {
			s.samplers = append(s.samplers[:i], s.samplers[i+1:]...)
			break
		}
	}
	s.runsDone++
	if failed {
		s.runsFailed++
	}
	s.mu.Unlock()
}

// SetProgress wires the grid-level progress tracker (optional).
func (s *Server) SetProgress(p *obs.Progress) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.progress = p
	s.mu.Unlock()
}

// Handler returns the HTTP mux serving /metrics and /telemetry.json.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/telemetry.json", s.serveJSON)
	return mux
}

// Serve listens on addr and serves until the listener is closed. It
// returns the bound listener (so callers can report the ephemeral port
// of ":0" and close on shutdown) and runs the HTTP loop on its own
// goroutine.
func (s *Server) Serve(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	//smartlint:allow concurrency — the metrics listener must serve while the simulation loop runs
	go srv.Serve(ln)
	return ln, nil
}

// snapshotState collects a consistent view for rendering.
type serverState struct {
	samplers []*Sampler
	progress obs.Snapshot
	hasProg  bool
	done     int64
	failed   int64
}

func (s *Server) state() serverState {
	s.mu.Lock()
	st := serverState{
		samplers: append([]*Sampler(nil), s.samplers...),
		done:     s.runsDone,
		failed:   s.runsFailed,
	}
	if s.progress != nil {
		st.progress = s.progress.Snapshot()
		st.hasProg = true
	}
	s.mu.Unlock()
	return st
}

// escapeLabel escapes a Prometheus label value (backslash, quote,
// newline).
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// runLabels renders the shared label set of one run's metrics.
func runLabels(run RunInfo) string {
	return fmt.Sprintf(`{batch=%q,index="%d",label=%q,pattern=%q,load="%g"}`,
		escapeLabel(run.Batch), run.Index, escapeLabel(run.Label), escapeLabel(run.Pattern), run.Load)
}

func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.state()
	var b strings.Builder

	b.WriteString("# HELP smart_runs_completed_total Runs finished by this process.\n")
	b.WriteString("# TYPE smart_runs_completed_total counter\n")
	fmt.Fprintf(&b, "smart_runs_completed_total %d\n", st.done)
	b.WriteString("# HELP smart_runs_failed_total Runs that finished with a failure.\n")
	b.WriteString("# TYPE smart_runs_failed_total counter\n")
	fmt.Fprintf(&b, "smart_runs_failed_total %d\n", st.failed)
	b.WriteString("# HELP smart_runs_active Runs currently recording telemetry.\n")
	b.WriteString("# TYPE smart_runs_active gauge\n")
	fmt.Fprintf(&b, "smart_runs_active %d\n", len(st.samplers))

	if st.hasProg {
		b.WriteString("# HELP smart_grid_completed Grid points completed.\n")
		b.WriteString("# TYPE smart_grid_completed gauge\n")
		fmt.Fprintf(&b, "smart_grid_completed %d\n", st.progress.Completed)
		b.WriteString("# HELP smart_grid_total Grid points in the sweep.\n")
		b.WriteString("# TYPE smart_grid_total gauge\n")
		fmt.Fprintf(&b, "smart_grid_total %d\n", st.progress.Total)
		b.WriteString("# HELP smart_grid_cycles_total Simulated cycles across completed runs.\n")
		b.WriteString("# TYPE smart_grid_cycles_total counter\n")
		fmt.Fprintf(&b, "smart_grid_cycles_total %d\n", st.progress.Cycles)
		b.WriteString("# HELP smart_grid_cycles_per_second Aggregate simulation rate.\n")
		b.WriteString("# TYPE smart_grid_cycles_per_second gauge\n")
		fmt.Fprintf(&b, "smart_grid_cycles_per_second %g\n", st.progress.CyclesPerSec)
	}

	type metric struct{ name, help, kind string }
	cum := []metric{
		{"smart_run_flits_injected_total", "Flits injected since fabric construction.", "counter"},
		{"smart_run_flits_delivered_total", "Flits delivered since fabric construction.", "counter"},
		{"smart_run_headers_routed_total", "Routing decisions won.", "counter"},
		{"smart_run_credit_stalls_total", "Send attempts lost to exhausted credits.", "counter"},
		{"smart_run_fault_stalls_total", "Transfer opportunities suppressed by fault masks.", "counter"},
		{"smart_run_rerouted_total", "Routing decisions diverted around fault masks.", "counter"},
	}
	gauges := []metric{
		{"smart_run_cycle", "Cycle of the latest sample.", "gauge"},
		{"smart_run_in_flight", "Flits inside the network.", "gauge"},
		{"smart_run_queued", "Packets waiting at sources.", "gauge"},
		{"smart_run_occupied_lanes", "Lanes holding at least one flit.", "gauge"},
		{"smart_run_buffered_flits", "Flits buffered in lanes.", "gauge"},
		{"smart_run_max_nic_queue", "Deepest source queue.", "gauge"},
		{"smart_run_events", "Congestion events recorded.", "gauge"},
		{"smart_run_down_links", "Physical links currently fault-masked.", "gauge"},
		{"smart_run_down_routers", "Routers currently fault-masked.", "gauge"},
	}
	// Gather each sampler's latest point once, in attach order.
	type runView struct {
		run     RunInfo
		last    Point
		names   []string
		events  int
		ok      bool
		faulted bool
	}
	views := make([]runView, 0, len(st.samplers))
	for _, sp := range st.samplers {
		points, events := sp.Snapshot()
		v := runView{run: sp.Run(), names: sp.ClassNames(), events: len(events), faulted: sp.HasFaults()}
		if len(points) > 0 {
			v.last = points[len(points)-1]
			v.ok = true
		}
		views = append(views, v)
	}
	value := func(m string, v runView) (int64, bool) {
		switch m {
		case "smart_run_flits_injected_total":
			return v.last.FlitsInjected, true
		case "smart_run_flits_delivered_total":
			return v.last.FlitsDelivered, true
		case "smart_run_headers_routed_total":
			return v.last.HeadersRouted, true
		case "smart_run_credit_stalls_total":
			return v.last.CreditStalls, true
		case "smart_run_cycle":
			return v.last.Cycle, true
		case "smart_run_in_flight":
			return v.last.InFlight, true
		case "smart_run_queued":
			return v.last.Queued, true
		case "smart_run_occupied_lanes":
			return int64(v.last.OccupiedLanes), true
		case "smart_run_buffered_flits":
			return int64(v.last.BufferedFlits), true
		case "smart_run_max_nic_queue":
			return v.last.MaxNICQueue, true
		case "smart_run_events":
			return int64(v.events), true
		case "smart_run_fault_stalls_total":
			return v.last.FaultStalls, v.faulted
		case "smart_run_rerouted_total":
			return v.last.Rerouted, v.faulted
		case "smart_run_down_links":
			return int64(v.last.DownLinks), v.faulted
		case "smart_run_down_routers":
			return int64(v.last.DownRouters), v.faulted
		}
		return 0, false
	}
	for _, m := range append(cum, gauges...) {
		wrote := false
		for _, v := range views {
			if !v.ok {
				continue
			}
			val, ok := value(m.name, v)
			if !ok {
				continue
			}
			if !wrote {
				fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind)
				wrote = true
			}
			fmt.Fprintf(&b, "%s%s %d\n", m.name, runLabels(v.run), val)
		}
	}
	// Per-class interval flits, labeled by class name.
	wrote := false
	for _, v := range views {
		if !v.ok || len(v.names) == 0 {
			continue
		}
		if !wrote {
			b.WriteString("# HELP smart_run_class_flits Flits moved per channel class in the last sample interval.\n")
			b.WriteString("# TYPE smart_run_class_flits gauge\n")
			wrote = true
		}
		labels := runLabels(v.run)
		for i, n := range v.names {
			if i >= len(v.last.ClassFlits) {
				break
			}
			// Splice the class label into the shared label set.
			withClass := strings.TrimSuffix(labels, "}") + fmt.Sprintf(",class=%q}", escapeLabel(n))
			fmt.Fprintf(&b, "smart_run_class_flits%s %d\n", withClass, v.last.ClassFlits[i])
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

// jsonState is the /telemetry.json response body.
type jsonState struct {
	RunsActive    int       `json:"runs_active"`
	RunsCompleted int64     `json:"runs_completed"`
	RunsFailed    int64     `json:"runs_failed"`
	Grid          *gridJSON `json:"grid,omitempty"`
	Runs          []runJSON `json:"runs"`
}

type gridJSON struct {
	Completed    int64   `json:"completed"`
	Total        int64   `json:"total"`
	Cycles       int64   `json:"cycles"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

type runJSON struct {
	RunInfo
	Every      int64    `json:"every"`
	ClassNames []string `json:"class_names,omitempty"`
	Points     []Point  `json:"points"`
	Events     []Event  `json:"events,omitempty"`
}

func (s *Server) serveJSON(w http.ResponseWriter, r *http.Request) {
	st := s.state()
	body := jsonState{
		RunsActive:    len(st.samplers),
		RunsCompleted: st.done,
		RunsFailed:    st.failed,
		Runs:          []runJSON{},
	}
	if st.hasProg {
		body.Grid = &gridJSON{
			Completed:    st.progress.Completed,
			Total:        st.progress.Total,
			Cycles:       st.progress.Cycles,
			CyclesPerSec: st.progress.CyclesPerSec,
		}
	}
	for _, sp := range st.samplers {
		points, events := sp.Snapshot()
		body.Runs = append(body.Runs, runJSON{
			RunInfo:    sp.Run(),
			Every:      sp.Every(),
			ClassNames: sp.ClassNames(),
			Points:     points,
			Events:     events,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}
