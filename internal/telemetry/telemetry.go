// Package telemetry is the simulator's in-run flight recorder: a
// zero-allocation sampler that snapshots fabric counters every N cycles
// into a fixed-capacity ring of time-series points, a congestion-event
// detector (per-class utilization hysteresis, queue growth, watchdog
// near-stall), a JSONL sidecar that journals one time-series record per
// run next to the manifest, and an HTTP endpoint that serves the live
// state in Prometheus text and JSON form.
//
// The package is observation-only by contract: a sampler reads fabric
// state at end of cycle and never writes any, so registering one cannot
// change simulated behavior — the golden fixtures and the smartlint
// determinism rules both gate this. Everything recorded is a
// deterministic function of simulation state (cycle counts, never wall
// time), so sidecar records are digest-stable across identical runs.
package telemetry

import (
	"sync"

	"smart/internal/chanstats"
	"smart/internal/sim"
	"smart/internal/wormhole"
)

// Point is one time-series sample: the fabric's externally meaningful
// counters at the end of a sampled cycle. All fields are integers read
// directly from the fabric — derived rates (utilization, throughput) are
// computed by consumers so the recorded stream stays exact.
type Point struct {
	// Cycle is the end-of-cycle timestamp of the sample (the first
	// sample at cadence N is labeled cycle N).
	Cycle int64 `json:"cycle"`
	// Cumulative injection/delivery totals since fabric construction.
	FlitsInjected  int64 `json:"flits_injected"`
	FlitsDelivered int64 `json:"flits_delivered"`
	// Instantaneous occupancy gauges.
	InFlight      int64 `json:"in_flight"`
	Queued        int64 `json:"queued"`
	OccupiedLanes int   `json:"occupied_lanes"`
	BufferedFlits int   `json:"buffered_flits"`
	MaxNICQueue   int64 `json:"max_nic_queue"`
	// Cumulative routing-work and back-pressure counters.
	HeadersRouted int64 `json:"headers_routed"`
	CreditStalls  int64 `json:"credit_stalls"`
	// Degraded-mode counters, present only on faulted runs (fault-free
	// sidecars stay byte-identical with earlier versions). FaultStalls
	// and Rerouted are cumulative; DownLinks and DownRouters are the
	// fault-mask gauges at the sample cycle.
	FaultStalls int64 `json:"fault_stalls,omitempty"`
	Rerouted    int64 `json:"rerouted,omitempty"`
	DownLinks   int   `json:"down_links,omitempty"`
	DownRouters int   `json:"down_routers,omitempty"`
	// ClassFlits holds per-channel-class flits moved during the interval
	// ending at this sample (not cumulative: interval deltas survive the
	// fabric's warmup-boundary counter reset and difference cleanly
	// across ring wraparound). Order matches the classifier's Names.
	ClassFlits []int64 `json:"class_flits,omitempty"`
}

// RunInfo identifies the run a sampler is recording, echoed into the
// sidecar record so time series join against manifest records.
type RunInfo struct {
	Batch       string  `json:"batch,omitempty"`
	Index       int     `json:"index"`
	Label       string  `json:"label,omitempty"`
	Pattern     string  `json:"pattern,omitempty"`
	Seed        uint64  `json:"seed"`
	Load        float64 `json:"load"`
	Fingerprint string  `json:"fingerprint"`
}

// Config tunes a sampler. The zero value takes the defaults.
type Config struct {
	// Every is the sampling cadence in cycles (default 100).
	Every int64
	// RingCap bounds the retained time series (default 512 points; older
	// points scroll off and are counted as dropped).
	RingCap int
	// EventCap bounds the retained event log (default 256).
	EventCap int
	// Thresholds tunes the congestion detector.
	Thresholds Thresholds
}

func (c Config) withDefaults() Config {
	if c.Every <= 0 {
		c.Every = 100
	}
	if c.RingCap <= 0 {
		c.RingCap = 512
	}
	if c.EventCap <= 0 {
		c.EventCap = 256
	}
	c.Thresholds = c.Thresholds.withDefaults()
	return c
}

// Sampler snapshots one fabric's counters on a fixed cycle cadence. It
// registers as the last engine stage, so each sample sees the complete
// end-of-cycle state the oracle's CycleObs would see. All mutable state
// sits behind a mutex because the HTTP server reads snapshots from a
// different goroutine than the one running the engine; the engine-side
// critical section is short (two slice copies) and lock-free when the
// cycle is off-cadence.
type Sampler struct {
	fabric  *wormhole.Fabric
	engine  *sim.Engine
	run     RunInfo
	cfg     Config
	classes *chanstats.Classes // nil when the topology has no class map
	// rerouter is the routing algorithm's optional fault-detour counter,
	// type-asserted once at construction to keep the sample path cheap.
	rerouter interface{ Rerouted() int64 }

	//smartlint:allow concurrency — guards ring/detector state read by the metrics server, off the cycle path
	mu   sync.Mutex
	ring *Ring
	det  *detector
	// emit is the bound emitLocked method value, captured once at
	// construction: materializing it per sample would heap-allocate a
	// closure on the cycle path (the hotalloc rule gates this).
	emit   func(Event)
	events []Event
	// eventsTotal counts events ever emitted; events keeps the first
	// EventCap (onset events matter more than late repeats, so the log
	// keeps the head, unlike the ring which keeps the tail).
	eventsTotal int

	// Scratch for interval-delta computation, allocated once.
	prevClass, curClass, deltaClass []int64
	classUtil                       []float64
	prevSum                         int64
	prevProgress                    int64

	done    bool
	failure string
}

// NewSampler builds a sampler for the fabric. The engine reference is
// optional (nil disables watchdog-aware near-stall detection); the
// classifier is derived from the fabric's topology, silently absent for
// families without a class structure.
func NewSampler(f *wormhole.Fabric, e *sim.Engine, run RunInfo, cfg Config) *Sampler {
	cfg = cfg.withDefaults()
	classes, err := chanstats.ClassesFor(f.Top)
	if err != nil {
		classes = nil
	}
	n := 0
	if classes != nil {
		n = classes.Len()
	}
	ring, err := NewRing(cfg.RingCap, n)
	if err != nil {
		panic(err) // unreachable: withDefaults guarantees a positive capacity
	}
	s := &Sampler{
		fabric:     f,
		engine:     e,
		run:        run,
		cfg:        cfg,
		classes:    classes,
		ring:       ring,
		det:        newDetector(n, cfg.Thresholds),
		prevClass:  make([]int64, n),
		curClass:   make([]int64, n),
		deltaClass: make([]int64, n),
		classUtil:  make([]float64, n),
	}
	s.rerouter, _ = f.Alg.(interface{ Rerouted() int64 })
	s.emit = s.emitLocked
	return s
}

// Register adds the sampler to the engine as a trailing stage. Call it
// after the fabric registers its stages so samples see end-of-cycle
// state.
func (s *Sampler) Register(e *sim.Engine) {
	e.RegisterFunc("telemetry", s.tick)
}

// Every returns the sampling cadence in cycles.
func (s *Sampler) Every() int64 { return s.cfg.Every }

// HasFaults reports whether the recorded fabric carries fault state; the
// metrics server gates the degraded-mode lines on it so unfaulted runs
// render exactly as before.
func (s *Sampler) HasFaults() bool { return s.fabric.HasFaults() }

// ClassNames returns the channel-class labels, nil for classless
// topologies.
func (s *Sampler) ClassNames() []string {
	if s.classes == nil {
		return nil
	}
	return s.classes.Names
}

// ClassLinks returns the physical channel count of each class, nil for
// classless topologies.
func (s *Sampler) ClassLinks() []int64 {
	if s.classes == nil {
		return nil
	}
	return s.classes.Links
}

// tick runs once per cycle as an engine stage and samples every
// cfg.Every cycles. The engine passes the pre-increment cycle index, so
// the (cycle+1)%every == 0 gate matches the metrics.TimeSeries
// convention: at cadence 100 the first sample is labeled cycle 100.
//
//smartlint:hotpath
func (s *Sampler) tick(cycle int64) {
	if (cycle+1)%s.cfg.Every != 0 {
		return
	}
	s.sample(cycle + 1)
}

// sample reads the fabric and pushes one point. Split from tick so
// Finish can force a final off-cadence sample.
//
//smartlint:hotpath
func (s *Sampler) sample(cycle int64) {
	f := s.fabric
	ctr := f.Counters()
	g := f.ReadGauges()
	p := Point{
		Cycle:          cycle,
		FlitsInjected:  ctr.FlitsInjected,
		FlitsDelivered: ctr.FlitsDelivered,
		InFlight:       f.InFlight(),
		Queued:         f.QueuedPackets(),
		OccupiedLanes:  g.OccupiedLanes,
		BufferedFlits:  g.BufferedFlits,
		MaxNICQueue:    g.MaxNICQueue,
		HeadersRouted:  f.HeadersRouted(),
		CreditStalls:   f.CreditStalls(),
	}
	if f.HasFaults() {
		p.FaultStalls = f.FaultStalls()
		p.DownLinks = f.DownLinks()
		p.DownRouters = f.DownRouters()
		if s.rerouter != nil {
			p.Rerouted = s.rerouter.Rerouted()
		}
	}

	if s.classes != nil {
		s.classes.Accumulate(f.LinkFlits, s.curClass)
		var sum int64
		for _, v := range s.curClass {
			sum += v
		}
		// The fabric zeroes linkFlits at the warmup boundary
		// (ResetLinkStats); a totals decrease means the previous sample's
		// baseline is gone, so the interval restarts from zero.
		if sum < s.prevSum {
			for i := range s.prevClass {
				s.prevClass[i] = 0
			}
		}
		for i := range s.curClass {
			s.deltaClass[i] = s.curClass[i] - s.prevClass[i]
			s.classUtil[i] = s.classes.Utilization(i, s.deltaClass[i], s.cfg.Every)
		}
		copy(s.prevClass, s.curClass)
		s.prevSum = sum
		p.ClassFlits = s.deltaClass
	}

	progress := ctr.FlitsInjected + ctr.FlitsDelivered + f.HeadersRouted()
	o := observation{
		cycle:       cycle,
		classUtil:   s.classUtil,
		queued:      p.Queued,
		inFlight:    p.InFlight,
		progressed:  progress != s.prevProgress,
		downLinks:   p.DownLinks,
		downRouters: p.DownRouters,
	}
	s.prevProgress = progress
	if s.engine != nil {
		if since, budget, ok := s.engine.WatchState(); ok {
			o.watchSince, o.watchBudget, o.watched = since, budget, true
		}
	}

	s.mu.Lock()
	s.ring.Push(p)
	names := s.ClassNames()
	s.det.observe(o, names, s.emit)
	s.mu.Unlock()
}

// emitLocked appends an event under s.mu (the detector calls it
// synchronously from observe).
func (s *Sampler) emitLocked(ev Event) {
	s.eventsTotal++
	if len(s.events) < s.cfg.EventCap {
		s.events = append(s.events, ev)
	}
}

// NoteStall records a terminal watchdog stall as an event. Call it when
// a run dies with a sim.StallError.
func (s *Sampler) NoteStall(st *sim.StallError) {
	if st == nil {
		return
	}
	s.mu.Lock()
	s.emitLocked(stallEvent(st.Cycle, st.StalledSince, st.Budget, st.Report))
	s.mu.Unlock()
}

// Finish marks the run complete, records the failure reason (empty for
// success), and forces a final sample at the fabric's current cycle so
// the series always ends with the run's terminal state even off-cadence.
func (s *Sampler) Finish(failure string) {
	var cycle int64
	if s.engine != nil {
		cycle = s.engine.Cycle()
	}
	s.mu.Lock()
	done := s.done
	s.done = true
	s.failure = failure
	last := int64(-1)
	if s.ring.Len() > 0 {
		last = s.ring.At(s.ring.Len() - 1).Cycle
	}
	s.mu.Unlock()
	if done {
		return
	}
	if cycle > last {
		s.sample(cycle)
	}
}

// Snapshot returns deep copies of the retained time series and event
// log, oldest first. Safe to call from any goroutine, mid-run or after.
func (s *Sampler) Snapshot() (points []Point, events []Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	points = s.ring.Snapshot(nil)
	events = append([]Event(nil), s.events...)
	return points, events
}

// Dropped returns how many samples scrolled off the ring and how many
// events overflowed the log.
func (s *Sampler) Dropped() (points, events int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ring.Dropped(), s.eventsTotal - len(s.events)
}

// Run returns the run identity the sampler was built with.
func (s *Sampler) Run() RunInfo { return s.run }
