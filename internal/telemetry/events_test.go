package telemetry

import "testing"

// feed pushes one observation into d and returns the events it emitted.
func feed(d *detector, o observation) []Event {
	var out []Event
	d.observe(o, []string{"c0"}, func(ev Event) { out = append(out, ev) })
	return out
}

func TestCongestionHysteresis(t *testing.T) {
	d := newDetector(1, Thresholds{Onset: 0.9, Clear: 0.75, Sustain: 3})
	cycle := int64(0)
	util := func(u float64) []Event {
		cycle += 100
		return feed(d, observation{cycle: cycle, classUtil: []float64{u}, progressed: true})
	}

	// Two hot samples: below the sustain requirement, no event.
	if evs := util(0.95); len(evs) != 0 {
		t.Fatalf("after 1 hot sample: %v", evs)
	}
	if evs := util(0.95); len(evs) != 0 {
		t.Fatalf("after 2 hot samples: %v", evs)
	}
	// Third consecutive hot sample: onset.
	evs := util(0.95)
	if len(evs) != 1 || evs[0].Kind != EventCongestionOnset || evs[0].Class != "c0" {
		t.Fatalf("after 3 hot samples: %v", evs)
	}
	// Staying hot does not re-fire.
	if evs := util(0.99); len(evs) != 0 {
		t.Fatalf("staying hot re-fired: %v", evs)
	}
	// Dipping into the hysteresis band (between clear and onset) does
	// not clear.
	if evs := util(0.8); len(evs) != 0 {
		t.Fatalf("hysteresis band cleared: %v", evs)
	}
	// Dropping to the clear threshold does.
	evs = util(0.7)
	if len(evs) != 1 || evs[0].Kind != EventCongestionClear {
		t.Fatalf("below clear: %v", evs)
	}
	// A single hot sample after clearing does not immediately re-onset:
	// the sustain counter restarted.
	if evs := util(0.95); len(evs) != 0 {
		t.Fatalf("onset without sustain after clear: %v", evs)
	}
	util(0.95)
	evs = util(0.95)
	if len(evs) != 1 || evs[0].Kind != EventCongestionOnset {
		t.Fatalf("second onset after sustain: %v", evs)
	}
}

func TestQueueGrowthRearm(t *testing.T) {
	d := newDetector(0, Thresholds{QueueGrowth: 3})
	cycle := int64(0)
	q := func(queued int64) []Event {
		cycle += 100
		return feed(d, observation{cycle: cycle, queued: queued, progressed: true})
	}

	// First sample establishes the baseline; then three consecutive
	// strictly-growing samples fire once.
	var got []Event
	for _, queued := range []int64{1, 2, 3} {
		if evs := q(queued); len(evs) != 0 {
			t.Fatalf("queued=%d fired early: %v", queued, evs)
		}
	}
	got = q(4)
	if len(got) != 1 || got[0].Kind != EventQueueGrowth {
		t.Fatalf("after 3 growing samples: %v", got)
	}
	// Continued growth does not re-fire until the streak breaks.
	if evs := q(5); len(evs) != 0 {
		t.Fatalf("continued growth re-fired: %v", evs)
	}
	if evs := q(5); len(evs) != 0 { // flat: re-arms
		t.Fatalf("flat sample fired: %v", evs)
	}
	q(6)
	q(7)
	got = q(8)
	if len(got) != 1 || got[0].Kind != EventQueueGrowth {
		t.Fatalf("after re-arm and 3 growing samples: %v", got)
	}
}

func TestNearStallFallback(t *testing.T) {
	d := newDetector(0, Thresholds{NearStallSamples: 4})
	cycle := int64(0)
	flat := func(inFlight int64, progressed bool) []Event {
		cycle += 100
		return feed(d, observation{cycle: cycle, inFlight: inFlight, progressed: progressed})
	}

	for i := 0; i < 3; i++ {
		if evs := flat(10, false); len(evs) != 0 {
			t.Fatalf("flat sample %d fired early: %v", i+1, evs)
		}
	}
	evs := flat(10, false)
	if len(evs) != 1 || evs[0].Kind != EventNearStall {
		t.Fatalf("after 4 flat samples: %v", evs)
	}
	// Stays quiet until progress resets the streak...
	if evs := flat(10, false); len(evs) != 0 {
		t.Fatalf("near-stall re-fired: %v", evs)
	}
	flat(10, true)
	// ...and an idle network (nothing in flight) never counts as stalled.
	for i := 0; i < 10; i++ {
		if evs := flat(0, false); len(evs) != 0 {
			t.Fatalf("idle network fired: %v", evs)
		}
	}
}

func TestNearStallAgainstWatchdogBudget(t *testing.T) {
	d := newDetector(0, Thresholds{NearStallFraction: 0.5})
	// Stalled since cycle 100 with a 200-cycle budget: the halfway point
	// is cycle 200.
	evs := feed(d, observation{cycle: 150, inFlight: 5, watched: true, watchSince: 100, watchBudget: 200})
	if len(evs) != 0 {
		t.Fatalf("below the budget fraction: %v", evs)
	}
	evs = feed(d, observation{cycle: 200, inFlight: 5, watched: true, watchSince: 100, watchBudget: 200})
	if len(evs) != 1 || evs[0].Kind != EventNearStall {
		t.Fatalf("at the budget fraction: %v", evs)
	}
}

func TestStallEventSummarizesSnapshot(t *testing.T) {
	ev := stallEvent(500, 300, 200, nil)
	if ev.Kind != EventStall || ev.Cycle != 500 || ev.Value != 200 || ev.Threshold != 200 {
		t.Fatalf("stall event = %+v", ev)
	}
}

func TestFaultOnsetAndClear(t *testing.T) {
	d := newDetector(0, Thresholds{})
	cycle := int64(0)
	down := func(links, routers int) []Event {
		cycle += 100
		return feed(d, observation{cycle: cycle, progressed: true, downLinks: links, downRouters: routers})
	}

	// A clean fabric emits nothing.
	if evs := down(0, 0); len(evs) != 0 {
		t.Fatalf("clean fabric fired: %v", evs)
	}
	// Masks appear: one onset event naming the gauge split.
	evs := down(1, 1)
	if len(evs) != 1 || evs[0].Kind != EventFaultOnset || evs[0].Value != 2 {
		t.Fatalf("first masks: %v", evs)
	}
	if evs[0].Detail != "1 links and 1 routers down" {
		t.Fatalf("onset detail = %q", evs[0].Detail)
	}
	// A steady degraded fabric does not re-fire.
	if evs := down(1, 1); len(evs) != 0 {
		t.Fatalf("steady degraded state re-fired: %v", evs)
	}
	// More masks: a second onset with the previous count as threshold.
	evs = down(3, 1)
	if len(evs) != 1 || evs[0].Kind != EventFaultOnset || evs[0].Threshold != 2 {
		t.Fatalf("deepening faults: %v", evs)
	}
	// Partial recovery is not a clear event — masks remain.
	if evs := down(1, 0); len(evs) != 0 {
		t.Fatalf("partial recovery fired: %v", evs)
	}
	// Full recovery: one clear event.
	evs = down(0, 0)
	if len(evs) != 1 || evs[0].Kind != EventFaultClear {
		t.Fatalf("full recovery: %v", evs)
	}
	// And a later re-onset is detected again.
	if evs := down(2, 0); len(evs) != 1 || evs[0].Kind != EventFaultOnset {
		t.Fatalf("re-onset after clear: %v", evs)
	}
}
