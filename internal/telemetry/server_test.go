package telemetry_test

import (
	"encoding/json"
	"flag"
	"io"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"smart/internal/telemetry"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden /metrics fixture")

const metricsGoldenPath = "testdata/golden_metrics.txt"

// scrape GETs one path from the server's handler.
func scrape(t *testing.T, srv *telemetry.Server, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, req)
	body, err := io.ReadAll(w.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return w.Result().StatusCode, string(body)
}

// TestMetricsGoldenResponse pins the full /metrics body for a
// deterministic fixed-seed run: the exposition format, metric names,
// label sets and every value. Counter changes in the fabric or format
// changes in the server both surface here as a readable diff.
// Regenerate with:
//
//	go test ./internal/telemetry -run TestMetricsGoldenResponse -update-golden
func TestMetricsGoldenResponse(t *testing.T) {
	s := newSim(t, 0.4)
	run := telemetry.RunInfo{Batch: "golden", Index: 2, Label: "tree adaptive-2vc",
		Pattern: "uniform", Seed: 7, Load: 0.4, Fingerprint: s.Config.Fingerprint()}
	sp := telemetry.NewSampler(s.Fabric, s.Engine, run, telemetry.Config{Every: 100})
	sp.Register(s.Engine)
	srv := telemetry.NewServer()
	srv.Attach(sp)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}

	status, body := scrape(t, srv, "/metrics")
	if status != 200 {
		t.Fatalf("/metrics status %d", status)
	}
	// Two scrapes of unchanged state must be byte-identical — the
	// deterministic-ordering contract (attach-order iteration, no maps,
	// no wall time).
	if _, again := scrape(t, srv, "/metrics"); again != body {
		t.Fatal("two scrapes of the same state differ")
	}

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(metricsGoldenPath, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", metricsGoldenPath, len(body))
		return
	}
	want, err := os.ReadFile(metricsGoldenPath)
	if err != nil {
		t.Fatalf("reading golden fixture (run with -update-golden to create): %v", err)
	}
	if body != string(want) {
		t.Fatalf("/metrics drifted from the golden fixture.\n--- got ---\n%s\n--- want ---\n%s", body, want)
	}
}

func TestMetricsServesGridAndLifecycle(t *testing.T) {
	s := newSim(t, 0.4)
	sp := telemetry.NewSampler(s.Fabric, s.Engine, telemetry.RunInfo{Label: "x"}, telemetry.Config{Every: 100})
	sp.Register(s.Engine)
	srv := telemetry.NewServer()
	srv.Attach(sp)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	_, body := scrape(t, srv, "/metrics")
	if !strings.Contains(body, "smart_runs_active 1") {
		t.Fatalf("active run not reported:\n%s", body)
	}
	if !strings.Contains(body, "smart_run_flits_delivered_total") {
		t.Fatalf("run counters missing:\n%s", body)
	}
	srv.Detach(sp, false)
	_, body = scrape(t, srv, "/metrics")
	if !strings.Contains(body, "smart_runs_active 0") || !strings.Contains(body, "smart_runs_completed_total 1") {
		t.Fatalf("detach not reflected:\n%s", body)
	}
	if strings.Contains(body, "smart_run_flits_delivered_total") {
		t.Fatalf("detached run still served:\n%s", body)
	}
}

func TestTelemetryJSONEndpoint(t *testing.T) {
	s := newSim(t, 0.4)
	sp := telemetry.NewSampler(s.Fabric, s.Engine, telemetry.RunInfo{Label: "x", Load: 0.4}, telemetry.Config{Every: 100})
	sp.Register(s.Engine)
	srv := telemetry.NewServer()
	srv.Attach(sp)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	status, body := scrape(t, srv, "/telemetry.json")
	if status != 200 {
		t.Fatalf("/telemetry.json status %d", status)
	}
	var got struct {
		RunsActive int `json:"runs_active"`
		Runs       []struct {
			Label  string            `json:"label"`
			Every  int64             `json:"every"`
			Points []telemetry.Point `json:"points"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, body)
	}
	if got.RunsActive != 1 || len(got.Runs) != 1 {
		t.Fatalf("runs_active %d, runs %d", got.RunsActive, len(got.Runs))
	}
	if got.Runs[0].Label != "x" || got.Runs[0].Every != 100 || len(got.Runs[0].Points) == 0 {
		t.Fatalf("run payload: %+v", got.Runs[0])
	}
}
