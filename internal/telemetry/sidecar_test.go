package telemetry

import (
	"os"
	"path/filepath"
	"testing"
)

func sidecarRecord(fingerprint string, index int) Record {
	return Record{
		Schema:  Schema,
		RunInfo: RunInfo{Index: index, Fingerprint: fingerprint, Load: 0.5},
		Every:   100,
		Points:  []Point{{Cycle: 100, FlitsInjected: int64(index) * 10}},
	}
}

// TestSidecarKillAndResume simulates the interruption the sidecar is
// built for: a process killed mid-write leaves a torn final line, and
// the resumed process re-runs some configs. The resumed sidecar must
// hold each run's series exactly once, torn tail discarded.
func TestSidecarKillAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "series.jsonl")

	sc, err := OpenSidecar(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Write(sidecarRecord("fp-a", 0)); err != nil {
		t.Fatal(err)
	}
	if err := sc.Write(sidecarRecord("fp-b", 1)); err != nil {
		t.Fatal(err)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}

	// The kill: a partial record with no trailing newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":"smart/timeseries/v1","fingerprint":"fp-c","points":[{"cy`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The resume: already-journaled fingerprints are deduped, the torn
	// record is re-written whole, and a new run appends.
	sc, err = OpenSidecar(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Len() != 2 {
		t.Fatalf("resumed sidecar holds %d runs, want 2", sc.Len())
	}
	for _, rec := range []Record{
		sidecarRecord("fp-a", 0), // replayed by the resumed grid: must dedup
		sidecarRecord("fp-c", 2), // the torn run, re-run to completion
		sidecarRecord("fp-b", 1), // replayed again
	} {
		if err := sc.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := DecodeSidecar(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("resumed sidecar decodes to %d records, want 3", len(recs))
	}
	seen := map[string]int{}
	for _, rec := range recs {
		seen[rec.Fingerprint]++
	}
	for _, fp := range []string{"fp-a", "fp-b", "fp-c"} {
		if seen[fp] != 1 {
			t.Fatalf("fingerprint %s appears %d times, want exactly once (%v)", fp, seen[fp], seen)
		}
	}

	// The resume contract: the interrupted-and-resumed file digests
	// identically to an uninterrupted reference, despite different
	// record order.
	reference := []Record{sidecarRecord("fp-b", 1), sidecarRecord("fp-c", 2), sidecarRecord("fp-a", 0)}
	if got, want := DigestRecords(recs), DigestRecords(reference); got != want {
		t.Fatalf("resumed digest %s != reference digest %s", got, want)
	}
}

func TestSidecarRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "series.jsonl")
	if err := os.WriteFile(path, []byte("not json\n{\"schema\":\"smart/timeseries/v1\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSidecar(path, true); err == nil {
		t.Fatal("resume over mid-file corruption succeeded, want error")
	}
}

func TestSidecarRejectsUnknownSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "series.jsonl")
	if err := os.WriteFile(path, []byte(`{"schema":"smart/timeseries/v99","fingerprint":"x"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSidecar(path, true); err == nil {
		t.Fatal("resume over unknown schema succeeded, want error")
	}
	if _, err := DecodeSidecar([]byte(`{"schema":"smart/timeseries/v99"}` + "\n")); err == nil {
		t.Fatal("decode of unknown schema succeeded, want error")
	}
}

func TestDigestIgnoresOrder(t *testing.T) {
	a := []Record{sidecarRecord("x", 0), sidecarRecord("y", 1)}
	b := []Record{sidecarRecord("y", 1), sidecarRecord("x", 0)}
	if DigestRecords(a) != DigestRecords(b) {
		t.Fatal("digest depends on record order")
	}
	c := []Record{sidecarRecord("x", 0), sidecarRecord("z", 1)}
	if DigestRecords(a) == DigestRecords(c) {
		t.Fatal("digest blind to content change")
	}
}
