package telemetry

import (
	"flag"
	"fmt"
	"net"
)

// Flags carries the telemetry command-line options shared by the
// commands: -metrics-addr for the live HTTP endpoint, -timeseries for
// the JSONL sidecar, -sample-every for the cadence.
type Flags struct {
	MetricsAddr string
	SampleEvery int64
	SidecarPath string
}

// AddFlags registers -metrics-addr, -sample-every and -timeseries on fs.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "", "serve live telemetry on this `address` (/metrics Prometheus text, /telemetry.json)")
	fs.Int64Var(&f.SampleEvery, "sample-every", 100, "telemetry sampling cadence in `cycles`")
	fs.StringVar(&f.SidecarPath, "timeseries", "", "journal each run's time series to this JSONL `file` (schema "+Schema+")")
	return f
}

// Enabled reports whether any telemetry sink was requested.
func (f *Flags) Enabled() bool {
	return f.MetricsAddr != "" || f.SidecarPath != ""
}

// Options is the assembled telemetry configuration the experiment layer
// (core.Options.Telemetry) consumes: where live state is served, where
// series are journaled, and how samplers are tuned. Either sink may be
// nil.
type Options struct {
	Server  *Server
	Sidecar *Sidecar
	Config  Config
}

// Open materializes the sinks the flags describe, or nil when telemetry
// is off. resume reopens an existing sidecar and dedups already-recorded
// runs (pass the -resume flag's value). The returned stop function
// closes the listener and syncs the sidecar; call it once on the exit
// path. The returned address is the endpoint actually bound ("" when
// -metrics-addr is off) — report it so ":0" users can find the port.
func (f *Flags) Open(resume bool) (opts *Options, addr string, stop func() error, err error) {
	if !f.Enabled() {
		return nil, "", func() error { return nil }, nil
	}
	opts = &Options{Config: Config{Every: f.SampleEvery}}
	var ln net.Listener
	if f.MetricsAddr != "" {
		opts.Server = NewServer()
		ln, err = opts.Server.Serve(f.MetricsAddr)
		if err != nil {
			return nil, "", nil, err
		}
		addr = ln.Addr().String()
	}
	if f.SidecarPath != "" {
		opts.Sidecar, err = OpenSidecar(f.SidecarPath, resume)
		if err != nil {
			if ln != nil {
				ln.Close()
			}
			return nil, "", nil, err
		}
	}
	stop = func() error {
		var firstErr error
		if ln != nil {
			firstErr = ln.Close()
		}
		if opts.Sidecar != nil {
			if err := opts.Sidecar.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			return fmt.Errorf("telemetry: shutting down: %w", firstErr)
		}
		return nil
	}
	return opts, addr, stop, nil
}
