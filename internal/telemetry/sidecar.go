package telemetry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"smart/internal/resilience"
)

// Schema versions the time-series sidecar record layout. Decoders
// reject records whose schema they do not understand.
const Schema = "smart/timeseries/v1"

// Record is one line of the JSONL time-series sidecar: the full flight
// recording of a single run — its identity, sampling cadence, class
// labels, retained time series and event log. No field depends on wall
// time or iteration order, so identical runs produce byte-identical
// records and DigestRecords is stable by construction.
type Record struct {
	Schema string `json:"schema"`
	RunInfo
	// Every is the sampling cadence in cycles.
	Every int64 `json:"every"`
	// ClassNames labels the ClassFlits slots of every point; ClassLinks
	// counts each class's physical channels, which is what turns a flit
	// delta into a utilization (flits / links / interval). Both absent
	// for classless topologies.
	ClassNames []string `json:"class_names,omitempty"`
	ClassLinks []int64  `json:"class_links,omitempty"`
	// Points is the retained time series, oldest first; DroppedPoints
	// counts samples that scrolled off the flight recorder's ring.
	Points        []Point `json:"points"`
	DroppedPoints int     `json:"dropped_points,omitempty"`
	// Events is the congestion-event log (kept from the head);
	// DroppedEvents counts overflow.
	Events        []Event `json:"events,omitempty"`
	DroppedEvents int     `json:"dropped_events,omitempty"`
	// Failure carries the run's failure summary, empty for success.
	Failure string `json:"failure,omitempty"`
}

// RecordOf assembles the sidecar record for a finished (or dying)
// sampler.
func RecordOf(s *Sampler) Record {
	points, events := s.Snapshot()
	dp, de := s.Dropped()
	s.mu.Lock()
	failure := s.failure
	s.mu.Unlock()
	return Record{
		Schema:        Schema,
		RunInfo:       s.run,
		Every:         s.cfg.Every,
		ClassNames:    s.ClassNames(),
		ClassLinks:    s.ClassLinks(),
		Points:        points,
		DroppedPoints: dp,
		Events:        events,
		DroppedEvents: de,
		Failure:       failure,
	}
}

// Sidecar journals time-series records to a JSONL file next to the run
// manifest, one record per run, flushed as each run finishes. Opened
// with resume it loads the already-recorded fingerprints, and Write
// drops duplicates — so a kill-and-resume sweep produces a sidecar with
// each run's series exactly once. The file tolerates the same torn tail
// the checkpoint journal does.
type Sidecar struct {
	//smartlint:allow concurrency — telemetry sidecar is off the cycle path; the mutex serializes writer access
	mu     sync.Mutex
	f      *os.File
	enc    *json.Encoder
	path   string
	seen   map[string]bool
	closed bool
}

// OpenSidecar creates (or, with resume, reopens and scans) the sidecar
// at path. Without resume an existing file is truncated.
func OpenSidecar(path string, resume bool) (*Sidecar, error) {
	flags := os.O_RDWR | os.O_CREATE
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("telemetry: opening sidecar: %w", err)
	}
	s := &Sidecar{f: f, path: path, seen: map[string]bool{}}
	if resume {
		data, err := io.ReadAll(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("telemetry: reading sidecar %s: %w", path, err)
		}
		seen, valid, err := resilience.DedupJournal(data, func(n int, line []byte) (string, bool, error) {
			var rec struct {
				Schema      string `json:"schema"`
				Fingerprint string `json:"fingerprint"`
			}
			if err := json.Unmarshal(line, &rec); err != nil {
				return "", false, fmt.Errorf("telemetry: sidecar %s line %d is corrupt: %w", path, n, err)
			}
			if rec.Schema != Schema {
				return "", false, fmt.Errorf("telemetry: sidecar %s line %d has unknown schema %q (want %q)", path, n, rec.Schema, Schema)
			}
			return rec.Fingerprint, true, nil
		})
		if err != nil {
			f.Close()
			return nil, err
		}
		s.seen = seen
		if err := resilience.TruncateTail(f, valid); err != nil {
			f.Close()
			return nil, err
		}
	}
	s.enc = json.NewEncoder(f)
	return s, nil
}

// Path returns the sidecar's file path.
func (s *Sidecar) Path() string { return s.path }

// Len returns the number of distinct runs on record.
func (s *Sidecar) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.seen)
}

// Write journals one run's record, flushing before returning. A record
// whose fingerprint is already on file is dropped — the resume dedup
// that keeps a kill-and-resume sweep from duplicating series. Safe for
// concurrent use by parallel runners.
func (s *Sidecar) Write(rec Record) error {
	if rec.Schema == "" {
		rec.Schema = Schema
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("telemetry: sidecar %s is closed", s.path)
	}
	if s.seen[rec.Fingerprint] {
		return nil
	}
	if err := s.enc.Encode(rec); err != nil {
		return fmt.Errorf("telemetry: journaling series %s: %w", rec.Fingerprint, err)
	}
	s.seen[rec.Fingerprint] = true
	return nil
}

// Close syncs and closes the sidecar. Idempotent.
func (s *Sidecar) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	syncErr := s.f.Sync()
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("telemetry: closing sidecar: %w", err)
	}
	if syncErr != nil {
		return fmt.Errorf("telemetry: syncing sidecar: %w", syncErr)
	}
	return nil
}

// DecodeSidecar parses a complete sidecar file back into records,
// rejecting unknown schemas and malformed lines (a torn tail is a
// decode error here: readers see only finished files).
func DecodeSidecar(data []byte) ([]Record, error) {
	var recs []Record
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("telemetry: sidecar record %d: %w", len(recs)+1, err)
		}
		if rec.Schema != Schema {
			return nil, fmt.Errorf("telemetry: sidecar record %d has unknown schema %q (want %q)", len(recs)+1, rec.Schema, Schema)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// DigestRecords returns a canonical content hash of a set of sidecar
// records, invariant to record order (parallel runners finish in
// wall-clock order). Since Record carries no wall-time field, a resumed
// sweep digests identically to an uninterrupted one — the sidecar's
// version of the manifest digest contract.
func DigestRecords(recs []Record) string {
	canon := make([]Record, len(recs))
	copy(canon, recs)
	sort.Slice(canon, func(i, j int) bool {
		a, b := &canon[i], &canon[j]
		if a.Batch != b.Batch {
			return a.Batch < b.Batch
		}
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		return a.Fingerprint < b.Fingerprint
	})
	h := sha256.New()
	for _, rec := range canon {
		line, err := json.Marshal(rec)
		if err != nil {
			// Record marshals from plain value fields; failure here means
			// the type itself regressed.
			panic(fmt.Sprintf("telemetry: marshaling canonical record: %v", err))
		}
		h.Write(line)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}
