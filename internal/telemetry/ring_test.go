package telemetry

import "testing"

func point(cycle int64, class0, class1 int64) Point {
	return Point{Cycle: cycle, FlitsInjected: 10 * cycle, ClassFlits: []int64{class0, class1}}
}

func TestRingBeforeWraparound(t *testing.T) {
	r, err := NewRing(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for c := int64(1); c <= 3; c++ {
		r.Push(point(c, c, -c))
	}
	if r.Len() != 3 || r.Total() != 3 || r.Dropped() != 0 {
		t.Fatalf("Len/Total/Dropped = %d/%d/%d, want 3/3/0", r.Len(), r.Total(), r.Dropped())
	}
	for i := 0; i < 3; i++ {
		if got := r.At(i).Cycle; got != int64(i+1) {
			t.Fatalf("At(%d).Cycle = %d, want %d", i, got, i+1)
		}
	}
}

func TestRingWraparound(t *testing.T) {
	r, err := NewRing(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for c := int64(1); c <= 10; c++ {
		r.Push(point(c, c, 2*c))
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", r.Len())
	}
	if r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("Total/Dropped = %d/%d, want 10/6", r.Total(), r.Dropped())
	}
	// Oldest-first: cycles 7, 8, 9, 10 survive.
	for i := 0; i < 4; i++ {
		want := int64(7 + i)
		p := r.At(i)
		if p.Cycle != want {
			t.Fatalf("At(%d).Cycle = %d, want %d", i, p.Cycle, want)
		}
		if p.ClassFlits[0] != want || p.ClassFlits[1] != 2*want {
			t.Fatalf("At(%d).ClassFlits = %v, want [%d %d]", i, p.ClassFlits, want, 2*want)
		}
	}
}

func TestRingPushCopiesClassFlits(t *testing.T) {
	r, err := NewRing(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	scratch := []int64{1, 2}
	r.Push(Point{Cycle: 1, ClassFlits: scratch})
	// The sampler reuses its scratch slice between samples; the ring
	// must have copied, not aliased.
	scratch[0], scratch[1] = 99, 99
	if got := r.At(0).ClassFlits[0]; got != 1 {
		t.Fatalf("ring aliased the caller's slice: ClassFlits[0] = %d, want 1", got)
	}
}

func TestRingSnapshotIsDeepCopy(t *testing.T) {
	r, err := NewRing(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.Push(Point{Cycle: 1, ClassFlits: []int64{5}})
	snap := r.Snapshot(nil)
	if len(snap) != 1 || snap[0].ClassFlits[0] != 5 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Wrapping past the snapshotted slot must not disturb the copy.
	r.Push(Point{Cycle: 2, ClassFlits: []int64{6}})
	r.Push(Point{Cycle: 3, ClassFlits: []int64{7}})
	if snap[0].Cycle != 1 || snap[0].ClassFlits[0] != 5 {
		t.Fatalf("snapshot mutated by later pushes: %+v", snap[0])
	}
}

func TestRingRejectsBadCapacity(t *testing.T) {
	if _, err := NewRing(0, 1); err == nil {
		t.Fatal("NewRing(0, 1) succeeded, want error")
	}
	if _, err := NewRing(4, -1); err == nil {
		t.Fatal("NewRing(4, -1) succeeded, want error")
	}
}
