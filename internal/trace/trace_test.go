package trace

import (
	"strings"
	"testing"

	"smart/internal/routing"
	"smart/internal/sim"
	"smart/internal/topology"
	"smart/internal/wormhole"
)

func tracedTreeRun(t *testing.T, limit int) (*Recorder, *wormhole.Fabric, *topology.Tree) {
	t.Helper()
	tree, err := topology.NewTree(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := routing.NewTreeAdaptive(tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := wormhole.NewFabric(tree, wormhole.Config{VCs: 2, BufDepth: 4, PacketFlits: 4, InjLanes: 1}, alg)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(limit)
	f.Tracer = rec
	e := sim.NewEngine()
	f.Register(e)
	f.EnqueuePacket(0, 15, 0)
	f.EnqueuePacket(1, 2, 0)
	f.EnqueuePacket(5, 9, 0)
	e.Run(200)
	return rec, f, tree
}

func TestRecorderCapturesTimelines(t *testing.T) {
	rec, f, tree := tracedTreeRun(t, 0)
	ids := rec.Packets()
	if len(ids) != 3 {
		t.Fatalf("recorded %d packets, want 3", len(ids))
	}
	// Packet 0 (0 -> 15) crosses the top: 3 routing events.
	events := rec.Events(0)
	if len(events) != 3 {
		t.Fatalf("packet 0 has %d events, want 3", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Cycle <= events[i-1].Cycle {
			t.Fatal("events out of order")
		}
	}
	if rec.DeliveredAt(0) != f.Packet(0).TailAt {
		t.Fatalf("delivery cycle %d, want %d", rec.DeliveredAt(0), f.Packet(0).TailAt)
	}
	if rec.DeliveredAt(99) != -1 {
		t.Fatal("unknown packet should report -1")
	}
	_ = tree
}

func TestRecorderLimit(t *testing.T) {
	rec, _, _ := tracedTreeRun(t, 1)
	if len(rec.Packets()) != 1 {
		t.Fatalf("limit 1 recorded %d packets", len(rec.Packets()))
	}
	if len(rec.Events(1)) != 0 {
		t.Fatal("events recorded beyond the limit")
	}
}

func TestTimelineRendering(t *testing.T) {
	rec, f, tree := tracedTreeRun(t, 0)
	namer, err := NamerFor(tree)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rec.Timeline(f, namer, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"packet 0: node 0 -> node 15, 4 flits",
		"header entered the injection lane",
		"switch(level 0, label 0)",
		"switch(level 1,",
		"up ",
		"node 15",
		"tail delivered",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	if _, err := rec.Timeline(f, namer, 999); err == nil {
		t.Error("nonexistent packet accepted")
	}
}

func TestCubeNamer(t *testing.T) {
	cube, _ := topology.NewCube(4, 2)
	namer, err := NamerFor(cube)
	if err != nil {
		t.Fatal(err)
	}
	if got := namer.RouterName(5); got != "router[1 1]" {
		t.Fatalf("RouterName = %q", got)
	}
	if got := namer.PortName(5, topology.PortOf(1, topology.Minus)); got != "dim1-" {
		t.Fatalf("PortName = %q", got)
	}
	if got := namer.PortName(5, cube.NodePort()); got != "node" {
		t.Fatalf("node PortName = %q", got)
	}
}

func TestNamerForUnknown(t *testing.T) {
	type fake struct{ topology.Topology }
	if _, err := NamerFor(fake{}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}
