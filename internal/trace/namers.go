package trace

import (
	"fmt"

	"smart/internal/topology"
)

// TreeNamer labels k-ary n-tree switches and ports.
type TreeNamer struct {
	Tree *topology.Tree
}

// RouterName implements RouterNamer.
func (n TreeNamer) RouterName(router int) string {
	return fmt.Sprintf("switch(level %d, label %d)", n.Tree.SwitchLevel(router), n.Tree.SwitchLabel(router))
}

// PortName implements RouterNamer.
func (n TreeNamer) PortName(router, port int) string {
	ports := n.Tree.RouterPorts(router)
	if n.Tree.IsUpPort(port) {
		return fmt.Sprintf("up %d", port-n.Tree.K)
	}
	if port < len(ports) && ports[port].Kind == topology.PortNode {
		return fmt.Sprintf("node %d", ports[port].Peer)
	}
	return fmt.Sprintf("down %d", port)
}

// CubeNamer labels k-ary n-cube (or mesh) routers and ports.
type CubeNamer struct {
	Cube *topology.Cube
}

// RouterName implements RouterNamer.
func (n CubeNamer) RouterName(router int) string {
	coords := make([]int, n.Cube.N)
	for d := range coords {
		coords[d] = n.Cube.Digit(router, d)
	}
	return fmt.Sprintf("router%v", coords)
}

// PortName implements RouterNamer.
func (n CubeNamer) PortName(router, port int) string {
	if port == n.Cube.NodePort() {
		return "node"
	}
	d, dir := n.Cube.DimDirOf(port)
	sign := "+"
	if dir == topology.Minus {
		sign = "-"
	}
	return fmt.Sprintf("dim%d%s", d, sign)
}

// NamerFor picks the right namer for a topology.
func NamerFor(top topology.Topology) (RouterNamer, error) {
	switch t := top.(type) {
	case *topology.Tree:
		return TreeNamer{Tree: t}, nil
	case *topology.Cube:
		return CubeNamer{Cube: t}, nil
	default:
		return nil, fmt.Errorf("trace: no namer for topology %T", top)
	}
}
