// Package trace records per-packet routing timelines from a live fabric
// and renders them as human-readable listings — the microscope view of
// the simulator, used for debugging routing disciplines and for
// explaining a single worm's journey hop by hop (the macroscope views are
// internal/metrics and internal/chanstats). The recorder implements
// wormhole.Tracer and can be attached to any fabric.
package trace

import (
	"fmt"
	"strings"

	"smart/internal/order"
	"smart/internal/wormhole"
)

// Event is one routing decision in a packet's life.
type Event struct {
	Cycle                                    int64
	Router, InPort, InLane, OutPort, OutLane int
}

// Recorder captures the timelines of the first Limit packets (by id) and
// their delivery cycles. A zero Limit records everything — use with care
// on long runs.
type Recorder struct {
	Limit     int
	events    map[wormhole.PacketID][]Event
	delivered map[wormhole.PacketID]int64
}

// NewRecorder returns a recorder for the first limit packets.
func NewRecorder(limit int) *Recorder {
	return &Recorder{
		Limit:     limit,
		events:    map[wormhole.PacketID][]Event{},
		delivered: map[wormhole.PacketID]int64{},
	}
}

// HeaderRouted implements wormhole.Tracer.
func (r *Recorder) HeaderRouted(cycle int64, pkt wormhole.PacketID, router, inPort, inLane, outPort, outLane int) {
	if r.Limit > 0 && int(pkt) >= r.Limit {
		return
	}
	r.events[pkt] = append(r.events[pkt], Event{
		Cycle: cycle, Router: router,
		InPort: inPort, InLane: inLane, OutPort: outPort, OutLane: outLane,
	})
}

// PacketDelivered implements wormhole.Tracer.
func (r *Recorder) PacketDelivered(cycle int64, pkt wormhole.PacketID) {
	if r.Limit > 0 && int(pkt) >= r.Limit {
		return
	}
	r.delivered[pkt] = cycle
}

// Packets returns the recorded packet ids in order.
func (r *Recorder) Packets() []wormhole.PacketID {
	return order.Keys(r.events)
}

// Events returns the recorded routing events of one packet.
func (r *Recorder) Events(pkt wormhole.PacketID) []Event { return r.events[pkt] }

// DeliveredAt returns the tail-delivery cycle, or -1 if unrecorded.
func (r *Recorder) DeliveredAt(pkt wormhole.PacketID) int64 {
	if c, ok := r.delivered[pkt]; ok {
		return c
	}
	return -1
}

// RouterNamer annotates router and port indices with topology-specific
// labels ("switch (2, 14)" / "up 3"); internal/topology's families are
// adapted in namers.go.
type RouterNamer interface {
	RouterName(router int) string
	PortName(router, port int) string
}

// Timeline renders one packet's journey: creation, injection, each hop
// with its dwell time, and delivery.
func (r *Recorder) Timeline(f *wormhole.Fabric, namer RouterNamer, pkt wormhole.PacketID) (string, error) {
	if int(pkt) < 0 || int(pkt) >= len(f.Packets) {
		return "", fmt.Errorf("trace: packet %d does not exist", pkt)
	}
	info := f.Packet(pkt)
	var b strings.Builder
	fmt.Fprintf(&b, "packet %d: node %d -> node %d, %d flits\n", pkt, info.Src, info.Dst, info.Flits)
	fmt.Fprintf(&b, "  c%-6d created\n", info.CreatedAt)
	if info.InjectedAt >= 0 {
		fmt.Fprintf(&b, "  c%-6d header entered the injection lane (queued %d cycles)\n",
			info.InjectedAt, info.InjectedAt-info.CreatedAt)
	}
	events := r.events[pkt]
	for i, ev := range events {
		dwell := ""
		if i > 0 {
			dwell = fmt.Sprintf(" (+%d)", ev.Cycle-events[i-1].Cycle)
		}
		fmt.Fprintf(&b, "  c%-6d routed at %s: in %s lane %d -> out %s lane %d%s\n",
			ev.Cycle, namer.RouterName(ev.Router),
			namer.PortName(ev.Router, ev.InPort), ev.InLane,
			namer.PortName(ev.Router, ev.OutPort), ev.OutLane, dwell)
	}
	if info.HeadAt >= 0 {
		fmt.Fprintf(&b, "  c%-6d header delivered\n", info.HeadAt)
	}
	if info.TailAt >= 0 {
		fmt.Fprintf(&b, "  c%-6d tail delivered (network latency %d cycles, %d switch hops)\n",
			info.TailAt, info.NetworkLatency(), info.Hops)
	} else {
		b.WriteString("  (in flight)\n")
	}
	return b.String(), nil
}
