package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"smart/internal/wormhole"
)

// TraceSchema versions the JSONL packet-timeline record layout emitted
// by cmd/trace -json.
const TraceSchema = "smart/trace/v1"

// HopRecord is one routing decision in machine-readable form, carrying
// both the raw indices (for joins against other tooling) and the
// topology-aware names the text renderer prints.
type HopRecord struct {
	Cycle       int64  `json:"cycle"`
	Router      int    `json:"router"`
	RouterName  string `json:"router_name"`
	InPort      int    `json:"in_port"`
	InPortName  string `json:"in_port_name"`
	InLane      int    `json:"in_lane"`
	OutPort     int    `json:"out_port"`
	OutPortName string `json:"out_port_name"`
	OutLane     int    `json:"out_lane"`
	// Dwell is the cycles since the previous hop (0 for the first).
	Dwell int64 `json:"dwell"`
}

// TimelineRecord is one packet's complete journey as a JSONL line: the
// machine-readable twin of Timeline's listing. Cycle fields that never
// happened (an undelivered packet) are -1, matching PacketInfo.
type TimelineRecord struct {
	Schema     string `json:"schema"`
	Packet     int    `json:"packet"`
	Src        int    `json:"src"`
	Dst        int    `json:"dst"`
	Flits      int    `json:"flits"`
	CreatedAt  int64  `json:"created_at"`
	InjectedAt int64  `json:"injected_at"`
	HeadAt     int64  `json:"head_at"`
	TailAt     int64  `json:"tail_at"`
	// Latency is the network latency in cycles (injection to tail
	// delivery, excluding source queueing), -1 while in flight.
	Latency int64       `json:"latency"`
	Hops    []HopRecord `json:"hops"`
}

// Record assembles one packet's machine-readable timeline.
func (r *Recorder) Record(f *wormhole.Fabric, namer RouterNamer, pkt wormhole.PacketID) (TimelineRecord, error) {
	if int(pkt) < 0 || int(pkt) >= len(f.Packets) {
		return TimelineRecord{}, fmt.Errorf("trace: packet %d does not exist", pkt)
	}
	info := f.Packet(pkt)
	rec := TimelineRecord{
		Schema:     TraceSchema,
		Packet:     int(pkt),
		Src:        int(info.Src),
		Dst:        int(info.Dst),
		Flits:      int(info.Flits),
		CreatedAt:  info.CreatedAt,
		InjectedAt: info.InjectedAt,
		HeadAt:     info.HeadAt,
		TailAt:     info.TailAt,
		Latency:    -1,
		Hops:       []HopRecord{},
	}
	if info.TailAt >= 0 {
		rec.Latency = info.NetworkLatency()
	}
	events := r.events[pkt]
	for i, ev := range events {
		hop := HopRecord{
			Cycle:       ev.Cycle,
			Router:      ev.Router,
			RouterName:  namer.RouterName(ev.Router),
			InPort:      ev.InPort,
			InPortName:  namer.PortName(ev.Router, ev.InPort),
			InLane:      ev.InLane,
			OutPort:     ev.OutPort,
			OutPortName: namer.PortName(ev.Router, ev.OutPort),
			OutLane:     ev.OutLane,
		}
		if i > 0 {
			hop.Dwell = ev.Cycle - events[i-1].Cycle
		}
		rec.Hops = append(rec.Hops, hop)
	}
	return rec, nil
}

// WriteJSON emits the recorded packets' timelines as JSONL, one record
// per line in packet-id order.
func (r *Recorder) WriteJSON(w io.Writer, f *wormhole.Fabric, namer RouterNamer) error {
	enc := json.NewEncoder(w)
	for _, pkt := range r.Packets() {
		rec, err := r.Record(f, namer, pkt)
		if err != nil {
			return err
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("trace: encoding packet %d: %w", pkt, err)
		}
	}
	return nil
}
