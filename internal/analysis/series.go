package analysis

import (
	"fmt"

	"smart/internal/telemetry"
)

// This file derives rates from the telemetry flight recorder's raw
// integer samples (internal/telemetry.Record). The sampler records
// exact counters; everything per-cycle or fractional is computed here,
// at read time, so rounding choices never contaminate the stored data.

// RatePoint is one interval of a run's derived time series.
type RatePoint struct {
	// Cycle is the interval's end; Interval its width in cycles (the
	// final sample may be shorter than the cadence).
	Cycle    int64
	Interval int64
	// InjectionRate and DeliveryRate are flits per cycle over the
	// interval, network-wide.
	InjectionRate float64
	DeliveryRate  float64
	// CreditStallRate is credit-exhausted send attempts per cycle.
	CreditStallRate float64
	// InFlight, Queued, BufferedFlits, MaxNICQueue are the gauges at the
	// interval's end, copied through for plotting against the rates.
	InFlight      int64
	Queued        int64
	BufferedFlits int
	MaxNICQueue   int64
	// ClassUtil is the per-channel-class utilization over the interval
	// (fraction of cycles each class's links were busy), indexed like
	// the record's ClassNames; nil for classless topologies.
	ClassUtil []float64
}

// Rates differences a record's cumulative counters into per-interval
// rates. The first point's interval starts at cycle zero.
func Rates(rec telemetry.Record) ([]RatePoint, error) {
	pts := make([]RatePoint, 0, len(rec.Points))
	var prev telemetry.Point // zero value: the implicit cycle-0 sample
	for i, p := range rec.Points {
		if p.Cycle <= prev.Cycle && i > 0 {
			return nil, fmt.Errorf("analysis: sample cycles not increasing (%d after %d)", p.Cycle, prev.Cycle)
		}
		interval := p.Cycle - prev.Cycle
		if i == 0 && rec.DroppedPoints > 0 {
			// The ring dropped the head of the series: the first retained
			// interval's true width is unknown, so use the cadence.
			interval = rec.Every
		}
		if interval <= 0 {
			return nil, fmt.Errorf("analysis: sample %d has non-positive interval %d", i, interval)
		}
		rp := RatePoint{
			Cycle:         p.Cycle,
			Interval:      interval,
			InFlight:      p.InFlight,
			Queued:        p.Queued,
			BufferedFlits: p.BufferedFlits,
			MaxNICQueue:   p.MaxNICQueue,
		}
		w := float64(interval)
		rp.InjectionRate = float64(p.FlitsInjected-prev.FlitsInjected) / w
		rp.DeliveryRate = float64(p.FlitsDelivered-prev.FlitsDelivered) / w
		rp.CreditStallRate = float64(p.CreditStalls-prev.CreditStalls) / w
		if len(p.ClassFlits) > 0 && len(rec.ClassLinks) == len(p.ClassFlits) {
			rp.ClassUtil = make([]float64, len(p.ClassFlits))
			for c, flits := range p.ClassFlits {
				if links := rec.ClassLinks[c]; links > 0 {
					rp.ClassUtil[c] = float64(flits) / float64(links) / w
				}
			}
		}
		pts = append(pts, rp)
		prev = p
	}
	return pts, nil
}

// SeriesSummary condenses one run's recording for tabular display.
type SeriesSummary struct {
	Points, Events int
	// MeanDelivery and PeakDelivery are flits/cycle over the recorded
	// intervals.
	MeanDelivery, PeakDelivery float64
	// PeakInFlight and PeakQueued are the gauge maxima across samples.
	PeakInFlight, PeakQueued int64
	// HotClass is the channel class with the highest single-interval
	// utilization, with that utilization ("" when classless).
	HotClass     string
	HotClassUtil float64
}

// Summarize reduces a record to its headline numbers.
func Summarize(rec telemetry.Record) (SeriesSummary, error) {
	rates, err := Rates(rec)
	if err != nil {
		return SeriesSummary{}, err
	}
	s := SeriesSummary{Points: len(rec.Points), Events: len(rec.Events)}
	var sum float64
	for _, rp := range rates {
		sum += rp.DeliveryRate
		if rp.DeliveryRate > s.PeakDelivery {
			s.PeakDelivery = rp.DeliveryRate
		}
		if rp.InFlight > s.PeakInFlight {
			s.PeakInFlight = rp.InFlight
		}
		if rp.Queued > s.PeakQueued {
			s.PeakQueued = rp.Queued
		}
		for c, u := range rp.ClassUtil {
			if u > s.HotClassUtil {
				s.HotClassUtil = u
				s.HotClass = rec.ClassNames[c]
			}
		}
	}
	if len(rates) > 0 {
		s.MeanDelivery = sum / float64(len(rates))
	}
	return s, nil
}
