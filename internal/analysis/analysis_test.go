package analysis

import (
	"math"
	"testing"

	"smart/internal/routing"
	"smart/internal/sim"
	"smart/internal/topology"
	"smart/internal/traffic"
	"smart/internal/wormhole"
)

// run simulates uniform traffic on a 16-node cube and returns the fabric,
// the cube and the horizon.
func run(t *testing.T, rate float64, storeAndForward bool) (*wormhole.Fabric, *topology.Cube, int64) {
	t.Helper()
	cube, err := topology.NewCube(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	alg := routing.NewDuato(cube)
	const flits = 8
	cfg := wormhole.Config{VCs: 4, BufDepth: flits, PacketFlits: flits, InjLanes: 1, StoreAndForward: storeAndForward}
	f, err := wormhole.NewFabric(cube, cfg, alg)
	if err != nil {
		t.Fatal(err)
	}
	pattern, err := traffic.NewUniform(cube.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := traffic.NewInjector(f, pattern, rate, 13)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	inj.Register(e)
	f.Register(e)
	const horizon = 6000
	e.Run(horizon)
	return f, cube, horizon
}

func TestLatencyHistogramAccountsAllPackets(t *testing.T) {
	f, _, horizon := run(t, 0.02, false)
	buckets, err := LatencyHistogram(f, 0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	var total, delivered int64
	for _, b := range buckets {
		if b.Hi != b.Lo*2 {
			t.Fatalf("bucket bounds wrong: %+v", b)
		}
		total += b.Count
	}
	for i := range f.Packets {
		if f.Packets[i].Delivered() && f.Packets[i].TailAt < horizon {
			delivered++
		}
	}
	if total != delivered {
		t.Fatalf("histogram holds %d packets, delivered %d", total, delivered)
	}
	// Sanity: every packet needs at least the worm length (8 flits), so
	// the first buckets must be empty.
	for _, b := range buckets {
		if b.Hi <= 8 && b.Count > 0 {
			t.Fatalf("impossible latency below the worm length: %+v", b)
		}
	}
}

func TestLatencyHistogramBinning(t *testing.T) {
	f, _, horizon := run(t, 0.02, false)
	buckets, err := LatencyHistogram(f, 0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute one bucket by hand.
	var want int64
	for i := range f.Packets {
		pk := &f.Packets[i]
		if pk.Delivered() && pk.TailAt < horizon {
			if l := pk.NetworkLatency(); l >= 16 && l < 32 {
				want++
			}
		}
	}
	var got int64
	for _, b := range buckets {
		if b.Lo == 16 {
			got = b.Count
		}
	}
	if got != want {
		t.Fatalf("bucket [16,32) holds %d, want %d", got, want)
	}
}

func TestSourceFairnessUniform(t *testing.T) {
	f, _, horizon := run(t, 0.05, false)
	fair, err := SourceFairness(f, 0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if fair.Sources != 16 {
		t.Fatalf("%d active sources, want 16", fair.Sources)
	}
	if fair.JainIndex < 0.9 || fair.JainIndex > 1.0 {
		t.Fatalf("uniform traffic Jain index %v, want near 1", fair.JainIndex)
	}
	if fair.MinShare > 1 || fair.MaxShare < 1 {
		t.Fatalf("shares (%v, %v) must straddle the mean", fair.MinShare, fair.MaxShare)
	}
}

func TestSourceFairnessSkewed(t *testing.T) {
	// Hand-build a fabric where one node delivers far more than another:
	// fairness must drop below the uniform case.
	cube, _ := topology.NewCube(4, 2)
	alg := routing.NewDuato(cube)
	f, err := wormhole.NewFabric(cube, wormhole.Config{VCs: 4, BufDepth: 4, PacketFlits: 4, InjLanes: 1}, alg)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	f.Register(e)
	for i := 0; i < 9; i++ {
		f.EnqueuePacket(0, 5, 0)
	}
	f.EnqueuePacket(1, 6, 0)
	e.Run(3000)
	fair, err := SourceFairness(f, 0, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if fair.Sources != 2 {
		t.Fatalf("%d sources, want 2", fair.Sources)
	}
	// Counts 9 and 1: Jain = (10)^2 / (2 * 82) = 0.6097...
	if math.Abs(fair.JainIndex-100.0/164.0) > 1e-9 {
		t.Fatalf("Jain index %v, want %v", fair.JainIndex, 100.0/164.0)
	}
	if fair.MinShare != 0.2 || fair.MaxShare != 1.8 {
		t.Fatalf("shares (%v, %v), want (0.2, 1.8)", fair.MinShare, fair.MaxShare)
	}
}

func TestLatencyByDistanceMonotoneUnderSAF(t *testing.T) {
	// Store-and-forward pays the worm length per hop, so mean latency
	// must climb steeply and monotonically with distance on an idle-ish
	// network.
	f, cube, horizon := run(t, 0.005, true)
	points, err := LatencyByDistance(f, cube, 0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatalf("only %d distance groups", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].MeanLatency <= points[i-1].MeanLatency {
			t.Fatalf("store-and-forward latency not increasing with distance: %+v", points)
		}
	}
	// The per-hop increment must be at least the worm length.
	first, last := points[0], points[len(points)-1]
	hops := float64(last.Distance - first.Distance)
	if (last.MeanLatency-first.MeanLatency)/hops < 8 {
		t.Fatalf("per-hop cost %.1f below the worm length", (last.MeanLatency-first.MeanLatency)/hops)
	}
}

func TestLatencyByDistanceShallowUnderWormhole(t *testing.T) {
	f, cube, horizon := run(t, 0.005, false)
	points, err := LatencyByDistance(f, cube, 0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	first, last := points[0], points[len(points)-1]
	hops := float64(last.Distance - first.Distance)
	perHop := (last.MeanLatency - first.MeanLatency) / hops
	// Wormhole pipelining: ~3 cycles per extra hop, far below the
	// 8-flit worm length.
	if perHop > 5 {
		t.Fatalf("wormhole per-hop cost %.1f too steep", perHop)
	}
}

func TestPercentiles(t *testing.T) {
	f, _, horizon := run(t, 0.03, false)
	ps, err := Percentiles(f, 0, horizon, 50, 95, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !(ps[0] <= ps[1] && ps[1] <= ps[2]) {
		t.Fatalf("percentiles not monotone: %v", ps)
	}
	var max int64
	for i := range f.Packets {
		if f.Packets[i].Delivered() {
			if l := f.Packets[i].NetworkLatency(); l > max {
				max = l
			}
		}
	}
	if ps[2] != float64(max) {
		t.Fatalf("p100 %v, want max %d", ps[2], max)
	}
	if _, err := Percentiles(f, 0, horizon, 0); err == nil {
		t.Error("percentile 0 accepted")
	}
	if _, err := Percentiles(f, 0, horizon, 101); err == nil {
		t.Error("percentile 101 accepted")
	}
}

func TestEmptyWindowErrors(t *testing.T) {
	f, cube, _ := run(t, 0.02, false)
	if _, err := LatencyHistogram(f, 100, 100); err == nil {
		t.Error("empty histogram window accepted")
	}
	if _, err := SourceFairness(f, 100, 100); err == nil {
		t.Error("empty fairness window accepted")
	}
	if _, err := LatencyByDistance(f, cube, 100, 100); err == nil {
		t.Error("empty distance window accepted")
	}
	if _, err := Percentiles(f, 100, 100, 50); err == nil {
		t.Error("empty percentile window accepted")
	}
}
