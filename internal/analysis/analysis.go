// Package analysis computes offline statistics over a finished
// simulation's packet table: latency distributions, per-node throughput
// fairness, and the latency-versus-distance profile. These go beyond the
// paper's two headline metrics (accepted bandwidth and mean latency) and
// support the stability arguments of §6 — a stable network above
// saturation should degrade fairly and predictably.
package analysis

import (
	"fmt"
	"math"

	"smart/internal/order"
	"smart/internal/topology"
	"smart/internal/wormhole"
)

// windowPackets invokes fn for every packet delivered inside [start, end).
func windowPackets(f *wormhole.Fabric, start, end int64, fn func(*wormhole.PacketInfo)) {
	for i := range f.Packets {
		pk := &f.Packets[i]
		if !pk.Delivered() || pk.TailAt < start || pk.TailAt >= end {
			continue
		}
		fn(pk)
	}
}

// LatencyBucket is one bin of a power-of-two latency histogram.
type LatencyBucket struct {
	// Lo and Hi bound the bin: Lo <= latency < Hi.
	Lo, Hi int64
	Count  int64
}

// LatencyHistogram bins the network latencies of packets delivered in the
// window into power-of-two buckets starting at [1, 2).
func LatencyHistogram(f *wormhole.Fabric, start, end int64) ([]LatencyBucket, error) {
	if end <= start {
		return nil, fmt.Errorf("analysis: empty window [%d, %d)", start, end)
	}
	var buckets []LatencyBucket
	windowPackets(f, start, end, func(pk *wormhole.PacketInfo) {
		lat := pk.NetworkLatency()
		idx := 0
		for lo := int64(1); lo*2 <= lat; lo *= 2 {
			idx++
		}
		for len(buckets) <= idx {
			lo := int64(1) << uint(len(buckets))
			buckets = append(buckets, LatencyBucket{Lo: lo, Hi: lo * 2})
		}
		buckets[idx].Count++
	})
	return buckets, nil
}

// Fairness summarizes how evenly the delivered throughput is spread over
// the participating nodes.
type Fairness struct {
	// JainIndex is Jain's fairness index over per-source delivered
	// packet counts: 1.0 is perfectly fair, 1/n is maximally unfair.
	JainIndex float64
	// MinShare and MaxShare are the smallest and largest per-source
	// counts divided by the mean.
	MinShare, MaxShare float64
	// Sources is the number of nodes that delivered at least one packet.
	Sources int
}

// SourceFairness computes throughput fairness over packets delivered in
// the window, grouped by source node. Nodes that sent nothing (e.g. the
// palindrome fixed points of bit-reversal) are excluded: the paper treats
// them as non-participants, not starved senders.
func SourceFairness(f *wormhole.Fabric, start, end int64) (Fairness, error) {
	if end <= start {
		return Fairness{}, fmt.Errorf("analysis: empty window [%d, %d)", start, end)
	}
	counts := make([]float64, f.Top.Nodes())
	windowPackets(f, start, end, func(pk *wormhole.PacketInfo) {
		counts[pk.Src]++
	})
	var sum, sumSq float64
	var active []float64
	for _, c := range counts {
		//smartlint:allow floateq — counts are pure integer increments; zero is exact
		if c == 0 {
			continue
		}
		active = append(active, c)
		sum += c
		sumSq += c * c
	}
	if len(active) == 0 {
		return Fairness{}, fmt.Errorf("analysis: no packets delivered in the window")
	}
	n := float64(len(active))
	fair := Fairness{Sources: len(active)}
	fair.JainIndex = sum * sum / (n * sumSq)
	mean := sum / n
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, c := range active {
		mn = math.Min(mn, c)
		mx = math.Max(mx, c)
	}
	fair.MinShare = mn / mean
	fair.MaxShare = mx / mean
	return fair, nil
}

// DistancePoint is the latency profile at one topological distance.
type DistancePoint struct {
	Distance    int
	Packets     int64
	MeanLatency float64
}

// LatencyByDistance groups delivered packets by the minimal NIC-to-NIC
// distance of their (source, destination) pair and reports the mean
// network latency per group — the cost-of-distance profile. Wormhole
// switching should show a shallow slope (latency dominated by the worm
// length), store-and-forward a steep one.
func LatencyByDistance(f *wormhole.Fabric, top topology.Topology, start, end int64) ([]DistancePoint, error) {
	if end <= start {
		return nil, fmt.Errorf("analysis: empty window [%d, %d)", start, end)
	}
	sums := map[int]*DistancePoint{}
	windowPackets(f, start, end, func(pk *wormhole.PacketInfo) {
		d := top.Distance(int(pk.Src), int(pk.Dst))
		p := sums[d]
		if p == nil {
			p = &DistancePoint{Distance: d}
			sums[d] = p
		}
		p.Packets++
		p.MeanLatency += float64(pk.NetworkLatency())
	})
	out := make([]DistancePoint, 0, len(sums))
	for _, d := range order.Keys(sums) {
		p := sums[d]
		p.MeanLatency /= float64(p.Packets)
		out = append(out, *p)
	}
	return out, nil
}

// Percentiles extracts the given latency percentiles (0 < p <= 100) from
// packets delivered in the window.
func Percentiles(f *wormhole.Fabric, start, end int64, ps ...float64) ([]float64, error) {
	if end <= start {
		return nil, fmt.Errorf("analysis: empty window [%d, %d)", start, end)
	}
	var lats []int64
	windowPackets(f, start, end, func(pk *wormhole.PacketInfo) {
		lats = append(lats, pk.NetworkLatency())
	})
	if len(lats) == 0 {
		return nil, fmt.Errorf("analysis: no packets delivered in the window")
	}
	// Counting sort over the (small-valued) latencies keeps this linear.
	max := int64(0)
	for _, l := range lats {
		if l > max {
			max = l
		}
	}
	counts := make([]int64, max+1)
	for _, l := range lats {
		counts[l]++
	}
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p <= 0 || p > 100 {
			return nil, fmt.Errorf("analysis: percentile %v outside (0, 100]", p)
		}
		rank := int64(math.Ceil(p / 100 * float64(len(lats))))
		var seen int64
		for l, c := range counts {
			seen += c
			if seen >= rank {
				out[i] = float64(l)
				break
			}
		}
	}
	return out, nil
}
