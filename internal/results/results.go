// Package results renders simulation outcomes in the forms the paper
// uses: aligned ASCII tables for the router-delay tables (Tables 1 and
// 2), Chaos Normal Form data series for the per-network figures (Figures
// 5 and 6: accepted bandwidth and latency versus normalized offered
// bandwidth), and the absolute-unit comparison series of Figure 7
// (bits/ns and ns). Series are also emitted as CSV for plotting.
package results

import (
	"fmt"
	"io"
	"strings"

	"smart/internal/core"
	"smart/internal/cost"
)

// FormatTable renders an aligned ASCII table.
func FormatTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	rule := make([]string, len(headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// FormatMarkdownTable renders a GitHub-flavoured markdown table; the
// EXPERIMENTS.md generator uses it.
func FormatMarkdownTable(headers []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(headers, " | ") + " |\n")
	rule := make([]string, len(headers))
	for i := range rule {
		rule[i] = "---"
	}
	b.WriteString("| " + strings.Join(rule, " | ") + " |\n")
	for _, row := range rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// WriteCSV emits a simple comma-separated table. Cells are expected not
// to contain commas (all emitters here produce numeric or label cells).
func WriteCSV(w io.Writer, headers []string, rows [][]string) error {
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// FormatTimings renders a slice of router timings in the layout of the
// paper's Tables 1 and 2 (delays in nanoseconds, truncated to two
// decimals as published).
func FormatTimings(timings []cost.Timing) string {
	headers := []string{"algorithm", "F", "P", "V", "T_routing", "T_crossbar", "T_link", "T_clock"}
	rows := make([][]string, len(timings))
	for i, tm := range timings {
		rows[i] = []string{
			tm.Label,
			fmt.Sprintf("%d", tm.F),
			fmt.Sprintf("%d", tm.P),
			fmt.Sprintf("%d", tm.V),
			fmt.Sprintf("%.2f", cost.Trunc2(tm.TRouting)),
			fmt.Sprintf("%.2f", cost.Trunc2(tm.TCrossbar)),
			fmt.Sprintf("%.2f", cost.Trunc2(tm.TLink)),
			fmt.Sprintf("%.2f", cost.Trunc2(tm.Clock)),
		}
	}
	return FormatTable(headers, rows)
}

// CNFRows renders one network's sweep results in Chaos Normal Form: the
// offered bandwidth (fraction of capacity) against accepted bandwidth and
// network latency in cycles, the presentation of Figures 5 and 6.
func CNFRows(results []core.Result) ([]string, [][]string) {
	headers := []string{"offered", "accepted", "latency_cycles", "p95_cycles", "packets"}
	rows := make([][]string, len(results))
	for i, r := range results {
		rows[i] = []string{
			fmt.Sprintf("%.3f", r.Sample.Offered),
			fmt.Sprintf("%.4f", r.Sample.Accepted),
			fmt.Sprintf("%.1f", r.Sample.AvgLatency),
			fmt.Sprintf("%.1f", r.Sample.P95Latency),
			fmt.Sprintf("%d", r.Sample.PacketsDelivered),
		}
	}
	return headers, rows
}

// AbsoluteRows renders sweep results in the absolute units of Figure 7:
// aggregate offered and accepted traffic in bits per nanosecond and mean
// latency in nanoseconds, after the router-complexity and wire-delay
// filtering of §10.
func AbsoluteRows(results []core.Result) ([]string, [][]string) {
	headers := []string{"offered_bits_ns", "accepted_bits_ns", "latency_ns"}
	rows := make([][]string, len(results))
	for i, r := range results {
		rows[i] = []string{
			fmt.Sprintf("%.1f", r.OfferedBitsNS),
			fmt.Sprintf("%.1f", r.AcceptedBitsNS),
			fmt.Sprintf("%.1f", r.LatencyNS),
		}
	}
	return headers, rows
}

// MultiSeries renders several configurations' sweeps side by side over a
// shared offered-load axis — the layout of the comparison graphs. The
// value function picks which measurement to tabulate.
func MultiSeries(labels []string, sweeps [][]core.Result, value func(core.Result) float64, axisName string) ([]string, [][]string, error) {
	if len(labels) != len(sweeps) {
		return nil, nil, fmt.Errorf("results: %d labels for %d sweeps", len(labels), len(sweeps))
	}
	if len(sweeps) == 0 || len(sweeps[0]) == 0 {
		return nil, nil, fmt.Errorf("results: empty sweep set")
	}
	points := len(sweeps[0])
	for i, s := range sweeps {
		if len(s) != points {
			return nil, nil, fmt.Errorf("results: sweep %d has %d points, want %d", i, len(s), points)
		}
	}
	headers := append([]string{axisName}, labels...)
	rows := make([][]string, points)
	for p := 0; p < points; p++ {
		row := make([]string, 0, len(headers))
		row = append(row, fmt.Sprintf("%.3f", sweeps[0][p].Sample.Offered))
		for _, s := range sweeps {
			row = append(row, fmt.Sprintf("%.2f", value(s[p])))
		}
		rows[p] = row
	}
	return headers, rows, nil
}

// SummaryRow condenses one configuration's sweep into the headline
// numbers of the paper's §11: the saturation point (fraction of capacity
// and bits/ns), the sustained post-saturation throughput, and the
// pre-saturation latency.
type SummaryRow struct {
	Label            string
	SaturationFrac   float64
	Saturated        bool
	SaturationBitsNS float64
	SustainedBitsNS  float64
	PreSatLatencyNS  float64
	PostSatStability float64
}

// Summarize derives a SummaryRow from a sweep ordered by offered load.
func Summarize(label string, results []core.Result, tolerance float64) SummaryRow {
	row := SummaryRow{Label: label}
	series := core.SeriesOf(results)
	row.SaturationFrac, row.Saturated = series.Saturation(tolerance)
	row.PostSatStability, _ = series.PostSaturationStability(tolerance)
	if len(results) == 0 {
		return row
	}
	// Convert using the configuration's clock (identical across a sweep).
	last := results[len(results)-1]
	if last.Sample.Accepted > 0 {
		row.SaturationBitsNS = row.SaturationFrac * last.AcceptedBitsNS / last.Sample.Accepted
	}
	row.SustainedBitsNS = last.AcceptedBitsNS
	// Pre-saturation latency: the sample nearest to half the saturation
	// load, where the network is comfortably stable.
	half := row.SaturationFrac / 2
	best := results[0]
	for _, r := range results {
		if diff(r.Sample.Offered, half) < diff(best.Sample.Offered, half) {
			best = r
		}
	}
	row.PreSatLatencyNS = best.LatencyNS
	return row
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// FormatSummary renders summary rows as a table.
func FormatSummary(rows []SummaryRow) string {
	headers := []string{"configuration", "saturation", "sat bits/ns", "sustained bits/ns", "pre-sat latency ns", "post-sat stability"}
	cells := make([][]string, len(rows))
	for i, r := range rows {
		sat := fmt.Sprintf("%.0f%%", 100*r.SaturationFrac)
		if !r.Saturated {
			sat = ">" + sat
		}
		cells[i] = []string{
			r.Label,
			sat,
			fmt.Sprintf("%.0f", r.SaturationBitsNS),
			fmt.Sprintf("%.0f", r.SustainedBitsNS),
			fmt.Sprintf("%.0f", r.PreSatLatencyNS),
			fmt.Sprintf("%.2f", r.PostSatStability),
		}
	}
	return FormatTable(headers, cells)
}
