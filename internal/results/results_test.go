package results

import (
	"strings"
	"testing"

	"smart/internal/core"
	"smart/internal/cost"
	"smart/internal/metrics"
)

func TestFormatTableAlignment(t *testing.T) {
	out := FormatTable([]string{"a", "long-header"}, [][]string{{"wide-cell", "1"}, {"x", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	width := len(lines[0])
	for i, l := range lines {
		if len(l) != width && i != 0 {
			// Trailing-space differences aside, columns must align: check
			// the second column starts at the same offset everywhere.
			t.Fatalf("line %d misaligned: %q", i, l)
		}
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("missing rule line: %q", lines[1])
	}
}

func TestFormatMarkdownTable(t *testing.T) {
	out := FormatMarkdownTable([]string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	want := "| a | b |\n| --- | --- |\n| 1 | 2 |\n| 3 | 4 |\n"
	if out != want {
		t.Fatalf("markdown table %q, want %q", out, want)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"x", "y"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2\n3,4\n"
	if b.String() != want {
		t.Fatalf("CSV %q, want %q", b.String(), want)
	}
}

func TestFormatTimingsShowsPaperValues(t *testing.T) {
	out := FormatTimings(cost.Table1())
	for _, want := range []string{"deterministic", "duato", "5.90", "7.80", "5.85", "6.34"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
	out = FormatTimings(cost.Table2())
	for _, want := range []string{"adaptive-1vc", "8.06", "9.26", "10.46", "9.64", "10.24", "10.84"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q:\n%s", want, out)
		}
	}
}

func fakeResults() []core.Result {
	return []core.Result{
		{Sample: metrics.Sample{Offered: 0.2, Accepted: 0.2, AvgLatency: 60, P95Latency: 80, PacketsDelivered: 100}, OfferedBitsNS: 105, AcceptedBitsNS: 105, LatencyNS: 380},
		{Sample: metrics.Sample{Offered: 0.4, Accepted: 0.35, AvgLatency: 120, P95Latency: 200, PacketsDelivered: 180}, OfferedBitsNS: 210, AcceptedBitsNS: 184, LatencyNS: 760},
	}
}

func TestCNFRows(t *testing.T) {
	headers, rows := CNFRows(fakeResults())
	if headers[0] != "offered" || len(rows) != 2 {
		t.Fatalf("headers %v rows %d", headers, len(rows))
	}
	if rows[0][0] != "0.200" || rows[1][1] != "0.3500" || rows[0][2] != "60.0" {
		t.Fatalf("rows %v", rows)
	}
}

func TestAbsoluteRows(t *testing.T) {
	headers, rows := AbsoluteRows(fakeResults())
	if len(headers) != 3 || rows[1][0] != "210.0" || rows[1][2] != "760.0" {
		t.Fatalf("absolute rows %v %v", headers, rows)
	}
}

func TestMultiSeries(t *testing.T) {
	sweeps := [][]core.Result{fakeResults(), fakeResults()}
	headers, rows, err := MultiSeries([]string{"a", "b"}, sweeps, func(r core.Result) float64 { return r.AcceptedBitsNS }, "offered")
	if err != nil {
		t.Fatal(err)
	}
	if len(headers) != 3 || len(rows) != 2 {
		t.Fatalf("shape %v x %d", headers, len(rows))
	}
	if rows[0][1] != "105.00" || rows[1][2] != "184.00" {
		t.Fatalf("values %v", rows)
	}
}

func TestMultiSeriesErrors(t *testing.T) {
	if _, _, err := MultiSeries([]string{"a"}, nil, nil, "x"); err == nil {
		t.Error("label/sweep mismatch accepted")
	}
	if _, _, err := MultiSeries(nil, nil, nil, "x"); err == nil {
		t.Error("empty sweep set accepted")
	}
	ragged := [][]core.Result{fakeResults(), fakeResults()[:1]}
	if _, _, err := MultiSeries([]string{"a", "b"}, ragged, func(core.Result) float64 { return 0 }, "x"); err == nil {
		t.Error("ragged sweeps accepted")
	}
}

func TestSummarize(t *testing.T) {
	row := Summarize("cube duato", fakeResults(), 0.02)
	if !row.Saturated {
		t.Fatal("saturation not detected")
	}
	if row.SaturationFrac <= 0.2 || row.SaturationFrac >= 0.4 {
		t.Fatalf("saturation %v outside (0.2,0.4)", row.SaturationFrac)
	}
	if row.SustainedBitsNS != 184 {
		t.Fatalf("sustained %v", row.SustainedBitsNS)
	}
	if row.PreSatLatencyNS != 380 {
		t.Fatalf("pre-sat latency %v (should pick the low-load sample)", row.PreSatLatencyNS)
	}
	out := FormatSummary([]SummaryRow{row})
	if !strings.Contains(out, "cube duato") || !strings.Contains(out, "184") {
		t.Fatalf("summary output:\n%s", out)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	row := Summarize("empty", nil, 0.02)
	if row.Saturated || row.SustainedBitsNS != 0 {
		t.Fatalf("empty summary %+v", row)
	}
}

func TestSummarizeZeroAccepted(t *testing.T) {
	dead := []core.Result{{Sample: metrics.Sample{Offered: 0.5, Accepted: 0}}}
	row := Summarize("dead", dead, 0.02)
	if row.SaturationBitsNS != 0 || row.SustainedBitsNS != 0 {
		t.Fatalf("zero-accepted summary produced %+v", row)
	}
	if !row.Saturated {
		t.Fatal("a dead network is certainly saturated")
	}
}
