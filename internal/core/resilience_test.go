package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smart/internal/obs"
	"smart/internal/resilience"
)

func TestRunAllIsolatesPanics(t *testing.T) {
	results, errs := runAll(nil, 3, 2, func(i int) (Result, error) {
		if i == 1 {
			panic(fmt.Sprintf("config %d is pathological", i))
		}
		return Result{Sample: Sample1()}, nil
	})
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy runs failed: %v, %v", errs[0], errs[2])
	}
	if results[0].Sample != Sample1() || results[2].Sample != Sample1() {
		t.Fatal("healthy runs lost their results")
	}
	var pe *resilience.PanicError
	if !errors.As(errs[1], &pe) {
		t.Fatalf("panicking run produced %v, want *resilience.PanicError", errs[1])
	}
	if pe.Value != "config 1 is pathological" || len(pe.Stack) == 0 {
		t.Fatalf("panic capture incomplete: %+v", pe)
	}
}

func TestBatchCollectsEveryFailure(t *testing.T) {
	bad := Config{Network: NetworkTree, Algorithm: AlgDuato} // duato is undefined on the tree
	badCube := Config{Network: NetworkCube, Algorithm: AlgAdaptive}
	b := Batch{Name: "lossy", Configs: []Config{bad, smallCfg(), badCube}}
	var manifest bytes.Buffer
	res, err := b.RunWith(2, Options{Manifest: obs.NewManifestWriter(&manifest)})
	if err == nil {
		t.Fatal("batch with two invalid configs reported success")
	}
	// Both failures must appear in the joined error, not just the first.
	for _, want := range []string{"config 0", "config 2", bad.Fingerprint(), badCube.Fingerprint()} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("joined error missing %q:\n%v", want, err)
		}
	}
	// The healthy config still ran to completion.
	if len(res) != 3 || res[1].Sample.Accepted <= 0 {
		t.Fatalf("healthy config did not survive its neighbors: %+v", res)
	}
	recs, derr := obs.DecodeManifest(&manifest)
	if derr != nil {
		t.Fatal(derr)
	}
	completed, failed := 0, 0
	for _, rec := range recs {
		if rec.Failure != "" {
			failed++
			if rec.Schema != obs.RunSchema {
				t.Fatalf("failure record carries schema %q", rec.Schema)
			}
		} else {
			completed++
		}
	}
	if completed != 1 || failed != 2 {
		t.Fatalf("manifest holds %d completed and %d failed records, want 1 and 2", completed, failed)
	}
}

func TestSweepSkipsRunsAfterCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var manifest bytes.Buffer
	_, err := SweepWith(smallCfg(), []float64{0.1, 0.2}, 2, Options{
		Context:  ctx,
		Manifest: obs.NewManifestWriter(&manifest),
	})
	if err == nil || !strings.Contains(err.Error(), "not started") || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep = %v, want not-started context errors", err)
	}
	// Interrupted runs are not failures: the manifest stays clean so a
	// resumed invocation's records are the only ones.
	recs, derr := obs.DecodeManifest(&manifest)
	if derr != nil {
		t.Fatal(derr)
	}
	if len(recs) != 0 {
		t.Fatalf("cancelled runs wrote %d manifest records", len(recs))
	}
}

func TestRunWithReplaysCheckpointedRun(t *testing.T) {
	dir := t.TempDir()
	ckpt, err := resilience.Open(filepath.Join(dir, "ckpt.jsonl"), false)
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	res1, err := RunWith(smallCfg(), Options{
		Checkpoint: ckpt,
		Manifest:   obs.NewManifestWriter(&first),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.Len() != 1 {
		t.Fatalf("checkpoint journaled %d runs", ckpt.Len())
	}
	// Second invocation with the same checkpoint must replay, not re-run,
	// and re-emit the journaled record verbatim (same wall time).
	var second bytes.Buffer
	res2, err := RunWith(smallCfg(), Options{
		Checkpoint: ckpt,
		Manifest:   obs.NewManifestWriter(&second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Sample != res2.Sample || res1.AcceptedBitsNS != res2.AcceptedBitsNS || res1.LatencyNS != res2.LatencyNS {
		t.Fatalf("replayed result diverges:\nran      %+v\nreplayed %+v", res1, res2)
	}
	if first.String() != second.String() {
		t.Fatalf("replayed manifest record is not verbatim:\nran      %s\nreplayed %s", first.String(), second.String())
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestInterruptedSweepResumesToIdenticalManifest(t *testing.T) {
	loads := []float64{0.1, 0.2, 0.3, 0.4}
	base := smallCfg()
	opts := func(extra Options) Options {
		extra.Batch = "resume-test"
		return extra
	}

	// Reference: the uninterrupted sweep.
	var refManifest bytes.Buffer
	refResults, err := SweepWith(base, loads, 2, opts(Options{Manifest: obs.NewManifestWriter(&refManifest)}))
	if err != nil {
		t.Fatal(err)
	}
	refRecs, err := obs.DecodeManifest(bytes.NewReader(refManifest.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	refDigest := obs.Digest(refRecs)

	// Interrupted: only the first half of the grid reaches the journal,
	// and the kill tears the final line mid-write.
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ckpt, err := resilience.Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SweepWith(base, loads[:2], 2, opts(Options{Checkpoint: ckpt})); err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":"smart/run/v2","torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Resumed: the full grid against the interrupted journal.
	resumed, err := resilience.Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Len() != 2 {
		t.Fatalf("resumed checkpoint sees %d completed runs, want 2", resumed.Len())
	}
	var resManifest bytes.Buffer
	resResults, err := SweepWith(base, loads, 2, opts(Options{
		Checkpoint: resumed,
		Manifest:   obs.NewManifestWriter(&resManifest),
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Close(); err != nil {
		t.Fatal(err)
	}

	for i := range refResults {
		if refResults[i].Sample != resResults[i].Sample {
			t.Fatalf("load %g: resumed sample diverges from reference", loads[i])
		}
	}
	resRecs, err := obs.DecodeManifest(bytes.NewReader(resManifest.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d := obs.Digest(resRecs); d != refDigest {
		t.Fatalf("resumed manifest digest %s != reference %s", d, refDigest)
	}
}

func TestResultFromRecordRejectsMismatches(t *testing.T) {
	var manifest bytes.Buffer
	if _, err := RunWith(smallCfg(), Options{Manifest: obs.NewManifestWriter(&manifest)}); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.DecodeManifest(&manifest)
	if err != nil {
		t.Fatal(err)
	}
	rec := recs[0]

	bad := rec
	bad.Failure = "panic: boom"
	if _, err := ResultFromRecord(bad); err == nil {
		t.Fatal("failure record rebuilt into a Result")
	}
	bad = rec
	bad.Fingerprint = "0000000000000000"
	if _, err := ResultFromRecord(bad); err == nil {
		t.Fatal("fingerprint mismatch went unnoticed")
	}
	bad = rec
	bad.Config = []byte(`{`)
	if _, err := ResultFromRecord(bad); err == nil {
		t.Fatal("unparsable embedded config went unnoticed")
	}
}
