package core

import (
	"fmt"
	"math"
)

// Replication aggregates one configuration measured across independent
// seeds: mean and a normal-approximation 95% confidence half-width for
// the accepted bandwidth and the mean latency. The paper reports single
// runs (20000 cycles was expensive in 1997); replication quantifies the
// Bernoulli-injection noise around every reported point.
type Replication struct {
	Runs                               int
	MeanAccepted, AcceptedCI           float64
	MeanLatencyCycles, LatencyCyclesCI float64
	Results                            []Result
}

// Replicate runs the configuration with seeds base.Seed, base.Seed+1, ...
// (runs of them, in parallel across workers) and aggregates the samples.
func Replicate(base Config, runs, workers int) (Replication, error) {
	if runs < 2 {
		return Replication{}, fmt.Errorf("core: replication needs at least 2 runs, got %d", runs)
	}
	if workers < 1 {
		workers = 1
	}
	rep := Replication{Runs: runs, Results: make([]Result, runs)}
	errs := make([]error, runs)
	sem := make(chan struct{}, workers)
	done := make(chan int)
	for i := 0; i < runs; i++ {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem; done <- i }()
			cfg := base
			cfg.Seed = base.Seed + uint64(i)
			rep.Results[i], errs[i] = Run(cfg)
		}(i)
	}
	for i := 0; i < runs; i++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return Replication{}, err
		}
	}
	accepted := make([]float64, runs)
	latency := make([]float64, runs)
	for i, r := range rep.Results {
		accepted[i] = r.Sample.Accepted
		latency[i] = r.Sample.AvgLatency
	}
	rep.MeanAccepted, rep.AcceptedCI = meanCI95(accepted)
	rep.MeanLatencyCycles, rep.LatencyCyclesCI = meanCI95(latency)
	return rep, nil
}

// meanCI95 returns the sample mean and the 95% confidence half-width
// under the normal approximation (1.96 standard errors).
func meanCI95(xs []float64) (mean, halfWidth float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	variance := ss / (n - 1)
	return mean, 1.96 * math.Sqrt(variance/n)
}
