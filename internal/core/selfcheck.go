package core

import (
	"fmt"

	"smart/internal/faults"
	"smart/internal/metrics"
	"smart/internal/oracle"
	"smart/internal/phys"
	"smart/internal/sim"
	"smart/internal/traffic"
)

// selfCheckTwin assembles the reference-oracle shadow of an experiment: a
// second, independently built stack (topology, algorithm, pattern,
// injector, engine, window) over internal/oracle's naive simulator,
// seeded identically to the fabric's. Fresh instances throughout — the
// adaptive algorithms carry mutable tie-break state that must evolve
// per side.
func (s *Simulation) selfCheckTwin() (*oracle.Sim, *sim.Engine, *metrics.Window, error) {
	cfg := s.Config
	top, err := cfg.buildTopology()
	if err != nil {
		return nil, nil, nil, err
	}
	alg, err := cfg.buildAlgorithm(top)
	if err != nil {
		return nil, nil, nil, err
	}
	ora, err := oracle.New(top, s.Fabric.Cfg, alg)
	if err != nil {
		return nil, nil, nil, err
	}
	pattern, err := cfg.buildPattern(top)
	if err != nil {
		return nil, nil, nil, err
	}
	capFlits, err := phys.CapacityFlits(top)
	if err != nil {
		return nil, nil, nil, err
	}
	rate := cfg.Load * capFlits / float64(s.Fabric.Cfg.PacketFlits)
	inj, err := traffic.NewInjector(ora, pattern, rate, cfg.Seed)
	if err != nil {
		return nil, nil, nil, err
	}
	if cfg.Burst != "" {
		// An independently constructed chain from the same seed steps in
		// lockstep with the fabric side's.
		mod, err := traffic.ParseBurst(cfg.Burst, cfg.Seed)
		if err != nil {
			return nil, nil, nil, err
		}
		inj.SetModulator(mod)
	}
	var ctl *faults.Controller
	if cfg.Faults != "" {
		sched, err := faults.Parse(cfg.Faults, top, faults.SeedFrom(cfg.Fingerprint()))
		if err != nil {
			return nil, nil, nil, err
		}
		ctl = faults.NewController(sched, ora)
		inj.SetAvailability(ora.NodeUp)
	}
	window, err := metrics.NewWindow(ora, capFlits)
	if err != nil {
		return nil, nil, nil, err
	}
	engine := sim.NewEngine()
	if ctl != nil {
		ctl.Register(engine)
	}
	inj.Register(engine)
	ora.Register(engine)
	return ora, engine, window, nil
}

// RunSelfChecked executes the experiment with the paper's methodology
// while the reference oracle shadows it in lockstep: after every cycle
// the two simulators' canonical observations (counters, occupancy, and a
// digest of all lane, credit, arbitration, NIC and wire state) must be
// bit-identical, and at the horizon the two measurement windows must
// produce the same Sample. A divergence fails the run at the first cycle
// it appears, naming the disagreeing fields.
//
// The mode costs roughly the naive simulator plus a full state digest of
// both sides per cycle; it exists to validate hot-path changes against
// the reference semantics, not to produce results fast. The engine is
// stepped manually, so the no-progress watchdog does not fire in this
// mode — a deadlock runs to the horizon and surfaces as a divergence-free
// but saturated result.
func (s *Simulation) RunSelfChecked() (Result, error) {
	cfg := s.Config
	ora, oraEngine, oraWindow, err := s.selfCheckTwin()
	if err != nil {
		return Result{}, fmt.Errorf("core: self-check twin: %w", err)
	}
	step := func(to int64) error {
		for s.Engine.Cycle() < to {
			cycle := s.Engine.Cycle()
			s.Engine.Step()
			oraEngine.Step()
			fo, oo := s.Fabric.Observe(), ora.Observe()
			if fo != oo {
				return fmt.Errorf("core: self-check failed for %s (fingerprint %s): %w",
					cfg.Label(), cfg.Fingerprint(), &oracle.DivergenceError{Cycle: cycle, A: fo, B: oo})
			}
		}
		return nil
	}
	if err := step(cfg.Warmup); err != nil {
		return Result{}, err
	}
	s.Window.Start(cfg.Warmup)
	oraWindow.Start(cfg.Warmup)
	s.Fabric.ResetLinkStats()
	if err := step(cfg.Horizon); err != nil {
		return Result{}, err
	}
	sample, err := s.Window.Measure(cfg.Horizon, cfg.Load)
	if err != nil {
		return Result{}, err
	}
	oraSample, err := oraWindow.Measure(cfg.Horizon, cfg.Load)
	if err != nil {
		return Result{}, err
	}
	// Both samples are computed by one code path from state the per-cycle
	// comparison just proved identical, so this is a bit-identity check,
	// not a tolerance check.
	if sample != oraSample {
		return Result{}, fmt.Errorf("core: self-check failed for %s (fingerprint %s): fabric sample %+v differs from oracle sample %+v",
			cfg.Label(), cfg.Fingerprint(), sample, oraSample)
	}
	return s.finishResult(sample)
}
