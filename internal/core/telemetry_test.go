package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"smart/internal/resilience"
	"smart/internal/telemetry"
)

func telemetryTestConfig() Config {
	return Config{
		Network: NetworkTree, Algorithm: AlgAdaptive, VCs: 2,
		K: 4, N: 2, Pattern: PatternUniform, Load: 0.4, Seed: 7,
		Warmup: 300, Horizon: 1500,
	}
}

// TestTelemetryDoesNotChangeBehavior is the observation-only contract:
// the same config run bare and run under a full telemetry harness must
// produce bit-identical simulated state — same measurement sample, same
// counters, same end-of-run state hash. This is the golden-fixture
// guarantee restated against the telemetry path specifically.
func TestTelemetryDoesNotChangeBehavior(t *testing.T) {
	cfg := telemetryTestConfig()

	bare, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bareRes, err := bare.Run()
	if err != nil {
		t.Fatal(err)
	}

	sc, err := telemetry.OpenSidecar(filepath.Join(t.TempDir(), "series.jsonl"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	instr, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	instrRes, err := instr.RunWith(Options{Telemetry: &telemetry.Options{
		Server:  telemetry.NewServer(),
		Sidecar: sc,
		Config:  telemetry.Config{Every: 100},
	}})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(bareRes.Sample, instrRes.Sample) {
		t.Fatalf("telemetry changed the measurement sample:\nbare  %+v\ninstr %+v", bareRes.Sample, instrRes.Sample)
	}
	if bare.Fabric.Counters() != instr.Fabric.Counters() {
		t.Fatalf("telemetry changed the counters:\nbare  %+v\ninstr %+v", bare.Fabric.Counters(), instr.Fabric.Counters())
	}
	b, i := bare.Fabric.Observe(), instr.Fabric.Observe()
	if b.StateHash != i.StateHash {
		t.Fatalf("telemetry changed end-of-run fabric state: hash %x != %x", b.StateHash, i.StateHash)
	}
}

// TestTelemetryDisabledAddsNoStage is the structural half of the
// overhead guard: with no telemetry attached, RunWith must not register
// any extra engine stage — the uninstrumented path stays the
// uninstrumented path (the wall-clock half is BenchmarkUniform vs
// BenchmarkUniformTelemetry in the repo root).
func TestTelemetryDisabledAddsNoStage(t *testing.T) {
	s, err := NewSimulation(telemetryTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := s.Engine.Stages()
	if _, err := s.RunWith(Options{}); err != nil {
		t.Fatal(err)
	}
	if got := s.Engine.Stages(); got != before {
		t.Fatalf("zero Options registered %d extra stages", got-before)
	}

	s2, err := NewSimulation(telemetryTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	before = s2.Engine.Stages()
	if _, err := s2.RunWith(Options{Telemetry: &telemetry.Options{}}); err != nil {
		t.Fatal(err)
	}
	if got := s2.Engine.Stages(); got != before+1 {
		t.Fatalf("telemetry registered %d extra stages, want exactly 1 (the sampler)", got-before)
	}
}

// TestResumedRunDoesNotDuplicateSidecar checks the resume contract end
// to end at the run level: a checkpointed config replayed with -resume
// never re-runs, so it never re-records, and the resumed sidecar holds
// the run's series exactly once.
func TestResumedRunDoesNotDuplicateSidecar(t *testing.T) {
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "runs.ckpt")
	scPath := filepath.Join(dir, "series.jsonl")
	cfg := telemetryTestConfig()

	ckpt, err := resilience.Open(ckptPath, false)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := telemetry.OpenSidecar(scPath, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWith(cfg, Options{Checkpoint: ckpt, Telemetry: &telemetry.Options{Sidecar: sc}}); err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}

	ckpt, err = resilience.Open(ckptPath, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt.Close()
	sc, err = telemetry.OpenSidecar(scPath, true)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, err := RunWith(cfg, Options{Checkpoint: ckpt, Telemetry: &telemetry.Options{Sidecar: sc}}); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(scPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.DecodeSidecar(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("resumed sidecar holds %d records, want exactly 1", len(recs))
	}
	if recs[0].Fingerprint != cfg.WithDefaults().Fingerprint() {
		t.Fatalf("record fingerprint %s != config fingerprint %s", recs[0].Fingerprint, cfg.WithDefaults().Fingerprint())
	}
}
