package core

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"smart/internal/cost"
)

// small returns a fast-to-simulate configuration for tests: a 16-node
// network with short horizons.
func small(network NetworkKind, alg string, vcs int) Config {
	cfg := Config{
		Network: network, Algorithm: alg, VCs: vcs,
		Load: 0.2, Seed: 7, Warmup: 300, Horizon: 2000,
		WatchdogCycles: 20000,
	}
	if network == NetworkTree {
		cfg.K, cfg.N = 4, 2
	} else {
		cfg.K, cfg.N = 4, 2
	}
	return cfg
}

func TestWithDefaultsPaperParameters(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Network != NetworkTree || c.K != 4 || c.N != 4 {
		t.Fatalf("default topology %s %d-ary %d, want 4-ary 4-tree", c.Network, c.K, c.N)
	}
	if c.Algorithm != AlgAdaptive || c.VCs != 4 || c.BufDepth != 4 {
		t.Fatalf("default algorithm %+v", c)
	}
	if c.PacketBytes != 64 || c.Warmup != 2000 || c.Horizon != 20000 || c.InjLanes != 1 {
		t.Fatalf("default methodology %+v", c)
	}
	cube := Config{Network: NetworkCube}.WithDefaults()
	if cube.K != 16 || cube.N != 2 || cube.Algorithm != AlgDuato {
		t.Fatalf("default cube %+v", cube)
	}
}

func TestConfigLabel(t *testing.T) {
	if got := (Config{Network: NetworkCube, Algorithm: AlgDuato}).Label(); got != "cube duato" {
		t.Fatalf("Label = %q", got)
	}
	if got := (Config{Network: NetworkTree, Algorithm: AlgAdaptive, VCs: 2}).Label(); got != "tree adaptive-2vc" {
		t.Fatalf("Label = %q", got)
	}
}

func TestPaperConfigs(t *testing.T) {
	cfgs := PaperConfigs()
	if len(cfgs) != 5 {
		t.Fatalf("%d paper configs, want 5", len(cfgs))
	}
	labels := map[string]bool{}
	for _, c := range cfgs {
		c = c.WithDefaults()
		labels[c.Label()] = true
		if _, err := NewSimulation(c); err != nil {
			t.Fatalf("paper config %s does not assemble: %v", c.Label(), err)
		}
	}
	for _, want := range []string{"cube deterministic", "cube duato", "tree adaptive-1vc", "tree adaptive-2vc", "tree adaptive-4vc"} {
		if !labels[want] {
			t.Fatalf("missing paper config %q", want)
		}
	}
}

func TestInvalidConfigs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"unknown network", Config{Network: "butterfly"}, "unknown network"},
		{"unknown pattern", Config{Pattern: "blizzard"}, "unknown traffic pattern"},
		{"cube alg on tree", Config{Network: NetworkTree, Algorithm: AlgDuato}, "not defined on the tree"},
		{"tree alg on cube", Config{Network: NetworkCube, Algorithm: AlgAdaptive}, "not defined on the cube"},
		{"cube with 2 vcs", Config{Network: NetworkCube, Algorithm: AlgDuato, VCs: 2}, "4 virtual channels"},
		{"tornado on tree", Config{Network: NetworkTree, Pattern: PatternTornado}, "defined on the cube"},
		{"ragged packet", Config{Network: NetworkCube, PacketBytes: 30}, "whole number"},
	}
	for _, tc := range cases {
		_, err := NewSimulation(tc.cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestRunBelowSaturationAcceptsOffered(t *testing.T) {
	for _, cfg := range []Config{
		small(NetworkCube, AlgDeterministic, 4),
		small(NetworkCube, AlgDuato, 4),
		small(NetworkTree, AlgAdaptive, 1),
		small(NetworkTree, AlgAdaptive, 2),
		small(NetworkTree, AlgAdaptive, 4),
	} {
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Label(), err)
		}
		if math.Abs(res.Sample.Accepted-cfg.Load) > 0.05 {
			t.Errorf("%s: accepted %.3f at offered %.2f below saturation", cfg.Label(), res.Sample.Accepted, cfg.Load)
		}
		if res.Sample.AvgLatency <= 0 || res.Sample.PacketsDelivered == 0 {
			t.Errorf("%s: empty sample %+v", cfg.Label(), res.Sample)
		}
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	cfg := small(NetworkCube, AlgDuato, 4)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Sample, b.Sample) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a.Sample, b.Sample)
	}
	cfg.Seed = 8
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Sample, c.Sample) {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestSweepMatchesIndividualRuns(t *testing.T) {
	cfg := small(NetworkTree, AlgAdaptive, 2)
	loads := []float64{0.1, 0.3}
	swept, err := Sweep(cfg, loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != 2 {
		t.Fatalf("%d results", len(swept))
	}
	for i, load := range loads {
		cfg.Load = load
		single, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(single.Sample, swept[i].Sample) {
			t.Fatalf("sweep result %d differs from individual run", i)
		}
	}
}

func TestSweepWorkerCountIrrelevant(t *testing.T) {
	cfg := small(NetworkCube, AlgDeterministic, 4)
	loads := []float64{0.1, 0.2, 0.3}
	serial, err := Sweep(cfg, loads, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(cfg, loads, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i].Sample, parallel[i].Sample) {
			t.Fatalf("load %v: serial and parallel sweeps differ", loads[i])
		}
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	cfg := small(NetworkTree, AlgAdaptive, 2)
	cfg.Pattern = "no-such-pattern"
	if _, err := Sweep(cfg, []float64{0.1, 0.2}, 2); err == nil {
		t.Fatal("sweep swallowed a configuration error")
	}
}

func TestReplicateWorkerCountIrrelevant(t *testing.T) {
	cfg := small(NetworkCube, AlgDuato, 4)
	cfg.Load = 0.3
	serial, err := Replicate(cfg, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Replicate(cfg, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial.MeanAccepted != parallel.MeanAccepted || serial.MeanLatencyCycles != parallel.MeanLatencyCycles {
		t.Fatal("replication results depend on worker count")
	}
}

func TestWithDefaultsIdempotent(t *testing.T) {
	cfgs := append(PaperConfigs(), Config{}, Config{Network: NetworkMesh})
	for _, cfg := range cfgs {
		once := cfg.WithDefaults()
		twice := once.WithDefaults()
		if once != twice {
			t.Fatalf("WithDefaults not idempotent for %+v", cfg)
		}
	}
}

func TestMeshLabelAndTornado(t *testing.T) {
	cfg := Config{Network: NetworkMesh, Algorithm: AlgDeterministic, VCs: 4, K: 4, N: 2,
		Pattern: PatternTornado, Load: 0.2, Warmup: 300, Horizon: 1500}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Label() != "mesh deterministic" {
		t.Fatalf("label %q", res.Config.Label())
	}
	if res.Sample.PacketsDelivered == 0 {
		t.Fatal("tornado on the mesh delivered nothing")
	}
}

func TestDrainEmptiesNetwork(t *testing.T) {
	cfg := small(NetworkTree, AlgAdaptive, 1)
	cfg.Load = 0.8 // beyond 1vc saturation: queues build up
	s, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !s.Drain(500000) {
		t.Fatal("network failed to drain after stopping injection")
	}
	c := s.Fabric.Counters()
	if c.PacketsDelivered != c.PacketsCreated {
		t.Fatalf("after drain: %d delivered of %d created", c.PacketsDelivered, c.PacketsCreated)
	}
}

func TestTimingSelection(t *testing.T) {
	tree := Config{Network: NetworkTree, VCs: 2}
	tm, err := tree.Timing()
	if err != nil {
		t.Fatal(err)
	}
	if tm != cost.TreeAdaptive(4, 2) {
		t.Fatalf("tree timing %+v", tm)
	}
	det := Config{Network: NetworkCube, Algorithm: AlgDeterministic}
	tm, err = det.Timing()
	if err != nil {
		t.Fatal(err)
	}
	if tm != cost.CubeDeterministicN(2) {
		t.Fatalf("cube det timing %+v", tm)
	}
	duato := Config{Network: NetworkCube, Algorithm: AlgDuato}
	tm, err = duato.Timing()
	if err != nil {
		t.Fatal(err)
	}
	if tm != cost.CubeDuatoN(2) {
		t.Fatalf("cube duato timing %+v", tm)
	}
}

func TestResultAbsoluteUnits(t *testing.T) {
	cfg := small(NetworkCube, AlgDuato, 4)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// LatencyNS = cycles x clock; throughput proportional to accepted.
	if math.Abs(res.LatencyNS-res.Sample.AvgLatency*res.Timing.Clock) > 1e-9 {
		t.Fatalf("LatencyNS %v inconsistent with %v cycles at %v ns", res.LatencyNS, res.Sample.AvgLatency, res.Timing.Clock)
	}
	if res.AcceptedBitsNS <= 0 || res.OfferedBitsNS <= 0 {
		t.Fatalf("absolute throughputs %v/%v", res.AcceptedBitsNS, res.OfferedBitsNS)
	}
	ratio := res.AcceptedBitsNS / res.OfferedBitsNS
	if math.Abs(ratio-res.Sample.Accepted/res.Sample.Offered) > 1e-9 {
		t.Fatal("absolute and normalized throughput ratios disagree")
	}
}

func TestSeriesOfAndDefaultLoads(t *testing.T) {
	loads := DefaultLoads()
	if len(loads) != 20 || loads[0] != 0.05 || math.Abs(loads[19]-1.0) > 1e-9 {
		t.Fatalf("DefaultLoads = %v", loads)
	}
	results := []Result{{Sample: Sample1()}, {Sample: Sample2()}}
	s := SeriesOf(results)
	if len(s) != 2 || s[0].Offered != 0.1 || s[1].Offered != 0.2 {
		t.Fatalf("SeriesOf = %+v", s)
	}
}

func TestHotspotAndExtraPatternsAssemble(t *testing.T) {
	for _, pattern := range []string{PatternShuffle, PatternNeighbor, PatternHotspot} {
		cfg := small(NetworkTree, AlgAdaptive, 2)
		cfg.Pattern = pattern
		if _, err := Run(cfg); err != nil {
			t.Errorf("pattern %s: %v", pattern, err)
		}
	}
	cfg := small(NetworkCube, AlgDuato, 4)
	cfg.Pattern = PatternTornado
	if _, err := Run(cfg); err != nil {
		t.Errorf("tornado on cube: %v", err)
	}
}

func TestInjLanesAblationAssembles(t *testing.T) {
	cfg := small(NetworkCube, AlgDuato, 4)
	cfg.InjLanes = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sample.PacketsDelivered == 0 {
		t.Fatal("no packets with two injection lanes")
	}
}
