package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"smart/internal/obs"
)

// smallCfg is a fast tree experiment for observability tests.
func smallCfg() Config {
	return Config{
		Network: NetworkTree, Algorithm: AlgAdaptive, VCs: 2, K: 4, N: 2,
		Pattern: PatternUniform, Load: 0.3, Seed: 3, Warmup: 300, Horizon: 1500,
	}
}

func TestFingerprintStableAndDiscriminating(t *testing.T) {
	a, b := smallCfg(), smallCfg()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal configs disagree on fingerprint")
	}
	b.Load = 0.4
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different loads share a fingerprint")
	}
	// Unset fields and their explicit defaults are the same experiment.
	if (Config{}).Fingerprint() != (Config{}).WithDefaults().Fingerprint() {
		t.Fatal("defaulting changed the fingerprint")
	}
	if fp := a.Fingerprint(); len(fp) != 16 {
		t.Fatalf("fingerprint %q is not a 16-hex-digit hash", fp)
	}
}

func TestRunWithMatchesRun(t *testing.T) {
	plain, err := Run(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	observed, err := RunWith(smallCfg(), Options{Profiler: obs.NewStageProfiler()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Sample != observed.Sample {
		t.Fatalf("instrumentation changed the measurement:\nplain    %+v\nobserved %+v", plain.Sample, observed.Sample)
	}
}

func TestRunWithProfilerSeesEveryStage(t *testing.T) {
	cfg := smallCfg()
	p := obs.NewStageProfiler()
	if _, err := RunWith(cfg, Options{Profiler: p}); err != nil {
		t.Fatal(err)
	}
	report := p.Report()
	names := make(map[string]int64, len(report))
	for _, st := range report {
		names[st.Name] = st.Ticks
	}
	for _, want := range []string{"traffic", "link", "crossbar", "routing", "injection", "credits"} {
		if names[want] != cfg.Horizon {
			t.Fatalf("stage %q ticked %d times, want %d (report %v)", want, names[want], cfg.Horizon, names)
		}
	}
}

func TestSweepWithManifestProgressAndLogs(t *testing.T) {
	loads := []float64{0.1, 0.2, 0.3}
	var manifest, logs bytes.Buffer
	progress := obs.NewProgress(nil, len(loads), time.Hour)
	opts := Options{
		Logger:   obs.NewLogger(&logs, obs.FormatJSON),
		Progress: progress,
		Manifest: obs.NewManifestWriter(&manifest),
	}
	swept, err := SweepWith(smallCfg(), loads, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != len(loads) {
		t.Fatalf("%d results", len(swept))
	}

	if s := progress.Snapshot(); s.Completed != int64(len(loads)) {
		t.Fatalf("progress saw %d/%d runs", s.Completed, len(loads))
	}

	recs, err := obs.DecodeManifest(&manifest)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(loads) {
		t.Fatalf("%d manifest records for %d runs", len(recs), len(loads))
	}
	seen := make(map[int]bool)
	for _, rec := range recs {
		seen[rec.Index] = true
		if rec.Load != loads[rec.Index] {
			t.Fatalf("record %d has load %v, want %v", rec.Index, rec.Load, loads[rec.Index])
		}
		if rec.Seed != 3 || rec.Pattern != PatternUniform || rec.Fingerprint == "" {
			t.Fatalf("record identity incomplete: %+v", rec)
		}
		if rec.Sample != swept[rec.Index].Sample {
			t.Fatalf("record %d sample diverges from the result", rec.Index)
		}
		if rec.Cycles != 1500 || rec.WallMS <= 0 {
			t.Fatalf("record %d cost fields: cycles %d, wall %v", rec.Index, rec.Cycles, rec.WallMS)
		}
		// The embedded config must reassemble to the same experiment.
		var cfg Config
		if err := json.Unmarshal(rec.Config, &cfg); err != nil {
			t.Fatal(err)
		}
		if cfg.Fingerprint() != rec.Fingerprint {
			t.Fatalf("record %d config does not hash to its fingerprint", rec.Index)
		}
	}
	if len(seen) != len(loads) {
		t.Fatalf("manifest indices %v do not cover the grid", seen)
	}

	if !strings.Contains(logs.String(), `"msg":"sweep starting"`) ||
		!strings.Contains(logs.String(), `"msg":"run complete"`) {
		t.Fatalf("structured events missing:\n%s", logs.String())
	}
}

func TestBatchRunErrorCarriesContext(t *testing.T) {
	bad := Config{Network: NetworkTree, Algorithm: AlgDuato} // duato is undefined on the tree
	b := Batch{Name: "mixed", Configs: []Config{smallCfg(), bad}}
	var logs bytes.Buffer
	_, err := b.RunWith(2, Options{Logger: obs.NewLogger(&logs, obs.FormatJSON)})
	if err == nil {
		t.Fatal("invalid config did not fail")
	}
	for _, want := range []string{`batch "mixed"`, "config 1", bad.Fingerprint(), "runs completed"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	if !strings.Contains(logs.String(), `"msg":"batch config failed"`) ||
		!strings.Contains(logs.String(), `"index":1`) {
		t.Fatalf("failure event missing context:\n%s", logs.String())
	}
}

func TestBatchRunWithStampsManifest(t *testing.T) {
	b := Batch{Name: "stamped", Configs: []Config{smallCfg(), smallCfg()}}
	var manifest bytes.Buffer
	if _, err := b.RunWith(2, Options{Manifest: obs.NewManifestWriter(&manifest)}); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.DecodeManifest(&manifest)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	for _, rec := range recs {
		if rec.Batch != "stamped" {
			t.Fatalf("record not stamped with the batch name: %+v", rec)
		}
	}
}
