package core

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"strings"
	"testing"

	"smart/internal/obs"
	"smart/internal/resilience"
	"smart/internal/sim"
	"smart/internal/wormhole"
)

// faultRegressionCfg is the seeded-fault regression topology: an 8-ary
// torus ring with one link killed permanently mid-run. Duato's degraded
// mode reverses direction around the cut; dimension-order routing is
// fault-oblivious and wedges against it.
func faultRegressionCfg(alg string) Config {
	return Config{
		Network: NetworkCube, K: 8, N: 1, Algorithm: alg, VCs: 4,
		Pattern: PatternUniform, Load: 0.5, Seed: 42,
		Warmup: 500, Horizon: 8000,
		Faults: "link:0:0@1000",
	}
}

// TestSeededFaultDuatoReroutes: the fault-tolerant discipline must keep
// delivering after the cut, and the reroute counter must prove the
// degraded path engaged (not just that the cut was never exercised).
func TestSeededFaultDuatoReroutes(t *testing.T) {
	cfg := faultRegressionCfg(AlgDuato)
	cfg.WatchdogCycles = 3000
	sm, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sm.Run()
	if err != nil {
		t.Fatalf("duato wedged on a single cut link: %v", err)
	}
	if res.Sample.PacketsDelivered == 0 {
		t.Fatal("no packets delivered in the measurement window")
	}
	if sm.Faults == nil || sm.Faults.Applied() == 0 {
		t.Fatal("fault schedule never applied")
	}
	if got := sm.Fabric.FaultStalls(); got == 0 {
		t.Error("no flit ever stalled at the masked link; the fault was never exercised")
	}
	rr, ok := sm.Fabric.Alg.(interface{ Rerouted() int64 })
	if !ok {
		t.Fatal("duato does not expose a Rerouted counter")
	}
	if rr.Rerouted() == 0 {
		t.Error("no header was rerouted around the cut")
	}
	if got := sm.Fabric.DownLinks(); got != 1 {
		t.Errorf("DownLinks = %d at the horizon, want 1", got)
	}
}

// TestSeededFaultDORWedges: dimension-order routing has no degraded
// mode by design. The same cut must wedge the fabric, and the
// watchdog's post-mortem must name the masked link and a header blocked
// at it — the diagnosis a production operator would start from.
func TestSeededFaultDORWedges(t *testing.T) {
	cfg := faultRegressionCfg(AlgDeterministic)
	cfg.WatchdogCycles = 1500
	sm, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sm.Run()
	if err == nil {
		t.Fatal("fault-oblivious DOR survived a permanently cut ring link")
	}
	var st *sim.StallError
	if !errors.As(err, &st) {
		t.Fatalf("wedge surfaced as %T, want *sim.StallError: %v", err, err)
	}
	snap, ok := st.Report.(*wormhole.StallSnapshot)
	if !ok {
		t.Fatalf("stall report is %T, want *wormhole.StallSnapshot", st.Report)
	}
	if len(snap.DownLinks) != 1 || snap.DownLinks[0] != (wormhole.DownLink{Router: 0, Port: 0}) {
		t.Errorf("snapshot DownLinks = %v, want the cut at router 0 port 0", snap.DownLinks)
	}
	atFault := 0
	for _, h := range snap.Blocked {
		if h.AtFault {
			atFault++
		}
	}
	if atFault == 0 {
		t.Errorf("no blocked header marked AtFault; post-mortem cannot name the cut:\n%s", snap)
	}
	if msg := err.Error(); !strings.Contains(msg, "at failed link") || !strings.Contains(msg, "active faults") {
		t.Errorf("stall message does not name the failed link:\n%s", msg)
	}
}

// TestFaultedShardIdentity is the acceptance gate: a faulted, bursty
// run must be bit-identical across shard counts — same Counters, same
// per-link flit matrix, same sample, same fault-stall and reroute
// totals. Fault masks are serial-stage state, so the shard count must
// never show through.
func TestFaultedShardIdentity(t *testing.T) {
	cfg := Config{
		Network: NetworkCube, K: 4, N: 2, Algorithm: AlgDuato, VCs: 4,
		Pattern: PatternUniform, Load: 0.4, Seed: 9,
		Warmup: 300, Horizon: 2500,
		Faults: "rand-links:3@400-1800,router:5@600-1400",
		Burst:  "mmpp:100:300:2.0",
	}
	type outcome struct {
		counters    wormhole.Counters
		faultStalls int64
		rerouted    int64
		dropped     int64
		linkHash    string
		sample      string
	}
	run := func(shards int) outcome {
		t.Helper()
		sm, err := NewSimulationShards(cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sm.Run()
		if err != nil {
			t.Fatal(err)
		}
		h := fnv.New64a()
		deg := sm.Top.Degree()
		for r := 0; r < sm.Top.Routers(); r++ {
			for p := 0; p < deg; p++ {
				fmt.Fprintf(h, "%d/%d=%d;", r, p, sm.Fabric.LinkFlits(r, p))
			}
		}
		rr, _ := sm.Fabric.Alg.(interface{ Rerouted() int64 })
		return outcome{
			counters:    sm.Fabric.Counters(),
			faultStalls: sm.Fabric.FaultStalls(),
			rerouted:    rr.Rerouted(),
			dropped:     sm.Injector.Dropped(),
			linkHash:    fmt.Sprintf("%016x", h.Sum64()),
			sample:      fmt.Sprintf("%+v", res.Sample),
		}
	}
	ref := run(1)
	if ref.faultStalls == 0 || ref.counters.PacketsDelivered == 0 {
		t.Fatalf("reference run exercised nothing: %+v", ref)
	}
	if ref.dropped == 0 {
		t.Error("router-down interval never dropped an injection draw at a dead endpoint")
	}
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != ref {
			t.Errorf("shards=%d diverged from the sequential run:\nshards=1: %+v\nshards=%d: %+v", shards, ref, shards, got)
		}
	}
}

// TestFaultedSelfCheckAgainstOracle runs a faulted, bursty simulation
// with the lockstep oracle shadow enabled: the twin mirrors the fault
// controller and availability masking, so any fabric-vs-oracle
// divergence on the degraded subgraph fails the run.
func TestFaultedSelfCheckAgainstOracle(t *testing.T) {
	cfg := Config{
		Network: NetworkCube, K: 4, N: 2, Algorithm: AlgDuato, VCs: 4,
		Pattern: PatternUniform, Load: 0.3, Seed: 13,
		Warmup: 200, Horizon: 1500,
		Faults: "rand-links:2@300-1100,router:9@500-900",
		Burst:  "mmpp:80:240:2.5",
	}
	if _, err := RunWith(cfg, Options{SelfCheck: true}); err != nil {
		t.Fatalf("faulted self-check diverged: %v", err)
	}

	tree := Config{
		Network: NetworkTree, K: 4, N: 2, Algorithm: AlgAdaptive, VCs: 2,
		Pattern: PatternUniform, Load: 0.25, Seed: 14,
		Warmup: 200, Horizon: 1500,
		Faults: "rand-links:1@300-1100",
	}
	if _, err := RunWith(tree, Options{SelfCheck: true}); err != nil {
		t.Fatalf("faulted tree self-check diverged: %v", err)
	}
}

// TestFaultedSweepResumesToIdenticalDigest is the faulted half of the
// kill-and-resume contract: with a fault schedule and bursty injection
// in the config — and therefore in every fingerprint — an interrupted
// sweep resumed from its checkpoint must digest identically to the
// uninterrupted reference, because fault expansion replays from the
// fingerprint-derived seed instead of being re-sampled.
func TestFaultedSweepResumesToIdenticalDigest(t *testing.T) {
	loads := []float64{0.1, 0.2, 0.3, 0.4}
	base := smallCfg()
	base.Network, base.K, base.N = NetworkCube, 4, 2
	base.Algorithm, base.VCs = AlgDuato, 4
	base.Faults = "rand-links:2@300-1200"
	base.Burst = "mmpp:100:300:2.0"
	opts := func(extra Options) Options {
		extra.Batch = "faulted-resume-test"
		return extra
	}

	var refManifest bytes.Buffer
	_, err := SweepWith(base, loads, 2, opts(Options{Manifest: obs.NewManifestWriter(&refManifest)}))
	if err != nil {
		t.Fatal(err)
	}
	refRecs, err := obs.DecodeManifest(bytes.NewReader(refManifest.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range refRecs {
		if rec.Faults != base.Faults {
			t.Fatalf("manifest record carries faults %q, want %q", rec.Faults, base.Faults)
		}
	}
	refDigest := obs.Digest(refRecs)

	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ckpt, err := resilience.Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SweepWith(base, loads[:2], 2, opts(Options{Checkpoint: ckpt})); err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}

	resumed, err := resilience.Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	var resManifest bytes.Buffer
	_, err = SweepWith(base, loads, 2, opts(Options{
		Checkpoint: resumed,
		Manifest:   obs.NewManifestWriter(&resManifest),
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Close(); err != nil {
		t.Fatal(err)
	}
	resRecs, err := obs.DecodeManifest(bytes.NewReader(resManifest.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d := obs.Digest(resRecs); d != refDigest {
		t.Fatalf("resumed faulted manifest digest %s != reference %s", d, refDigest)
	}
}

// TestFingerprintBackCompat pins fingerprints from before the fault and
// burst fields existed: a config that sets none of them must hash
// exactly as it always has (content addresses are forever), and each
// new field must move the fingerprint when set.
func TestFingerprintBackCompat(t *testing.T) {
	pins := []struct {
		cfg  Config
		want string
	}{
		{Config{}, "3314228c3f6bcf94"},
		{Config{Network: NetworkTree}, "3314228c3f6bcf94"},
		{Config{Network: NetworkCube}, "f1ccc37253f375b5"},
		{Config{Network: NetworkMesh, K: 4, N: 2, Algorithm: AlgDeterministic,
			Pattern: PatternTranspose, Load: 0.35, Seed: 7}, "17fa5cb286e620a7"},
		{Config{Network: NetworkCube, K: 8, N: 1, Algorithm: AlgDuato, VCs: 4,
			Pattern: PatternUniform, Load: 0.5, Seed: 42, Warmup: 100, Horizon: 3000}, "c0f521321148bf96"},
		{Config{Network: NetworkTree, K: 2, N: 3, Pattern: PatternBitRev, Load: 0.9, Seed: 1,
			HotspotFraction: 0.25, StoreAndForward: true, RouteEvery: 2, LinkCycles: 3}, "63b86820b2f27559"},
	}
	for i, pin := range pins {
		if got := pin.cfg.Fingerprint(); got != pin.want {
			t.Errorf("pin %d: fingerprint %s, want %s (pre-fault fingerprints must never move)", i, got, pin.want)
		}
	}

	base := pins[4].cfg
	faulted, bursty, rotating := base, base, base
	faulted.Faults = "link:0:0@5"
	bursty.Burst = "mmpp:100:300:2.0"
	rotating.Pattern, rotating.HotspotPeriod = PatternHotspot, 500
	seen := map[string]string{base.Fingerprint(): "base"}
	for name, c := range map[string]Config{"faults": faulted, "burst": bursty, "hotperiod": rotating} {
		fp := c.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s config fingerprints identically to %s", name, prev)
		}
		seen[fp] = name
	}
}
