package core

import (
	"testing"
)

// selfCheckCase builds a paper-sized (256-node) configuration with a
// shortened window so the lockstep oracle comparison stays test-sized.
func selfCheckCase(network NetworkKind, algorithm string, vcs int, load float64) Config {
	return Config{
		Network:   network,
		Algorithm: algorithm,
		VCs:       vcs,
		Pattern:   PatternUniform,
		Load:      load,
		Seed:      21,
		Warmup:    300,
		Horizon:   1200,
	}
}

// TestSelfCheck256 runs the oracle-shadowed mode on the paper's two
// 256-node networks: every cycle's full state must match between the
// optimized fabric and the reference simulator, and the measurement
// windows must produce the identical Sample.
func TestSelfCheck256(t *testing.T) {
	if testing.Short() {
		t.Skip("self-check lockstep on 256-node networks is a long test")
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"tree-256-adaptive-4vc", selfCheckCase(NetworkTree, AlgAdaptive, 4, 0.35)},
		{"cube-256-duato", selfCheckCase(NetworkCube, AlgDuato, 4, 0.35)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSimulation(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.RunSelfChecked()
			if err != nil {
				t.Fatal(err)
			}
			if res.Sample.PacketsDelivered == 0 {
				t.Fatal("self-checked run delivered no packets; the comparison is vacuous")
			}
			// The self-checked result must equal the plain run's: the
			// shadow must observe, never perturb.
			plain, err := NewSimulation(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := plain.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Sample != ref.Sample {
				t.Fatalf("self-checked sample %+v differs from plain run %+v", res.Sample, ref.Sample)
			}
		})
	}
}

// TestSelfCheckOption routes the mode through the Options plumbing used
// by the command-line flag.
func TestSelfCheckOption(t *testing.T) {
	cfg := selfCheckCase(NetworkCube, AlgDeterministic, 4, 0.20)
	cfg.Horizon = 600
	res, err := RunWith(cfg, Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sample.PacketsDelivered == 0 {
		t.Fatal("self-checked run delivered no packets")
	}
}
