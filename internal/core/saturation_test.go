package core

import (
	"math"
	"testing"
)

func bisectBase() Config {
	return Config{
		Network: NetworkTree, Algorithm: AlgAdaptive, VCs: 1,
		K: 4, N: 2, Pattern: PatternUniform,
		Seed: 3, Warmup: 500, Horizon: 4000,
	}
}

func TestFindSaturationLocatesKnee(t *testing.T) {
	sat, ok, err := FindSaturation(bisectBase(), 0.1, 1.0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("saturation not bracketed")
	}
	// The 16-node 1vc tree saturates somewhere in the middle of the
	// range; the point must agree with a direct probe on either side.
	cfg := bisectBase()
	cfg.Load = sat - 0.1
	below, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if below.Sample.Offered-below.Sample.Accepted > 0.03 {
		t.Fatalf("network already saturated below the reported knee %.2f", sat)
	}
	cfg.Load = math.Min(sat+0.15, 1.0)
	above, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if above.Sample.Offered-above.Sample.Accepted < 0.02 {
		t.Fatalf("network not saturated above the reported knee %.2f", sat)
	}
}

func TestFindSaturationUnsaturatedInterval(t *testing.T) {
	// Below the knee everywhere: [0.05, 0.2] is comfortably stable.
	sat, ok, err := FindSaturation(bisectBase(), 0.05, 0.2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if ok || sat != 0.2 {
		t.Fatalf("unsaturated interval reported (%v,%v)", sat, ok)
	}
}

func TestFindSaturationAlreadySaturatedAtLow(t *testing.T) {
	sat, ok, err := FindSaturation(bisectBase(), 0.9, 1.0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if ok || sat != 0.9 {
		t.Fatalf("saturated-at-lo case reported (%v,%v)", sat, ok)
	}
}

func TestFindSaturationValidation(t *testing.T) {
	if _, _, err := FindSaturation(bisectBase(), 0.5, 0.2, 0.05); err == nil {
		t.Error("inverted interval accepted")
	}
	if _, _, err := FindSaturation(bisectBase(), 0.1, 0.5, 0); err == nil {
		t.Error("zero tolerance accepted")
	}
	bad := bisectBase()
	bad.Pattern = "nonsense"
	if _, _, err := FindSaturation(bad, 0.1, 0.5, 0.1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestReplicateAggregates(t *testing.T) {
	cfg := bisectBase()
	cfg.Load = 0.3
	rep, err := Replicate(cfg, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 4 || len(rep.Results) != 4 {
		t.Fatalf("replication shape %+v", rep)
	}
	// Below saturation the mean accepted tracks offered tightly.
	if math.Abs(rep.MeanAccepted-0.3) > 0.05 {
		t.Fatalf("mean accepted %v at offered 0.3", rep.MeanAccepted)
	}
	if rep.AcceptedCI < 0 || rep.LatencyCyclesCI < 0 {
		t.Fatal("negative confidence half-width")
	}
	if rep.MeanLatencyCycles <= 0 {
		t.Fatal("latency not aggregated")
	}
	// Distinct seeds must actually differ.
	if rep.Results[0].Sample.PacketsDelivered == rep.Results[1].Sample.PacketsDelivered &&
		rep.Results[0].Sample.AvgLatency == rep.Results[1].Sample.AvgLatency {
		t.Fatal("replicas look identical; seeds not varied")
	}
}

func TestReplicateValidation(t *testing.T) {
	if _, err := Replicate(bisectBase(), 1, 1); err == nil {
		t.Error("single-run replication accepted")
	}
	bad := bisectBase()
	bad.Algorithm = "nonsense"
	if _, err := Replicate(bad, 3, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestMeanCI95(t *testing.T) {
	mean, hw := meanCI95([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-12 {
		t.Fatalf("mean %v, want 5", mean)
	}
	// Sample variance of this classic set is 32/7; hw = 1.96*sqrt(32/7/8).
	want := 1.96 * math.Sqrt(32.0/7.0/8.0)
	if math.Abs(hw-want) > 1e-12 {
		t.Fatalf("half-width %v, want %v", hw, want)
	}
	mean, hw = meanCI95([]float64{3, 3, 3})
	if mean != 3 || hw != 0 {
		t.Fatalf("constant sample gave (%v,%v)", mean, hw)
	}
}

func TestMeshConfigRuns(t *testing.T) {
	cfg := Config{
		Network: NetworkMesh, Algorithm: AlgDuato, VCs: 4,
		K: 4, N: 2, Load: 0.2, Seed: 1, Warmup: 300, Horizon: 2000,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sample.PacketsDelivered == 0 {
		t.Fatal("mesh delivered nothing")
	}
	if res.Config.Label() != "mesh duato" {
		t.Fatalf("mesh label %q", res.Config.Label())
	}
	// Same clock as the torus (same router microarchitecture).
	torus := Config{Network: NetworkCube, Algorithm: AlgDuato, VCs: 4}
	tm1, err := cfg.Timing()
	if err != nil {
		t.Fatal(err)
	}
	tm2, err := torus.Timing()
	if err != nil {
		t.Fatal(err)
	}
	if tm1 != tm2 {
		t.Fatal("mesh and torus timings differ")
	}
}
