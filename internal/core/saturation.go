package core

import "fmt"

// FindSaturation locates the configuration's saturation point — the
// paper's §6 definition: the minimum offered bandwidth at which accepted
// bandwidth falls below the creation rate — by bisection over the offered
// load. It needs log2((hi-lo)/tol) simulations instead of a full sweep.
// The probe at hi must be saturated and the probe at lo stable; when they
// are not, the interval endpoint itself is returned with ok reporting
// which side failed. Each probe reuses the base configuration's seed and
// horizons, so the result is deterministic.
func FindSaturation(base Config, lo, hi, tol float64) (sat float64, ok bool, err error) {
	if !(lo >= 0 && lo < hi) || tol <= 0 {
		return 0, false, fmt.Errorf("core: invalid bisection interval [%v,%v] tol %v", lo, hi, tol)
	}
	saturatedAt := func(load float64) (bool, error) {
		cfg := base
		cfg.Load = load
		res, err := Run(cfg)
		if err != nil {
			return false, err
		}
		// Judge against the measured creation rate (§6), so patterns
		// with non-injecting fixed points are not misread as saturated.
		return res.Sample.CreatedLoad-res.Sample.Accepted > 0.02, nil
	}
	loSat, err := saturatedAt(lo)
	if err != nil {
		return 0, false, err
	}
	if loSat {
		// Already saturated at the lower bound.
		return lo, false, nil
	}
	hiSat, err := saturatedAt(hi)
	if err != nil {
		return 0, false, err
	}
	if !hiSat {
		// Never saturates inside the interval.
		return hi, false, nil
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		midSat, err := saturatedAt(mid)
		if err != nil {
			return 0, false, err
		}
		if midSat {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2, true, nil
}
