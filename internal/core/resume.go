package core

import (
	"encoding/json"
	"fmt"

	"smart/internal/obs"
	"smart/internal/phys"
)

// ResultFromRecord rebuilds a Result from a completed manifest record:
// the config is decoded and re-defaulted, verified against the record's
// fingerprint, and the absolute-unit figures are recomputed from the
// stored sample through the same cost-model path a live run uses. This
// is how a resumed grid hands back checkpointed runs without
// re-simulating them.
func ResultFromRecord(rec obs.RunRecord) (Result, error) {
	if rec.Failure != "" {
		return Result{}, fmt.Errorf("core: record %s is a failure record (%s)", rec.Fingerprint, rec.Failure)
	}
	var cfg Config
	if err := json.Unmarshal(rec.Config, &cfg); err != nil {
		return Result{}, fmt.Errorf("core: decoding record config: %w", err)
	}
	cfg = cfg.WithDefaults()
	if fp := cfg.Fingerprint(); fp != rec.Fingerprint {
		return Result{}, fmt.Errorf("core: record fingerprint %s does not match its embedded config (%s)", rec.Fingerprint, fp)
	}
	timing, err := cfg.Timing()
	if err != nil {
		return Result{}, err
	}
	top, err := cfg.buildTopology()
	if err != nil {
		return Result{}, err
	}
	res := Result{Config: cfg, Sample: rec.Sample, Timing: timing}
	res.OfferedBitsNS, err = phys.ThroughputBitsPerNS(top, rec.Sample.Offered, timing.Clock)
	if err != nil {
		return Result{}, err
	}
	res.AcceptedBitsNS, err = phys.ThroughputBitsPerNS(top, rec.Sample.Accepted, timing.Clock)
	if err != nil {
		return Result{}, err
	}
	res.LatencyNS = phys.LatencyNS(rec.Sample.AvgLatency, timing.Clock)
	return res, nil
}
