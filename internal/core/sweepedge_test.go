package core

import "testing"

// TestSweepLoadEndpoints runs the degenerate ends of a load sweep. At
// offered load 0.0 the Bernoulli process never fires: the run must
// complete with zero packets and zero measured bandwidth rather than
// dividing by the empty window. At 1.0 every node offers the full
// capacity — deep saturation — and the run must still terminate at the
// horizon with accepted bandwidth in (0, 1].
func TestSweepLoadEndpoints(t *testing.T) {
	base := Config{
		Network: NetworkTree, K: 2, N: 2,
		Algorithm: AlgAdaptive, VCs: 2,
		Pattern: PatternUniform, Seed: 11,
		Warmup: 200, Horizon: 1000,
	}
	res, err := Sweep(base, []float64{0.0, 1.0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("sweep returned %d results, want 2", len(res))
	}

	idle := res[0].Sample
	if idle.Offered != 0 {
		t.Fatalf("endpoint 0 sample has offered %v", idle.Offered)
	}
	if idle.PacketsCreated != 0 || idle.PacketsDelivered != 0 {
		t.Fatalf("zero load created %d / delivered %d packets, want none", idle.PacketsCreated, idle.PacketsDelivered)
	}
	if idle.Accepted != 0 || idle.AvgLatency != 0 {
		t.Fatalf("zero load measured accepted %v latency %v, want zeros", idle.Accepted, idle.AvgLatency)
	}

	full := res[1].Sample
	if full.Offered != 1.0 {
		t.Fatalf("endpoint 1 sample has offered %v", full.Offered)
	}
	if full.PacketsDelivered == 0 {
		t.Fatal("full load delivered no packets")
	}
	if full.Accepted <= 0 || full.Accepted > 1.0001 {
		t.Fatalf("full-load accepted bandwidth %v outside (0, 1]", full.Accepted)
	}
	if full.AvgLatency <= 0 {
		t.Fatalf("full-load latency %v not positive", full.AvgLatency)
	}
}
