package core

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"time"

	"smart/internal/obs"
)

// Options threads the observability spine (internal/obs) through the
// experiment layer. Every field is optional; the zero value is the
// uninstrumented fast path, so Run/Sweep/Batch.Run cost nothing extra
// when nobody is watching.
type Options struct {
	// Logger receives structured run events, scoped per run with the
	// config fingerprint, label, pattern, seed and load attached once.
	Logger *slog.Logger
	// Profiler, when set, is attached to every simulation's engine and
	// accumulates per-stage wall time across the whole workload.
	Profiler *obs.StageProfiler
	// Progress, when set, is notified as runs complete.
	Progress *obs.Progress
	// Manifest, when set, receives one JSONL record per completed run.
	Manifest *obs.ManifestWriter
	// Batch and Index stamp manifest records and errors with the run's
	// position in an enclosing study; SweepWith and Batch.RunWith set
	// Index themselves.
	Batch string
	Index int
}

// observed reports whether any observer is attached.
func (o Options) observed() bool {
	return o.Logger != nil || o.Profiler != nil || o.Progress != nil || o.Manifest != nil
}

// RunWith executes one experiment with the paper's methodology under the
// given observers. With zero Options it is exactly Run.
func RunWith(cfg Config, opts Options) (Result, error) {
	s, err := NewSimulation(cfg)
	if err != nil {
		if opts.Logger != nil {
			opts.Logger.Error("simulation assembly failed",
				"cfg", cfg.Fingerprint(), "err", err)
		}
		return Result{}, err
	}
	return s.RunWith(opts)
}

// RunWith executes the assembled experiment under the given observers.
func (s *Simulation) RunWith(opts Options) (Result, error) {
	if !opts.observed() {
		return s.Run()
	}
	cfg := s.Config
	logger := obs.RunLogger(opts.Logger, cfg.Fingerprint(), cfg.Label(), cfg.Pattern, cfg.Seed, cfg.Load)
	if opts.Profiler != nil {
		opts.Profiler.Attach(s.Engine)
	}
	if logger != nil {
		logger.Debug("run starting", "warmup", cfg.Warmup, "horizon", cfg.Horizon)
	}
	elapsed := obs.Stopwatch()
	res, err := s.Run()
	wall := elapsed()
	cycles := s.Engine.Cycle()
	if err != nil {
		if logger != nil {
			logger.Error("run failed", "err", err, "wall_ms", wallMS(wall))
		}
		return res, err
	}
	if logger != nil {
		logger.Info("run complete",
			"cycles", cycles,
			"wall_ms", wallMS(wall),
			"cycles_per_sec", float64(cycles)/wall.Seconds(),
			"accepted", res.Sample.Accepted,
			"latency_cycles", res.Sample.AvgLatency)
	}
	if opts.Progress != nil {
		opts.Progress.RunDone(cfg.Load, cycles)
	}
	if opts.Manifest != nil {
		rec, rerr := runRecord(res, cycles, wall, opts)
		if rerr == nil {
			rerr = opts.Manifest.Write(rec)
		}
		if rerr != nil {
			return res, fmt.Errorf("core: run manifest: %w", rerr)
		}
	}
	return res, nil
}

// runRecord assembles the manifest line for one completed run.
func runRecord(res Result, cycles int64, wall time.Duration, opts Options) (obs.RunRecord, error) {
	cfg := res.Config
	raw, err := json.Marshal(cfg)
	if err != nil {
		return obs.RunRecord{}, err
	}
	return obs.RunRecord{
		Schema:      obs.RunSchema,
		Batch:       opts.Batch,
		Index:       opts.Index,
		Label:       cfg.Label(),
		Pattern:     cfg.Pattern,
		Seed:        cfg.Seed,
		Load:        cfg.Load,
		Fingerprint: cfg.Fingerprint(),
		Config:      raw,
		Sample:      res.Sample,
		Cycles:      cycles,
		WallMS:      wallMS(wall),
	}, nil
}

func wallMS(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// SweepWith is Sweep under observers: the Progress reporter sees every
// completed load point, the Manifest gets one record per run (Index is
// the load's position in the grid), and the Profiler aggregates stage
// time across all parallel engines.
func SweepWith(base Config, loads []float64, workers int, opts Options) ([]Result, error) {
	if opts.Logger != nil {
		opts.Logger.Info("sweep starting",
			"cfg", base.Fingerprint(), "label", base.WithDefaults().Label(),
			"runs", len(loads), "workers", workers)
	}
	results, err := runAll(len(loads), workers, func(i int) (Result, error) {
		cfg := base
		cfg.Load = loads[i]
		o := opts
		o.Index = i
		return RunWith(cfg, o)
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// runAll executes n indexed runs across at most workers goroutines and
// returns results in index order, or the first error encountered.
func runAll(n, workers int, run func(i int) (Result, error)) ([]Result, error) {
	if workers < 1 {
		workers = 1
	}
	results := make([]Result, n)
	errs := make([]error, n)
	sem := make(chan struct{}, workers)
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem; done <- struct{}{} }()
			results[i], errs[i] = run(i)
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
