package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"smart/internal/obs"
	"smart/internal/resilience"
	"smart/internal/sim"
	"smart/internal/store"
	"smart/internal/telemetry"
)

// Options threads the observability spine (internal/obs) through the
// experiment layer. Every field is optional; the zero value is the
// uninstrumented fast path, so Run/Sweep/Batch.Run cost nothing extra
// when nobody is watching.
type Options struct {
	// Logger receives structured run events, scoped per run with the
	// config fingerprint, label, pattern, seed and load attached once.
	Logger *slog.Logger
	// Profiler, when set, is attached to every simulation's engine and
	// accumulates per-stage wall time across the whole workload.
	Profiler *obs.StageProfiler
	// Progress, when set, is notified as runs complete.
	Progress *obs.Progress
	// Manifest, when set, receives one JSONL record per completed run.
	Manifest *obs.ManifestWriter
	// Checkpoint, when set, journals each completed run as it finishes
	// and replays already-journaled configs instead of re-running them —
	// the resume half of the kill-and-resume contract.
	Checkpoint *resilience.Checkpoint
	// Store, when set, is a persistent read-through result cache keyed
	// by config fingerprint (internal/store): a config the store holds
	// is not re-run — its cached record is digest-verified, re-stamped
	// with this run's Batch/Index position, and replayed into the
	// manifest exactly like a checkpoint hit — and every completed run
	// is written back. Unlike a checkpoint (one grid's journal), a store
	// is shared across invocations, commands, and the sweep service.
	Store *store.Store
	// Context, when set, interrupts a grid: runs not yet started when it
	// is cancelled are skipped (reported as interrupted, not failed),
	// while in-flight runs complete and reach the checkpoint.
	Context context.Context
	// Batch and Index stamp manifest records and errors with the run's
	// position in an enclosing study; SweepWith and Batch.RunWith set
	// Index themselves.
	Batch string
	Index int
	// SelfCheck shadows every run with the reference oracle simulator
	// (internal/oracle) in lockstep and fails it at the first cycle whose
	// state diverges — see Simulation.RunSelfChecked for the cost model.
	SelfCheck bool
	// Telemetry, when set, attaches a flight-recorder sampler to every
	// run: live state on the HTTP endpoint, one time-series record per
	// run in the JSONL sidecar. Sampling is observation-only — it cannot
	// change simulated behavior (the golden fixtures pin this).
	Telemetry *telemetry.Options
	// Shards partitions each run's fabric for parallel cycle execution:
	// 1 (and any negative value) is the sequential engine, 0 picks an
	// automatic count from GOMAXPROCS and the fabric size, larger values
	// are explicit. Results are bit-identical for every value; the
	// effective count is recorded in the manifest as a log-only field
	// that the digest ignores, so checkpoints replay across shard
	// counts.
	Shards int
}

// observed reports whether any observer is attached.
func (o Options) observed() bool {
	return o.Logger != nil || o.Profiler != nil || o.Progress != nil || o.Manifest != nil || o.Checkpoint != nil || o.Store != nil || o.Telemetry != nil
}

// RunWith executes one experiment with the paper's methodology under the
// given observers. With zero Options it is exactly Run. A config whose
// fingerprint the checkpoint records as done is not re-run: its
// journaled record is replayed into the manifest verbatim. A store hit
// replays the same way, except the cached record — stored
// position-free, since the store is addressed by config content — is
// first re-stamped with this run's Batch and Index, so a read-through
// grid's manifest digests identically to an uncached one.
func RunWith(cfg Config, opts Options) (Result, error) {
	if opts.Checkpoint != nil {
		full := cfg.WithDefaults()
		if rec, ok := opts.Checkpoint.Done(full.Fingerprint()); ok {
			return replayRun(full, rec, "checkpoint", opts)
		}
	}
	if opts.Store != nil {
		full := cfg.WithDefaults()
		rec, _, ok, err := opts.Store.Get(full.Fingerprint())
		if err != nil {
			return Result{}, fmt.Errorf("core: store read for %s: %w", full.Fingerprint(), err)
		}
		if ok {
			rec.Batch, rec.Index = opts.Batch, opts.Index
			return replayRun(full, rec, "store", opts)
		}
	}
	s, err := NewSimulationShards(cfg, opts.Shards)
	if err != nil {
		if opts.Logger != nil {
			opts.Logger.Error("simulation assembly failed",
				"cfg", cfg.Fingerprint(), "err", err)
		}
		return Result{}, err
	}
	return s.RunWith(opts)
}

// replayRun reconstructs a checkpointed run's Result and re-emits its
// journaled manifest record, so a resumed grid's manifest is
// indistinguishable (modulo wall time and completion order) from an
// uninterrupted one.
func replayRun(cfg Config, rec obs.RunRecord, source string, opts Options) (Result, error) {
	res, err := ResultFromRecord(rec)
	if err != nil {
		return Result{}, fmt.Errorf("core: replaying cached run %s: %w", rec.Fingerprint, err)
	}
	if logger := obs.RunLogger(opts.Logger, cfg.Fingerprint(), cfg.Label(), cfg.Pattern, cfg.Seed, cfg.Load); logger != nil {
		logger.Info("run replayed from cache", "source", source, "cycles", rec.Cycles)
	}
	if opts.Progress != nil {
		opts.Progress.RunDone(cfg.Load, rec.Cycles)
	}
	if opts.Store != nil {
		// A checkpoint hit back-fills the store; a store hit re-puts
		// identical content, which Put drops by digest.
		if _, err := opts.Store.Put(rec); err != nil {
			return res, fmt.Errorf("core: store write-back: %w", err)
		}
	}
	if opts.Manifest != nil {
		if err := opts.Manifest.Write(rec); err != nil {
			return res, fmt.Errorf("core: run manifest: %w", err)
		}
	}
	return res, nil
}

// RunWith executes the assembled experiment under the given observers.
func (s *Simulation) RunWith(opts Options) (Result, error) {
	run := s.Run
	if opts.SelfCheck {
		run = s.RunSelfChecked
	}
	if !opts.observed() {
		return run()
	}
	cfg := s.Config
	logger := obs.RunLogger(opts.Logger, cfg.Fingerprint(), cfg.Label(), cfg.Pattern, cfg.Seed, cfg.Load)
	if opts.Profiler != nil {
		opts.Profiler.Attach(s.Engine)
	}
	var sampler *telemetry.Sampler
	if opts.Telemetry != nil {
		// Registered after the fabric's stages, so each sample reads
		// complete end-of-cycle state.
		sampler = telemetry.NewSampler(s.Fabric, s.Engine, telemetry.RunInfo{
			Batch:       opts.Batch,
			Index:       opts.Index,
			Label:       cfg.Label(),
			Pattern:     cfg.Pattern,
			Seed:        cfg.Seed,
			Load:        cfg.Load,
			Fingerprint: cfg.Fingerprint(),
		}, opts.Telemetry.Config)
		sampler.Register(s.Engine)
		opts.Telemetry.Server.Attach(sampler)
	}
	if logger != nil {
		logger.Debug("run starting", "warmup", cfg.Warmup, "horizon", cfg.Horizon)
	}
	elapsed := obs.Stopwatch()
	res, err := run()
	wall := elapsed()
	cycles := s.Engine.Cycle()
	if sampler != nil {
		if serr := finishTelemetry(sampler, opts.Telemetry, err); serr != nil && err == nil {
			return res, fmt.Errorf("core: telemetry sidecar: %w", serr)
		}
	}
	if err != nil {
		if logger != nil {
			logger.Error("run failed", "err", err, "wall_ms", wallMS(wall))
		}
		return res, err
	}
	if logger != nil {
		logger.Info("run complete",
			"cycles", cycles,
			"wall_ms", wallMS(wall),
			"cycles_per_sec", float64(cycles)/wall.Seconds(),
			"accepted", res.Sample.Accepted,
			"latency_cycles", res.Sample.AvgLatency)
	}
	if opts.Progress != nil {
		opts.Progress.RunDone(cfg.Load, cycles)
	}
	if opts.Manifest != nil || opts.Checkpoint != nil || opts.Store != nil {
		rec, rerr := runRecord(res, cycles, wall, s.Shards, opts)
		if rerr == nil && opts.Checkpoint != nil {
			// Journal before the manifest: a kill between the two writes
			// must not leave a manifest record the journal forgot.
			rerr = opts.Checkpoint.Record(rec)
		}
		if rerr == nil && opts.Store != nil {
			_, rerr = opts.Store.Put(rec)
		}
		if rerr == nil && opts.Manifest != nil {
			rerr = opts.Manifest.Write(rec)
		}
		if rerr != nil {
			return res, fmt.Errorf("core: run manifest: %w", rerr)
		}
	}
	return res, nil
}

// finishTelemetry settles a run's flight recorder: the terminal stall
// event if the watchdog fired, a forced final sample, detachment from
// the live endpoint, and the sidecar record. Failed runs journal too —
// their recordings are the interesting ones.
func finishTelemetry(sp *telemetry.Sampler, t *telemetry.Options, runErr error) error {
	failure := ""
	if runErr != nil {
		failure = failureText(runErr)
		var st *sim.StallError
		if errors.As(runErr, &st) {
			sp.NoteStall(st)
		}
	}
	sp.Finish(failure)
	t.Server.Detach(sp, runErr != nil)
	if t.Sidecar != nil {
		return t.Sidecar.Write(telemetry.RecordOf(sp))
	}
	return nil
}

// runRecord assembles the manifest line for one completed run. The
// effective shard count is recorded only when the run was actually
// sharded, so sequential manifests stay byte-identical with earlier
// versions; either way the field is log-only (the digest zeroes it).
func runRecord(res Result, cycles int64, wall time.Duration, shards int, opts Options) (obs.RunRecord, error) {
	cfg := res.Config
	raw, err := json.Marshal(cfg)
	if err != nil {
		return obs.RunRecord{}, err
	}
	rec := obs.RunRecord{
		Schema:      obs.RunSchema,
		Batch:       opts.Batch,
		Index:       opts.Index,
		Label:       cfg.Label(),
		Pattern:     cfg.Pattern,
		Seed:        cfg.Seed,
		Load:        cfg.Load,
		Fingerprint: cfg.Fingerprint(),
		Config:      raw,
		Sample:      res.Sample,
		Cycles:      cycles,
		WallMS:      wallMS(wall),
		Faults:      cfg.Faults,
	}
	if shards > 1 {
		rec.Shards = shards
	}
	return rec, nil
}

func wallMS(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// SweepWith is Sweep under observers: the Progress reporter sees every
// completed load point, the Manifest gets one record per run (Index is
// the load's position in the grid), and the Profiler aggregates stage
// time across all parallel engines. A failing load point no longer
// aborts the grid: the remaining points still run, the failures land in
// the manifest as failure records, and the joined error is returned
// alongside the results that did complete (failed slots hold zero
// Results).
func SweepWith(base Config, loads []float64, workers int, opts Options) ([]Result, error) {
	if opts.Logger != nil {
		opts.Logger.Info("sweep starting",
			"cfg", base.Fingerprint(), "label", base.WithDefaults().Label(),
			"runs", len(loads), "workers", workers)
	}
	results, errs := runAll(opts.Context, len(loads), workers, func(i int) (Result, error) {
		cfg := base
		cfg.Load = loads[i]
		o := opts
		o.Index = i
		return RunWith(cfg, o)
	})
	err := finishGrid(opts, errs, "sweep run failed", func(i int) (Config, string) {
		cfg := base
		cfg.Load = loads[i]
		return cfg, fmt.Sprintf("core: sweep run %d (load %g)", i, loads[i])
	})
	return results, err
}

// runAll executes n indexed runs across at most workers goroutines and
// returns results and errors in index order. A panicking run is
// contained: it fails its own slot (with the stack attached) and the
// rest of the grid proceeds. Once ctx is cancelled, runs that have not
// started are skipped with a context error; in-flight runs complete.
func runAll(ctx context.Context, n, workers int, run func(i int) (Result, error)) ([]Result, []error) {
	if workers < 1 {
		workers = 1
	}
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, n)
	errs := make([]error, n)
	sem := make(chan struct{}, workers)
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem; done <- struct{}{} }()
			if err := ctx.Err(); err != nil {
				errs[i] = fmt.Errorf("not started: %w", err)
				return
			}
			errs[i] = resilience.Run(func() error {
				var err error
				results[i], err = run(i)
				return err
			})
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	return results, errs
}

// finishGrid settles a grid's per-run errors after runAll: each failure
// is wrapped with its position, logged under the given event name, and
// written to the manifest as a failure record, and the joined error is
// returned. Runs skipped by a cancelled context appear in the error but
// not in the manifest — they were interrupted, not failed, and a
// resumed invocation completes them.
func finishGrid(opts Options, errs []error, event string, what func(i int) (Config, string)) error {
	completed := 0
	for _, err := range errs {
		if err == nil {
			completed++
		}
	}
	var failures []error
	for i, err := range errs {
		if err == nil {
			continue
		}
		cfg, desc := what(i)
		failures = append(failures, fmt.Errorf("%s (fingerprint %s, after %d/%d runs completed): %w",
			desc, cfg.Fingerprint(), completed, len(errs), err))
		if errors.Is(err, context.Canceled) {
			continue
		}
		if opts.Logger != nil {
			opts.Logger.Error(event,
				"batch", opts.Batch, "index", i, "cfg", cfg.Fingerprint(),
				"completed", completed, "total", len(errs), "err", err)
		}
		if opts.Manifest != nil {
			if werr := opts.Manifest.Write(failureRecord(cfg, i, opts.Batch, err)); werr != nil {
				failures = append(failures, fmt.Errorf("core: failure manifest record %d: %w", i, werr))
			}
		}
	}
	return errors.Join(failures...)
}

// failureRecord assembles the manifest line for a failed run. Position
// context lives in the record's own fields and a panic's stack is
// log-only: the failure field must render deterministically across
// invocations for manifest digests to be comparable.
func failureRecord(cfg Config, index int, batch string, err error) obs.RunRecord {
	full := cfg.WithDefaults()
	raw, merr := json.Marshal(full)
	if merr != nil {
		raw = nil
	}
	return obs.RunRecord{
		Schema:      obs.RunSchema,
		Batch:       batch,
		Index:       index,
		Label:       full.Label(),
		Pattern:     full.Pattern,
		Seed:        full.Seed,
		Load:        full.Load,
		Fingerprint: full.Fingerprint(),
		Config:      raw,
		Failure:     failureText(err),
		Faults:      full.Faults,
	}
}

// failureText renders err for a manifest failure record.
func failureText(err error) string {
	var pe *resilience.PanicError
	if errors.As(err, &pe) {
		return fmt.Sprintf("panic: %v", pe.Value)
	}
	return err.Error()
}
