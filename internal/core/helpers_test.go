package core

import "smart/internal/metrics"

// Sample1 and Sample2 provide fixed metrics samples for table-plumbing
// tests.
func Sample1() metrics.Sample { return metrics.Sample{Offered: 0.1, Accepted: 0.1} }

// Sample2 is a second fixture.
func Sample2() metrics.Sample { return metrics.Sample{Offered: 0.2, Accepted: 0.19} }
