package core

import (
	"strings"
	"testing"
)

func TestDecodeBatchValid(t *testing.T) {
	input := `{
	  "name": "study",
	  "configs": [
	    {"Network": "tree", "Algorithm": "adaptive", "VCs": 2, "K": 4, "N": 2,
	     "Pattern": "uniform", "Load": 0.3, "Warmup": 300, "Horizon": 1500},
	    {"Network": "cube", "Algorithm": "duato", "VCs": 4, "K": 4, "N": 2,
	     "Pattern": "complement", "Load": 0.3, "Warmup": 300, "Horizon": 1500}
	  ]
	}`
	b, err := DecodeBatch(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "study" || len(b.Configs) != 2 {
		t.Fatalf("batch %+v", b)
	}
	res, err := b.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	for i, r := range res {
		if r.Sample.PacketsDelivered == 0 {
			t.Fatalf("config %d delivered nothing", i)
		}
	}
}

func TestDecodeBatchRejectsUnknownFields(t *testing.T) {
	input := `{"name": "x", "configs": [{"Netwrk": "tree"}]}`
	if _, err := DecodeBatch(strings.NewReader(input)); err == nil {
		t.Fatal("typo field accepted")
	}
}

func TestDecodeBatchRejectsEmpty(t *testing.T) {
	if _, err := DecodeBatch(strings.NewReader(`{"name": "x", "configs": []}`)); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := DecodeBatch(strings.NewReader(`not json`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestDecodeBatchRejectsInvalidConfig(t *testing.T) {
	input := `{"name": "x", "configs": [{"Network": "tree", "Algorithm": "duato"}]}`
	_, err := DecodeBatch(strings.NewReader(input))
	if err == nil || !strings.Contains(err.Error(), "config 0") {
		t.Fatalf("invalid config not reported: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := Batch{
		Name: "roundtrip",
		Configs: []Config{
			{Network: NetworkCube, Algorithm: AlgDeterministic, VCs: 4, K: 4, N: 2,
				Pattern: PatternUniform, Load: 0.25, Warmup: 300, Horizon: 1500},
		},
	}
	var buf strings.Builder
	if err := EncodeBatch(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != b.Name || len(got.Configs) != 1 || got.Configs[0] != b.Configs[0] {
		t.Fatalf("round trip changed the batch: %+v", got)
	}
}
