package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"smart/internal/metrics"
	"smart/internal/wormhole"
)

// The golden determinism fixtures pin the fabric's cycle-accurate
// behaviour bit-for-bit: for a set of fixed-seed configurations spanning
// both topology families, deterministic and adaptive routing and 1 and 4
// virtual channels, the fabric must reproduce the recorded Counters,
// per-link flit traffic and measurement Sample exactly. Any hot-path
// change that alters arbitration order, credit timing or injection
// pacing shows up here as a diff, not as a silently shifted latency
// curve. Regenerate with: go test ./internal/core -run TestGoldenFabric -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden fabric fixtures")

const goldenPath = "testdata/golden_fabric.json"

// goldenCase names one pinned configuration.
type goldenCase struct {
	Name string `json:"name"`
	Cfg  Config `json:"config"`
}

// goldenRecord is the recorded outcome of one golden case.
type goldenRecord struct {
	Name string `json:"name"`
	// Counters are the fabric's running totals at the horizon.
	Counters wormhole.Counters `json:"counters"`
	// LinkFlitsSum and LinkFlitsHash bind the full per-link flit matrix:
	// the sum catches magnitude drift, the FNV-1a hash over every
	// (router, port, count) triple catches any redistribution.
	LinkFlitsSum  int64  `json:"link_flits_sum"`
	LinkFlitsHash string `json:"link_flits_hash"`
	// Sample is the measurement-window outcome (Result.Sample).
	Sample metrics.Sample `json:"sample"`
}

// goldenCases spans tree+cube x {deterministic, adaptive} x VCs {1,4}.
// On the tree the deterministic point is the digit-aligned ascent (the
// oblivious policy); on the cube the disciplines fix VCs = 4, so the VC
// axis is exercised on the tree and the algorithm axis on both.
func goldenCases() []goldenCase {
	short := func(c Config, load float64) Config {
		c.Pattern = PatternUniform
		c.Load = load
		c.Seed = 7
		c.Warmup, c.Horizon = 300, 1500
		return c
	}
	return []goldenCase{
		{"tree-adaptive-1vc-load035", short(Config{Network: NetworkTree, Algorithm: AlgAdaptive, VCs: 1}, 0.35)},
		{"tree-adaptive-4vc-load035", short(Config{Network: NetworkTree, Algorithm: AlgAdaptive, VCs: 4}, 0.35)},
		{"tree-deterministic-1vc-load035", short(Config{Network: NetworkTree, Algorithm: AlgAdaptive, VCs: 1, TreeAscent: "digit-aligned"}, 0.35)},
		{"tree-deterministic-4vc-load035", short(Config{Network: NetworkTree, Algorithm: AlgAdaptive, VCs: 4, TreeAscent: "digit-aligned"}, 0.35)},
		{"cube-deterministic-4vc-load035", short(Config{Network: NetworkCube, Algorithm: AlgDeterministic, VCs: 4}, 0.35)},
		{"cube-adaptive-4vc-load035", short(Config{Network: NetworkCube, Algorithm: AlgDuato, VCs: 4}, 0.35)},
		{"tree-adaptive-4vc-load080", short(Config{Network: NetworkTree, Algorithm: AlgAdaptive, VCs: 4}, 0.80)},
		{"cube-adaptive-4vc-load080", short(Config{Network: NetworkCube, Algorithm: AlgDuato, VCs: 4}, 0.80)},
	}
}

// runGolden executes one case on the sequential engine and records its
// outcome.
func runGolden(t *testing.T, gc goldenCase) goldenRecord {
	return runGoldenShards(t, gc, 1)
}

// runGoldenShards executes one case at the given shard count.
func runGoldenShards(t *testing.T, gc goldenCase, shards int) goldenRecord {
	t.Helper()
	s, err := NewSimulationShards(gc.Cfg, shards)
	if err != nil {
		t.Fatalf("%s: %v", gc.Name, err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("%s: %v", gc.Name, err)
	}
	h := fnv.New64a()
	var sum int64
	deg := s.Top.Degree()
	for r := 0; r < s.Top.Routers(); r++ {
		for p := 0; p < deg; p++ {
			n := s.Fabric.LinkFlits(r, p)
			sum += n
			fmt.Fprintf(h, "%d/%d=%d;", r, p, n)
		}
	}
	return goldenRecord{
		Name:          gc.Name,
		Counters:      s.Fabric.Counters(),
		LinkFlitsSum:  sum,
		LinkFlitsHash: fmt.Sprintf("%016x", h.Sum64()),
		Sample:        res.Sample,
	}
}

func TestGoldenFabric(t *testing.T) {
	if testing.Short() {
		t.Skip("golden fixtures are full 256-node runs")
	}
	got := make([]goldenRecord, 0, len(goldenCases()))
	for _, gc := range goldenCases() {
		got = append(got, runGolden(t, gc))
	}
	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d fixtures to %s", len(got), goldenPath)
		return
	}
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading fixtures (regenerate with -update-golden): %v", err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("fixture count %d != case count %d (regenerate with -update-golden)", len(want), len(got))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Name != w.Name {
			t.Fatalf("case %d: name %q, fixture %q", i, g.Name, w.Name)
		}
		if g.Counters != w.Counters {
			t.Errorf("%s: counters %+v, want %+v", g.Name, g.Counters, w.Counters)
		}
		if g.LinkFlitsSum != w.LinkFlitsSum || g.LinkFlitsHash != w.LinkFlitsHash {
			t.Errorf("%s: link flits sum=%d hash=%s, want sum=%d hash=%s",
				g.Name, g.LinkFlitsSum, g.LinkFlitsHash, w.LinkFlitsSum, w.LinkFlitsHash)
		}
		if g.Sample != w.Sample {
			t.Errorf("%s: sample %+v, want %+v", g.Name, g.Sample, w.Sample)
		}
	}
}

// TestShardedGoldenFabric runs every golden configuration on the
// parallel engine at four shards and compares against the same committed
// fixtures the sequential engine must reproduce: the shard count must
// not move a single counter, link-flit cell or sample field.
func TestShardedGoldenFabric(t *testing.T) {
	if testing.Short() {
		t.Skip("golden fixtures are full 256-node runs")
	}
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading fixtures (regenerate with -update-golden): %v", err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	cases := goldenCases()
	if len(want) != len(cases) {
		t.Fatalf("fixture count %d != case count %d (regenerate with -update-golden)", len(want), len(cases))
	}
	for i, gc := range cases {
		g, w := runGoldenShards(t, gc, 4), want[i]
		if g.Counters != w.Counters {
			t.Errorf("%s: sharded counters %+v, want %+v", g.Name, g.Counters, w.Counters)
		}
		if g.LinkFlitsSum != w.LinkFlitsSum || g.LinkFlitsHash != w.LinkFlitsHash {
			t.Errorf("%s: sharded link flits sum=%d hash=%s, want sum=%d hash=%s",
				g.Name, g.LinkFlitsSum, g.LinkFlitsHash, w.LinkFlitsSum, w.LinkFlitsHash)
		}
		if g.Sample != w.Sample {
			t.Errorf("%s: sharded sample %+v, want %+v", g.Name, g.Sample, w.Sample)
		}
	}
}

// TestGoldenInvariantsSlowMode is the slow-mode variant: it steps two of
// the golden configurations cycle by cycle with the fabric's structural
// invariant checks (credit conservation, binding reciprocity, work-list
// consistency) between cycles, then drains and re-verifies.
func TestGoldenInvariantsSlowMode(t *testing.T) {
	if testing.Short() {
		t.Skip("slow-mode invariant sweep")
	}
	for _, gc := range []goldenCase{
		{"tree-adaptive-2vc-slow", Config{Network: NetworkTree, Algorithm: AlgAdaptive, VCs: 2,
			Pattern: PatternUniform, Load: 0.5, Seed: 11, Warmup: 100, Horizon: 400}},
		{"cube-adaptive-4vc-slow", Config{Network: NetworkCube, Algorithm: AlgDuato, VCs: 4,
			Pattern: PatternUniform, Load: 0.5, Seed: 11, Warmup: 100, Horizon: 400}},
	} {
		t.Run(gc.Name, func(t *testing.T) {
			s, err := NewSimulation(gc.Cfg)
			if err != nil {
				t.Fatal(err)
			}
			for s.Engine.Cycle() < gc.Cfg.Horizon {
				s.Engine.Step()
				if err := s.Fabric.CheckInvariants(); err != nil {
					t.Fatalf("cycle %d: %v", s.Engine.Cycle(), err)
				}
			}
			if !s.Drain(100000) {
				t.Fatal("network did not drain")
			}
			if err := s.Fabric.CheckInvariants(); err != nil {
				t.Fatalf("after drain: %v", err)
			}
			if got := s.Fabric.QueuedPackets(); got != 0 {
				t.Fatalf("QueuedPackets = %d after drain", got)
			}
		})
	}
}
