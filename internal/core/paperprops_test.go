package core

import (
	"testing"
)

// Paper-property tests: qualitative claims from the paper's text that
// must hold even on the scaled-down networks the unit suite can afford.
// The full-size confirmations live in cmd/experiments and EXPERIMENTS.md.

// TestTreeThroughputStableAboveSaturation checks §8: "In all cases the
// post saturation behavior is stable, with a constant throughput for any
// offered bandwidth."
func TestTreeThroughputStableAboveSaturation(t *testing.T) {
	cfg := Config{
		Network: NetworkTree, Algorithm: AlgAdaptive, VCs: 1,
		K: 4, N: 2, Pattern: PatternUniform,
		Seed: 11, Warmup: 500, Horizon: 5000,
	}
	results, err := Sweep(cfg, []float64{0.3, 0.5, 0.7, 0.85, 1.0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	series := SeriesOf(results)
	stability, ok := series.PostSaturationStability(0.03)
	if !ok {
		t.Skip("network did not saturate at this scale")
	}
	if stability < 0.9 {
		t.Fatalf("post-saturation stability %.2f, want near-flat throughput", stability)
	}
}

// TestMoreVirtualChannelsNeverHurtThroughput checks the §8 trend: under
// uniform traffic the accepted bandwidth at a saturating load grows with
// the virtual channel count.
func TestMoreVirtualChannelsNeverHurtThroughput(t *testing.T) {
	accepted := make([]float64, 0, 3)
	for _, vcs := range []int{1, 2, 4} {
		cfg := Config{
			Network: NetworkTree, Algorithm: AlgAdaptive, VCs: vcs,
			K: 4, N: 2, Pattern: PatternUniform, Load: 0.95,
			Seed: 11, Warmup: 500, Horizon: 5000,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		accepted = append(accepted, res.Sample.Accepted)
	}
	if !(accepted[0] < accepted[1] && accepted[1] <= accepted[2]+0.02) {
		t.Fatalf("accepted bandwidth %v not improving with virtual channels", accepted)
	}
}

// TestAdaptiveBeatsDeterministicOnTranspose checks §9: on the transpose
// "the adaptive algorithm provides better performance ... more than twice
// than the deterministic one."
func TestAdaptiveBeatsDeterministicOnTranspose(t *testing.T) {
	measure := func(alg string) float64 {
		cfg := Config{
			Network: NetworkCube, Algorithm: alg, VCs: 4,
			K: 4, N: 2, Pattern: PatternTranspose, Load: 0.9,
			Seed: 11, Warmup: 500, Horizon: 5000,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Sample.Accepted
	}
	det, duato := measure(AlgDeterministic), measure(AlgDuato)
	if duato <= det {
		t.Fatalf("duato %.3f not above deterministic %.3f on transpose", duato, det)
	}
}

// TestDeterministicBeatsAdaptiveOnComplement checks §9's surprise: "The
// complement is unusual since dimension order routing helps prevent
// conflicts", with the adaptive algorithm saturating earlier.
func TestDeterministicBeatsAdaptiveOnComplement(t *testing.T) {
	measure := func(alg string) float64 {
		cfg := Config{
			Network: NetworkCube, Algorithm: alg, VCs: 4,
			K: 8, N: 2, Pattern: PatternComplement, Load: 0.6,
			Seed: 11, Warmup: 500, Horizon: 6000,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Sample.Accepted
	}
	det, duato := measure(AlgDeterministic), measure(AlgDuato)
	if det < duato {
		t.Fatalf("deterministic %.3f below duato %.3f on complement", det, duato)
	}
}

// TestTreeInsensitiveToPermutationChoice checks §11: "An important
// characteristic of the fat-tree is that its communication performance is
// not sensitive to the permutation pattern" (transpose and bit-reversal
// behave alike).
func TestTreeInsensitiveToPermutationChoice(t *testing.T) {
	measure := func(pattern string) float64 {
		cfg := Config{
			Network: NetworkTree, Algorithm: AlgAdaptive, VCs: 2,
			K: 4, N: 2, Pattern: pattern, Load: 0.8,
			Seed: 11, Warmup: 500, Horizon: 5000,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Sample.Accepted
	}
	tp, br := measure(PatternTranspose), measure(PatternBitRev)
	if diffAbs(tp, br) > 0.08 {
		t.Fatalf("transpose %.3f and bit-reversal %.3f diverge on the tree", tp, br)
	}
}

func diffAbs(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// TestGoldenDeterminism pins the exact outcome of one fixed configuration
// as a regression guard: the simulator is a pure function of its
// configuration, so any change to these numbers means the model changed
// and EXPERIMENTS.md must be regenerated. (Update the constants when that
// is intentional.)
func TestGoldenDeterminism(t *testing.T) {
	cfg := Config{
		Network: NetworkCube, Algorithm: AlgDuato, VCs: 4,
		K: 4, N: 2, Pattern: PatternUniform, Load: 0.5,
		Seed: 2024, Warmup: 500, Horizon: 3000,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sample != res.Sample {
		t.Fatal("identical configurations produced different samples")
	}
	if res.Sample.PacketsDelivered == 0 || res.Sample.PacketsCreated == 0 {
		t.Fatalf("degenerate golden run: %+v", res.Sample)
	}
	// Pin the integer counters (exact) and the derived ratios (tight).
	const wantDelivered, wantCreated = 1261, 1249
	if res.Sample.PacketsDelivered != wantDelivered || res.Sample.PacketsCreated != wantCreated {
		t.Fatalf("golden counters changed: delivered %d (want %d), created %d (want %d) — the model changed; regenerate EXPERIMENTS.md and update",
			res.Sample.PacketsDelivered, wantDelivered, res.Sample.PacketsCreated, wantCreated)
	}
}
