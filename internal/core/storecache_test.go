package core

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"smart/internal/obs"
	"smart/internal/resilience"
	"smart/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestSweepWithStoreDigestsIdentically checks the read-through
// contract end to end: a cold sweep populates the store, and a second
// sweep over the same grid is served entirely from it — without
// executing a single run — yet produces a manifest with the identical
// content digest.
func TestSweepWithStoreDigestsIdentically(t *testing.T) {
	dir := t.TempDir()
	loads := []float64{0.1, 0.2, 0.3}

	var cold bytes.Buffer
	st := openStore(t, dir)
	if _, err := SweepWith(smallCfg(), loads, 2, Options{
		Store:    st,
		Manifest: obs.NewManifestWriter(&cold),
	}); err != nil {
		t.Fatal(err)
	}
	if st.Len() != len(loads) {
		t.Fatalf("store holds %d records after a %d-point sweep", st.Len(), len(loads))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen (persistence across processes) and sweep warm.
	var warm, logs bytes.Buffer
	st2 := openStore(t, dir)
	if _, err := SweepWith(smallCfg(), loads, 2, Options{
		Store:    st2,
		Manifest: obs.NewManifestWriter(&warm),
		Logger:   obs.NewLogger(&logs, obs.FormatJSON),
	}); err != nil {
		t.Fatal(err)
	}

	coldRecs, err := obs.DecodeManifest(&cold)
	if err != nil {
		t.Fatal(err)
	}
	warmRecs, err := obs.DecodeManifest(&warm)
	if err != nil {
		t.Fatal(err)
	}
	if dc, dw := obs.Digest(coldRecs), obs.Digest(warmRecs); dc != dw {
		t.Fatalf("warm sweep digest %s != cold sweep digest %s", dw, dc)
	}

	// Every warm run must have been replayed, none executed.
	if n := strings.Count(logs.String(), `"msg":"run replayed from cache"`); n != len(loads) {
		t.Fatalf("%d cache replays logged, want %d:\n%s", n, len(loads), logs.String())
	}
	if strings.Contains(logs.String(), `"msg":"run complete"`) {
		t.Fatalf("warm sweep executed a run:\n%s", logs.String())
	}
	if !strings.Contains(logs.String(), `"source":"store"`) {
		t.Fatalf("replay source not attributed to the store:\n%s", logs.String())
	}
}

// TestStoreHitRestampsPosition checks that cached records are persisted
// position-free and re-stamped with the requesting run's Batch/Index —
// the property that makes a read-through grid's manifest digest equal
// an uncached one's even though Batch and Index are digested fields.
func TestStoreHitRestampsPosition(t *testing.T) {
	st := openStore(t, t.TempDir())
	cfg := smallCfg()

	if _, err := RunWith(cfg, Options{Store: st, Batch: "alpha", Index: 7}); err != nil {
		t.Fatal(err)
	}
	rec, _, ok, err := st.Get(cfg.Fingerprint())
	if err != nil || !ok {
		t.Fatalf("store miss after write-back: ok=%v err=%v", ok, err)
	}
	if rec.Batch != "" || rec.Index != 0 {
		t.Fatalf("stored record keeps position batch=%q index=%d; want canonical (position-free)", rec.Batch, rec.Index)
	}

	var manifest bytes.Buffer
	if _, err := RunWith(cfg, Options{
		Store:    st,
		Batch:    "beta",
		Index:    2,
		Manifest: obs.NewManifestWriter(&manifest),
	}); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.DecodeManifest(&manifest)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Batch != "beta" || recs[0].Index != 2 {
		t.Fatalf("replayed manifest record not re-stamped with the caller's position: %+v", recs)
	}
}

// TestCheckpointHitBackfillsStore checks the two caches compose: a run
// already journaled by a checkpoint is replayed (not executed) and its
// record still lands in the store.
func TestCheckpointHitBackfillsStore(t *testing.T) {
	dir := t.TempDir()
	cfg := smallCfg()

	cp, err := resilience.Open(filepath.Join(dir, "runs.journal"), true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	if _, err := RunWith(cfg, Options{Checkpoint: cp}); err != nil {
		t.Fatal(err)
	}

	st := openStore(t, filepath.Join(dir, "store"))
	var logs bytes.Buffer
	if _, err := RunWith(cfg, Options{
		Checkpoint: cp,
		Store:      st,
		Logger:     obs.NewLogger(&logs, obs.FormatJSON),
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logs.String(), `"source":"checkpoint"`) {
		t.Fatalf("second run was not a checkpoint replay:\n%s", logs.String())
	}
	if st.Len() != 1 {
		t.Fatalf("store holds %d records, want 1 (back-filled from the checkpoint)", st.Len())
	}
	rec, _, ok, err := st.Get(cfg.Fingerprint())
	if err != nil || !ok {
		t.Fatalf("back-filled record missing: ok=%v err=%v", ok, err)
	}
	if rec.Batch != "" || rec.Index != 0 {
		t.Fatalf("back-filled record not canonicalized: batch=%q index=%d", rec.Batch, rec.Index)
	}
}
