package core

import (
	"fmt"
	"runtime"

	"smart/internal/cost"
	"smart/internal/faults"
	"smart/internal/metrics"
	"smart/internal/phys"
	"smart/internal/sim"
	"smart/internal/topology"
	"smart/internal/traffic"
	"smart/internal/wormhole"
)

// Simulation is a fully assembled experiment: topology, fabric, traffic
// process, engine and measurement window. Most callers use Run or Sweep;
// the pieces are exposed for tests, examples and custom harnesses.
type Simulation struct {
	Config   Config
	Top      topology.Topology
	Fabric   *wormhole.Fabric
	Injector *traffic.Injector
	Engine   *sim.Engine
	Window   *metrics.Window
	// Faults is the fault-schedule controller, nil without Config.Faults.
	Faults *faults.Controller
	// Shards is the effective fabric shard count (>= 1). It is an
	// execution detail — results are bit-identical for every value — so
	// it lives outside Config and its fingerprint.
	Shards int
}

// Result is the measured outcome of one simulation, in both the
// normalized cycle domain (Figures 5 and 6) and absolute units via the
// Chien cost model (Figure 7).
type Result struct {
	Config Config
	Sample metrics.Sample
	Timing cost.Timing
	// OfferedBitsNS and AcceptedBitsNS are the aggregate offered and
	// accepted traffic in bits per nanosecond; LatencyNS the mean network
	// latency in nanoseconds.
	OfferedBitsNS, AcceptedBitsNS, LatencyNS float64
}

// NewSimulation assembles an experiment from the configuration, on the
// sequential single-shard engine.
func NewSimulation(cfg Config) (*Simulation, error) {
	return NewSimulationShards(cfg, 1)
}

// EffectiveShards resolves a requested shard count for a fabric of the
// given router count: values below zero mean sequential (1), zero means
// auto — bounded by GOMAXPROCS and by the fabric size, so small networks
// never pay parallel overhead — and positive values are taken as-is
// (the fabric still clamps to the router count).
func EffectiveShards(requested, routers int) int {
	if requested > 0 {
		return requested
	}
	if requested < 0 {
		return 1
	}
	auto := routers / 1024
	if max := runtime.GOMAXPROCS(0); auto > max {
		auto = max
	}
	if auto < 1 {
		auto = 1
	}
	return auto
}

// NewSimulationShards assembles an experiment with the fabric
// partitioned into the requested number of shards (interpreted by
// EffectiveShards; the resulting count is in Simulation.Shards). Shard
// count never changes simulation results — only how cycles execute.
func NewSimulationShards(cfg Config, shards int) (*Simulation, error) {
	cfg = cfg.WithDefaults()
	top, err := cfg.buildTopology()
	if err != nil {
		return nil, err
	}
	flitBytes, err := phys.FlitBytes(top)
	if err != nil {
		return nil, err
	}
	if cfg.PacketBytes%flitBytes != 0 {
		return nil, fmt.Errorf("core: packet size %dB is not a whole number of %dB flits", cfg.PacketBytes, flitBytes)
	}
	alg, err := cfg.buildAlgorithm(top)
	if err != nil {
		return nil, err
	}
	fabric, err := wormhole.NewFabric(top, wormhole.Config{
		VCs:             cfg.VCs,
		BufDepth:        cfg.BufDepth,
		PacketFlits:     cfg.PacketBytes / flitBytes,
		InjLanes:        cfg.InjLanes,
		WatchdogCycles:  cfg.WatchdogCycles,
		StoreAndForward: cfg.StoreAndForward,
		RouteEvery:      cfg.RouteEvery,
		LinkCycles:      cfg.LinkCycles,
	}, alg)
	if err != nil {
		return nil, err
	}
	pattern, err := cfg.buildPattern(top)
	if err != nil {
		return nil, err
	}
	// The configured packet size may differ from the paper's, so the
	// packet rate follows the actual flit count.
	capFlits, err := phys.CapacityFlits(top)
	if err != nil {
		return nil, err
	}
	rate := cfg.Load * capFlits / float64(cfg.PacketBytes/flitBytes)
	inj, err := traffic.NewInjector(fabric, pattern, rate, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Burst != "" {
		mod, err := traffic.ParseBurst(cfg.Burst, cfg.Seed)
		if err != nil {
			return nil, err
		}
		inj.SetModulator(mod)
	}
	var ctl *faults.Controller
	if cfg.Faults != "" {
		// Random clauses expand with a fingerprint-derived seed, so the
		// realized schedule is a pure function of the configuration.
		sched, err := faults.Parse(cfg.Faults, top, faults.SeedFrom(cfg.Fingerprint()))
		if err != nil {
			return nil, err
		}
		ctl = faults.NewController(sched, fabric)
		inj.SetAvailability(fabric.NodeUp)
	}
	window, err := metrics.NewWindow(fabric, capFlits)
	if err != nil {
		return nil, err
	}
	if err := fabric.SetShards(EffectiveShards(shards, top.Routers())); err != nil {
		return nil, err
	}
	engine := sim.NewEngine()
	// The fault stage runs first so a cycle's masks are in place before
	// any traffic or fabric work; the traffic process runs next so a
	// packet created in a cycle can begin injecting the same cycle; the
	// fabric then runs its canonical link / crossbar / routing /
	// injection / credits order (fused into the two-phase driver when
	// sharded).
	if ctl != nil {
		ctl.Register(engine)
	}
	inj.Register(engine)
	fabric.Register(engine)
	return &Simulation{Config: cfg, Top: top, Fabric: fabric, Injector: inj, Engine: engine, Window: window, Faults: ctl, Shards: fabric.Shards()}, nil
}

// Run executes the experiment with the paper's methodology and returns
// its Result.
func Run(cfg Config) (Result, error) {
	s, err := NewSimulation(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Run()
}

// Run executes warm-up, opens the measurement window, runs to the horizon
// and measures. With Config.WatchdogCycles set, a run whose fabric stops
// making progress (a routing deadlock) aborts with the engine's
// sim.StallError instead of burning cycles to the horizon.
func (s *Simulation) Run() (Result, error) {
	cfg := s.Config
	s.Engine.Run(cfg.Warmup)
	if err := s.stalled(); err != nil {
		return Result{}, err
	}
	s.Window.Start(cfg.Warmup)
	// Channel-utilization counters measure the same window as the
	// bandwidth and latency statistics.
	s.Fabric.ResetLinkStats()
	s.Engine.Run(cfg.Horizon)
	if err := s.stalled(); err != nil {
		return Result{}, err
	}
	sample, err := s.Window.Measure(cfg.Horizon, cfg.Load)
	if err != nil {
		return Result{}, err
	}
	return s.finishResult(sample)
}

// finishResult converts a measured sample into the full Result with the
// cost-model conversions to absolute units.
func (s *Simulation) finishResult(sample metrics.Sample) (Result, error) {
	cfg := s.Config
	timing, err := cfg.Timing()
	if err != nil {
		return Result{}, err
	}
	res := Result{Config: cfg, Sample: sample, Timing: timing}
	res.OfferedBitsNS, err = phys.ThroughputBitsPerNS(s.Top, sample.Offered, timing.Clock)
	if err != nil {
		return Result{}, err
	}
	res.AcceptedBitsNS, err = phys.ThroughputBitsPerNS(s.Top, sample.Accepted, timing.Clock)
	if err != nil {
		return Result{}, err
	}
	res.LatencyNS = phys.LatencyNS(sample.AvgLatency, timing.Clock)
	return res, nil
}

// stalled surfaces the engine watchdog's diagnosis, identifying the
// experiment it killed.
func (s *Simulation) stalled() error {
	if st := s.Engine.Stall(); st != nil {
		return fmt.Errorf("core: %s (fingerprint %s): %w", s.Config.Label(), s.Config.Fingerprint(), st)
	}
	return nil
}

// Drain stops the traffic process and runs the engine until the network
// empties or maxExtra cycles elapse; it reports whether the network
// drained. Tests use it to assert deadlock freedom and conservation.
func (s *Simulation) Drain(maxExtra int64) bool {
	s.Injector.Stop()
	deadline := s.Engine.Cycle() + maxExtra
	for s.Engine.Cycle() < deadline {
		if s.Fabric.Drained() {
			return true
		}
		s.Engine.Step()
	}
	return s.Fabric.Drained()
}

// Sweep runs the configuration at each offered load, in parallel across
// min(workers, len(loads)) goroutines (each simulation is an independent
// deterministic function of its config), and returns results ordered as
// the loads. SweepWith is the same under observers.
func Sweep(base Config, loads []float64, workers int) ([]Result, error) {
	return SweepWith(base, loads, workers, Options{})
}

// SeriesOf extracts the metrics series from sweep results.
func SeriesOf(results []Result) metrics.Series {
	s := make(metrics.Series, len(results))
	for i, r := range results {
		s[i] = r.Sample
	}
	return s
}

// DefaultLoads is the offered-bandwidth grid of the paper's figures:
// 5% to 100% of capacity in 5% steps.
func DefaultLoads() []float64 {
	loads := make([]float64, 0, 20)
	for l := 0.05; l <= 1.0001; l += 0.05 {
		loads = append(loads, l)
	}
	return loads
}
