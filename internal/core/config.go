// Package core is the experiment layer of the reproduction: it assembles
// a topology, routing algorithm, wormhole fabric, traffic process and
// measurement window from a declarative Config, runs the simulation with
// the paper's methodology (2000-cycle warm-up, 20000-cycle horizon), and
// sweeps offered loads to produce the Chaos Normal Form series of
// Figures 5 and 6 and the absolute-unit comparison of Figure 7.
package core

import (
	"fmt"
	"hash/fnv"

	"smart/internal/cost"
	"smart/internal/phys"
	"smart/internal/routing"
	"smart/internal/topology"
	"smart/internal/traffic"
	"smart/internal/wormhole"
)

// NetworkKind selects the topology family.
type NetworkKind string

// The two families the paper compares, plus the mesh (the cube without
// wrap-around links), which the ablation harness uses for the classic
// torus-versus-mesh comparison.
const (
	NetworkTree NetworkKind = "tree"
	NetworkCube NetworkKind = "cube"
	NetworkMesh NetworkKind = "mesh"
)

// Algorithm names accepted by Config.
const (
	AlgAdaptive      = "adaptive"      // fat-tree minimal adaptive (§2)
	AlgDeterministic = "deterministic" // cube dimension-order (§3)
	AlgDuato         = "duato"         // cube minimal adaptive with escapes (§3)
)

// Pattern names accepted by Config.
const (
	PatternUniform    = "uniform"
	PatternComplement = "complement"
	PatternBitRev     = "bitrev"
	PatternTranspose  = "transpose"
	PatternTornado    = "tornado"
	PatternShuffle    = "shuffle"
	PatternNeighbor   = "neighbor"
	PatternHotspot    = "hotspot"
)

// Config declares one simulation. Zero fields take the paper's defaults
// via WithDefaults.
type Config struct {
	// Network selects the family; K and N are the radix and dimension
	// (4-ary 4-tree and 16-ary 2-cube by default, the paper's matched
	// 256-node pair).
	Network NetworkKind
	K, N    int
	// Algorithm is the routing discipline; VCs the virtual channels per
	// link. The cube disciplines require 4 VCs; the tree algorithm
	// accepts any positive count (the paper uses 1, 2 and 4).
	Algorithm string
	VCs       int
	// BufDepth is the lane buffer capacity in flits (4 in the paper).
	BufDepth int
	// PacketBytes is the packet size (64 in the paper); the flit width is
	// fixed per family by the pin-count normalization.
	PacketBytes int
	// Pattern names the traffic benchmark; Load is the offered bandwidth
	// as a fraction of the uniform-traffic capacity.
	Pattern string
	Load    float64
	// HotspotFraction applies to the hotspot pattern only.
	HotspotFraction float64
	// Seed drives all random streams; equal seeds give bit-identical
	// results.
	Seed uint64
	// Warmup and Horizon delimit the measurement window in cycles.
	Warmup, Horizon int64
	// InjLanes is the number of injection streams per node (1 in the
	// paper: source throttling). The ablation harness raises it.
	InjLanes int
	// WatchdogCycles enables the fabric's deadlock detector when
	// positive.
	WatchdogCycles int64
	// StoreAndForward switches the fabric from wormhole to
	// store-and-forward switching (requires BufDepth >= packet flits);
	// virtual cut-through is wormhole with BufDepth >= packet flits.
	// Both are ablations, not paper configurations.
	StoreAndForward bool
	// RouteEvery stretches the routing stage to one header per switch
	// every RouteEvery cycles (default 1) — the de-equalized-pipeline
	// ablation.
	RouteEvery int
	// TreeAscent selects the fat-tree ascending-phase policy:
	// "least-loaded" (the paper's), "round-robin" or "digit-aligned".
	TreeAscent string
	// LinkCycles sets the flit flight time across physical links
	// (default 1). Values above one model pipelined long wires — the
	// alternative to folding the wire delay into a stretched clock.
	LinkCycles int
	// Faults is a deterministic fault schedule: either the textual spec
	// grammar of internal/faults ("link:R:P@C1-C2,rand-links:N@C,...") or
	// the canonical form of a decoded JSONL schedule. Random clauses are
	// expanded with a seed derived from the fingerprint, so the schedule
	// is a pure function of the configuration. Empty means no faults.
	Faults string `json:",omitempty"`
	// Burst is a traffic-modulation spec ("mmpp:<dwellOn>:<dwellOff>:<peak>");
	// empty means the stationary Bernoulli process.
	Burst string `json:",omitempty"`
	// HotspotPeriod, with the hotspot pattern, moves the hot node to the
	// next id every HotspotPeriod cycles (the time-varying adversary);
	// zero keeps the hot node fixed.
	HotspotPeriod int64 `json:",omitempty"`
}

// Paper-default methodology constants.
const (
	DefaultWarmup  = 2000
	DefaultHorizon = 20000
)

// WithDefaults fills the zero fields with the paper's parameters.
func (c Config) WithDefaults() Config {
	if c.Network == "" {
		c.Network = NetworkTree
	}
	if c.K == 0 && c.N == 0 {
		if c.Network == NetworkTree {
			c.K, c.N = 4, 4
		} else {
			c.K, c.N = 16, 2
		}
	}
	if c.Algorithm == "" {
		if c.Network == NetworkTree {
			c.Algorithm = AlgAdaptive
		} else {
			c.Algorithm = AlgDuato
		}
	}
	if c.VCs == 0 {
		c.VCs = 4
	}
	if c.BufDepth == 0 {
		c.BufDepth = 4
	}
	if c.PacketBytes == 0 {
		c.PacketBytes = phys.PacketBytes
	}
	if c.Pattern == "" {
		c.Pattern = PatternUniform
	}
	//smartlint:allow floateq — zero is the "field unset" sentinel, not an arithmetic result
	if c.HotspotFraction == 0 {
		c.HotspotFraction = 0.05
	}
	if c.Warmup == 0 {
		c.Warmup = DefaultWarmup
	}
	if c.Horizon == 0 {
		c.Horizon = DefaultHorizon
	}
	if c.InjLanes == 0 {
		c.InjLanes = 1
	}
	return c
}

// legacyConfig mirrors the Config fields that existed when fingerprints
// were first pinned into manifests and checkpoints, in their original
// order. Fingerprint formats this shadow struct so configurations that
// predate the fault/burst fields keep their published identities; the
// newer fields are appended only when set.
type legacyConfig struct {
	Network         NetworkKind
	K, N            int
	Algorithm       string
	VCs             int
	BufDepth        int
	PacketBytes     int
	Pattern         string
	Load            float64
	HotspotFraction float64
	Seed            uint64
	Warmup, Horizon int64
	InjLanes        int
	WatchdogCycles  int64
	StoreAndForward bool
	RouteEvery      int
	TreeAscent      string
	LinkCycles      int
}

// Fingerprint returns a short stable hash of the fully-defaulted
// configuration — the run identity stamped into logs, manifests and
// batch errors. Configurations that differ only in unset-versus-default
// fields share a fingerprint, matching the simulator's behaviour.
func (c Config) Fingerprint() string {
	c = c.WithDefaults()
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", legacyConfig{
		Network:         c.Network,
		K:               c.K,
		N:               c.N,
		Algorithm:       c.Algorithm,
		VCs:             c.VCs,
		BufDepth:        c.BufDepth,
		PacketBytes:     c.PacketBytes,
		Pattern:         c.Pattern,
		Load:            c.Load,
		HotspotFraction: c.HotspotFraction,
		Seed:            c.Seed,
		Warmup:          c.Warmup,
		Horizon:         c.Horizon,
		InjLanes:        c.InjLanes,
		WatchdogCycles:  c.WatchdogCycles,
		StoreAndForward: c.StoreAndForward,
		RouteEvery:      c.RouteEvery,
		TreeAscent:      c.TreeAscent,
		LinkCycles:      c.LinkCycles,
	})
	if c.Faults != "" || c.Burst != "" || c.HotspotPeriod != 0 {
		fmt.Fprintf(h, "|faults=%s|burst=%s|hotperiod=%d", c.Faults, c.Burst, c.HotspotPeriod)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Label returns a compact identifier for result tables, e.g.
// "tree adaptive-2vc" or "cube deterministic".
func (c Config) Label() string {
	if c.Network == NetworkTree {
		return fmt.Sprintf("tree %s-%dvc", c.Algorithm, c.VCs)
	}
	return fmt.Sprintf("%s %s", c.Network, c.Algorithm)
}

// buildTopology constructs the configured topology.
func (c Config) buildTopology() (topology.Topology, error) {
	switch c.Network {
	case NetworkTree:
		return topology.NewTree(c.K, c.N)
	case NetworkCube:
		return topology.NewCube(c.K, c.N)
	case NetworkMesh:
		return topology.NewMesh(c.K, c.N)
	default:
		return nil, fmt.Errorf("core: unknown network kind %q", c.Network)
	}
}

// buildAlgorithm constructs the routing discipline for the topology.
func (c Config) buildAlgorithm(top topology.Topology) (wormhole.RoutingAlgorithm, error) {
	switch t := top.(type) {
	case *topology.Tree:
		if c.Algorithm != AlgAdaptive {
			return nil, fmt.Errorf("core: algorithm %q is not defined on the tree (want %q)", c.Algorithm, AlgAdaptive)
		}
		switch c.TreeAscent {
		case "", "least-loaded":
			return routing.NewTreeAdaptive(t, c.VCs)
		case "round-robin":
			return routing.NewTreeAdaptivePolicy(t, c.VCs, routing.RoundRobin)
		case "digit-aligned":
			return routing.NewTreeAdaptivePolicy(t, c.VCs, routing.DigitAligned)
		default:
			return nil, fmt.Errorf("core: unknown tree ascent policy %q", c.TreeAscent)
		}
	case *topology.Cube:
		if c.VCs != 4 {
			return nil, fmt.Errorf("core: the cube disciplines use 4 virtual channels, got %d", c.VCs)
		}
		switch c.Algorithm {
		case AlgDeterministic:
			return routing.NewDOR(t), nil
		case AlgDuato:
			// Fault-aware detours keep per-dimension direction locks in
			// PacketInfo.RouteBits; the bit layout caps the dimension
			// count at 8 when faults are enabled.
			if c.Faults != "" && c.N > 8 {
				return nil, fmt.Errorf("core: duato fault rerouting supports at most 8 dimensions, got n=%d", c.N)
			}
			return routing.NewDuato(t), nil
		default:
			return nil, fmt.Errorf("core: algorithm %q is not defined on the cube", c.Algorithm)
		}
	default:
		return nil, fmt.Errorf("core: unknown topology %T", top)
	}
}

// buildPattern constructs the traffic benchmark.
func (c Config) buildPattern(top topology.Topology) (traffic.Pattern, error) {
	nodes := top.Nodes()
	if c.HotspotPeriod < 0 {
		return nil, fmt.Errorf("core: HotspotPeriod %d must be non-negative", c.HotspotPeriod)
	}
	if c.HotspotPeriod != 0 && c.Pattern != PatternHotspot {
		return nil, fmt.Errorf("core: HotspotPeriod applies to the hotspot pattern only, got %q", c.Pattern)
	}
	switch c.Pattern {
	case PatternUniform:
		return traffic.NewUniform(nodes)
	case PatternComplement:
		return traffic.NewComplement(nodes)
	case PatternBitRev:
		return traffic.NewBitReversal(nodes)
	case PatternTranspose:
		return traffic.NewTranspose(nodes)
	case PatternShuffle:
		return traffic.NewShuffle(nodes)
	case PatternNeighbor:
		return traffic.NewNeighbor(nodes)
	case PatternHotspot:
		if c.HotspotPeriod > 0 {
			return traffic.NewRotatingHotspot(nodes, c.HotspotPeriod, c.HotspotFraction)
		}
		return traffic.NewHotspot(nodes, 0, c.HotspotFraction)
	case PatternTornado:
		cube, ok := top.(*topology.Cube)
		if !ok {
			return nil, fmt.Errorf("core: tornado traffic is defined on the cube only")
		}
		return traffic.NewTornado(cube), nil
	default:
		return nil, fmt.Errorf("core: unknown traffic pattern %q", c.Pattern)
	}
}

// Timing returns the Chien-model timing of the configured router
// implementation; its Clock converts cycles to nanoseconds.
func (c Config) Timing() (cost.Timing, error) {
	c = c.WithDefaults()
	switch c.Network {
	case NetworkTree:
		return cost.TreeAdaptive(c.K, c.VCs), nil
	case NetworkCube, NetworkMesh:
		// The mesh router has the same arity and virtual channels as the
		// cube's, so the cost model rows apply unchanged.
		switch c.Algorithm {
		case AlgDeterministic:
			return cost.CubeDeterministicN(c.N), nil
		case AlgDuato:
			return cost.CubeDuatoN(c.N), nil
		}
	}
	return cost.Timing{}, fmt.Errorf("core: no timing model for %s/%s", c.Network, c.Algorithm)
}

// PaperConfigs returns the five network/algorithm configurations of the
// paper's final comparison (§10): the cube with deterministic and Duato
// routing, and the tree with one, two and four virtual channels.
func PaperConfigs() []Config {
	return []Config{
		{Network: NetworkCube, Algorithm: AlgDeterministic, VCs: 4},
		{Network: NetworkCube, Algorithm: AlgDuato, VCs: 4},
		{Network: NetworkTree, Algorithm: AlgAdaptive, VCs: 1},
		{Network: NetworkTree, Algorithm: AlgAdaptive, VCs: 2},
		{Network: NetworkTree, Algorithm: AlgAdaptive, VCs: 4},
	}
}
