package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// Batch is a named set of experiment configurations, loadable from JSON.
// It lets a study be described declaratively and run with cmd/batch:
//
//	{
//	  "name": "vc-study",
//	  "configs": [
//	    {"Network": "tree", "Algorithm": "adaptive", "VCs": 1, "Pattern": "uniform", "Load": 0.5},
//	    {"Network": "tree", "Algorithm": "adaptive", "VCs": 4, "Pattern": "uniform", "Load": 0.5}
//	  ]
//	}
//
// Unset fields take the paper's defaults, exactly as in the Go API.
type Batch struct {
	Name    string   `json:"name"`
	Configs []Config `json:"configs"`
}

// DecodeBatch reads a Batch from JSON, rejecting unknown fields so typos
// in config files fail loudly, and validates that every configuration
// assembles.
func DecodeBatch(r io.Reader) (Batch, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var b Batch
	if err := dec.Decode(&b); err != nil {
		return Batch{}, fmt.Errorf("core: decoding batch: %w", err)
	}
	if len(b.Configs) == 0 {
		return Batch{}, fmt.Errorf("core: batch %q has no configurations", b.Name)
	}
	for i, cfg := range b.Configs {
		if _, err := NewSimulation(cfg); err != nil {
			return Batch{}, fmt.Errorf("core: batch %q config %d: %w", b.Name, i, err)
		}
	}
	return b, nil
}

// Run executes every configuration of the batch, in parallel across
// workers, and returns results in config order. RunWith is the same
// under observers.
func (b Batch) Run(workers int) ([]Result, error) {
	return b.RunWith(workers, Options{})
}

// RunWith executes the batch under observers. A failing configuration
// no longer aborts the grid: every config runs (panics included — they
// are isolated to their own slot), each failure's error carries the
// batch name, the config's index and fingerprint, and how many runs
// completed, the same context is emitted as a structured event and a
// manifest failure record, and all failures come back joined alongside
// the results that did complete (failed slots hold zero Results).
func (b Batch) RunWith(workers int, opts Options) ([]Result, error) {
	opts.Batch = b.Name
	results, errs := runAll(opts.Context, len(b.Configs), workers, func(i int) (Result, error) {
		o := opts
		o.Index = i
		return RunWith(b.Configs[i], o)
	})
	err := finishGrid(opts, errs, "batch config failed", func(i int) (Config, string) {
		return b.Configs[i], fmt.Sprintf("core: batch %q config %d", b.Name, i)
	})
	return results, err
}

// EncodeBatch writes the batch as indented JSON (the inverse of
// DecodeBatch, used to scaffold config files).
func EncodeBatch(w io.Writer, b Batch) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
