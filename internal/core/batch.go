package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// Batch is a named set of experiment configurations, loadable from JSON.
// It lets a study be described declaratively and run with cmd/batch:
//
//	{
//	  "name": "vc-study",
//	  "configs": [
//	    {"Network": "tree", "Algorithm": "adaptive", "VCs": 1, "Pattern": "uniform", "Load": 0.5},
//	    {"Network": "tree", "Algorithm": "adaptive", "VCs": 4, "Pattern": "uniform", "Load": 0.5}
//	  ]
//	}
//
// Unset fields take the paper's defaults, exactly as in the Go API.
type Batch struct {
	Name    string   `json:"name"`
	Configs []Config `json:"configs"`
}

// DecodeBatch reads a Batch from JSON, rejecting unknown fields so typos
// in config files fail loudly, and validates that every configuration
// assembles.
func DecodeBatch(r io.Reader) (Batch, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var b Batch
	if err := dec.Decode(&b); err != nil {
		return Batch{}, fmt.Errorf("core: decoding batch: %w", err)
	}
	if len(b.Configs) == 0 {
		return Batch{}, fmt.Errorf("core: batch %q has no configurations", b.Name)
	}
	for i, cfg := range b.Configs {
		if _, err := NewSimulation(cfg); err != nil {
			return Batch{}, fmt.Errorf("core: batch %q config %d: %w", b.Name, i, err)
		}
	}
	return b, nil
}

// Run executes every configuration of the batch, in parallel across
// workers, and returns results in config order.
func (b Batch) Run(workers int) ([]Result, error) {
	if workers < 1 {
		workers = 1
	}
	results := make([]Result, len(b.Configs))
	errs := make([]error, len(b.Configs))
	sem := make(chan struct{}, workers)
	done := make(chan struct{})
	for i, cfg := range b.Configs {
		go func(i int, cfg Config) {
			sem <- struct{}{}
			defer func() { <-sem; done <- struct{}{} }()
			results[i], errs[i] = Run(cfg)
		}(i, cfg)
	}
	for range b.Configs {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// EncodeBatch writes the batch as indented JSON (the inverse of
// DecodeBatch, used to scaffold config files).
func EncodeBatch(w io.Writer, b Batch) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
