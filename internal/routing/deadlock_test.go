package routing

import (
	"strings"
	"testing"

	"smart/internal/sim"
	"smart/internal/topology"
	"smart/internal/wormhole"
)

// noEscape drives Duato's adaptive channels with the escape subnetwork
// disabled — the configuration invariant whose violation the paper's
// deadlock-freedom argument rests on — by refusing every escape-lane
// allocation on router-to-router hops. Ejection stays untouched.
type noEscape struct{ *Duato }

func (a *noEscape) Name() string { return "duato-no-escape" }

func (a *noEscape) Route(f wormhole.Router, r, inPort, inLane int, pkt wormhole.PacketID) (int, int, bool) {
	port, lane, ok := a.Duato.Route(f, r, inPort, inLane, pkt)
	if ok && port != a.cube.NodePort() && lane >= duatoEscapeBase {
		return 0, 0, false
	}
	return port, lane, ok
}

// TestWatchdogDiagnosesEscapeDisabledDeadlock is the seeded-deadlock
// fixture of the run-resilience contract: adaptive routing without its
// escape channels deadlocks on a ring, and instead of hanging to the
// horizon the engine watchdog must stop the run within its budget with
// a StallError whose snapshot names the blocked headers.
func TestWatchdogDiagnosesEscapeDisabledDeadlock(t *testing.T) {
	const (
		k       = 8
		budget  = 500
		horizon = 50000
	)
	cube, err := topology.NewCube(k, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := wormhole.NewFabric(cube, wormhole.Config{
		VCs: cubeVCs, BufDepth: 2, PacketFlits: 64, InjLanes: 1, WatchdogCycles: budget,
	}, &noEscape{NewDuato(cube)})
	if err != nil {
		t.Fatal(err)
	}
	// Every node sends one long worm three hops clockwise: each link is
	// minimal for three worms but has only two adaptive lanes, so with
	// escapes refused the ring wedges into a cyclic wait.
	for n := 0; n < k; n++ {
		f.EnqueuePacket(n, (n+3)%k, 0)
	}
	e := sim.NewEngine()
	f.Register(e)
	e.Run(horizon)

	stall := e.Stall()
	if stall == nil {
		t.Fatalf("escape-disabled ring did not trip the watchdog (cycle %d, in flight %d)", e.Cycle(), f.InFlight())
	}
	if e.Cycle() >= horizon {
		t.Fatalf("watchdog fired only at the horizon (cycle %d)", e.Cycle())
	}
	// The watchdog fires on the first cycle past the budget, within it
	// counting from the last progress.
	if stalled := stall.Cycle - stall.StalledSince; stalled != budget+1 {
		t.Fatalf("watchdog fired after %d stalled cycles, want budget %d exceeded by one", stalled, budget)
	}
	snap, ok := stall.Report.(*wormhole.StallSnapshot)
	if !ok {
		t.Fatalf("stall report is %T, want *wormhole.StallSnapshot", stall.Report)
	}
	if len(snap.Blocked) == 0 {
		t.Fatalf("stall snapshot names no blocked header: %+v", snap)
	}
	for _, h := range snap.Blocked {
		if h.Router < 0 || h.Router >= k || int(h.Packet) < 0 || int(h.Packet) >= k {
			t.Fatalf("blocked header has impossible coordinates: %+v", h)
		}
		if h.Src != int(h.Packet) || h.Dst != (h.Src+3)%k {
			t.Fatalf("blocked header misattributes its packet: %+v", h)
		}
	}
	if msg := stall.Error(); !strings.Contains(msg, "possible deadlock") || !strings.Contains(msg, "blocked at router") {
		t.Fatalf("diagnosis does not read as a deadlock post-mortem:\n%s", msg)
	}
}
