package routing

import (
	"testing"

	"smart/internal/topology"
	"smart/internal/traffic"
)

func TestAscentPolicyNames(t *testing.T) {
	tree, _ := topology.NewTree(4, 2)
	cases := map[AscentPolicy]string{
		LeastLoaded:  "adaptive-2vc",
		RoundRobin:   "adaptive-2vc-round-robin",
		DigitAligned: "adaptive-2vc-digit-aligned",
	}
	for policy, want := range cases {
		a, err := NewTreeAdaptivePolicy(tree, 2, policy)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() != want {
			t.Errorf("policy %v Name() = %q, want %q", policy, a.Name(), want)
		}
	}
	if _, err := NewTreeAdaptivePolicy(tree, 2, AscentPolicy(9)); err == nil {
		t.Error("unknown policy accepted")
	}
	if LeastLoaded.String() != "least-loaded" || AscentPolicy(9).String() == "" {
		t.Error("String() labels wrong")
	}
}

// TestAllAscentPoliciesRouteMinimally: whatever the ascent choice, the
// path stays minimal and two-phase.
func TestAllAscentPoliciesRouteMinimally(t *testing.T) {
	for _, policy := range []AscentPolicy{LeastLoaded, RoundRobin, DigitAligned} {
		tree, _ := topology.NewTree(4, 3)
		alg, err := NewTreeAdaptivePolicy(tree, 2, policy)
		if err != nil {
			t.Fatal(err)
		}
		pattern, _ := traffic.NewUniform(tree.Nodes())
		f, inj, e, _ := buildSim(t, tree, alg, pattern, 0.02, 8)
		e.Run(3000)
		drainOrFail(t, f, inj, e, 50000)
		for i := range f.Packets {
			pk := &f.Packets[i]
			m := tree.NCALevel(int(pk.Src), int(pk.Dst))
			if int(pk.Hops) != 2*m+1 {
				t.Fatalf("policy %v: packet %d hops %d, want %d", policy, i, pk.Hops, 2*m+1)
			}
		}
	}
}

// TestDigitAlignedRoutesComplementConflictFree: under the complement
// permutation the digit-aligned ascent realizes Heller's congestion-free
// routing, so with a single virtual channel every packet should see an
// idle descending path. With one packet in flight per source the network
// latency equals the idle-path latency for every packet.
func TestDigitAlignedRoutesComplementConflictFree(t *testing.T) {
	tree, _ := topology.NewTree(4, 2)
	alg, err := NewTreeAdaptivePolicy(tree, 1, DigitAligned)
	if err != nil {
		t.Fatal(err)
	}
	pattern, _ := traffic.NewComplement(tree.Nodes())
	f, inj, e, _ := buildSim(t, tree, alg, pattern, 0.04, 8)
	e.Run(4000)
	drainOrFail(t, f, inj, e, 50000)
	// Complement on a 4-ary 2-tree: every pair has its NCA at the top
	// (the high digit always flips), so the idle-path latency is the
	// same for every packet: 2m+1 = 3 switch traversals at 3 cycles each
	// plus the 8-flit worm. Link-disjoint descents mean no packet can be
	// blocked behind another worm; the only possible extra delay is the
	// one-header-per-cycle routing arbiter when two headers reach a
	// switch in the same cycle, bounded by a few cycles per hop.
	// Residual delays come only from the one-header-per-cycle routing
	// arbiter and from a packet queueing behind its own flow's previous
	// worm (same source, same links), never from another flow: the tail
	// is bounded by one worm length and the mean stays within a couple of
	// cycles of ideal. On a congested pattern both bounds fail by a wide
	// margin.
	ideal := int64(3*3 + 8 - 1)
	var sum, count int64
	for i := range f.Packets {
		pk := &f.Packets[i]
		lat := pk.NetworkLatency()
		sum += lat
		count++
		if lat < ideal {
			t.Fatalf("packet %d latency %d below the physical minimum %d", i, lat, ideal)
		}
		if lat > ideal+3*8 {
			t.Fatalf("packet %d latency %d: foreign-worm blocking on a congestion-free pattern (ideal %d)", i, lat, ideal)
		}
	}
	if mean := float64(sum) / float64(count); mean > float64(ideal)+4 {
		t.Fatalf("mean latency %.1f too far above the conflict-free ideal %d", mean, ideal)
	}
}

// TestLeastLoadedBeatsObliviousUnderUniform: the paper's least-loaded
// selection should sustain at least as much uniform traffic as the
// oblivious digit-aligned ascent at a saturating load.
func TestLeastLoadedBeatsObliviousUnderUniform(t *testing.T) {
	accepted := func(policy AscentPolicy) float64 {
		tree, _ := topology.NewTree(4, 2)
		alg, _ := NewTreeAdaptivePolicy(tree, 2, policy)
		pattern, _ := traffic.NewUniform(tree.Nodes())
		f, _, e, _ := buildSim(t, tree, alg, pattern, 0.12, 8) // ~96% offered
		e.Run(1000)
		start := f.Counters().FlitsDelivered
		e.Run(6000)
		return float64(f.Counters().FlitsDelivered-start) / 5000 / float64(tree.Nodes())
	}
	ll, da := accepted(LeastLoaded), accepted(DigitAligned)
	if ll < da-0.02 {
		t.Fatalf("least-loaded accepted %.3f, digit-aligned %.3f: adaptive selection lost", ll, da)
	}
}
