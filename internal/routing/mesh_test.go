package routing

import (
	"testing"

	"smart/internal/topology"
	"smart/internal/traffic"
)

// TestMeshRoutingMinimalAndDeadlockFree runs the mesh entries of the
// shared case table (the wrap-free grid under both cube disciplines):
// paths must remain minimal and the network must drain under heavy load.
func TestMeshRoutingMinimalAndDeadlockFree(t *testing.T) {
	for _, tc := range Cases() {
		if tc.Family != "mesh" {
			continue
		}
		t.Run(tc.Name, func(t *testing.T) {
			top, alg, err := tc.Build()
			if err != nil {
				t.Fatal(err)
			}
			mesh := top.(*topology.Cube)
			pattern, _ := traffic.NewUniform(mesh.Nodes())
			f, inj, e, _ := buildSim(t, mesh, alg, pattern, 0.1, 8)
			e.Run(3000)
			drainOrFail(t, f, inj, e, 100000)
			for i := range f.Packets {
				pk := &f.Packets[i]
				if int(pk.Hops) != mesh.Distance(int(pk.Src), int(pk.Dst))-1 {
					t.Fatalf("packet %d hops %d, want minimal %d",
						i, pk.Hops, mesh.Distance(int(pk.Src), int(pk.Dst))-1)
				}
			}
		})
	}
}

// TestMeshDORStaysInFirstVirtualNetwork: without wrap-around links a
// dimension-order packet never changes class, so lanes 2 and 3 stay idle.
func TestMeshDORStaysInFirstVirtualNetwork(t *testing.T) {
	mesh, _ := topology.NewMesh(4, 2)
	alg := NewDOR(mesh)
	pattern, _ := traffic.NewUniform(mesh.Nodes())
	f, inj, e, tr := buildSim(t, mesh, alg, pattern, 0.05, 8)
	e.Run(3000)
	drainOrFail(t, f, inj, e, 50000)
	_ = f
	for pkt, path := range tr.paths {
		for _, h := range path {
			if h.outPort == mesh.NodePort() {
				continue
			}
			if h.outLane >= 2 {
				t.Fatalf("packet %d used second virtual network lane %d on the mesh", pkt, h.outLane)
			}
		}
	}
}

// TestMeshDuatoEscapeOnlyFirstClass: the escape discipline on the mesh
// only ever needs lane 2 (class 0).
func TestMeshDuatoEscapeOnlyFirstClass(t *testing.T) {
	mesh, _ := topology.NewMesh(4, 2)
	alg := NewDuato(mesh)
	pattern, _ := traffic.NewTranspose(mesh.Nodes())
	f, inj, e, tr := buildSim(t, mesh, alg, pattern, 0.15, 8)
	e.Run(4000)
	drainOrFail(t, f, inj, e, 100000)
	_ = f
	for pkt, path := range tr.paths {
		for _, h := range path {
			if h.outPort == mesh.NodePort() {
				continue
			}
			if h.outLane == 3 {
				t.Fatalf("packet %d used the second escape class on the mesh", pkt)
			}
		}
	}
}
