package routing

import (
	"testing"

	"smart/internal/sim"
	"smart/internal/topology"
	"smart/internal/traffic"
	"smart/internal/wormhole"
)

// hop records one routing decision for path-property checks.
type hop struct {
	router, outPort, outLane int
}

// pathTracer accumulates per-packet hop sequences.
type pathTracer struct {
	paths map[wormhole.PacketID][]hop
}

func newPathTracer() *pathTracer {
	return &pathTracer{paths: map[wormhole.PacketID][]hop{}}
}

func (t *pathTracer) HeaderRouted(cycle int64, pkt wormhole.PacketID, r, ip, il, op, ol int) {
	t.paths[pkt] = append(t.paths[pkt], hop{router: r, outPort: op, outLane: ol})
}

func (t *pathTracer) PacketDelivered(cycle int64, pkt wormhole.PacketID) {}

// buildSim assembles a fabric with the given topology and algorithm, an
// injector at the given load (packets/node/cycle), and a tracer.
func buildSim(t *testing.T, top topology.Topology, alg wormhole.RoutingAlgorithm, pattern traffic.Pattern, rate float64, flits int) (*wormhole.Fabric, *traffic.Injector, *sim.Engine, *pathTracer) {
	t.Helper()
	f, err := wormhole.NewFabric(top, wormhole.Config{
		VCs: alg.VCs(), BufDepth: 4, PacketFlits: flits, InjLanes: 1, WatchdogCycles: 5000,
	}, alg)
	if err != nil {
		t.Fatal(err)
	}
	tr := newPathTracer()
	f.Tracer = tr
	inj, err := traffic.NewInjector(f, pattern, rate, 12345)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	inj.Register(e)
	f.Register(e)
	return f, inj, e, tr
}

func drainOrFail(t *testing.T, f *wormhole.Fabric, inj *traffic.Injector, e *sim.Engine, maxExtra int64) {
	t.Helper()
	inj.Stop()
	deadline := e.Cycle() + maxExtra
	for e.Cycle() < deadline && !f.Drained() {
		e.Step()
	}
	if !f.Drained() {
		t.Fatalf("network failed to drain: %d flits in flight, %d packets queued", f.InFlight(), f.QueuedPackets())
	}
}

// --- Fat-tree adaptive routing ---

func TestNewTreeAdaptiveRejectsBadVCs(t *testing.T) {
	tree, _ := topology.NewTree(4, 2)
	if _, err := NewTreeAdaptive(tree, 0); err == nil {
		t.Fatal("accepted 0 virtual channels")
	}
}

func TestTreeAdaptiveNameAndVCs(t *testing.T) {
	tree, _ := topology.NewTree(4, 2)
	for _, vcs := range []int{1, 2, 4} {
		a, err := NewTreeAdaptive(tree, vcs)
		if err != nil {
			t.Fatal(err)
		}
		if a.VCs() != vcs {
			t.Fatalf("VCs() = %d, want %d", a.VCs(), vcs)
		}
		if vcs == 2 && a.Name() != "adaptive-2vc" {
			t.Fatalf("Name() = %q", a.Name())
		}
	}
}

// TestTreeAdaptivePathShape verifies §2's two-phase structure on every
// routed packet: an ascending phase using only up ports while the switch
// is not an ancestor of the destination, then a descending phase through
// exactly the forced down ports, with no re-ascent, and a total of
// 2m+1 switch traversals for an NCA at level m.
func TestTreeAdaptivePathShape(t *testing.T) {
	for _, vcs := range []int{1, 2, 4} {
		tree, err := topology.NewTree(4, 3)
		if err != nil {
			t.Fatal(err)
		}
		alg, err := NewTreeAdaptive(tree, vcs)
		if err != nil {
			t.Fatal(err)
		}
		pattern, _ := traffic.NewUniform(tree.Nodes())
		f, inj, e, tr := buildSim(t, tree, alg, pattern, 0.01, 8)
		e.Run(4000)
		drainOrFail(t, f, inj, e, 20000)

		checked := 0
		for pkt, path := range tr.paths {
			info := f.Packet(pkt)
			dst := int(info.Dst)
			m := tree.NCALevel(int(info.Src), dst)
			if len(path) != 2*m+1 {
				t.Fatalf("packet %d (NCA level %d) traversed %d switches, want %d", pkt, m, len(path), 2*m+1)
			}
			descending := false
			for i, h := range path {
				wantLevel := i
				if i > m {
					wantLevel = 2*m - i
				}
				if lv := tree.SwitchLevel(h.router); lv != wantLevel {
					t.Fatalf("packet %d hop %d at level %d, want %d", pkt, i, lv, wantLevel)
				}
				if tree.IsAncestor(h.router, dst) {
					descending = true
					if want := tree.DownPortTo(tree.SwitchLevel(h.router), dst); h.outPort != want {
						t.Fatalf("packet %d descending via port %d, want %d", pkt, h.outPort, want)
					}
				} else {
					if descending {
						t.Fatalf("packet %d re-ascended after starting descent", pkt)
					}
					if !tree.IsUpPort(h.outPort) {
						t.Fatalf("packet %d ascending via non-up port %d", pkt, h.outPort)
					}
				}
				if h.outLane >= vcs {
					t.Fatalf("packet %d used lane %d with only %d VCs", pkt, h.outLane, vcs)
				}
			}
			checked++
		}
		if checked < 50 {
			t.Fatalf("only %d packets checked; traffic generation too sparse", checked)
		}
	}
}

// TestTreeAdaptiveHopsMatchDistance asserts minimality end to end: the
// recorded switch count equals the topological minimum for every packet.
func TestTreeAdaptiveHopsMatchDistance(t *testing.T) {
	tree, _ := topology.NewTree(4, 2)
	alg, _ := NewTreeAdaptive(tree, 2)
	pattern, _ := traffic.NewBitReversal(tree.Nodes())
	f, inj, e, _ := buildSim(t, tree, alg, pattern, 0.02, 8)
	e.Run(3000)
	drainOrFail(t, f, inj, e, 20000)
	for i := range f.Packets {
		pk := &f.Packets[i]
		m := tree.NCALevel(int(pk.Src), int(pk.Dst))
		if int(pk.Hops) != 2*m+1 {
			t.Fatalf("packet %d hops %d, want %d", i, pk.Hops, 2*m+1)
		}
	}
}

// testPatterns is the paper's benchmark set, shared by the table-driven
// overload tests below.
var testPatterns = []struct {
	name string
	mk   func(n int) (traffic.Pattern, error)
}{
	{"uniform", func(n int) (traffic.Pattern, error) { return traffic.NewUniform(n) }},
	{"complement", func(n int) (traffic.Pattern, error) { return traffic.NewComplement(n) }},
	{"transpose", func(n int) (traffic.Pattern, error) { return traffic.NewTranspose(n) }},
	{"bitrev", func(n int) (traffic.Pattern, error) { return traffic.NewBitReversal(n) }},
}

// TestDeadlockFreeUnderOverload drives every case of the shared
// topology x algorithm table (Cases) with every paper pattern far beyond
// saturation — 0.15 packets/node/cycle of 8-flit packets — and requires
// the network to stay live (watchdog armed) and drain completely
// afterwards. This is the consolidated deadlock-freedom net for the tree
// VC variants, both cube disciplines and both mesh disciplines.
func TestDeadlockFreeUnderOverload(t *testing.T) {
	for _, tc := range Cases() {
		for _, p := range testPatterns {
			t.Run(tc.Name+"/"+p.name, func(t *testing.T) {
				top, alg, err := tc.Build()
				if err != nil {
					t.Fatal(err)
				}
				pattern, err := p.mk(top.Nodes())
				if err != nil {
					t.Fatal(err)
				}
				f, inj, e, _ := buildSim(t, top, alg, pattern, 0.15, 8)
				e.Run(3000)
				drainOrFail(t, f, inj, e, 100000)
				if f.Counters().PacketsDelivered == 0 {
					t.Fatal("delivered nothing under overload")
				}
			})
		}
	}
}

// --- Deterministic cube routing ---

func TestDORNameAndVCs(t *testing.T) {
	cube, _ := topology.NewCube(4, 2)
	a := NewDOR(cube)
	if a.Name() != "deterministic" || a.VCs() != 4 {
		t.Fatalf("Name=%q VCs=%d", a.Name(), a.VCs())
	}
}

// TestDORPathProperties replays every traced path and checks §3's
// discipline: strict dimension order, the unique deterministic direction,
// and the virtual-network switch exactly at the wrap-around crossing.
func TestDORPathProperties(t *testing.T) {
	cube, _ := topology.NewCube(6, 2)
	alg := NewDOR(cube)
	pattern, _ := traffic.NewUniform(cube.Nodes())
	f, inj, e, tr := buildSim(t, cube, alg, pattern, 0.01, 8)
	e.Run(4000)
	drainOrFail(t, f, inj, e, 30000)

	checked := 0
	for pkt, path := range tr.paths {
		info := f.Packet(pkt)
		dst := int(info.Dst)
		cur := int(info.Src)
		prevDim := -1
		wrapped := [2]bool{}
		for i, h := range path {
			if h.router != cur {
				t.Fatalf("packet %d hop %d at router %d, expected %d", pkt, i, h.router, cur)
			}
			if h.router == dst {
				if h.outPort != cube.NodePort() {
					t.Fatalf("packet %d at destination used port %d", pkt, h.outPort)
				}
				break
			}
			d, dir := cube.DimDirOf(h.outPort)
			if d < prevDim {
				t.Fatalf("packet %d violated dimension order: dim %d after %d", pkt, d, prevDim)
			}
			if d > prevDim {
				// Entering a new dimension: all lower dimensions must be
				// resolved.
				for dd := 0; dd < d; dd++ {
					if cube.Digit(cur, dd) != cube.Digit(dst, dd) {
						t.Fatalf("packet %d entered dim %d with dim %d unresolved", pkt, d, dd)
					}
				}
			}
			prevDim = d
			if want := cube.DeterministicDir(cur, dst, d); dir != want {
				t.Fatalf("packet %d moved dir %d in dim %d, want %d", pkt, dir, d, want)
			}
			wantClass := 0
			if wrapped[d] {
				wantClass = 1
			}
			if h.outLane/2 != wantClass {
				t.Fatalf("packet %d used lane %d in class %d territory", pkt, h.outLane, wantClass)
			}
			if cube.CrossesWrap(cur, d, dir) {
				wrapped[d] = true
			}
			cur = cube.Neighbor(cur, d, dir)
		}
		if int(info.Hops) != cube.Distance(int(info.Src), dst)-1 {
			t.Fatalf("packet %d hops %d, want torus distance %d + ejection", pkt, info.Hops, cube.Distance(int(info.Src), dst)-2)
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d packets checked", checked)
	}
}

// --- Duato adaptive cube routing ---

func TestDuatoNameAndVCs(t *testing.T) {
	cube, _ := topology.NewCube(4, 2)
	a := NewDuato(cube)
	if a.Name() != "duato" || a.VCs() != 4 {
		t.Fatalf("Name=%q VCs=%d", a.Name(), a.VCs())
	}
}

// TestDuatoPathProperties checks §3's adaptive discipline: every hop is
// minimal (the torus distance to the destination decreases by one),
// escape lanes appear only on the dimension-order port with the correct
// wrap class, and adaptive lanes only on minimal ports.
func TestDuatoPathProperties(t *testing.T) {
	cube, _ := topology.NewCube(6, 2)
	alg := NewDuato(cube)
	pattern, _ := traffic.NewUniform(cube.Nodes())
	f, inj, e, tr := buildSim(t, cube, alg, pattern, 0.02, 8)
	e.Run(4000)
	drainOrFail(t, f, inj, e, 30000)

	checked, escapes := 0, 0
	for pkt, path := range tr.paths {
		info := f.Packet(pkt)
		dst := int(info.Dst)
		cur := int(info.Src)
		wrapped := [2]bool{}
		for i, h := range path {
			if h.router != cur {
				t.Fatalf("packet %d hop %d at router %d, expected %d", pkt, i, h.router, cur)
			}
			if h.router == dst {
				if h.outPort != cube.NodePort() {
					t.Fatalf("packet %d at destination used port %d", pkt, h.outPort)
				}
				break
			}
			d, dir := cube.DimDirOf(h.outPort)
			plus, minus := cube.MinimalDirs(cur, dst, d)
			minimal := (dir == topology.Plus && plus) || (dir == topology.Minus && minus)
			if !minimal {
				t.Fatalf("packet %d took non-minimal hop at router %d dim %d dir %d", pkt, cur, d, dir)
			}
			if h.outLane >= duatoEscapeBase {
				escapes++
				wantDim := lowestDiffDim(cube, cur, dst)
				wantDir := cube.DeterministicDir(cur, dst, wantDim)
				if d != wantDim || dir != wantDir {
					t.Fatalf("packet %d escape hop not on the dimension-order path", pkt)
				}
				wantClass := 0
				if wrapped[d] {
					wantClass = 1
				}
				if h.outLane != duatoEscapeBase+wantClass {
					t.Fatalf("packet %d escape lane %d, want class %d", pkt, h.outLane, wantClass)
				}
			}
			if cube.CrossesWrap(cur, d, dir) {
				wrapped[d] = true
			}
			cur = cube.Neighbor(cur, d, dir)
		}
		if int(info.Hops) != cube.Distance(int(info.Src), dst)-1 {
			t.Fatalf("packet %d hops %d not minimal", pkt, info.Hops)
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d packets checked", checked)
	}
}

// TestDuatoUsesEscapesAndReentersAdaptive drives the network into heavy
// contention and checks (a) escape lanes actually get used, and (b) at
// least one packet re-enters the adaptive lanes after an escape hop — the
// non-monotonic allocation §3 highlights.
func TestDuatoUsesEscapesAndReentersAdaptive(t *testing.T) {
	cube, _ := topology.NewCube(8, 2)
	alg := NewDuato(cube)
	pattern, _ := traffic.NewTranspose(cube.Nodes())
	f, inj, e, tr := buildSim(t, cube, alg, pattern, 0.1, 8)
	e.Run(8000)
	drainOrFail(t, f, inj, e, 100000)
	_ = f

	escapeHops, reentries := 0, 0
	for _, path := range tr.paths {
		escaped := false
		for _, h := range path {
			if h.outPort == cube.NodePort() {
				continue
			}
			if h.outLane >= duatoEscapeBase {
				escaped = true
				escapeHops++
			} else if escaped {
				reentries++
				escaped = false
			}
		}
	}
	if escapeHops == 0 {
		t.Fatal("no escape-channel hops under heavy contention")
	}
	if reentries == 0 {
		t.Fatal("no packet re-entered the adaptive channels after an escape (non-monotonicity unexercised)")
	}
}

// TestDuatoOddRadix exercises the tie-free odd-k case, where every ring
// offset has a unique minimal direction.
func TestDuatoOddRadix(t *testing.T) {
	cube, _ := topology.NewCube(5, 2)
	alg := NewDuato(cube)
	pattern, _ := traffic.NewUniform(cube.Nodes())
	f, inj, e, _ := buildSim(t, cube, alg, pattern, 0.05, 8)
	e.Run(3000)
	drainOrFail(t, f, inj, e, 50000)
	for i := range f.Packets {
		pk := &f.Packets[i]
		if int(pk.Hops) != cube.Distance(int(pk.Src), int(pk.Dst))-1 {
			t.Fatalf("packet %d not minimal on odd radix", i)
		}
	}
}

// TestBestLanePrefersCredits checks the lane-selection helper through a
// real fabric: with all lanes free it picks the one with the most
// credits.
func TestBestLanePrefersCredits(t *testing.T) {
	cube, _ := topology.NewCube(4, 2)
	alg := NewDuato(cube)
	f, err := wormhole.NewFabric(cube, wormhole.Config{VCs: 4, BufDepth: 4, PacketFlits: 4, InjLanes: 1}, alg)
	if err != nil {
		t.Fatal(err)
	}
	lane, ok := bestLane(f, 0, 0, 0, 4)
	if !ok || lane != 0 {
		t.Fatalf("fresh fabric bestLane = (%d,%v), want lane 0", lane, ok)
	}
	lane, ok = bestLane(f, 0, 0, 2, 4)
	if !ok || lane != 2 {
		t.Fatalf("range-restricted bestLane = (%d,%v), want lane 2", lane, ok)
	}
	lane, ok = bestLane(f, 0, 0, 2, 2)
	if ok {
		t.Fatalf("empty range returned lane %d", lane)
	}
}
