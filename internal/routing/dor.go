package routing

import (
	"fmt"

	"smart/internal/topology"
	"smart/internal/wormhole"
)

// Cube virtual-channel layout shared by the two cube disciplines. The
// deterministic algorithm uses all four lanes as two two-lane virtual
// networks; Duato's algorithm uses lanes 0-1 as adaptive channels and
// lanes 2-3 as the escape channels, one per virtual network.
const (
	cubeVCs = 4
	// Deterministic: lanes {0,1} form virtual network 0, lanes {2,3}
	// virtual network 1.
	detNetLanes = 2
	// Duato: adaptive lanes are {0,1}; escape lanes are {2,3}, one per
	// Dally-Seitz class.
	duatoAdaptiveLanes = 2
	duatoEscapeBase    = 2
)

// DOR is the deterministic algorithm of §3: dimension-order routing over a
// unique minimal path, with deadlock caused by the wrap-around connections
// avoided by doubling the virtual channels into two virtual networks
// (Dally-Seitz). A packet starts every dimension in the first virtual
// network and moves to the second upon crossing that dimension's
// wrap-around connection. Four virtual channels per physical link: two per
// virtual network, so the routing freedom is F = 2 (the lane choice within
// the current network).
type DOR struct {
	cube *topology.Cube
}

// NewDOR returns the deterministic cube algorithm.
func NewDOR(cube *topology.Cube) *DOR { return &DOR{cube: cube} }

// Name implements wormhole.RoutingAlgorithm.
func (a *DOR) Name() string { return "deterministic" }

// VCs implements wormhole.RoutingAlgorithm.
func (a *DOR) VCs() int { return cubeVCs }

// Route implements wormhole.RoutingAlgorithm.
//
//smartlint:hotpath
func (a *DOR) Route(f wormhole.Router, r, inPort, inLane int, pkt wormhole.PacketID) (int, int, bool) {
	info := f.Packet(pkt)
	dst := int(info.Dst)
	if r == dst {
		// Ejection: any free lane of the node port.
		lane, ok := bestLane(f, r, a.cube.NodePort(), 0, cubeVCs)
		return a.cube.NodePort(), lane, ok
	}
	d := lowestDiffDim(a.cube, r, dst)
	dir := a.cube.DeterministicDir(r, dst, d)
	port := topology.PortOf(d, dir)
	class := int(info.RouteBits>>uint(d)) & 1
	lane, ok := bestLane(f, r, port, class*detNetLanes, class*detNetLanes+detNetLanes)
	if !ok {
		return 0, 0, false
	}
	if a.cube.CrossesWrap(r, d, dir) {
		info.RouteBits |= 1 << uint(d)
	}
	return port, lane, true
}

// lowestDiffDim returns the lowest dimension in which cur and dst differ;
// it must not be called with cur == dst.
//
//smartlint:hotpath
func lowestDiffDim(c *topology.Cube, cur, dst int) int {
	for d := 0; d < c.N; d++ {
		if c.Digit(cur, d) != c.Digit(dst, d) {
			return d
		}
	}
	panic(fmt.Sprintf("routing: lowestDiffDim(%d, %d) with equal nodes", cur, dst))
}

var _ wormhole.RoutingAlgorithm = (*DOR)(nil)
