package routing

import (
	"smart/internal/topology"
	"smart/internal/wormhole"
)

// Duato is the minimal adaptive algorithm of §3 built on Duato's
// methodology: four virtual channels per link, two adaptive channels on
// which packets may follow any minimal path, and two deterministic escape
// channels used when the adaptive choice is limited by contention. The
// escape channels follow dimension-order routing with the two-class
// wrap-around discipline, so they form a connected, deadlock-free
// subnetwork; because a packet in an escape channel may re-enter the
// adaptive channels at the next switch, the channel allocation policy is
// non monotonic. The routing freedom is F = 6: four adaptive channels in
// the two minimal directions plus the two deterministic channels.
type Duato struct {
	cube *topology.Cube
	// tie rotates the starting point of the candidate scan per router for
	// fair tie-breaking among equally loaded adaptive ports. Entry r is
	// only touched while routing at router r, so a sharded fabric's
	// workers never contend on it.
	//
	//smartlint:shardindexed
	tie []int
	// rerouted[r] counts fault detours decided at router r: escape-lane
	// direction reversals around a severed dimension-order hop. Entry r
	// is only touched while routing at router r.
	//
	//smartlint:shardindexed
	rerouted []int64
}

// Degraded-mode scratch state in PacketInfo.RouteBits (beyond the
// per-dimension wrap-class bits 0..n-1): when the dimension-order escape
// hop of dimension d is severed, the packet reverses direction and locks
// the dimension — bit lockBase+d set, bit lockDirBase+d holding the
// locked direction — so every later switch keeps routing d the same way
// until the digit resolves. Without the lock a worm would ping-pong
// across the live link next to the cut forever, each hop counting as
// watchdog progress. The layout caps fault-aware cube routing at n <= 8
// dimensions (enforced where configs are built); without faults no lock
// is ever set and the discipline is bit-identical to the clean one.
const (
	lockBase    = 8
	lockDirBase = 16
)

// NewDuato returns the adaptive cube algorithm.
func NewDuato(cube *topology.Cube) *Duato {
	return &Duato{
		cube:     cube,
		tie:      make([]int, cube.Routers()),
		rerouted: make([]int64, cube.Routers()),
	}
}

// Rerouted returns the total fault detours across all routers; telemetry
// reports it next to the fault-stall counters.
func (a *Duato) Rerouted() int64 {
	var n int64
	for _, v := range a.rerouted {
		n += v
	}
	return n
}

// locked reports whether dimension d is direction-locked for the packet.
func locked(info *wormhole.PacketInfo, d int) bool {
	return info.RouteBits&(1<<uint(lockBase+d)) != 0
}

// lockedDir returns the locked direction of dimension d.
func lockedDir(info *wormhole.PacketInfo, d int) int {
	if info.RouteBits&(1<<uint(lockDirBase+d)) != 0 {
		return topology.Plus
	}
	return topology.Minus
}

// lock records a direction lock on dimension d.
func lock(info *wormhole.PacketInfo, d int, dir int) {
	info.RouteBits |= 1 << uint(lockBase+d)
	if dir == topology.Plus {
		info.RouteBits |= 1 << uint(lockDirBase+d)
	} else {
		info.RouteBits &^= 1 << uint(lockDirBase+d)
	}
}

// Name implements wormhole.RoutingAlgorithm.
func (a *Duato) Name() string { return "duato" }

// VCs implements wormhole.RoutingAlgorithm.
func (a *Duato) VCs() int { return cubeVCs }

// Route implements wormhole.RoutingAlgorithm.
//
//smartlint:hotpath
func (a *Duato) Route(f wormhole.Router, r, inPort, inLane int, pkt wormhole.PacketID) (int, int, bool) {
	info := f.Packet(pkt)
	dst := int(info.Dst)
	if r == dst {
		lane, ok := bestLane(f, r, a.cube.NodePort(), 0, cubeVCs)
		return a.cube.NodePort(), lane, ok
	}

	// Adaptive channels first: any output port on a minimal path —
	// or, for a direction-locked dimension, only the locked detour
	// direction — scored by the number of free adaptive lanes, scan
	// origin rotated for fairness. Fault-masked ports are skipped. The
	// candidate scratch lives on the stack (2*N is at most 80 for any
	// cube topology.Pow admits) so concurrent Route calls from a
	// sharded fabric's workers share no buffer.
	var pbuf [80]int
	ports := a.candidatePorts(info, r, dst, pbuf[:0])
	start := a.tie[r]
	a.tie[r]++
	bestPort, bestFree := -1, 0
	for i := 0; i < len(ports); i++ {
		port := ports[(start+i)%len(ports)]
		if !f.LinkUp(r, port) {
			continue
		}
		if free := f.FreeLanes(r, port, 0, duatoAdaptiveLanes); free > bestFree {
			bestPort, bestFree = port, free
		}
	}
	if bestPort >= 0 {
		lane, ok := bestLane(f, r, bestPort, 0, duatoAdaptiveLanes)
		if ok {
			a.noteWrap(info, r, bestPort)
			return bestPort, lane, true
		}
	}

	// Escape channel: the dimension-order hop in the class given by the
	// packet's wrap-around history on that dimension. A locked dimension
	// escapes along its locked direction only.
	d := lowestDiffDim(a.cube, r, dst)
	class := int(info.RouteBits>>uint(d)) & 1
	lane := duatoEscapeBase + class
	if locked(info, d) {
		port := topology.PortOf(d, lockedDir(info, d))
		if !f.LinkUp(r, port) || !f.OutLaneFree(r, port, lane) {
			return 0, 0, false
		}
		a.noteWrap(info, r, port)
		return port, lane, true
	}
	dir := a.cube.DeterministicDir(r, dst, d)
	port := topology.PortOf(d, dir)
	if f.LinkUp(r, port) {
		if !f.OutLaneFree(r, port, lane) {
			return 0, 0, false
		}
		a.noteWrap(info, r, port)
		return port, lane, true
	}
	// The dimension-order hop is severed: reverse direction and lock
	// the dimension so every later switch keeps the detour heading
	// until the digit resolves — without the lock the worm would
	// ping-pong across the live link beside the cut forever, each hop
	// registering watchdog progress. The reversal leaves the escape
	// subnetwork's acyclic-dependency argument, so a faulted run can
	// genuinely deadlock; that is the watchdog's arm of the contract.
	rev := topology.Minus
	if dir == topology.Minus {
		rev = topology.Plus
	}
	rport := topology.PortOf(d, rev)
	if !f.LinkUp(r, rport) || !f.OutLaneFree(r, rport, lane) {
		return 0, 0, false
	}
	lock(info, d, rev)
	a.noteWrap(info, r, rport)
	a.rerouted[r]++
	return rport, lane, true
}

// candidatePorts lists the adaptive candidates: for every unresolved
// dimension, the minimal direction(s) — or, when the dimension is
// direction-locked, exactly the locked direction. Without faults no
// dimension is ever locked, so the list equals minimalPorts in content
// and order.
//
//smartlint:hotpath
func (a *Duato) candidatePorts(info *wormhole.PacketInfo, cur, dst int, ports []int) []int {
	c := a.cube
	for d := 0; d < c.N; d++ {
		if c.Digit(cur, d) == c.Digit(dst, d) {
			continue
		}
		if locked(info, d) {
			ports = append(ports, topology.PortOf(d, lockedDir(info, d)))
			continue
		}
		plus, minus := c.MinimalDirs(cur, dst, d)
		if plus {
			ports = append(ports, topology.PortOf(d, topology.Plus))
		}
		if minus {
			ports = append(ports, topology.PortOf(d, topology.Minus))
		}
	}
	return ports
}

// noteWrap records a wrap-around crossing in the packet's per-dimension
// class bits; the escape discipline consults them at later switches.
//
//smartlint:hotpath
func (a *Duato) noteWrap(info *wormhole.PacketInfo, r, port int) {
	d, dir := a.cube.DimDirOf(port)
	if a.cube.CrossesWrap(r, d, dir) {
		info.RouteBits |= 1 << uint(d)
	}
}

var _ wormhole.RoutingAlgorithm = (*Duato)(nil)
