package routing

import (
	"smart/internal/topology"
	"smart/internal/wormhole"
)

// Duato is the minimal adaptive algorithm of §3 built on Duato's
// methodology: four virtual channels per link, two adaptive channels on
// which packets may follow any minimal path, and two deterministic escape
// channels used when the adaptive choice is limited by contention. The
// escape channels follow dimension-order routing with the two-class
// wrap-around discipline, so they form a connected, deadlock-free
// subnetwork; because a packet in an escape channel may re-enter the
// adaptive channels at the next switch, the channel allocation policy is
// non monotonic. The routing freedom is F = 6: four adaptive channels in
// the two minimal directions plus the two deterministic channels.
type Duato struct {
	cube *topology.Cube
	// tie rotates the starting point of the candidate scan per router for
	// fair tie-breaking among equally loaded adaptive ports. Entry r is
	// only touched while routing at router r, so a sharded fabric's
	// workers never contend on it.
	//
	//smartlint:shardindexed
	tie []int
}

// NewDuato returns the adaptive cube algorithm.
func NewDuato(cube *topology.Cube) *Duato {
	return &Duato{
		cube: cube,
		tie:  make([]int, cube.Routers()),
	}
}

// Name implements wormhole.RoutingAlgorithm.
func (a *Duato) Name() string { return "duato" }

// VCs implements wormhole.RoutingAlgorithm.
func (a *Duato) VCs() int { return cubeVCs }

// Route implements wormhole.RoutingAlgorithm.
//
//smartlint:hotpath
func (a *Duato) Route(f wormhole.Router, r, inPort, inLane int, pkt wormhole.PacketID) (int, int, bool) {
	info := f.Packet(pkt)
	dst := int(info.Dst)
	if r == dst {
		lane, ok := bestLane(f, r, a.cube.NodePort(), 0, cubeVCs)
		return a.cube.NodePort(), lane, ok
	}

	// Adaptive channels first: any output port on a minimal path, scored
	// by the number of free adaptive lanes, scan origin rotated for
	// fairness. The candidate scratch lives on the stack (2*N is at most
	// 80 for any cube topology.Pow admits) so concurrent Route calls
	// from a sharded fabric's workers share no buffer.
	var pbuf [80]int
	ports := minimalPorts(a.cube, r, dst, pbuf[:0])
	start := a.tie[r]
	a.tie[r]++
	bestPort, bestFree := -1, 0
	for i := 0; i < len(ports); i++ {
		port := ports[(start+i)%len(ports)]
		if free := f.FreeLanes(r, port, 0, duatoAdaptiveLanes); free > bestFree {
			bestPort, bestFree = port, free
		}
	}
	if bestPort >= 0 {
		lane, ok := bestLane(f, r, bestPort, 0, duatoAdaptiveLanes)
		if ok {
			a.noteWrap(info, r, bestPort)
			return bestPort, lane, true
		}
	}

	// Escape channel: the dimension-order hop in the class given by the
	// packet's wrap-around history on that dimension.
	d := lowestDiffDim(a.cube, r, dst)
	dir := a.cube.DeterministicDir(r, dst, d)
	port := topology.PortOf(d, dir)
	class := int(info.RouteBits>>uint(d)) & 1
	lane := duatoEscapeBase + class
	if !f.OutLaneFree(r, port, lane) {
		return 0, 0, false
	}
	a.noteWrap(info, r, port)
	return port, lane, true
}

// noteWrap records a wrap-around crossing in the packet's per-dimension
// class bits; the escape discipline consults them at later switches.
//
//smartlint:hotpath
func (a *Duato) noteWrap(info *wormhole.PacketInfo, r, port int) {
	d, dir := a.cube.DimDirOf(port)
	if a.cube.CrossesWrap(r, d, dir) {
		info.RouteBits |= 1 << uint(d)
	}
}

// minimalPorts lists the output ports lying on a minimal path from cur to
// dst — one or (at the half-way point of an even ring) two directions for
// every dimension whose coordinates differ — appending into the provided
// buffer.
//
//smartlint:hotpath
func minimalPorts(c *topology.Cube, cur, dst int, ports []int) []int {
	for d := 0; d < c.N; d++ {
		plus, minus := c.MinimalDirs(cur, dst, d)
		if plus {
			ports = append(ports, topology.PortOf(d, topology.Plus))
		}
		if minus {
			ports = append(ports, topology.PortOf(d, topology.Minus))
		}
	}
	return ports
}

var _ wormhole.RoutingAlgorithm = (*Duato)(nil)
