package routing

import (
	"fmt"

	"smart/internal/topology"
	"smart/internal/wormhole"
)

// Case names one topology-family x routing-algorithm combination at a
// concrete test size. The table returned by Cases is shared by the
// in-package stress and mesh suites and by the differential-oracle
// harness (internal/oracle), so an algorithm added to the table is
// automatically exercised by every tier of the verification pyramid.
type Case struct {
	// Name labels subtests; it is unique within Cases.
	Name string
	// Family is "tree", "cube" or "mesh"; K and N size it (k-ary n-tree
	// or k-ary n-cube).
	Family string
	K, N   int
	// Algorithm is "adaptive" on the tree, "deterministic" or "duato" on
	// the cube and mesh. VCs applies to the tree algorithm only; the cube
	// disciplines fix their own virtual-channel count.
	Algorithm string
	VCs       int
}

// Build constructs fresh topology and algorithm instances for the case.
// Algorithms carry per-fabric arbitration state (round-robin tie
// rotations), so every simulator needs its own instance: differential
// harnesses call Build once per side.
func (c Case) Build() (topology.Topology, wormhole.RoutingAlgorithm, error) {
	switch c.Family {
	case "tree":
		tr, err := topology.NewTree(c.K, c.N)
		if err != nil {
			return nil, nil, err
		}
		alg, err := NewTreeAdaptive(tr, c.VCs)
		if err != nil {
			return nil, nil, err
		}
		return tr, alg, nil
	case "cube", "mesh":
		var (
			cu  *topology.Cube
			err error
		)
		if c.Family == "mesh" {
			cu, err = topology.NewMesh(c.K, c.N)
		} else {
			cu, err = topology.NewCube(c.K, c.N)
		}
		if err != nil {
			return nil, nil, err
		}
		switch c.Algorithm {
		case "deterministic":
			return cu, NewDOR(cu), nil
		case "duato":
			return cu, NewDuato(cu), nil
		default:
			return nil, nil, fmt.Errorf("routing: unknown cube algorithm %q", c.Algorithm)
		}
	default:
		return nil, nil, fmt.Errorf("routing: unknown topology family %q", c.Family)
	}
}

// Cases returns the canonical table: every routing discipline over a
// test-sized instance of each family it runs on, in a fixed order.
func Cases() []Case {
	return []Case{
		{Name: "tree-adaptive-1vc", Family: "tree", K: 4, N: 2, Algorithm: "adaptive", VCs: 1},
		{Name: "tree-adaptive-2vc", Family: "tree", K: 4, N: 2, Algorithm: "adaptive", VCs: 2},
		{Name: "tree-adaptive-4vc", Family: "tree", K: 4, N: 2, Algorithm: "adaptive", VCs: 4},
		{Name: "cube-deterministic", Family: "cube", K: 4, N: 2, Algorithm: "deterministic"},
		{Name: "cube-duato", Family: "cube", K: 4, N: 2, Algorithm: "duato"},
		{Name: "mesh-deterministic", Family: "mesh", K: 4, N: 2, Algorithm: "deterministic"},
		{Name: "mesh-duato", Family: "mesh", K: 4, N: 2, Algorithm: "duato"},
	}
}
