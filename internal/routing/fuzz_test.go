package routing

import (
	"testing"

	"smart/internal/topology"
	"smart/internal/wormhole"
)

// freeRouter is a wormhole.Router with every output lane free and fully
// credited: the contention-free view under which both cube disciplines
// and the fat-tree algorithm must produce a minimal path with no stalls.
// Fuzzing the walk over arbitrary (k, n, src, dst) explores the full
// coordinate space of the routing functions without simulating a fabric.
type freeRouter struct {
	info wormhole.PacketInfo
}

func (f *freeRouter) Packet(wormhole.PacketID) *wormhole.PacketInfo { return &f.info }
func (f *freeRouter) Dest(wormhole.PacketID) int                    { return int(f.info.Dst) }
func (f *freeRouter) OutLaneFree(r, port, lane int) bool            { return true }
func (f *freeRouter) OutLaneCredits(r, port, lane int) int          { return 4 }
func (f *freeRouter) FreeLanes(r, port, lo, hi int) int             { return hi - lo }
func (f *freeRouter) LinkUp(r, port int) bool                       { return true }

// walkFreeRoute drives one packet from src to dst through the routing
// algorithm over an all-free network, asserting at every switch that the
// decision succeeds, lands on a live port with a legal lane, and that the
// walk terminates at the destination in exactly the minimal number of
// routing decisions (Distance - 1: one per switch traversal including the
// ejection decision).
func walkFreeRoute(t *testing.T, top topology.Topology, alg wormhole.RoutingAlgorithm, src, dst int) {
	t.Helper()
	fr := &freeRouter{info: wormhole.PacketInfo{Src: int32(src), Dst: int32(dst)}}
	at := top.NodeAttach(src)
	cur, inPort, inLane := at.Router, at.Port, 0
	minimal := top.Distance(src, dst) - 1
	decisions := 0
	for {
		port, lane, ok := alg.Route(fr, cur, inPort, inLane, 0)
		if !ok {
			t.Fatalf("%s stalled at router %d on an all-free network (packet %d->%d)", alg.Name(), cur, src, dst)
		}
		if lane < 0 || lane >= alg.VCs() {
			t.Fatalf("%s chose lane %d outside [0,%d) at router %d", alg.Name(), lane, alg.VCs(), cur)
		}
		ports := top.RouterPorts(cur)
		if port < 0 || port >= len(ports) {
			t.Fatalf("%s chose port %d outside the %d-port router %d", alg.Name(), port, len(ports), cur)
		}
		decisions++
		if decisions > minimal {
			t.Fatalf("%s exceeded the minimal %d decisions for %d->%d (at router %d)", alg.Name(), minimal, src, dst, cur)
		}
		switch p := ports[port]; p.Kind {
		case topology.PortNode:
			if p.Peer != dst {
				t.Fatalf("%s ejected packet %d->%d at node %d", alg.Name(), src, dst, p.Peer)
			}
			if decisions != minimal {
				t.Fatalf("%s delivered %d->%d in %d decisions, want minimal %d", alg.Name(), src, dst, decisions, minimal)
			}
			return
		case topology.PortRouter:
			cur, inPort, inLane = p.Peer, p.PeerPort, lane
		default:
			t.Fatalf("%s routed packet %d->%d into unused port %d of router %d", alg.Name(), src, dst, port, cur)
		}
	}
}

// FuzzRouteCube explores both cube disciplines over fuzzed radix,
// dimension and endpoint coordinates, on the torus and on the mesh.
func FuzzRouteCube(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint16(0), uint16(5), false, false)
	f.Add(uint8(4), uint8(2), uint16(3), uint16(12), true, false)
	f.Add(uint8(2), uint8(3), uint16(0), uint16(7), true, false)
	f.Add(uint8(5), uint8(2), uint16(24), uint16(0), false, true)
	f.Add(uint8(8), uint8(1), uint16(1), uint16(6), true, true)
	f.Add(uint8(3), uint8(3), uint16(13), uint16(26), false, false)
	f.Fuzz(func(t *testing.T, kb, nb uint8, srcw, dstw uint16, duato, mesh bool) {
		k := 2 + int(kb)%7
		n := 1 + int(nb)%3
		var (
			cube *topology.Cube
			err  error
		)
		if mesh {
			cube, err = topology.NewMesh(k, n)
		} else {
			cube, err = topology.NewCube(k, n)
		}
		if err != nil {
			t.Skip()
		}
		src := int(srcw) % cube.Nodes()
		dst := int(dstw) % cube.Nodes()
		if src == dst {
			t.Skip()
		}
		var alg wormhole.RoutingAlgorithm
		if duato {
			alg = NewDuato(cube)
		} else {
			alg = NewDOR(cube)
		}
		walkFreeRoute(t, cube, alg, src, dst)
	})
}

// FuzzRouteTree explores the fat-tree adaptive algorithm over fuzzed
// arity, depth, virtual-channel count and endpoint pairs.
func FuzzRouteTree(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint16(0), uint16(15), uint8(2))
	f.Add(uint8(2), uint8(3), uint16(1), uint16(6), uint8(1))
	f.Add(uint8(2), uint8(2), uint16(63), uint16(0), uint8(4))
	f.Add(uint8(3), uint8(2), uint16(4), uint16(5), uint8(3))
	f.Add(uint8(2), uint8(1), uint16(0), uint16(1), uint8(1))
	f.Fuzz(func(t *testing.T, kb, nb uint8, srcw, dstw uint16, vb uint8) {
		k := 2 + int(kb)%3
		n := 1 + int(nb)%3
		vcs := 1 + int(vb)%4
		tree, err := topology.NewTree(k, n)
		if err != nil {
			t.Skip()
		}
		alg, err := NewTreeAdaptive(tree, vcs)
		if err != nil {
			t.Skip()
		}
		src := int(srcw) % tree.Nodes()
		dst := int(dstw) % tree.Nodes()
		if src == dst {
			t.Skip()
		}
		walkFreeRoute(t, tree, alg, src, dst)
	})
}
