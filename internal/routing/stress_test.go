package routing

import (
	"testing"

	"smart/internal/sim"
	"smart/internal/topology"
	"smart/internal/traffic"
	"smart/internal/wormhole"
)

// TestInvariantsUnderAllAlgorithms drives every routing discipline with
// bursty traffic while checking the fabric's structural invariants
// (credit conservation, binding reciprocity) every cycle — the deepest
// correctness net in the suite.
func TestInvariantsUnderAllAlgorithms(t *testing.T) {
	for _, tc := range Cases() {
		t.Run(tc.Name, func(t *testing.T) {
			top, alg, err := tc.Build()
			if err != nil {
				t.Fatal(err)
			}
			f, err := wormhole.NewFabric(top, wormhole.Config{
				VCs: alg.VCs(), BufDepth: 4, PacketFlits: 8, InjLanes: 1, WatchdogCycles: 20000,
			}, alg)
			if err != nil {
				t.Fatal(err)
			}
			pattern, err := traffic.NewUniform(top.Nodes())
			if err != nil {
				t.Fatal(err)
			}
			inj, err := traffic.NewInjector(f, pattern, 0.08, 77)
			if err != nil {
				t.Fatal(err)
			}
			e := sim.NewEngine()
			inj.Register(e)
			f.Register(e)
			for cycle := 0; cycle < 1500; cycle++ {
				e.Step()
				if err := f.CheckInvariants(); err != nil {
					t.Fatalf("cycle %d: %v", cycle, err)
				}
			}
			inj.Stop()
			for !f.Drained() {
				e.Step()
				if err := f.CheckInvariants(); err != nil {
					t.Fatalf("drain: %v", err)
				}
				if e.Cycle() > 200000 {
					t.Fatal("drain did not complete")
				}
			}
		})
	}
}

// TestDrainedAsEngineStopCondition wires fabric drainage into the engine
// stop machinery.
func TestDrainedAsEngineStopCondition(t *testing.T) {
	tr, _ := topology.NewTree(4, 2)
	alg, _ := NewTreeAdaptive(tr, 2)
	f, err := wormhole.NewFabric(tr, wormhole.Config{VCs: 2, BufDepth: 4, PacketFlits: 8, InjLanes: 1}, alg)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	f.Register(e)
	f.EnqueuePacket(0, 15, 0)
	f.EnqueuePacket(3, 12, 0)
	e.AddStop(func(int64) bool { return f.Drained() })
	stopped := e.Run(100000)
	if stopped == 100000 {
		t.Fatal("stop condition never fired")
	}
	if !f.Drained() {
		t.Fatal("engine stopped before drainage")
	}
}
