// Package routing implements the paper's three routing disciplines: the
// minimal adaptive algorithm for k-ary n-trees with one, two or four
// virtual channels (§2), dimension-order deterministic routing for k-ary
// n-cubes with two virtual networks (§3, Dally-Seitz), and the minimal
// adaptive algorithm with escape channels for k-ary n-cubes (§3, Duato's
// methodology with non-monotonic channel re-entry).
package routing

import (
	"fmt"

	"smart/internal/topology"
	"smart/internal/wormhole"
)

// AscentPolicy selects how the ascending phase chooses among the k up
// links, all of which reach a nearest common ancestor. The paper's
// algorithm uses LeastLoaded; the other policies ablate that design
// choice.
type AscentPolicy int

const (
	// LeastLoaded picks the up link with the maximum number of free
	// virtual channels, with a fair rotating tie-break (§2).
	LeastLoaded AscentPolicy = iota
	// RoundRobin cycles through the up links regardless of load,
	// skipping links with no free lane.
	RoundRobin
	// DigitAligned always takes the up port named by the source's digit
	// at the current level — the oblivious assignment that routes the
	// congestion-free permutations optimally, at the cost of all
	// adaptivity under random traffic.
	DigitAligned
)

// String names the policy for labels.
func (p AscentPolicy) String() string {
	switch p {
	case LeastLoaded:
		return "least-loaded"
	case RoundRobin:
		return "round-robin"
	case DigitAligned:
		return "digit-aligned"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// TreeAdaptive is the fat-tree algorithm of §2: a packet first ascends
// adaptively to one of the nearest common ancestors of source and
// destination, then descends deterministically. In the ascending phase it
// picks the least-loaded up link — the one with the maximum number of free
// virtual channels — with a fair (rotating) choice among links in a
// similar state. Conflicts can arise only in the descending phase.
type TreeAdaptive struct {
	tree   *topology.Tree
	vcs    int
	policy AscentPolicy
	// tie rotates the starting point of the up-link scan per switch so
	// that ties are broken fairly over time. Entry r is only touched
	// while routing at switch r, which belongs to exactly one shard.
	//
	//smartlint:shardindexed
	tie []int
	// rerouted[r] counts fault detours decided at switch r: ascents
	// that skipped a masked up link (for DigitAligned, the
	// alternate-parent fallback). Entry r is only touched while routing
	// at switch r.
	//
	//smartlint:shardindexed
	rerouted []int64
}

// NewTreeAdaptive returns the adaptive fat-tree algorithm using the given
// number of virtual channels per link (the paper evaluates 1, 2 and 4).
func NewTreeAdaptive(tree *topology.Tree, vcs int) (*TreeAdaptive, error) {
	return NewTreeAdaptivePolicy(tree, vcs, LeastLoaded)
}

// NewTreeAdaptivePolicy returns the fat-tree algorithm with an explicit
// ascent policy; the ablation harness compares the three.
func NewTreeAdaptivePolicy(tree *topology.Tree, vcs int, policy AscentPolicy) (*TreeAdaptive, error) {
	if vcs < 1 {
		return nil, fmt.Errorf("routing: tree adaptive needs at least 1 virtual channel, got %d", vcs)
	}
	if policy < LeastLoaded || policy > DigitAligned {
		return nil, fmt.Errorf("routing: unknown ascent policy %d", policy)
	}
	return &TreeAdaptive{
		tree: tree, vcs: vcs, policy: policy,
		tie:      make([]int, tree.Routers()),
		rerouted: make([]int64, tree.Routers()),
	}, nil
}

// Rerouted returns the total fault detours across all switches;
// telemetry reports it next to the fault-stall counters.
func (a *TreeAdaptive) Rerouted() int64 {
	var n int64
	for _, v := range a.rerouted {
		n += v
	}
	return n
}

// Name implements wormhole.RoutingAlgorithm.
func (a *TreeAdaptive) Name() string {
	if a.policy != LeastLoaded {
		return fmt.Sprintf("adaptive-%dvc-%s", a.vcs, a.policy)
	}
	return fmt.Sprintf("adaptive-%dvc", a.vcs)
}

// VCs implements wormhole.RoutingAlgorithm.
func (a *TreeAdaptive) VCs() int { return a.vcs }

// Route implements wormhole.RoutingAlgorithm.
//
//smartlint:hotpath
func (a *TreeAdaptive) Route(f wormhole.Router, r, inPort, inLane int, pkt wormhole.PacketID) (int, int, bool) {
	info := f.Packet(pkt)
	dst := int(info.Dst)
	level := a.tree.SwitchLevel(r)
	if !a.tree.IsAncestor(r, dst) {
		// Ascending phase: any of the k up links reaches a nearest common
		// ancestor, so a fault-masked up link is simply skipped — the
		// surviving parents are all still valid (alternate-parent
		// selection). The policy selects among the live links.
		k := a.tree.K
		bestPort, detoured := -1, false
		switch a.policy {
		case LeastLoaded:
			start := a.tie[r]
			a.tie[r] = (start + 1) % k
			bestFree := 0
			for i := 0; i < k; i++ {
				port := a.tree.UpPort((start + i) % k)
				if !f.LinkUp(r, port) {
					detoured = true
					continue
				}
				if free := f.FreeLanes(r, port, 0, a.vcs); free > bestFree {
					bestPort, bestFree = port, free
				}
			}
		case RoundRobin:
			start := a.tie[r]
			a.tie[r] = (start + 1) % k
			for i := 0; i < k; i++ {
				port := a.tree.UpPort((start + i) % k)
				if !f.LinkUp(r, port) {
					detoured = true
					continue
				}
				if f.FreeLanes(r, port, 0, a.vcs) > 0 {
					bestPort = port
					break
				}
			}
		case DigitAligned:
			digit := a.tree.Digit(int(info.Src), a.tree.SwitchLevel(r))
			port := a.tree.UpPort(digit)
			if f.LinkUp(r, port) {
				if f.FreeLanes(r, port, 0, a.vcs) > 0 {
					bestPort = port
				}
			} else {
				// The oblivious parent is unreachable: fall back to the
				// next live up link with a free lane.
				detoured = true
				for i := 1; i < k; i++ {
					alt := a.tree.UpPort((digit + i) % k)
					if f.LinkUp(r, alt) && f.FreeLanes(r, alt, 0, a.vcs) > 0 {
						bestPort = alt
						break
					}
				}
			}
		}
		if bestPort < 0 {
			return 0, 0, false
		}
		lane, ok := bestLane(f, r, bestPort, 0, a.vcs)
		if ok && detoured {
			a.rerouted[r]++
		}
		return bestPort, lane, ok
	}
	// Descending phase (the switch is an ancestor of the destination,
	// first reached at the NCA level): the down port is forced by the
	// destination digits; only the lane choice remains. At level 0 the
	// down port is the destination's node port. A masked down link is a
	// genuine dead end — ascend-then-descend returns to this switch on
	// every alternate path — so the header stalls until repair or the
	// watchdog names it.
	port := a.tree.DownPortTo(level, dst)
	if !f.LinkUp(r, port) {
		return 0, 0, false
	}
	lane, ok := bestLane(f, r, port, 0, a.vcs)
	return port, lane, ok
}

// bestLane picks the free lane of (r, port) within [lo, hi) with the most
// credits, preferring lower indices on ties. It reports false when no lane
// is free.
//
//smartlint:hotpath
func bestLane(f wormhole.Router, r, port, lo, hi int) (int, bool) {
	best, bestCredits := -1, -1
	for l := lo; l < hi; l++ {
		if !f.OutLaneFree(r, port, l) {
			continue
		}
		if c := f.OutLaneCredits(r, port, l); c > bestCredits {
			best, bestCredits = l, c
		}
	}
	return best, best >= 0
}

var _ wormhole.RoutingAlgorithm = (*TreeAdaptive)(nil)
