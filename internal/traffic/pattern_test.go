package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"smart/internal/sim"
	"smart/internal/topology"
)

func isPermutation(t *testing.T, p Pattern, nodes int) {
	t.Helper()
	seen := make([]bool, nodes)
	for src := 0; src < nodes; src++ {
		dst := p.Dest(src, nil)
		if dst < 0 || dst >= nodes {
			t.Fatalf("%s: Dest(%d) = %d out of range", p.Name(), src, dst)
		}
		if seen[dst] {
			t.Fatalf("%s: destination %d hit twice", p.Name(), dst)
		}
		seen[dst] = true
	}
}

func fixedPoints(p Pattern, nodes int) int {
	count := 0
	for src := 0; src < nodes; src++ {
		if p.Dest(src, nil) == src {
			count++
		}
	}
	return count
}

func TestComplementIsInvolutionWithoutFixedPoints(t *testing.T) {
	for _, nodes := range []int{16, 64, 256} {
		c, err := NewComplement(nodes)
		if err != nil {
			t.Fatal(err)
		}
		isPermutation(t, c, nodes)
		if fp := fixedPoints(c, nodes); fp != 0 {
			t.Fatalf("complement over %d has %d fixed points", nodes, fp)
		}
		for src := 0; src < nodes; src++ {
			if c.Dest(c.Dest(src, nil), nil) != src {
				t.Fatalf("complement not an involution at %d", src)
			}
		}
	}
}

func TestComplementSpotValues(t *testing.T) {
	c, _ := NewComplement(256)
	cases := map[int]int{0: 255, 255: 0, 0xAA: 0x55, 1: 254}
	for src, want := range cases {
		if got := c.Dest(src, nil); got != want {
			t.Errorf("complement(%d) = %d, want %d", src, got, want)
		}
	}
}

// TestComplementCrossesBisection checks the property the paper leans on:
// every complement packet crosses the bisection of the cube (the source
// and destination lie in opposite halves of the top dimension).
func TestComplementCrossesBisection(t *testing.T) {
	cube, _ := topology.NewCube(16, 2)
	c, _ := NewComplement(256)
	half := cube.K / 2
	for src := 0; src < 256; src++ {
		dst := c.Dest(src, nil)
		srcHigh := cube.Digit(src, cube.N-1) >= half
		dstHigh := cube.Digit(dst, cube.N-1) >= half
		if srcHigh == dstHigh {
			t.Fatalf("complement pair (%d,%d) stays in one half", src, dst)
		}
	}
}

func TestBitReversalInvolutionAndPalindromes(t *testing.T) {
	r, err := NewBitReversal(256)
	if err != nil {
		t.Fatal(err)
	}
	isPermutation(t, r, 256)
	for src := 0; src < 256; src++ {
		if r.Dest(r.Dest(src, nil), nil) != src {
			t.Fatalf("bit reversal not an involution at %d", src)
		}
	}
	// The paper: "There are 16 nodes that have a palindrome bit string
	// and do not inject any packet into the network."
	if fp := fixedPoints(r, 256); fp != 16 {
		t.Fatalf("bit reversal over 256 has %d palindromes, want 16", fp)
	}
}

func TestBitReversalSpotValues(t *testing.T) {
	r, _ := NewBitReversal(256)
	cases := map[int]int{0: 0, 1: 128, 0x80: 0x01, 0x0F: 0xF0, 0xC3: 0xC3}
	for src, want := range cases {
		if got := r.Dest(src, nil); got != want {
			t.Errorf("bitrev(%#x) = %#x, want %#x", src, got, want)
		}
	}
}

func TestTransposeInvolutionAndFixedPoints(t *testing.T) {
	tr, err := NewTranspose(256)
	if err != nil {
		t.Fatal(err)
	}
	isPermutation(t, tr, 256)
	for src := 0; src < 256; src++ {
		if tr.Dest(tr.Dest(src, nil), nil) != src {
			t.Fatalf("transpose not an involution at %d", src)
		}
	}
	// Addresses with equal halves (k^(n/2) = 16 of them) are fixed.
	if fp := fixedPoints(tr, 256); fp != 16 {
		t.Fatalf("transpose over 256 has %d fixed points, want 16", fp)
	}
}

func TestTransposeSpotValues(t *testing.T) {
	tr, _ := NewTranspose(256)
	cases := map[int]int{0x12: 0x21, 0xAB: 0xBA, 0x55: 0x55, 0xF0: 0x0F}
	for src, want := range cases {
		if got := tr.Dest(src, nil); got != want {
			t.Errorf("transpose(%#x) = %#x, want %#x", src, got, want)
		}
	}
}

func TestTransposeRejectsOddBits(t *testing.T) {
	if _, err := NewTranspose(32); err == nil {
		t.Fatal("transpose accepted 5-bit addresses")
	}
}

func TestPatternsRejectNonPowerOfTwo(t *testing.T) {
	for _, nodes := range []int{0, 1, 3, 12, 100} {
		if _, err := NewComplement(nodes); err == nil {
			t.Errorf("complement accepted %d nodes", nodes)
		}
		if _, err := NewBitReversal(nodes); err == nil {
			t.Errorf("bit reversal accepted %d nodes", nodes)
		}
	}
}

func TestUniformNeverSelf(t *testing.T) {
	u, err := NewUniform(64)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	for i := 0; i < 100000; i++ {
		src := i % 64
		if u.Dest(src, rng) == src {
			t.Fatal("uniform produced a self destination")
		}
	}
}

func TestUniformCoversAllOthersEvenly(t *testing.T) {
	u, _ := NewUniform(16)
	rng := sim.NewRNG(2)
	counts := make([]int, 16)
	const n = 150000
	for i := 0; i < n; i++ {
		counts[u.Dest(5, rng)]++
	}
	if counts[5] != 0 {
		t.Fatal("self destination drawn")
	}
	want := float64(n) / 15
	for dst, c := range counts {
		if dst == 5 {
			continue
		}
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("destination %d drawn %d times, want ~%.0f", dst, c, want)
		}
	}
}

func TestUniformRejectsTinyNetworks(t *testing.T) {
	if _, err := NewUniform(1); err == nil {
		t.Fatal("uniform accepted a single-node network")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s, err := NewShuffle(64)
	if err != nil {
		t.Fatal(err)
	}
	isPermutation(t, s, 64)
	// A cyclic shift composed bits-times is the identity.
	for src := 0; src < 64; src++ {
		x := src
		for i := 0; i < 6; i++ {
			x = s.Dest(x, nil)
		}
		if x != src {
			t.Fatalf("shuffle^6 not identity at %d", src)
		}
	}
	if got := s.Dest(1, nil); got != 2 {
		t.Fatalf("shuffle(1) = %d, want 2", got)
	}
	if got := s.Dest(32, nil); got != 1 {
		t.Fatalf("shuffle(32) = %d, want 1 (wrap of the high bit)", got)
	}
}

func TestNeighborPattern(t *testing.T) {
	n, err := NewNeighbor(10)
	if err != nil {
		t.Fatal(err)
	}
	isPermutation(t, n, 10)
	if n.Dest(9, nil) != 0 || n.Dest(3, nil) != 4 {
		t.Fatal("neighbor destinations wrong")
	}
	if _, err := NewNeighbor(1); err == nil {
		t.Fatal("neighbor accepted one node")
	}
}

func TestTornadoHalfwayMinusOne(t *testing.T) {
	cube, _ := topology.NewCube(8, 2)
	tn := NewTornado(cube)
	for src := 0; src < cube.Nodes(); src++ {
		dst := tn.Dest(src, nil)
		if cube.Digit(dst, 1) != cube.Digit(src, 1) {
			t.Fatalf("tornado moved in dim 1 at %d", src)
		}
		want := (cube.Digit(src, 0) + 3) % 8
		if cube.Digit(dst, 0) != want {
			t.Fatalf("tornado(%d) dim-0 digit %d, want %d", src, cube.Digit(dst, 0), want)
		}
	}
}

func TestHotspotFractionAndValidation(t *testing.T) {
	h, err := NewHotspot(64, 0, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(3)
	hot := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if h.Dest(17, rng) == 0 {
			hot++
		}
	}
	// 25% directed plus 1/63 of the remaining uniform share.
	want := 0.25 + 0.75/63
	got := float64(hot) / n
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("hotspot fraction %v, want ~%v", got, want)
	}
	if _, err := NewHotspot(64, 64, 0.1); err == nil {
		t.Fatal("accepted out-of-range hot node")
	}
	if _, err := NewHotspot(64, 0, 1.5); err == nil {
		t.Fatal("accepted fraction > 1")
	}
	if _, err := NewHotspot(64, 0, -0.1); err == nil {
		t.Fatal("accepted negative fraction")
	}
}

func TestPatternNames(t *testing.T) {
	u, _ := NewUniform(4)
	c, _ := NewComplement(4)
	b, _ := NewBitReversal(4)
	tr, _ := NewTranspose(4)
	s, _ := NewShuffle(4)
	nb, _ := NewNeighbor(4)
	h, _ := NewHotspot(4, 0, 0.1)
	names := map[Pattern]string{u: "uniform", c: "complement", b: "bitrev", tr: "transpose", s: "shuffle", nb: "neighbor", h: "hotspot"}
	for p, want := range names {
		if p.Name() != want {
			t.Errorf("Name() = %q, want %q", p.Name(), want)
		}
	}
}

func TestPermutationsAreBijectionsProperty(t *testing.T) {
	// Property: for any power-of-two size, complement, bitrev and shuffle
	// are bijections (transpose needs even bits and is covered above).
	check := func(exp uint8) bool {
		bits := int(exp)%6 + 2 // 4..128 nodes
		nodes := 1 << bits
		c, err1 := NewComplement(nodes)
		r, err2 := NewBitReversal(nodes)
		s, err3 := NewShuffle(nodes)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for _, p := range []Pattern{c, r, s} {
			seen := make([]bool, nodes)
			for src := 0; src < nodes; src++ {
				d := p.Dest(src, nil)
				if d < 0 || d >= nodes || seen[d] {
					return false
				}
				seen[d] = true
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
