// Package traffic implements the paper's synthetic benchmarks (§7):
// uniform random traffic and the complement, bit-reversal and transpose
// permutations, plus a set of extension patterns (tornado, perfect
// shuffle, nearest neighbour, hotspot) used by the ablation harness. It
// also provides the open-loop Bernoulli injection process that drives a
// wormhole fabric at a configured offered load.
package traffic

import (
	"fmt"
	"math/bits"

	"smart/internal/sim"
)

// Pattern maps a source node to a destination. Permutation patterns
// ignore the RNG; the uniform pattern consumes it. A Pattern returning
// src means the node generates no packet for that draw (the paper's
// palindrome nodes under bit-reversal "do not inject any packet into the
// network").
type Pattern interface {
	// Name returns the benchmark's identifier ("uniform", "complement",
	// "transpose", "bitrev", ...).
	Name() string
	// Dest returns the destination for a packet sourced at src.
	Dest(src int, rng *sim.RNG) int
}

// CyclePattern is a Pattern whose destination choice also depends on the
// simulated cycle (time-varying adversarial patterns). The injector
// type-asserts for it once and calls DestAt instead of Dest; DestAt must
// consume exactly the RNG draws Dest would, so a time-varying pattern
// stays stream-compatible with its stationary counterpart.
type CyclePattern interface {
	Pattern
	// DestAt returns the destination for a packet sourced at src on the
	// given cycle.
	DestAt(src int, cycle int64, rng *sim.RNG) int
}

// logNodes returns log2(nodes), rejecting non-powers of two: the paper's
// bit-string patterns are defined on binary addresses (it assumes k is a
// power of two).
func logNodes(nodes int) (int, error) {
	if nodes < 2 || nodes&(nodes-1) != 0 {
		return 0, fmt.Errorf("traffic: bit-permutation patterns need a power-of-two node count, got %d", nodes)
	}
	return bits.TrailingZeros(uint(nodes)), nil
}

// Uniform draws destinations uniformly among all other nodes, the
// standard benchmark "representative of well-balanced shared memory
// computations". Self-destinations are redrawn so the offered load is
// exactly the configured rate.
type Uniform struct {
	nodes int
}

// NewUniform returns uniform traffic over the given node count.
func NewUniform(nodes int) (*Uniform, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("traffic: uniform traffic needs at least 2 nodes, got %d", nodes)
	}
	return &Uniform{nodes: nodes}, nil
}

// Name implements Pattern.
func (u *Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (u *Uniform) Dest(src int, rng *sim.RNG) int {
	// Draw from [0, nodes-1) and skip over src: uniform over the other
	// nodes without a rejection loop.
	d := rng.Intn(u.nodes - 1)
	if d >= src {
		d++
	}
	return d
}

// Complement sends from a_0 a_1 ... a_(b-1) to the bitwise complement.
// Every packet crosses the network bisection, which makes it the paper's
// stress test of the cube's bisection bandwidth; on the k-ary n-tree it is
// congestion-free (§8).
type Complement struct {
	mask int
}

// NewComplement returns the complement permutation over a power-of-two
// node count.
func NewComplement(nodes int) (*Complement, error) {
	if _, err := logNodes(nodes); err != nil {
		return nil, err
	}
	return &Complement{mask: nodes - 1}, nil
}

// Name implements Pattern.
func (c *Complement) Name() string { return "complement" }

// Dest implements Pattern.
func (c *Complement) Dest(src int, _ *sim.RNG) int { return ^src & c.mask }

// BitReversal sends a_0 a_1 ... a_(b-1) to a_(b-1) ... a_1 a_0. Nodes
// whose address is a palindrome are fixed points and inject nothing; on a
// 256-node network there are 16 of them (§9).
type BitReversal struct {
	bits int
}

// NewBitReversal returns the bit-reversal permutation over a power-of-two
// node count.
func NewBitReversal(nodes int) (*BitReversal, error) {
	b, err := logNodes(nodes)
	if err != nil {
		return nil, err
	}
	return &BitReversal{bits: b}, nil
}

// Name implements Pattern.
func (r *BitReversal) Name() string { return "bitrev" }

// Dest implements Pattern.
func (r *BitReversal) Dest(src int, _ *sim.RNG) int {
	return int(bits.Reverse64(uint64(src)) >> (64 - uint(r.bits)))
}

// Transpose sends the address a_(b/2) ... a_(b-1) a_0 ... a_(b/2-1) — the
// two halves of the bit string swapped, i.e. the transposition of a
// sqrt(N) x sqrt(N) matrix. On the cube it reflects every packet across
// the diagonal, creating a continuous area of congestion there (§9).
// Addresses with equal halves are fixed points and inject nothing.
type Transpose struct {
	half, mask int
}

// NewTranspose returns the transpose permutation; the bit-string length
// must be even (the paper assumes n even).
func NewTranspose(nodes int) (*Transpose, error) {
	b, err := logNodes(nodes)
	if err != nil {
		return nil, err
	}
	if b%2 != 0 {
		return nil, fmt.Errorf("traffic: transpose needs an even number of address bits, got %d", b)
	}
	return &Transpose{half: b / 2, mask: 1<<(b/2) - 1}, nil
}

// Name implements Pattern.
func (t *Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (t *Transpose) Dest(src int, _ *sim.RNG) int {
	return (src >> uint(t.half)) | (src&t.mask)<<uint(t.half)
}
