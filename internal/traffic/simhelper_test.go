package traffic

import (
	"testing"

	"smart/internal/routing"
	"smart/internal/sim"
	"smart/internal/topology"
	"smart/internal/wormhole"
)

// simulateTreeAccepted runs the pattern on the given tree with the 1-VC
// adaptive algorithm at the given offered load (fraction of the 1
// flit/cycle tree capacity) and returns the accepted fraction.
func simulateTreeAccepted(t *testing.T, tr *topology.Tree, pattern Pattern, load float64) float64 {
	t.Helper()
	alg, err := routing.NewTreeAdaptive(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	const flits = 8
	f, err := wormhole.NewFabric(tr, wormhole.Config{
		VCs: 1, BufDepth: 4, PacketFlits: flits, InjLanes: 1, WatchdogCycles: 20000,
	}, alg)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(f, pattern, load/flits, 31)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	inj.Register(e)
	f.Register(e)
	const warmup, horizon = 500, 4000
	e.Run(warmup)
	start := f.Counters().FlitsDelivered
	e.Run(horizon)
	delivered := f.Counters().FlitsDelivered - start
	return float64(delivered) / float64(horizon-warmup) / float64(tr.Nodes())
}
