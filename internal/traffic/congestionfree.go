package traffic

import (
	"fmt"

	"smart/internal/topology"
)

// CongestionFree reports whether the permutation can be routed on the
// k-ary n-tree with no two flows sharing a descending link — Heller's
// congestion-free property, the class the paper's §8 identifies around
// the complement pattern ("permutations that map a k-ary n-tree into
// itself ... do not generate any congestion on the descending phase").
//
// The check uses the digit-aligned ascent (the label digit freed at each
// level takes the source's same-index digit), which realizes a
// conflict-free routing for the self-inverse digit permutations of the
// class; a maximum per-link load of one under this assignment is a
// constructive proof of congestion-freedom. The function also returns the
// worst per-link flow count, which quantifies descending contention for
// patterns that are not congestion-free (transpose reaches k^(n/2)-1 on a
// 4-ary 4-tree).
//
// The pattern must be a permutation over the tree's nodes (fixed points,
// which inject nothing, are allowed and skipped).
func CongestionFree(t *topology.Tree, p Pattern) (bool, int, error) {
	seen := make([]bool, t.Nodes())
	for src := 0; src < t.Nodes(); src++ {
		dst := p.Dest(src, nil)
		if dst < 0 || dst >= t.Nodes() {
			return false, 0, fmt.Errorf("traffic: %s maps %d outside the network", p.Name(), src)
		}
		if seen[dst] {
			return false, 0, fmt.Errorf("traffic: %s is not a permutation (destination %d repeated)", p.Name(), dst)
		}
		seen[dst] = true
	}

	type link struct{ sw, port int }
	load := map[link]int{}
	worst := 0
	for src := 0; src < t.Nodes(); src++ {
		dst := p.Dest(src, nil)
		if dst == src {
			continue
		}
		m := t.NCALevel(src, dst)
		// Digit-aligned ascent: label digit i is src's digit i for i < m
		// and src's digit i+1 (== dst's digit i+1) for i >= m.
		label := 0
		for i := t.N - 2; i >= 0; i-- {
			digit := t.Digit(src, i+1)
			if i < m {
				digit = t.Digit(src, i)
			}
			label = label*t.K + digit
		}
		sw := t.SwitchIndex(m, label)
		for level := m; level >= 0; level-- {
			port := t.DownPortTo(level, dst)
			l := link{sw, port}
			load[l]++
			if load[l] > worst {
				worst = load[l]
			}
			if level > 0 {
				sw = t.RouterPorts(sw)[port].Peer
			}
		}
	}
	return worst <= 1, worst, nil
}
