package traffic

import (
	"math"
	"testing"

	"smart/internal/sim"
	"smart/internal/topology"
	"smart/internal/wormhole"
)

// sinkAlg immediately ejects everything (used only to give the fabric a
// valid algorithm; injector tests only exercise packet creation).
type sinkAlg struct{ cube *topology.Cube }

func (s sinkAlg) Name() string { return "sink" }
func (s sinkAlg) VCs() int     { return 1 }
func (s sinkAlg) Route(f wormhole.Router, r, ip, il int, pkt wormhole.PacketID) (int, int, bool) {
	if r == f.Dest(pkt) {
		if f.OutLaneFree(r, s.cube.NodePort(), 0) {
			return s.cube.NodePort(), 0, true
		}
		return 0, 0, false
	}
	port := topology.PortOf(0, topology.Plus)
	if f.OutLaneFree(r, port, 0) {
		return port, 0, true
	}
	return 0, 0, false
}

func testFabric(t *testing.T, nodes int) (*wormhole.Fabric, *sim.Engine) {
	t.Helper()
	cube, err := topology.NewCube(nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := wormhole.NewFabric(cube, wormhole.Config{VCs: 1, BufDepth: 4, PacketFlits: 2, InjLanes: 1}, sinkAlg{cube})
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	return f, e
}

func TestInjectorRate(t *testing.T) {
	f, e := testFabric(t, 16)
	pattern, _ := NewUniform(16)
	const rate, cycles = 0.1, 5000
	inj, err := NewInjector(f, pattern, rate, 7)
	if err != nil {
		t.Fatal(err)
	}
	inj.Register(e)
	e.Run(cycles)
	created := float64(f.Counters().PacketsCreated)
	want := 16.0 * cycles * rate
	sd := math.Sqrt(want * (1 - rate))
	if math.Abs(created-want) > 6*sd {
		t.Fatalf("created %v packets, want ~%v", created, want)
	}
}

func TestInjectorZeroRate(t *testing.T) {
	f, e := testFabric(t, 8)
	pattern, _ := NewUniform(8)
	inj, err := NewInjector(f, pattern, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	inj.Register(e)
	e.Run(1000)
	if f.Counters().PacketsCreated != 0 {
		t.Fatal("zero-rate injector created packets")
	}
}

func TestInjectorRejectsBadRate(t *testing.T) {
	f, _ := testFabric(t, 8)
	pattern, _ := NewUniform(8)
	for _, rate := range []float64{-0.1, 1.5} {
		if _, err := NewInjector(f, pattern, rate, 7); err == nil {
			t.Errorf("accepted rate %v", rate)
		}
	}
}

func TestInjectorStopAndStart(t *testing.T) {
	f, e := testFabric(t, 8)
	pattern, _ := NewUniform(8)
	inj, _ := NewInjector(f, pattern, 0.5, 7)
	inj.Register(e)
	e.Run(500)
	atStop := f.Counters().PacketsCreated
	if atStop == 0 {
		t.Fatal("nothing generated before stop")
	}
	inj.Stop()
	e.Run(1000)
	if f.Counters().PacketsCreated != atStop {
		t.Fatal("generation continued after Stop")
	}
	inj.Start()
	e.Run(1500)
	if f.Counters().PacketsCreated <= atStop {
		t.Fatal("generation did not resume after Start")
	}
}

func TestInjectorSkipsFixedPoints(t *testing.T) {
	// With bit-reversal on 16 nodes, 4 addresses are palindromes; their
	// draws must be skipped without enqueuing.
	f, e := testFabric(t, 16)
	pattern, _ := NewBitReversal(16)
	inj, _ := NewInjector(f, pattern, 1.0, 7)
	inj.Register(e)
	e.Run(100)
	if inj.Skipped() != 4*100 {
		t.Fatalf("skipped %d draws, want 400 (4 palindromes x 100 cycles)", inj.Skipped())
	}
	if got := f.Counters().PacketsCreated; got != 12*100 {
		t.Fatalf("created %d, want 1200", got)
	}
	for i := range f.Packets {
		if f.Packets[i].Src == f.Packets[i].Dst {
			t.Fatal("self packet enqueued")
		}
	}
}

func TestInjectorDeterministicAcrossRuns(t *testing.T) {
	build := func(seed uint64) []wormhole.PacketInfo {
		f, e := testFabric(t, 8)
		pattern, _ := NewUniform(8)
		inj, _ := NewInjector(f, pattern, 0.3, seed)
		inj.Register(e)
		e.Run(300)
		return append([]wormhole.PacketInfo(nil), f.Packets...)
	}
	a, b := build(42), build(42)
	if len(a) != len(b) {
		t.Fatalf("runs generated %d vs %d packets", len(a), len(b))
	}
	for i := range a {
		if a[i].Src != b[i].Src || a[i].Dst != b[i].Dst || a[i].CreatedAt != b[i].CreatedAt {
			t.Fatalf("packet %d differs across identical seeds", i)
		}
	}
	c := build(43)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i].Src != c[i].Src || a[i].Dst != c[i].Dst || a[i].CreatedAt != c[i].CreatedAt {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traffic")
		}
	}
}

func TestInjectorDestinationsFollowPattern(t *testing.T) {
	f, e := testFabric(t, 16)
	pattern, _ := NewComplement(16)
	inj, _ := NewInjector(f, pattern, 0.5, 7)
	inj.Register(e)
	e.Run(200)
	for i := range f.Packets {
		pk := &f.Packets[i]
		if int(pk.Dst) != ^int(pk.Src)&15 {
			t.Fatalf("packet %d dest %d, want complement of %d", i, pk.Dst, pk.Src)
		}
	}
}
