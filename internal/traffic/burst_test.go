package traffic

import (
	"math"
	"strings"
	"testing"

	"smart/internal/sim"
)

// TestMMPPStationaryMean: the modulator's defining property — the
// long-run mean factor is 1, so bursts reshape arrivals in time without
// changing the offered load the sweep axis claims.
func TestMMPPStationaryMean(t *testing.T) {
	for _, spec := range []string{"mmpp:100:300:2.0", "mmpp:50:50:1.5", "mmpp:200:600:2.5", "mmpp:1:1:1"} {
		m, err := ParseBurst(spec, 42)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		const cycles = 2_000_000
		var sum float64
		for c := int64(0); c < cycles; c++ {
			sum += m.Factor(c)
		}
		if mean := sum / cycles; math.Abs(mean-1) > 0.02 {
			t.Errorf("%s: long-run mean factor %.4f, want 1 ± 0.02", spec, mean)
		}
	}
}

// TestMMPPActuallyBursts: the ON factor must appear and must equal the
// configured peak — a modulator stuck at its mean would satisfy the
// stationarity test while modulating nothing.
func TestMMPPActuallyBursts(t *testing.T) {
	m, err := NewMMPP(100, 300, 2.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	var peaks, offs int
	for c := int64(0); c < 100_000; c++ {
		switch f := m.Factor(c); {
		case f == 2.0:
			peaks++
		case f > 0 && f < 1:
			offs++
		default:
			t.Fatalf("cycle %d: factor %v is neither the peak nor an OFF value in (0,1)", c, f)
		}
	}
	if peaks == 0 || offs == 0 {
		t.Fatalf("chain never alternated: %d peak cycles, %d off cycles", peaks, offs)
	}
}

// TestMMPPDeterministicInSeed: the burst schedule is a pure function of
// the construction seed — the property that keeps a faulted bursty run
// bit-identical between the fabric and its oracle twin.
func TestMMPPDeterministicInSeed(t *testing.T) {
	trace := func(seed uint64) []float64 {
		m, err := NewMMPP(80, 240, 2.5, seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 5000)
		for c := range out {
			out[c] = m.Factor(int64(c))
		}
		return out
	}
	a, b := trace(9), trace(9)
	for c := range a {
		if a[c] != b[c] {
			t.Fatalf("cycle %d: same seed diverged: %v vs %v", c, a[c], b[c])
		}
	}
	other := trace(10)
	same := true
	for c := range a {
		if a[c] != other[c] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 9 and 10 produced identical 5000-cycle burst schedules")
	}
}

// TestParseBurstRejectsBadSpecs: CheckBurst gates command-line flags, so
// every malformed spec must fail loudly before a config is fingerprinted.
func TestParseBurstRejectsBadSpecs(t *testing.T) {
	bad := []string{
		"poisson:1:2:3",    // unknown model
		"mmpp",             // no arguments
		"mmpp:100:300",     // wrong arity
		"mmpp:1:2:3:4",     // wrong arity
		"mmpp:x:300:2",     // bad number
		"mmpp:0.5:300:2",   // dwellOn < 1
		"mmpp:100:0:2",     // dwellOff < 1
		"mmpp:100:300:0.5", // peak < 1
		"mmpp:300:100:2",   // peak*piOn > 1: no load left for OFF
	}
	for _, spec := range bad {
		if err := CheckBurst(spec); err == nil {
			t.Errorf("CheckBurst(%q) accepted a malformed spec", spec)
		}
	}
	if err := CheckBurst(""); err != nil {
		t.Errorf("empty burst spec must mean no modulation, got %v", err)
	}
	m, err := ParseBurst("", 1)
	if err != nil || m != nil {
		t.Errorf("ParseBurst(\"\") = %v, %v; want nil, nil", m, err)
	}
}

// TestBurstNameRoundTrips: Name() is the spec that rebuilds the
// modulator — it feeds config labels and fingerprints.
func TestBurstNameRoundTrips(t *testing.T) {
	m, err := ParseBurst("mmpp:100:300:2.5", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(m.Name(), "mmpp:") {
		t.Fatalf("Name() = %q, want an mmpp spec", m.Name())
	}
	if _, err := ParseBurst(m.Name(), 3); err != nil {
		t.Fatalf("Name() %q does not re-parse: %v", m.Name(), err)
	}
}

// TestRotatingHotspotRotates: with fraction 1 every non-hot source must
// target the current hot node, and the hot node must advance by one
// every period cycles.
func TestRotatingHotspotRotates(t *testing.T) {
	const nodes, period = 8, 100
	h, err := NewRotatingHotspot(nodes, period, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(5)
	for _, tc := range []struct {
		cycle   int64
		wantHot int
	}{{0, 0}, {99, 0}, {100, 1}, {250, 2}, {799, 7}, {800, 0}, {nodes * period * 3, 0}} {
		src := (tc.wantHot + 1) % nodes // never the hot node itself
		if got := h.DestAt(src, tc.cycle, rng); got != tc.wantHot {
			t.Errorf("cycle %d: DestAt(src %d) = %d, want hot node %d", tc.cycle, src, got, tc.wantHot)
		}
	}
	// The plain Pattern view is cycle 0's stationary hotspot.
	if got := h.Dest(3, rng); got != 0 {
		t.Errorf("Dest(3) = %d, want cycle-0 hot node 0", got)
	}
	if _, err := NewRotatingHotspot(nodes, 0, 0.5); err == nil {
		t.Error("period 0 accepted")
	}
	if _, err := NewRotatingHotspot(nodes, 10, 1.5); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

// TestInjectorModulatorShiftsArrivals: under a peak-heavy modulator the
// same seed still yields a deterministic packet count, and clamping the
// modulated probability at 1 never fires (rates stay feasible).
func TestInjectorModulatorShiftsArrivals(t *testing.T) {
	run := func(withBurst bool) int64 {
		f, e := testFabric(t, 16)
		pattern, _ := NewUniform(16)
		inj, err := NewInjector(f, pattern, 0.1, 7)
		if err != nil {
			t.Fatal(err)
		}
		if withBurst {
			m, err := NewMMPP(100, 300, 2.0, 7)
			if err != nil {
				t.Fatal(err)
			}
			inj.SetModulator(m)
		}
		inj.Register(e)
		e.Run(5000)
		return f.Counters().PacketsCreated
	}
	plain, burst := run(false), run(true)
	if plain == 0 || burst == 0 {
		t.Fatalf("vacuous run: plain %d, bursty %d", plain, burst)
	}
	if again := run(true); again != burst {
		t.Fatalf("bursty injection not deterministic: %d vs %d", burst, again)
	}
	// Same mean rate: the bursty count stays within binomial noise of the
	// stationary one (16 nodes * 5000 cycles * 0.1).
	want := 16.0 * 5000 * 0.1
	sd := math.Sqrt(want * 2) // peak factor 2 at most doubles the variance
	if diff := math.Abs(float64(burst) - want); diff > 8*sd {
		t.Errorf("bursty run created %d packets, want ~%.0f (mean-preserving modulation)", burst, want)
	}
}

// TestInjectorAvailabilityDropsDeadEndpoints: a draw whose source or
// destination is down is discarded after consuming the same RNG stream
// (shard-count invariance), and the Dropped counter records it.
func TestInjectorAvailabilityDropsDeadEndpoints(t *testing.T) {
	run := func(dead map[int]bool) (created, dropped int64) {
		f, e := testFabric(t, 16)
		pattern, _ := NewUniform(16)
		inj, err := NewInjector(f, pattern, 0.1, 7)
		if err != nil {
			t.Fatal(err)
		}
		if dead != nil {
			inj.SetAvailability(func(n int) bool { return !dead[n] })
		}
		inj.Register(e)
		e.Run(5000)
		return f.Counters().PacketsCreated, inj.Dropped()
	}
	allUp, noDrops := run(nil)
	if noDrops != 0 {
		t.Fatalf("no availability mask installed but Dropped() = %d", noDrops)
	}
	masked, dropped := run(map[int]bool{3: true, 11: true})
	if dropped == 0 {
		t.Fatal("two dead endpoints never dropped a draw")
	}
	if masked+dropped == 0 || masked >= allUp {
		t.Fatalf("masked run created %d (dropped %d), all-up created %d; dead endpoints must cost packets", masked, dropped, allUp)
	}
}
