package traffic

import (
	"fmt"

	"smart/internal/sim"
	"smart/internal/wormhole"
)

// Injector is the open-loop packet generation process of §4: every cycle
// each node creates a packet with a fixed probability (a Bernoulli
// process whose rate realizes the configured offered load) and a
// destination drawn from the traffic pattern. Generated packets queue at
// the source; the paper measures offered versus accepted bandwidth, so
// the queue is unbounded and generation never throttles.
type Injector struct {
	fabric  Network
	pattern Pattern
	// prob is the per-node, per-cycle packet creation probability.
	prob float64
	rngs []*sim.RNG
	// enabled gates generation; draining a network at the end of a
	// measurement turns it off.
	enabled bool
	// skipped counts draws that were permutation fixed points (no packet
	// generated, matching the paper's non-injecting palindrome nodes).
	skipped int64
	// mod, when set, scales the injection probability cycle by cycle
	// (bursty workloads); nil means the stationary Bernoulli process.
	mod Modulator
	// cp is the pattern's cycle-aware view, type-asserted once so the
	// per-draw path has a nil check instead of an interface assertion.
	cp CyclePattern
	// avail, when set, reports whether a node can source or sink traffic;
	// draws whose endpoint is unavailable are dropped (counted), keeping
	// the RNG streams aligned with the fault-free run.
	avail func(n int) bool
	// dropped counts draws discarded because an endpoint was down.
	dropped int64
}

// Network is the surface the injection process drives: the node count and
// the packet intake. Both the optimized wormhole.Fabric and the reference
// simulator in internal/oracle implement it, so a differential run feeds
// both sides the exact same Bernoulli draw and destination sequence.
type Network interface {
	Nodes() int
	EnqueuePacket(src, dst int, cycle int64) wormhole.PacketID
}

// NewInjector builds an injection process over the network's nodes. The
// rate is given in packets per node per cycle; every node gets an
// independent RNG stream derived from seed, so results are reproducible
// and insensitive to iteration order.
func NewInjector(f Network, p Pattern, packetRate float64, seed uint64) (*Injector, error) {
	if packetRate < 0 || packetRate > 1 {
		return nil, fmt.Errorf("traffic: packet rate %v outside [0,1] packets/cycle", packetRate)
	}
	nodes := f.Nodes()
	inj := &Injector{fabric: f, pattern: p, prob: packetRate, enabled: true}
	inj.cp, _ = p.(CyclePattern)
	inj.rngs = make([]*sim.RNG, nodes)
	sm := sim.NewSplitMix64(seed)
	for n := range inj.rngs {
		inj.rngs[n] = sim.NewRNG(sm.Next())
	}
	return inj, nil
}

// Register installs the generation stage on the engine. It must run
// before the fabric's injection stage if packets are to start injecting
// in their creation cycle; the fabric's Register documents the canonical
// order.
func (inj *Injector) Register(e *sim.Engine) {
	e.RegisterFunc("traffic", inj.tick)
}

// Stop turns generation off; the network then drains.
func (inj *Injector) Stop() { inj.enabled = false }

// Start turns generation back on.
func (inj *Injector) Start() { inj.enabled = true }

// Skipped returns the number of fixed-point draws that generated no
// packet.
func (inj *Injector) Skipped() int64 { return inj.skipped }

// SetModulator installs a cycle-by-cycle load modulator (nil restores the
// stationary process). A differential pair must install independently
// constructed modulators from the same seed so both chains step in
// lockstep.
func (inj *Injector) SetModulator(m Modulator) { inj.mod = m }

// SetAvailability installs the endpoint-liveness predicate consulted per
// draw, typically the fabric's NodeUp. Draws whose source or destination
// is unavailable are dropped after the RNG is consumed, so the remaining
// traffic is byte-identical to the fault-free run's.
func (inj *Injector) SetAvailability(up func(n int) bool) { inj.avail = up }

// Dropped returns the number of draws discarded because an endpoint was
// down.
func (inj *Injector) Dropped() int64 { return inj.dropped }

func (inj *Injector) tick(cycle int64) {
	if !inj.enabled {
		return
	}
	prob := inj.prob
	if inj.mod != nil {
		// Factor advances the modulation chain exactly once per cycle;
		// the product is clamped because a peak factor may push a high
		// configured load past certainty.
		prob *= inj.mod.Factor(cycle)
		if prob > 1 {
			prob = 1
		}
	}
	for n := range inj.rngs {
		rng := inj.rngs[n]
		// Bernoulli consumes one draw whatever prob is, so modulation
		// never desynchronizes the per-node streams.
		if !rng.Bernoulli(prob) {
			continue
		}
		var dst int
		if inj.cp != nil {
			dst = inj.cp.DestAt(n, cycle, rng)
		} else {
			dst = inj.pattern.Dest(n, rng)
		}
		if dst == n {
			inj.skipped++
			continue
		}
		if inj.avail != nil && (!inj.avail(n) || !inj.avail(dst)) {
			inj.dropped++
			continue
		}
		inj.fabric.EnqueuePacket(n, dst, cycle)
	}
}
