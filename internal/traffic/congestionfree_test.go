package traffic

import (
	"testing"

	"smart/internal/sim"
	"smart/internal/topology"
)

func cfTree(t *testing.T) *topology.Tree {
	t.Helper()
	tr, err := topology.NewTree(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestComplementCongestionFree verifies the paper's §8 claim analytically:
// the complement belongs to the congestion-free class.
func TestComplementCongestionFree(t *testing.T) {
	tr := cfTree(t)
	p, _ := NewComplement(tr.Nodes())
	free, worst, err := CongestionFree(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	if !free || worst != 1 {
		t.Fatalf("complement: free=%v worst=%d, want congestion-free", free, worst)
	}
}

// TestTransposeAndBitrevCongested: the other two permutations congest the
// descending phase, which is why their curves track the flow-control
// strategy (§8.1).
func TestTransposeAndBitrevCongested(t *testing.T) {
	tr := cfTree(t)
	tp, _ := NewTranspose(tr.Nodes())
	free, worst, err := CongestionFree(tr, tp)
	if err != nil {
		t.Fatal(err)
	}
	if free || worst <= 1 {
		t.Fatalf("transpose: free=%v worst=%d, want contention", free, worst)
	}
	br, _ := NewBitReversal(tr.Nodes())
	free, worst, err = CongestionFree(tr, br)
	if err != nil {
		t.Fatal(err)
	}
	if free || worst <= 1 {
		t.Fatalf("bit reversal: free=%v worst=%d, want contention", free, worst)
	}
}

// TestIdentityLikeLocalPermutation: a permutation that stays inside each
// level-0 switch is trivially congestion-free.
func TestIdentityLikeLocalPermutation(t *testing.T) {
	tr := cfTree(t)
	free, worst, err := CongestionFree(tr, siblingShift{k: tr.K})
	if err != nil {
		t.Fatal(err)
	}
	if !free || worst != 1 {
		t.Fatalf("sibling shift: free=%v worst=%d", free, worst)
	}
}

// siblingShift rotates nodes within their level-0 switch.
type siblingShift struct{ k int }

func (siblingShift) Name() string { return "sibling-shift" }
func (s siblingShift) Dest(src int, _ *sim.RNG) int {
	return src/s.k*s.k + (src+1)%s.k
}

// TestExtensionPatternsCongestionClass records where the extension
// patterns fall under the digit-aligned assignment: the nearest-neighbour
// cyclic shift is congestion-free (it is a "permutation that maps a k-ary
// n-tree into itself" in the paper's sense), while the perfect shuffle
// has mild descending contention (two flows per worst link).
func TestExtensionPatternsCongestionClass(t *testing.T) {
	tr := cfTree(t)
	nb, _ := NewNeighbor(tr.Nodes())
	free, worst, err := CongestionFree(tr, nb)
	if err != nil {
		t.Fatal(err)
	}
	if !free || worst != 1 {
		t.Fatalf("neighbor: free=%v worst=%d, want congestion-free", free, worst)
	}
	sh, _ := NewShuffle(tr.Nodes())
	free, worst, err = CongestionFree(tr, sh)
	if err != nil {
		t.Fatal(err)
	}
	if free || worst != 2 {
		t.Fatalf("shuffle: free=%v worst=%d, want mild contention (2)", free, worst)
	}
}

func TestCongestionFreeRejectsNonPermutations(t *testing.T) {
	tr := cfTree(t)
	if _, _, err := CongestionFree(tr, constPattern{}); err == nil {
		t.Fatal("non-permutation accepted")
	}
	if _, _, err := CongestionFree(tr, outOfRange{}); err == nil {
		t.Fatal("out-of-range pattern accepted")
	}
}

type constPattern struct{}

func (constPattern) Name() string           { return "const" }
func (constPattern) Dest(int, *sim.RNG) int { return 0 }

type outOfRange struct{}

func (outOfRange) Name() string                 { return "oob" }
func (outOfRange) Dest(src int, _ *sim.RNG) int { return src + 1 }

// TestCongestionFreePredictsSimulation ties the analytic property to the
// simulator: on a 16-node tree with a single virtual channel, the
// congestion-free complement sustains a clearly higher accepted load than
// the congested transpose at the same high offered bandwidth. (The full
// 256-node confirmation is Figure 5; this keeps the link in the unit
// suite.)
func TestCongestionFreePredictsSimulation(t *testing.T) {
	measure := func(mk func(n int) (Pattern, error)) float64 {
		tr, err := topology.NewTree(4, 2)
		if err != nil {
			t.Fatal(err)
		}
		pattern, err := mk(tr.Nodes())
		if err != nil {
			t.Fatal(err)
		}
		accepted := simulateTreeAccepted(t, tr, pattern, 0.9)
		return accepted
	}
	comp := measure(func(n int) (Pattern, error) { return NewComplement(n) })
	tp := measure(func(n int) (Pattern, error) { return NewTranspose(n) })
	if comp <= tp+0.1 {
		t.Fatalf("complement accepted %.2f vs transpose %.2f: congestion-free advantage missing", comp, tp)
	}
}
