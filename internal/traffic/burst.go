package traffic

import (
	"fmt"
	"strconv"
	"strings"

	"smart/internal/sim"
)

// A Modulator scales the per-node injection probability cycle by cycle,
// turning the stationary Bernoulli process into a bursty one. Factor is
// called exactly once per simulated cycle (the injector's tick), so a
// stateful modulator may advance its own chain inside it; the draw
// sequence is deterministic in the construction seed alone.
type Modulator interface {
	// Name returns the modulation's identifier for labels ("mmpp:...").
	Name() string
	// Factor returns the multiplier applied to the injection probability
	// on the given cycle. The stationary mean of the factor is 1, so the
	// long-run offered load still matches the configured rate.
	Factor(cycle int64) float64
}

// MMPP is a two-state Markov-modulated injection process: an ON state
// scaling the load by peak and an OFF state scaling it down so the
// stationary mean stays exactly 1. Dwell times are geometric with the
// configured means, which makes the state a Markov chain — the classic
// bursty-arrival model. The chain owns its RNG stream (derived from the
// run seed, decorrelated from the per-node injection streams), so the
// burst schedule is identical between the fabric and its oracle twin.
type MMPP struct {
	dwellOn, dwellOff float64
	peak, off         float64
	rng               *sim.RNG
	on                bool
	next              int64
}

// mmppSeedTweak decorrelates the chain's RNG from the per-node injection
// streams that share the run seed (the 64-bit golden-ratio constant).
const mmppSeedTweak = 0x9e3779b97f4a7c15

// NewMMPP builds the two-state chain. dwellOn and dwellOff are the mean
// dwell cycles of the two states; peak is the ON-state load multiplier.
// The OFF multiplier is derived so the stationary mean factor is 1, which
// requires peak*piOn <= 1 where piOn = dwellOn/(dwellOn+dwellOff).
func NewMMPP(dwellOn, dwellOff, peak float64, seed uint64) (*MMPP, error) {
	if dwellOn < 1 || dwellOff < 1 {
		return nil, fmt.Errorf("traffic: mmpp dwell times must be >= 1 cycle, got on=%v off=%v", dwellOn, dwellOff)
	}
	if peak < 1 {
		return nil, fmt.Errorf("traffic: mmpp peak factor must be >= 1, got %v", peak)
	}
	piOn := dwellOn / (dwellOn + dwellOff)
	if peak*piOn > 1 {
		return nil, fmt.Errorf("traffic: mmpp peak %v infeasible: peak*piOn = %v > 1 leaves no load for the OFF state", peak, peak*piOn)
	}
	m := &MMPP{
		dwellOn:  dwellOn,
		dwellOff: dwellOff,
		peak:     peak,
		off:      (1 - peak*piOn) / (1 - piOn),
		rng:      sim.NewRNG(seed ^ mmppSeedTweak),
	}
	// Start from the stationary distribution so the mean holds from
	// cycle zero, not only asymptotically.
	m.on = m.rng.Bernoulli(piOn)
	return m, nil
}

// Name implements Modulator.
func (m *MMPP) Name() string {
	return fmt.Sprintf("mmpp:%v:%v:%v", m.dwellOn, m.dwellOff, m.peak)
}

// Factor implements Modulator. One chain step per cycle: the state flips
// with probability 1/dwell, making dwell the geometric mean holding time.
func (m *MMPP) Factor(cycle int64) float64 {
	for m.next <= cycle {
		m.next++
		if m.on {
			if m.rng.Bernoulli(1 / m.dwellOn) {
				m.on = false
			}
		} else {
			if m.rng.Bernoulli(1 / m.dwellOff) {
				m.on = true
			}
		}
	}
	if m.on {
		return m.peak
	}
	return m.off
}

// CheckBurst validates a burst spec without building the modulator, for
// flag validation before a config is fingerprinted.
func CheckBurst(spec string) error {
	_, err := ParseBurst(spec, 0)
	return err
}

// ParseBurst builds a modulator from its textual spec. The only grammar
// today is "mmpp:<dwellOn>:<dwellOff>:<peak>"; the empty spec means no
// modulation and returns nil.
func ParseBurst(spec string, seed uint64) (Modulator, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ":")
	if parts[0] != "mmpp" {
		return nil, fmt.Errorf("traffic: unknown burst model %q (want mmpp:<dwellOn>:<dwellOff>:<peak>)", parts[0])
	}
	if len(parts) != 4 {
		return nil, fmt.Errorf("traffic: burst spec %q needs 3 arguments (mmpp:<dwellOn>:<dwellOff>:<peak>)", spec)
	}
	args := make([]float64, 3)
	for i, s := range parts[1:] {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("traffic: burst spec %q: bad number %q", spec, s)
		}
		args[i] = v
	}
	return NewMMPP(args[0], args[1], args[2], seed)
}
