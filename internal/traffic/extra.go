package traffic

import (
	"fmt"

	"smart/internal/sim"
	"smart/internal/topology"
)

// The patterns below extend the paper's benchmark set; the ablation
// harness uses them to probe behaviours the four core patterns do not
// exercise (sustained ring pressure, locality, single-destination
// contention).

// Tornado sends each node half-way (minus one) around the ring of the
// cube's lowest dimension — the classic adversarial pattern for minimal
// routing on tori, which loads one direction of every ring uniformly.
type Tornado struct {
	cube *topology.Cube
}

// NewTornado returns the tornado pattern for a cube.
func NewTornado(cube *topology.Cube) *Tornado { return &Tornado{cube: cube} }

// Name implements Pattern.
func (t *Tornado) Name() string { return "tornado" }

// Dest implements Pattern.
func (t *Tornado) Dest(src int, _ *sim.RNG) int {
	c := t.cube
	hop := c.K/2 - 1
	if hop <= 0 {
		hop = 1
	}
	coord := (c.Digit(src, 0) + hop) % c.K
	return c.WithDigit(src, 0, coord)
}

// Shuffle sends a_0 a_1 ... a_(b-1) to a_1 ... a_(b-1) a_0 (a cyclic left
// shift of the address), the access pattern of FFT-style computations.
type Shuffle struct {
	bits int
}

// NewShuffle returns the perfect-shuffle permutation over a power-of-two
// node count.
func NewShuffle(nodes int) (*Shuffle, error) {
	b, err := logNodes(nodes)
	if err != nil {
		return nil, err
	}
	return &Shuffle{bits: b}, nil
}

// Name implements Pattern.
func (s *Shuffle) Name() string { return "shuffle" }

// Dest implements Pattern.
func (s *Shuffle) Dest(src int, _ *sim.RNG) int {
	hi := src >> uint(s.bits-1)
	return (src<<1)&(1<<uint(s.bits)-1) | hi
}

// Neighbor sends every node to the next node id (mod N): minimal-distance
// traffic on the cube's first dimension, a pure locality benchmark.
type Neighbor struct {
	nodes int
}

// NewNeighbor returns the nearest-neighbour pattern.
func NewNeighbor(nodes int) (*Neighbor, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("traffic: neighbor pattern needs at least 2 nodes, got %d", nodes)
	}
	return &Neighbor{nodes: nodes}, nil
}

// Name implements Pattern.
func (n *Neighbor) Name() string { return "neighbor" }

// Dest implements Pattern.
func (n *Neighbor) Dest(src int, _ *sim.RNG) int { return (src + 1) % n.nodes }

// Hotspot sends a configurable fraction of the traffic to one hot node
// and the remainder uniformly — the classic model of a contended lock or
// a busy memory module.
type Hotspot struct {
	uniform  *Uniform
	hot      int
	fraction float64
}

// NewHotspot returns a hotspot pattern directing fraction of the packets
// at node hot.
func NewHotspot(nodes, hot int, fraction float64) (*Hotspot, error) {
	if hot < 0 || hot >= nodes {
		return nil, fmt.Errorf("traffic: hotspot node %d out of range [0,%d)", hot, nodes)
	}
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("traffic: hotspot fraction %v outside [0,1]", fraction)
	}
	u, err := NewUniform(nodes)
	if err != nil {
		return nil, err
	}
	return &Hotspot{uniform: u, hot: hot, fraction: fraction}, nil
}

// Name implements Pattern.
func (h *Hotspot) Name() string { return "hotspot" }

// Dest implements Pattern.
func (h *Hotspot) Dest(src int, rng *sim.RNG) int {
	if src != h.hot && rng.Bernoulli(h.fraction) {
		return h.hot
	}
	return h.uniform.Dest(src, rng)
}

// RotatingHotspot is the time-varying adversary: the hot node moves to
// the next node id every period cycles, so congestion trees form and must
// dissolve repeatedly instead of reaching the stationary hotspot
// equilibrium. Its per-draw RNG consumption is identical to Hotspot's,
// keeping it stream-compatible with the stationary pattern.
type RotatingHotspot struct {
	uniform  *Uniform
	nodes    int
	period   int64
	fraction float64
}

// NewRotatingHotspot returns a hotspot pattern whose hot node advances
// every period cycles.
func NewRotatingHotspot(nodes int, period int64, fraction float64) (*RotatingHotspot, error) {
	if period < 1 {
		return nil, fmt.Errorf("traffic: rotating hotspot period %d must be >= 1 cycle", period)
	}
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("traffic: hotspot fraction %v outside [0,1]", fraction)
	}
	u, err := NewUniform(nodes)
	if err != nil {
		return nil, err
	}
	return &RotatingHotspot{uniform: u, nodes: nodes, period: period, fraction: fraction}, nil
}

// Name implements Pattern.
func (h *RotatingHotspot) Name() string { return "rot-hotspot" }

// Dest implements Pattern; non-cycle-aware callers see cycle 0's hot node.
func (h *RotatingHotspot) Dest(src int, rng *sim.RNG) int {
	return h.DestAt(src, 0, rng)
}

// DestAt implements CyclePattern.
func (h *RotatingHotspot) DestAt(src int, cycle int64, rng *sim.RNG) int {
	hot := int((cycle / h.period) % int64(h.nodes))
	if src != hot && rng.Bernoulli(h.fraction) {
		return hot
	}
	return h.uniform.Dest(src, rng)
}

var _ CyclePattern = (*RotatingHotspot)(nil)
