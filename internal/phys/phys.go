// Package phys implements the paper's performance-normalization
// methodology (§5): the parameter constraints that make a k-ary n-tree
// and a k-ary n-cube comparable (equal node and router counts), the pin
// count equalization that sets the flit size to two bytes on the tree and
// four on the cube, the resulting equality of peak bandwidth and of the
// theoretical capacity under uniform traffic, and the conversions from
// normalized cycle-domain measurements to the absolute units (bits/ns,
// ns) of the paper's Figure 7.
package phys

import (
	"fmt"

	"smart/internal/topology"
)

// PacketBytes is the paper's packet size.
const PacketBytes = 64

// TreeFlitBytes and CubeFlitBytes are the data-path widths after pin
// count equalization: the tree switch has arity eight and the cube router
// arity four (excluding the node connection), so the cube affords twice
// the data path for the same pins.
const (
	TreeFlitBytes = 2
	CubeFlitBytes = 4
)

// MatchedPair reports whether tree parameters (k1, n1) and cube
// parameters (k2, n2) satisfy the paper's fairness conditions: the same
// number of processing nodes (k1^n1 == k2^n2) and the same number of
// routing chips (n1*k1^(n1-1) == k2^n2). The two equations imply k1 == n1
// and N = k1^k1; the paper's instance is the 4-ary 4-tree against the
// 16-ary 2-cube.
func MatchedPair(k1, n1, k2, n2 int) (bool, error) {
	treeNodes, err := topology.Pow(k1, n1)
	if err != nil {
		return false, err
	}
	cubeNodes, err := topology.Pow(k2, n2)
	if err != nil {
		return false, err
	}
	treeRouters := n1 * treeNodes / k1
	return treeNodes == cubeNodes && treeRouters == cubeNodes, nil
}

// FlitBytes returns the data-path width used on the given topology.
func FlitBytes(top topology.Topology) (int, error) {
	switch top.(type) {
	case *topology.Tree:
		return TreeFlitBytes, nil
	case *topology.Cube:
		return CubeFlitBytes, nil
	default:
		return 0, fmt.Errorf("phys: unknown topology family %T", top)
	}
}

// PacketFlits returns the packet length in flits on the given topology:
// 32 on the tree, 16 on the cube for the paper's 64-byte packets.
func PacketFlits(top topology.Topology) (int, error) {
	fb, err := FlitBytes(top)
	if err != nil {
		return 0, err
	}
	return PacketBytes / fb, nil
}

// CapacityFlits returns the theoretical upper bound on accepted traffic
// under uniform load, in flits per node per cycle.
//
// For the cube (paper footnote 1): 50% of uniform traffic crosses the
// bisection, so each node can inject at most 2B/N where B is the
// bisection bandwidth; with 2k^(n-1) bidirectional links of one flit per
// cycle per direction this evaluates to 8/k flits/node/cycle (0.5 for the
// 16-ary 2-cube).
//
// The tree is not bisection-limited; its bound is the unidirectional
// bandwidth of the link connecting a node to its switch: 1 flit per
// cycle.
func CapacityFlits(top topology.Topology) (float64, error) {
	switch t := top.(type) {
	case *topology.Tree:
		return 1.0, nil
	case *topology.Cube:
		bisection := 2 * t.BisectionLinks() // unidirectional channels, flits/cycle
		bound := 2 * float64(bisection) / float64(t.Nodes())
		// Low radices make the bisection bound exceed what the single
		// injection channel can deliver (8/k > 1 for k < 8 on the torus);
		// the binding constraint is then the injection link, exactly as
		// on the tree. The paper's 16-ary 2-cube is bisection-limited.
		if bound > 1 {
			bound = 1
		}
		return bound, nil
	default:
		return 0, fmt.Errorf("phys: unknown topology family %T", top)
	}
}

// CapacityBytes returns the same bound in bytes per node per cycle; the
// normalization makes it equal (2 bytes/node/cycle) for the paper's two
// networks, which is what lets Figures 5 and 6 share a normalized x axis.
func CapacityBytes(top topology.Topology) (float64, error) {
	flits, err := CapacityFlits(top)
	if err != nil {
		return 0, err
	}
	fb, err := FlitBytes(top)
	if err != nil {
		return 0, err
	}
	return flits * float64(fb), nil
}

// PacketRate converts an offered load expressed as a fraction of capacity
// into the per-node, per-cycle packet creation probability of the
// injection process.
func PacketRate(top topology.Topology, loadFraction float64) (float64, error) {
	if loadFraction < 0 {
		return 0, fmt.Errorf("phys: negative load fraction %v", loadFraction)
	}
	capFlits, err := CapacityFlits(top)
	if err != nil {
		return 0, err
	}
	pf, err := PacketFlits(top)
	if err != nil {
		return 0, err
	}
	return loadFraction * capFlits / float64(pf), nil
}

// LinkCount returns the number of bidirectional links of the topology as
// the paper counts them — n*k^n for both families: the cube has n
// channels per node; the tree has k^n node links plus (n-1)*k^n
// inter-switch links, the idle external connections at the root excluded.
// The quaternary fat-tree therefore has twice as many links as the
// bidimensional cube of equal size, which the halved data path
// compensates.
func LinkCount(top topology.Topology) (int, error) {
	switch t := top.(type) {
	case *topology.Tree:
		return t.N * t.Nodes(), nil
	case *topology.Cube:
		links := t.N * t.Nodes()
		if !t.Wrap {
			// The mesh lacks the k^(n-1) wrap-around links per dimension.
			links -= t.N * t.Nodes() / t.K
		}
		return links, nil
	default:
		return 0, fmt.Errorf("phys: unknown topology family %T", top)
	}
}

// PeakBandwidthBytes returns the aggregate peak bandwidth in bytes per
// cycle: links x flit width x two directions. The normalization equalizes
// it across the two families (the tree has twice the links, the cube
// twice the width).
func PeakBandwidthBytes(top topology.Topology) (int, error) {
	links, err := LinkCount(top)
	if err != nil {
		return 0, err
	}
	fb, err := FlitBytes(top)
	if err != nil {
		return 0, err
	}
	return links * fb * 2, nil
}

// PinEquivalentWidth returns arity x flit width for a router of the
// family — the pin count proxy the paper equalizes (8 links x 2 bytes on
// the tree switch, 4 links x 4 bytes on the cube router, node connections
// excluded).
func PinEquivalentWidth(top topology.Topology) (int, error) {
	switch t := top.(type) {
	case *topology.Tree:
		return 2 * t.K * TreeFlitBytes, nil
	case *topology.Cube:
		return 2 * t.N * CubeFlitBytes, nil
	default:
		return 0, fmt.Errorf("phys: unknown topology family %T", top)
	}
}

// ThroughputBitsPerNS converts an accepted load fraction into the
// aggregate network throughput in bits per nanosecond, given the
// configuration's clock period in nanoseconds — the y axis of Figure
// 7 a/c/e/g.
func ThroughputBitsPerNS(top topology.Topology, loadFraction, clockNS float64) (float64, error) {
	capBytes, err := CapacityBytes(top)
	if err != nil {
		return 0, err
	}
	return loadFraction * capBytes * float64(top.Nodes()) * 8 / clockNS, nil
}

// LatencyNS converts a latency in cycles to nanoseconds.
func LatencyNS(cycles, clockNS float64) float64 { return cycles * clockNS }
