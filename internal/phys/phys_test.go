package phys

import (
	"math"
	"testing"

	"smart/internal/topology"
)

func paperPair(t *testing.T) (*topology.Tree, *topology.Cube) {
	t.Helper()
	tree, err := topology.NewTree(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := topology.NewCube(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	return tree, cube
}

// TestMatchedPairPaperInstance verifies §5's fairness conditions for the
// paper's chosen pair: same processing nodes and same routing chips.
func TestMatchedPairPaperInstance(t *testing.T) {
	ok, err := MatchedPair(4, 4, 16, 2)
	if err != nil || !ok {
		t.Fatalf("4-ary 4-tree vs 16-ary 2-cube not matched (ok=%v err=%v)", ok, err)
	}
}

func TestMatchedPairImpliesKEqualsN(t *testing.T) {
	// The equations imply k1 = n1 and N = k1^k1: (3,3) vs (3,3) works,
	// (2,2) vs (4,1) works; mismatched pairs fail.
	ok, err := MatchedPair(3, 3, 3, 3)
	if err != nil || !ok {
		t.Fatalf("3-ary 3-tree vs 3-ary 3-cube should match: ok=%v err=%v", ok, err)
	}
	ok, err = MatchedPair(2, 2, 4, 1)
	if err != nil || !ok {
		t.Fatalf("2-ary 2-tree vs 4-ary 1-cube should match: ok=%v err=%v", ok, err)
	}
	ok, err = MatchedPair(4, 2, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("4-ary 2-tree vs 16-ary 2-cube should not match (different node counts)")
	}
	ok, err = MatchedPair(4, 3, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("4-ary 3-tree (64 nodes, 48 switches) should not match an equal-node cube")
	}
}

func TestFlitBytes(t *testing.T) {
	tree, cube := paperPair(t)
	if fb, err := FlitBytes(tree); err != nil || fb != 2 {
		t.Fatalf("tree flit = %d bytes (%v), want 2", fb, err)
	}
	if fb, err := FlitBytes(cube); err != nil || fb != 4 {
		t.Fatalf("cube flit = %d bytes (%v), want 4", fb, err)
	}
}

func TestPacketFlits(t *testing.T) {
	tree, cube := paperPair(t)
	if pf, err := PacketFlits(tree); err != nil || pf != 32 {
		t.Fatalf("tree packet = %d flits (%v), want 32", pf, err)
	}
	if pf, err := PacketFlits(cube); err != nil || pf != 16 {
		t.Fatalf("cube packet = %d flits (%v), want 16", pf, err)
	}
}

// TestCapacityNormalization checks the central normalization claim of §5:
// with 2-byte flits on the tree and 4-byte on the cube, both networks
// have the same uniform-traffic capacity bound of 2 bytes/node/cycle.
func TestCapacityNormalization(t *testing.T) {
	tree, cube := paperPair(t)
	tf, err := CapacityFlits(tree)
	if err != nil || tf != 1.0 {
		t.Fatalf("tree capacity %v flits (%v), want 1", tf, err)
	}
	cf, err := CapacityFlits(cube)
	if err != nil || cf != 0.5 {
		t.Fatalf("cube capacity %v flits (%v), want 0.5 (= 2B/N)", cf, err)
	}
	tb, _ := CapacityBytes(tree)
	cb, _ := CapacityBytes(cube)
	if tb != 2.0 || cb != 2.0 {
		t.Fatalf("capacities %v and %v bytes/node/cycle, want both 2", tb, cb)
	}
}

func TestCapacityScalesWithRadix(t *testing.T) {
	// 8/k flits per node per cycle: an 8-ary 3-cube sits exactly at the
	// injection limit of 1 flit/cycle.
	cube, _ := topology.NewCube(8, 3)
	cf, err := CapacityFlits(cube)
	if err != nil || cf != 1.0 {
		t.Fatalf("8-ary 3-cube capacity %v (%v), want 1.0", cf, err)
	}
}

func TestCapacityInjectionBoundLowRadix(t *testing.T) {
	// A binary 8-cube (hypercube) has abundant bisection (8/k = 4); the
	// single injection channel caps the per-node bound at 1 flit/cycle.
	hyper, err := topology.NewCube(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := CapacityFlits(hyper)
	if err != nil || cf != 1.0 {
		t.Fatalf("hypercube capacity %v (%v), want the injection bound 1.0", cf, err)
	}
}

func TestMeshCapacityHalvesTorus(t *testing.T) {
	mesh, err := topology.NewMesh(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := CapacityFlits(mesh)
	if err != nil || cf != 0.25 {
		t.Fatalf("16-ary 2-mesh capacity %v (%v), want 0.25 (half the torus)", cf, err)
	}
	links, err := LinkCount(mesh)
	if err != nil || links != 512-32 {
		t.Fatalf("mesh links %d (%v), want 480 (torus minus wrap links)", links, err)
	}
}

// TestPeakBandwidthEqualized checks §5: the tree has twice the links, the
// cube twice the data path, so the aggregate peak bandwidth is the same.
func TestPeakBandwidthEqualized(t *testing.T) {
	tree, cube := paperPair(t)
	tl, err := LinkCount(tree)
	if err != nil || tl != 1024 {
		t.Fatalf("tree links %d (%v), want n*k^n = 1024", tl, err)
	}
	cl, err := LinkCount(cube)
	if err != nil || cl != 512 {
		t.Fatalf("cube links %d (%v), want 512", cl, err)
	}
	tp, _ := PeakBandwidthBytes(tree)
	cp, _ := PeakBandwidthBytes(cube)
	if tp != cp {
		t.Fatalf("peak bandwidths differ: tree %d, cube %d", tp, cp)
	}
}

// TestPinCountEqualized checks the pin-count argument: 8 links x 2 bytes
// on the tree switch equals 4 links x 4 bytes on the cube router.
func TestPinCountEqualized(t *testing.T) {
	tree, cube := paperPair(t)
	tw, err := PinEquivalentWidth(tree)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := PinEquivalentWidth(cube)
	if err != nil {
		t.Fatal(err)
	}
	if tw != cw || tw != 16 {
		t.Fatalf("pin-equivalent widths tree=%d cube=%d, want both 16", tw, cw)
	}
}

// TestPacketRateEqualAcrossFamilies: at the same fraction of capacity the
// two networks generate the same packets/node/cycle (x/32 for 64-byte
// packets), which is what makes the normalized x axes comparable.
func TestPacketRateEqualAcrossFamilies(t *testing.T) {
	tree, cube := paperPair(t)
	for _, load := range []float64{0.1, 0.5, 1.0} {
		tr, err := PacketRate(tree, load)
		if err != nil {
			t.Fatal(err)
		}
		cr, err := PacketRate(cube, load)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tr-cr) > 1e-15 {
			t.Fatalf("load %v: tree rate %v != cube rate %v", load, tr, cr)
		}
		if want := load / 32; math.Abs(tr-want) > 1e-15 {
			t.Fatalf("load %v: rate %v, want %v", load, tr, want)
		}
	}
	if _, err := PacketRate(tree, -0.1); err == nil {
		t.Fatal("negative load accepted")
	}
}

// TestThroughputConversion reproduces the scale of Figure 7: at 100% of
// capacity the cube moves 4096 bits/cycle; with Duato's 7.8 ns clock
// that is ~525 bits/ns, so the measured 80% saturation lands near the
// paper's 440 bits/ns.
func TestThroughputConversion(t *testing.T) {
	_, cube := paperPair(t)
	full, err := ThroughputBitsPerNS(cube, 1.0, 7.8019550008653875)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-525.0) > 0.5 {
		t.Fatalf("full-capacity throughput %v bits/ns, want ~525", full)
	}
	at80 := 0.80 * full
	if math.Abs(at80-420) > 1 {
		t.Fatalf("80%% saturation = %v bits/ns, want ~420 (paper: 440)", at80)
	}
}

func TestLatencyNS(t *testing.T) {
	if got := LatencyNS(100, 6.34); math.Abs(got-634) > 1e-9 {
		t.Fatalf("LatencyNS = %v, want 634", got)
	}
}

func TestUnknownTopologyErrors(t *testing.T) {
	var unknown topology.Topology
	type fake struct{ topology.Topology }
	unknown = fake{}
	if _, err := FlitBytes(unknown); err == nil {
		t.Error("FlitBytes accepted unknown family")
	}
	if _, err := CapacityFlits(unknown); err == nil {
		t.Error("CapacityFlits accepted unknown family")
	}
	if _, err := LinkCount(unknown); err == nil {
		t.Error("LinkCount accepted unknown family")
	}
	if _, err := PinEquivalentWidth(unknown); err == nil {
		t.Error("PinEquivalentWidth accepted unknown family")
	}
}

func TestPacketBytesConstant(t *testing.T) {
	if PacketBytes != 64 {
		t.Fatalf("PacketBytes = %d, want the paper's 64", PacketBytes)
	}
}
