// Package lint implements smartlint, the static half of the repo's
// determinism contract. The golden fixtures in internal/core pin the
// simulator's bit-identical replay property dynamically, but only on
// the configurations they sample; smartlint enforces the contract at
// the source level on every build, flagging the constructs that
// historically reintroduce nondeterminism into cycle-accurate
// simulators: map-order iteration, wall-clock reads, the global RNG,
// exact float comparison, and wall-time sleeps.
//
// The analyzer is stdlib-only. Package metadata and compiled export
// data come from `go list -export -deps -json`; sources are parsed
// with go/parser and checked with go/types, so every rule sees real
// type information (a range over a named map type or a comparison of
// defined float types is caught, not just the literal spellings).
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one rule violation at a source position. Its String
// form is the contract with CI: "file:line: rule: message"; the JSON
// tags are the contract with smartlint -json consumers.
type Diagnostic struct {
	Path    string `json:"path"`
	Line    int    `json:"line"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Path, d.Line, d.Rule, d.Message)
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path; rule exemptions key off it
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	// Types is the checked package object; the whole-program rules walk
	// its scope and imports for interface-implementation discovery.
	Types *types.Package
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// Loader loads and type-checks packages using only the go toolchain.
// One Loader shares a FileSet, an export-data cache and an importer
// across every package it loads, so stdlib dependencies are resolved
// once per process.
type Loader struct {
	Dir string // working directory for go list invocations

	fset *token.FileSet
	imp  types.Importer

	//smartlint:allow concurrency — the analyzer is a build tool, not simulator code; guards the export cache
	mu      sync.Mutex
	exports map[string]string // import path -> compiled export data file
}

// NewLoader returns a Loader rooted at dir (the module root, or any
// directory below it).
func NewLoader(dir string) *Loader {
	l := &Loader{Dir: dir, fset: token.NewFileSet(), exports: map[string]string{}}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookupExport)
	return l
}

// Load lists the packages matching patterns, records export data for
// their whole dependency closure, and type-checks each matched package
// from source.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.goList(append([]string{"-export", "-deps", "-json"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	l.mu.Lock()
	for _, p := range listed {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	l.mu.Unlock()
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		pkg, err := l.checkFiles(p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the non-test .go files of a single
// directory under the given import path. It exists for the analyzer's
// own fixture packages, which live under testdata/ where go list does
// not look; the import path is caller-chosen so tests can probe
// path-scoped exemptions (e.g. internal/obs and the wallclock rule).
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	sort.Strings(names)
	return l.checkFiles(importPath, dir, names)
}

// checkFiles parses the named files in dir and type-checks them as one
// package. Type-check failures are fatal: diagnostics from a
// half-resolved tree would be unreliable in both directions.
func (l *Loader) checkFiles(importPath, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Fset: l.fset, Files: files, Info: info, Types: tpkg}, nil
}

// lookupExport feeds compiled export data to the gc importer. Paths
// outside the cached closure (fixture imports such as "time" when only
// a testdata directory was loaded) are resolved with a further go list
// call and cached.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		listed, err := l.goList("-export", "-deps", "-json", path)
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		for _, p := range listed {
			if p.Export != "" {
				l.exports[p.ImportPath] = p.Export
			}
		}
		file, ok = l.exports[path]
		l.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
	}
	return os.Open(file)
}

func (l *Loader) goList(args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = l.Dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Run loads the packages matching patterns relative to dir, checks
// every per-file rule and the whole-program rules, and returns the
// surviving diagnostics sorted by position, with file paths relative to
// dir where possible.
func Run(dir string, patterns []string) ([]Diagnostic, error) {
	pkgs, err := NewLoader(dir).Load(patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, p := range pkgs {
		diags = append(diags, Check(p)...)
	}
	prog := NewProgram(pkgs)
	diags = append(diags, prog.Diagnostics()...)
	diags = append(diags, prog.CheckShardSafe()...)
	diags = append(diags, prog.CheckDigestPure()...)
	hot, err := prog.CheckHotAlloc(dir)
	if err != nil {
		return nil, err
	}
	diags = append(diags, hot...)
	if abs, err := filepath.Abs(dir); err == nil {
		for i := range diags {
			if rel, err := filepath.Rel(abs, diags[i].Path); err == nil && !strings.HasPrefix(rel, "..") {
				diags[i].Path = rel
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Path != diags[j].Path {
			return diags[i].Path < diags[j].Path
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Rule != diags[j].Rule {
			return diags[i].Rule < diags[j].Rule
		}
		return diags[i].Message < diags[j].Message
	})
}
