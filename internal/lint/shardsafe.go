package lint

// The shardsafe rule is the static half of the sharded engine's
// bit-identical guarantee (DESIGN.md §12–§13). The parallel cycle runs
// every shard's compute phase concurrently with no locks; correctness
// rests on an ownership discipline — a shard writes only its own state,
// and cross-shard effects travel through the mailbox API committed
// after the barrier. That discipline used to be audited by humans; this
// rule machine-checks it on the call graph reachable from the
// //smartlint:shardentry roots:
//
//   - every write must land in shard-owned state: a local, a value of a
//     //smartlint:shardowned type, or one element of a
//     //smartlint:shardindexed per-entity array;
//   - writes to package-level variables, to shared struct fields
//     (anything else), or whole-field writes of shardindexed arrays are
//     flagged;
//   - goroutines, channels and sync primitives are banned outright in
//     the compute phase, even in packages the concurrency rule exempts
//     — the pool barrier is the only synchronization;
//   - //smartlint:shardsink functions (the mailbox API) are trusted
//     boundaries and not descended into;
//   - dynamic calls through named interfaces dispatch to every loaded
//     implementation; an unresolvable dynamic call is itself a finding,
//     because unchecked code in the compute phase is exactly the hole
//     the rule exists to close.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"smart/internal/order"
)

// CheckShardSafe runs the shardsafe rule over the program and returns
// the surviving diagnostics (sorted by position).
func (p *Program) CheckShardSafe() []Diagnostic {
	var entries []string
	for _, id := range order.Keys(p.ann.funcs) {
		if p.ann.funcs[id]["shardentry"] {
			entries = append(entries, id)
		}
	}
	var diags []Diagnostic
	visited := map[string]bool{}
	for _, entry := range entries {
		if node := p.fns[entry]; node != nil {
			p.shardWalk(node, entry, visited, &diags)
		}
	}
	sortDiagnostics(diags)
	return diags
}

// shardWalk visits node and everything reachable from it, checking each
// function once (the first entry to reach it is named in diagnostics).
func (p *Program) shardWalk(node *funcNode, entry string, visited map[string]bool, diags *[]Diagnostic) {
	if visited[node.id] {
		return
	}
	visited[node.id] = true
	pkg := node.pkg
	report := func(pos token.Pos, format string, args ...any) {
		if p.allowed(pkg, pos, RuleShardSafe) {
			return
		}
		at := pkg.Fset.Position(pos)
		msg := fmt.Sprintf(format, args...)
		*diags = append(*diags, Diagnostic{Path: at.Filename, Line: at.Line, Rule: RuleShardSafe,
			Message: fmt.Sprintf("%s in %s (reachable from shard entry %s)", msg, node.id, entry)})
	}
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n.Go, "go statement spawns a goroutine inside the shard compute phase: the pool barrier is the only synchronization")
		case *ast.SendStmt:
			report(n.Arrow, "channel send inside the shard compute phase: cross-shard effects must go through the mailbox API")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.OpPos, "channel receive inside the shard compute phase: cross-shard effects must go through the mailbox API")
			}
		case *ast.SelectStmt:
			report(n.Select, "select inside the shard compute phase: the pool barrier is the only synchronization")
		case *ast.SelectorExpr:
			if ident, ok := n.X.(*ast.Ident); ok {
				if pn, ok := pkg.Info.Uses[ident].(*types.PkgName); ok {
					switch pn.Imported().Path() {
					case "sync", "sync/atomic":
						report(n.Pos(), "%s.%s inside the shard compute phase: shard state must be plainly owned, not synchronized", pn.Imported().Name(), n.Sel.Name)
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				break
			}
			for _, lhs := range n.Lhs {
				if ok, detail := p.shardOwned(pkg, lhs); !ok {
					report(lhs.Pos(), "write to %s: the compute phase may only write shard-owned state", detail)
				}
			}
		case *ast.IncDecStmt:
			if ok, detail := p.shardOwned(pkg, n.X); !ok {
				report(n.X.Pos(), "write to %s: the compute phase may only write shard-owned state", detail)
			}
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					report(n.Range, "range over a channel inside the shard compute phase")
				}
			}
		case *ast.CallExpr:
			targets, unresolved := p.callTargets(pkg, call(n))
			if unresolved && !p.allowed(pkg, n.Pos(), RuleShardSafe) {
				at := pkg.Fset.Position(n.Pos())
				*diags = append(*diags, Diagnostic{Path: at.Filename, Line: at.Line, Rule: RuleShardSafe,
					Message: fmt.Sprintf("dynamic call cannot be resolved to any loaded implementation in %s (reachable from shard entry %s): annotate or allow it — unchecked code in the compute phase defeats the ownership audit", node.id, entry)})
			}
			if p.allowed(pkg, n.Pos(), RuleShardSafe) {
				break // suppressed call sites also suppress traversal
			}
			for _, id := range targets {
				if syncTarget(id) {
					report(n.Pos(), "call to %s inside the shard compute phase: shard state must be plainly owned, not synchronized", id)
					continue
				}
				p.descend(id, entry, visited, diags)
			}
			// Function values passed as arguments may be invoked by the
			// callee within the phase: audit them too.
			for _, arg := range n.Args {
				if id, ok := p.funcValueID(pkg, arg); ok {
					p.descend(id, entry, visited, diags)
				}
			}
		}
		return true
	})
}

// call exists to keep the type switch terse.
func call(n *ast.CallExpr) *ast.CallExpr { return n }

// syncTarget reports whether a resolved callee ID belongs to sync or
// sync/atomic — mutex methods on local values (mu.Lock()) resolve here
// even though no sync package qualifier appears at the call site.
func syncTarget(id string) bool {
	for _, prefix := range []string{"sync.", "(sync.", "sync/atomic.", "(sync/atomic."} {
		if strings.HasPrefix(id, prefix) {
			return true
		}
	}
	return false
}

// descend follows one call edge unless the callee is a trusted
// shardsink boundary or has no loaded body (stdlib and export-only
// functions are out of scope — they cannot touch simulator state).
func (p *Program) descend(id, entry string, visited map[string]bool, diags *[]Diagnostic) {
	if p.ann.fn(id, "shardsink") {
		return
	}
	if node := p.fns[id]; node != nil {
		p.shardWalk(node, entry, visited, diags)
	}
}

// shardOwned decides whether a write to e stays within the current
// shard's ownership. The detail string names the offending root when it
// does not.
func (p *Program) shardOwned(pkg *Package, e ast.Expr) (bool, string) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return true, ""
		}
		obj := pkg.Info.Uses[e]
		if obj == nil {
			obj = pkg.Info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return false, fmt.Sprintf("package-level variable %s", e.Name)
			}
		}
		return true, "" // locals and parameters
	case *ast.SelectorExpr:
		base := pkg.Info.TypeOf(e.X)
		if named := namedOf(base); named != nil && p.ann.typ(typeID(named.Obj()), "shardowned") {
			return true, ""
		}
		if sel, ok := pkg.Info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && p.ann.field(v, "shardindexed") {
				return false, fmt.Sprintf("shard-indexed field %s as a whole (only element writes are shard-local)", e.Sel.Name)
			}
		}
		return false, fmt.Sprintf("field %s of non-shard-owned type %s", e.Sel.Name, typeName(base))
	case *ast.IndexExpr:
		if se, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
			if sel, ok := pkg.Info.Selections[se]; ok {
				if v, ok := sel.Obj().(*types.Var); ok && p.ann.field(v, "shardindexed") {
					return true, "" // one element of a per-entity array
				}
			}
		}
		return p.shardOwned(pkg, e.X)
	case *ast.StarExpr:
		if pt, ok := pkg.Info.TypeOf(e.X).Underlying().(*types.Pointer); ok {
			if named := namedOf(pt.Elem()); named != nil && p.ann.typ(typeID(named.Obj()), "shardowned") {
				return true, ""
			}
			return false, fmt.Sprintf("dereference of pointer to non-shard-owned type %s", typeName(pt.Elem()))
		}
		return false, "dereference of non-pointer"
	}
	return false, "unsupported write target"
}

// typeName renders t compactly for diagnostics.
func typeName(t types.Type) string {
	if t == nil {
		return "<unknown>"
	}
	if named := namedOf(t); named != nil {
		return named.Obj().Name()
	}
	return t.String()
}
