package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe matches golden-diagnostic markers in fixture sources:
// `// want "re"` expects a diagnostic on the same line whose
// "rule: message" rendering matches the regexp; `// want+1 "re"`
// (or any signed offset) anchors the expectation that many lines
// below, for diagnostics reported on comment-only lines.
var wantRe = regexp.MustCompile(`// want([+-][0-9]+)? "((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

func readExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var expects []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				offset := 0
				if m[1] != "" {
					offset, err = strconv.Atoi(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want offset %q", e.Name(), i+1, m[1])
					}
				}
				pattern := strings.ReplaceAll(m[2], `\"`, `"`)
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", e.Name(), i+1, pattern, err)
				}
				expects = append(expects, &expectation{file: e.Name(), line: i + 1 + offset, re: re, raw: pattern})
			}
		}
	}
	return expects
}

// checkFixture analyzes one fixture package and verifies its
// diagnostics against the // want markers, in both directions: every
// marker must be satisfied and every diagnostic must be expected.
func checkFixture(t *testing.T, name, importPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := NewLoader(".").LoadDir(dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	diags := Check(pkg)
	expects := readExpectations(t, dir)
	for _, d := range diags {
		rendered := d.Rule + ": " + d.Message
		matched := false
		for _, e := range expects {
			if e.file == filepath.Base(d.Path) && e.line == d.Line && e.re.MatchString(rendered) {
				e.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("missing diagnostic at %s:%d matching %q", e.file, e.line, e.raw)
		}
	}
}

func TestRuleFixtures(t *testing.T) {
	for _, name := range []string{"maprange", "wallclock", "globalrand", "floateq", "naketime", "nakedrecover", "allow"} {
		t.Run(name, func(t *testing.T) {
			checkFixture(t, name, "fixture/"+name)
		})
	}
}

// TestWallclockExemptInObs loads the wallclock fixture under an
// internal/obs import path: every wall-clock read that the rule flags
// elsewhere is legal there, so no diagnostics survive.
func TestWallclockExemptInObs(t *testing.T) {
	pkg, err := NewLoader(".").LoadDir(filepath.Join("testdata", "src", "wallclock"), "smart/internal/obs")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Check(pkg); len(diags) != 0 {
		t.Fatalf("internal/obs should be exempt from wallclock, got %d diagnostics: %v", len(diags), diags)
	}
}

// TestRecoverExemptInResilience loads the nakedrecover fixture under an
// internal/resilience import path: every recover the rule flags
// elsewhere is legal there, so no diagnostics survive.
func TestRecoverExemptInResilience(t *testing.T) {
	pkg, err := NewLoader(".").LoadDir(filepath.Join("testdata", "src", "nakedrecover"), "smart/internal/resilience")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Check(pkg); len(diags) != 0 {
		t.Fatalf("internal/resilience should be exempt from nakedrecover, got %d diagnostics: %v", len(diags), diags)
	}
}

// TestConcurrencyFixture loads the concurrency fixture under an
// internal/ import path, where the rule applies.
func TestConcurrencyFixture(t *testing.T) {
	checkFixture(t, "concurrency", "smart/internal/concurrency")
}

// TestConcurrencyExemptHomes loads the same fixture under the two
// sanctioned concurrency homes and outside internal/ entirely: no
// diagnostics may survive in any of them.
func TestConcurrencyExemptHomes(t *testing.T) {
	for _, path := range []string{"smart/internal/sim", "smart/internal/core", "smart/cmd/sweep"} {
		pkg, err := NewLoader(".").LoadDir(filepath.Join("testdata", "src", "concurrency"), path)
		if err != nil {
			t.Fatal(err)
		}
		if diags := Check(pkg); len(diags) != 0 {
			t.Fatalf("%s should be exempt from concurrency, got %d diagnostics: %v", path, len(diags), diags)
		}
	}
}

// TestInjectedViolation proves the end-to-end failure mode: a fresh
// package with a contract violation produces a file:line: rule:
// diagnostic (this is what makes cmd/smartlint exit nonzero).
func TestInjectedViolation(t *testing.T) {
	dir := t.TempDir()
	src := "package bad\n\nimport \"time\"\n\nfunc Stamp() int64 { return time.Now().UnixNano() }\n"
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader(".").LoadDir(dir, "injected/bad")
	if err != nil {
		t.Fatal(err)
	}
	diags := Check(pkg)
	if len(diags) != 1 {
		t.Fatalf("want exactly one diagnostic, got %v", diags)
	}
	d := diags[0]
	if d.Rule != RuleWallclock || d.Line != 5 {
		t.Fatalf("want a wallclock diagnostic on line 5, got %s", d)
	}
	if !regexp.MustCompile(`bad\.go:5: wallclock: `).MatchString(d.String()) {
		t.Fatalf("diagnostic %q does not render as file:line: rule: message", d.String())
	}
}

// TestSelfClean runs the analyzer over the repository's own simulation
// and command packages — the same invocation CI gates on. The tree
// must stay clean: any new finding is either a real determinism hazard
// to fix or needs a justified //smartlint:allow.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped in -short mode")
	}
	diags, err := Run(filepath.Join("..", ".."), []string{"./internal/...", "./cmd/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("determinism contract violation: %s", d)
	}
}
