package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe matches golden-diagnostic markers in fixture sources:
// `// want "re"` expects a diagnostic on the same line whose
// "rule: message" rendering matches the regexp; `// want+1 "re"`
// (or any signed offset) anchors the expectation that many lines
// below, for diagnostics reported on comment-only lines.
var wantRe = regexp.MustCompile(`// want([+-][0-9]+)? "((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

func readExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var expects []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				offset := 0
				if m[1] != "" {
					offset, err = strconv.Atoi(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want offset %q", e.Name(), i+1, m[1])
					}
				}
				pattern := strings.ReplaceAll(m[2], `\"`, `"`)
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", e.Name(), i+1, pattern, err)
				}
				expects = append(expects, &expectation{file: e.Name(), line: i + 1 + offset, re: re, raw: pattern})
			}
		}
	}
	return expects
}

// matchDiagnostics verifies diags against the // want markers in dir, in
// both directions: every marker must be satisfied and every diagnostic
// must be expected.
func matchDiagnostics(t *testing.T, dir string, diags []Diagnostic) {
	t.Helper()
	expects := readExpectations(t, dir)
	for _, d := range diags {
		rendered := d.Rule + ": " + d.Message
		matched := false
		for _, e := range expects {
			if e.file == filepath.Base(d.Path) && e.line == d.Line && e.re.MatchString(rendered) {
				e.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("missing diagnostic at %s:%d matching %q", e.file, e.line, e.raw)
		}
	}
}

// checkFixture analyzes one fixture package with the per-file rules and
// verifies the diagnostics against the fixture's markers.
func checkFixture(t *testing.T, name, importPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := NewLoader(".").LoadDir(dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	matchDiagnostics(t, dir, Check(pkg))
}

// checkProgramFixture analyzes one fixture package with the
// whole-program machinery — directive hygiene plus the given check —
// skipping the per-file rules (the digestpure fixture legitimately reads
// the wall clock, which the wallclock rule would flag).
func checkProgramFixture(t *testing.T, name, importPath string, check func(*Program) []Diagnostic) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := NewLoader(".").LoadDir(dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram([]*Package{pkg})
	diags := append(prog.Diagnostics(), check(prog)...)
	matchDiagnostics(t, dir, diags)
}

func TestRuleFixtures(t *testing.T) {
	for _, name := range []string{"maprange", "wallclock", "globalrand", "floateq", "naketime", "nakedrecover", "allow"} {
		t.Run(name, func(t *testing.T) {
			checkFixture(t, name, "fixture/"+name)
		})
	}
}

// TestWallclockExemptInObs loads the wallclock fixture under an
// internal/obs import path: every wall-clock read that the rule flags
// elsewhere is legal there, so no diagnostics survive.
func TestWallclockExemptInObs(t *testing.T) {
	pkg, err := NewLoader(".").LoadDir(filepath.Join("testdata", "src", "wallclock"), "smart/internal/obs")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Check(pkg); len(diags) != 0 {
		t.Fatalf("internal/obs should be exempt from wallclock, got %d diagnostics: %v", len(diags), diags)
	}
}

// TestRecoverExemptInResilience loads the nakedrecover fixture under an
// internal/resilience import path: every recover the rule flags
// elsewhere is legal there, so no diagnostics survive.
func TestRecoverExemptInResilience(t *testing.T) {
	pkg, err := NewLoader(".").LoadDir(filepath.Join("testdata", "src", "nakedrecover"), "smart/internal/resilience")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Check(pkg); len(diags) != 0 {
		t.Fatalf("internal/resilience should be exempt from nakedrecover, got %d diagnostics: %v", len(diags), diags)
	}
}

// TestConcurrencyFixture loads the concurrency fixture under an
// internal/ import path, where the rule applies.
func TestConcurrencyFixture(t *testing.T) {
	checkFixture(t, "concurrency", "smart/internal/concurrency")
}

// TestConcurrencyExemptHomes loads the same fixture under the two
// sanctioned concurrency homes and outside internal/ entirely: no
// diagnostics may survive in any of them.
func TestConcurrencyExemptHomes(t *testing.T) {
	for _, path := range []string{"smart/internal/sim", "smart/internal/core", "smart/cmd/sweep"} {
		pkg, err := NewLoader(".").LoadDir(filepath.Join("testdata", "src", "concurrency"), path)
		if err != nil {
			t.Fatal(err)
		}
		if diags := Check(pkg); len(diags) != 0 {
			t.Fatalf("%s should be exempt from concurrency, got %d diagnostics: %v", path, len(diags), diags)
		}
	}
}

// TestShardSafeFixture runs the whole-program ownership rule over its
// fixture: entry-rooted traversal, ownership classification, the
// concurrency bans, interface dispatch, callbacks, the sink boundary
// and the allow hatch.
func TestShardSafeFixture(t *testing.T) {
	checkProgramFixture(t, "shardsafe", "fixture/shardsafe", func(p *Program) []Diagnostic {
		return p.CheckShardSafe()
	})
}

// TestDigestPureFixture runs the environmental-taint rule over its
// fixture: built-in and annotated sources, returns-tainted summaries,
// both sink forms, the undigested carve-out and the allow hatch.
func TestDigestPureFixture(t *testing.T) {
	checkProgramFixture(t, "digestpure", "fixture/digestpure", func(p *Program) []Diagnostic {
		return p.CheckDigestPure()
	})
}

// TestDirectiveHygieneFixture proves unknown, misplaced and floating
// directives are reported rather than silently ignored.
func TestDirectiveHygieneFixture(t *testing.T) {
	checkProgramFixture(t, "directive", "fixture/directive", func(p *Program) []Diagnostic {
		return nil
	})
}

// TestHotAllocFixture runs the escape-analysis rule over its fixture.
// The fixture compiles for real (the rule shells out to go build), so it
// is loaded under its true module import path and checked from the
// module root, mirroring a production smartlint invocation.
func TestHotAllocFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the fixture package; skipped in -short mode")
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "hotalloc"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader(".").LoadDir(dir, "smart/internal/lint/testdata/src/hotalloc")
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram([]*Package{pkg})
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := prog.CheckHotAlloc(root)
	if err != nil {
		t.Fatal(err)
	}
	matchDiagnostics(t, dir, diags)
}

// TestInjectedShardViolation seeds a fresh package with a compute-phase
// global write and proves the shardsafe rule names the exact line.
func TestInjectedShardViolation(t *testing.T) {
	dir := t.TempDir()
	src := `package bad

var hits int

//smartlint:shardentry
func Compute(w int) { hits++ }
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader(".").LoadDir(dir, "injected/shard")
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram([]*Package{pkg})
	diags := prog.CheckShardSafe()
	if len(diags) != 1 {
		t.Fatalf("want exactly one diagnostic, got %v", diags)
	}
	if d := diags[0]; d.Rule != RuleShardSafe || d.Line != 6 {
		t.Fatalf("want a shardsafe diagnostic on line 6, got %s", d)
	}
}

// TestInjectedHotAllocViolation seeds an escaping allocation in a
// hotpath function at the module root and proves the hotalloc rule
// catches it through the full Run pipeline. The root placement is the
// regression point: the compiler prints root-package files as
// "./file.go", which must still match the root-relative body index.
func TestInjectedHotAllocViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the injected module; skipped in -short mode")
	}
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module injected\n\ngo 1.22\n",
		"hot.go": `package hot

//smartlint:hotpath
func Boxed() *int {
	return new(int)
}
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	diags, err := Run(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly one diagnostic, got %v", diags)
	}
	if d := diags[0]; d.Rule != RuleHotAlloc || d.Line != 5 {
		t.Fatalf("want a hotalloc diagnostic on line 5, got %s", d)
	}
}

// TestInjectedDigestViolation seeds a wall-clock value flowing into a
// digest sink and proves the digestpure rule catches the argument.
func TestInjectedDigestViolation(t *testing.T) {
	dir := t.TempDir()
	src := `package bad

import "time"

//smartlint:digestsink
func Digest(vs []int64) {}

func Leak() { Digest([]int64{time.Now().UnixNano()}) }
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader(".").LoadDir(dir, "injected/digest")
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram([]*Package{pkg})
	diags := prog.CheckDigestPure()
	if len(diags) != 1 {
		t.Fatalf("want exactly one diagnostic, got %v", diags)
	}
	if d := diags[0]; d.Rule != RuleDigestPure || d.Line != 8 {
		t.Fatalf("want a digestpure diagnostic on line 8, got %s", d)
	}
}

// TestInjectedViolation proves the end-to-end failure mode: a fresh
// package with a contract violation produces a file:line: rule:
// diagnostic (this is what makes cmd/smartlint exit nonzero).
func TestInjectedViolation(t *testing.T) {
	dir := t.TempDir()
	src := "package bad\n\nimport \"time\"\n\nfunc Stamp() int64 { return time.Now().UnixNano() }\n"
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader(".").LoadDir(dir, "injected/bad")
	if err != nil {
		t.Fatal(err)
	}
	diags := Check(pkg)
	if len(diags) != 1 {
		t.Fatalf("want exactly one diagnostic, got %v", diags)
	}
	d := diags[0]
	if d.Rule != RuleWallclock || d.Line != 5 {
		t.Fatalf("want a wallclock diagnostic on line 5, got %s", d)
	}
	if !regexp.MustCompile(`bad\.go:5: wallclock: `).MatchString(d.String()) {
		t.Fatalf("diagnostic %q does not render as file:line: rule: message", d.String())
	}
}

// TestSelfClean runs the analyzer over the repository's own simulation
// and command packages — the same invocation CI gates on. The tree
// must stay clean: any new finding is either a real determinism hazard
// to fix or needs a justified //smartlint:allow.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped in -short mode")
	}
	diags, err := Run(filepath.Join("..", ".."), []string{"./internal/...", "./cmd/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("determinism contract violation: %s", d)
	}
}
