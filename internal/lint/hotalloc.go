package lint

// The hotalloc rule pins the active-set fast path's zero-allocation
// property (DESIGN.md §6, §13). The per-cycle sweep is fast because it
// touches preallocated flat arrays and never calls the allocator; a
// refactor that introduces a heap allocation (an escaping closure, a
// boxed interface argument, a slice literal) shows up as a GC-driven
// throughput cliff only at scale — long after the PR merged.
//
// Functions annotated //smartlint:hotpath are checked against the
// compiler's own escape analysis: the rule runs
// `go build -gcflags=-m <pkg>` and flags any "escapes to heap" /
// "moved to heap" diagnostic positioned inside a hotpath function
// body. Three carve-outs keep the signal clean:
//
//   - a constant string "escaping to heap" is exempt — the compiler
//     converts constant strings to static read-only interface data, so
//     no allocation happens at run time (these show up through inlined
//     panic("...") calls, attributed to the caller's line);
//   - allocations inside panic(...) arguments are exempt — a panic is
//     the end of the simulation, its formatting cost is irrelevant;
//   - //smartlint:allow hotalloc — <reason> on the allocating line
//     works as everywhere else (e.g. an amortized append that the
//     AllocsPerRun guard proves is warm-state free).
//
// The dynamic halves of the contract are the testing.AllocsPerRun
// guards next to the annotated code; this rule is the static half that
// names the exact line when they start failing.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"smart/internal/order"
)

// escapeLine matches one escape diagnostic from -gcflags=-m:
// "internal/phys/phys.go:49:6: x escapes to heap".
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*(?:escapes to heap|moved to heap).*)$`)

// constStringEscape matches a constant string "escaping": the compiler
// materializes those as static eface data, so nothing allocates at run
// time. Inlining attributes them to the caller's line, outside any
// panic(...) the AST exemption could see.
var constStringEscape = regexp.MustCompile(`^".*" escapes to heap`)

// hotFunc is one hotpath-annotated function's body extent.
type hotFunc struct {
	id       string
	path     string // file path relative to the module root
	from, to int    // body line range, inclusive
	pkg      *Package
	decl     *ast.FuncDecl
}

// CheckHotAlloc verifies every //smartlint:hotpath function against the
// compiler's escape analysis. dir is the directory smartlint was
// invoked from (used to resolve the module root and to run the builds).
func (p *Program) CheckHotAlloc(dir string) ([]Diagnostic, error) {
	hots, pkgPaths := p.hotFuncs(dir)
	if len(hots) == 0 {
		return nil, nil
	}
	var diags []Diagnostic
	for _, pkgPath := range pkgPaths {
		out, err := escapeOutput(dir, pkgPath)
		if err != nil {
			return nil, err
		}
		diags = append(diags, matchEscapes(out, hots, p)...)
	}
	sortDiagnostics(diags)
	return dedupe(diags), nil
}

// hotFuncs indexes the hotpath-annotated functions by file and body
// range, and returns the sorted set of import paths that declare them.
func (p *Program) hotFuncs(dir string) ([]hotFunc, []string) {
	root := moduleRoot(dir)
	var hots []hotFunc
	seenPkg := map[string]bool{}
	var pkgPaths []string
	for _, id := range order.Keys(p.fns) {
		node := p.fns[id]
		if !p.ann.fn(id, "hotpath") {
			continue
		}
		from := node.pkg.Fset.Position(node.decl.Body.Lbrace).Line
		to := node.pkg.Fset.Position(node.decl.Body.Rbrace).Line
		path := node.pkg.Fset.Position(node.decl.Pos()).Filename
		if root != "" {
			if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
				path = rel
			}
		}
		hots = append(hots, hotFunc{id: id, path: filepath.ToSlash(path), from: from, to: to, pkg: node.pkg, decl: node.decl})
		if !seenPkg[node.pkg.Path] {
			seenPkg[node.pkg.Path] = true
			pkgPaths = append(pkgPaths, node.pkg.Path)
		}
	}
	sort.Strings(pkgPaths)
	return hots, pkgPaths
}

// escapeOutput compiles pkgPath with escape-analysis diagnostics
// enabled and returns the compiler's stderr. The go tool replays cached
// diagnostics, so repeated lint runs do not pay for recompilation.
func escapeOutput(dir, pkgPath string) (string, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", pkgPath)
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("lint: go build -gcflags=-m %s: %v\n%s", pkgPath, err, out.String())
	}
	return out.String(), nil
}

// matchEscapes attributes escape diagnostics to hotpath bodies.
func matchEscapes(out string, hots []hotFunc, p *Program) []Diagnostic {
	var diags []Diagnostic
	for _, line := range strings.Split(out, "\n") {
		m := escapeLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		// Packages in the module root print as "./file.go"; hotFunc
		// paths are root-relative without the prefix.
		file := strings.TrimPrefix(filepath.ToSlash(m[1]), "./")
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		msg := m[4]
		if constStringEscape.MatchString(msg) {
			continue // static read-only data, not a runtime allocation
		}
		for _, h := range hots {
			if h.path != file || lineNo < h.from || lineNo > h.to {
				continue
			}
			pos := positionToPos(h, lineNo, col)
			if pos.IsValid() && inPanicArg(h.decl, pos) {
				continue // panic formatting is end-of-simulation, exempt
			}
			if pos.IsValid() && p.allowed(h.pkg, pos, RuleHotAlloc) {
				continue
			}
			abs := h.pkg.Fset.Position(h.decl.Pos()).Filename
			diags = append(diags, Diagnostic{Path: abs, Line: lineNo, Rule: RuleHotAlloc,
				Message: fmt.Sprintf("heap allocation in hotpath function %s: %s (compiler escape analysis)", h.id, msg)})
		}
	}
	return diags
}

// positionToPos converts a (line, col) pair back into a token.Pos inside
// the hotpath function's file, so the allow table (keyed by Pos) and the
// AST (for the panic exemption) can be consulted.
func positionToPos(h hotFunc, line, col int) token.Pos {
	tf := h.pkg.Fset.File(h.decl.Pos())
	if tf == nil || line > tf.LineCount() {
		return token.NoPos
	}
	p := tf.LineStart(line)
	return p + token.Pos(col-1)
}

// inPanicArg reports whether pos falls inside the argument list of a
// panic call within decl.
func inPanicArg(decl *ast.FuncDecl, pos token.Pos) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ident, ok := call.Fun.(*ast.Ident); ok && ident.Name == "panic" {
			if pos >= call.Lparen && pos <= call.Rparen {
				found = true
			}
		}
		return !found
	})
	return found
}

// moduleRoot locates the enclosing go.mod directory, "" when dir is not
// inside a module (escape paths then stay absolute and simply fail to
// match, which surfaces as missing coverage in tests rather than false
// negatives in CI).
func moduleRoot(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return ""
		}
		abs = parent
	}
}

// dedupe removes adjacent duplicate diagnostics (the compiler can emit
// the same escape twice when a package is built for multiple configs).
func dedupe(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if len(out) > 0 && out[len(out)-1] == d {
			continue
		}
		out = append(out, d)
	}
	return out
}
