package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The per-file rules of the determinism and resilience contract, the
// whole-program effect rules (shardsafe, hotalloc, digestpure), plus
// the pseudo-rule "allow" reported for malformed //smartlint:allow
// comments and misplaced directives.
const (
	RuleMapRange     = "maprange"
	RuleWallclock    = "wallclock"
	RuleGlobalRand   = "globalrand"
	RuleFloatEq      = "floateq"
	RuleNakedTime    = "naketime"
	RuleNakedRecover = "nakedrecover"
	RuleConcurrency  = "concurrency"
	RuleShardSafe    = "shardsafe"
	RuleHotAlloc     = "hotalloc"
	RuleDigestPure   = "digestpure"
	ruleAllow        = "allow"
)

// Rules lists the rule names in a fixed presentation order.
var Rules = []string{
	RuleMapRange, RuleWallclock, RuleGlobalRand, RuleFloatEq,
	RuleNakedTime, RuleNakedRecover, RuleConcurrency,
	RuleShardSafe, RuleHotAlloc, RuleDigestPure,
}

var knownRules = map[string]bool{
	RuleMapRange:     true,
	RuleWallclock:    true,
	RuleGlobalRand:   true,
	RuleFloatEq:      true,
	RuleNakedTime:    true,
	RuleNakedRecover: true,
	RuleConcurrency:  true,
	RuleShardSafe:    true,
	RuleHotAlloc:     true,
	RuleDigestPure:   true,
}

// globalRandFns are the math/rand (and math/rand/v2) package-level
// functions that touch the shared process-wide generator. Constructors
// for explicitly seeded instances (New, NewSource, NewPCG, NewChaCha8,
// NewZipf) are the sanctioned alternative and stay legal.
var globalRandFns = map[string]bool{
	"Seed": true, "Int": true, "Intn": true, "IntN": true, "N": true,
	"Int31": true, "Int31n": true, "Int32": true, "Int32N": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32": true, "Uint32N": true,
	"Uint64": true, "Uint64N": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Read": true,
}

// wallclockExempt reports whether a package may read the wall clock:
// internal/obs is the designated home for wall-time instrumentation.
func wallclockExempt(path string) bool {
	return path == "internal/obs" || strings.HasSuffix(path, "/internal/obs")
}

// recoverExempt reports whether a package may call recover:
// internal/resilience is the designated home for panic isolation.
func recoverExempt(path string) bool {
	return path == "internal/resilience" || strings.HasSuffix(path, "/internal/resilience")
}

// concurrencyExempt reports whether a package may spawn goroutines and
// use sync primitives directly. internal/sim owns the shard worker
// pool and internal/core owns the engine lifecycle around it; every
// other internal package must stay single-threaded (or route through
// the pool) so the cycle schedule remains deterministic. Packages
// outside internal/ — commands, tools — are off the simulator hot path
// and out of scope.
func concurrencyExempt(path string) bool {
	for _, home := range []string{"internal/sim", "internal/core"} {
		if path == home || strings.HasSuffix(path, "/"+home) {
			return true
		}
	}
	return !strings.Contains(path, "internal/")
}

// Check runs every rule over the package's non-test files and returns
// the diagnostics that survive //smartlint:allow suppression, sorted
// by position.
func Check(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Files {
		diags = append(diags, checkFile(pkg, file)...)
	}
	sortDiagnostics(diags)
	return diags
}

type allowKey struct {
	line int
	rule string
}

func checkFile(pkg *Package, file *ast.File) []Diagnostic {
	if strings.HasSuffix(pkg.Fset.Position(file.Pos()).Filename, "_test.go") {
		return nil
	}
	allows, diags := parseAllows(pkg.Fset, file)
	var raw []Diagnostic
	report := func(pos token.Pos, rule, format string, args ...any) {
		p := pkg.Fset.Position(pos)
		raw = append(raw, Diagnostic{Path: p.Filename, Line: p.Line, Rule: rule, Message: fmt.Sprintf(format, args...)})
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					report(n.Range, RuleMapRange,
						"range over %s: map iteration order is nondeterministic and breaks bit-identical replay; iterate sorted keys (order.Keys) instead",
						types.TypeString(t, nil))
				}
			}
		case *ast.SelectorExpr:
			ident, ok := n.X.(*ast.Ident)
			if !ok {
				break
			}
			pn, ok := pkg.Info.Uses[ident].(*types.PkgName)
			if !ok {
				break
			}
			switch path := pn.Imported().Path(); path {
			case "time":
				switch n.Sel.Name {
				case "Now", "Since", "Until":
					if !wallclockExempt(pkg.Path) {
						report(n.Pos(), RuleWallclock,
							"time.%s reads the wall clock: simulation time is the engine cycle counter; route wall-time instrumentation through internal/obs",
							n.Sel.Name)
					}
				case "Sleep":
					report(n.Pos(), RuleNakedTime,
						"time.Sleep stalls on wall time: simulation delays are modeled in cycles, not host time")
				}
			case "sync":
				if !concurrencyExempt(pkg.Path) {
					report(n.Pos(), RuleConcurrency,
						"sync.%s is a raw synchronization primitive: shard coordination lives in internal/sim (worker pool + barrier) and internal/core; elsewhere it risks a nondeterministic cycle schedule",
						n.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if globalRandFns[n.Sel.Name] {
					verb := "draws from"
					if n.Sel.Name == "Seed" {
						verb = "reseeds"
					}
					report(n.Pos(), RuleGlobalRand,
						"%s.%s %s the shared global RNG: all simulation randomness must flow through the seeded sim RNG (or a local rand.New)",
						path, n.Sel.Name, verb)
				}
			}
		case *ast.GoStmt:
			if !concurrencyExempt(pkg.Path) {
				report(n.Go, RuleConcurrency,
					"go statement spawns a goroutine outside internal/sim: route simulator concurrency through the sim worker pool so worker count and schedule stay bit-identical")
			}
		case *ast.CallExpr:
			if ident, ok := n.Fun.(*ast.Ident); ok && ident.Name == "recover" {
				if b, ok := pkg.Info.Uses[ident].(*types.Builtin); ok && b.Name() == "recover" && !recoverExempt(pkg.Path) {
					report(n.Pos(), RuleNakedRecover,
						"recover swallows panics outside internal/resilience: route panic isolation through resilience.Run so failures stay per-run errors with stacks")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				if isFloat(pkg.Info.TypeOf(n.X)) || isFloat(pkg.Info.TypeOf(n.Y)) {
					report(n.OpPos, RuleFloatEq,
						"%s compares floats exactly: rounding makes exact equality seed- and platform-sensitive; compare against a tolerance instead",
						n.Op)
				}
			}
		}
		return true
	})
	for _, d := range raw {
		if allows[allowKey{d.Line, d.Rule}] || allows[allowKey{d.Line - 1, d.Rule}] {
			continue
		}
		diags = append(diags, d)
	}
	return diags
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

const allowPrefix = "//smartlint:allow"

// parseAllows collects the //smartlint:allow comments of a file. A
// well-formed comment is "//smartlint:allow <rule> — <reason>" (plain
// "-" or "--" separators are accepted too) and suppresses diagnostics
// of that rule on its own line and on the line directly below. A
// missing justification or an unknown rule name is itself reported:
// the escape hatch must leave an audit trail.
func parseAllows(fset *token.FileSet, file *ast.File) (map[allowKey]bool, []Diagnostic) {
	allows := map[allowKey]bool{}
	var diags []Diagnostic
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			p := fset.Position(c.Pos())
			bad := func(format string, args ...any) {
				diags = append(diags, Diagnostic{Path: p.Filename, Line: p.Line, Rule: ruleAllow, Message: fmt.Sprintf(format, args...)})
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
			rule, tail, _ := strings.Cut(rest, " ")
			if rule == "" {
				bad("missing rule name: write %q", "//smartlint:allow <rule> — <reason>")
				continue
			}
			if !knownRules[rule] {
				bad("unknown rule %q (known rules: %s)", rule, strings.Join(Rules, ", "))
				continue
			}
			reason, ok := cutSeparator(tail)
			if !ok || reason == "" {
				bad("//smartlint:allow %s needs a justification: write %q", rule, "//smartlint:allow "+rule+" — <reason>")
				continue
			}
			allows[allowKey{p.Line, rule}] = true
		}
	}
	return allows, diags
}

// cutSeparator strips the "— " (or "-", "--") separator that must
// precede the justification and returns what follows.
func cutSeparator(tail string) (string, bool) {
	tail = strings.TrimSpace(tail)
	for _, sep := range []string{"—", "–", "--", "-"} {
		if rest, ok := strings.CutPrefix(tail, sep); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}
