// Package floateq exercises the floateq rule: no exact ==/!= between
// float operands — rounding makes exact equality seed- and
// platform-sensitive.
package floateq

type cycles float64

// Equal compares float64 exactly.
func Equal(a, b float64) bool {
	return a == b // want "floateq: == compares floats exactly"
}

// NotEqual compares float32 exactly.
func NotEqual(a, b float32) bool {
	return a != b // want "floateq: != compares floats"
}

// Zero compares a float against an untyped constant.
func Zero(a float64) bool {
	return a == 0 // want "floateq:"
}

// Named compares a defined type with float underlying.
func Named(a, b cycles) bool {
	return a == b // want "floateq:"
}

// Ints is a control: exact integer comparison is fine.
func Ints(a, b int) bool {
	return a == b
}

// Close is the sanctioned shape: compare against a tolerance.
func Close(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
