// Package shardsafe exercises the whole-program shard-ownership rule:
// write-target classification (locals, shardowned types, shardindexed
// elements, globals, shared fields), the in-phase concurrency bans,
// interface dispatch to loaded implementations, closure and callback
// auditing, the shardsink boundary, and the allow hatch.
package shardsafe

import (
	"sync"
	"sync/atomic"
)

// state is one shard's private slice of the engine.
//
//smartlint:shardowned
type state struct {
	id    int
	count int64
	mail  [][]int
}

// engine is shared across shards: its plain fields are not shard-owned.
type engine struct {
	cycle  int64
	shards []state
	// occupancy has one element per router; element writes are
	// shard-local, whole-field writes are not.
	//
	//smartlint:shardindexed
	occupancy []int
	algo      chooser
	counter   int64
}

// chooser models a routing-algorithm interface dispatched in-phase.
type chooser interface {
	choose(r int) int
}

// biased is the loaded chooser implementation; the rule reaches its body
// through the dynamic call in compute.
type biased struct{ hits []int }

func (b *biased) choose(r int) int {
	b.hits[0]++ // want "shardsafe: write to field hits of non-shard-owned type biased"
	return r
}

var total int

// compute is a per-shard compute-phase root.
//
//smartlint:shardentry
func (e *engine) compute(sh *state, cycle int64) {
	sh.count++ // shard-owned value: clean
	sh.mail[sh.id] = append(sh.mail[sh.id], sh.id)
	e.occupancy[sh.id]++ // one element of a shard-indexed array: clean
	e.cycle = cycle      // want "shardsafe: write to field cycle of non-shard-owned type engine"
	e.occupancy = nil    // want "shardsafe: write to shard-indexed field occupancy as a whole"
	total++              // want "shardsafe: write to package-level variable total"
	e.algo.choose(sh.id)
	e.helper(sh)
	e.wait(nil)
	reset(sh)
	bump(&sh.count)
	e.deposit(sh, 1)
	e.invoke(func(v int) {
		total += v // want "shardsafe: write to package-level variable total"
	})
	e.invoke(record)
}

func (e *engine) helper(sh *state) {
	go e.spin() // want "shardsafe: go statement spawns a goroutine"
	ch := make(chan int, 1)
	ch <- sh.id                    // want "shardsafe: channel send inside the shard compute phase"
	<-ch                           // want "shardsafe: channel receive inside the shard compute phase"
	var mu sync.Mutex              // want "shardsafe: sync.Mutex inside the shard compute phase"
	mu.Lock()                      // want "shardsafe: call to \(sync.Mutex\).Lock inside the shard compute phase"
	atomic.AddInt64(&e.counter, 1) // want "shardsafe: atomic.AddInt64 inside" // want "shardsafe: call to sync/atomic.AddInt64 inside"
}

func (e *engine) spin() {}

func (e *engine) wait(ch chan int) {
	select {}      // want "shardsafe: select inside the shard compute phase"
	for range ch { // want "shardsafe: range over a channel inside the shard compute phase"
	}
}

// reset shows pointer writes resolve through the pointee's type.
func reset(s *state) {
	(*s).count = 0 // clean: the pointee type is shard-owned
}

// bump takes a raw pointer: provenance is lost, so the write is flagged
// even when every caller passes shard-owned memory — the rule
// over-approximates on untyped escape hatches by design.
func bump(c *int64) {
	*c++ // want "shardsafe: write to dereference of pointer to non-shard-owned type int64"
}

// record is referenced as a callback value, never called directly: the
// rule still audits it.
func record(v int) {
	total += v // want "shardsafe: write to package-level variable total"
}

func (e *engine) invoke(fn func(int)) {
	_ = fn
}

// deposit is the mailbox API: the one sanctioned cross-shard write.
// Its body is a trusted boundary and is not walked.
//
//smartlint:shardsink
func (e *engine) deposit(sh *state, v int) {
	e.cycle = int64(v)
}

// commit shows the allow hatch: the allowed call site suppresses both
// the diagnostic and the traversal into the callee.
//
//smartlint:shardentry
func (e *engine) commit(sh *state) {
	sh.count = 0
	//smartlint:allow shardsafe — models a Tracer callback on the serial schedule
	e.traced()
}

func (e *engine) traced() {
	e.cycle++
}

// dispatch calls through a func-typed parameter: unresolvable, which is
// itself a finding.
//
//smartlint:shardentry
func (e *engine) dispatch(fn func()) {
	fn() // want "shardsafe: dynamic call cannot be resolved to any loaded implementation"
}
