// Package concurrency exercises the concurrency rule: go statements
// and sync primitives are confined to internal/sim and internal/core.
// This fixture is loaded under an internal/ import path by the tests;
// under internal/sim or outside internal/ every diagnostic vanishes.
package concurrency

import "sync"

type guarded struct {
	mu sync.Mutex // want "concurrency: sync.Mutex is a raw synchronization primitive"
	n  int
}

func spawn(f func()) {
	go f() // want "concurrency: go statement spawns a goroutine"
}

func waitAll(fs []func()) {
	var wg sync.WaitGroup // want "concurrency: sync.WaitGroup is a raw synchronization primitive"
	for _, f := range fs {
		wg.Add(1)
		go func() { // want "concurrency: go statement spawns a goroutine"
			defer wg.Done()
			f()
		}()
	}
	wg.Wait()
}

func sanctioned(f func()) {
	//smartlint:allow concurrency — fixture: audited background task
	go f()
}
