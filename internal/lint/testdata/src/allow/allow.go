// Package allow exercises the //smartlint:allow escape hatch itself:
// a justified annotation suppresses its finding, while an annotation
// with no justification — or naming an unknown rule — is a violation
// in its own right, and suppresses nothing.
package allow

import "time"

// Justified carries a reason, so both the comment and the wall-clock
// read below it are clean.
func Justified() time.Time {
	//smartlint:allow wallclock — fixture: reason present, finding suppressed
	return time.Now()
}

// Trailing shows the same on the flagged line itself.
func Trailing(start time.Time) time.Duration {
	return time.Since(start) //smartlint:allow wallclock — fixture: trailing annotation
}

// Bare has no justification: the annotation is reported and the
// finding it failed to justify still fires.
func Bare() time.Time {
	// want+1 "allow: //smartlint:allow wallclock needs a justification"
	//smartlint:allow wallclock
	return time.Now() // want "wallclock: time.Now"
}

// Unjustified has the separator but nothing after it.
func Unjustified() time.Time {
	// want+1 "allow: .*needs a justification"
	//smartlint:allow wallclock —
	return time.Now() // want "wallclock: time.Now"
}

// Unknown names a rule that does not exist.
func Unknown() time.Time {
	// want+1 "allow: unknown rule \"clocks\""
	//smartlint:allow clocks — no such rule
	return time.Now() // want "wallclock: time.Now"
}
