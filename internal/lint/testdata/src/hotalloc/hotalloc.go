// Package hotalloc exercises the hotpath escape-analysis rule. Unlike
// the other fixtures it must really compile — the rule shells out to
// `go build -gcflags=-m` — so it lives at its true module import path
// and the fixture test loads it under that path.
package hotalloc

import "fmt"

// sink forces pointer escapes the compiler could otherwise elide.
var sink any

type point struct{ x int }

// Boxed heap-allocates by publishing a pointer to the package sink.
//
//smartlint:hotpath
func Boxed(v int) {
	p := &point{x: v} // want "hotalloc: heap allocation in hotpath function"
	sink = p
}

// Closure heap-allocates a closure capturing n.
//
//smartlint:hotpath
func Closure(n int) func() int {
	return func() int { return n } // want "hotalloc: heap allocation in hotpath function"
}

// Guarded allocates only inside its panic argument: exempt, a panic is
// the end of the simulation.
//
//smartlint:hotpath
func Guarded(i, n int) int {
	if i >= n {
		panic(fmt.Sprintf("hotalloc: index %d out of range %d", i, n))
	}
	return i
}

// Amortized allocates behind a justified allow.
//
//smartlint:hotpath
func Amortized(n int) []int {
	//smartlint:allow hotalloc — construction-time scratch, warm-state freedom proven by an AllocsPerRun guard
	return make([]int, n)
}

// Cold allocates freely: unannotated functions are not checked.
func Cold(n int) []int { return make([]int, n) }
