// Package directive exercises the annotation hygiene pass: unknown,
// misplaced and floating directives must fail the lint run, because a
// directive that silently attaches to nothing checks nothing.
package directive

// Typo in the directive name.
//
//smartlint:hotpth
func Typo() {} // want "allow: directive //smartlint:hotpth does not apply to a function declaration"

// Type directive on a function.
//
//smartlint:shardowned
func Misplaced() {} // want "directive //smartlint:shardowned does not apply to a function declaration"

// Function directive on a type.
//
//smartlint:hotpath
type wrong struct{ n int } // want "directive //smartlint:hotpath does not apply to a type declaration"

// Function directive on a struct field.
type fields struct {
	//smartlint:shardentry
	n int // want "directive //smartlint:shardentry does not apply to a struct field"
}

// A directive inside a function body floats.
func host() int {
	//smartlint:taint
	return 0 // want-1 "directive //smartlint:taint is not attached to a declaration it applies to"
}

// A directive on a var declaration floats too: only funcs, types and
// fields carry contracts.
//
//smartlint:digested
var counters int // want-1 "directive //smartlint:digested is not attached to a declaration it applies to"

//smartlint:bogus
var bogus = counters + host() // want-1 "unknown directive //smartlint:bogus"
