// Package maprange exercises the maprange rule: no range over map
// types, because iteration order is nondeterministic.
package maprange

import "sort"

type registry map[string]int

// Keys ranges a plain map type.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want "maprange: range over map\[string\]int"
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Values ranges with the value variable only.
func Values(m map[int]string) []string {
	var out []string
	for _, v := range m { // want "maprange:"
		out = append(out, v)
	}
	return out
}

// Named ranges a defined type whose underlying type is a map.
func Named(r registry) int {
	total := 0
	for range r { // want "maprange:"
		total++
	}
	return total
}

// Slices is a control: ranging slices, strings and ints is fine.
func Slices(xs []int, s string) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	for range s {
		total++
	}
	return total
}

// Sum shows the escape hatch: a justified allow suppresses the finding.
func Sum(m map[string]int) int {
	total := 0
	//smartlint:allow maprange — order folds into a commutative sum; the walk cannot leak
	for _, v := range m {
		total += v
	}
	return total
}
