// Package digestpure exercises the environmental-taint rule: built-in
// and annotated sources, propagation through locals and function
// returns, the digestsink and digested-field sinks, the undigested
// carve-out, and the allow hatch.
package digestpure

import (
	"runtime"
	"time"
)

// record is the digested manifest row.
//
//smartlint:digested
type record struct {
	Cycles int64
	// WallMS mirrors obs.RunRecord.WallMS: canonicalization zeroes it,
	// so wall-clock writes are sanctioned.
	//
	//smartlint:undigested
	WallMS float64
	Label  string
}

// fingerprint is the digest sink.
//
//smartlint:digestsink
func fingerprint(recs []record) string {
	_ = recs
	return ""
}

// shards is an annotated environmental source, like (*Fabric).Shards.
//
//smartlint:taint
func shards() int { return 1 }

// sneaky carries taint through a return: the whole-program summary
// fixpoint marks it tainted without any annotation.
func sneaky() int64 {
	t := time.Now().UnixNano()
	return t
}

func build(cycles int64) record {
	var rec record
	rec.Cycles = cycles                                          // clean: simulated state
	rec.WallMS = float64(time.Since(time.Time{}).Milliseconds()) // clean: undigested field
	rec.Cycles = sneaky()                                        // want "digestpure: environment-tainted value written to digested field record.Cycles"
	rec.Label = lit()
	return rec
}

func lit() string { return "ok" }

func digestAll() {
	n := runtime.GOMAXPROCS(0)
	recs := make([]record, n)
	_ = fingerprint(recs) // want "digestpure: environment-tainted value \(wall clock, shard count, or GOMAXPROCS\) reaches digest sink"
}

func digestClean() {
	recs := []record{{Cycles: 42, Label: "ok"}}
	_ = fingerprint(recs)
}

func initLit() record {
	return record{
		Cycles: int64(shards()),            // want "digestpure: environment-tainted value initializes digested field Cycles of record"
		WallMS: float64(time.Now().Unix()), // clean: undigested
		Label:  lit(),
	}
}

func allowed() record {
	var rec record
	//smartlint:allow digestpure — the value is clamped against simulated state upstream
	rec.Cycles = int64(shards())
	return rec
}
