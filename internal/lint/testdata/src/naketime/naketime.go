// Package naketime exercises the naketime rule: no time.Sleep in
// non-test simulation code — delays are modeled in cycles.
package naketime

import "time"

// Wait sleeps on the host clock.
func Wait() {
	time.Sleep(time.Millisecond) // want "naketime: time.Sleep stalls on wall time"
}

// Backoff shows the justified escape hatch.
func Backoff(d time.Duration) {
	//smartlint:allow naketime — fixture: a justified sleep is suppressed
	time.Sleep(d)
}
