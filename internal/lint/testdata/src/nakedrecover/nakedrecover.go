// Package nakedrecover exercises the nakedrecover rule: recover() is
// permitted only inside internal/resilience, so panic-swallowing cannot
// silently spread. The lint tests also load this package under an
// internal/resilience import path to prove the exemption.
package nakedrecover

// Swallow recovers inline — the classic silent panic eater.
func Swallow(fn func()) {
	defer func() {
		recover() // want "nakedrecover: recover swallows panics"
	}()
	fn()
}

// Inspect recovers into a variable; still flagged.
func Inspect(fn func()) (v any) {
	defer func() {
		v = recover() // want "nakedrecover: recover swallows panics"
	}()
	fn()
	return nil
}

// Allowed shows the audited escape hatch.
func Allowed(fn func()) {
	defer func() {
		//smartlint:allow nakedrecover — fixture exercising the escape hatch
		recover()
	}()
	fn()
}

// Shadowed is a control: a local function named recover is not the
// builtin and stays legal.
func Shadowed() {
	recover := func() int { return 0 }
	_ = recover()
}
