// Package wallclock exercises the wallclock rule: no time.Now,
// time.Since or time.Until outside internal/obs — simulation time is
// the cycle counter. The lint tests also load this package under an
// internal/obs import path to prove the exemption.
package wallclock

import "time"

// Stamp reads the wall clock directly.
func Stamp() int64 {
	return time.Now().UnixNano() // want "wallclock: time.Now reads the wall clock"
}

// Elapsed measures wall time.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "wallclock: time.Since"
}

// Remaining is the third spelling.
func Remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want "wallclock: time.Until"
}

// Value catches the function used as a value, not just called.
func Value() func() time.Time {
	return time.Now // want "wallclock: time.Now"
}

// Types is a control: referring to time's types and constants is fine.
func Types(d time.Duration) time.Duration {
	return d + time.Millisecond
}
