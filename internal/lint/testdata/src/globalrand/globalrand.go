// Package globalrand exercises the globalrand rule: no package-level
// math/rand functions — they share one process-wide generator whose
// stream any import can perturb, so replays stop being bit-identical.
package globalrand

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// Roll draws from the global generator.
func Roll() int {
	return rand.Intn(6) // want "globalrand: math/rand.Intn draws from the shared global RNG"
}

// Reseed mutates the global generator.
func Reseed() {
	rand.Seed(42) // want "globalrand: math/rand.Seed reseeds the shared global RNG"
}

// V2 covers math/rand/v2's global functions.
func V2() int {
	return randv2.IntN(6) // want "globalrand: math/rand/v2.IntN"
}

// Local is a control: an explicitly seeded local instance is the
// sanctioned alternative, so the constructors stay legal.
func Local(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
