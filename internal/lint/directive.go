package lint

// Directives are the annotation half of the whole-program rules: short
// machine-readable markers in doc comments that declare the contracts
// the analyzer then enforces globally. Unlike //smartlint:allow — which
// weakens a rule at one site — a directive widens the checked surface:
// marking a function //smartlint:hotpath opts it into the
// zero-heap-allocation check, marking a type //smartlint:shardowned
// feeds the ownership model of the shardsafe rule.
//
//	//smartlint:shardentry    func: root of the per-shard compute/commit
//	                          phase call graph (shardsafe rule)
//	//smartlint:shardsink     func: trusted cross-shard boundary (the
//	                          mailbox API); shardsafe does not descend
//	//smartlint:shardowned    type: instances are owned by one shard;
//	                          writes through them are shard-local
//	//smartlint:shardindexed  field: a per-router/port/lane/node array
//	                          whose elements each belong to exactly one
//	                          shard; element writes are shard-local,
//	                          whole-field writes are not
//	//smartlint:hotpath       func: must not heap-allocate; checked
//	                          against the compiler's escape analysis
//	//smartlint:taint         func or field: the value depends on the
//	                          execution environment (wall clock, shard
//	                          count, GOMAXPROCS) — a digestpure source
//	//smartlint:digested      type: its fields feed content digests
//	//smartlint:undigested    field of a digested type that the digest
//	                          canonicalization zeroes; tainted writes ok
//	//smartlint:digestsink    func: arguments must be digest-pure
//
// A directive may carry a trailing "— <reason>" like allow comments;
// the reason is optional for directives (the contract is the reason).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

const directivePrefix = "//smartlint:"

// Directive kinds, by the declaration they attach to.
var funcDirectives = map[string]bool{
	"shardentry": true, "shardsink": true, "hotpath": true,
	"taint": true, "digestsink": true,
}

var typeDirectives = map[string]bool{
	"shardowned": true, "digested": true,
}

var fieldDirectives = map[string]bool{
	"shardindexed": true, "undigested": true, "taint": true,
}

// annotations indexes the directives of a loaded program. Functions and
// types are keyed by stable string IDs (package path + name), so a
// wormhole method annotated in its own package resolves identically
// when routing's type universe sees it through export data. Fields are
// keyed by their *types.Var object: field directives are only consulted
// from the declaring package's own universe (write sites elsewhere fall
// back to the type-level ownership rules).
type annotations struct {
	funcs  map[string]map[string]bool
	types  map[string]map[string]bool
	fields map[*types.Var]map[string]bool
}

func newAnnotations() *annotations {
	return &annotations{
		funcs:  map[string]map[string]bool{},
		types:  map[string]map[string]bool{},
		fields: map[*types.Var]map[string]bool{},
	}
}

func (a *annotations) fn(id, directive string) bool  { return a.funcs[id][directive] }
func (a *annotations) typ(id, directive string) bool { return a.types[id][directive] }
func (a *annotations) field(v *types.Var, d string) bool {
	if v == nil {
		return false
	}
	return a.fields[v][d]
}

// directivesOf extracts the smartlint directive names from a comment
// group, ignoring allow comments (parseAllows owns those).
func directivesOf(groups ...*ast.CommentGroup) []string {
	var out []string
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			name, ok := directiveName(c.Text)
			if ok && name != "allow" {
				out = append(out, name)
			}
		}
	}
	return out
}

// directiveName splits "//smartlint:<name> [— reason]" and returns the
// name. ok is false for comments that are not smartlint directives.
func directiveName(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, directivePrefix)
	if !ok {
		return "", false
	}
	name, _, _ := strings.Cut(rest, " ")
	return strings.TrimSpace(name), true
}

// pkgPathOf returns the import path of the package declaring obj, ""
// for builtins.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// funcID returns the stable cross-universe identity of a function or
// method: "path.Name" for package functions, "(path.Recv).Name" for
// methods (pointer and value receivers collapse to one ID).
func funcID(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkgPathOf(fn) + "." + fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return "(" + pkgPathOf(n.Obj()) + "." + n.Obj().Name() + ")." + fn.Name()
	}
	return "(" + t.String() + ")." + fn.Name()
}

// typeID returns the stable identity of a named type.
func typeID(tn *types.TypeName) string {
	return pkgPathOf(tn) + "." + tn.Name()
}

// namedOf unwraps pointers and aliases down to the named type of t, nil
// when t has no name (unnamed structs, basics, slices...).
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return nil
		}
	}
}

// collect scans one package's declarations and merges their directives
// into a. It returns diagnostics for unknown or misplaced directives —
// a typo like //smartlint:hotpth must fail the build, not silently
// leave a function unchecked.
func (a *annotations) collect(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	bad := func(pos ast.Node, format string, args ...any) {
		p := pkg.Fset.Position(pos.Pos())
		diags = append(diags, Diagnostic{Path: p.Filename, Line: p.Line, Rule: ruleAllow, Message: fmt.Sprintf(format, args...)})
	}
	for _, file := range pkg.Files {
		attached := map[*ast.Comment]bool{}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				markAttached(attached, d.Doc)
				obj, _ := pkg.Info.Defs[d.Name].(*types.Func)
				for _, name := range directivesOf(d.Doc) {
					if !funcDirectives[name] {
						bad(d, "directive //smartlint:%s does not apply to a function declaration", name)
						continue
					}
					if obj != nil {
						a.add(a.funcs, funcID(obj), name)
					}
				}
			case *ast.GenDecl:
				// Only type declarations consume doc directives; a
				// directive on a var/const declaration attaches to
				// nothing and falls through to the floating check.
				if d.Tok == token.TYPE {
					markAttached(attached, d.Doc)
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					markAttached(attached, ts.Doc, ts.Comment)
					tn, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
					for _, name := range directivesOf(d.Doc, ts.Doc, ts.Comment) {
						if !typeDirectives[name] {
							bad(ts, "directive //smartlint:%s does not apply to a type declaration", name)
							continue
						}
						if tn != nil {
							a.add(a.types, typeID(tn), name)
						}
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, f := range st.Fields.List {
						markAttached(attached, f.Doc, f.Comment)
						for _, name := range directivesOf(f.Doc, f.Comment) {
							if !fieldDirectives[name] {
								bad(f, "directive //smartlint:%s does not apply to a struct field", name)
								continue
							}
							for _, ident := range f.Names {
								if v, ok := pkg.Info.Defs[ident].(*types.Var); ok {
									a.addField(v, name)
								}
							}
						}
					}
				}
			}
		}
		// Directives anywhere else in the file (inside bodies, floating
		// between declarations) attach to nothing and silently check
		// nothing: report them.
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				name, ok := directiveName(c.Text)
				if !ok || name == "allow" || attached[c] {
					continue
				}
				if !funcDirectives[name] && !typeDirectives[name] && !fieldDirectives[name] {
					bad(c, "unknown directive //smartlint:%s", name)
				} else {
					bad(c, "directive //smartlint:%s is not attached to a declaration it applies to", name)
				}
			}
		}
	}
	return diags
}

func (a *annotations) add(m map[string]map[string]bool, id, directive string) {
	if m[id] == nil {
		m[id] = map[string]bool{}
	}
	m[id][directive] = true
}

func (a *annotations) addField(v *types.Var, directive string) {
	if a.fields[v] == nil {
		a.fields[v] = map[string]bool{}
	}
	a.fields[v][directive] = true
}

func markAttached(set map[*ast.Comment]bool, groups ...*ast.CommentGroup) {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			set[c] = true
		}
	}
}
