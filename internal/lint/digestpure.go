package lint

// The digestpure rule guards the replay contract from the environment.
// obs.Digest fingerprints a batch of runs so two machines can agree
// they simulated the same thing; that agreement breaks the moment a
// digested value depends on anything outside the simulated world —
// wall-clock time, the shard count, GOMAXPROCS. The digest
// canonicalization already zeroes the known environmental fields
// (WallMS, Shards, Schema); this rule proves no *new* environmental
// dependency leaks in.
//
// It is a flow-insensitive taint analysis:
//
//   - sources: calls to time.Now/Since/Until, runtime.NumCPU,
//     runtime.GOMAXPROCS, and any function annotated //smartlint:taint
//     (e.g. (*Pool).Workers, (*Fabric).Shards); reads of fields
//     annotated //smartlint:taint;
//   - propagation: assignment, arithmetic, composite literals,
//     conversions, and through function returns — a whole-program
//     fixpoint marks every loaded function whose result can carry
//     taint ("returns-tainted" summaries), so taint follows calls
//     across packages;
//   - sinks: arguments of //smartlint:digestsink functions (obs.Digest)
//     and writes to fields of //smartlint:digested types, except fields
//     marked //smartlint:undigested (the ones canonicalization zeroes).
//
// The analysis over-approximates: a tainted value anywhere in an
// expression taints the expression, and a function returning taint on
// any path taints every call. False positives are resolved with
// //smartlint:allow digestpure — <reason>, which is itself auditable.

import (
	"fmt"
	"go/ast"
	"go/types"

	"smart/internal/order"
)

// taintSources are the built-in environmental sources, by function ID.
var taintSources = map[string]bool{
	"time.Now":           true,
	"time.Since":         true,
	"time.Until":         true,
	"runtime.NumCPU":     true,
	"runtime.GOMAXPROCS": true,
}

// CheckDigestPure runs the digestpure rule over the program.
func (p *Program) CheckDigestPure() []Diagnostic {
	summaries := p.taintSummaries()
	var diags []Diagnostic
	for _, id := range order.Keys(p.fns) {
		p.checkDigestFlows(p.fns[id], summaries, &diags)
	}
	sortDiagnostics(diags)
	return diags
}

// taintSummaries computes, to a fixpoint, the set of function IDs whose
// return values may carry environmental taint. Annotated sources are
// members by definition; a function joins when its body can return a
// tainted expression under the current summary set.
func (p *Program) taintSummaries() map[string]bool {
	tainted := map[string]bool{}
	for _, id := range order.Keys(taintSources) {
		tainted[id] = true
	}
	for _, id := range order.Keys(p.ann.funcs) {
		if p.ann.funcs[id]["taint"] {
			tainted[id] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, id := range order.Keys(p.fns) {
			node := p.fns[id]
			if tainted[id] {
				continue
			}
			tl := p.taintedLocals(node, tainted)
			returns := false
			ast.Inspect(node.decl.Body, func(n ast.Node) bool {
				if ret, ok := n.(*ast.ReturnStmt); ok {
					for _, res := range ret.Results {
						if p.exprTainted(node.pkg, res, tl, tainted) {
							returns = true
						}
					}
				}
				return !returns
			})
			if returns {
				tainted[id] = true
				changed = true
			}
		}
	}
	return tainted
}

// taintedLocals computes the set of local variables in node that may
// hold tainted values, iterating the body to a local fixpoint (taint
// can flow forward through chains of assignments).
func (p *Program) taintedLocals(node *funcNode, summaries map[string]bool) map[*types.Var]bool {
	tl := map[*types.Var]bool{}
	for changed := true; changed; {
		changed = false
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			// Multi-value RHS (x, y := f()) taints every LHS when f does.
			rhsTaint := false
			if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
				rhsTaint = p.exprTainted(node.pkg, assign.Rhs[0], tl, summaries)
			}
			for i, lhs := range assign.Lhs {
				t := rhsTaint
				if !t && i < len(assign.Rhs) {
					t = p.exprTainted(node.pkg, assign.Rhs[i], tl, summaries)
				}
				if !t {
					continue
				}
				if ident, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					obj := node.pkg.Info.Defs[ident]
					if obj == nil {
						obj = node.pkg.Info.Uses[ident]
					}
					if v, ok := obj.(*types.Var); ok && !tl[v] {
						tl[v] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	return tl
}

// exprTainted reports whether e may carry environmental taint: it
// mentions a tainted local, reads a //smartlint:taint field, or calls a
// function in the summary set.
func (p *Program) exprTainted(pkg *Package, e ast.Expr, tl map[*types.Var]bool, summaries map[string]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			obj := pkg.Info.Uses[n]
			if v, ok := obj.(*types.Var); ok && (tl[v] || p.ann.field(v, "taint")) {
				found = true
			}
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[n]; ok {
				if v, ok := sel.Obj().(*types.Var); ok && p.ann.field(v, "taint") {
					found = true
				}
			}
		case *ast.CallExpr:
			ids, _ := p.callTargets(pkg, n)
			for _, id := range ids {
				if summaries[id] {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// checkDigestFlows scans one function for taint reaching a sink.
func (p *Program) checkDigestFlows(node *funcNode, summaries map[string]bool, diags *[]Diagnostic) {
	pkg := node.pkg
	tl := p.taintedLocals(node, summaries)
	report := func(pos ast.Node, format string, args ...any) {
		if p.allowed(pkg, pos.Pos(), RuleDigestPure) {
			return
		}
		at := pkg.Fset.Position(pos.Pos())
		*diags = append(*diags, Diagnostic{Path: at.Filename, Line: at.Line, Rule: RuleDigestPure,
			Message: fmt.Sprintf(format, args...)})
	}
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			ids, _ := p.callTargets(pkg, n)
			sink := false
			for _, id := range ids {
				if p.ann.fn(id, "digestsink") {
					sink = true
				}
			}
			if !sink {
				return true
			}
			for _, arg := range n.Args {
				if p.exprTainted(pkg, arg, tl, summaries) {
					report(arg, "environment-tainted value (wall clock, shard count, or GOMAXPROCS) reaches digest sink in %s: digests must depend only on the simulated world", node.id)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				field, undig := p.digestedField(pkg, lhs)
				if field == "" || undig {
					continue
				}
				rhs := n.Rhs[min(i, len(n.Rhs)-1)]
				if p.exprTainted(pkg, rhs, tl, summaries) {
					report(rhs, "environment-tainted value written to digested field %s in %s: mark the field //smartlint:undigested (and zero it in canonicalization) or derive the value from simulated state", field, node.id)
				}
			}
		case *ast.CompositeLit:
			named := namedOf(pkg.Info.TypeOf(n))
			if named == nil || !p.ann.typ(typeID(named.Obj()), "digested") {
				return true
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			for i, elt := range n.Elts {
				var field *types.Var
				var value ast.Expr
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if ident, ok := kv.Key.(*ast.Ident); ok {
						for j := 0; j < st.NumFields(); j++ {
							if st.Field(j).Name() == ident.Name {
								field = st.Field(j)
							}
						}
					}
					value = kv.Value
				} else if i < st.NumFields() {
					field, value = st.Field(i), elt
				}
				if field == nil || p.ann.field(field, "undigested") {
					continue
				}
				if p.exprTainted(pkg, value, tl, summaries) {
					report(value, "environment-tainted value initializes digested field %s of %s in %s", field.Name(), named.Obj().Name(), node.id)
				}
			}
		}
		return true
	})
}

// digestedField reports whether lhs writes a field of a digested type,
// returning the field name and whether it is marked undigested.
func (p *Program) digestedField(pkg *Package, lhs ast.Expr) (string, bool) {
	se, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	named := namedOf(pkg.Info.TypeOf(se.X))
	if named == nil || !p.ann.typ(typeID(named.Obj()), "digested") {
		return "", false
	}
	if sel, ok := pkg.Info.Selections[se]; ok {
		if v, ok := sel.Obj().(*types.Var); ok {
			return named.Obj().Name() + "." + v.Name(), p.ann.field(v, "undigested")
		}
	}
	return "", false
}
