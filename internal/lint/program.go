package lint

// Program-level analysis state shared by the whole-program rules
// (shardsafe, digestpure). Each loaded package was type-checked in its
// own universe against compiled export data, so the same wormhole
// function is a different *types.Func object in wormhole (source) and
// in routing (import). The program therefore keys functions and types
// by stable string IDs (see funcID/typeID), under which the universes
// agree, and resolves calls — including dynamic calls through named
// interfaces — to those IDs.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"smart/internal/order"
)

// funcNode is one function or method declared with a body in a loaded
// source package.
type funcNode struct {
	id   string
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// Program is the whole-program view over a set of loaded packages:
// the declared functions, the directive annotations, the allow sites,
// and the interface-implementation table for dynamic dispatch.
type Program struct {
	pkgs   []*Package
	fns    map[string]*funcNode
	ann    *annotations
	allows map[string]map[allowKey]bool // filename -> allow sites

	// impls maps an interface method ID to the IDs of every concrete
	// method implementing it among the loaded packages.
	impls map[string][]string

	// diags accumulates directive-placement diagnostics found while
	// indexing.
	diags []Diagnostic
}

// NewProgram indexes the packages for whole-program analysis.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		pkgs:   pkgs,
		fns:    map[string]*funcNode{},
		ann:    newAnnotations(),
		allows: map[string]map[allowKey]bool{},
		impls:  map[string][]string{},
	}
	for _, pkg := range pkgs {
		p.diags = append(p.diags, p.ann.collect(pkg)...)
		for _, file := range pkg.Files {
			allows, _ := parseAllows(pkg.Fset, file)
			fname := pkg.Fset.Position(file.Pos()).Filename
			p.allows[fname] = allows
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				p.fns[funcID(obj)] = &funcNode{id: funcID(obj), fn: obj, decl: fd, pkg: pkg}
			}
		}
	}
	p.buildImpls()
	return p
}

// Diagnostics returns the directive-placement problems found while
// indexing (unknown directives, directives on the wrong declaration
// kind, floating directives attached to nothing).
func (p *Program) Diagnostics() []Diagnostic {
	return p.diags
}

// allowed reports whether rule is suppressed at the position (same line
// or the line below an allow comment, matching checkFile).
func (p *Program) allowed(pkg *Package, pos token.Pos, rule string) bool {
	at := pkg.Fset.Position(pos)
	allows := p.allows[at.Filename]
	return allows[allowKey{at.Line, rule}] || allows[allowKey{at.Line - 1, rule}]
}

// buildImpls fills the interface-implementation table. For every named
// non-interface type T declared in a loaded package, and every named
// interface I visible in that package's universe (its own scope plus
// its direct imports), T's methods are recorded against I's methods
// when *T implements I. Implementations whose declaring package does
// not import the interface's package are invisible to this pass — in
// this codebase interfaces and their implementers always meet through
// an import, and shardsafe reports unresolvable dynamic calls rather
// than silently skipping them.
func (p *Program) buildImpls() {
	seen := map[string]bool{} // "(iface).m -> concrete" edge dedup across universes
	for _, pkg := range p.pkgs {
		if pkg.Types == nil {
			continue
		}
		var ifaces []*types.Named
		collect := func(scope *types.Scope) {
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok || tn.IsAlias() {
					continue
				}
				named, ok := tn.Type().(*types.Named)
				if !ok {
					continue
				}
				if it, ok := named.Underlying().(*types.Interface); ok && it.NumMethods() > 0 {
					ifaces = append(ifaces, named)
				}
			}
		}
		collect(pkg.Types.Scope())
		for _, imp := range pkg.Types.Imports() {
			collect(imp.Scope())
		}
		for _, name := range pkg.Types.Scope().Names() {
			tn, ok := pkg.Types.Scope().Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, ok := named.Underlying().(*types.Interface); ok {
				continue
			}
			ptr := types.NewPointer(named)
			ms := types.NewMethodSet(ptr)
			if ms.Len() == 0 {
				continue
			}
			for _, iface := range ifaces {
				it := iface.Underlying().(*types.Interface)
				if !types.Implements(ptr, it) && !types.Implements(named, it) {
					continue
				}
				for i := 0; i < it.NumMethods(); i++ {
					m := it.Method(i)
					sel := ms.Lookup(m.Pkg(), m.Name())
					if sel == nil {
						continue
					}
					concrete, ok := sel.Obj().(*types.Func)
					if !ok {
						continue
					}
					key := ifaceMethodID(iface, m.Name())
					edge := key + "->" + funcID(concrete)
					if seen[edge] {
						continue
					}
					seen[edge] = true
					p.impls[key] = append(p.impls[key], funcID(concrete))
				}
			}
		}
	}
	for _, key := range order.Keys(p.impls) {
		sort.Strings(p.impls[key])
	}
}

// ifaceMethodID names method m of the named interface type.
func ifaceMethodID(iface *types.Named, m string) string {
	return "(" + pkgPathOf(iface.Obj()) + "." + iface.Obj().Name() + ")." + m
}

// callTargets resolves the callee(s) of a call expression in pkg to
// function IDs. Dynamic calls through a named interface resolve to
// every known implementation; unresolved is true when the call is
// dynamic and no implementation is known (a func-typed value, an
// interface with no loaded implementers).
func (p *Program) callTargets(pkg *Package, call *ast.CallExpr) (ids []string, unresolved bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Func:
			return []string{funcID(obj)}, false
		case *types.Builtin, *types.TypeName:
			return nil, false // builtin or conversion
		case *types.Var:
			return nil, true // call through a func-typed variable
		}
		return nil, false
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil, false
			}
			recv := sel.Recv()
			if named := namedOf(recv); named != nil {
				if _, isIface := named.Underlying().(*types.Interface); isIface {
					ids := p.impls[ifaceMethodID(named, m.Name())]
					return ids, len(ids) == 0
				}
			} else if types.IsInterface(recv) {
				return nil, true // unnamed interface: no dispatch table
			}
			return []string{funcID(m)}, false
		}
		// Package-qualified call (pkg.Fn) or conversion.
		if obj, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return []string{funcID(obj)}, false
		}
		if _, ok := pkg.Info.Uses[fun.Sel].(*types.Var); ok {
			return nil, true
		}
		return nil, false
	case *ast.FuncLit:
		return nil, false // body is inspected inline with the enclosing function
	}
	return nil, true
}

// funcValues returns the IDs of functions referenced as values (not
// called) inside expr — callbacks that may run later in the same phase.
// The enclosing call's own Fun expression must be skipped by callers.
func (p *Program) funcValueID(pkg *Package, e ast.Expr) (string, bool) {
	switch v := e.(type) {
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[v].(*types.Func); ok {
			return funcID(obj), true
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[v]; ok && sel.Kind() == types.MethodVal {
			if m, ok := sel.Obj().(*types.Func); ok {
				return funcID(m), true
			}
		} else if obj, ok := pkg.Info.Uses[v.Sel].(*types.Func); ok {
			return funcID(obj), true
		}
	}
	return "", false
}
