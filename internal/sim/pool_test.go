package sim

import (
	"sync/atomic"
	"testing"
)

func TestShardPoolRunVisitsEveryWorker(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := NewPool(workers)
		if p.Workers() != workers {
			t.Fatalf("NewPool(%d).Workers() = %d", workers, p.Workers())
		}
		visited := make([]int64, workers)
		for round := 0; round < 100; round++ {
			p.Run(func(w int) { atomic.AddInt64(&visited[w], 1) })
		}
		for w, n := range visited {
			if n != 100 {
				t.Fatalf("workers=%d: worker %d ran %d times, want 100", workers, w, n)
			}
		}
		p.Close()
	}
}

// TestShardPoolBarrier checks Run's happens-before contract: writes made
// by every worker in one phase are visible to every worker in the next
// phase without further synchronization.
func TestShardPoolBarrier(t *testing.T) {
	const workers = 4
	p := NewPool(workers)
	defer p.Close()
	staged := make([]int, workers)
	total := make([]int, workers)
	for round := 1; round <= 50; round++ {
		p.Run(func(w int) { staged[w] = round * (w + 1) })
		p.Run(func(w int) {
			// Each worker sums every other worker's staged value —
			// cross-worker reads that are only safe across the barrier.
			s := 0
			for _, v := range staged {
				s += v
			}
			total[w] = s
		})
		want := round * workers * (workers + 1) / 2
		for w := 0; w < workers; w++ {
			if total[w] != want {
				t.Fatalf("round %d: worker %d saw staged sum %d, want %d", round, w, total[w], want)
			}
		}
	}
}

func TestShardPoolRunSerialOrder(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var order []int
	p.RunSerial(func(w int) { order = append(order, w) })
	if len(order) != 4 {
		t.Fatalf("RunSerial visited %d workers, want 4", len(order))
	}
	for w, got := range order {
		if got != w {
			t.Fatalf("RunSerial order %v, want ascending", order)
		}
	}
}

func TestShardPoolCloseIdempotent(t *testing.T) {
	p := NewPool(3)
	p.Run(func(int) {})
	p.Close()
	p.Close() // second close must not panic
}

// TestShardPoolClampsDegenerateSizes pins the sequential path: a
// requested size of one — or a nonsense size below it — collapses to a
// single inline worker with no goroutines behind it, so Run is a plain
// synchronous call and unsynchronized state is safe.
func TestShardPoolClampsDegenerateSizes(t *testing.T) {
	for _, workers := range []int{1, 0, -3} {
		p := NewPool(workers)
		if p.Workers() != 1 {
			t.Fatalf("NewPool(%d).Workers() = %d, want 1", workers, p.Workers())
		}
		if len(p.inner.work) != 0 {
			t.Fatalf("NewPool(%d) spawned %d worker goroutines", workers, len(p.inner.work))
		}
		calls, last := 0, -1
		p.Run(func(w int) { calls++; last = w })
		if calls != 1 || last != 0 {
			t.Fatalf("NewPool(%d).Run made %d calls, last worker %d", workers, calls, last)
		}
		p.Close()
	}
}

// TestShardPoolMoreWorkersThanWork models a pool sized above the shard
// count (a fabric clamped below the requested parallelism keeps its old
// pool only when sizes match, but the barrier must hold regardless):
// surplus workers run an empty body and every loaded worker still runs
// exactly once per phase.
func TestShardPoolMoreWorkersThanWork(t *testing.T) {
	const workers, shards = 8, 3
	p := NewPool(workers)
	defer p.Close()
	done := make([]int64, shards)
	for round := 0; round < 200; round++ {
		p.Run(func(w int) {
			if w < shards {
				atomic.AddInt64(&done[w], 1)
			}
		})
	}
	for w := 0; w < shards; w++ {
		if done[w] != 200 {
			t.Fatalf("worker %d ran %d phases, want 200", w, done[w])
		}
	}
}

// TestShardPoolZeroTaskBarrier drives phases that do no work at all:
// the rendezvous must neither deadlock nor decay, and a write made
// between two empty phases is visible to every worker after the next
// barrier — the degenerate case of the two-phase cycle contract.
func TestShardPoolZeroTaskBarrier(t *testing.T) {
	const workers = 4
	p := NewPool(workers)
	defer p.Close()
	for i := 0; i < 1000; i++ {
		p.Run(func(int) {})
	}
	shared := 0
	p.Run(func(w int) {
		if w == 0 {
			shared = 42
		}
	})
	seen := make([]int, workers)
	p.Run(func(w int) { seen[w] = shared })
	for w, v := range seen {
		if v != 42 {
			t.Fatalf("worker %d read %d after empty barrier, want 42", w, v)
		}
	}
}
