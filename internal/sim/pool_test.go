package sim

import (
	"sync/atomic"
	"testing"
)

func TestShardPoolRunVisitsEveryWorker(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := NewPool(workers)
		if p.Workers() != workers {
			t.Fatalf("NewPool(%d).Workers() = %d", workers, p.Workers())
		}
		visited := make([]int64, workers)
		for round := 0; round < 100; round++ {
			p.Run(func(w int) { atomic.AddInt64(&visited[w], 1) })
		}
		for w, n := range visited {
			if n != 100 {
				t.Fatalf("workers=%d: worker %d ran %d times, want 100", workers, w, n)
			}
		}
		p.Close()
	}
}

// TestShardPoolBarrier checks Run's happens-before contract: writes made
// by every worker in one phase are visible to every worker in the next
// phase without further synchronization.
func TestShardPoolBarrier(t *testing.T) {
	const workers = 4
	p := NewPool(workers)
	defer p.Close()
	staged := make([]int, workers)
	total := make([]int, workers)
	for round := 1; round <= 50; round++ {
		p.Run(func(w int) { staged[w] = round * (w + 1) })
		p.Run(func(w int) {
			// Each worker sums every other worker's staged value —
			// cross-worker reads that are only safe across the barrier.
			s := 0
			for _, v := range staged {
				s += v
			}
			total[w] = s
		})
		want := round * workers * (workers + 1) / 2
		for w := 0; w < workers; w++ {
			if total[w] != want {
				t.Fatalf("round %d: worker %d saw staged sum %d, want %d", round, w, total[w], want)
			}
		}
	}
}

func TestShardPoolRunSerialOrder(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var order []int
	p.RunSerial(func(w int) { order = append(order, w) })
	if len(order) != 4 {
		t.Fatalf("RunSerial visited %d workers, want 4", len(order))
	}
	for w, got := range order {
		if got != w {
			t.Fatalf("RunSerial order %v, want ascending", order)
		}
	}
}

func TestShardPoolCloseIdempotent(t *testing.T) {
	p := NewPool(3)
	p.Run(func(int) {})
	p.Close()
	p.Close() // second close must not panic
}
