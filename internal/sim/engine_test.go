package sim

import "testing"

func TestEngineStageOrder(t *testing.T) {
	e := NewEngine()
	var trace []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		e.RegisterFunc(name, func(int64) { trace = append(trace, name) })
	}
	e.Step()
	if got := len(trace); got != 3 {
		t.Fatalf("ran %d stages, want 3", got)
	}
	for i, want := range []string{"a", "b", "c"} {
		if trace[i] != want {
			t.Fatalf("stage %d ran %q, want %q", i, trace[i], want)
		}
	}
}

func TestEngineCyclePassedToStages(t *testing.T) {
	e := NewEngine()
	var got []int64
	e.RegisterFunc("rec", func(c int64) { got = append(got, c) })
	e.Run(5)
	for i, c := range got {
		if c != int64(i) {
			t.Fatalf("stage saw cycle %d at step %d", c, i)
		}
	}
	if e.Cycle() != 5 {
		t.Fatalf("Cycle() = %d after Run(5)", e.Cycle())
	}
}

func TestEngineRunResumes(t *testing.T) {
	e := NewEngine()
	count := 0
	e.RegisterFunc("n", func(int64) { count++ })
	e.Run(10)
	e.Run(25)
	if count != 25 {
		t.Fatalf("stages ran %d times across two Runs, want 25", count)
	}
}

func TestEngineStopCondition(t *testing.T) {
	e := NewEngine()
	e.RegisterFunc("noop", func(int64) {})
	e.AddStop(func(c int64) bool { return c >= 7 })
	stopped := e.Run(100)
	if stopped != 7 {
		t.Fatalf("stopped at %d, want 7", stopped)
	}
}

func TestEngineMultipleStops(t *testing.T) {
	e := NewEngine()
	e.RegisterFunc("noop", func(int64) {})
	e.AddStop(func(c int64) bool { return false })
	e.AddStop(func(c int64) bool { return c >= 3 })
	if stopped := e.Run(100); stopped != 3 {
		t.Fatalf("stopped at %d, want 3", stopped)
	}
}

func TestEngineRunPastHorizonPanics(t *testing.T) {
	e := NewEngine()
	e.RegisterFunc("noop", func(int64) {})
	e.Run(10)
	defer func() {
		if recover() == nil {
			t.Fatal("Run with horizon before current cycle did not panic")
		}
	}()
	e.Run(5)
}

func TestEngineRegisterNilPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("Register(nil) did not panic")
		}
	}()
	e.Register(nil)
}

func TestEngineStagesCount(t *testing.T) {
	e := NewEngine()
	if e.Stages() != 0 {
		t.Fatalf("fresh engine has %d stages", e.Stages())
	}
	e.RegisterFunc("x", func(int64) {})
	e.RegisterFunc("y", func(int64) {})
	if e.Stages() != 2 {
		t.Fatalf("Stages() = %d, want 2", e.Stages())
	}
}

func TestStageFuncName(t *testing.T) {
	s := StageFunc{Label: "link", Fn: func(int64) {}}
	if s.Name() != "link" {
		t.Fatalf("Name() = %q", s.Name())
	}
}

func TestEngineZeroHorizonNoop(t *testing.T) {
	e := NewEngine()
	ran := false
	e.RegisterFunc("x", func(int64) { ran = true })
	if end := e.Run(0); end != 0 || ran {
		t.Fatalf("Run(0) executed stages (end=%d ran=%v)", end, ran)
	}
}

// countingStage wraps another stage, recording invocations, for
// TestEngineInstrument.
type countingStage struct {
	inner Stage
	calls *int
}

func (c countingStage) Name() string { return c.inner.Name() }
func (c countingStage) Tick(cycle int64) {
	*c.calls++
	c.inner.Tick(cycle)
}

func TestEngineInstrument(t *testing.T) {
	e := NewEngine()
	var order []string
	for _, name := range []string{"a", "b"} {
		name := name
		e.RegisterFunc(name, func(int64) { order = append(order, name) })
	}
	calls := 0
	e.Instrument(func(s Stage) Stage {
		if s.Name() == "b" {
			return nil // nil keeps the original stage
		}
		return countingStage{inner: s, calls: &calls}
	})
	e.Run(3)
	if calls != 3 {
		t.Fatalf("wrapped stage ticked %d times, want 3", calls)
	}
	if len(order) != 6 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("instrumentation disturbed stage order: %v", order)
	}
}
