package sim

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("step %d: %d != %d", i, av, bv)
		}
	}
}

func TestSplitMix64SeedsDiffer(t *testing.T) {
	a, b := NewSplitMix64(1), NewSplitMix64(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/64 times", same)
	}
}

func TestSplitMix64ZeroSeedUsable(t *testing.T) {
	s := NewSplitMix64(0)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[s.Next()] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("zero-seeded SplitMix64 repeated values: %d distinct of 1000", len(seen))
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	// Adjacent seeds (the per-node seeding pattern) must give unrelated
	// streams.
	a, b := NewRNG(100), NewRNG(101)
	matches := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("adjacent seeds matched %d/1000 draws", matches)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	// Standard error is 1/sqrt(12 n) ~ 6.5e-4; allow 6 sigma.
	if math.Abs(mean-0.5) > 0.004 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBoundsAndCoverage(t *testing.T) {
	r := NewRNG(9)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		// Expected 10000; binomial sd ~ 95; allow 6 sigma.
		if math.Abs(float64(c)-n/10) > 600 {
			t.Fatalf("Intn(10) value %d drawn %d times, want ~%d", v, c, n/10)
		}
	}
}

func TestIntnOne(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if v := r.Intn(1); v != 0 {
			t.Fatalf("Intn(1) = %d, want 0", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := NewRNG(1)
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := NewRNG(11)
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 1} {
		hits := 0
		const n = 100000
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		freq := float64(hits) / n
		sd := math.Sqrt(p*(1-p)/n) + 1e-9
		if math.Abs(freq-p) > 6*sd+1e-9 {
			t.Fatalf("Bernoulli(%v) frequency %v", p, freq)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	check := func(n uint8) bool {
		size := int(n%50) + 1
		p := r.Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPermShuffles(t *testing.T) {
	// Over many draws, element 0 should land roughly uniformly.
	r := NewRNG(17)
	const size, n = 8, 40000
	counts := make([]int, size)
	for i := 0; i < n; i++ {
		p := r.Perm(size)
		for pos, v := range p {
			if v == 0 {
				counts[pos]++
			}
		}
	}
	for pos, c := range counts {
		if math.Abs(float64(c)-n/size) > 500 {
			t.Fatalf("element 0 at position %d in %d/%d draws", pos, c, n)
		}
	}
}

func TestMul64MatchesStdlib(t *testing.T) {
	check := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		wantHi, wantLo := bits.Mul64(a, b)
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
