// Package sim provides the deterministic cycle-driven simulation kernel
// used by the SMART network model: a clock, an ordered set of update
// stages, per-entity pseudo-random number streams, and stop conditions.
//
// The kernel is deliberately minimal. A wormhole network advances in
// lock-step: every clock cycle each hardware structure (links, crossbars,
// routing logic, injection interfaces) performs at most one unit of work.
// The Engine models exactly that: a list of Stages executed in a fixed
// order once per cycle, with determinism guaranteed by seeded RNG streams
// so that a simulation is a pure function of its configuration.
package sim

// SplitMix64 is a tiny splittable PRNG used to seed the main generators.
// It follows Steele, Lea and Flood, "Fast Splittable Pseudorandom Number
// Generators", OOPSLA 2014. Its only role here is seed expansion: a single
// user-supplied seed is stretched into independent, well-mixed streams for
// every traffic source in the network.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a seed expander with the given initial state.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value of the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a xoshiro256** generator (Blackman & Vigna). One RNG instance is
// owned by each traffic source so that packet generation is independent of
// everything else in the simulation: adding instrumentation or reordering
// unrelated stages can never perturb the workload.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, per the
// xoshiro authors' recommendation. A zero seed is valid.
func NewRNG(seed uint64) *RNG {
	sm := NewSplitMix64(seed)
	r := &RNG{s0: sm.Next(), s1: sm.Next(), s2: sm.Next(), s3: sm.Next()}
	// The all-zero state is the one invalid state of xoshiro; SplitMix64
	// cannot produce four consecutive zeros, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s3 = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 bits of the stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniformly distributed value in [0, 1) with 53 bits of
// precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. Debiasing uses Lemire's nearly-divisionless method.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// mul64 returns the 128-bit product of a and b as (hi, lo). The standard
// library exposes this as math/bits.Mul64; it is re-derived here to keep
// the arithmetic explicit and dependency-free in the kernel's hot path.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}
