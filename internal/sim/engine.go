package sim

import "fmt"

// Stage is one hardware structure's per-cycle update. Stages registered on
// an Engine run in registration order, once per cycle, and may inspect the
// current cycle through the Engine they were registered on. A wormhole
// network registers (in flow order seen by a flit over successive cycles,
// but executed so that each flit advances at most one stage per cycle):
// link transfer, crossbar transfer, routing, injection, credit commit.
type Stage interface {
	// Name identifies the stage in diagnostics.
	Name() string
	// Tick performs the stage's work for the given cycle.
	Tick(cycle int64)
}

// StageFunc adapts a plain function to the Stage interface.
type StageFunc struct {
	Label string
	Fn    func(cycle int64)
}

// Name returns the stage label.
func (s StageFunc) Name() string { return s.Label }

// Tick invokes the wrapped function.
func (s StageFunc) Tick(cycle int64) { s.Fn(cycle) }

// StopCondition lets a simulation halt before its horizon, e.g. when the
// network has drained after injection stops.
type StopCondition func(cycle int64) bool

// Engine is the cycle-driven kernel: it owns the clock and the ordered
// stage list. The zero value is not usable; construct with NewEngine.
type Engine struct {
	cycle  int64
	stages []Stage
	stops  []StopCondition
	wd     *watchdog
	stall  *StallError
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Register appends a stage to the per-cycle schedule. Order matters: the
// network model relies on links being served before crossbars, and
// crossbars before routing, so that a flit advances at most one pipeline
// stage per cycle without per-flit timestamps on every move.
func (e *Engine) Register(s Stage) {
	if s == nil {
		panic("sim: Register called with nil stage")
	}
	e.stages = append(e.stages, s)
}

// RegisterFunc is a convenience wrapper around Register.
func (e *Engine) RegisterFunc(label string, fn func(cycle int64)) {
	e.Register(StageFunc{Label: label, Fn: fn})
}

// AddStop installs a stop condition checked after every cycle.
func (e *Engine) AddStop(c StopCondition) {
	e.stops = append(e.stops, c)
}

// Instrument replaces every registered stage s with wrap(s), preserving
// registration order. A nil result keeps the original stage. The
// observability layer uses this to time stages without the engine paying
// any cost when nothing is attached: an uninstrumented engine ticks the
// bare stages exactly as before.
func (e *Engine) Instrument(wrap func(Stage) Stage) {
	for i, s := range e.stages {
		if w := wrap(s); w != nil {
			e.stages[i] = w
		}
	}
}

// Cycle returns the index of the cycle currently executing, or, between
// Run calls, the index of the next cycle to execute.
func (e *Engine) Cycle() int64 { return e.cycle }

// Stages returns the number of registered stages.
func (e *Engine) Stages() int { return len(e.stages) }

// Step executes exactly one cycle.
func (e *Engine) Step() {
	for _, s := range e.stages {
		s.Tick(e.cycle)
	}
	e.cycle++
}

// Run executes cycles until the horizon (exclusive) or until a stop
// condition fires, and returns the cycle at which it stopped. Calling Run
// again resumes from where the previous call left off, which the drain
// phase of a simulation uses to extend the horizon after shutting off
// injection.
// A watched engine (see Watch) also stops when the no-progress budget
// is exhausted; check Stall after Run to distinguish a deadlock abort
// from a normal stop.
func (e *Engine) Run(horizon int64) int64 {
	if horizon < e.cycle {
		panic(fmt.Sprintf("sim: Run horizon %d precedes current cycle %d", horizon, e.cycle))
	}
	if e.stall != nil {
		return e.cycle
	}
	for e.cycle < horizon {
		e.Step()
		for _, stop := range e.stops {
			if stop(e.cycle) {
				return e.cycle
			}
		}
		if e.wd != nil {
			if e.stall = e.wd.check(e.cycle); e.stall != nil {
				return e.cycle
			}
		}
	}
	return e.cycle
}
