package sim

import "fmt"

// Watchable exposes the progress signals the engine's no-progress
// watchdog samples once per cycle. The wormhole fabric is the canonical
// implementation: flit movement and delivery drive the counter.
type Watchable interface {
	// Progress returns a monotonically non-decreasing counter of useful
	// work performed so far (flits moved, packets drained). The watchdog
	// only compares successive values, so the unit is immaterial.
	Progress() int64
	// Pending reports whether work is outstanding. Stalled cycles are
	// counted only while work is pending: an idle network is quiet, not
	// deadlocked.
	Pending() bool
	// StallReport captures a diagnostic snapshot at the moment the
	// watchdog fires (per-lane occupancy, blocked headers, credit
	// state). It is called at most once per stall.
	StallReport() any
}

// StallError reports that a watched engine made no progress for longer
// than its cycle budget while work was pending — the signature of a
// routing deadlock. It carries the diagnostic snapshot taken when the
// watchdog fired, so a misconfigured run dies with a post-mortem
// instead of hanging a sweep until the process is killed.
type StallError struct {
	// Cycle is the cycle at which the watchdog fired; StalledSince the
	// last cycle at which the progress counter moved; Budget the
	// configured no-progress allowance.
	Cycle        int64
	StalledSince int64
	Budget       int64
	// Report is the Watchable's diagnostic snapshot (for the wormhole
	// fabric, a *wormhole.StallSnapshot). Its String form, when it has
	// one, is appended to Error.
	Report any
}

// Error implements the error interface with a one-line diagnosis
// followed by the snapshot's rendering.
func (e *StallError) Error() string {
	msg := fmt.Sprintf("sim: no progress for %d cycles with work pending (budget %d, stalled since cycle %d, aborted at cycle %d) — possible deadlock",
		e.Cycle-e.StalledSince, e.Budget, e.StalledSince, e.Cycle)
	if e.Report != nil {
		msg += "\n" + fmt.Sprint(e.Report)
	}
	return msg
}

// watchdog tracks the progress counter between cycles.
type watchdog struct {
	budget int64
	target Watchable
	last   int64 // last observed progress value
	since  int64 // cycle at which last changed (or work went idle)
}

// check samples the target after the given cycle and returns a
// StallError once the no-progress budget is exhausted.
func (w *watchdog) check(cycle int64) *StallError {
	if p := w.target.Progress(); p != w.last {
		w.last = p
		w.since = cycle
		return nil
	}
	if !w.target.Pending() {
		w.since = cycle
		return nil
	}
	if cycle-w.since <= w.budget {
		return nil
	}
	return &StallError{Cycle: cycle, StalledSince: w.since, Budget: w.budget, Report: w.target.StallReport()}
}

// Watch installs a no-progress watchdog: if w's progress counter stays
// flat for more than budget cycles while w reports pending work, Run
// stops early and Stall returns the diagnosis. A second call replaces
// the previous watchdog.
func (e *Engine) Watch(budget int64, w Watchable) {
	if w == nil {
		panic("sim: Watch called with nil target")
	}
	if budget <= 0 {
		panic(fmt.Sprintf("sim: Watch budget must be positive, got %d", budget))
	}
	e.wd = &watchdog{budget: budget, target: w, last: w.Progress(), since: e.cycle}
}

// Stall returns the watchdog's diagnosis if a watched Run stopped on a
// no-progress stall, and nil otherwise. Once set it stays set: a
// stalled engine cannot make further progress, and subsequent Run
// calls return immediately.
func (e *Engine) Stall() *StallError { return e.stall }

// WatchState reports the installed watchdog's live bookkeeping — the
// cycle the progress counter last moved and the configured budget — or
// ok == false when the engine is unwatched. The telemetry layer uses it
// to emit near-stall events while a run is still alive: a fabric that
// has burned a large fraction of its no-progress budget is congestion
// news worth reporting before the watchdog kills the run.
func (e *Engine) WatchState() (stalledSince, budget int64, ok bool) {
	if e.wd == nil {
		return 0, 0, false
	}
	return e.wd.since, e.wd.budget, true
}
