package sim

import (
	"strings"
	"testing"
)

// fakeWatchable scripts the progress signals the watchdog samples.
type fakeWatchable struct {
	progress int64
	pending  bool
	reports  int
}

func (w *fakeWatchable) Progress() int64 { return w.progress }
func (w *fakeWatchable) Pending() bool   { return w.pending }
func (w *fakeWatchable) StallReport() any {
	w.reports++
	return "fake report"
}

func watchedEngine(w Watchable, budget int64) *Engine {
	e := NewEngine()
	e.RegisterFunc("noop", func(int64) {})
	e.Watch(budget, w)
	return e
}

func TestWatchdogFiresAfterBudgetWhilePending(t *testing.T) {
	w := &fakeWatchable{pending: true}
	e := watchedEngine(w, 10)
	stopped := e.Run(1000)
	stall := e.Stall()
	if stall == nil {
		t.Fatal("flat progress with pending work did not stall")
	}
	// Cycle 0 is the last "progress" reference point (Watch samples at
	// install), so the first cycle past the budget is budget+1.
	if stopped != 11 || stall.Cycle != 11 || stall.StalledSince != 0 || stall.Budget != 10 {
		t.Fatalf("stall = %+v at cycle %d, want fired at cycle 11 (budget 10 from cycle 0)", stall, stopped)
	}
	if stall.Report != "fake report" || w.reports != 1 {
		t.Fatalf("snapshot taken %d times with report %v, want exactly once", w.reports, stall.Report)
	}
	if msg := stall.Error(); !strings.Contains(msg, "possible deadlock") || !strings.Contains(msg, "fake report") {
		t.Fatalf("unexpected diagnosis: %s", msg)
	}
}

func TestWatchdogQuietWhenIdle(t *testing.T) {
	w := &fakeWatchable{pending: false}
	e := watchedEngine(w, 10)
	if e.Run(1000) != 1000 {
		t.Fatal("idle engine stopped early")
	}
	if e.Stall() != nil {
		t.Fatalf("idle engine reported a stall: %v", e.Stall())
	}
}

func TestWatchdogQuietWhileProgressAdvances(t *testing.T) {
	w := &fakeWatchable{pending: true}
	e := NewEngine()
	e.RegisterFunc("advance", func(int64) { w.progress++ })
	e.Watch(10, w)
	if e.Run(1000) != 1000 {
		t.Fatal("advancing engine stopped early")
	}
	if e.Stall() != nil {
		t.Fatalf("advancing engine reported a stall: %v", e.Stall())
	}
}

func TestWatchdogResetsAfterProgressBurst(t *testing.T) {
	w := &fakeWatchable{pending: true}
	e := NewEngine()
	// Progress moves once at cycle 7; the watchdog observes it in the
	// post-cycle check at 8 and the stall clock restarts there.
	e.RegisterFunc("burst", func(cycle int64) {
		if cycle == 7 {
			w.progress++
		}
	})
	e.Watch(10, w)
	e.Run(1000)
	stall := e.Stall()
	if stall == nil {
		t.Fatal("engine never stalled after the burst")
	}
	if stall.StalledSince != 8 || stall.Cycle != 19 {
		t.Fatalf("stall = %+v, want stalled since cycle 8, fired at 19", stall)
	}
}

func TestStalledEngineStaysStopped(t *testing.T) {
	w := &fakeWatchable{pending: true}
	e := watchedEngine(w, 5)
	e.Run(1000)
	first := e.Stall()
	if first == nil {
		t.Fatal("engine did not stall")
	}
	at := e.Cycle()
	if got := e.Run(2000); got != at {
		t.Fatalf("stalled engine ran on to cycle %d, want immediate return at %d", got, at)
	}
	if e.Stall() != first {
		t.Fatal("second Run replaced the stall diagnosis")
	}
	if w.reports != 1 {
		t.Fatalf("snapshot taken %d times across Run calls, want once", w.reports)
	}
}

func TestWatchValidation(t *testing.T) {
	e := NewEngine()
	for name, fn := range map[string]func(){
		"nil target":  func() { e.Watch(10, nil) },
		"zero budget": func() { e.Watch(0, &fakeWatchable{}) },
	} {
		func() {
			defer func() {
				if recover() == nil { //smartlint:allow nakedrecover — asserting Watch panics on bad arguments
					t.Errorf("Watch with %s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
