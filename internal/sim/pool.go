package sim

import (
	"runtime"
	"sync"
)

// Pool is the reusable barrier/worker pool behind the sharded fabric
// engine: a fixed set of workers that execute one function per worker
// and rendezvous at a barrier before Run returns. The calling goroutine
// is worker 0, so a 1-worker pool spawns nothing and Run degenerates to
// a plain call — the sequential path pays no synchronization.
//
// Run is a full barrier: every effect of fn(w) on any worker
// happens-before Run returns (the workers' completion signals
// synchronize with the caller), so a two-phase cycle — compute on all
// workers, Run returns, commit on all workers — needs no further
// synchronization as long as each phase partitions its writes by
// worker.
//
// This package and internal/core are the only homes for concurrency
// primitives in the simulator (smartlint's concurrency rule enforces
// it): simulation state must be advanced either on one goroutine or
// through a Pool's phase barriers, never with ad-hoc goroutines.
type Pool struct {
	inner *poolInner
}

// poolInner carries the state shared with the worker goroutines. It is
// split from Pool so the workers keep only inner alive: when the last
// Pool reference is dropped, the finalizer closes the work channels and
// the workers exit, so an un-Closed pool (a garbage-collected Fabric)
// does not leak goroutines.
type poolInner struct {
	work []chan func(int)
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool returns a pool of the given worker count (at least 1).
// Workers beyond the first are persistent goroutines; they idle between
// Run calls and exit at Close (or when the pool is collected).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	inner := &poolInner{}
	p := &Pool{inner: inner}
	if workers == 1 {
		return p
	}
	inner.work = make([]chan func(int), workers-1)
	for w := 1; w < workers; w++ {
		ch := make(chan func(int))
		inner.work[w-1] = ch
		go func(w int, ch chan func(int)) {
			for fn := range ch {
				fn(w)
				inner.wg.Done()
			}
		}(w, ch)
	}
	runtime.SetFinalizer(p, func(p *Pool) { p.inner.close() })
	return p
}

// Workers returns the pool's worker count — an execution detail derived
// from requested parallelism, so the digestpure rule bars values
// computed from it from content digests.
//
//smartlint:taint
func (p *Pool) Workers() int { return len(p.inner.work) + 1 }

// Run executes fn(w) for every worker index w in [0, Workers()) — fn(0)
// on the calling goroutine — and returns after all calls complete.
// fn must partition its writes by worker index; Run provides the
// inter-phase barrier, not intra-phase isolation.
func (p *Pool) Run(fn func(worker int)) {
	inner := p.inner
	inner.wg.Add(len(inner.work))
	for _, ch := range inner.work {
		ch <- fn
	}
	fn(0)
	inner.wg.Wait()
}

// RunSerial executes fn(w) for every worker index in order on the
// calling goroutine — the same work as Run with a deterministic serial
// schedule. The sharded fabric uses it when a Tracer is attached, so
// callback order stays reproducible.
func (p *Pool) RunSerial(fn func(worker int)) {
	for w := 0; w < p.Workers(); w++ {
		fn(w)
	}
}

// Close shuts the worker goroutines down. The pool must not be used
// afterwards. Close is idempotent and also runs via finalizer when a
// pool is garbage-collected without an explicit Close.
func (p *Pool) Close() {
	runtime.SetFinalizer(p, nil)
	p.inner.close()
}

func (pi *poolInner) close() {
	pi.mu.Lock()
	defer pi.mu.Unlock()
	if pi.closed {
		return
	}
	pi.closed = true
	for _, ch := range pi.work {
		close(ch)
	}
}
