package metrics

import (
	"testing"

	"smart/internal/sim"
)

// steadyTraffic drives the ring fabric with a constant per-cycle load.
func steadyTraffic(t *testing.T, rate float64, cycles int64, every int64) *TimeSeries {
	t.Helper()
	f, e := measured(t)
	ts, err := NewTimeSeries(f, every)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(8)
	e.RegisterFunc("gen", func(cycle int64) {
		for n := 0; n < f.Top.Nodes(); n++ {
			if rng.Bernoulli(rate) {
				dst := (n + 1 + rng.Intn(f.Top.Nodes()-1)) % f.Top.Nodes()
				if dst > n { // keep greedy Plus routing deadlock-free
					f.EnqueuePacket(n, dst, cycle)
				}
			}
		}
	})
	ts.Register(e)
	e.Run(cycles)
	return ts
}

func TestTimeSeriesSamplingCadence(t *testing.T) {
	ts := steadyTraffic(t, 0.05, 1000, 100)
	points := ts.Points()
	if len(points) != 10 {
		t.Fatalf("%d samples over 1000 cycles at every=100", len(points))
	}
	for i, p := range points {
		if p.Cycle != int64((i+1)*100) {
			t.Fatalf("sample %d at cycle %d", i, p.Cycle)
		}
	}
}

func TestTimeSeriesThroughputAccounting(t *testing.T) {
	ts := steadyTraffic(t, 0.05, 1000, 100)
	f := ts.fabric
	var sum float64
	for _, p := range ts.Points() {
		sum += p.Throughput * 100 * float64(f.Top.Nodes())
	}
	if int64(sum+0.5) != f.Counters().FlitsDelivered {
		t.Fatalf("summed throughput %v flits, counters say %d", sum, f.Counters().FlitsDelivered)
	}
}

func TestTimeSeriesReachesSteadyState(t *testing.T) {
	ts := steadyTraffic(t, 0.05, 4000, 200)
	cycle, ok := ts.SteadyStateBy(0.5)
	if !ok {
		t.Fatal("steady state never reached at a light load")
	}
	if cycle > 2000 {
		t.Fatalf("steady state only at cycle %d; the paper's 2000-cycle warm-up would be insufficient", cycle)
	}
}

func TestTimeSeriesLatencyPositiveUnderTraffic(t *testing.T) {
	ts := steadyTraffic(t, 0.05, 2000, 500)
	saw := false
	for _, p := range ts.Points() {
		if p.AvgLatency > 0 {
			saw = true
		}
	}
	if !saw {
		t.Fatal("no sample recorded a latency")
	}
}

func TestTimeSeriesValidation(t *testing.T) {
	f, _ := measured(t)
	if _, err := NewTimeSeries(f, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestTimeSeriesEmptyNoSteadyState(t *testing.T) {
	f, _ := measured(t)
	ts, _ := NewTimeSeries(f, 100)
	if _, ok := ts.SteadyStateBy(0.1); ok {
		t.Fatal("empty series claimed steady state")
	}
}
