package metrics

import (
	"math"
	"testing"
)

// TestSaturationExactlyAtTolerance pins the boundary of the saturation
// predicate: a deficit exactly equal to the tolerance is still stable
// (the comparison is strict, deficit > tolerance saturates), and the
// smallest representable step above it saturates. Every value is a
// dyadic rational so "exactly equal" means bit-exact in float64 — the
// boundary matters because sweeps quantize loads, and a sample sitting
// on the tolerance must not flip between runs of the same data.
func TestSaturationExactlyAtTolerance(t *testing.T) {
	const tol = 0.25
	atBoundary := Series{
		{Offered: 0.25, Accepted: 0.25},
		{Offered: 0.5, Accepted: 0.25}, // deficit == tolerance exactly
		{Offered: 0.75, Accepted: 0.5},
	}
	if sat, ok := atBoundary.Saturation(tol); ok {
		t.Fatalf("deficit == tolerance misread as saturation at %v", sat)
	}

	eps := math.Nextafter(tol, 1) - tol
	justOver := Series{
		{Offered: 0.25, Accepted: 0.25},
		{Offered: 0.5, Accepted: 0.25 - eps},
	}
	sat, ok := justOver.Saturation(tol)
	if !ok {
		t.Fatal("deficit one ULP above tolerance not detected as saturation")
	}
	// The crossing interpolates inside (0.25, 0.5]; with a one-ULP
	// overshoot it lands essentially at the saturated sample.
	if sat <= 0.25 || sat > 0.5 {
		t.Fatalf("interpolated saturation %v outside (0.25, 0.5]", sat)
	}
}

// TestSaturationBoundaryUsesCreatedLoad repeats the boundary check
// against the measured creation rate: with CreatedLoad recorded, the
// nominal Offered column must not influence the predicate at all.
func TestSaturationBoundaryUsesCreatedLoad(t *testing.T) {
	const tol = 0.25
	// Nominal deficit (Offered - Accepted) is huge, measured deficit is
	// exactly the tolerance: stable.
	s := Series{
		{Offered: 1.0, CreatedLoad: 0.5, Accepted: 0.25},
	}
	if sat, ok := s.Saturation(tol); ok {
		t.Fatalf("boundary deficit against CreatedLoad misread as saturation at %v", sat)
	}
	s[0].Accepted = 0.25 - (math.Nextafter(tol, 1) - tol)
	if _, ok := s.Saturation(tol); !ok {
		t.Fatal("deficit above tolerance against CreatedLoad missed")
	}
}
