package metrics

import (
	"fmt"

	"smart/internal/sim"
	"smart/internal/wormhole"
)

// TimePoint is one sample of the network's dynamic state.
type TimePoint struct {
	Cycle int64
	// Throughput is the delivered flits per node per cycle since the
	// previous sample.
	Throughput float64
	// InFlight is the number of flits inside the network at the sample
	// instant; Queued the packets waiting at sources.
	InFlight, Queued int64
	// AvgLatency is the mean network latency, in cycles, of packets
	// delivered since the previous sample (0 when none were).
	AvgLatency float64
}

// TimeSeries samples a fabric at a fixed cadence — the view the paper's
// methodology presumes when it asserts the network reaches steady state
// within the 2000-cycle warm-up. Register it on the engine after the
// fabric's stages.
type TimeSeries struct {
	fabric *wormhole.Fabric
	every  int64
	points []TimePoint

	lastDelivered int64
	lastPacket    int
}

// NewTimeSeries samples the fabric every `every` cycles.
func NewTimeSeries(f *wormhole.Fabric, every int64) (*TimeSeries, error) {
	if every < 1 {
		return nil, fmt.Errorf("metrics: sampling interval %d must be positive", every)
	}
	return &TimeSeries{fabric: f, every: every}, nil
}

// Register installs the sampling stage.
func (ts *TimeSeries) Register(e *sim.Engine) {
	e.RegisterFunc("timeseries", ts.tick)
}

func (ts *TimeSeries) tick(cycle int64) {
	if cycle == 0 || (cycle+1)%ts.every != 0 {
		return
	}
	c := ts.fabric.Counters()
	nodes := float64(ts.fabric.Top.Nodes())
	p := TimePoint{
		Cycle:      cycle + 1,
		Throughput: float64(c.FlitsDelivered-ts.lastDelivered) / float64(ts.every) / nodes,
		InFlight:   ts.fabric.InFlight(),
		Queued:     ts.fabric.QueuedPackets(),
	}
	var latSum float64
	var latN int64
	for i := ts.lastPacket; i < len(ts.fabric.Packets); i++ {
		// Scanning from the low-water mark keeps this amortized O(1) per
		// packet; packets delivered out of creation order near the mark
		// are a negligible sampling artifact.
		pk := &ts.fabric.Packets[i]
		if pk.Delivered() {
			latSum += float64(pk.NetworkLatency())
			latN++
		}
	}
	if latN > 0 {
		p.AvgLatency = latSum / float64(latN)
	}
	// Advance the low-water mark past the packets that are fully done.
	for ts.lastPacket < len(ts.fabric.Packets) && ts.fabric.Packets[ts.lastPacket].Delivered() {
		ts.lastPacket++
	}
	ts.lastDelivered = c.FlitsDelivered
	ts.points = append(ts.points, p)
}

// Points returns the samples collected so far.
func (ts *TimeSeries) Points() []TimePoint { return ts.points }

// SteadyStateBy returns the first sampled cycle after which the
// throughput stays within tolerance (relative) of the final sample's
// throughput — an empirical check of a warm-up choice. It returns false
// when the series never settles (e.g. above saturation, where queues grow
// without bound but throughput still stabilizes; instability here means
// oscillation beyond the tolerance).
func (ts *TimeSeries) SteadyStateBy(tolerance float64) (int64, bool) {
	if len(ts.points) < 2 {
		return 0, false
	}
	final := ts.points[len(ts.points)-1].Throughput
	if final <= 0 {
		return 0, false
	}
	for i, p := range ts.points {
		settled := true
		for _, q := range ts.points[i:] {
			if rel(q.Throughput, final) > tolerance {
				settled = false
				break
			}
		}
		if settled {
			return p.Cycle, true
		}
	}
	return 0, false
}

func rel(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b < 0 {
		b = -b
	}
	if b <= 0 {
		return 0
	}
	return d / b
}
