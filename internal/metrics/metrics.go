// Package metrics computes the paper's two quantitative parameters (§6):
// accepted bandwidth (the sustained data delivery rate for a given
// offered bandwidth) and network latency (header insertion in the
// injection lane to tail reception at the destination, source queueing
// excluded). Measurements are taken over a window that starts after the
// warm-up period (2000 cycles in the paper) and ends at the horizon
// (20000 cycles), and are assembled into the Chaos Normal Form series of
// Figures 5 and 6: accepted bandwidth and latency as functions of the
// offered bandwidth, both normalized to the uniform-traffic capacity.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"smart/internal/wormhole"
)

// Sample is the outcome of one simulation at one offered load. The JSON
// tags fix the field names of the run-manifest schema (internal/obs), so
// renames here are schema changes.
type Sample struct {
	// Offered is the nominal injection rate as a fraction of capacity.
	Offered float64 `json:"offered"`
	// CreatedLoad is the measured packet creation rate as a fraction of
	// capacity. It differs from Offered by Bernoulli noise and, for
	// permutations with fixed points (the paper's transpose and
	// bit-reversal have 16 silent nodes on 256), by the non-injecting
	// fraction. Saturation is defined against this rate (§6: "the
	// accepted bandwidth is lower than the global packet creation rate").
	CreatedLoad float64 `json:"created_load"`
	// Accepted is the delivered traffic as a fraction of capacity,
	// measured over the window.
	Accepted float64 `json:"accepted"`
	// AcceptedFlits is the same in flits per node per cycle.
	AcceptedFlits float64 `json:"accepted_flits"`
	// AvgLatency is the mean network latency, in cycles, of packets
	// delivered inside the window.
	AvgLatency float64 `json:"avg_latency"`
	// P95Latency is the 95th-percentile network latency in cycles.
	P95Latency float64 `json:"p95_latency"`
	// AvgHeadLatency is the mean header latency (injection to header
	// arrival) in cycles.
	AvgHeadLatency float64 `json:"avg_head_latency"`
	// AvgHops is the mean number of switch traversals of delivered
	// packets.
	AvgHops float64 `json:"avg_hops"`
	// PacketsDelivered counts packets whose tail arrived inside the
	// window; PacketsCreated counts packets generated inside it.
	PacketsDelivered int64 `json:"packets_delivered"`
	PacketsCreated   int64 `json:"packets_created"`
}

// Source is the read side a measurement window consumes: running counter
// totals, the node count, the packet length and the per-packet records.
// Both the optimized wormhole.Fabric and the reference simulator in
// internal/oracle implement it, so a differential run computes both
// Samples through this one code path.
type Source interface {
	Counters() wormhole.Counters
	Nodes() int
	PacketFlits() int
	PacketRecords() []wormhole.PacketInfo
}

// Window measures a network over [warmup, horizon). Snapshot the counters
// with Start at the warm-up boundary, run the engine to the horizon, then
// call Measure.
type Window struct {
	fabric         Source
	warmup         int64
	startCounters  wormhole.Counters
	started        bool
	capacityFlits  float64
	flitsPerPacket float64
}

// NewWindow prepares a measurement over the network. capacityFlits is the
// per-node capacity bound in flits/cycle used for normalization.
func NewWindow(f Source, capacityFlits float64) (*Window, error) {
	if capacityFlits <= 0 {
		return nil, fmt.Errorf("metrics: capacity must be positive, got %v", capacityFlits)
	}
	return &Window{
		fabric:         f,
		capacityFlits:  capacityFlits,
		flitsPerPacket: float64(f.PacketFlits()),
	}, nil
}

// Start marks the beginning of the measurement window at the given cycle.
func (w *Window) Start(cycle int64) {
	w.warmup = cycle
	w.startCounters = w.fabric.Counters()
	w.started = true
}

// Measure computes the sample for the window ending at the given cycle.
// offered is the nominal load fraction driving the injection process.
func (w *Window) Measure(end int64, offered float64) (Sample, error) {
	if !w.started {
		return Sample{}, fmt.Errorf("metrics: Measure called before Start")
	}
	if end <= w.warmup {
		return Sample{}, fmt.Errorf("metrics: empty window [%d, %d)", w.warmup, end)
	}
	cycles := float64(end - w.warmup)
	nodes := float64(w.fabric.Nodes())
	now := w.fabric.Counters()

	s := Sample{Offered: offered}
	deliveredFlits := float64(now.FlitsDelivered - w.startCounters.FlitsDelivered)
	s.AcceptedFlits = deliveredFlits / cycles / nodes
	s.Accepted = s.AcceptedFlits / w.capacityFlits
	s.PacketsCreated = now.PacketsCreated - w.startCounters.PacketsCreated
	s.CreatedLoad = float64(s.PacketsCreated) * w.flitsPerPacket / cycles / nodes / w.capacityFlits

	var latSum, headSum, hopSum float64
	var lats []float64
	packets := w.fabric.PacketRecords()
	for i := range packets {
		pk := &packets[i]
		if pk.TailAt < w.warmup || pk.TailAt >= end || !pk.Delivered() {
			continue
		}
		s.PacketsDelivered++
		lat := float64(pk.NetworkLatency())
		latSum += lat
		lats = append(lats, lat)
		headSum += float64(pk.HeadAt - pk.InjectedAt)
		hopSum += float64(pk.Hops)
	}
	if s.PacketsDelivered > 0 {
		n := float64(s.PacketsDelivered)
		s.AvgLatency = latSum / n
		s.AvgHeadLatency = headSum / n
		s.AvgHops = hopSum / n
		sort.Float64s(lats)
		idx := int(math.Ceil(0.95*float64(len(lats)))) - 1
		if idx < 0 {
			idx = 0
		}
		s.P95Latency = lats[idx]
	}
	return s, nil
}

// Series is a load sweep: samples ordered by offered load, the paper's
// CNF presentation.
type Series []Sample

// Saturation returns the saturation point of the series — the minimum
// offered bandwidth where the accepted bandwidth falls below the packet
// creation rate (§6) — as a fraction of capacity, linearly interpolated
// between the last stable and the first saturated sample. The creation
// rate is the measured CreatedLoad when the sample carries one (so
// patterns with non-injecting fixed points are judged against the traffic
// they actually generate), else the nominal offered load. The tolerance
// absorbs Bernoulli noise. If the series never saturates it returns the
// last offered load and false.
func (s Series) Saturation(tolerance float64) (float64, bool) {
	deficit := func(smp Sample) float64 {
		created := smp.CreatedLoad
		//smartlint:allow floateq — zero is the "not recorded" sentinel for CreatedLoad
		if created == 0 {
			created = smp.Offered
		}
		return created - smp.Accepted
	}
	for i, smp := range s {
		if deficit(smp) <= tolerance {
			continue
		}
		if i == 0 {
			return smp.Offered, true
		}
		prev := s[i-1]
		// Interpolate on the deficit crossing the tolerance.
		d0 := deficit(prev)
		d1 := deficit(smp)
		t := (tolerance - d0) / (d1 - d0)
		return prev.Offered + t*(smp.Offered-prev.Offered), true
	}
	if len(s) == 0 {
		return 0, false
	}
	return s[len(s)-1].Offered, false
}

// PostSaturationStability returns the ratio of the minimum to the maximum
// accepted bandwidth over the samples at or beyond the saturation point —
// 1.0 means a perfectly flat post-saturation throughput, the stability
// the paper highlights for the fat-tree (§8).
func (s Series) PostSaturationStability(tolerance float64) (float64, bool) {
	sat, ok := s.Saturation(tolerance)
	if !ok {
		return 1, false
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	count := 0
	for _, smp := range s {
		if smp.Offered < sat {
			continue
		}
		count++
		lo = math.Min(lo, smp.Accepted)
		hi = math.Max(hi, smp.Accepted)
	}
	if count < 2 || hi <= 0 {
		return 1, false
	}
	return lo / hi, true
}

// MaxAccepted returns the largest accepted bandwidth in the series.
func (s Series) MaxAccepted() float64 {
	best := 0.0
	for _, smp := range s {
		best = math.Max(best, smp.Accepted)
	}
	return best
}
