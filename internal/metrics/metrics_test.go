package metrics

import (
	"math"
	"testing"

	"smart/internal/sim"
	"smart/internal/topology"
	"smart/internal/wormhole"
)

// plusAlg routes Plus along dimension 0 until the destination, then
// ejects: a minimal deterministic algorithm for measurement tests.
type plusAlg struct{ cube *topology.Cube }

func (a plusAlg) Name() string { return "plus" }
func (a plusAlg) VCs() int     { return 1 }
func (a plusAlg) Route(f wormhole.Router, r, ip, il int, pkt wormhole.PacketID) (int, int, bool) {
	port := topology.PortOf(0, topology.Plus)
	if r == f.Dest(pkt) {
		port = a.cube.NodePort()
	}
	if f.OutLaneFree(r, port, 0) {
		return port, 0, true
	}
	return 0, 0, false
}

func measured(t *testing.T) (*wormhole.Fabric, *sim.Engine) {
	t.Helper()
	cube, err := topology.NewCube(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := wormhole.NewFabric(cube, wormhole.Config{VCs: 1, BufDepth: 4, PacketFlits: 4, InjLanes: 1}, plusAlg{cube})
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	f.Register(e)
	return f, e
}

func TestNewWindowRejectsBadCapacity(t *testing.T) {
	f, _ := measured(t)
	for _, c := range []float64{0, -1} {
		if _, err := NewWindow(f, c); err == nil {
			t.Errorf("capacity %v accepted", c)
		}
	}
}

func TestMeasureBeforeStartErrors(t *testing.T) {
	f, _ := measured(t)
	w, err := NewWindow(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Measure(100, 0.5); err == nil {
		t.Fatal("Measure before Start did not error")
	}
}

func TestMeasureEmptyWindowErrors(t *testing.T) {
	f, _ := measured(t)
	w, _ := NewWindow(f, 1)
	w.Start(100)
	if _, err := w.Measure(100, 0.5); err == nil {
		t.Fatal("empty window did not error")
	}
	if _, err := w.Measure(50, 0.5); err == nil {
		t.Fatal("inverted window did not error")
	}
}

// TestSinglePacketSample verifies the accepted-bandwidth and latency
// arithmetic on one fully known packet.
func TestSinglePacketSample(t *testing.T) {
	f, e := measured(t)
	w, _ := NewWindow(f, 1.0)
	w.Start(0)
	f.EnqueuePacket(0, 2, 0)
	e.Run(100)
	s, err := w.Measure(100, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if s.PacketsDelivered != 1 || s.PacketsCreated != 1 {
		t.Fatalf("counts %+v", s)
	}
	// 4 flits over 100 cycles and 8 nodes.
	want := 4.0 / (100 * 8)
	if math.Abs(s.AcceptedFlits-want) > 1e-12 || math.Abs(s.Accepted-want) > 1e-12 {
		t.Fatalf("accepted %v flits, want %v", s.AcceptedFlits, want)
	}
	pk := f.Packet(0)
	if s.AvgLatency != float64(pk.NetworkLatency()) {
		t.Fatalf("avg latency %v, want %d", s.AvgLatency, pk.NetworkLatency())
	}
	if s.P95Latency != s.AvgLatency {
		t.Fatalf("p95 %v != avg %v for one packet", s.P95Latency, s.AvgLatency)
	}
	if s.AvgHeadLatency != float64(pk.HeadAt-pk.InjectedAt) {
		t.Fatalf("head latency %v", s.AvgHeadLatency)
	}
	if s.AvgHops != 3 { // routers 0,1,2
		t.Fatalf("hops %v, want 3", s.AvgHops)
	}
	if s.Offered != 0.25 {
		t.Fatalf("offered %v not propagated", s.Offered)
	}
}

// TestWindowExcludesWarmupPackets: packets delivered before the window
// opens must not contribute to throughput or latency.
func TestWindowExcludesWarmupPackets(t *testing.T) {
	f, e := measured(t)
	w, _ := NewWindow(f, 1.0)
	f.EnqueuePacket(0, 2, 0) // delivered well before cycle 50
	e.Run(50)
	w.Start(50)
	f.EnqueuePacket(1, 3, 50)
	e.Run(120)
	s, err := w.Measure(120, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if s.PacketsDelivered != 1 {
		t.Fatalf("window counted %d packets, want only the post-warmup one", s.PacketsDelivered)
	}
	if s.AcceptedFlits != 4.0/(70*8) {
		t.Fatalf("accepted %v", s.AcceptedFlits)
	}
}

func TestP95Latency(t *testing.T) {
	// 20 packets in series over the same contended path produce a
	// latency spread; p95 must be >= avg and equal one of the observed
	// latencies.
	f, e := measured(t)
	w, _ := NewWindow(f, 1.0)
	w.Start(0)
	for i := 0; i < 20; i++ {
		f.EnqueuePacket(0, 4, 0)
	}
	e.Run(2000)
	s, err := w.Measure(2000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.PacketsDelivered != 20 {
		t.Fatalf("delivered %d", s.PacketsDelivered)
	}
	if s.P95Latency < s.AvgLatency {
		t.Fatalf("p95 %v below mean %v", s.P95Latency, s.AvgLatency)
	}
	found := false
	for i := range f.Packets {
		if float64(f.Packets[i].NetworkLatency()) == s.P95Latency {
			found = true
		}
	}
	if !found {
		t.Fatal("p95 is not an observed latency")
	}
}

func TestSaturationDetection(t *testing.T) {
	flat := Series{
		{Offered: 0.2, Accepted: 0.2},
		{Offered: 0.4, Accepted: 0.4},
		{Offered: 0.6, Accepted: 0.6},
	}
	if sat, ok := flat.Saturation(0.02); ok || sat != 0.6 {
		t.Fatalf("unsaturated series reported (%v,%v)", sat, ok)
	}
	sat := Series{
		{Offered: 0.2, Accepted: 0.2},
		{Offered: 0.4, Accepted: 0.4},
		{Offered: 0.6, Accepted: 0.45},
		{Offered: 0.8, Accepted: 0.45},
	}
	got, ok := sat.Saturation(0.02)
	if !ok {
		t.Fatal("saturated series not detected")
	}
	// Deficit goes 0 -> 0.15 across offered 0.4 -> 0.6; crosses 0.02 at
	// 0.4 + (0.02/0.15)*0.2.
	want := 0.4 + 0.02/0.15*0.2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("saturation %v, want %v", got, want)
	}
}

// TestSaturationUsesCreatedLoad: a pattern whose fixed points inject
// nothing (transpose, bit-reversal) creates ~94% of the nominal load; the
// detector must judge the deficit against the measured creation rate, not
// the nominal offered load.
func TestSaturationUsesCreatedLoad(t *testing.T) {
	shortfall := Series{
		{Offered: 0.4, CreatedLoad: 0.375, Accepted: 0.375},
		{Offered: 0.8, CreatedLoad: 0.75, Accepted: 0.75},
		{Offered: 1.0, CreatedLoad: 0.9375, Accepted: 0.93},
	}
	if sat, ok := shortfall.Saturation(0.02); ok {
		t.Fatalf("fixed-point shortfall misread as saturation at %v", sat)
	}
	realSat := Series{
		{Offered: 0.4, CreatedLoad: 0.375, Accepted: 0.375},
		{Offered: 0.8, CreatedLoad: 0.75, Accepted: 0.60},
	}
	if _, ok := realSat.Saturation(0.02); !ok {
		t.Fatal("true saturation missed when CreatedLoad is present")
	}
}

func TestMeasureReportsCreatedLoad(t *testing.T) {
	f, e := measured(t)
	w, _ := NewWindow(f, 1.0)
	w.Start(0)
	f.EnqueuePacket(0, 2, 0)
	f.EnqueuePacket(1, 3, 0)
	e.Run(100)
	s, err := w.Measure(100, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// 2 packets of 4 flits over 100 cycles and 8 nodes at capacity 1.
	if want := 2.0 * 4 / (100 * 8); s.CreatedLoad != want {
		t.Fatalf("CreatedLoad %v, want %v", s.CreatedLoad, want)
	}
}

func TestSaturationFirstSample(t *testing.T) {
	s := Series{{Offered: 0.5, Accepted: 0.1}}
	got, ok := s.Saturation(0.02)
	if !ok || got != 0.5 {
		t.Fatalf("(%v,%v), want (0.5,true)", got, ok)
	}
}

func TestSaturationEmptySeries(t *testing.T) {
	var s Series
	if sat, ok := s.Saturation(0.02); ok || sat != 0 {
		t.Fatalf("empty series reported (%v,%v)", sat, ok)
	}
}

func TestPostSaturationStability(t *testing.T) {
	stable := Series{
		{Offered: 0.3, Accepted: 0.3},
		{Offered: 0.6, Accepted: 0.5},
		{Offered: 0.8, Accepted: 0.5},
		{Offered: 1.0, Accepted: 0.5},
	}
	ratio, ok := stable.PostSaturationStability(0.02)
	if !ok || math.Abs(ratio-1.0) > 1e-12 {
		t.Fatalf("stable series ratio (%v,%v)", ratio, ok)
	}
	degrading := Series{
		{Offered: 0.3, Accepted: 0.3},
		{Offered: 0.6, Accepted: 0.5},
		{Offered: 0.8, Accepted: 0.4},
		{Offered: 1.0, Accepted: 0.25},
	}
	ratio, ok = degrading.PostSaturationStability(0.02)
	if !ok || ratio > 0.55 {
		t.Fatalf("degrading series ratio (%v,%v), want = 0.25/0.5", ratio, ok)
	}
}

func TestMaxAccepted(t *testing.T) {
	s := Series{{Accepted: 0.1}, {Accepted: 0.7}, {Accepted: 0.4}}
	if got := s.MaxAccepted(); got != 0.7 {
		t.Fatalf("MaxAccepted = %v", got)
	}
	var empty Series
	if got := empty.MaxAccepted(); got != 0 {
		t.Fatalf("empty MaxAccepted = %v", got)
	}
}
