package chanstats

import (
	"fmt"

	"smart/internal/topology"
)

// Classes is a precomputed channel-class map over a topology's ports:
// every used output port belongs to exactly one class (ascending or
// descending channels of a tree level; plus or minus direction of a cube
// dimension), so per-class traffic aggregation is a single walk over the
// fabric's flat per-port counters instead of a topology-specific loop.
// The end-of-run aggregators (TreeLevels, CubeDims) and the live
// telemetry sampler (internal/telemetry) share one Classes instance,
// which is what keeps their utilization numbers definitionally identical.
type Classes struct {
	// Names labels each class, e.g. "L0-up"/"L0-down" on the tree or
	// "d0+"/"d0-" on the cube.
	Names []string
	// Links counts the physical channels of each class; utilization is
	// flits / (Links * cycles).
	Links []int64
	// class maps port id (router*degree + port) to its class, -1 for
	// ports outside every class (unused ports; on the cube, node ports).
	class []int32
	deg   int
}

// classIndexTree is the tree's class numbering: level l's ascending
// channels are class 2l, its descending channels (including the ejection
// links at level 0, matching TreeLevels) class 2l+1.
func classIndexTree(level int, up bool) int {
	if up {
		return 2 * level
	}
	return 2*level + 1
}

// ClassesFor builds the channel-class map of a topology, or an error for
// families without a class structure.
func ClassesFor(top topology.Topology) (*Classes, error) {
	switch t := top.(type) {
	case *topology.Tree:
		return treeClasses(t), nil
	case *topology.Cube:
		return cubeClasses(t), nil
	default:
		return nil, fmt.Errorf("chanstats: no channel classes for topology %T", top)
	}
}

func treeClasses(t *topology.Tree) *Classes {
	deg := t.Degree()
	c := &Classes{
		Names: make([]string, 2*t.N),
		Links: make([]int64, 2*t.N),
		class: make([]int32, t.Routers()*deg),
		deg:   deg,
	}
	for l := 0; l < t.N; l++ {
		c.Names[classIndexTree(l, true)] = fmt.Sprintf("L%d-up", l)
		c.Names[classIndexTree(l, false)] = fmt.Sprintf("L%d-down", l)
	}
	for sw := 0; sw < t.Routers(); sw++ {
		level := t.SwitchLevel(sw)
		for p, port := range t.RouterPorts(sw) {
			pid := sw*deg + p
			if port.Kind == topology.PortUnused {
				c.class[pid] = -1
				continue
			}
			idx := classIndexTree(level, t.IsUpPort(p))
			c.class[pid] = int32(idx)
			c.Links[idx]++
		}
	}
	return c
}

func cubeClasses(cu *topology.Cube) *Classes {
	deg := cu.Degree()
	c := &Classes{
		Names: make([]string, 2*cu.N),
		Links: make([]int64, 2*cu.N),
		class: make([]int32, cu.Routers()*deg),
		deg:   deg,
	}
	for d := 0; d < cu.N; d++ {
		c.Names[2*d+topology.Plus] = fmt.Sprintf("d%d+", d)
		c.Names[2*d+topology.Minus] = fmt.Sprintf("d%d-", d)
	}
	for r := 0; r < cu.Routers(); r++ {
		ports := cu.RouterPorts(r)
		for p := range ports {
			pid := r*deg + p
			c.class[pid] = -1
			if ports[p].Kind != topology.PortRouter {
				continue
			}
			d, dir := cu.DimDirOf(p)
			idx := 2*d + dir
			c.class[pid] = int32(idx)
			c.Links[idx]++
		}
	}
	return c
}

// Len returns the number of classes.
func (c *Classes) Len() int { return len(c.Names) }

// Accumulate folds the fabric's per-port flit counters into per-class
// totals: into[i] receives the flits transmitted by class i's channels
// since the counters were last reset. into must have Len() slots; it is
// zeroed first. counter is indexed by port id — the fabric's LinkFlits
// view via a closure, so Accumulate allocates nothing.
func (c *Classes) Accumulate(counter func(r, p int) int64, into []int64) {
	if len(into) != len(c.Names) {
		panic(fmt.Sprintf("chanstats: Accumulate into %d slots, want %d classes", len(into), len(c.Names)))
	}
	for i := range into {
		into[i] = 0
	}
	for pid, cls := range c.class {
		if cls < 0 {
			continue
		}
		into[cls] += counter(pid/c.deg, pid%c.deg)
	}
}

// Utilization converts one class's flit total over an observation window
// into the fraction of cycles its channels were busy (1.0 = every link
// of the class transmitting every cycle).
func (c *Classes) Utilization(class int, flits, cycles int64) float64 {
	if cycles <= 0 || c.Links[class] == 0 {
		return 0
	}
	return float64(flits) / float64(c.Links[class]) / float64(cycles)
}
