package chanstats

import (
	"testing"

	"smart/internal/topology"
	"smart/internal/traffic"
)

// The classifier must partition exactly the ports the per-family
// aggregators count: every used port on the tree (node ports fold into
// level 0's descending class), every router-to-router port on the cube.
func TestClassesPartitionPorts(t *testing.T) {
	tree, _ := topology.NewTree(4, 3)
	tc, err := ClassesFor(tree)
	if err != nil {
		t.Fatal(err)
	}
	if got := tc.Len(); got != 2*tree.N {
		t.Fatalf("tree classes: %d, want %d", got, 2*tree.N)
	}
	var treeUsed int64
	for sw := 0; sw < tree.Routers(); sw++ {
		for _, port := range tree.RouterPorts(sw) {
			if port.Kind != topology.PortUnused {
				treeUsed++
			}
		}
	}
	var classed int64
	for _, n := range tc.Links {
		classed += n
	}
	if classed != treeUsed {
		t.Fatalf("tree classifier covers %d links, topology has %d used ports", classed, treeUsed)
	}

	cube, _ := topology.NewCube(4, 3)
	cc, err := ClassesFor(cube)
	if err != nil {
		t.Fatal(err)
	}
	if got := cc.Len(); got != 2*cube.N {
		t.Fatalf("cube classes: %d, want %d", got, 2*cube.N)
	}
	var cubeRouterPorts int64
	for r := 0; r < cube.Routers(); r++ {
		for _, port := range cube.RouterPorts(r) {
			if port.Kind == topology.PortRouter {
				cubeRouterPorts++
			}
		}
	}
	classed = 0
	for _, n := range cc.Links {
		classed += n
	}
	if classed != cubeRouterPorts {
		t.Fatalf("cube classifier covers %d links, topology has %d router ports", classed, cubeRouterPorts)
	}
}

// Accumulate over the classifier must reproduce the aggregators it
// deduplicated: TreeLevels recomputed from class totals matches the
// published view.
func TestAccumulateMatchesTreeLevels(t *testing.T) {
	pattern, _ := traffic.NewComplement(16)
	f, tree := runTree(t, pattern, 0.05, 4000)
	classes, err := ClassesFor(tree)
	if err != nil {
		t.Fatal(err)
	}
	flits := make([]int64, classes.Len())
	classes.Accumulate(f.LinkFlits, flits)
	stats, err := TreeLevels(f, tree, 4000)
	if err != nil {
		t.Fatal(err)
	}
	for l, s := range stats {
		up := classes.Utilization(classIndexTree(l, true), flits[classIndexTree(l, true)], 4000)
		down := classes.Utilization(classIndexTree(l, false), flits[classIndexTree(l, false)], 4000)
		if up != s.Up || down != s.Down { //smartlint:allow floateq — both sides computed by the identical expression; any drift is a real divergence
			t.Fatalf("level %d: classifier (%.4f, %.4f) vs TreeLevels (%.4f, %.4f)", l, up, down, s.Up, s.Down)
		}
	}
}

func TestClassesForRejectsUnknownTopology(t *testing.T) {
	if _, err := ClassesFor(nil); err == nil {
		t.Fatal("nil topology accepted")
	}
}
