package chanstats

import (
	"math"
	"testing"

	"smart/internal/routing"
	"smart/internal/sim"
	"smart/internal/topology"
	"smart/internal/traffic"
	"smart/internal/wormhole"
)

// runTree simulates a 16-node tree under the given pattern and returns
// the fabric plus the measured cycle count.
func runTree(t *testing.T, pattern traffic.Pattern, rate float64, cycles int64) (*wormhole.Fabric, *topology.Tree) {
	t.Helper()
	tree, err := topology.NewTree(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := routing.NewTreeAdaptive(tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := wormhole.NewFabric(tree, wormhole.Config{VCs: 2, BufDepth: 4, PacketFlits: 8, InjLanes: 1}, alg)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := traffic.NewInjector(f, pattern, rate, 11)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	inj.Register(e)
	f.Register(e)
	e.Run(cycles)
	return f, tree
}

func TestTreeLevelsComplementLoadsAllLevels(t *testing.T) {
	pattern, _ := traffic.NewComplement(16)
	f, tree := runTree(t, pattern, 0.05, 4000)
	stats, err := TreeLevels(f, tree, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("%d levels", len(stats))
	}
	// Complement traffic ascends to the top level, so the ascending
	// channels of every level below the roots carry load, the descending
	// channels of every level carry load, and the roots' external up
	// ports stay silent.
	for _, s := range stats {
		if s.Down <= 0.05 {
			t.Fatalf("level %d under complement: down %.3f", s.Level, s.Down)
		}
		if s.Level < len(stats)-1 && s.Up <= 0.05 {
			t.Fatalf("level %d under complement: up %.3f", s.Level, s.Up)
		}
	}
	if top := stats[len(stats)-1]; top.Up != 0 {
		t.Fatalf("root level external ports carried traffic: %+v", top)
	}
	// Utilization is a fraction of cycles.
	for _, s := range stats {
		if s.Up > 1 || s.Down > 1 || s.Up < 0 || s.Down < 0 {
			t.Fatalf("utilization out of range: %+v", s)
		}
	}
}

func TestTreeLevelsLocalTrafficStaysLow(t *testing.T) {
	// Destinations sharing the level-0 switch (same label) never ascend
	// past level 0, so level-1 channels stay idle.
	local := localPattern{}
	f, tree := runTree(t, local, 0.05, 4000)
	stats, err := TreeLevels(f, tree, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Down == 0 {
		t.Fatal("no delivery traffic at level 0")
	}
	if stats[1].Up != 0 || stats[1].Down != 0 {
		t.Fatalf("local traffic leaked to level 1: %+v", stats[1])
	}
	if stats[0].Up != 0 {
		t.Fatalf("local traffic ascended: %+v", stats[0])
	}
}

// localPattern sends to the next sibling on the same level-0 switch.
type localPattern struct{}

func (localPattern) Name() string { return "local" }
func (localPattern) Dest(src int, _ *sim.RNG) int {
	return src/4*4 + (src+1)%4
}

func TestCubeDimsNeighborTrafficIsDirectional(t *testing.T) {
	cube, err := topology.NewCube(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	alg := routing.NewDuato(cube)
	f, err := wormhole.NewFabric(cube, wormhole.Config{VCs: 4, BufDepth: 4, PacketFlits: 8, InjLanes: 1}, alg)
	if err != nil {
		t.Fatal(err)
	}
	// +1 in dimension 0 only: all network traffic rides dim-0 Plus.
	pattern := plusOne{k: 4}
	inj, err := traffic.NewInjector(f, pattern, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	inj.Register(e)
	f.Register(e)
	e.Run(4000)
	stats, err := CubeDims(f, cube, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Plus <= 0 {
		t.Fatal("dim-0 Plus unused under +1 traffic")
	}
	if stats[0].Minus != 0 || stats[1].Plus != 0 || stats[1].Minus != 0 {
		t.Fatalf("traffic leaked off the dim-0 Plus channels: %+v", stats)
	}
}

// plusOne sends to the next node along dimension 0 (with wrap).
type plusOne struct{ k int }

func (plusOne) Name() string { return "plusone" }
func (p plusOne) Dest(src int, _ *sim.RNG) int {
	return src/p.k*p.k + (src+1)%p.k
}

func TestEjectionUtilizationMatchesDelivery(t *testing.T) {
	pattern, _ := traffic.NewComplement(16)
	f, _ := runTree(t, pattern, 0.05, 4000)
	util, err := Ejection(f, 4000)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(f.Counters().FlitsDelivered) / 16 / 4000
	if math.Abs(util-want) > 1e-12 {
		t.Fatalf("ejection utilization %v, want %v from delivered flits", util, want)
	}
}

func TestResetLinkStats(t *testing.T) {
	pattern, _ := traffic.NewComplement(16)
	f, tree := runTree(t, pattern, 0.05, 2000)
	f.ResetLinkStats()
	stats, err := TreeLevels(f, tree, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stats {
		if s.Up != 0 || s.Down != 0 {
			t.Fatalf("counters survived reset: %+v", s)
		}
	}
}

func TestCubeRouterGridDiagonalUnderTranspose(t *testing.T) {
	cube, err := topology.NewCube(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	alg := routing.NewDOR(cube)
	f, err := wormhole.NewFabric(cube, wormhole.Config{VCs: 4, BufDepth: 4, PacketFlits: 8, InjLanes: 1}, alg)
	if err != nil {
		t.Fatal(err)
	}
	pattern, err := traffic.NewTranspose(cube.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := traffic.NewInjector(f, pattern, 0.03, 21)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	inj.Register(e)
	f.Register(e)
	e.Run(6000)
	grid, err := CubeRouterGrid(f, cube, 6000)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 8 || len(grid[0]) != 8 {
		t.Fatalf("grid shape %dx%d", len(grid), len(grid[0]))
	}
	// The paper's §9: transpose reflects across the diagonal, loading it
	// more than the rest of the torus. Compare the mean utilization on
	// and off the diagonal band.
	var diag, off float64
	var nd, no int
	for row := range grid {
		for col := range grid[row] {
			d := row - col
			if d < 0 {
				d = -d
			}
			if d <= 1 || d >= 7 { // the band around the main diagonal (torus-wrapped)
				diag += grid[row][col]
				nd++
			} else {
				off += grid[row][col]
				no++
			}
		}
	}
	if diag/float64(nd) <= off/float64(no) {
		t.Fatalf("diagonal band (%.4f) not hotter than the rest (%.4f)", diag/float64(nd), off/float64(no))
	}
}

func TestCubeRouterGridErrors(t *testing.T) {
	cube3, _ := topology.NewCube(4, 3)
	alg := routing.NewDuato(cube3)
	f, err := wormhole.NewFabric(cube3, wormhole.Config{VCs: 4, BufDepth: 4, PacketFlits: 4, InjLanes: 1}, alg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CubeRouterGrid(f, cube3, 100); err == nil {
		t.Error("3-dimensional grid accepted")
	}
	if _, err := CubeRouterGrid(f, cube3, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestValidationErrors(t *testing.T) {
	pattern, _ := traffic.NewComplement(16)
	f, tree := runTree(t, pattern, 0.05, 100)
	if _, err := TreeLevels(f, tree, 0); err == nil {
		t.Error("zero window accepted")
	}
	otherTree, _ := topology.NewTree(4, 2)
	if _, err := TreeLevels(f, otherTree, 100); err == nil {
		t.Error("foreign tree accepted")
	}
	cube, _ := topology.NewCube(4, 2)
	if _, err := CubeDims(f, cube, 100); err == nil {
		t.Error("foreign cube accepted")
	}
	if _, err := Ejection(f, 0); err == nil {
		t.Error("zero window accepted for ejection")
	}
}
