// Package chanstats aggregates the fabric's per-link flit counters into
// the channel-utilization views the paper reasons with: per-level
// ascending/descending utilization on the k-ary n-tree (where descending
// congestion limits throughput, §8) and per-dimension/direction
// utilization on the k-ary n-cube (where patterns like the complement
// concentrate traffic on the bisection, §9). Utilization is the fraction
// of cycles a channel class transmitted a flit, averaged over its
// channels — 1.0 means every link of the class was busy every cycle.
package chanstats

import (
	"fmt"

	"smart/internal/topology"
	"smart/internal/wormhole"
)

// LevelStats is the tree view: one row per switch level.
type LevelStats struct {
	Level int
	// Up is the mean utilization of the ascending channels leaving the
	// level (toward the roots); Down of the descending channels leaving
	// it (toward the processors, including ejection links at level 0).
	Up, Down float64
}

// TreeLevels aggregates a tree fabric's counters over the given number of
// observed cycles.
func TreeLevels(f *wormhole.Fabric, t *topology.Tree, cycles int64) ([]LevelStats, error) {
	if cycles <= 0 {
		return nil, fmt.Errorf("chanstats: non-positive observation window %d", cycles)
	}
	if f.Top != topology.Topology(t) {
		return nil, fmt.Errorf("chanstats: fabric is not built on the given tree")
	}
	classes := treeClasses(t)
	flits := make([]int64, classes.Len())
	classes.Accumulate(f.LinkFlits, flits)
	stats := make([]LevelStats, t.N)
	for l := 0; l < t.N; l++ {
		up, down := classIndexTree(l, true), classIndexTree(l, false)
		stats[l] = LevelStats{
			Level: l,
			Up:    classes.Utilization(up, flits[up], cycles),
			Down:  classes.Utilization(down, flits[down], cycles),
		}
	}
	return stats, nil
}

// DimStats is the cube view: one row per dimension.
type DimStats struct {
	Dim int
	// Plus and Minus are the mean utilizations of the two directions.
	Plus, Minus float64
}

// CubeDims aggregates a cube (or mesh) fabric's counters.
func CubeDims(f *wormhole.Fabric, c *topology.Cube, cycles int64) ([]DimStats, error) {
	if cycles <= 0 {
		return nil, fmt.Errorf("chanstats: non-positive observation window %d", cycles)
	}
	if f.Top != topology.Topology(c) {
		return nil, fmt.Errorf("chanstats: fabric is not built on the given cube")
	}
	classes := cubeClasses(c)
	flits := make([]int64, classes.Len())
	classes.Accumulate(f.LinkFlits, flits)
	stats := make([]DimStats, c.N)
	for d := 0; d < c.N; d++ {
		plus, minus := 2*d+topology.Plus, 2*d+topology.Minus
		stats[d] = DimStats{
			Dim:   d,
			Plus:  classes.Utilization(plus, flits[plus], cycles),
			Minus: classes.Utilization(minus, flits[minus], cycles),
		}
	}
	return stats, nil
}

// CubeRouterGrid returns, for a 2-dimensional cube or mesh, the total
// channel utilization of every router (the sum over its outgoing
// neighbour channels, normalized per channel) arranged as a
// [row][column] grid — the spatial congestion picture of §9.
func CubeRouterGrid(f *wormhole.Fabric, c *topology.Cube, cycles int64) ([][]float64, error) {
	if cycles <= 0 {
		return nil, fmt.Errorf("chanstats: non-positive observation window %d", cycles)
	}
	if c.N != 2 {
		return nil, fmt.Errorf("chanstats: router grid requires a 2-dimensional cube, got n=%d", c.N)
	}
	if f.Top != topology.Topology(c) {
		return nil, fmt.Errorf("chanstats: fabric is not built on the given cube")
	}
	grid := make([][]float64, c.K)
	for row := range grid {
		grid[row] = make([]float64, c.K)
		for col := range grid[row] {
			r := c.WithDigit(c.WithDigit(0, 1, row), 0, col)
			ports := c.RouterPorts(r)
			var flits, links int64
			for d := 0; d < c.N; d++ {
				for _, dir := range []int{topology.Plus, topology.Minus} {
					p := topology.PortOf(d, dir)
					if ports[p].Kind == topology.PortUnused {
						continue
					}
					links++
					flits += f.LinkFlits(r, p)
				}
			}
			if links > 0 {
				grid[row][col] = float64(flits) / float64(links) / float64(cycles)
			}
		}
	}
	return grid, nil
}

// Ejection returns the mean utilization of the router-to-node channels —
// the delivery pressure at the destinations.
func Ejection(f *wormhole.Fabric, cycles int64) (float64, error) {
	if cycles <= 0 {
		return 0, fmt.Errorf("chanstats: non-positive observation window %d", cycles)
	}
	var links, flits int64
	top := f.Top
	for r := 0; r < top.Routers(); r++ {
		for p, port := range top.RouterPorts(r) {
			if port.Kind == topology.PortNode {
				links++
				flits += f.LinkFlits(r, p)
			}
		}
	}
	if links == 0 {
		return 0, fmt.Errorf("chanstats: topology has no node ports")
	}
	return float64(flits) / float64(links) / float64(cycles), nil
}
